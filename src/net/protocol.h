// bro::net wire protocol — the compact length-prefixed binary framing that
// puts a real service boundary in front of serve::SpmvServer.
//
// Every message is one frame: a fixed 16-byte little-endian header followed
// by an op-specific payload.
//
//   offset  size  field
//   0       u32   payload_len   bytes following the header
//   4       u8    version       kProtocolVersion; mismatch is fatal
//   5       u8    kind          0 = request, 1 = response
//   6       u8    code          request: Op; response: Status
//   7       u8    reserved      must be 0
//   8       u64   request_id    chosen by the client, echoed verbatim
//
// request_id correlation is what allows many in-flight requests per
// connection: the server answers batches in completion order, not
// submission order, and the client re-associates by id. Matrix payloads
// ride the existing tagged `.bro` serialization (core/serialize.h) —
// UPLOAD_MATRIX frames carry exactly the bytes `brospmv compress` writes,
// and the server dispatches on the embedded tag via core::peek_bro_format.
//
// Every serve-layer refusal maps to a distinct Status (queue-full vs shed
// vs throttled, mirroring serve::RejectCause) and carries the observed
// queue depth, so remote clients get the same backpressure signal as
// in-process callers of SpmvServer::submit.
//
// Versioning rule: any change to the frame header or to an existing
// payload layout bumps kProtocolVersion; the server closes connections
// that open with any other version. New ops may be added within a version
// (old servers answer them with kBadRequest).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/matrix.h"
#include "serve/admission.h"
#include "serve/server.h"
#include "util/bytes.h"
#include "util/types.h"

namespace bro::net {

inline constexpr std::uint8_t kProtocolVersion = 1;
inline constexpr std::size_t kFrameHeaderBytes = 16;
/// Frames above this payload size are rejected as corrupt (a length field
/// damaged in transit would otherwise ask for gigabytes of reassembly).
inline constexpr std::size_t kDefaultMaxFrameBytes = std::size_t{1} << 30;

enum class Op : std::uint8_t {
  kPing = 1,         // liveness probe; empty payload both ways
  kSubmit = 2,       // y = A[id] * x
  kUploadMatrix = 3, // register a matrix from .bro bytes
  kRemove = 4,       // drop a matrix registration
  kStats = 5,        // server metrics snapshot
  kDrain = 6,        // graceful shutdown: stop accepting, drain, flush
};

enum class Status : std::uint8_t {
  kOk = 0,
  kQueueFull = 1,     // RejectCause::kQueueFull
  kShed = 2,          // RejectCause::kShed
  kThrottled = 3,     // RejectCause::kThrottled
  kUnknownMatrix = 4, // submit/remove against an unregistered id
  kBadRequest = 5,    // malformed payload, wrong x size, unknown op
  kInternalError = 6, // execution failure surfaced by the request's future
  kShuttingDown = 7,  // received after a drain began
};

enum class FrameKind : std::uint8_t { kRequest = 0, kResponse = 1 };

const char* op_name(Op op);
const char* status_name(Status s);

/// The wire status a serve-layer refusal maps to.
Status status_for(serve::RejectCause cause);

/// Frame-level corruption (bad version, oversized length, reserved bits):
/// unrecoverable for the connection — reassembly has lost sync.
class ProtocolError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct FrameHeader {
  std::uint32_t payload_len = 0;
  std::uint8_t version = kProtocolVersion;
  FrameKind kind = FrameKind::kRequest;
  std::uint8_t code = 0; // Op for requests, Status for responses
  std::uint64_t request_id = 0;
};

struct Frame {
  FrameHeader header;
  std::vector<std::uint8_t> payload;

  Op op() const { return static_cast<Op>(header.code); }
  Status status() const { return static_cast<Status>(header.code); }
};

/// One complete frame: header + payload, ready to write to a socket.
std::vector<std::uint8_t> encode_frame(FrameKind kind, std::uint8_t code,
                                       std::uint64_t request_id,
                                       std::span<const std::uint8_t> payload);

/// Incremental frame reassembly over a byte stream: append() whatever the
/// socket produced, next() yields complete frames (nullopt while a frame is
/// still partial). Throws ProtocolError when the stream cannot be a valid
/// frame sequence (version mismatch, oversized or malformed header).
class FrameAssembler {
 public:
  explicit FrameAssembler(std::size_t max_frame_bytes = kDefaultMaxFrameBytes)
      : max_frame_bytes_(max_frame_bytes) {}

  void append(const std::uint8_t* data, std::size_t n);
  std::optional<Frame> next();

  std::size_t buffered() const { return buf_.size() - pos_; }

 private:
  std::size_t max_frame_bytes_;
  std::vector<std::uint8_t> buf_;
  std::size_t pos_ = 0; // consumed prefix; compacted lazily
};

// ---------------------------------------------------------------------------
// Payload codecs. make_* return complete frames; parse_* decode a received
// frame's payload and throw std::runtime_error on malformed contents (the
// server answers kBadRequest, the connection survives).

struct SubmitRequest {
  std::string matrix_id;
  std::string client_id;
  std::vector<value_t> x;
};

std::vector<std::uint8_t> make_submit_request(std::uint64_t request_id,
                                              const std::string& matrix_id,
                                              const std::string& client_id,
                                              std::span<const value_t> x);
SubmitRequest parse_submit_request(const Frame& f);

/// kOk submit response: the y vector.
std::vector<std::uint8_t> make_vector_response(std::uint64_t request_id,
                                               std::span<const value_t> y);
std::vector<value_t> parse_vector_response(const Frame& f);

/// Non-kOk responses share one payload: the queue depth observed at refusal
/// (0 when meaningless) plus a human-readable message.
struct ErrorInfo {
  Status status = Status::kInternalError;
  std::uint64_t queue_depth = 0;
  std::string message;
};

std::vector<std::uint8_t> make_error_response(std::uint64_t request_id,
                                              Status status,
                                              std::uint64_t queue_depth,
                                              const std::string& message);
ErrorInfo parse_error_response(const Frame& f);

struct UploadRequest {
  std::string matrix_id;
  std::vector<std::uint8_t> bro_bytes; // a complete tagged .bro stream
};

std::vector<std::uint8_t> make_upload_request(
    std::uint64_t request_id, const std::string& matrix_id,
    std::span<const std::uint8_t> bro_bytes);
UploadRequest parse_upload_request(const Frame& f);

/// kOk upload response: dimensions of the registered matrix.
struct UploadAck {
  std::uint64_t rows = 0;
  std::uint64_t cols = 0;
  std::uint64_t nnz = 0;
};

std::vector<std::uint8_t> make_upload_ack(std::uint64_t request_id,
                                          const UploadAck& ack);
UploadAck parse_upload_ack(const Frame& f);

std::vector<std::uint8_t> make_remove_request(std::uint64_t request_id,
                                              const std::string& matrix_id);
std::string parse_remove_request(const Frame& f);

/// kOk remove response: whether the id was registered.
std::vector<std::uint8_t> make_bool_response(std::uint64_t request_id,
                                             bool value);
bool parse_bool_response(const Frame& f);

/// Ping / stats / drain requests and the empty kOk response.
std::vector<std::uint8_t> make_empty_request(std::uint64_t request_id, Op op);
std::vector<std::uint8_t> make_ok_response(std::uint64_t request_id);

/// The STATS payload: the server-side counters and the split queue-wait vs
/// execute-time percentiles, so a remote load generator can attribute
/// round-trip latency to network vs queueing vs execution.
struct StatsSnapshot {
  std::uint64_t submitted = 0;
  std::uint64_t rejected = 0;   // all causes
  std::uint64_t queue_full = 0; //   of which: scheduler bound
  std::uint64_t shed = 0;       //   of which: load shed
  std::uint64_t throttled = 0;  //   of which: token bucket
  std::uint64_t served = 0;
  std::uint64_t failed = 0;
  std::uint64_t batches = 0;
  std::uint64_t sharded_batches = 0;
  std::uint64_t wait_count = 0;
  std::uint64_t exec_count = 0;
  double wait_p50 = 0, wait_p99 = 0, wait_mean = 0; // seconds
  double exec_p50 = 0, exec_p99 = 0, exec_mean = 0; // seconds
};

/// Condense ServerMetrics into the wire snapshot (percentiles evaluated
/// from the split queue-wait / execute histograms).
StatsSnapshot snapshot_from(const serve::ServerMetrics& m);

std::vector<std::uint8_t> make_stats_response(std::uint64_t request_id,
                                              const StatsSnapshot& s);
StatsSnapshot parse_stats_response(const Frame& f);

// ---------------------------------------------------------------------------
// Matrix payload round-trip, riding the registry's Tag-dispatched
// serialization.

/// Serialize through the registry's serialize hook for `format` (throws for
/// formats without an on-disk form).
std::vector<std::uint8_t> matrix_to_bro_bytes(const core::Matrix& m,
                                              core::Format format);

/// Reconstruct a Matrix from a tagged .bro stream: peek the format tag,
/// deserialize, and decompress back to CSR (exact — indices and values are
/// stored losslessly), so the server plans from the same CSR the uploader
/// held. Throws std::runtime_error on malformed bytes.
core::Matrix matrix_from_bro_bytes(std::span<const std::uint8_t> bytes);

} // namespace bro::net
