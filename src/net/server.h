// bro::net::NetServer — the async socket front-end of the serving stack.
//
// A poll(2)-based non-blocking accept/IO event loop that replaces
// SpmvServer::submit as the transport layer's caller: frames arrive on TCP
// connections (net/protocol.h), SUBMIT requests become SpmvServer futures,
// and completed futures are encoded back onto the owning connection's write
// queue. One loop thread serves every connection:
//
//   * per-connection read buffers with partial-frame reassembly
//     (FrameAssembler) and write queues drained as POLLOUT allows, so a
//     slow reader never blocks the loop,
//   * many in-flight requests per connection, correlated by request id —
//     responses are sent in completion order, clients re-associate,
//   * every serve-layer refusal is answered with its typed status
//     (queue-full / shed / throttled + observed queue depth), never a
//     dropped connection; frame-level corruption, by contrast, closes the
//     connection (reassembly has lost sync),
//   * graceful shutdown (the DRAIN op, or stop()): stop accepting, drain
//     the SpmvServer, flush every queued response, then close.
//
// With a synchronous SpmvServer (threads == 0) the loop drives poll_once()
// whenever its frame backlog is empty, so a single-threaded deterministic
// service needs no dispatch threads at all.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "net/protocol.h"
#include "serve/server.h"
#include "util/fd.h"

namespace bro::net {

struct NetServerOptions {
  std::string listen = "127.0.0.1"; // IPv4 dotted-quad to bind
  int port = 0;                     // 0 = kernel-assigned (see port())
  int backlog = 64;
  std::size_t max_frame_bytes = kDefaultMaxFrameBytes;

  /// Throws (BRO_CHECK) on out-of-domain values.
  void validate() const;
};

struct NetServerStats {
  std::uint64_t accepted = 0;        // connections accepted
  std::uint64_t closed = 0;          // connections closed (any reason)
  std::uint64_t frames_in = 0;       // complete request frames parsed
  std::uint64_t frames_out = 0;      // response frames fully written
  std::uint64_t protocol_errors = 0; // connections dropped on corrupt frames
};

class NetServer {
 public:
  /// Binds and listens immediately (so port() is valid before run/start);
  /// the caller keeps ownership of `server` and must outlive the loop.
  NetServer(serve::SpmvServer& server, NetServerOptions opts = {});
  ~NetServer();

  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  /// The bound TCP port (resolves option port == 0).
  int port() const { return port_; }

  /// Run the event loop on the calling thread; returns after graceful
  /// shutdown (a client's DRAIN op, or stop() from another thread).
  void run();

  /// run() on a background thread.
  void start();

  /// Request graceful shutdown (stop accepting, drain the SpmvServer,
  /// flush responses) and join the start() thread. Safe to call twice;
  /// also safe against a concurrent client-initiated DRAIN.
  void stop();

  /// True once a drain began; new requests are answered kShuttingDown.
  bool draining() const { return draining_.load(); }

  NetServerStats stats() const;

 private:
  struct Connection;
  struct Loop; // poll-loop state, lives for one run()

  void handle_frame(Loop& loop, Connection& conn, const Frame& frame);
  void begin_drain(Loop& loop);

  serve::SpmvServer& server_;
  NetServerOptions opts_;
  UniqueFd listen_fd_;
  UniqueFd wake_read_, wake_write_;
  int port_ = 0;

  std::thread loop_thread_;
  std::atomic<bool> stop_requested_{false};
  std::atomic<bool> draining_{false};

  mutable std::mutex stats_mu_;
  NetServerStats stats_;
};

} // namespace bro::net
