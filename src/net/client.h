// bro::net::NetClient — blocking TCP client for the bro::net protocol.
//
// One connection, synchronous calls by default (submit/upload/stats/...),
// plus an explicit pipelining surface for load generation: enqueue_submit()
// buffers request frames locally, flush() writes them in one send, and
// wait_submit() collects each response by request id in any order. That is
// the client half of the protocol's many-in-flight design: the server
// answers in completion order and the client re-associates.
//
// Server refusals raise RpcError carrying the typed wire Status and the
// observed queue depth — the remote mirror of serve::RejectedError. The
// pipelined path returns SubmitResult values instead of throwing, so a
// load generator can count rejections by cause without exception traffic.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/protocol.h"
#include "util/fd.h"

namespace bro::net {

/// A non-kOk response to a synchronous call.
class RpcError : public std::runtime_error {
 public:
  RpcError(Status status, std::uint64_t queue_depth, const std::string& what)
      : std::runtime_error(what), status_(status), queue_depth_(queue_depth) {}

  Status status() const { return status_; }
  std::uint64_t queue_depth() const { return queue_depth_; }

 private:
  Status status_;
  std::uint64_t queue_depth_;
};

class NetClient {
 public:
  /// Connect to host:port (IPv4 dotted-quad). Throws std::runtime_error
  /// when the connection cannot be established.
  NetClient(const std::string& host, int port,
            std::size_t max_frame_bytes = kDefaultMaxFrameBytes);

  NetClient(NetClient&&) = default;
  NetClient& operator=(NetClient&&) = default;

  // --- synchronous calls (throw RpcError on a non-kOk status) -----------

  void ping();

  /// y = A[matrix_id] * x, round-tripped through the server.
  std::vector<value_t> submit(const std::string& matrix_id,
                              std::span<const value_t> x,
                              const std::string& client_id = "");

  /// Register `bro_bytes` (a tagged .bro stream) under matrix_id.
  UploadAck upload_matrix(const std::string& matrix_id,
                          std::span<const std::uint8_t> bro_bytes);

  /// Returns whether the id had been registered.
  bool remove_matrix(const std::string& matrix_id);

  StatsSnapshot stats();

  /// Ask the server to shut down gracefully; returns once acknowledged.
  void drain();

  // --- pipelining -------------------------------------------------------

  /// Outcome of one pipelined submit; rejections are data, not exceptions.
  struct SubmitResult {
    Status status = Status::kInternalError;
    std::vector<value_t> y;    // valid when status == kOk
    std::uint64_t queue_depth = 0;
    std::string message;

    bool ok() const { return status == Status::kOk; }
  };

  /// Buffer a SUBMIT frame locally; returns its request id. Nothing is
  /// written until flush().
  std::uint64_t enqueue_submit(const std::string& matrix_id,
                               std::span<const value_t> x,
                               const std::string& client_id = "");

  /// Write every buffered frame in one send (one TCP burst — this is what
  /// lets a test fill the server's bounded queue deterministically).
  void flush();

  /// Block until the response for `request_id` arrives (responses for
  /// other in-flight ids are cached and handed out on their own waits).
  SubmitResult wait_submit(std::uint64_t request_id);

 private:
  std::uint64_t next_id() { return next_id_++; }
  void send_all(const std::uint8_t* data, std::size_t n);
  /// Read frames until `request_id`'s response arrives.
  Frame read_response(std::uint64_t request_id);
  /// send + read_response + throw RpcError on non-kOk.
  Frame call(std::vector<std::uint8_t> frame, std::uint64_t request_id);

  UniqueFd fd_;
  FrameAssembler assembler_;
  std::uint64_t next_id_ = 1;
  std::vector<std::uint8_t> send_buf_; // frames staged by enqueue_submit
  std::unordered_map<std::uint64_t, Frame> received_; // out-of-order cache
};

} // namespace bro::net
