#include "net/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/error.h"

namespace bro::net {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

} // namespace

NetClient::NetClient(const std::string& host, int port,
                     std::size_t max_frame_bytes)
    : assembler_(max_frame_bytes) {
  BRO_CHECK_MSG(port > 0 && port <= 65535,
                "client port must be in [1, 65535]");
  fd_.reset(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd_) throw_errno("socket");

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  BRO_CHECK_MSG(::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) == 1,
                "bad host address '" << host << '\'');
  if (::connect(fd_.get(), reinterpret_cast<sockaddr*>(&addr),
                sizeof(addr)) != 0)
    throw_errno("connect " + host + ":" + std::to_string(port));
  const int one = 1;
  ::setsockopt(fd_.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

void NetClient::send_all(const std::uint8_t* data, std::size_t n) {
  std::size_t off = 0;
  while (off < n) {
    const ssize_t sent =
        ::send(fd_.get(), data + off, n - off, MSG_NOSIGNAL);
    if (sent < 0) {
      if (errno == EINTR) continue;
      throw_errno("send");
    }
    off += static_cast<std::size_t>(sent);
  }
}

Frame NetClient::read_response(std::uint64_t request_id) {
  for (;;) {
    if (auto it = received_.find(request_id); it != received_.end()) {
      Frame f = std::move(it->second);
      received_.erase(it);
      return f;
    }
    while (auto f = assembler_.next()) {
      BRO_CHECK_MSG(f->header.kind == FrameKind::kResponse,
                    "request frame received by client");
      received_.emplace(f->header.request_id, std::move(*f));
    }
    if (received_.count(request_id)) continue;

    std::uint8_t buf[64 * 1024];
    const ssize_t got = ::recv(fd_.get(), buf, sizeof(buf), 0);
    if (got > 0) {
      assembler_.append(buf, static_cast<std::size_t>(got));
    } else if (got == 0) {
      throw std::runtime_error(
          "connection closed while awaiting response " +
          std::to_string(request_id));
    } else if (errno != EINTR) {
      throw_errno("recv");
    }
  }
}

Frame NetClient::call(std::vector<std::uint8_t> frame,
                      std::uint64_t request_id) {
  send_all(frame.data(), frame.size());
  Frame resp = read_response(request_id);
  if (resp.status() != Status::kOk) {
    const ErrorInfo e = parse_error_response(resp);
    throw RpcError(e.status, e.queue_depth,
                   std::string(status_name(e.status)) + ": " + e.message);
  }
  return resp;
}

void NetClient::ping() {
  const std::uint64_t rid = next_id();
  call(make_empty_request(rid, Op::kPing), rid);
}

std::vector<value_t> NetClient::submit(const std::string& matrix_id,
                                       std::span<const value_t> x,
                                       const std::string& client_id) {
  const std::uint64_t rid = next_id();
  return parse_vector_response(
      call(make_submit_request(rid, matrix_id, client_id, x), rid));
}

UploadAck NetClient::upload_matrix(const std::string& matrix_id,
                                   std::span<const std::uint8_t> bro_bytes) {
  const std::uint64_t rid = next_id();
  return parse_upload_ack(
      call(make_upload_request(rid, matrix_id, bro_bytes), rid));
}

bool NetClient::remove_matrix(const std::string& matrix_id) {
  const std::uint64_t rid = next_id();
  return parse_bool_response(call(make_remove_request(rid, matrix_id), rid));
}

StatsSnapshot NetClient::stats() {
  const std::uint64_t rid = next_id();
  return parse_stats_response(call(make_empty_request(rid, Op::kStats), rid));
}

void NetClient::drain() {
  const std::uint64_t rid = next_id();
  call(make_empty_request(rid, Op::kDrain), rid);
}

std::uint64_t NetClient::enqueue_submit(const std::string& matrix_id,
                                        std::span<const value_t> x,
                                        const std::string& client_id) {
  const std::uint64_t rid = next_id();
  const auto frame = make_submit_request(rid, matrix_id, client_id, x);
  send_buf_.insert(send_buf_.end(), frame.begin(), frame.end());
  return rid;
}

void NetClient::flush() {
  if (send_buf_.empty()) return;
  send_all(send_buf_.data(), send_buf_.size());
  send_buf_.clear();
}

NetClient::SubmitResult NetClient::wait_submit(std::uint64_t request_id) {
  flush();
  Frame resp = read_response(request_id);
  SubmitResult r;
  r.status = resp.status();
  if (r.status == Status::kOk) {
    r.y = parse_vector_response(resp);
  } else {
    const ErrorInfo e = parse_error_response(resp);
    r.queue_depth = e.queue_depth;
    r.message = e.message;
  }
  return r;
}

} // namespace bro::net
