#include "net/protocol.h"

#include <cstring>
#include <sstream>

#include "core/serialize.h"
#include "engine/format_registry.h"
#include "sparse/convert.h"
#include "util/error.h"

namespace bro::net {

const char* op_name(Op op) {
  switch (op) {
    case Op::kPing: return "PING";
    case Op::kSubmit: return "SUBMIT";
    case Op::kUploadMatrix: return "UPLOAD_MATRIX";
    case Op::kRemove: return "REMOVE";
    case Op::kStats: return "STATS";
    case Op::kDrain: return "DRAIN";
  }
  return "UNKNOWN";
}

const char* status_name(Status s) {
  switch (s) {
    case Status::kOk: return "OK";
    case Status::kQueueFull: return "QUEUE_FULL";
    case Status::kShed: return "SHED";
    case Status::kThrottled: return "THROTTLED";
    case Status::kUnknownMatrix: return "UNKNOWN_MATRIX";
    case Status::kBadRequest: return "BAD_REQUEST";
    case Status::kInternalError: return "INTERNAL_ERROR";
    case Status::kShuttingDown: return "SHUTTING_DOWN";
  }
  return "UNKNOWN";
}

Status status_for(serve::RejectCause cause) {
  switch (cause) {
    case serve::RejectCause::kQueueFull: return Status::kQueueFull;
    case serve::RejectCause::kShed: return Status::kShed;
    case serve::RejectCause::kThrottled: return Status::kThrottled;
  }
  return Status::kInternalError;
}

std::vector<std::uint8_t> encode_frame(FrameKind kind, std::uint8_t code,
                                       std::uint64_t request_id,
                                       std::span<const std::uint8_t> payload) {
  ByteWriter w;
  w.put<std::uint32_t>(static_cast<std::uint32_t>(payload.size()));
  w.put<std::uint8_t>(kProtocolVersion);
  w.put<std::uint8_t>(static_cast<std::uint8_t>(kind));
  w.put<std::uint8_t>(code);
  w.put<std::uint8_t>(0); // reserved
  w.put<std::uint64_t>(request_id);
  w.put_bytes(payload.data(), payload.size());
  return w.take();
}

void FrameAssembler::append(const std::uint8_t* data, std::size_t n) {
  // Compact once the consumed prefix dominates, so long-lived connections
  // do not accrete every frame they ever received.
  if (pos_ > 0 && pos_ >= buf_.size() / 2) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
    pos_ = 0;
  }
  buf_.insert(buf_.end(), data, data + n);
}

std::optional<Frame> FrameAssembler::next() {
  if (buffered() < kFrameHeaderBytes) return std::nullopt;
  const std::uint8_t* h = buf_.data() + pos_;
  FrameHeader header;
  std::memcpy(&header.payload_len, h, 4);
  header.version = h[4];
  const std::uint8_t kind = h[5];
  header.code = h[6];
  const std::uint8_t reserved = h[7];
  std::memcpy(&header.request_id, h + 8, 8);

  if (header.version != kProtocolVersion)
    throw ProtocolError("frame version " + std::to_string(header.version) +
                        " != " + std::to_string(kProtocolVersion));
  if (kind > 1)
    throw ProtocolError("frame kind " + std::to_string(kind) + " is not 0/1");
  if (reserved != 0) throw ProtocolError("frame reserved byte is not 0");
  if (header.payload_len > max_frame_bytes_)
    throw ProtocolError("frame payload " + std::to_string(header.payload_len) +
                        " B exceeds the " + std::to_string(max_frame_bytes_) +
                        " B bound");
  header.kind = static_cast<FrameKind>(kind);

  if (buffered() < kFrameHeaderBytes + header.payload_len)
    return std::nullopt;

  Frame f;
  f.header = header;
  const std::uint8_t* p = buf_.data() + pos_ + kFrameHeaderBytes;
  f.payload.assign(p, p + header.payload_len);
  pos_ += kFrameHeaderBytes + header.payload_len;
  return f;
}

namespace {

std::vector<std::uint8_t> request_frame(std::uint64_t request_id, Op op,
                                        ByteWriter&& payload) {
  const auto body = payload.take();
  return encode_frame(FrameKind::kRequest, static_cast<std::uint8_t>(op),
                      request_id, body);
}

std::vector<std::uint8_t> response_frame(std::uint64_t request_id,
                                         Status status,
                                         ByteWriter&& payload) {
  const auto body = payload.take();
  return encode_frame(FrameKind::kResponse, static_cast<std::uint8_t>(status),
                      request_id, body);
}

ByteReader payload_reader(const Frame& f) {
  return ByteReader(f.payload.data(), f.payload.size());
}

} // namespace

std::vector<std::uint8_t> make_submit_request(std::uint64_t request_id,
                                              const std::string& matrix_id,
                                              const std::string& client_id,
                                              std::span<const value_t> x) {
  ByteWriter w;
  w.put_string(matrix_id);
  w.put_string(client_id);
  w.put_array<value_t>(x);
  return request_frame(request_id, Op::kSubmit, std::move(w));
}

SubmitRequest parse_submit_request(const Frame& f) {
  auto r = payload_reader(f);
  SubmitRequest req;
  req.matrix_id = r.get_string();
  req.client_id = r.get_string();
  req.x = r.get_array<value_t>();
  BRO_CHECK_MSG(r.done(), "trailing bytes after SUBMIT payload");
  return req;
}

std::vector<std::uint8_t> make_vector_response(std::uint64_t request_id,
                                               std::span<const value_t> y) {
  ByteWriter w;
  w.put_array<value_t>(y);
  return response_frame(request_id, Status::kOk, std::move(w));
}

std::vector<value_t> parse_vector_response(const Frame& f) {
  auto r = payload_reader(f);
  auto y = r.get_array<value_t>();
  BRO_CHECK_MSG(r.done(), "trailing bytes after vector payload");
  return y;
}

std::vector<std::uint8_t> make_error_response(std::uint64_t request_id,
                                              Status status,
                                              std::uint64_t queue_depth,
                                              const std::string& message) {
  ByteWriter w;
  w.put<std::uint64_t>(queue_depth);
  w.put_string(message);
  return response_frame(request_id, status, std::move(w));
}

ErrorInfo parse_error_response(const Frame& f) {
  auto r = payload_reader(f);
  ErrorInfo e;
  e.status = f.status();
  e.queue_depth = r.get<std::uint64_t>();
  e.message = r.get_string();
  return e;
}

std::vector<std::uint8_t> make_upload_request(
    std::uint64_t request_id, const std::string& matrix_id,
    std::span<const std::uint8_t> bro_bytes) {
  ByteWriter w;
  w.put_string(matrix_id);
  w.put_array<std::uint8_t>(bro_bytes);
  return request_frame(request_id, Op::kUploadMatrix, std::move(w));
}

UploadRequest parse_upload_request(const Frame& f) {
  auto r = payload_reader(f);
  UploadRequest req;
  req.matrix_id = r.get_string();
  req.bro_bytes = r.get_array<std::uint8_t>();
  BRO_CHECK_MSG(r.done(), "trailing bytes after UPLOAD_MATRIX payload");
  return req;
}

std::vector<std::uint8_t> make_upload_ack(std::uint64_t request_id,
                                          const UploadAck& ack) {
  ByteWriter w;
  w.put<std::uint64_t>(ack.rows);
  w.put<std::uint64_t>(ack.cols);
  w.put<std::uint64_t>(ack.nnz);
  return response_frame(request_id, Status::kOk, std::move(w));
}

UploadAck parse_upload_ack(const Frame& f) {
  auto r = payload_reader(f);
  UploadAck ack;
  ack.rows = r.get<std::uint64_t>();
  ack.cols = r.get<std::uint64_t>();
  ack.nnz = r.get<std::uint64_t>();
  return ack;
}

std::vector<std::uint8_t> make_remove_request(std::uint64_t request_id,
                                              const std::string& matrix_id) {
  ByteWriter w;
  w.put_string(matrix_id);
  return request_frame(request_id, Op::kRemove, std::move(w));
}

std::string parse_remove_request(const Frame& f) {
  auto r = payload_reader(f);
  auto id = r.get_string();
  BRO_CHECK_MSG(r.done(), "trailing bytes after REMOVE payload");
  return id;
}

std::vector<std::uint8_t> make_bool_response(std::uint64_t request_id,
                                             bool value) {
  ByteWriter w;
  w.put<std::uint8_t>(value ? 1 : 0);
  return response_frame(request_id, Status::kOk, std::move(w));
}

bool parse_bool_response(const Frame& f) {
  auto r = payload_reader(f);
  return r.get<std::uint8_t>() != 0;
}

std::vector<std::uint8_t> make_empty_request(std::uint64_t request_id, Op op) {
  return request_frame(request_id, op, ByteWriter{});
}

std::vector<std::uint8_t> make_ok_response(std::uint64_t request_id) {
  return response_frame(request_id, Status::kOk, ByteWriter{});
}

StatsSnapshot snapshot_from(const serve::ServerMetrics& m) {
  StatsSnapshot s;
  s.submitted = m.submitted;
  s.rejected = m.rejected;
  s.shed = m.shed;
  s.throttled = m.throttled;
  s.queue_full = m.rejected - m.shed - m.throttled;
  s.served = m.served;
  s.failed = m.failed;
  s.batches = m.batches;
  s.sharded_batches = m.sharded_batches;
  s.wait_count = m.queue_wait.count();
  s.exec_count = m.execute.count();
  s.wait_p50 = m.queue_wait.percentile(50);
  s.wait_p99 = m.queue_wait.percentile(99);
  s.wait_mean = m.queue_wait.mean();
  s.exec_p50 = m.execute.percentile(50);
  s.exec_p99 = m.execute.percentile(99);
  s.exec_mean = m.execute.mean();
  return s;
}

std::vector<std::uint8_t> make_stats_response(std::uint64_t request_id,
                                              const StatsSnapshot& s) {
  ByteWriter w;
  w.put(s.submitted);
  w.put(s.rejected);
  w.put(s.queue_full);
  w.put(s.shed);
  w.put(s.throttled);
  w.put(s.served);
  w.put(s.failed);
  w.put(s.batches);
  w.put(s.sharded_batches);
  w.put(s.wait_count);
  w.put(s.exec_count);
  w.put(s.wait_p50);
  w.put(s.wait_p99);
  w.put(s.wait_mean);
  w.put(s.exec_p50);
  w.put(s.exec_p99);
  w.put(s.exec_mean);
  return response_frame(request_id, Status::kOk, std::move(w));
}

StatsSnapshot parse_stats_response(const Frame& f) {
  auto r = payload_reader(f);
  StatsSnapshot s;
  s.submitted = r.get<std::uint64_t>();
  s.rejected = r.get<std::uint64_t>();
  s.queue_full = r.get<std::uint64_t>();
  s.shed = r.get<std::uint64_t>();
  s.throttled = r.get<std::uint64_t>();
  s.served = r.get<std::uint64_t>();
  s.failed = r.get<std::uint64_t>();
  s.batches = r.get<std::uint64_t>();
  s.sharded_batches = r.get<std::uint64_t>();
  s.wait_count = r.get<std::uint64_t>();
  s.exec_count = r.get<std::uint64_t>();
  s.wait_p50 = r.get<double>();
  s.wait_p99 = r.get<double>();
  s.wait_mean = r.get<double>();
  s.exec_p50 = r.get<double>();
  s.exec_p99 = r.get<double>();
  s.exec_mean = r.get<double>();
  BRO_CHECK_MSG(r.done(), "trailing bytes after STATS payload");
  return s;
}

std::vector<std::uint8_t> matrix_to_bro_bytes(const core::Matrix& m,
                                              core::Format format) {
  const auto& t = engine::traits(format);
  BRO_CHECK_MSG(t.serialize != nullptr,
                t.name << " has no serialized form (use a BRO format)");
  std::ostringstream out(std::ios::binary);
  t.serialize(out, m);
  const std::string s = out.str();
  return std::vector<std::uint8_t>(s.begin(), s.end());
}

core::Matrix matrix_from_bro_bytes(std::span<const std::uint8_t> bytes) {
  std::istringstream in(
      std::string(reinterpret_cast<const char*>(bytes.data()), bytes.size()),
      std::ios::binary);
  // The tag dispatch lives in core::read_bro_to_csr, so uploads accept every
  // serializable format automatically.
  return core::Matrix::from_csr(core::read_bro_to_csr(in));
}

} // namespace bro::net
