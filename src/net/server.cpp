#include "net/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <deque>
#include <future>
#include <vector>

#include "util/error.h"

namespace bro::net {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0)
    throw_errno("fcntl(O_NONBLOCK)");
}

} // namespace

void NetServerOptions::validate() const {
  BRO_CHECK_MSG(port >= 0 && port <= 65535,
                "NetServer port must be in [0, 65535]");
  BRO_CHECK_MSG(backlog >= 1, "NetServer backlog must be >= 1");
  BRO_CHECK_MSG(max_frame_bytes >= kFrameHeaderBytes,
                "NetServer max_frame_bytes too small for a header");
  BRO_CHECK_MSG(!listen.empty(), "NetServer listen address must be set");
}

/// One accepted TCP connection: reassembly buffer in, write queue out, and
/// the submit futures whose responses this connection still owes.
struct NetServer::Connection {
  explicit Connection(UniqueFd f, std::size_t max_frame)
      : fd(std::move(f)), assembler(max_frame) {}

  UniqueFd fd;
  FrameAssembler assembler;

  // Write side: encoded response frames, drained front-first as the socket
  // accepts bytes; write_off is the progress inside the front buffer.
  std::deque<std::vector<std::uint8_t>> write_queue;
  std::size_t write_off = 0;

  struct Pending {
    std::uint64_t request_id = 0;
    std::future<std::vector<value_t>> future;
  };
  std::vector<Pending> pending; // in-flight SUBMITs, any completion order

  bool close_after_flush = false; // drain path: flush, then close
  bool dead = false;              // remove at end of the iteration
};

/// Per-run() loop state (connections live exactly as long as one run).
struct NetServer::Loop {
  std::vector<std::unique_ptr<Connection>> conns;
  bool stopping = false; // drain finished; exit once every queue flushes
};

NetServer::NetServer(serve::SpmvServer& server, NetServerOptions opts)
    : server_(server), opts_((opts.validate(), std::move(opts))) {
  // Self-pipe: stop() wakes a loop that is blocked in poll().
  int pipefd[2];
  if (::pipe(pipefd) != 0) throw_errno("pipe");
  wake_read_.reset(pipefd[0]);
  wake_write_.reset(pipefd[1]);
  set_nonblocking(wake_read_.get());
  set_nonblocking(wake_write_.get());

  listen_fd_.reset(::socket(AF_INET, SOCK_STREAM, 0));
  if (!listen_fd_) throw_errno("socket");
  const int one = 1;
  ::setsockopt(listen_fd_.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(opts_.port));
  BRO_CHECK_MSG(::inet_pton(AF_INET, opts_.listen.c_str(), &addr.sin_addr) ==
                    1,
                "bad listen address '" << opts_.listen << '\'');
  if (::bind(listen_fd_.get(), reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0)
    throw_errno("bind " + opts_.listen + ":" + std::to_string(opts_.port));
  if (::listen(listen_fd_.get(), opts_.backlog) != 0) throw_errno("listen");
  set_nonblocking(listen_fd_.get());

  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_.get(), reinterpret_cast<sockaddr*>(&bound),
                    &len) != 0)
    throw_errno("getsockname");
  port_ = ntohs(bound.sin_port);
}

NetServer::~NetServer() { stop(); }

void NetServer::start() {
  BRO_CHECK_MSG(!loop_thread_.joinable(), "NetServer already started");
  loop_thread_ = std::thread([this] { run(); });
}

void NetServer::stop() {
  stop_requested_.store(true);
  if (wake_write_) {
    const char b = 1;
    // Best-effort: a full pipe already guarantees a pending wake-up.
    (void)!::write(wake_write_.get(), &b, 1);
  }
  if (loop_thread_.joinable()) loop_thread_.join();
}

NetServerStats NetServer::stats() const {
  std::lock_guard lk(stats_mu_);
  return stats_;
}

void NetServer::begin_drain(Loop& loop) {
  if (draining_.exchange(true)) return;
  listen_fd_.reset(); // stop accepting

  // Final read sweep: requests the kernel has already buffered for any
  // connection get typed kShuttingDown answers (handle_frame sees
  // draining_) rather than vanishing when the connection closes below.
  std::uint8_t buf[4096];
  for (auto& cp : loop.conns) {
    Connection& c = *cp;
    if (c.dead) continue;
    for (;;) {
      const ssize_t got = ::recv(c.fd.get(), buf, sizeof(buf), 0);
      if (got <= 0) break;
      c.assembler.append(buf, static_cast<std::size_t>(got));
    }
    try {
      while (auto frame = c.assembler.next()) handle_frame(loop, c, *frame);
    } catch (const ProtocolError&) {
      c.dead = true;
      c.fd.reset();
      std::lock_guard lk(stats_mu_);
      ++stats_.protocol_errors;
      ++stats_.closed;
    }
  }

  // Block until the queue is empty and no batch is in flight; with a
  // synchronous SpmvServer drain() itself drives poll_once. Dispatch
  // threads keep completing futures while we wait.
  server_.drain();
  loop.stopping = true;
  for (auto& c : loop.conns) c->close_after_flush = true;
}

void NetServer::handle_frame(Loop& loop, Connection& conn,
                             const Frame& frame) {
  {
    std::lock_guard lk(stats_mu_);
    ++stats_.frames_in;
  }
  if (frame.header.kind != FrameKind::kRequest)
    throw ProtocolError("response frame received by server");
  const std::uint64_t rid = frame.header.request_id;
  const auto respond = [&](std::vector<std::uint8_t> bytes) {
    conn.write_queue.push_back(std::move(bytes));
  };

  if (draining_.load()) {
    // DRAIN is idempotent: a second drainer gets OK once the first drain
    // has completed (which it has — begin_drain is synchronous).
    if (frame.op() == Op::kDrain)
      respond(make_ok_response(rid));
    else
      respond(make_error_response(rid, Status::kShuttingDown, 0,
                                  "server is draining"));
    return;
  }

  switch (frame.op()) {
    case Op::kPing:
      respond(make_ok_response(rid));
      return;

    case Op::kSubmit: {
      SubmitRequest req;
      try {
        req = parse_submit_request(frame);
      } catch (const std::exception& e) {
        respond(make_error_response(rid, Status::kBadRequest, 0, e.what()));
        return;
      }
      // Pre-validate so the wire can distinguish unknown-id from a
      // malformed x (SpmvServer folds both into one runtime_error).
      const auto m = server_.matrix(req.matrix_id);
      if (!m) {
        respond(make_error_response(rid, Status::kUnknownMatrix, 0,
                                    "unknown matrix id '" + req.matrix_id +
                                        "'"));
        return;
      }
      if (req.x.size() != static_cast<std::size_t>(m->cols())) {
        respond(make_error_response(
            rid, Status::kBadRequest, 0,
            "matrix '" + req.matrix_id + "' needs x of size " +
                std::to_string(m->cols()) + ", got " +
                std::to_string(req.x.size())));
        return;
      }
      try {
        auto future =
            server_.submit(req.matrix_id, std::move(req.x), req.client_id);
        conn.pending.push_back({rid, std::move(future)});
      } catch (const serve::RejectedError& e) {
        respond(make_error_response(rid, status_for(e.cause()),
                                    e.queue_depth(), e.what()));
      } catch (const std::exception& e) {
        respond(make_error_response(rid, Status::kInternalError, 0, e.what()));
      }
      return;
    }

    case Op::kUploadMatrix: {
      try {
        UploadRequest req = parse_upload_request(frame);
        auto m = std::make_shared<const core::Matrix>(
            matrix_from_bro_bytes(req.bro_bytes));
        UploadAck ack;
        ack.rows = static_cast<std::uint64_t>(m->rows());
        ack.cols = static_cast<std::uint64_t>(m->cols());
        ack.nnz = m->nnz();
        server_.add_matrix(req.matrix_id, std::move(m));
        respond(make_upload_ack(rid, ack));
      } catch (const std::exception& e) {
        respond(make_error_response(rid, Status::kBadRequest, 0, e.what()));
      }
      return;
    }

    case Op::kRemove: {
      try {
        respond(make_bool_response(
            rid, server_.remove_matrix(parse_remove_request(frame))));
      } catch (const std::exception& e) {
        respond(make_error_response(rid, Status::kBadRequest, 0, e.what()));
      }
      return;
    }

    case Op::kStats:
      respond(make_stats_response(rid, snapshot_from(server_.metrics())));
      return;

    case Op::kDrain:
      begin_drain(loop);
      respond(make_ok_response(rid));
      return;
  }
  respond(make_error_response(rid, Status::kBadRequest, 0,
                              "unknown op " +
                                  std::to_string(frame.header.code)));
}

void NetServer::run() {
  Loop loop;

  const auto close_conn = [&](Connection& c) {
    if (c.dead) return;
    c.dead = true;
    c.fd.reset();
    // Orphaned futures are simply dropped: std::future's destructor does
    // not block, and the executor fulfills the promise regardless.
    std::lock_guard lk(stats_mu_);
    ++stats_.closed;
  };

  std::vector<pollfd> pfds;
  std::vector<Connection*> pfd_conns;
  std::vector<std::uint8_t> rdbuf(64 * 1024);

  for (;;) {
    // --- build the poll set -------------------------------------------
    pfds.clear();
    pfd_conns.clear();
    pfds.push_back({wake_read_.get(), POLLIN, 0});
    if (listen_fd_)
      pfds.push_back({listen_fd_.get(), POLLIN, 0});
    const std::size_t first_conn = pfds.size();
    bool any_pending = false;
    for (auto& c : loop.conns) {
      short events = 0;
      if (!c->close_after_flush) events |= POLLIN;
      if (!c->write_queue.empty()) events |= POLLOUT;
      pfds.push_back({c->fd.get(), events, 0});
      pfd_conns.push_back(c.get());
      any_pending = any_pending || !c->pending.empty();
    }

    // Pending futures complete on dispatch threads; poll with a short
    // timeout so they are harvested promptly. Otherwise sleep until IO.
    const int timeout_ms = any_pending || loop.stopping ? 1 : 500;
    const int n = ::poll(pfds.data(), pfds.size(), timeout_ms);
    if (n < 0 && errno != EINTR) throw_errno("poll");

    // --- wake pipe / external stop ------------------------------------
    if (pfds[0].revents & POLLIN) {
      std::uint8_t sink[64];
      while (::read(wake_read_.get(), sink, sizeof(sink)) > 0) {
      }
    }
    if (stop_requested_.load()) begin_drain(loop);

    // --- accept -------------------------------------------------------
    if (listen_fd_ && first_conn >= 2 && (pfds[1].revents & POLLIN)) {
      for (;;) {
        UniqueFd fd(::accept(listen_fd_.get(), nullptr, nullptr));
        if (!fd) break; // EAGAIN or transient error: try next iteration
        set_nonblocking(fd.get());
        const int one = 1;
        ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
        loop.conns.push_back(std::make_unique<Connection>(
            std::move(fd), opts_.max_frame_bytes));
        {
          std::lock_guard lk(stats_mu_);
          ++stats_.accepted;
        }
      }
    }

    // --- reads + frame handling ---------------------------------------
    for (std::size_t i = 0; i < pfd_conns.size(); ++i) {
      Connection& c = *pfd_conns[i];
      const short rev = pfds[first_conn + i].revents;
      if (rev & (POLLERR | POLLHUP | POLLNVAL)) {
        if (c.write_queue.empty() || (rev & (POLLERR | POLLNVAL)))
          close_conn(c);
      }
      if (c.dead || !(rev & POLLIN)) continue;
      bool peer_closed = false;
      for (;;) {
        const ssize_t got = ::recv(c.fd.get(), rdbuf.data(), rdbuf.size(), 0);
        if (got > 0) {
          c.assembler.append(rdbuf.data(), static_cast<std::size_t>(got));
          if (got < static_cast<ssize_t>(rdbuf.size())) break;
        } else if (got == 0) {
          peer_closed = true;
          break;
        } else {
          if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR)
            break;
          peer_closed = true;
          break;
        }
      }
      try {
        while (!c.dead && c.assembler.buffered() > 0)
          if (auto frame = c.assembler.next())
            handle_frame(loop, c, *frame);
          else
            break;
      } catch (const ProtocolError&) {
        // Reassembly lost sync; nothing sensible can follow.
        if (!c.dead) {
          std::lock_guard lk(stats_mu_);
          ++stats_.protocol_errors;
        }
        close_conn(c);
        continue;
      }
      if (peer_closed && c.write_queue.empty()) close_conn(c);
      if (peer_closed) c.close_after_flush = true;
    }

    // --- synchronous SpmvServer: the loop is the dispatcher ------------
    if (server_.options().threads == 0)
      while (server_.poll_once()) {
      }

    // --- harvest completed futures onto write queues -------------------
    for (auto& cp : loop.conns) {
      Connection& c = *cp;
      if (c.dead) continue;
      for (std::size_t i = 0; i < c.pending.size();) {
        auto& p = c.pending[i];
        if (p.future.wait_for(std::chrono::seconds(0)) !=
            std::future_status::ready) {
          ++i;
          continue;
        }
        try {
          const std::vector<value_t> y = p.future.get();
          c.write_queue.push_back(make_vector_response(p.request_id, y));
        } catch (const std::exception& e) {
          c.write_queue.push_back(make_error_response(
              p.request_id, Status::kInternalError, 0, e.what()));
        }
        c.pending.erase(c.pending.begin() +
                        static_cast<std::ptrdiff_t>(i));
      }
    }

    // --- flush write queues --------------------------------------------
    for (auto& cp : loop.conns) {
      Connection& c = *cp;
      if (c.dead) continue;
      while (!c.write_queue.empty()) {
        const auto& buf = c.write_queue.front();
        const ssize_t sent =
            ::send(c.fd.get(), buf.data() + c.write_off,
                   buf.size() - c.write_off, MSG_NOSIGNAL);
        if (sent < 0) {
          if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR)
            break;
          close_conn(c); // EPIPE / ECONNRESET: the peer is gone
          break;
        }
        c.write_off += static_cast<std::size_t>(sent);
        if (c.write_off < buf.size()) break; // socket full; POLLOUT resumes
        c.write_queue.pop_front();
        c.write_off = 0;
        std::lock_guard lk(stats_mu_);
        ++stats_.frames_out;
      }
      if (!c.dead && c.close_after_flush && c.write_queue.empty() &&
          c.pending.empty())
        close_conn(c);
    }

    // --- sweep dead connections ----------------------------------------
    std::erase_if(loop.conns,
                  [](const std::unique_ptr<Connection>& c) { return c->dead; });

    // --- exit after a drain once every response has been flushed -------
    if (loop.stopping) {
      bool all_flushed = true;
      for (const auto& c : loop.conns)
        all_flushed =
            all_flushed && c->write_queue.empty() && c->pending.empty();
      if (all_flushed) break;
    }
  }

  for (auto& c : loop.conns)
    if (!c->dead) {
      c->fd.reset();
      std::lock_guard lk(stats_mu_);
      ++stats_.closed;
    }
}

} // namespace bro::net
