// Permutation utilities shared by BAR, RCM and AMD experiments.
#pragma once

#include <span>
#include <vector>

#include "sparse/csr.h"

namespace bro::reorder {

/// True if perm is a bijection on [0, n).
bool is_permutation(std::span<const index_t> perm);

/// inverse[perm[i]] = i.
std::vector<index_t> invert(std::span<const index_t> perm);

/// Row permutation A' = P*A: row i of the result is row perm[i] of A.
/// This is what BAR applies (y' = P*y, same x).
sparse::Csr permute_rows(const sparse::Csr& csr, std::span<const index_t> perm);

/// Symmetric permutation A' = P*A*P^T (rows and columns), the form RCM and
/// AMD orderings are used in.
sparse::Csr permute_symmetric(const sparse::Csr& csr,
                              std::span<const index_t> perm);

/// Symmetrized adjacency structure (pattern of A + A^T without the
/// diagonal), as used by the graph-based ordering algorithms.
std::vector<std::vector<index_t>> symmetric_adjacency(const sparse::Csr& csr);

/// Bandwidth of a matrix: max |i - j| over non-zeros (RCM's target metric).
index_t bandwidth(const sparse::Csr& csr);

} // namespace bro::reorder
