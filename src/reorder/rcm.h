// Reverse Cuthill-McKee ordering (George & Liu), the classical
// bandwidth-reducing reordering the paper compares BAR against (§4.2.4).
#pragma once

#include <vector>

#include "sparse/csr.h"

namespace bro::reorder {

/// Compute the RCM ordering of a square matrix's symmetrized pattern.
/// Returns perm with perm[new] = old. Disconnected components are ordered
/// one after another, each started from a pseudo-peripheral vertex.
std::vector<index_t> rcm_order(const sparse::Csr& csr);

} // namespace bro::reorder
