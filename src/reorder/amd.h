// Approximate minimum degree ordering (Amestoy, Davis & Duff style).
//
// A quotient-graph minimum-degree elimination: variables are eliminated in
// (approximate) minimum-degree order; each elimination creates an element
// whose vertex set is the union of the pivot's variable and element
// adjacency; absorbed elements are removed. Degrees are the standard AMD
// upper bound d_i = |A_i| + Σ_e |L_e \ i| computed without supervariable
// detection — a simplification that preserves the ordering's character
// (fill-reducing, locality-agnostic) which is all the paper's comparison
// needs (§4.2.4: AMD is a non-BRO-aware baseline).
#pragma once

#include <vector>

#include "sparse/csr.h"

namespace bro::reorder {

/// Compute the AMD elimination order of a square matrix's symmetrized
/// pattern. Returns perm with perm[new] = old.
std::vector<index_t> amd_order(const sparse::Csr& csr);

} // namespace bro::reorder
