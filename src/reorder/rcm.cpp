#include "reorder/rcm.h"

#include <algorithm>
#include <queue>

#include "reorder/permutation.h"
#include "util/error.h"

namespace bro::reorder {

namespace {

/// Pseudo-peripheral vertex: repeated BFS from the farthest minimum-degree
/// vertex of the last level (George-Liu heuristic).
index_t pseudo_peripheral(const std::vector<std::vector<index_t>>& adj,
                          index_t start, std::vector<index_t>& level_buf) {
  index_t root = start;
  index_t last_ecc = -1;
  for (int iter = 0; iter < 8; ++iter) { // converges in a few rounds
    // BFS recording levels.
    std::fill(level_buf.begin(), level_buf.end(), -1);
    std::queue<index_t> q;
    q.push(root);
    level_buf[static_cast<std::size_t>(root)] = 0;
    index_t ecc = 0;
    index_t far = root;
    while (!q.empty()) {
      const index_t u = q.front();
      q.pop();
      for (const index_t v : adj[static_cast<std::size_t>(u)]) {
        if (level_buf[static_cast<std::size_t>(v)] >= 0) continue;
        level_buf[static_cast<std::size_t>(v)] =
            level_buf[static_cast<std::size_t>(u)] + 1;
        q.push(v);
        if (level_buf[static_cast<std::size_t>(v)] > ecc) {
          ecc = level_buf[static_cast<std::size_t>(v)];
          far = v;
        }
      }
    }
    // Among the deepest level, pick the minimum-degree vertex.
    index_t best = far;
    std::size_t best_deg = adj[static_cast<std::size_t>(far)].size();
    for (index_t v = 0; v < static_cast<index_t>(adj.size()); ++v) {
      if (level_buf[static_cast<std::size_t>(v)] == ecc &&
          adj[static_cast<std::size_t>(v)].size() < best_deg) {
        best = v;
        best_deg = adj[static_cast<std::size_t>(v)].size();
      }
    }
    if (ecc <= last_ecc) break;
    last_ecc = ecc;
    root = best;
  }
  return root;
}

} // namespace

std::vector<index_t> rcm_order(const sparse::Csr& csr) {
  BRO_CHECK_MSG(csr.rows == csr.cols, "RCM requires a square matrix");
  const auto adj = symmetric_adjacency(csr);
  const index_t n = csr.rows;

  std::vector<index_t> order;
  order.reserve(static_cast<std::size_t>(n));
  std::vector<bool> visited(static_cast<std::size_t>(n), false);
  std::vector<index_t> level_buf(static_cast<std::size_t>(n), -1);
  std::vector<index_t> nbrs;

  for (index_t seed = 0; seed < n; ++seed) {
    if (visited[static_cast<std::size_t>(seed)]) continue;
    const index_t root = pseudo_peripheral(adj, seed, level_buf);

    // Cuthill-McKee BFS: neighbours visited in increasing-degree order.
    std::queue<index_t> q;
    q.push(root);
    visited[static_cast<std::size_t>(root)] = true;
    while (!q.empty()) {
      const index_t u = q.front();
      q.pop();
      order.push_back(u);
      nbrs.clear();
      for (const index_t v : adj[static_cast<std::size_t>(u)])
        if (!visited[static_cast<std::size_t>(v)]) nbrs.push_back(v);
      std::sort(nbrs.begin(), nbrs.end(), [&](index_t a, index_t b) {
        const auto da = adj[static_cast<std::size_t>(a)].size();
        const auto db = adj[static_cast<std::size_t>(b)].size();
        if (da != db) return da < db;
        return a < b;
      });
      for (const index_t v : nbrs) {
        visited[static_cast<std::size_t>(v)] = true;
        q.push(v);
      }
    }
  }

  std::reverse(order.begin(), order.end()); // the "reverse" in RCM
  return order;
}

} // namespace bro::reorder
