#include "reorder/amd.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

#include "reorder/permutation.h"
#include "util/error.h"

namespace bro::reorder {

namespace {

struct Node {
  std::vector<index_t> vars;  // adjacent uneliminated variables
  std::vector<index_t> elems; // adjacent elements (by pivot id)
  bool eliminated = false;
};

void sorted_unique(std::vector<index_t>& v) {
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
}

} // namespace

std::vector<index_t> amd_order(const sparse::Csr& csr) {
  BRO_CHECK_MSG(csr.rows == csr.cols, "AMD requires a square matrix");
  const index_t n = csr.rows;
  const auto adj = symmetric_adjacency(csr);

  std::vector<Node> nodes(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i)
    nodes[static_cast<std::size_t>(i)].vars = adj[static_cast<std::size_t>(i)];

  // Element member lists, keyed by the eliminated pivot.
  std::vector<std::vector<index_t>> element(static_cast<std::size_t>(n));
  std::vector<bool> element_alive(static_cast<std::size_t>(n), false);

  // Approximate degrees in a lazy min-heap (stale entries skipped on pop).
  using Entry = std::pair<std::int64_t, index_t>; // (degree, variable)
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  std::vector<std::int64_t> degree(static_cast<std::size_t>(n));

  const auto approx_degree = [&](index_t i) -> std::int64_t {
    const Node& nd = nodes[static_cast<std::size_t>(i)];
    std::int64_t d = static_cast<std::int64_t>(nd.vars.size());
    for (const index_t e : nd.elems)
      if (element_alive[static_cast<std::size_t>(e)])
        d += static_cast<std::int64_t>(element[static_cast<std::size_t>(e)].size()) - 1;
    return d;
  };

  for (index_t i = 0; i < n; ++i) {
    degree[static_cast<std::size_t>(i)] = approx_degree(i);
    heap.emplace(degree[static_cast<std::size_t>(i)], i);
  }

  std::vector<index_t> order;
  order.reserve(static_cast<std::size_t>(n));
  std::vector<char> mark(static_cast<std::size_t>(n), 0);

  // Dense-variable deferral (as in production AMD): variables whose degree
  // grows beyond ~c*sqrt(n) are ordered last without forming elements. This
  // bounds quotient-graph memory on matrices whose elimination graph
  // densifies (random/scattered structures).
  const std::int64_t dense_cutoff = std::max<std::int64_t>(
      32, 4 * static_cast<std::int64_t>(std::sqrt(static_cast<double>(n))));
  std::vector<index_t> deferred;

  while (order.size() + deferred.size() < static_cast<std::size_t>(n)) {
    // Pop the minimum-degree variable, skipping stale heap entries.
    index_t pivot = -1;
    while (!heap.empty()) {
      const auto [d, i] = heap.top();
      heap.pop();
      if (!nodes[static_cast<std::size_t>(i)].eliminated &&
          d == degree[static_cast<std::size_t>(i)]) {
        pivot = i;
        break;
      }
    }
    BRO_CHECK_MSG(pivot >= 0, "heap exhausted before all variables ordered");

    Node& pv = nodes[static_cast<std::size_t>(pivot)];
    if (degree[static_cast<std::size_t>(pivot)] > dense_cutoff) {
      // Too dense: defer to the end of the ordering, drop its structure.
      pv.eliminated = true;
      pv.vars.clear();
      pv.vars.shrink_to_fit();
      deferred.push_back(pivot);
      continue;
    }
    pv.eliminated = true;
    order.push_back(pivot);

    // Form the new element L_p: pivot's variables plus members of its
    // adjacent elements (which are absorbed).
    std::vector<index_t> lp;
    for (const index_t v : pv.vars)
      if (!nodes[static_cast<std::size_t>(v)].eliminated) lp.push_back(v);
    for (const index_t e : pv.elems) {
      if (!element_alive[static_cast<std::size_t>(e)]) continue;
      for (const index_t v : element[static_cast<std::size_t>(e)])
        if (!nodes[static_cast<std::size_t>(v)].eliminated) lp.push_back(v);
      element_alive[static_cast<std::size_t>(e)] = false; // absorbed
      element[static_cast<std::size_t>(e)].clear();
    }
    sorted_unique(lp);
    element[static_cast<std::size_t>(pivot)] = lp;
    element_alive[static_cast<std::size_t>(pivot)] = !lp.empty();

    // Update each member of L_p: drop the pivot and any L_p-internal
    // variable adjacency (now represented by the element), reference the
    // new element, and refresh the approximate degree.
    for (const index_t v : lp) mark[static_cast<std::size_t>(v)] = 1;
    for (const index_t v : lp) {
      Node& nv = nodes[static_cast<std::size_t>(v)];
      auto& vars = nv.vars;
      vars.erase(std::remove_if(vars.begin(), vars.end(),
                                [&](index_t u) {
                                  return u == pivot ||
                                         nodes[static_cast<std::size_t>(u)]
                                             .eliminated ||
                                         mark[static_cast<std::size_t>(u)];
                                }),
                 vars.end());
      auto& elems = nv.elems;
      elems.erase(std::remove_if(elems.begin(), elems.end(),
                                 [&](index_t e) {
                                   return !element_alive[
                                       static_cast<std::size_t>(e)];
                                 }),
                  elems.end());
      elems.push_back(pivot);
      degree[static_cast<std::size_t>(v)] = approx_degree(v);
      heap.emplace(degree[static_cast<std::size_t>(v)], v);
    }
    for (const index_t v : lp) mark[static_cast<std::size_t>(v)] = 0;
  }

  order.insert(order.end(), deferred.begin(), deferred.end());
  return order;
}

} // namespace bro::reorder
