#include "reorder/permutation.h"

#include <algorithm>

#include "sparse/convert.h"
#include "util/error.h"

namespace bro::reorder {

bool is_permutation(std::span<const index_t> perm) {
  std::vector<bool> seen(perm.size(), false);
  for (const index_t p : perm) {
    if (p < 0 || static_cast<std::size_t>(p) >= perm.size()) return false;
    if (seen[static_cast<std::size_t>(p)]) return false;
    seen[static_cast<std::size_t>(p)] = true;
  }
  return true;
}

std::vector<index_t> invert(std::span<const index_t> perm) {
  std::vector<index_t> inv(perm.size());
  for (std::size_t i = 0; i < perm.size(); ++i)
    inv[static_cast<std::size_t>(perm[i])] = static_cast<index_t>(i);
  return inv;
}

sparse::Csr permute_rows(const sparse::Csr& csr,
                         std::span<const index_t> perm) {
  BRO_CHECK(perm.size() == static_cast<std::size_t>(csr.rows));
  sparse::Csr out;
  out.rows = csr.rows;
  out.cols = csr.cols;
  out.row_ptr.resize(static_cast<std::size_t>(csr.rows) + 1);
  out.col_idx.reserve(csr.nnz());
  out.vals.reserve(csr.nnz());
  out.row_ptr[0] = 0;
  for (index_t nr = 0; nr < csr.rows; ++nr) {
    const index_t r = perm[static_cast<std::size_t>(nr)];
    for (index_t p = csr.row_ptr[r]; p < csr.row_ptr[r + 1]; ++p) {
      out.col_idx.push_back(csr.col_idx[p]);
      out.vals.push_back(csr.vals[p]);
    }
    out.row_ptr[nr + 1] = static_cast<index_t>(out.col_idx.size());
  }
  return out;
}

sparse::Csr permute_symmetric(const sparse::Csr& csr,
                              std::span<const index_t> perm) {
  BRO_CHECK(csr.rows == csr.cols);
  BRO_CHECK(perm.size() == static_cast<std::size_t>(csr.rows));
  const std::vector<index_t> inv = invert(perm);
  sparse::Coo coo;
  coo.rows = csr.rows;
  coo.cols = csr.cols;
  coo.reserve(csr.nnz());
  for (index_t nr = 0; nr < csr.rows; ++nr) {
    const index_t r = perm[static_cast<std::size_t>(nr)];
    for (index_t p = csr.row_ptr[r]; p < csr.row_ptr[r + 1]; ++p)
      coo.push(nr, inv[static_cast<std::size_t>(csr.col_idx[p])], csr.vals[p]);
  }
  return sparse::coo_to_csr(coo);
}

std::vector<std::vector<index_t>> symmetric_adjacency(const sparse::Csr& csr) {
  BRO_CHECK(csr.rows == csr.cols);
  std::vector<std::vector<index_t>> adj(static_cast<std::size_t>(csr.rows));
  for (index_t r = 0; r < csr.rows; ++r) {
    for (index_t p = csr.row_ptr[r]; p < csr.row_ptr[r + 1]; ++p) {
      const index_t c = csr.col_idx[p];
      if (c == r) continue;
      adj[static_cast<std::size_t>(r)].push_back(c);
      adj[static_cast<std::size_t>(c)].push_back(r);
    }
  }
  for (auto& nbrs : adj) {
    std::sort(nbrs.begin(), nbrs.end());
    nbrs.erase(std::unique(nbrs.begin(), nbrs.end()), nbrs.end());
  }
  return adj;
}

index_t bandwidth(const sparse::Csr& csr) {
  index_t bw = 0;
  for (index_t r = 0; r < csr.rows; ++r)
    for (index_t p = csr.row_ptr[r]; p < csr.row_ptr[r + 1]; ++p)
      bw = std::max(bw, std::abs(r - csr.col_idx[p]));
  return bw;
}

} // namespace bro::reorder
