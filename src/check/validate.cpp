#include "check/validate.h"

#include <algorithm>
#include <sstream>

#include "bits/bitwidth.h"
#include "bits/delta.h"
#include "sparse/convert.h"

namespace bro::check {

namespace {

/// Issue accumulator with a cap so a corrupt large matrix reports the first
/// violations instead of one message per entry.
class Acc {
 public:
  explicit Acc(Issues& out) : out_(out) {}

  bool full() const { return count_ >= kCap; }

  template <typename F>
  void check(bool ok, F&& describe) {
    if (ok) return;
    if (count_ < kCap) {
      std::ostringstream os;
      describe(os);
      out_.push_back(os.str());
    } else if (count_ == kCap) {
      out_.push_back("... further violations truncated");
    }
    ++count_;
  }

 private:
  static constexpr std::size_t kCap = 16;
  Issues& out_;
  std::size_t count_ = 0;
};

/// Exact structural + numerical equality of two CSR matrices (the "lossless"
/// cross-check every compressed format must pass against its source).
void compare_csr(Acc& acc, const char* what, const sparse::Csr& got,
                 const sparse::Csr& ref) {
  acc.check(got.rows == ref.rows && got.cols == ref.cols, [&](auto& os) {
    os << what << ": dimensions " << got.rows << " x " << got.cols
       << " != reference " << ref.rows << " x " << ref.cols;
  });
  acc.check(got.row_ptr == ref.row_ptr, [&](auto& os) {
    os << what << ": row pointer array differs from reference";
  });
  if (got.col_idx != ref.col_idx) {
    std::size_t i = 0;
    const std::size_t n = std::min(got.col_idx.size(), ref.col_idx.size());
    while (i < n && got.col_idx[i] == ref.col_idx[i]) ++i;
    acc.check(false, [&](auto& os) {
      os << what << ": column indices differ from reference (first at entry "
         << i << ")";
    });
  }
  acc.check(got.vals == ref.vals, [&](auto& os) {
    os << what << ": values differ from reference";
  });
}

void structural_csr(Acc& acc, const sparse::Csr& a) {
  acc.check(a.rows >= 0 && a.cols >= 0, [&](auto& os) {
    os << "negative dimensions " << a.rows << " x " << a.cols;
  });
  acc.check(a.row_ptr.size() == static_cast<std::size_t>(a.rows) + 1,
            [&](auto& os) {
              os << "row_ptr has " << a.row_ptr.size() << " entries, expected "
                 << a.rows + 1;
            });
  acc.check(a.col_idx.size() == a.vals.size(), [&](auto& os) {
    os << "col_idx/vals length mismatch: " << a.col_idx.size() << " vs "
       << a.vals.size();
  });
  if (a.row_ptr.size() != static_cast<std::size_t>(a.rows) + 1) return;
  acc.check(a.row_ptr.front() == 0,
            [&](auto& os) { os << "row_ptr[0] = " << a.row_ptr.front(); });
  acc.check(static_cast<std::size_t>(a.row_ptr.back()) == a.nnz(),
            [&](auto& os) {
              os << "row_ptr back " << a.row_ptr.back() << " != nnz "
                 << a.nnz();
            });
  for (index_t r = 0; r < a.rows && !acc.full(); ++r) {
    acc.check(a.row_ptr[r + 1] >= a.row_ptr[r], [&](auto& os) {
      os << "row_ptr not monotone at row " << r << ": " << a.row_ptr[r]
         << " -> " << a.row_ptr[r + 1];
    });
    if (a.row_ptr[r + 1] < a.row_ptr[r]) continue;
    for (index_t p = a.row_ptr[r]; p < a.row_ptr[r + 1]; ++p) {
      acc.check(a.col_idx[p] >= 0 && a.col_idx[p] < a.cols, [&](auto& os) {
        os << "row " << r << ": column " << a.col_idx[p] << " out of [0, "
           << a.cols << ")";
      });
      acc.check(p == a.row_ptr[r] || a.col_idx[p] > a.col_idx[p - 1],
                [&](auto& os) {
                  os << "row " << r << ": columns not strictly increasing ("
                     << a.col_idx[p - 1] << " then " << a.col_idx[p] << ")";
                });
    }
  }
}

void structural_ell(Acc& acc, const sparse::Ell& a) {
  const std::size_t expect =
      static_cast<std::size_t>(a.rows) * static_cast<std::size_t>(a.width);
  acc.check(a.col_idx.size() == expect && a.vals.size() == expect,
            [&](auto& os) {
              os << "ELL arrays hold " << a.col_idx.size() << "/"
                 << a.vals.size() << " entries, expected rows*width = "
                 << expect;
            });
  if (a.col_idx.size() != expect || a.vals.size() != expect) return;
  for (index_t r = 0; r < a.rows && !acc.full(); ++r) {
    index_t prev = -1;
    bool in_pad = false;
    for (index_t j = 0; j < a.width; ++j) {
      const index_t c = a.col_at(r, j);
      if (c == sparse::kPad) {
        in_pad = true;
        continue;
      }
      acc.check(!in_pad, [&](auto& os) {
        os << "row " << r << ": data at column slot " << j
           << " after padding started (rows must be left-packed)";
      });
      acc.check(c >= 0 && c < a.cols, [&](auto& os) {
        os << "row " << r << ": column " << c << " out of [0, " << a.cols
           << ")";
      });
      acc.check(c > prev, [&](auto& os) {
        os << "row " << r << ": columns not strictly increasing (" << prev
           << " then " << c << ")";
      });
      prev = c;
    }
  }
}

void structural_coo(Acc& acc, const sparse::Coo& a) {
  acc.check(a.row_idx.size() == a.vals.size() &&
                a.col_idx.size() == a.vals.size(),
            [&](auto& os) {
              os << "COO array length mismatch: " << a.row_idx.size() << "/"
                 << a.col_idx.size() << "/" << a.vals.size();
            });
  if (a.row_idx.size() != a.vals.size() || a.col_idx.size() != a.vals.size())
    return;
  for (std::size_t i = 0; i < a.nnz() && !acc.full(); ++i) {
    acc.check(a.row_idx[i] >= 0 && a.row_idx[i] < a.rows, [&](auto& os) {
      os << "entry " << i << ": row " << a.row_idx[i] << " out of [0, "
         << a.rows << ")";
    });
    acc.check(a.col_idx[i] >= 0 && a.col_idx[i] < a.cols, [&](auto& os) {
      os << "entry " << i << ": column " << a.col_idx[i] << " out of [0, "
         << a.cols << ")";
    });
    acc.check(i == 0 || a.row_idx[i] > a.row_idx[i - 1] ||
                  (a.row_idx[i] == a.row_idx[i - 1] &&
                   a.col_idx[i] > a.col_idx[i - 1]),
              [&](auto& os) {
                os << "entry " << i << ": not in canonical (row, col) order";
              });
  }
}

} // namespace

Issues validate_csr(const sparse::Csr& a) {
  Issues issues;
  Acc acc(issues);
  structural_csr(acc, a);
  return issues;
}

Issues validate_coo(const sparse::Coo& a, const sparse::Csr* ref) {
  Issues issues;
  Acc acc(issues);
  structural_coo(acc, a);
  if (ref && issues.empty())
    compare_csr(acc, "COO round-trip", sparse::coo_to_csr(a), *ref);
  return issues;
}

Issues validate_ell(const sparse::Ell& a, const sparse::Csr* ref) {
  Issues issues;
  Acc acc(issues);
  structural_ell(acc, a);
  if (ref && issues.empty())
    compare_csr(acc, "ELL round-trip", sparse::ell_to_csr(a), *ref);
  return issues;
}

Issues validate_ellr(const sparse::EllR& a, const sparse::Csr* ref) {
  Issues issues;
  Acc acc(issues);
  structural_ell(acc, a.ell);
  acc.check(a.row_length.size() == static_cast<std::size_t>(a.ell.rows),
            [&](auto& os) {
              os << "row_length has " << a.row_length.size()
                 << " entries, expected " << a.ell.rows;
            });
  if (!issues.empty()) return issues;
  for (index_t r = 0; r < a.ell.rows && !acc.full(); ++r) {
    index_t len = 0;
    while (len < a.ell.width && a.ell.col_at(r, len) != sparse::kPad) ++len;
    acc.check(a.row_length[r] == len, [&](auto& os) {
      os << "row " << r << ": row_length " << a.row_length[r]
         << " != stored length " << len;
    });
  }
  if (ref && issues.empty())
    compare_csr(acc, "ELL-R round-trip", sparse::ell_to_csr(a.ell), *ref);
  return issues;
}

Issues validate_hyb(const sparse::Hyb& a, const sparse::Csr* ref) {
  Issues issues;
  Acc acc(issues);
  structural_ell(acc, a.ell);
  structural_coo(acc, a.coo);
  acc.check(a.coo.rows == a.ell.rows && a.coo.cols == a.ell.cols,
            [&](auto& os) {
              os << "ELL part is " << a.ell.rows << " x " << a.ell.cols
                 << " but COO part is " << a.coo.rows << " x " << a.coo.cols;
            });
  // Overflow entries must come after the row's ELL entries: every COO entry
  // in row r requires the row's ELL slots to be fully occupied.
  for (std::size_t i = 0; i < a.coo.nnz() && !acc.full(); ++i) {
    const index_t r = a.coo.row_idx[i];
    if (r < 0 || r >= a.ell.rows) continue; // already reported above
    const bool full_row =
        a.ell.width == 0 || a.ell.col_at(r, a.ell.width - 1) != sparse::kPad;
    acc.check(full_row, [&](auto& os) {
      os << "COO overflow entry in row " << r
         << " but the row's ELL slots are not full";
    });
  }
  if (ref && issues.empty())
    compare_csr(acc, "HYB round-trip", sparse::hyb_to_csr(a), *ref);
  return issues;
}

Issues validate_bro_ell(const core::BroEll& a, const sparse::Csr* ref) {
  Issues issues;
  Acc acc(issues);
  const std::size_t expect = static_cast<std::size_t>(a.rows()) *
                             static_cast<std::size_t>(a.width());
  acc.check(a.vals().size() == expect, [&](auto& os) {
    os << "vals holds " << a.vals().size() << " entries, expected rows*width "
       << expect;
  });

  // The slices must tile [0, rows) contiguously.
  index_t next_row = 0;
  for (std::size_t s = 0; s < a.slices().size(); ++s) {
    const auto& sl = a.slices()[s];
    acc.check(sl.first_row == next_row, [&](auto& os) {
      os << "slice " << s << " starts at row " << sl.first_row << ", expected "
         << next_row;
    });
    acc.check(sl.height > 0 && sl.height <= a.options().slice_height,
              [&](auto& os) {
                os << "slice " << s << " height " << sl.height
                   << " out of (0, " << a.options().slice_height << "]";
              });
    acc.check(sl.num_col >= 0 && sl.num_col <= a.width(), [&](auto& os) {
      os << "slice " << s << " num_col " << sl.num_col << " exceeds width "
         << a.width();
    });
    acc.check(sl.bit_alloc.size() == static_cast<std::size_t>(sl.num_col),
              [&](auto& os) {
                os << "slice " << s << " bit_alloc has " << sl.bit_alloc.size()
                   << " widths for " << sl.num_col << " columns";
              });
    for (const auto b : sl.bit_alloc)
      acc.check(b >= 1 && b <= 32, [&](auto& os) {
        os << "slice " << s << " bit width " << int(b) << " out of [1, 32]";
      });
    next_row = sl.first_row + sl.height;
  }
  acc.check(next_row == a.rows(), [&](auto& os) {
    os << "slices cover rows [0, " << next_row << "), matrix has " << a.rows();
  });
  if (!issues.empty()) return issues;

  // Decode every row: columns must be strictly increasing and in range, and
  // with a reference, identical to the source row — the only way to catch a
  // bit allocation too narrow for the slice's deltas (a truncated delta
  // still decodes to some in-range column).
  for (const auto& sl : a.slices()) {
    for (index_t i = 0; i < sl.height && !acc.full(); ++i) {
      const index_t r = sl.first_row + i;
      const std::vector<index_t> cols = a.decode_row(r);
      index_t prev = -1;
      for (const index_t c : cols) {
        acc.check(c > prev && c >= 0 && c < a.cols(), [&](auto& os) {
          os << "row " << r << ": decoded column " << c
             << " not strictly increasing in [0, " << a.cols() << ")";
        });
        prev = c;
      }
      if (!ref) continue;
      const auto want = ref->row_cols(r);
      const bool match = cols.size() == want.size() &&
                         std::equal(cols.begin(), cols.end(), want.begin());
      acc.check(match, [&](auto& os) {
        os << "row " << r << ": decoded " << cols.size()
           << " columns that differ from the source row (" << want.size()
           << " entries) — bit allocation insufficient or stream corrupt";
      });
      // The slice's advertised per-column widths must cover the row's
      // actual deltas.
      const auto deltas = bits::delta_encode_row(want);
      for (std::size_t j = 0; j < deltas.size() && j < sl.bit_alloc.size();
           ++j)
        acc.check(bits::bit_width_of(deltas[j]) <= sl.bit_alloc[j],
                  [&](auto& os) {
                    os << "row " << r << " column slot " << j << ": delta "
                       << deltas[j] << " needs "
                       << bits::bit_width_of(deltas[j])
                       << " bits but the slice allocates "
                       << int(sl.bit_alloc[j]);
                  });
      if (match) {
        const auto want_vals = ref->row_vals(r);
        for (std::size_t j = 0; j < want_vals.size(); ++j)
          acc.check(a.val_at(r, static_cast<index_t>(j)) == want_vals[j],
                    [&](auto& os) {
                      os << "row " << r << " entry " << j
                         << ": value differs from source";
                    });
      }
    }
  }
  return issues;
}

Issues validate_bro_coo(const core::BroCoo& a, const sparse::Csr* ref) {
  Issues issues;
  Acc acc(issues);
  const std::size_t interval_size =
      static_cast<std::size_t>(a.options().warp_size) *
      static_cast<std::size_t>(a.options().interval_cols);
  acc.check(a.padded_nnz() >= a.nnz(), [&](auto& os) {
    os << "padded_nnz " << a.padded_nnz() << " < nnz " << a.nnz();
  });
  acc.check(a.col_idx().size() == a.padded_nnz() &&
                a.vals().size() == a.padded_nnz(),
            [&](auto& os) {
              os << "col_idx/vals sizes " << a.col_idx().size() << "/"
                 << a.vals().size() << " != padded_nnz " << a.padded_nnz();
            });
  acc.check(a.padded_nnz() == a.intervals().size() * interval_size,
            [&](auto& os) {
              os << a.intervals().size() << " intervals of " << interval_size
                 << " entries cannot hold padded_nnz " << a.padded_nnz();
            });
  for (std::size_t i = 0; i < a.intervals().size(); ++i) {
    const auto& iv = a.intervals()[i];
    acc.check(iv.bits >= 1 && iv.bits <= 32, [&](auto& os) {
      os << "interval " << i << " bit width " << iv.bits << " out of [1, 32]";
    });
    acc.check(iv.start_row >= 0 && (a.rows() == 0 || iv.start_row < a.rows()),
              [&](auto& os) {
                os << "interval " << i << " start_row " << iv.start_row
                   << " out of [0, " << a.rows() << ")";
              });
    acc.check(i == 0 || iv.start_row >= a.intervals()[i - 1].start_row,
              [&](auto& os) {
                os << "interval " << i << " start_row " << iv.start_row
                   << " decreases";
              });
  }
  if (!issues.empty()) return issues;

  // Decoded row indices must be row-sorted along the entry stream (the
  // canonical order the segmented reduction requires) and in range.
  const std::vector<index_t> rows = a.decode_rows();
  for (std::size_t i = 0; i < rows.size() && !acc.full(); ++i) {
    acc.check(rows[i] >= 0 && rows[i] < a.rows(), [&](auto& os) {
      os << "entry " << i << ": decoded row " << rows[i] << " out of [0, "
         << a.rows() << ")";
    });
    acc.check(i == 0 || rows[i] >= rows[i - 1], [&](auto& os) {
      os << "entry " << i << ": decoded rows not sorted (" << rows[i - 1]
         << " then " << rows[i] << ")";
    });
  }
  for (std::size_t i = 0; i < a.padded_nnz() && !acc.full(); ++i) {
    acc.check(a.col_idx()[i] >= 0 && a.col_idx()[i] < a.cols(),
              [&](auto& os) {
                os << "entry " << i << ": column " << a.col_idx()[i]
                   << " out of [0, " << a.cols() << ")";
              });
  }
  // Padding entries must not change the product.
  for (std::size_t i = a.nnz(); i < a.padded_nnz() && !acc.full(); ++i)
    acc.check(a.vals()[i] == value_t{0}, [&](auto& os) {
      os << "padding entry " << i << " carries non-zero value "
         << a.vals()[i];
    });

  if (ref && issues.empty()) {
    const sparse::Coo want = sparse::csr_to_coo(*ref);
    acc.check(a.nnz() == want.nnz(), [&](auto& os) {
      os << "holds " << a.nnz() << " entries, source has " << want.nnz();
    });
    if (a.nnz() == want.nnz()) {
      for (std::size_t i = 0; i < want.nnz() && !acc.full(); ++i) {
        acc.check(rows[i] == want.row_idx[i] &&
                      a.col_idx()[i] == want.col_idx[i] &&
                      a.vals()[i] == want.vals[i],
                  [&](auto& os) {
                    os << "entry " << i << ": (" << rows[i] << ", "
                       << a.col_idx()[i]
                       << ") differs from source — row-index compression is "
                          "not lossless";
                  });
      }
    }
  }
  return issues;
}

Issues validate_bro_hyb(const core::BroHyb& a, const sparse::Csr* ref) {
  Issues issues;
  Acc acc(issues);
  acc.check(a.ell_part().rows() == a.rows() &&
                a.ell_part().cols() == a.cols(),
            [&](auto& os) {
              os << "ELL part is " << a.ell_part().rows() << " x "
                 << a.ell_part().cols() << ", matrix is " << a.rows() << " x "
                 << a.cols();
            });
  acc.check(a.coo_part().rows() == a.rows() &&
                a.coo_part().cols() == a.cols(),
            [&](auto& os) {
              os << "COO part is " << a.coo_part().rows() << " x "
                 << a.coo_part().cols() << ", matrix is " << a.rows() << " x "
                 << a.cols();
            });
  acc.check(a.split_width() == a.ell_part().width(), [&](auto& os) {
    os << "split width " << a.split_width() << " != ELL part width "
       << a.ell_part().width();
  });
  for (auto& issue : validate_bro_ell(a.ell_part()))
    issues.push_back("ELL part: " + issue);
  for (auto& issue : validate_bro_coo(a.coo_part()))
    issues.push_back("COO part: " + issue);
  if (!issues.empty() || !ref) return issues;

  // Lossless recomposition: ELL-part rows merged with the COO overflow must
  // reproduce the source exactly.
  sparse::Coo merged = sparse::csr_to_coo(
      sparse::ell_to_csr(a.ell_part().decompress()));
  merged.rows = a.rows();
  merged.cols = a.cols();
  const std::vector<index_t> coo_rows = a.coo_part().decode_rows();
  for (std::size_t i = 0; i < a.coo_part().nnz(); ++i)
    merged.push(coo_rows[i], a.coo_part().col_idx()[i],
                a.coo_part().vals()[i]);
  compare_csr(acc, "BRO-HYB recomposition", sparse::coo_to_csr(merged), *ref);
  return issues;
}

Issues validate_bro_csr(const core::BroCsr& a, const sparse::Csr* ref) {
  Issues issues;
  Acc acc(issues);
  acc.check(a.row_ptr().size() == static_cast<std::size_t>(a.rows()) + 1,
            [&](auto& os) {
              os << "row_ptr has " << a.row_ptr().size()
                 << " entries, expected " << a.rows() + 1;
            });
  acc.check(a.bits_per_row().size() == static_cast<std::size_t>(a.rows()),
            [&](auto& os) {
              os << "bits_per_row has " << a.bits_per_row().size()
                 << " entries, expected " << a.rows();
            });
  acc.check(a.row_sym_ptr().size() == static_cast<std::size_t>(a.rows()) + 1,
            [&](auto& os) {
              os << "row_sym_ptr has " << a.row_sym_ptr().size()
                 << " entries, expected " << a.rows() + 1;
            });
  if (!issues.empty()) return issues;
  acc.check(a.row_ptr().front() == 0 &&
                static_cast<std::size_t>(a.row_ptr().back()) == a.nnz(),
            [&](auto& os) {
              os << "row_ptr spans [" << a.row_ptr().front() << ", "
                 << a.row_ptr().back() << "], expected [0, " << a.nnz() << "]";
            });
  acc.check(a.row_sym_ptr().front() == 0 &&
                a.row_sym_ptr().back() == a.total_symbols(),
            [&](auto& os) {
              os << "row_sym_ptr spans [" << a.row_sym_ptr().front() << ", "
                 << a.row_sym_ptr().back() << "], stream has "
                 << a.total_symbols() << " symbols";
            });
  for (index_t r = 0; r < a.rows() && !acc.full(); ++r) {
    acc.check(a.row_ptr()[r + 1] >= a.row_ptr()[r], [&](auto& os) {
      os << "row_ptr not monotone at row " << r;
    });
    acc.check(a.row_sym_ptr()[r + 1] >= a.row_sym_ptr()[r], [&](auto& os) {
      os << "row_sym_ptr not monotone at row " << r;
    });
    const int b = a.bits_per_row()[static_cast<std::size_t>(r)];
    acc.check(b >= 1 && b <= 32, [&](auto& os) {
      os << "row " << r << " bit width " << b << " out of [1, 32]";
    });
  }
  if (!issues.empty()) return issues;

  for (index_t r = 0; r < a.rows() && !acc.full(); ++r) {
    const std::vector<index_t> cols = a.decode_row(r);
    index_t prev = -1;
    for (const index_t c : cols) {
      acc.check(c > prev && c >= 0 && c < a.cols(), [&](auto& os) {
        os << "row " << r << ": decoded column " << c
           << " not strictly increasing in [0, " << a.cols() << ")";
      });
      prev = c;
    }
    if (ref) {
      const auto want = ref->row_cols(r);
      acc.check(cols.size() == want.size() &&
                    std::equal(cols.begin(), cols.end(), want.begin()),
                [&](auto& os) {
                  os << "row " << r
                     << ": decoded columns differ from the source — per-row "
                        "bit width insufficient or stream corrupt";
                });
    }
  }
  if (ref) {
    acc.check(a.vals() == ref->vals,
              [&](auto& os) { os << "values differ from source"; });
    acc.check(a.row_ptr() == ref->row_ptr,
              [&](auto& os) { os << "row_ptr differs from source"; });
  }
  return issues;
}

Issues validate_bro_ans(const core::BroAns& a, const sparse::Csr* ref) {
  Issues issues;
  Acc acc(issues);
  const std::size_t expect = static_cast<std::size_t>(a.rows()) *
                             static_cast<std::size_t>(a.width());
  acc.check(a.vals().size() == expect, [&](auto& os) {
    os << "vals holds " << a.vals().size() << " entries, expected rows*width "
       << expect;
  });
  const auto& tbl = a.table();
  acc.check(tbl.table_log() >= bits::AnsTable::kMinTableLog &&
                tbl.table_log() <= bits::AnsTable::kMaxTableLog,
            [&](auto& os) {
              os << "table_log " << tbl.table_log() << " out of ["
                 << bits::AnsTable::kMinTableLog << ", "
                 << bits::AnsTable::kMaxTableLog << "]";
            });
  std::uint64_t fsum = 0;
  for (const auto f : tbl.freqs()) fsum += f;
  acc.check(fsum == tbl.size(), [&](auto& os) {
    os << "frequency table sums to " << fsum << ", expected table size "
       << tbl.size();
  });

  // The slices must tile [0, rows) contiguously.
  index_t next_row = 0;
  for (std::size_t s = 0; s < a.slices().size(); ++s) {
    const auto& sl = a.slices()[s];
    acc.check(sl.first_row == next_row, [&](auto& os) {
      os << "slice " << s << " starts at row " << sl.first_row << ", expected "
         << next_row;
    });
    acc.check(sl.height > 0 && sl.height <= a.options().slice_height,
              [&](auto& os) {
                os << "slice " << s << " height " << sl.height
                   << " out of (0, " << a.options().slice_height << "]";
              });
    acc.check(sl.num_col >= 0 && sl.num_col <= a.width(), [&](auto& os) {
      os << "slice " << s << " num_col " << sl.num_col << " exceeds width "
         << a.width();
    });
    // v2 interleaved layout: one initial state per row (below table size)
    // and one lane-group stream per kAnsLaneGroup rows, each stream as
    // tall as its group.
    acc.check(sl.init_states.size() == static_cast<std::size_t>(sl.height),
              [&](auto& os) {
                os << "slice " << s << " carries " << sl.init_states.size()
                   << " initial states for " << sl.height << " rows";
              });
    for (const auto st : sl.init_states) {
      if (st >= tbl.size()) {
        acc.check(false, [&](auto& os) {
          os << "slice " << s << " initial state " << st
             << " outside table size " << tbl.size();
        });
        break;
      }
    }
    const index_t ng = core::ans_num_groups(sl.height);
    acc.check(sl.groups.size() == static_cast<std::size_t>(ng),
              [&](auto& os) {
                os << "slice " << s << " has " << sl.groups.size()
                   << " lane groups, expected " << ng;
              });
    if (sl.groups.size() == static_cast<std::size_t>(ng)) {
      for (index_t g = 0; g < ng; ++g) {
        const auto& mux = sl.groups[static_cast<std::size_t>(g)];
        acc.check(mux.height() == static_cast<std::size_t>(
                                      core::ans_group_width(sl.height, g)),
                  [&](auto& os) {
                    os << "slice " << s << " group " << g << " holds "
                       << mux.height() << " lanes, expected "
                       << core::ans_group_width(sl.height, g);
                  });
      }
    }
    next_row = sl.first_row + sl.height;
  }
  acc.check(next_row == a.rows(), [&](auto& os) {
    os << "slices cover rows [0, " << next_row << "), matrix has " << a.rows();
  });
  if (!issues.empty()) return issues;

  // Decode every row: columns must be strictly increasing and in range, and
  // with a reference, identical to the source row — entropy decode has no
  // per-slot width to cross-check, so lossless round-trip is the whole
  // correctness story.
  for (const auto& sl : a.slices()) {
    for (index_t i = 0; i < sl.height && !acc.full(); ++i) {
      const index_t r = sl.first_row + i;
      const std::vector<index_t> cols = a.decode_row(r);
      index_t prev = -1;
      for (const index_t c : cols) {
        acc.check(c > prev && c >= 0 && c < a.cols(), [&](auto& os) {
          os << "row " << r << ": decoded column " << c
             << " not strictly increasing in [0, " << a.cols() << ")";
        });
        prev = c;
      }
      if (!ref) continue;
      const auto want = ref->row_cols(r);
      const bool match = cols.size() == want.size() &&
                         std::equal(cols.begin(), cols.end(), want.begin());
      acc.check(match, [&](auto& os) {
        os << "row " << r << ": decoded " << cols.size()
           << " columns that differ from the source row (" << want.size()
           << " entries) — entropy stream corrupt or not lossless";
      });
      if (match) {
        const auto want_vals = ref->row_vals(r);
        for (std::size_t j = 0; j < want_vals.size(); ++j)
          acc.check(a.val_at(r, static_cast<index_t>(j)) == want_vals[j],
                    [&](auto& os) {
                      os << "row " << r << " entry " << j
                         << ": value differs from source";
                    });
      }
    }
  }
  return issues;
}

Issues validate_bro_bcsr(const core::BroBcsr& a, const sparse::Csr* ref) {
  Issues issues;
  Acc acc(issues);
  const int br = a.block_r();
  const int bc = a.block_c();
  acc.check(br >= 1 && br <= 8 &&
                (bc == 1 || bc == 2 || bc == 4 || bc == 8),
            [&](auto& os) {
              os << "block shape " << br << "x" << bc
                 << " outside the candidate space (r in [1,8], c in "
                    "{1,2,4,8})";
            });
  if (!issues.empty()) return issues;

  // The slices must tile [0, block_rows) contiguously, with sane widths and
  // a value array holding exactly one tile per (block row, column slot).
  const index_t block_rows = (a.rows() + br - 1) / br;
  acc.check(a.block_rows() == block_rows, [&](auto& os) {
    os << "block_rows " << a.block_rows() << " != ceil(rows/br) "
       << block_rows;
  });
  const auto tile = static_cast<std::size_t>(br) * static_cast<std::size_t>(bc);
  std::size_t want_slots = 0;
  index_t next = 0;
  for (std::size_t s = 0; s < a.slices().size(); ++s) {
    const auto& sl = a.slices()[s];
    acc.check(sl.first_row == next, [&](auto& os) {
      os << "slice " << s << " starts at block row " << sl.first_row
         << ", expected " << next;
    });
    acc.check(sl.height > 0 && sl.height <= a.options().slice_height,
              [&](auto& os) {
                os << "slice " << s << " height " << sl.height
                   << " out of (0, " << a.options().slice_height << "]";
              });
    acc.check(sl.bit_alloc.size() == static_cast<std::size_t>(sl.num_col),
              [&](auto& os) {
                os << "slice " << s << " bit_alloc has " << sl.bit_alloc.size()
                   << " widths for " << sl.num_col << " columns";
              });
    for (const auto b : sl.bit_alloc)
      acc.check(b >= 1 && b <= 32, [&](auto& os) {
        os << "slice " << s << " bit width " << int(b) << " out of [1, 32]";
      });
    want_slots += static_cast<std::size_t>(sl.height) *
                  static_cast<std::size_t>(sl.num_col) * tile;
    next = sl.first_row + sl.height;
  }
  acc.check(next == block_rows, [&](auto& os) {
    os << "slices cover block rows [0, " << next << "), matrix has "
       << block_rows;
  });
  acc.check(a.value_slots() == want_slots, [&](auto& os) {
    os << "vals holds " << a.value_slots() << " entries, expected "
       << want_slots;
  });
  if (!issues.empty()) return issues;

  // Decoded block columns must be strictly increasing and in range.
  const index_t bcols = (a.cols() + bc - 1) / bc;
  for (index_t b = 0; b < block_rows && !acc.full(); ++b) {
    index_t prev = -1;
    for (const index_t c : a.decode_block_row(b)) {
      acc.check(c > prev && c >= 0 && c < bcols, [&](auto& os) {
        os << "block row " << b << ": decoded block column " << c
           << " not strictly increasing in [0, " << bcols << ")";
      });
      prev = c;
    }
  }
  if (!issues.empty() || !ref) return issues;

  // Block-cover-exactness: the cover's CSR must contain every reference
  // entry with its exact value, and nothing else but explicit fill zeros.
  const sparse::Csr cover = a.to_csr();
  structural_csr(acc, cover);
  acc.check(cover.rows == ref->rows && cover.cols == ref->cols,
            [&](auto& os) {
              os << "cover dimensions " << cover.rows << " x " << cover.cols
                 << " != reference " << ref->rows << " x " << ref->cols;
            });
  if (!issues.empty()) return issues;
  for (index_t r = 0; r < ref->rows && !acc.full(); ++r) {
    std::size_t g = static_cast<std::size_t>(cover.row_ptr[r]);
    const std::size_t gend = static_cast<std::size_t>(cover.row_ptr[r + 1]);
    for (std::size_t e = static_cast<std::size_t>(ref->row_ptr[r]);
         e < static_cast<std::size_t>(ref->row_ptr[r + 1]); ++e) {
      while (g < gend && cover.col_idx[g] < ref->col_idx[e]) {
        acc.check(cover.vals[g] == value_t{0}, [&](auto& os) {
          os << "row " << r << " column " << cover.col_idx[g]
             << ": cover adds a non-zero value absent from the source";
        });
        ++g;
      }
      const bool found = g < gend && cover.col_idx[g] == ref->col_idx[e];
      acc.check(found, [&](auto& os) {
        os << "row " << r << " column " << ref->col_idx[e]
           << ": source entry missing from the block cover";
      });
      if (!found) continue;
      acc.check(cover.vals[g] == ref->vals[e], [&](auto& os) {
        os << "row " << r << " column " << ref->col_idx[e]
           << ": cover value differs from the source";
      });
      ++g;
    }
    for (; g < gend; ++g)
      acc.check(cover.vals[g] == value_t{0}, [&](auto& os) {
        os << "row " << r << " column " << cover.col_idx[g]
           << ": cover adds a non-zero value absent from the source";
      });
  }
  return issues;
}

} // namespace bro::check
