// bro::check — structural invariant validators for every storage format.
//
// Each validator returns one human-readable message per violated invariant
// (empty vector = valid). Two layers of checking:
//
//   * structural: invariants the representation must satisfy on its own —
//     CSR monotone row_ptr with sorted in-range columns, ELL left-packed
//     padding, COO canonical (row, col) order, BRO slice partitions that
//     tile the row space, bit widths in [1, 32], decodable streams whose
//     decoded indices are monotone and in range;
//   * cross (when a reference CSR is supplied): losslessness — decoding /
//     converting the representation back must reproduce the reference
//     structure and values exactly. This is what catches an insufficient
//     per-slice bit allocation: a too-narrow width decodes to a *different*
//     in-range column, invisible to structural checks alone.
//
// The engine registry surfaces these through FormatTraits::validate, so the
// differential fuzz driver (check/differential.h) and any caller holding a
// core::Matrix can validate every registered format through one seam.
#pragma once

#include <string>
#include <vector>

#include "core/bro_ans.h"
#include "core/bro_bcsr.h"
#include "core/bro_coo.h"
#include "core/bro_csr.h"
#include "core/bro_ell.h"
#include "core/bro_hyb.h"
#include "sparse/coo.h"
#include "sparse/csr.h"
#include "sparse/ell.h"
#include "sparse/hyb.h"

namespace bro::check {

/// One message per violated invariant; empty means valid. Validators cap
/// their output (a corrupt megabyte-sized matrix reports the first few
/// violations, then a truncation marker).
using Issues = std::vector<std::string>;

Issues validate_csr(const sparse::Csr& a);
Issues validate_coo(const sparse::Coo& a, const sparse::Csr* ref = nullptr);
Issues validate_ell(const sparse::Ell& a, const sparse::Csr* ref = nullptr);
Issues validate_ellr(const sparse::EllR& a, const sparse::Csr* ref = nullptr);
Issues validate_hyb(const sparse::Hyb& a, const sparse::Csr* ref = nullptr);
Issues validate_bro_ell(const core::BroEll& a,
                        const sparse::Csr* ref = nullptr);
Issues validate_bro_coo(const core::BroCoo& a,
                        const sparse::Csr* ref = nullptr);
Issues validate_bro_hyb(const core::BroHyb& a,
                        const sparse::Csr* ref = nullptr);
Issues validate_bro_csr(const core::BroCsr& a,
                        const sparse::Csr* ref = nullptr);
Issues validate_bro_ans(const core::BroAns& a,
                        const sparse::Csr* ref = nullptr);
/// BRO-BCSR's cross-check is block-cover-exactness rather than a bitwise
/// round-trip: every reference entry must appear in the cover with its exact
/// value, and every extra cover entry must be an explicit fill zero.
Issues validate_bro_bcsr(const core::BroBcsr& a,
                         const sparse::Csr* ref = nullptr);

} // namespace bro::check
