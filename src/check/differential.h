// bro::check differential fuzz driver.
//
// One round = one matrix (adversarial battery first, then seeded random
// shapes) swept across every registered format. For each applicable format
// the driver:
//
//   1. runs the registry's validate hook (structural + lossless invariants),
//   2. compares the facade apply path against the sequential CSR reference,
//   3. builds an SpmvPlan and executes it twice — results must match the
//      reference and the second execute must not grow the workspace,
//   4. compares the GPU-simulator kernel's numerical result (sim_apply),
//   5. runs the multi-vector path: execute_multi(X, Y, k) must match k
//      single-vector execute() calls column-by-column *bitwise* (the SpMM
//      kernels replicate the single-vector accumulation order exactly),
//      and a second execute_multi must not grow the workspace,
//   6. for row-shardable formats, re-compresses the matrix as balanced row
//      shards (engine/shard.h) and compares the sharded execute against
//      the plan *bitwise* (`--no-shard` opts out).
//
// All randomness flows from one seed, so a failing (seed, round) pair is a
// complete reproducer. Exposed via `brospmv fuzz --rounds N --seed S` and a
// bounded ctest entry (tools/check_fuzz.sh).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "gpusim/device.h"
#include "util/types.h"

namespace bro::check {

struct FuzzOptions {
  int rounds = 50;             // random matrices after the adversarial battery
  std::uint64_t seed = 2013;
  double eps = 1e-10;          // |y - ref| <= eps * (1 + |ref|)
  bool simulate = true;        // include the simulator-kernel path
  sim::DeviceSpec device = sim::tesla_k20();
  double max_ell_expand = 3.0; // the ELL applicability rule's bound
  int spmm_k = 3;              // right-hand sides in the SpMM sweep (0: off)
  // Compare the dispatched (width-specialized) native kernel against the
  // runtime-width generic decoder *bitwise* for formats that register a
  // native_generic hook.
  bool decode_check = true;
  // When SIMD kernels are active (active_simd_isa() != scalar), rebuild the
  // plan with dispatch forced to the scalar kernels and compare every
  // planned execute *bitwise* against the SIMD result. No-op on hosts or
  // builds without a SIMD backend.
  bool simd_check = true;
  // For every row-shardable format, re-compress the matrix as shard_count
  // balanced row shards (engine/shard.h) and compare the sharded execute
  // against the plan's result *bitwise* — the shardability contract the
  // serve layer's multi-pool execution relies on.
  bool shard_check = true;
  int shard_count = 4;
  // Matrices with rows or cols beyond this run the validate hook only: an
  // x vector of near-index_t-max size is not allocatable.
  index_t max_spmv_dim = index_t{1} << 24;
};

struct FuzzFailure {
  std::string matrix; // generated name, reproducible from (seed, round)
  std::string format; // canonical registry name
  std::string path;   // "validate" | "apply" | "plan" | "sim" | "spmm" |
                      // "decode" | "simd" | "shard" | "build"
  std::string message;
};

struct FuzzReport {
  int matrices = 0;
  std::size_t comparisons = 0; // numerical vector comparisons performed
  std::size_t validations = 0; // validate-hook invocations
  std::size_t skipped = 0;     // (matrix, format) pairs ruled inapplicable
  std::vector<FuzzFailure> failures;

  bool ok() const { return failures.empty(); }
};

/// Run the sweep; `log` (may be null) receives one progress line per matrix
/// and one line per failure.
FuzzReport run_fuzz(const FuzzOptions& opts, std::ostream* log = nullptr);

} // namespace bro::check
