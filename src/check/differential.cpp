#include "check/differential.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "engine/plan.h"
#include "engine/shard.h"
#include "kernels/cpu_features.h"
#include "sparse/matgen/adversarial.h"
#include "sparse/matgen/generators.h"
#include "util/rng.h"

namespace bro::check {

namespace {

/// Element-wise comparison against the reference with the mixed
/// absolute/relative tolerance |y - ref| <= eps * (1 + |ref|).
bool matches_reference(std::span<const value_t> y,
                       std::span<const value_t> ref, double eps,
                       std::string& message) {
  if (y.size() != ref.size()) {
    std::ostringstream os;
    os << "result has " << y.size() << " entries, reference has "
       << ref.size();
    message = os.str();
    return false;
  }
  for (std::size_t i = 0; i < ref.size(); ++i) {
    const double err = std::abs(y[i] - ref[i]);
    if (!(err <= eps * (1.0 + std::abs(ref[i])))) {
      std::ostringstream os;
      os << "y[" << i << "] = " << y[i] << " vs reference " << ref[i]
         << " (|diff| = " << err << ", tol = "
         << eps * (1.0 + std::abs(ref[i])) << ")";
      message = os.str();
      return false;
    }
  }
  return true;
}

/// One seeded random matrix per round: shape, row-length distribution and
/// column structure all drawn from the round's RNG so every corner of the
/// generator space eventually appears.
sparse::Csr random_matrix(Rng& rng, std::string& name) {
  sparse::GenSpec spec;
  spec.seed = rng.next();
  spec.rows = static_cast<index_t>(rng.range(1, 1500));
  spec.cols = static_cast<index_t>(rng.range(1, 3000));
  const int dist = static_cast<int>(rng.below(4));
  spec.len_dist = static_cast<sparse::LenDist>(dist);
  spec.mu = 1.0 + rng.uniform() * 24.0;
  spec.sigma = rng.uniform() * spec.mu;
  spec.min_len = rng.below(3) == 0 ? 0 : 1; // sometimes allow empty rows
  spec.len_corr = static_cast<index_t>(rng.below(64));
  spec.local_prob = rng.uniform();
  spec.band_frac = 0.005 + rng.uniform() * 0.2;
  spec.run = 1 + static_cast<int>(rng.below(4));
  spec.aligned_blocks = rng.below(4) == 0;
  spec.block_jitter = rng.uniform();
  if (rng.below(5) == 0) {
    spec.spike_rows = static_cast<index_t>(rng.below(4)) + 1;
    spec.spike_len =
        static_cast<index_t>(rng.below(static_cast<std::uint64_t>(
            std::max<index_t>(spec.cols / 2, 1)))) +
        1;
  }

  static const char* kDistNames[] = {"const", "normal", "lognormal",
                                     "pareto"};
  std::ostringstream os;
  os << spec.rows << "x" << spec.cols << "-" << kDistNames[dist] << "-mu"
     << static_cast<int>(spec.mu);
  name = os.str();
  return sparse::generate(spec);
}

class Driver {
 public:
  Driver(const FuzzOptions& opts, std::ostream* log)
      : opts_(opts), log_(log) {}

  FuzzReport run() {
    Rng rng(opts_.seed);

    for (auto& c : sparse::adversarial_suite(opts_.seed))
      sweep("adversarial:" + c.name, std::move(c.csr), rng.next());
    for (auto& c : sparse::adversarial_huge_cases(opts_.seed))
      sweep("adversarial:" + c.name, std::move(c.csr), rng.next());

    for (int round = 0; round < opts_.rounds; ++round) {
      std::string name;
      sparse::Csr csr = random_matrix(rng, name);
      std::ostringstream os;
      os << "round-" << round << ":" << name;
      sweep(os.str(), std::move(csr), rng.next());
    }
    return std::move(report_);
  }

 private:
  void fail(const std::string& matrix, const char* format, const char* path,
            std::string message) {
    if (log_)
      *log_ << "FAIL " << matrix << " [" << format << "/" << path << "] "
            << message << "\n";
    report_.failures.push_back({matrix, format, path, std::move(message)});
  }

  void sweep(const std::string& name, sparse::Csr csr,
             std::uint64_t x_seed) {
    ++report_.matrices;
    const bool spmv_safe =
        csr.rows <= opts_.max_spmv_dim && csr.cols <= opts_.max_spmv_dim;

    auto matrix = std::make_shared<core::Matrix>(
        core::Matrix::from_csr(std::move(csr)));
    const sparse::Csr& a = matrix->csr();

    // The ground truth: a seeded x and the sequential CSR reference.
    std::vector<value_t> x, ref;
    if (spmv_safe) {
      Rng xrng(x_seed);
      x.resize(static_cast<std::size_t>(a.cols));
      for (auto& v : x) v = xrng.uniform() * 2 - 1;
      ref.resize(static_cast<std::size_t>(a.rows));
      sparse::spmv_csr_reference(a, x, ref);
    }

    if (log_)
      *log_ << name << ": " << a.rows << " x " << a.cols << ", nnz "
            << a.nnz() << (spmv_safe ? "" : " (validate only)") << "\n";

    for (const auto& t : engine::format_registry()) {
      if (!t.applicable(a, opts_.max_ell_expand)) {
        ++report_.skipped;
        continue;
      }
      try {
        sweep_format(name, t, matrix, x, ref, spmv_safe);
      } catch (const std::exception& e) {
        fail(name, t.name, "build", e.what());
      }
    }
  }

  void sweep_format(const std::string& name, const engine::FormatTraits& t,
                    const std::shared_ptr<core::Matrix>& matrix,
                    std::span<const value_t> x, std::span<const value_t> ref,
                    bool spmv_safe) {
    const core::Matrix& m = *matrix;

    ++report_.validations;
    for (const auto& issue : t.validate(m))
      fail(name, t.name, "validate", issue);

    if (!spmv_safe) return;
    std::string msg;
    std::vector<value_t> y(ref.size());

    t.apply(m, x, y);
    ++report_.comparisons;
    if (!matches_reference(y, ref, opts_.eps, msg))
      fail(name, t.name, "apply", msg);

    // The planned path: build once, execute twice. Both results must match
    // and the second execute must not grow the workspace.
    engine::SpmvPlan plan(matrix, t.format);
    plan.execute(x, y);
    ++report_.comparisons;
    if (!matches_reference(y, ref, opts_.eps, msg))
      fail(name, t.name, "plan", msg);
    const std::size_t allocs = plan.workspace_allocations();
    plan.execute(x, y);
    ++report_.comparisons;
    if (!matches_reference(y, ref, opts_.eps, msg))
      fail(name, t.name, "plan", "second execute diverged: " + msg);
    if (plan.workspace_allocations() != allocs) {
      std::ostringstream os;
      os << "second execute grew the workspace (" << allocs << " -> "
         << plan.workspace_allocations() << " allocations)";
      fail(name, t.name, "plan", os.str());
    }

    // Decode parity: the plan's execute just filled y through the
    // width-specialized dispatch table; the generic runtime-width decoder
    // must reproduce it bit for bit (same algorithm, same traversal, same
    // accumulation order — only the unpacking code differs).
    if (opts_.decode_check && t.native_generic) {
      std::vector<value_t> y_generic(ref.size());
      t.native_generic(m, x, y_generic);
      ++report_.comparisons;
      for (std::size_t r = 0; r < y_generic.size(); ++r) {
        if (y_generic[r] != y[r]) {
          std::ostringstream os;
          os << "y[" << r << "] = " << y[r]
             << " from the specialized dispatch but " << y_generic[r]
             << " from the generic decoder (must be bitwise-identical)";
          fail(name, t.name, "decode", os.str());
          break;
        }
      }
    }

    // SIMD parity: when dispatch is running vectorized kernels, rebuild the
    // plan with the ISA forced to scalar and compare against the SIMD
    // execute bit for bit. Identical decode output and identical FP
    // accumulation order are the SIMD backend's core contract — any
    // divergence is a kernel bug, not rounding. Gated on native_generic so
    // only formats with a bit-level decode path pay for the extra plan.
    const kernels::SimdIsa simd_isa = kernels::active_simd_isa();
    if (opts_.simd_check && t.native_generic &&
        simd_isa != kernels::SimdIsa::kScalar) {
      kernels::ScopedSimdIsa forced(kernels::SimdIsa::kScalar);
      engine::SpmvPlan scalar_plan(matrix, t.format);
      std::vector<value_t> y_scalar(ref.size());
      scalar_plan.execute(x, y_scalar);
      ++report_.comparisons;
      for (std::size_t r = 0; r < y_scalar.size(); ++r) {
        if (y_scalar[r] != y[r]) {
          std::ostringstream os;
          os << "y[" << r << "] = " << y[r] << " from the "
             << kernels::simd_isa_name(simd_isa) << " kernels but "
             << y_scalar[r]
             << " from forced-scalar dispatch (must be bitwise-identical)";
          fail(name, t.name, "simd", os.str());
          break;
        }
      }
    }

    // Sharded-execution parity: split the matrix into balanced row shards,
    // re-compress each shard independently (engine/shard.h) and execute
    // them into y sub-spans — the result must reproduce the whole-matrix
    // plan bit for bit. This is the contract FormatTraits::row_shardable
    // declares and the serve layer's multi-pool fan-out relies on.
    if (opts_.shard_check && t.row_shardable && m.rows() > 0) {
      engine::ShardedSpmvPlan sharded(matrix, opts_.shard_count, t.format);
      std::vector<value_t> y_sharded(ref.size());
      sharded.execute(x, y_sharded);
      ++report_.comparisons;
      for (std::size_t r = 0; r < y_sharded.size(); ++r) {
        if (y_sharded[r] != y[r]) {
          std::ostringstream os;
          os << "y[" << r << "] = " << y[r] << " from the whole-matrix plan "
             << "but " << y_sharded[r] << " from "
             << sharded.shard_count()
             << " row shards (must be bitwise-identical)";
          fail(name, t.name, "shard", os.str());
          break;
        }
      }
    }

    if (opts_.simulate && t.sim_apply) {
      const std::vector<value_t> sim_y = t.sim_apply(opts_.device, m, x);
      ++report_.comparisons;
      if (!matches_reference(sim_y, ref, opts_.eps, msg))
        fail(name, t.name, "sim", msg);
    }

    if (opts_.spmm_k > 0) sweep_spmm(name, t, plan, x);
  }

  /// The multi-vector path: X's k columns are rotations of the fuzz x, and
  /// every column of execute_multi's Y must equal a single-vector execute
  /// on that column *bitwise* — the SpMM kernels (and the gather/scatter
  /// fallback) replicate the single-vector accumulation order exactly, so
  /// any tolerance would only hide bugs.
  void sweep_spmm(const std::string& name, const engine::FormatTraits& t,
                  engine::SpmvPlan& plan, std::span<const value_t> x) {
    const std::size_t k = static_cast<std::size_t>(opts_.spmm_k);
    const std::size_t cols = static_cast<std::size_t>(plan.cols());
    const std::size_t rows = static_cast<std::size_t>(plan.rows());

    std::vector<value_t> x_batch(cols * k), y_batch(rows * k);
    for (std::size_t j = 0; j < k; ++j)
      for (std::size_t c = 0; c < cols; ++c)
        x_batch[c * k + j] = x[(c + j) % std::max<std::size_t>(cols, 1)];

    plan.execute_multi(x_batch, y_batch, opts_.spmm_k);
    const std::size_t allocs = plan.workspace_allocations();

    std::vector<value_t> xj(cols), yj(rows);
    for (std::size_t j = 0; j < k; ++j) {
      for (std::size_t c = 0; c < cols; ++c) xj[c] = x_batch[c * k + j];
      plan.execute(xj, yj);
      ++report_.comparisons;
      for (std::size_t r = 0; r < rows; ++r) {
        if (y_batch[r * k + j] != yj[r]) {
          std::ostringstream os;
          os << "column " << j << " y[" << r << "] = " << y_batch[r * k + j]
             << " but single-vector execute gives " << yj[r]
             << " (SpMM must be bitwise-identical)";
          fail(name, t.name, "spmm", os.str());
          break;
        }
      }
    }

    plan.execute_multi(x_batch, y_batch, opts_.spmm_k);
    if (plan.workspace_allocations() != allocs) {
      std::ostringstream os;
      os << "second execute_multi grew the workspace (" << allocs << " -> "
         << plan.workspace_allocations() << " allocations)";
      fail(name, t.name, "spmm", os.str());
    }
  }

  FuzzOptions opts_;
  std::ostream* log_;
  FuzzReport report_;
};

} // namespace

FuzzReport run_fuzz(const FuzzOptions& opts, std::ostream* log) {
  Driver driver(opts, log);
  FuzzReport report = driver.run();
  if (log) {
    *log << "fuzz: " << report.matrices << " matrices, "
         << report.comparisons << " comparisons, " << report.validations
         << " validations, " << report.skipped
         << " inapplicable pairs skipped, " << report.failures.size()
         << " failures\n";
  }
  return report;
}

} // namespace bro::check
