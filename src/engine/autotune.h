// Format auto-tuning: run the analytic simulator over every applicable
// registered format for a given matrix/device pair and rank them by
// estimated SpMV throughput (the clSpMV "cocktail" idea from the paper's
// related work, §5, with the simulator standing in for on-device trials).
// Candidate enumeration is the format registry — a format registered there
// is automatically tuned.
#pragma once

#include <vector>

#include "core/matrix.h"
#include "engine/format_registry.h"
#include "gpusim/device.h"

namespace bro::engine {

struct TuneEntry {
  core::Format format;
  double gflops = 0;      // simulated throughput
  double eta = 0;         // index space savings (0 for uncompressed)
  bool applicable = true; // false if the format cannot hold the matrix
};

struct TuneResult {
  std::vector<TuneEntry> ranking; // applicable formats, best first
  core::Format best() const { return ranking.front().format; }
};

struct TuneOptions {
  /// ELLPACK-family formats are skipped when rows*k > max_ell_expand * nnz.
  double max_ell_expand = 3.0;
  /// Evaluate extension formats as well (BRO-CSR; not part of the paper).
  bool include_extensions = true;
};

/// Evaluate every registered tunable format on `dev` and rank by simulated
/// GFlop/s. The Matrix overload reuses the facade's cached representations.
TuneResult autotune(const core::Matrix& m, const sim::DeviceSpec& dev,
                    const TuneOptions& opts = {});
TuneResult autotune(const sparse::Csr& csr, const sim::DeviceSpec& dev,
                    const TuneOptions& opts = {});

} // namespace bro::engine
