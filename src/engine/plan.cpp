#include "engine/plan.h"

#ifdef _OPENMP
#include <omp.h>
#endif

#include "util/error.h"

namespace bro::engine {

namespace {

int plan_thread_count() {
#ifdef _OPENMP
  return omp_get_max_threads();
#else
  return 1;
#endif
}

/// RAII acquisition of a plan's in-use flag: entering while another thread
/// holds it is a contract violation, reported through BRO_CHECK instead of
/// racing on the workspace.
class ExecutionGuard {
 public:
  explicit ExecutionGuard(std::atomic<bool>& flag) : flag_(flag) {
    BRO_CHECK_MSG(!flag_.exchange(true, std::memory_order_acquire),
                  "SpmvPlan executed concurrently from two threads; a plan's "
                  "Workspace is single-writer scratch (see engine/plan.h)");
  }
  ~ExecutionGuard() { flag_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool>& flag_;
};

} // namespace

std::span<value_t> Workspace::values(std::size_t n) {
  if (values_.size() < n) {
    values_.resize(n);
    ++allocations_;
  }
  return {values_.data(), n};
}

std::span<kernels::BroCooCarry> Workspace::carries(std::size_t n) {
  if (carries_.size() < n) {
    carries_.resize(n);
    ++allocations_;
  }
  return {carries_.data(), n};
}

std::span<value_t> Workspace::carry_sums(std::size_t n) {
  if (carry_sums_.size() < n) {
    carry_sums_.resize(n);
    ++allocations_;
  }
  return {carry_sums_.data(), n};
}

std::span<value_t> Workspace::gather_x(std::size_t n) {
  if (gather_x_.size() < n) {
    gather_x_.resize(n);
    ++allocations_;
  }
  return {gather_x_.data(), n};
}

std::span<value_t> Workspace::gather_y(std::size_t n) {
  if (gather_y_.size() < n) {
    gather_y_.resize(n);
    ++allocations_;
  }
  return {gather_y_.data(), n};
}

std::span<const kernels::CooRange> Workspace::coo_ranges(
    const sparse::Coo& a) {
  const int threads = plan_thread_count();
  if (ranges_for_ != &a || ranges_nnz_ != a.nnz() ||
      ranges_threads_ != threads) {
    ranges_ = kernels::coo_thread_ranges(a, threads);
    ranges_for_ = &a;
    ranges_nnz_ = a.nnz();
    ranges_threads_ = threads;
    ++allocations_;
  }
  return ranges_;
}

std::span<const kernels::BroEllKernel> Workspace::bro_ell_kernels(
    const core::BroEll& a) {
  const kernels::SimdIsa isa = kernels::active_simd_isa();
  if (ell_kernels_for_ != &a || ell_kernels_.size() != a.slices().size() ||
      ell_kernels_isa_ != isa) {
    ell_kernels_ = kernels::plan_bro_ell_kernels(a, isa);
    ell_kernels_for_ = &a;
    ell_kernels_isa_ = isa;
    ++allocations_;
  }
  return ell_kernels_;
}

std::span<const kernels::BroCooKernel> Workspace::bro_coo_kernels(
    const core::BroCoo& a) {
  const kernels::SimdIsa isa = kernels::active_simd_isa();
  if (coo_kernels_for_ != &a || coo_kernels_.size() != a.intervals().size() ||
      coo_kernels_isa_ != isa) {
    coo_kernels_ = kernels::plan_bro_coo_kernels(a, isa);
    coo_kernels_for_ = &a;
    coo_kernels_isa_ = isa;
    ++allocations_;
  }
  return coo_kernels_;
}

std::span<const kernels::BroAnsKernel> Workspace::bro_ans_kernels(
    const core::BroAns& a) {
  const kernels::SimdIsa isa = kernels::active_simd_isa();
  if (ans_kernels_for_ != &a || ans_kernels_.size() != a.slices().size() ||
      ans_kernels_isa_ != isa) {
    ans_kernels_ = kernels::plan_bro_ans_kernels(a, isa);
    ans_kernels_for_ = &a;
    ans_kernels_isa_ = isa;
    ++allocations_;
  }
  return ans_kernels_;
}

std::span<const kernels::BroBcsrKernel> Workspace::bro_bcsr_kernels(
    const core::BroBcsr& a) {
  const kernels::SimdIsa isa = kernels::active_simd_isa();
  if (bcsr_kernels_for_ != &a || bcsr_kernels_.size() != a.slices().size() ||
      bcsr_kernels_isa_ != isa) {
    bcsr_kernels_ = kernels::plan_bro_bcsr_kernels(a, isa);
    bcsr_kernels_for_ = &a;
    bcsr_kernels_isa_ = isa;
    ++allocations_;
  }
  return bcsr_kernels_;
}

SpmvPlan::SpmvPlan(std::shared_ptr<const core::Matrix> matrix,
                   std::optional<core::Format> format)
    : matrix_(std::move(matrix)) {
  BRO_CHECK_MSG(matrix_ != nullptr, "SpmvPlan requires a matrix");
  traits_ = &traits(format.value_or(matrix_->auto_format()));
  if (traits_->build) traits_->build(*matrix_, ws_);
}

SpmvPlan::SpmvPlan(SpmvPlan&& other) noexcept
    : matrix_(std::move(other.matrix_)),
      traits_(other.traits_),
      ws_(std::move(other.ws_)) {}

SpmvPlan& SpmvPlan::operator=(SpmvPlan&& other) noexcept {
  matrix_ = std::move(other.matrix_);
  traits_ = other.traits_;
  ws_ = std::move(other.ws_);
  return *this;
}

void SpmvPlan::execute(std::span<const value_t> x, std::span<value_t> y) {
  BRO_CHECK(x.size() == static_cast<std::size_t>(cols()));
  BRO_CHECK(y.size() == static_cast<std::size_t>(rows()));
  ExecutionGuard guard(in_use_);
  execute_impl(x, y);
}

void SpmvPlan::execute_impl(std::span<const value_t> x,
                            std::span<value_t> y) {
  if (traits_->native)
    traits_->native(*matrix_, ws_, x, y);
  else
    traits_->apply(*matrix_, x, y);
}

void SpmvPlan::execute_multi(std::span<const value_t> x,
                             std::span<value_t> y, int k) {
  BRO_CHECK_MSG(k >= 1, "SpMM batch size must be >= 1");
  const std::size_t uk = static_cast<std::size_t>(k);
  BRO_CHECK(x.size() == static_cast<std::size_t>(cols()) * uk);
  BRO_CHECK(y.size() == static_cast<std::size_t>(rows()) * uk);
  ExecutionGuard guard(in_use_);
  if (k == 1) {
    execute_impl(x, y);
    return;
  }
  if (traits_->native_multi) {
    traits_->native_multi(*matrix_, ws_, x, y, k);
    return;
  }
  // Fallback for formats without an SpMM kernel: de-interleave each column
  // into plan scratch, run the single-vector path, scatter the result back.
  auto xg = ws_.gather_x(static_cast<std::size_t>(cols()));
  auto yg = ws_.gather_y(static_cast<std::size_t>(rows()));
  for (std::size_t j = 0; j < uk; ++j) {
    for (std::size_t c = 0; c < xg.size(); ++c) xg[c] = x[c * uk + j];
    execute_impl(xg, yg);
    for (std::size_t r = 0; r < yg.size(); ++r) y[r * uk + j] = yg[r];
  }
}

std::size_t SpmvPlan::resident_bytes() const {
  // Every facade owns its base CSR; the hook adds the bytes of the built
  // format-specific representation (null = the representation is that CSR).
  const std::size_t csr_bytes =
      (static_cast<std::size_t>(matrix_->rows()) + 1) * sizeof(index_t) +
      matrix_->nnz() * (sizeof(index_t) + sizeof(value_t));
  const std::size_t rep_bytes =
      traits_->resident_bytes ? traits_->resident_bytes(*matrix_) : 0;
  return csr_bytes + rep_bytes;
}

void SpmvPlan::debug_acquire() {
  BRO_CHECK_MSG(!in_use_.exchange(true, std::memory_order_acquire),
                "SpmvPlan executed concurrently from two threads; a plan's "
                "Workspace is single-writer scratch (see engine/plan.h)");
}

void SpmvPlan::debug_release() {
  in_use_.store(false, std::memory_order_release);
}

SpmvPlan make_plan(core::Matrix matrix, std::optional<core::Format> format) {
  return SpmvPlan(std::make_shared<core::Matrix>(std::move(matrix)), format);
}

std::shared_ptr<SpmvPlan> make_shared_plan(core::Matrix matrix,
                                           std::optional<core::Format> format) {
  return std::make_shared<SpmvPlan>(
      std::make_shared<core::Matrix>(std::move(matrix)), format);
}

solver::Operator plan_operator(std::shared_ptr<SpmvPlan> plan) {
  return [plan](std::span<const value_t> x, std::span<value_t> y) {
    plan->execute(x, y);
  };
}

} // namespace bro::engine
