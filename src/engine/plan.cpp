#include "engine/plan.h"

#ifdef _OPENMP
#include <omp.h>
#endif

#include "util/error.h"

namespace bro::engine {

namespace {

int plan_thread_count() {
#ifdef _OPENMP
  return omp_get_max_threads();
#else
  return 1;
#endif
}

} // namespace

std::span<value_t> Workspace::values(std::size_t n) {
  if (values_.size() < n) {
    values_.resize(n);
    ++allocations_;
  }
  return {values_.data(), n};
}

std::span<kernels::BroCooCarry> Workspace::carries(std::size_t n) {
  if (carries_.size() < n) {
    carries_.resize(n);
    ++allocations_;
  }
  return {carries_.data(), n};
}

std::span<const kernels::CooRange> Workspace::coo_ranges(
    const sparse::Coo& a) {
  const int threads = plan_thread_count();
  if (ranges_for_ != &a || ranges_nnz_ != a.nnz() ||
      ranges_threads_ != threads) {
    ranges_ = kernels::coo_thread_ranges(a, threads);
    ranges_for_ = &a;
    ranges_nnz_ = a.nnz();
    ranges_threads_ = threads;
    ++allocations_;
  }
  return ranges_;
}

SpmvPlan::SpmvPlan(std::shared_ptr<const core::Matrix> matrix,
                   std::optional<core::Format> format)
    : matrix_(std::move(matrix)) {
  BRO_CHECK_MSG(matrix_ != nullptr, "SpmvPlan requires a matrix");
  traits_ = &traits(format.value_or(matrix_->auto_format()));
  if (traits_->build) traits_->build(*matrix_, ws_);
}

void SpmvPlan::execute(std::span<const value_t> x, std::span<value_t> y) {
  BRO_CHECK(x.size() == static_cast<std::size_t>(cols()));
  BRO_CHECK(y.size() == static_cast<std::size_t>(rows()));
  if (traits_->native)
    traits_->native(*matrix_, ws_, x, y);
  else
    traits_->apply(*matrix_, x, y);
}

SpmvPlan make_plan(core::Matrix matrix, std::optional<core::Format> format) {
  return SpmvPlan(std::make_shared<core::Matrix>(std::move(matrix)), format);
}

std::shared_ptr<SpmvPlan> make_shared_plan(core::Matrix matrix,
                                           std::optional<core::Format> format) {
  return std::make_shared<SpmvPlan>(
      std::make_shared<core::Matrix>(std::move(matrix)), format);
}

solver::Operator plan_operator(std::shared_ptr<SpmvPlan> plan) {
  return [plan](std::span<const value_t> x, std::span<value_t> y) {
    plan->execute(x, y);
  };
}

} // namespace bro::engine
