#include "engine/format_registry.h"

#include <algorithm>
#include <ostream>

#include "check/validate.h"
#include "core/serialize.h"
#include "engine/plan.h"
#include "kernels/native_spmm.h"
#include "kernels/native_spmv.h"
#include "kernels/sim_spmv.h"
#include "kernels/sim_spmv_ext.h"
#include "sparse/spmv.h"
#include "util/error.h"

namespace bro::engine {

namespace {

using core::Format;
using core::Matrix;
using sim::DeviceSpec;

bool always_applicable(const sparse::Csr&, double) { return true; }

bool nonzero_applicable(const sparse::Csr& csr, double) {
  return csr.nnz() > 0;
}

// The ELL-viability rule: padding to the longest row must not expand the
// non-zero count by more than max_ell_expand.
bool ell_applicable(const sparse::Csr& csr, double max_ell_expand) {
  return csr.nnz() > 0 &&
         static_cast<double>(csr.rows) *
                 static_cast<double>(csr.max_row_length()) <=
             max_ell_expand * static_cast<double>(csr.nnz());
}

core::Savings index_savings(std::size_t original, std::size_t compressed) {
  return core::make_savings(original, compressed);
}

const std::vector<FormatTraits>& build_registry() {
  static const std::vector<FormatTraits> registry = {
      {Format::kCsr, "CSR", /*compressed=*/false, /*extension=*/false,
       // The host CSR reference is the correctness baseline, not a GPU
       // cocktail candidate (the CSR-scalar/vector simulator baselines live
       // in bench_baselines_csr).
       /*tunable=*/false, /*auto_priority=*/3, always_applicable,
       /*build=*/nullptr,
       [](const Matrix& m, std::span<const value_t> x, std::span<value_t> y) {
         sparse::spmv_csr_reference(m.csr(), x, y);
       },
       [](const Matrix& m, Workspace&, std::span<const value_t> x,
          std::span<value_t> y) { kernels::native_spmv_csr(m.csr(), x, y); },
       /*tune=*/nullptr, /*savings=*/nullptr, /*serialize=*/nullptr,
       [](const Matrix& m) { return check::validate_csr(m.csr()); },
       [](const DeviceSpec& dev, const Matrix& m,
          std::span<const value_t> x) {
         return kernels::sim_spmv_csr_scalar(dev, m.csr(), x).y;
       },
       [](const Matrix& m, Workspace&, std::span<const value_t> x,
          std::span<value_t> y, int k) {
         kernels::native_spmm_csr(m.csr(), x, y, k);
       },
       /*resident_bytes=*/nullptr,
       /*native_generic=*/nullptr, /*row_shardable=*/true},

      {Format::kCoo, "COO", false, false, true, -1, always_applicable,
       [](const Matrix& m, Workspace& ws) { ws.coo_ranges(m.coo()); },
       [](const Matrix& m, std::span<const value_t> x, std::span<value_t> y) {
         std::fill(y.begin(), y.end(), value_t{0});
         sparse::spmv_coo_accumulate(m.coo(), x, y);
       },
       [](const Matrix& m, Workspace& ws, std::span<const value_t> x,
          std::span<value_t> y) {
         kernels::native_spmv_coo(m.coo(), ws.coo_ranges(m.coo()), x, y);
       },
       [](const DeviceSpec& dev, const Matrix& m,
          std::span<const value_t> x) -> TuneOutcome {
         return {kernels::sim_spmv_coo(dev, m.coo(), x).time.gflops, 0.0};
       },
       nullptr, nullptr,
       [](const Matrix& m) {
         return check::validate_coo(m.coo(), &m.csr());
       },
       [](const DeviceSpec& dev, const Matrix& m,
          std::span<const value_t> x) {
         return kernels::sim_spmv_coo(dev, m.coo(), x).y;
       },
       /*native_multi=*/nullptr,
       [](const Matrix& m) {
         return m.coo().nnz() * (2 * sizeof(index_t) + sizeof(value_t));
       },
       /*native_generic=*/nullptr, /*row_shardable=*/true},

      {Format::kEll, "ELLPACK", false, false, true, -1, ell_applicable,
       [](const Matrix& m, Workspace&) { m.ell(); },
       [](const Matrix& m, std::span<const value_t> x, std::span<value_t> y) {
         sparse::spmv_ell(m.ell(), x, y);
       },
       [](const Matrix& m, Workspace&, std::span<const value_t> x,
          std::span<value_t> y) { kernels::native_spmv_ell(m.ell(), x, y); },
       [](const DeviceSpec& dev, const Matrix& m,
          std::span<const value_t> x) -> TuneOutcome {
         return {kernels::sim_spmv_ell(dev, m.ell(), x).time.gflops, 0.0};
       },
       nullptr, nullptr,
       [](const Matrix& m) {
         return check::validate_ell(m.ell(), &m.csr());
       },
       [](const DeviceSpec& dev, const Matrix& m,
          std::span<const value_t> x) {
         return kernels::sim_spmv_ell(dev, m.ell(), x).y;
       },
       [](const Matrix& m, Workspace&, std::span<const value_t> x,
          std::span<value_t> y, int k) {
         kernels::native_spmm_ell(m.ell(), x, y, k);
       },
       [](const Matrix& m) {
         return m.ell().entries() * (sizeof(index_t) + sizeof(value_t));
       },
       /*native_generic=*/nullptr, /*row_shardable=*/true},

      {Format::kEllR, "ELLPACK-R", false, false, true, -1, ell_applicable,
       [](const Matrix& m, Workspace&) { m.ellr(); },
       [](const Matrix& m, std::span<const value_t> x, std::span<value_t> y) {
         sparse::spmv_ellr(m.ellr(), x, y);
       },
       [](const Matrix& m, Workspace&, std::span<const value_t> x,
          std::span<value_t> y) { kernels::native_spmv_ellr(m.ellr(), x, y); },
       [](const DeviceSpec& dev, const Matrix& m,
          std::span<const value_t> x) -> TuneOutcome {
         return {kernels::sim_spmv_ellr(dev, m.ellr(), x).time.gflops, 0.0};
       },
       nullptr, nullptr,
       [](const Matrix& m) {
         return check::validate_ellr(m.ellr(), &m.csr());
       },
       [](const DeviceSpec& dev, const Matrix& m,
          std::span<const value_t> x) {
         return kernels::sim_spmv_ellr(dev, m.ellr(), x).y;
       },
       /*native_multi=*/nullptr,
       [](const Matrix& m) {
         const auto& e = m.ellr();
         return e.ell.entries() * (sizeof(index_t) + sizeof(value_t)) +
                e.row_length.size() * sizeof(index_t);
       },
       /*native_generic=*/nullptr, /*row_shardable=*/true},

      {Format::kHyb, "HYB", false, false, true, -1, always_applicable,
       [](const Matrix& m, Workspace& ws) { ws.coo_ranges(m.hyb().coo); },
       [](const Matrix& m, std::span<const value_t> x, std::span<value_t> y) {
         sparse::spmv_hyb(m.hyb(), x, y);
       },
       [](const Matrix& m, Workspace& ws, std::span<const value_t> x,
          std::span<value_t> y) {
         kernels::native_spmv_hyb(m.hyb(), ws.coo_ranges(m.hyb().coo), x, y);
       },
       [](const DeviceSpec& dev, const Matrix& m,
          std::span<const value_t> x) -> TuneOutcome {
         return {kernels::sim_spmv_hyb(dev, m.hyb(), x).time.gflops, 0.0};
       },
       nullptr, nullptr,
       [](const Matrix& m) {
         return check::validate_hyb(m.hyb(), &m.csr());
       },
       [](const DeviceSpec& dev, const Matrix& m,
          std::span<const value_t> x) {
         return kernels::sim_spmv_hyb(dev, m.hyb(), x).y;
       },
       /*native_multi=*/nullptr,
       [](const Matrix& m) {
         const auto& h = m.hyb();
         return h.ell.entries() * (sizeof(index_t) + sizeof(value_t)) +
                h.coo.nnz() * (2 * sizeof(index_t) + sizeof(value_t));
       },
       /*native_generic=*/nullptr, /*row_shardable=*/true},

      {Format::kBroEll, "BRO-ELL", true, false, true, 1, ell_applicable,
       [](const Matrix& m, Workspace& ws) { ws.bro_ell_kernels(m.bro_ell()); },
       [](const Matrix& m, std::span<const value_t> x, std::span<value_t> y) {
         m.bro_ell().spmv(x, y);
       },
       [](const Matrix& m, Workspace& ws, std::span<const value_t> x,
          std::span<value_t> y) {
         kernels::native_spmv_bro_ell(m.bro_ell(),
                                      ws.bro_ell_kernels(m.bro_ell()), x, y);
       },
       [](const DeviceSpec& dev, const Matrix& m,
          std::span<const value_t> x) -> TuneOutcome {
         const auto& bro = m.bro_ell();
         return {kernels::sim_spmv_bro_ell(dev, bro, x).time.gflops,
                 index_savings(bro.original_index_bytes(),
                               bro.compressed_index_bytes())
                     .eta()};
       },
       [](const Matrix& m) {
         return index_savings(m.bro_ell().original_index_bytes(),
                              m.bro_ell().compressed_index_bytes());
       },
       [](std::ostream& out, const Matrix& m) {
         core::write_bro_ell(out, m.bro_ell());
       },
       [](const Matrix& m) {
         return check::validate_bro_ell(m.bro_ell(), &m.csr());
       },
       [](const DeviceSpec& dev, const Matrix& m,
          std::span<const value_t> x) {
         return kernels::sim_spmv_bro_ell(dev, m.bro_ell(), x).y;
       },
       [](const Matrix& m, Workspace& ws, std::span<const value_t> x,
          std::span<value_t> y, int k) {
         kernels::native_spmm_bro_ell(
             m.bro_ell(), ws.bro_ell_kernels(m.bro_ell()), x, y, k);
       },
       [](const Matrix& m) {
         return m.bro_ell().resident_index_bytes() +
                m.bro_ell().vals().size() * sizeof(value_t);
       },
       [](const Matrix& m, std::span<const value_t> x, std::span<value_t> y) {
         kernels::native_spmv_bro_ell_generic(m.bro_ell(), x, y);
       },
       /*row_shardable=*/true},

      {Format::kBroCoo, "BRO-COO", true, false, true, -1, always_applicable,
       [](const Matrix& m, Workspace& ws) {
         ws.carries(m.bro_coo().intervals().size());
         ws.bro_coo_kernels(m.bro_coo());
       },
       [](const Matrix& m, std::span<const value_t> x, std::span<value_t> y) {
         std::fill(y.begin(), y.end(), value_t{0});
         m.bro_coo().spmv_accumulate(x, y);
       },
       [](const Matrix& m, Workspace& ws, std::span<const value_t> x,
          std::span<value_t> y) {
         const auto& bro = m.bro_coo();
         kernels::native_spmv_bro_coo(bro, ws.bro_coo_kernels(bro), x, y,
                                      ws.carries(bro.intervals().size()));
       },
       [](const DeviceSpec& dev, const Matrix& m,
          std::span<const value_t> x) -> TuneOutcome {
         // Device-matched interval sizing (the COO kernel's launch rule).
         const auto bro = core::BroCoo::compress(
             m.coo(), kernels::bro_coo_options_for(m.nnz(), dev));
         return {kernels::sim_spmv_bro_coo(dev, bro, x).time.gflops,
                 index_savings(bro.original_row_bytes(),
                               bro.compressed_row_bytes())
                     .eta()};
       },
       [](const Matrix& m) {
         return index_savings(m.bro_coo().original_row_bytes(),
                              m.bro_coo().compressed_row_bytes());
       },
       [](std::ostream& out, const Matrix& m) {
         core::write_bro_coo(out, m.bro_coo());
       },
       [](const Matrix& m) {
         return check::validate_bro_coo(m.bro_coo(), &m.csr());
       },
       [](const DeviceSpec& dev, const Matrix& m,
          std::span<const value_t> x) {
         // The facade-cached object (not the device-retuned one tune() uses)
         // so the differential run covers what apply/native ran.
         return kernels::sim_spmv_bro_coo(dev, m.bro_coo(), x).y;
       },
       [](const Matrix& m, Workspace& ws, std::span<const value_t> x,
          std::span<value_t> y, int k) {
         const auto& bro = m.bro_coo();
         const std::size_t n = bro.intervals().size();
         kernels::native_spmm_bro_coo(
             bro, ws.bro_coo_kernels(bro), x, y, k, ws.carries(n),
             ws.carry_sums(n * 2 * static_cast<std::size_t>(k)));
       },
       [](const Matrix& m) {
         return m.bro_coo().resident_row_bytes() +
                m.bro_coo().padded_nnz() *
                    (sizeof(index_t) + sizeof(value_t));
       },
       [](const Matrix& m, std::span<const value_t> x, std::span<value_t> y) {
         kernels::native_spmv_bro_coo_generic(m.bro_coo(), x, y);
       },
       // Interval carries regroup a row's partial sums at global stream
       // offsets; a shard's re-compression regroups them differently.
       /*row_shardable=*/false},

      {Format::kBroHyb, "BRO-HYB", true, false, true, 2, nonzero_applicable,
       [](const Matrix& m, Workspace& ws) {
         const auto& bro = m.bro_hyb();
         ws.bro_ell_kernels(bro.ell_part());
         if (bro.coo_part().nnz() > 0) {
           ws.values(static_cast<std::size_t>(bro.rows()));
           ws.carries(bro.coo_part().intervals().size());
           ws.bro_coo_kernels(bro.coo_part());
         }
       },
       [](const Matrix& m, std::span<const value_t> x, std::span<value_t> y) {
         m.bro_hyb().spmv(x, y);
       },
       [](const Matrix& m, Workspace& ws, std::span<const value_t> x,
          std::span<value_t> y) {
         const auto& bro = m.bro_hyb();
         kernels::native_spmv_bro_hyb(
             bro, ws.bro_ell_kernels(bro.ell_part()),
             ws.bro_coo_kernels(bro.coo_part()), x, y, ws.values(y.size()),
             ws.carries(bro.coo_part().intervals().size()));
       },
       [](const DeviceSpec& dev, const Matrix& m,
          std::span<const value_t> x) -> TuneOutcome {
         // Identical partition to HYB (paper §4.2.3) with device-matched
         // BRO-COO intervals for the overflow part.
         const auto& hyb = m.hyb();
         core::BroHybOptions ho;
         ho.width_override = hyb.ell.width;
         ho.coo = kernels::bro_coo_options_for(hyb.coo.nnz(), dev);
         const auto bro = core::BroHyb::compress(m.csr(), ho);
         return {kernels::sim_spmv_bro_hyb(dev, bro, x).time.gflops,
                 index_savings(bro.original_index_bytes(),
                               bro.compressed_index_bytes())
                     .eta()};
       },
       [](const Matrix& m) {
         return index_savings(m.bro_hyb().original_index_bytes(),
                              m.bro_hyb().compressed_index_bytes());
       },
       [](std::ostream& out, const Matrix& m) {
         core::write_bro_hyb(out, m.bro_hyb());
       },
       [](const Matrix& m) {
         return check::validate_bro_hyb(m.bro_hyb(), &m.csr());
       },
       [](const DeviceSpec& dev, const Matrix& m,
          std::span<const value_t> x) {
         return kernels::sim_spmv_bro_hyb(dev, m.bro_hyb(), x).y;
       },
       /*native_multi=*/nullptr,
       [](const Matrix& m) {
         const auto& bro = m.bro_hyb();
         return bro.resident_index_bytes() +
                bro.ell_part().vals().size() * sizeof(value_t) +
                bro.coo_part().padded_nnz() * sizeof(value_t);
       },
       [](const Matrix& m, std::span<const value_t> x, std::span<value_t> y) {
         kernels::native_spmv_bro_hyb_generic(m.bro_hyb(), x, y);
       },
       // The ELL/COO split point (width rule) shifts per shard and the COO
       // part inherits BRO-COO's interval regrouping.
       /*row_shardable=*/false},

      {Format::kBroCsr, "BRO-CSR", true, /*extension=*/true, true, -1,
       always_applicable,
       [](const Matrix& m, Workspace&) { m.bro_csr(); },
       [](const Matrix& m, std::span<const value_t> x, std::span<value_t> y) {
         m.bro_csr().spmv(x, y);
       },
       // No OpenMP host kernel yet: the plan falls back to the sequential
       // warp-scan decode.
       /*native=*/nullptr,
       [](const DeviceSpec& dev, const Matrix& m,
          std::span<const value_t> x) -> TuneOutcome {
         const auto& bro = m.bro_csr();
         return {kernels::sim_spmv_bro_csr(dev, bro, x).time.gflops,
                 index_savings(bro.original_index_bytes(),
                               bro.compressed_index_bytes())
                     .eta()};
       },
       [](const Matrix& m) {
         return index_savings(m.bro_csr().original_index_bytes(),
                              m.bro_csr().compressed_index_bytes());
       },
       [](std::ostream& out, const Matrix& m) {
         core::write_bro_csr(out, m.bro_csr());
       },
       [](const Matrix& m) {
         return check::validate_bro_csr(m.bro_csr(), &m.csr());
       },
       [](const DeviceSpec& dev, const Matrix& m,
          std::span<const value_t> x) {
         return kernels::sim_spmv_bro_csr(dev, m.bro_csr(), x).y;
       },
       /*native_multi=*/nullptr,
       [](const Matrix& m) {
         const auto& bro = m.bro_csr();
         return bro.compressed_index_bytes() +
                bro.row_ptr().size() * sizeof(index_t) +
                bro.vals().size() * sizeof(value_t);
       },
       /*native_generic=*/nullptr, /*row_shardable=*/true},

      {Format::kBroAns, "BRO-ANS", true, /*extension=*/true,
       // Not tunable: the symbol model adapts to the matrix by construction
       // (the frequency table is rebuilt per matrix), leaving no
       // device-dependent knob for the cocktail to sweep.
       /*tunable=*/false, /*auto_priority=*/-1, ell_applicable,
       [](const Matrix& m, Workspace& ws) {
         ws.bro_ans_kernels(m.bro_ans());
       },
       [](const Matrix& m, std::span<const value_t> x, std::span<value_t> y) {
         m.bro_ans().spmv(x, y);
       },
       [](const Matrix& m, Workspace& ws, std::span<const value_t> x,
          std::span<value_t> y) {
         const auto& bro = m.bro_ans();
         kernels::native_spmv_bro_ans(bro, ws.bro_ans_kernels(bro), x, y);
       },
       /*tune=*/nullptr,
       [](const Matrix& m) {
         return index_savings(m.bro_ans().original_index_bytes(),
                              m.bro_ans().compressed_index_bytes());
       },
       [](std::ostream& out, const Matrix& m) {
         core::write_bro_ans(out, m.bro_ans());
       },
       [](const Matrix& m) {
         return check::validate_bro_ans(m.bro_ans(), &m.csr());
       },
       [](const DeviceSpec& dev, const Matrix& m,
          std::span<const value_t> x) {
         return kernels::sim_spmv_bro_ans(dev, m.bro_ans(), x).y;
       },
       /*native_multi=*/nullptr,
       [](const Matrix& m) {
         return m.bro_ans().resident_index_bytes() +
                m.bro_ans().vals().size() * sizeof(value_t);
       },
       [](const Matrix& m, std::span<const value_t> x, std::span<value_t> y) {
         kernels::native_spmv_bro_ans_generic(m.bro_ans(), x, y);
       },
       // Entropy coding is per-row-slice with a per-matrix table; a shard
       // rebuild re-derives its own table, but decode stays lossless and
       // accumulation left-to-right, so sharded results are bitwise equal.
       /*row_shardable=*/true},

      {Format::kBroBcsr, "BRO-BCSR", true, /*extension=*/true, true,
       // First pick when its strict applicability gate (block cover with
       // enough fill AND a real byte win over the unblocked streams —
       // core/bro_bcsr.cpp) passes: on matrices that block well it beats
       // BRO-ELL on both eta and decode rate, and the gate keeps it off
       // everything else (notably all of Test Set 1).
       /*auto_priority=*/0,
       [](const sparse::Csr& csr, double max_ell_expand) {
         return core::bro_bcsr_applicable(csr, max_ell_expand);
       },
       [](const Matrix& m, Workspace& ws) {
         ws.bro_bcsr_kernels(m.bro_bcsr());
       },
       [](const Matrix& m, std::span<const value_t> x, std::span<value_t> y) {
         m.bro_bcsr().spmv(x, y);
       },
       [](const Matrix& m, Workspace& ws, std::span<const value_t> x,
          std::span<value_t> y) {
         const auto& bro = m.bro_bcsr();
         kernels::native_spmv_bro_bcsr(bro, ws.bro_bcsr_kernels(bro), x, y);
       },
       [](const DeviceSpec& dev, const Matrix& m,
          std::span<const value_t> x) -> TuneOutcome {
         const auto& bro = m.bro_bcsr();
         // eta is fill-adjusted: compressed_index_bytes charges the cover's
         // explicit-zero value slots against the index-bit savings.
         return {kernels::sim_spmv_bro_bcsr(dev, bro, x).time.gflops,
                 index_savings(bro.original_index_bytes(),
                               bro.compressed_index_bytes())
                     .eta()};
       },
       [](const Matrix& m) {
         return index_savings(m.bro_bcsr().original_index_bytes(),
                              m.bro_bcsr().compressed_index_bytes());
       },
       [](std::ostream& out, const Matrix& m) {
         core::write_bro_bcsr(out, m.bro_bcsr());
       },
       [](const Matrix& m) {
         return check::validate_bro_bcsr(m.bro_bcsr(), &m.csr());
       },
       [](const DeviceSpec& dev, const Matrix& m,
          std::span<const value_t> x) {
         return kernels::sim_spmv_bro_bcsr(dev, m.bro_bcsr(), x).y;
       },
       [](const Matrix& m, Workspace& ws, std::span<const value_t> x,
          std::span<value_t> y, int k) {
         const auto& bro = m.bro_bcsr();
         kernels::native_spmm_bro_bcsr(bro, ws.bro_bcsr_kernels(bro), x, y,
                                       k);
       },
       [](const Matrix& m) {
         return m.bro_bcsr().resident_index_bytes() +
                m.bro_bcsr().vals().size() * sizeof(value_t);
       },
       [](const Matrix& m, std::span<const value_t> x, std::span<value_t> y) {
         kernels::native_spmv_bro_bcsr_generic(m.bro_bcsr(), x, y);
       },
       // Per-row accumulation is the 8-lane contract in ascending column
       // order; a shard's re-blocked cover only changes which exact-zero
       // fill products appear, and those never alter a lane (the reduce's
       // trailing +0.0 also normalizes the -0.0 edge), so sharded results
       // stay bitwise equal.
       /*row_shardable=*/true},
  };
  return registry;
}

} // namespace

const std::vector<FormatTraits>& format_registry() { return build_registry(); }

const FormatTraits& traits(core::Format f) {
  const auto& registry = format_registry();
  const auto idx = static_cast<std::size_t>(f);
  BRO_CHECK_MSG(idx < registry.size() && registry[idx].format == f,
                "format not registered");
  return registry[idx];
}

const FormatTraits* find_format(std::string_view name) {
  for (const auto& t : format_registry())
    if (name == t.name) return &t;
  return nullptr;
}

std::vector<std::string> format_names() {
  std::vector<std::string> names;
  for (const auto& t : format_registry()) names.emplace_back(t.name);
  return names;
}

core::Format auto_select(const sparse::Csr& csr, double max_ell_expand) {
  const FormatTraits* best = nullptr;
  for (const auto& t : format_registry()) {
    if (t.auto_priority < 0 || !t.applicable(csr, max_ell_expand)) continue;
    if (!best || t.auto_priority < best->auto_priority) best = &t;
  }
  BRO_CHECK_MSG(best != nullptr, "no applicable format registered");
  return best->format;
}

} // namespace bro::engine
