// bro::engine row-sharded planned execution.
//
// CMRS-style row partitioning lifted one level up: instead of balancing
// rows across warps inside one kernel, split the matrix into S contiguous
// row ranges with balanced nnz, compress each range independently, and
// hand every range its own SpmvPlan. Shards write disjoint y sub-spans and
// read the shared x, so they may execute concurrently (e.g. across the
// serve layer's worker pools) without touching each other's workspace —
// each shard plan keeps the engine's single-executor contract for itself.
//
// Bitwise contract: for every format whose FormatTraits::row_shardable is
// true, executing the shards (in any order) produces exactly the bytes the
// whole-matrix plan produces. Those formats accumulate each y row strictly
// left-to-right over the row's entries, and a row partition preserves every
// row's entry sequence; re-compression can only change padding, which adds
// ±0.0 terms that cannot perturb a sum that is never exactly -0.0. The
// interval-carry formats (BRO-COO, BRO-HYB) regroup partial sums at global
// stream offsets and are rejected at construction.
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "engine/plan.h"

namespace bro::engine {

/// Half-open row range [begin, end) of the source matrix.
struct RowShard {
  index_t begin = 0;
  index_t end = 0;
  std::size_t nnz = 0;

  index_t rows() const { return end - begin; }
};

/// Partition [0, csr.rows) into min(shards, rows) contiguous ranges with
/// balanced nnz: shard s ends at the first row where the nnz prefix reaches
/// s+1 shares of the total, clamped so every shard keeps at least one row.
/// Empty matrix => no shards; `shards` must be >= 1.
std::vector<RowShard> balanced_row_shards(const sparse::Csr& csr, int shards);

/// The sub-matrix holding rows [begin, end) of `csr`: same column space,
/// row_ptr rebased to the slice.
sparse::Csr extract_rows(const sparse::Csr& csr, index_t begin, index_t end);

/// A matrix bound to one row-shardable format as S independent per-shard
/// plans. execute_shard() writes only the shard's rows, so callers run
/// shards concurrently by handing each one the matching y sub-span
/// (interleaved SpMM rows stay contiguous: rows [r0, r1) of a k-column
/// batch occupy y[r0*k, r1*k)). nnz-free shards carry no plan at all —
/// their rows are zero-filled, bitwise what any kernel produces for an
/// empty row.
class ShardedSpmvPlan {
 public:
  /// Throws when the resolved format is not row_shardable.
  ShardedSpmvPlan(std::shared_ptr<const core::Matrix> matrix, int shards,
                  std::optional<core::Format> format = std::nullopt);

  /// The format sharding resolves to: `format` when given, else the
  /// matrix's auto-selection, falling back to CSR when auto picks an
  /// interval-carry (non-shardable) format.
  static core::Format resolve_format(const core::Matrix& m,
                                     std::optional<core::Format> format);

  core::Format format() const { return format_; }
  index_t rows() const { return rows_; }
  index_t cols() const { return cols_; }
  int shard_count() const { return static_cast<int>(shards_.size()); }
  const RowShard& shard(int s) const { return shards_.at(s); }

  /// The shard's own plan; null when the shard has no entries.
  SpmvPlan* shard_plan(int s) { return plans_.at(s).get(); }

  /// y = A[shard rows] * x. `x` is the full input (size cols()); `y` spans
  /// exactly the shard's rows.
  void execute_shard(int s, std::span<const value_t> x, std::span<value_t> y);

  /// SpMM form over k interleaved right-hand sides; `y` spans the shard's
  /// rows * k.
  void execute_shard_multi(int s, std::span<const value_t> x,
                           std::span<value_t> y, int k);

  /// Whole-matrix convenience: every shard serially into its y sub-span.
  void execute(std::span<const value_t> x, std::span<value_t> y);
  void execute_multi(std::span<const value_t> x, std::span<value_t> y, int k);

  /// Sum of the shard plans' resident bytes (PlanCache-compatible).
  std::size_t resident_bytes() const;

 private:
  std::shared_ptr<const core::Matrix> matrix_;
  core::Format format_ = core::Format::kCsr;
  index_t rows_ = 0;
  index_t cols_ = 0;
  std::vector<RowShard> shards_;
  std::vector<std::unique_ptr<SpmvPlan>> plans_; // null for nnz == 0 shards
};

} // namespace bro::engine
