// Registry-backed definitions of the core::Matrix facade's format-generic
// surface. These live in the engine library (not core) so that the format
// registry is the only dispatch site in the codebase: core declares the
// interface, the registry supplies the behaviour.
#include "core/matrix.h"
#include "engine/format_registry.h"
#include "util/error.h"

namespace bro::core {

const char* format_name(Format f) { return engine::traits(f).name; }

Format Matrix::auto_format() const {
  return engine::auto_select(csr_, opts_.max_ell_expand);
}

void Matrix::spmv(std::span<const value_t> x, std::span<value_t> y) const {
  spmv(x, y, auto_format());
}

void Matrix::spmv(std::span<const value_t> x, std::span<value_t> y,
                  Format format) const {
  BRO_CHECK(x.size() == static_cast<std::size_t>(cols()));
  BRO_CHECK(y.size() == static_cast<std::size_t>(rows()));
  engine::traits(format).apply(*this, x, y);
}

Savings Matrix::savings() const {
  const auto& t = engine::traits(auto_format());
  return t.savings ? t.savings(*this) : Savings{};
}

} // namespace bro::core
