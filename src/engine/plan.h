// bro::engine planned SpMV execution.
//
// The paper's deployment model (and SMASH/clSpMV's architecture) is a
// one-time planning/indexing step feeding a cheap repeated-apply step:
// compress once, then decode every CG/GMRES iteration. SpmvPlan is that
// split made explicit. Building a plan materializes the chosen format and
// pre-sizes every scratch buffer the native kernels need (the BRO-HYB y_coo
// vector, the BRO-COO carry array, the COO per-thread row-range split);
// execute() is then allocation-free, which an instrumented workspace
// counter makes testable.
//
//   auto m = std::make_shared<core::Matrix>(core::Matrix::from_file(path));
//   engine::SpmvPlan plan(m);            // auto-selected format
//   plan.execute(x, y);                  // y = A*x, no per-call allocation
//
// Concurrency contract: a plan's Workspace is single-writer scratch. One
// SpmvPlan (and hence its Workspace) must NOT be shared across threads that
// execute concurrently — the kernels parallelize internally with OpenMP, so
// there is nothing to gain and a silent data race to lose. Concurrent
// callers need one plan each (cheap: representations are shared through the
// facade) or an external lock; bro::serve::PlanCache + SpmvServer implement
// the locked variant. Misuse fails loudly: execute()/execute_multi() guard
// entry with an atomic in-use flag and throw via BRO_CHECK instead of
// racing.
#pragma once

#include <atomic>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "core/matrix.h"
#include "engine/format_registry.h"
#include "kernels/bro_bcsr_decode.h"
#include "kernels/native_spmv.h"
#include "solver/operator.h"

namespace bro::engine {

/// Pre-sized scratch owned by a plan. Each accessor grows its buffer only
/// when the request exceeds the current size and counts every growth, so a
/// test can assert that repeated execute() calls allocate nothing.
/// Not thread-safe: see the SpmvPlan concurrency contract above.
class Workspace {
 public:
  /// Scratch vector of n values (BRO-HYB's y_coo).
  std::span<value_t> values(std::size_t n);

  /// BRO-COO carry scratch for n intervals.
  std::span<kernels::BroCooCarry> carries(std::size_t n);

  /// BRO-COO SpMM carry sums: n = intervals * 2 * k values (see
  /// kernels/native_spmm.h for the layout).
  std::span<value_t> carry_sums(std::size_t n);

  /// Gather/scatter scratch for the multi-vector fallback path: one
  /// contiguous x column and one y column.
  std::span<value_t> gather_x(std::size_t n);
  std::span<value_t> gather_y(std::size_t n);

  /// The COO row-range split for this matrix at the plan's thread count,
  /// computed on first request and cached. The cache is keyed on the matrix
  /// address, its nnz and the current thread count, so a different matrix
  /// reallocated at the same address or an omp_set_num_threads() change
  /// recomputes the split instead of silently reusing stale ranges.
  std::span<const kernels::CooRange> coo_ranges(const sparse::Coo& a);

  /// The per-slice / per-interval decode-kernel selection for a BRO
  /// representation, computed on first request and cached (keyed on the
  /// object address plus its slice/interval count, like coo_ranges, plus
  /// the active SIMD ISA so a ScopedSimdIsa/BRO_SIMD change re-selects
  /// instead of reusing stale kernels). The build hooks populate these so
  /// execute()/execute_multi() dispatch through pre-selected
  /// width-specialized kernels with no per-call selection scan or
  /// allocation.
  std::span<const kernels::BroEllKernel> bro_ell_kernels(
      const core::BroEll& a);
  std::span<const kernels::BroCooKernel> bro_coo_kernels(
      const core::BroCoo& a);
  std::span<const kernels::BroAnsKernel> bro_ans_kernels(
      const core::BroAns& a);
  std::span<const kernels::BroBcsrKernel> bro_bcsr_kernels(
      const core::BroBcsr& a);

  /// Number of (re)allocations performed so far.
  std::size_t allocations() const { return allocations_; }

 private:
  std::vector<value_t> values_;
  std::vector<kernels::BroCooCarry> carries_;
  std::vector<value_t> carry_sums_;
  std::vector<value_t> gather_x_;
  std::vector<value_t> gather_y_;
  std::vector<kernels::CooRange> ranges_;
  const sparse::Coo* ranges_for_ = nullptr;
  std::size_t ranges_nnz_ = 0;
  int ranges_threads_ = 0;
  std::vector<kernels::BroEllKernel> ell_kernels_;
  const core::BroEll* ell_kernels_for_ = nullptr;
  kernels::SimdIsa ell_kernels_isa_ = kernels::SimdIsa::kScalar;
  std::vector<kernels::BroCooKernel> coo_kernels_;
  const core::BroCoo* coo_kernels_for_ = nullptr;
  kernels::SimdIsa coo_kernels_isa_ = kernels::SimdIsa::kScalar;
  std::vector<kernels::BroAnsKernel> ans_kernels_;
  const core::BroAns* ans_kernels_for_ = nullptr;
  kernels::SimdIsa ans_kernels_isa_ = kernels::SimdIsa::kScalar;
  std::vector<kernels::BroBcsrKernel> bcsr_kernels_;
  const core::BroBcsr* bcsr_kernels_for_ = nullptr;
  kernels::SimdIsa bcsr_kernels_isa_ = kernels::SimdIsa::kScalar;
  std::size_t allocations_ = 0;
};

/// A matrix bound to one format with everything needed to apply y = A*x
/// repeatedly: the built representation (shared with the facade's cache)
/// plus a pre-sized workspace. Built once per (matrix, format, thread
/// count); execute() performs no per-call heap allocation.
///
/// Plans are movable but not copyable, and must not execute concurrently
/// from two threads (see the file-header contract).
class SpmvPlan {
 public:
  explicit SpmvPlan(std::shared_ptr<const core::Matrix> matrix,
                    std::optional<core::Format> format = std::nullopt);

  SpmvPlan(SpmvPlan&& other) noexcept;
  SpmvPlan& operator=(SpmvPlan&& other) noexcept;
  SpmvPlan(const SpmvPlan&) = delete;
  SpmvPlan& operator=(const SpmvPlan&) = delete;

  core::Format format() const { return traits_->format; }
  const FormatTraits& format_traits() const { return *traits_; }
  const core::Matrix& matrix() const { return *matrix_; }
  index_t rows() const { return matrix_->rows(); }
  index_t cols() const { return matrix_->cols(); }

  /// y = A * x through the plan's native kernel (or the sequential
  /// reference for formats without one). Allocation-free after build.
  void execute(std::span<const value_t> x, std::span<value_t> y);

  /// Y = A * X for k interleaved right-hand sides (X[c*k + j] is element c
  /// of vector j; see kernels/native_spmm.h). Formats with an SpMM kernel
  /// (CSR, ELLPACK, BRO-ELL, BRO-COO) decode each index once per batch;
  /// the rest fall back to k single-vector executes through gather/scatter
  /// scratch. Column j of Y is bitwise-identical to execute() on column j
  /// of X either way.
  void execute_multi(std::span<const value_t> x, std::span<value_t> y, int k);

  /// Workspace growth counter — stable across execute() calls once built.
  std::size_t workspace_allocations() const { return ws_.allocations(); }

  /// Estimated resident bytes of this plan: the facade's base CSR plus the
  /// built representation (registry resident_bytes hook). What the serve
  /// layer's PlanCache charges against its byte budget.
  std::size_t resident_bytes() const;

  /// Test seam for the concurrency contract: acquire/release exactly the
  /// in-use guard execute() takes, so a test can prove that concurrent
  /// entry throws instead of racing.
  void debug_acquire();
  void debug_release();

 private:
  void execute_impl(std::span<const value_t> x, std::span<value_t> y);

  std::shared_ptr<const core::Matrix> matrix_;
  const FormatTraits* traits_;
  Workspace ws_;
  std::atomic<bool> in_use_{false};
};

/// Convenience: take ownership of a facade and plan it in one step.
SpmvPlan make_plan(core::Matrix matrix,
                   std::optional<core::Format> format = std::nullopt);
std::shared_ptr<SpmvPlan> make_shared_plan(
    core::Matrix matrix, std::optional<core::Format> format = std::nullopt);

/// Wrap a plan as a solver::Operator so CG/BiCGSTAB/GMRES iterate through
/// the planned, allocation-free apply path.
solver::Operator plan_operator(std::shared_ptr<SpmvPlan> plan);

} // namespace bro::engine
