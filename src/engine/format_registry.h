// bro::engine format registry — the single format-dispatch site.
//
// Every storage format the library knows (the paper's formats, their
// baselines and the extensions) registers one FormatTraits entry: its name,
// applicability predicate (the ELL-viability rule), build / reference-apply /
// native-kernel / simulator hooks and serialization. Everything that used to
// switch over core::Format — format_name, name parsing, Matrix::spmv,
// auto-selection, the autotuner's candidate enumeration, the CLI's --format
// handling and the bench harness — iterates this table instead, so adding a
// format is a one-entry change.
#pragma once

#include <iosfwd>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/matrix.h"
#include "core/savings.h"
#include "gpusim/device.h"
#include "util/types.h"

namespace bro::engine {

class Workspace; // plan.h

/// What the simulator reports for one (format, device) tuning candidate:
/// modelled throughput plus the index space savings of the device-tuned
/// compressed object (0 for uncompressed formats).
struct TuneOutcome {
  double gflops = 0;
  double eta = 0;
};

struct FormatTraits {
  core::Format format;
  const char* name;   // the canonical display/CLI name ("BRO-ELL", ...)
  bool compressed;    // BRO family: reports nonzero index savings
  bool extension;     // beyond the paper (gated by TuneOptions)
  bool tunable;       // participates in the autotuner's cocktail ranking
  int auto_priority;  // auto_format(): lowest applicable wins; <0 = never

  /// Can this format hold the matrix without pathological expansion?
  /// (ELLPACK family: rows * max_row_length <= max_ell_expand * nnz.)
  bool (*applicable)(const sparse::Csr& csr, double max_ell_expand);

  /// One-time plan step: materialize the representation in the facade's
  /// cache and pre-size the workspace so execute() never allocates.
  void (*build)(const core::Matrix& m, Workspace& ws);

  /// Sequential reference kernel — what Matrix::spmv dispatches to.
  void (*apply)(const core::Matrix& m, std::span<const value_t> x,
                std::span<value_t> y);

  /// OpenMP host kernel fed from the plan workspace (null: falls back to
  /// apply — e.g. the sequential BRO-CSR extension).
  void (*native)(const core::Matrix& m, Workspace& ws,
                 std::span<const value_t> x, std::span<value_t> y);

  /// Simulator run with device-matched compression options (null for
  /// formats excluded from the cocktail, e.g. the CSR host reference).
  TuneOutcome (*tune)(const sim::DeviceSpec& dev, const core::Matrix& m,
                      std::span<const value_t> x);

  /// Index space savings of the device-independent representation
  /// (null for uncompressed formats).
  core::Savings (*savings)(const core::Matrix& m);

  /// Write the compressed representation as a tagged .bro stream
  /// (null when the format has no on-disk form).
  void (*serialize)(std::ostream& out, const core::Matrix& m);

  /// Structural + lossless-against-source invariant check of the format's
  /// representation (bro::check validators): one message per violation,
  /// empty = valid. Builds the representation on first call.
  std::vector<std::string> (*validate)(const core::Matrix& m);

  /// Simulator-kernel numerical result for differential testing: runs the
  /// GPU-simulator kernel and returns its y vector (null when the format
  /// has no simulator kernel). Unlike tune(), the representation is the
  /// facade-cached one, so validate / apply / native / sim all exercise the
  /// same object.
  std::vector<value_t> (*sim_apply)(const sim::DeviceSpec& dev,
                                    const core::Matrix& m,
                                    std::span<const value_t> x);

  /// Multi-vector (SpMM) OpenMP host kernel over k interleaved right-hand
  /// sides (see kernels/native_spmm.h for the layout and the bitwise
  /// contract). Null: SpmvPlan::execute_multi falls back to k single-vector
  /// executes through gather/scatter scratch.
  void (*native_multi)(const core::Matrix& m, Workspace& ws,
                       std::span<const value_t> x, std::span<value_t> y,
                       int k);

  /// Bytes of the built format-specific representation beyond the facade's
  /// base CSR (null: the representation *is* that CSR, e.g. the CSR host
  /// reference). Builds the representation on first call. Feeds the serve
  /// layer's PlanCache byte budget via SpmvPlan::resident_bytes().
  std::size_t (*resident_bytes)(const core::Matrix& m);

  /// The same SpMV forced through the runtime-width (generic) decoder
  /// instead of the plan's width-specialized dispatch table (null for
  /// formats without bit-level decode). Decodes bit-for-bit identically, so
  /// the differential fuzz driver compares it against native() *bitwise* —
  /// the parity oracle for the specialized kernels.
  void (*native_generic)(const core::Matrix& m, std::span<const value_t> x,
                         std::span<value_t> y);

  /// True when a row partition of the matrix, re-compressed shard by shard,
  /// executes bitwise-identically to the whole-matrix plan (engine/shard.h).
  /// Holds for every format whose kernels accumulate each y row strictly
  /// left-to-right over that row's entries (CSR, COO, the ELLPACK family,
  /// HYB, BRO-ELL, BRO-CSR — padding terms only ever add ±0.0, which cannot
  /// change a sum that is never exactly -0.0). False for the interval-carry
  /// formats (BRO-COO, BRO-HYB): interval boundaries fall at fixed offsets
  /// of the *global* entry stream, so re-compressing a shard regroups a
  /// row's partial sums and floating-point addition is not associative.
  bool row_shardable = false;
};

/// The registered formats, in core::Format enumeration order.
const std::vector<FormatTraits>& format_registry();

/// Traits lookup by enum value.
const FormatTraits& traits(core::Format f);

/// Name -> traits lookup (exact match on the canonical name); null when the
/// name is not registered.
const FormatTraits* find_format(std::string_view name);

/// All registered canonical names, in registry order.
std::vector<std::string> format_names();

/// The facade's auto-selection heuristic over the registry: the applicable
/// format with the lowest non-negative auto_priority.
core::Format auto_select(const sparse::Csr& csr, double max_ell_expand);

} // namespace bro::engine
