#include "engine/shard.h"

#include <algorithm>

#include "util/error.h"

namespace bro::engine {

std::vector<RowShard> balanced_row_shards(const sparse::Csr& csr,
                                          int shards) {
  BRO_CHECK_MSG(shards >= 1, "shard count must be >= 1, got " << shards);
  std::vector<RowShard> out;
  if (csr.rows == 0) return out;
  const auto s_count =
      static_cast<index_t>(std::min<index_t>(shards, csr.rows));
  const std::size_t total = csr.nnz();
  out.reserve(static_cast<std::size_t>(s_count));
  index_t begin = 0;
  for (index_t s = 0; s < s_count; ++s) {
    // Rows every later shard still needs (one each) bound this shard's end.
    const index_t max_end = csr.rows - (s_count - 1 - s);
    index_t end = begin + 1;
    if (s + 1 == s_count) {
      end = csr.rows;
    } else {
      // First row where the nnz prefix reaches s+1 shares of the total.
      const std::size_t target = (total * static_cast<std::size_t>(s + 1)) /
                                 static_cast<std::size_t>(s_count);
      while (end < max_end &&
             static_cast<std::size_t>(csr.row_ptr[end]) < target)
        ++end;
    }
    out.push_back({begin, end,
                   static_cast<std::size_t>(csr.row_ptr[end] -
                                            csr.row_ptr[begin])});
    begin = end;
  }
  return out;
}

sparse::Csr extract_rows(const sparse::Csr& csr, index_t begin, index_t end) {
  BRO_CHECK_MSG(begin >= 0 && begin <= end && end <= csr.rows,
                "extract_rows range [" << begin << ", " << end
                                       << ") out of [0, " << csr.rows << ")");
  sparse::Csr out;
  out.rows = end - begin;
  out.cols = csr.cols;
  out.row_ptr.resize(static_cast<std::size_t>(out.rows) + 1);
  const index_t base = csr.row_ptr[begin];
  for (index_t r = 0; r <= out.rows; ++r)
    out.row_ptr[static_cast<std::size_t>(r)] = csr.row_ptr[begin + r] - base;
  const auto nnz = static_cast<std::size_t>(csr.row_ptr[end] - base);
  out.col_idx.assign(csr.col_idx.begin() + base,
                     csr.col_idx.begin() + base + nnz);
  out.vals.assign(csr.vals.begin() + base, csr.vals.begin() + base + nnz);
  return out;
}

core::Format ShardedSpmvPlan::resolve_format(
    const core::Matrix& m, std::optional<core::Format> format) {
  if (format) return *format;
  const core::Format auto_f = m.auto_format();
  return traits(auto_f).row_shardable ? auto_f : core::Format::kCsr;
}

ShardedSpmvPlan::ShardedSpmvPlan(std::shared_ptr<const core::Matrix> matrix,
                                 int shards,
                                 std::optional<core::Format> format)
    : matrix_(std::move(matrix)) {
  BRO_CHECK_MSG(matrix_ != nullptr, "ShardedSpmvPlan requires a matrix");
  format_ = resolve_format(*matrix_, format);
  BRO_CHECK_MSG(
      traits(format_).row_shardable,
      "format " << traits(format_).name
                << " is not row-shardable (interval carries regroup partial "
                   "sums; see engine/shard.h)");
  rows_ = matrix_->rows();
  cols_ = matrix_->cols();
  shards_ = balanced_row_shards(matrix_->csr(), shards);
  plans_.resize(shards_.size());
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    if (shards_[s].nnz == 0) continue; // zero-filled at execute time
    auto sub = std::make_shared<core::Matrix>(core::Matrix::from_csr(
        extract_rows(matrix_->csr(), shards_[s].begin, shards_[s].end)));
    plans_[s] = std::make_unique<SpmvPlan>(std::move(sub), format_);
  }
}

void ShardedSpmvPlan::execute_shard(int s, std::span<const value_t> x,
                                    std::span<value_t> y) {
  const RowShard& sh = shards_.at(static_cast<std::size_t>(s));
  BRO_CHECK(x.size() == static_cast<std::size_t>(cols_));
  BRO_CHECK(y.size() == static_cast<std::size_t>(sh.rows()));
  SpmvPlan* plan = plans_[static_cast<std::size_t>(s)].get();
  if (!plan) {
    std::fill(y.begin(), y.end(), value_t{0});
    return;
  }
  plan->execute(x, y);
}

void ShardedSpmvPlan::execute_shard_multi(int s, std::span<const value_t> x,
                                          std::span<value_t> y, int k) {
  BRO_CHECK_MSG(k >= 1, "SpMM batch size must be >= 1");
  const RowShard& sh = shards_.at(static_cast<std::size_t>(s));
  const auto uk = static_cast<std::size_t>(k);
  BRO_CHECK(x.size() == static_cast<std::size_t>(cols_) * uk);
  BRO_CHECK(y.size() == static_cast<std::size_t>(sh.rows()) * uk);
  SpmvPlan* plan = plans_[static_cast<std::size_t>(s)].get();
  if (!plan) {
    std::fill(y.begin(), y.end(), value_t{0});
    return;
  }
  plan->execute_multi(x, y, k);
}

void ShardedSpmvPlan::execute(std::span<const value_t> x,
                              std::span<value_t> y) {
  BRO_CHECK(y.size() == static_cast<std::size_t>(rows_));
  for (int s = 0; s < shard_count(); ++s) {
    const RowShard& sh = shards_[static_cast<std::size_t>(s)];
    execute_shard(s, x,
                  y.subspan(static_cast<std::size_t>(sh.begin),
                            static_cast<std::size_t>(sh.rows())));
  }
}

void ShardedSpmvPlan::execute_multi(std::span<const value_t> x,
                                    std::span<value_t> y, int k) {
  const auto uk = static_cast<std::size_t>(k);
  BRO_CHECK(y.size() == static_cast<std::size_t>(rows_) * uk);
  for (int s = 0; s < shard_count(); ++s) {
    const RowShard& sh = shards_[static_cast<std::size_t>(s)];
    execute_shard_multi(s, x,
                        y.subspan(static_cast<std::size_t>(sh.begin) * uk,
                                  static_cast<std::size_t>(sh.rows()) * uk),
                        k);
  }
}

std::size_t ShardedSpmvPlan::resident_bytes() const {
  std::size_t total = 0;
  for (const auto& p : plans_)
    if (p) total += p->resident_bytes();
  return total;
}

} // namespace bro::engine
