#include "engine/autotune.h"

#include <algorithm>

#include "util/rng.h"

namespace bro::engine {

TuneResult autotune(const core::Matrix& m, const sim::DeviceSpec& dev,
                    const TuneOptions& opts) {
  // A deterministic probe vector; the access pattern, not the values,
  // drives the simulated performance.
  Rng rng(2013);
  std::vector<value_t> x(static_cast<std::size_t>(m.cols()));
  for (auto& v : x) v = rng.uniform() * 2 - 1;

  TuneResult result;
  for (const auto& t : format_registry()) {
    if (!t.tunable) continue;
    if (t.extension && !opts.include_extensions) continue;
    if (!t.applicable(m.csr(), opts.max_ell_expand)) {
      result.ranking.push_back({t.format, 0, 0, false});
      continue;
    }
    const TuneOutcome out = t.tune(dev, m, x);
    result.ranking.push_back({t.format, out.gflops, out.eta, true});
  }

  std::stable_sort(result.ranking.begin(), result.ranking.end(),
                   [](const TuneEntry& a, const TuneEntry& b) {
                     if (a.applicable != b.applicable) return a.applicable;
                     return a.gflops > b.gflops;
                   });
  return result;
}

TuneResult autotune(const sparse::Csr& csr, const sim::DeviceSpec& dev,
                    const TuneOptions& opts) {
  return autotune(core::Matrix::from_csr(csr), dev, opts);
}

} // namespace bro::engine
