#include "solver/cg.h"

#include <vector>

#include "solver/blas1.h"
#include "util/error.h"

namespace bro::solver {

SolveResult cg(const Operator& a, std::span<const value_t> b,
               std::span<value_t> x, const SolveOptions& opts,
               const Preconditioner& precond) {
  const std::size_t n = b.size();
  BRO_CHECK(x.size() == n);

  std::vector<value_t> r(n), z(n), p(n), ap(n);

  // r = b - A*x
  a(x, r);
  for (std::size_t i = 0; i < n; ++i) r[i] = b[i] - r[i];

  const double bnorm = norm2(b);
  const double stop = opts.tolerance * (bnorm > 0 ? bnorm : 1.0);

  SolveResult res;
  res.residual_norm = norm2(r) / (bnorm > 0 ? bnorm : 1.0);
  if (norm2(r) <= stop) {
    res.converged = true;
    return res;
  }

  precond(r, z);
  p.assign(z.begin(), z.end());
  double rz = dot(r, z);

  for (int it = 0; it < opts.max_iterations; ++it) {
    a(p, ap);
    const double pap = dot(p, ap);
    if (pap == 0.0) break; // breakdown (A not SPD)
    const double alpha = rz / pap;
    axpy(alpha, p, x);
    axpy(-alpha, ap, r);
    res.iterations = it + 1;

    const double rnorm = norm2(r);
    res.residual_norm = rnorm / (bnorm > 0 ? bnorm : 1.0);
    if (rnorm <= stop) {
      res.converged = true;
      return res;
    }

    precond(r, z);
    const double rz_new = dot(r, z);
    const double beta = rz_new / rz;
    rz = rz_new;
    xpby(z, beta, p);
  }
  return res;
}

JacobiPreconditioner::JacobiPreconditioner(const sparse::Csr& csr) {
  BRO_CHECK_MSG(csr.rows == csr.cols, "Jacobi requires a square matrix");
  inv_diag_.assign(static_cast<std::size_t>(csr.rows), value_t{1});
  for (index_t r = 0; r < csr.rows; ++r)
    for (index_t p = csr.row_ptr[r]; p < csr.row_ptr[r + 1]; ++p)
      if (csr.col_idx[p] == r && csr.vals[p] != value_t{0})
        inv_diag_[static_cast<std::size_t>(r)] = value_t{1} / csr.vals[p];
}

void JacobiPreconditioner::operator()(std::span<const value_t> r,
                                      std::span<value_t> z) const {
  for (std::size_t i = 0; i < r.size(); ++i) z[i] = inv_diag_[i] * r[i];
}

} // namespace bro::solver
