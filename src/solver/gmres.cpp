#include "solver/gmres.h"

#include <cmath>
#include <vector>

#include "solver/blas1.h"
#include "util/error.h"

namespace bro::solver {

namespace {

void apply_givens(double& dx, double& dy, double c, double s) {
  const double t = c * dx + s * dy;
  dy = -s * dx + c * dy;
  dx = t;
}

} // namespace

SolveResult gmres(const Operator& a, std::span<const value_t> b,
                  std::span<value_t> x, const SolveOptions& opts,
                  const Preconditioner& precond) {
  const std::size_t n = b.size();
  BRO_CHECK(x.size() == n);
  const int m = std::max(1, opts.restart);

  const double bnorm = norm2(b);
  const double stop = opts.tolerance * (bnorm > 0 ? bnorm : 1.0);

  SolveResult res;
  std::vector<std::vector<value_t>> v(
      static_cast<std::size_t>(m) + 1, std::vector<value_t>(n));
  // Hessenberg matrix in column-major (h[j] holds column j, length j+2).
  std::vector<std::vector<double>> h(static_cast<std::size_t>(m));
  std::vector<double> cs(static_cast<std::size_t>(m)),
      sn(static_cast<std::size_t>(m)), g(static_cast<std::size_t>(m) + 1);
  std::vector<value_t> r(n), w(n), z(n);

  int total_iters = 0;
  while (total_iters < opts.max_iterations) {
    // r = M^{-1} (b - A x)
    a(x, r);
    for (std::size_t i = 0; i < n; ++i) r[i] = b[i] - r[i];
    precond(r, z);
    double beta = norm2(z);
    res.residual_norm = norm2(r) / (bnorm > 0 ? bnorm : 1.0);
    if (norm2(r) <= stop) {
      res.converged = true;
      return res;
    }
    if (beta == 0.0) break;

    for (std::size_t i = 0; i < n; ++i) v[0][i] = z[i] / beta;
    std::fill(g.begin(), g.end(), 0.0);
    g[0] = beta;

    int k = 0; // inner iterations completed this cycle
    for (int j = 0; j < m && total_iters < opts.max_iterations; ++j) {
      a(v[static_cast<std::size_t>(j)], w);
      precond(w, z);

      // Modified Gram-Schmidt.
      h[static_cast<std::size_t>(j)].assign(static_cast<std::size_t>(j) + 2, 0.0);
      for (int i = 0; i <= j; ++i) {
        const double hij = dot(z, v[static_cast<std::size_t>(i)]);
        h[static_cast<std::size_t>(j)][static_cast<std::size_t>(i)] = hij;
        axpy(-hij, v[static_cast<std::size_t>(i)], z);
      }
      const double hlast = norm2(z);
      h[static_cast<std::size_t>(j)][static_cast<std::size_t>(j) + 1] = hlast;
      if (hlast != 0.0)
        for (std::size_t i = 0; i < n; ++i)
          v[static_cast<std::size_t>(j) + 1][i] = z[i] / hlast;

      // Apply previous Givens rotations, then create the new one.
      for (int i = 0; i < j; ++i)
        apply_givens(h[static_cast<std::size_t>(j)][static_cast<std::size_t>(i)],
                     h[static_cast<std::size_t>(j)][static_cast<std::size_t>(i) + 1],
                     cs[static_cast<std::size_t>(i)], sn[static_cast<std::size_t>(i)]);
      const double hk = h[static_cast<std::size_t>(j)][static_cast<std::size_t>(j)];
      const double hk1 = h[static_cast<std::size_t>(j)][static_cast<std::size_t>(j) + 1];
      const double denom = std::hypot(hk, hk1);
      if (denom == 0.0) {
        cs[static_cast<std::size_t>(j)] = 1.0;
        sn[static_cast<std::size_t>(j)] = 0.0;
      } else {
        cs[static_cast<std::size_t>(j)] = hk / denom;
        sn[static_cast<std::size_t>(j)] = hk1 / denom;
      }
      apply_givens(h[static_cast<std::size_t>(j)][static_cast<std::size_t>(j)],
                   h[static_cast<std::size_t>(j)][static_cast<std::size_t>(j) + 1],
                   cs[static_cast<std::size_t>(j)], sn[static_cast<std::size_t>(j)]);
      apply_givens(g[static_cast<std::size_t>(j)], g[static_cast<std::size_t>(j) + 1],
                   cs[static_cast<std::size_t>(j)], sn[static_cast<std::size_t>(j)]);

      ++total_iters;
      ++k;
      res.iterations = total_iters;
      if (std::abs(g[static_cast<std::size_t>(j) + 1]) <= stop) break;
      if (hlast == 0.0) break; // lucky breakdown: exact solution in span
    }

    // Back-substitute y from the triangularized Hessenberg system and
    // update x += V_k * y.
    std::vector<double> y(static_cast<std::size_t>(k), 0.0);
    for (int i = k - 1; i >= 0; --i) {
      double sum = g[static_cast<std::size_t>(i)];
      for (int jj = i + 1; jj < k; ++jj)
        sum -= h[static_cast<std::size_t>(jj)][static_cast<std::size_t>(i)] *
               y[static_cast<std::size_t>(jj)];
      const double hii =
          h[static_cast<std::size_t>(i)][static_cast<std::size_t>(i)];
      y[static_cast<std::size_t>(i)] = hii != 0.0 ? sum / hii : 0.0;
    }
    for (int i = 0; i < k; ++i)
      axpy(y[static_cast<std::size_t>(i)], v[static_cast<std::size_t>(i)], x);

    // Convergence check on the true residual.
    a(x, r);
    for (std::size_t i = 0; i < n; ++i) r[i] = b[i] - r[i];
    res.residual_norm = norm2(r) / (bnorm > 0 ? bnorm : 1.0);
    if (norm2(r) <= stop) {
      res.converged = true;
      return res;
    }
  }
  return res;
}

} // namespace bro::solver
