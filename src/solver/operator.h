// Linear-operator abstraction: the iterative solvers only ever apply
// y = A*x, so any SpMV implementation — CSR reference, BRO-ELL, the Matrix
// facade, or a matrix-free functor — plugs in. This is the paper's framing:
// SpMV is the kernel inside CG/GMRES (§1).
#pragma once

#include <algorithm>
#include <functional>
#include <span>

#include "util/types.h"

namespace bro::solver {

/// Applies y = A * x. x.size() == cols, y.size() == rows.
using Operator =
    std::function<void(std::span<const value_t>, std::span<value_t>)>;

/// Optional preconditioner application z = M^{-1} * r.
using Preconditioner =
    std::function<void(std::span<const value_t>, std::span<value_t>)>;

struct SolveOptions {
  int max_iterations = 1000;
  double tolerance = 1e-10; // relative residual ||r|| / ||b||
  int restart = 30;         // GMRES(m) restart length
};

struct SolveResult {
  bool converged = false;
  int iterations = 0;
  double residual_norm = 0; // final relative residual
};

/// Identity preconditioner helper.
inline Preconditioner identity_preconditioner() {
  return [](std::span<const value_t> r, std::span<value_t> z) {
    std::copy(r.begin(), r.end(), z.begin());
  };
}

} // namespace bro::solver
