// BiCGSTAB (van der Vorst) for general nonsymmetric systems.
#pragma once

#include "solver/operator.h"

namespace bro::solver {

/// Solve A*x = b for general (nonsymmetric) A. x holds the initial guess on
/// entry and the solution on exit.
SolveResult bicgstab(const Operator& a, std::span<const value_t> b,
                     std::span<value_t> x, const SolveOptions& opts = {},
                     const Preconditioner& precond = identity_preconditioner());

} // namespace bro::solver
