#include "solver/bicgstab.h"

#include <cmath>
#include <vector>

#include "solver/blas1.h"
#include "util/error.h"

namespace bro::solver {

SolveResult bicgstab(const Operator& a, std::span<const value_t> b,
                     std::span<value_t> x, const SolveOptions& opts,
                     const Preconditioner& precond) {
  const std::size_t n = b.size();
  BRO_CHECK(x.size() == n);

  std::vector<value_t> r(n), r0(n), p(n), v(n), s(n), t(n), ph(n), sh(n);

  a(x, r);
  for (std::size_t i = 0; i < n; ++i) r[i] = b[i] - r[i];
  r0.assign(r.begin(), r.end());

  const double bnorm = norm2(b);
  const double stop = opts.tolerance * (bnorm > 0 ? bnorm : 1.0);

  SolveResult res;
  res.residual_norm = norm2(r) / (bnorm > 0 ? bnorm : 1.0);
  if (norm2(r) <= stop) {
    res.converged = true;
    return res;
  }

  double rho = 1, alpha = 1, omega = 1;
  std::fill(p.begin(), p.end(), value_t{0});
  std::fill(v.begin(), v.end(), value_t{0});

  for (int it = 0; it < opts.max_iterations; ++it) {
    const double rho_new = dot(r0, r);
    if (rho_new == 0.0) break; // breakdown
    if (it == 0) {
      p.assign(r.begin(), r.end());
    } else {
      const double beta = (rho_new / rho) * (alpha / omega);
      for (std::size_t i = 0; i < n; ++i)
        p[i] = r[i] + beta * (p[i] - omega * v[i]);
    }
    rho = rho_new;

    precond(p, ph);
    a(ph, v);
    const double r0v = dot(r0, v);
    if (r0v == 0.0) break;
    alpha = rho / r0v;
    for (std::size_t i = 0; i < n; ++i) s[i] = r[i] - alpha * v[i];
    res.iterations = it + 1;

    if (norm2(s) <= stop) {
      axpy(alpha, ph, x);
      res.residual_norm = norm2(s) / (bnorm > 0 ? bnorm : 1.0);
      res.converged = true;
      return res;
    }

    precond(s, sh);
    a(sh, t);
    const double tt = dot(t, t);
    if (tt == 0.0) break;
    omega = dot(t, s) / tt;
    for (std::size_t i = 0; i < n; ++i) {
      x[i] += alpha * ph[i] + omega * sh[i];
      r[i] = s[i] - omega * t[i];
    }

    const double rnorm = norm2(r);
    res.residual_norm = rnorm / (bnorm > 0 ? bnorm : 1.0);
    if (rnorm <= stop) {
      res.converged = true;
      return res;
    }
    if (omega == 0.0) break;
  }
  return res;
}

} // namespace bro::solver
