// Preconditioned Conjugate Gradient for symmetric positive-definite systems
// (Saad, "Iterative Methods for Sparse Linear Systems", Alg. 9.1) — the
// iterative consumer the paper's introduction motivates SpMV with.
#pragma once

#include <vector>

#include "solver/operator.h"
#include "sparse/csr.h"

namespace bro::solver {

/// Solve A*x = b. x holds the initial guess on entry and the solution on
/// exit. `precond` defaults to the identity.
SolveResult cg(const Operator& a, std::span<const value_t> b,
               std::span<value_t> x, const SolveOptions& opts = {},
               const Preconditioner& precond = identity_preconditioner());

/// Jacobi (diagonal) preconditioner built from a CSR matrix.
class JacobiPreconditioner {
 public:
  explicit JacobiPreconditioner(const sparse::Csr& csr);

  void operator()(std::span<const value_t> r, std::span<value_t> z) const;

  Preconditioner as_preconditioner() const {
    return [this](std::span<const value_t> r, std::span<value_t> z) {
      (*this)(r, z);
    };
  }

 private:
  std::vector<value_t> inv_diag_;
};

} // namespace bro::solver
