// Tiny dense vector helpers shared by the Krylov solvers.
#pragma once

#include <cmath>
#include <span>

#include "util/types.h"

namespace bro::solver {

inline double dot(std::span<const value_t> a, std::span<const value_t> b) {
  double s = 0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

inline double norm2(std::span<const value_t> a) { return std::sqrt(dot(a, a)); }

/// y = a*x + y
inline void axpy(double a, std::span<const value_t> x, std::span<value_t> y) {
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += a * x[i];
}

/// y = x + b*y
inline void xpby(std::span<const value_t> x, double b, std::span<value_t> y) {
  for (std::size_t i = 0; i < x.size(); ++i) y[i] = x[i] + b * y[i];
}

inline void scale(double a, std::span<value_t> x) {
  for (auto& v : x) v *= a;
}

} // namespace bro::solver
