// Restarted GMRES(m) (Saad & Schultz) for general systems — the second
// iterative method named in the paper's introduction.
#pragma once

#include "solver/operator.h"

namespace bro::solver {

/// Solve A*x = b with restarted GMRES. opts.restart is the Krylov dimension
/// m; opts.max_iterations counts total inner iterations across restarts.
SolveResult gmres(const Operator& a, std::span<const value_t> b,
                  std::span<value_t> x, const SolveOptions& opts = {},
                  const Preconditioner& precond = identity_preconditioner());

} // namespace bro::solver
