#include "gpusim/sim.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace bro::sim {

namespace {

std::uint64_t resident_blocks_for(const DeviceSpec& dev,
                                  const LaunchConfig& launch) {
  const int warps_per_block =
      (launch.threads_per_block + dev.warp_size - 1) / dev.warp_size;
  const int blocks_per_sm =
      std::max(1, std::min(dev.max_blocks_per_sm,
                           dev.max_warps_per_sm / std::max(1, warps_per_block)));
  return std::min<std::uint64_t>(
      launch.blocks,
      static_cast<std::uint64_t>(dev.sm_count) *
          static_cast<std::uint64_t>(blocks_per_sm));
}

} // namespace

SimContext::SimContext(DeviceSpec device, LaunchConfig launch)
    : device_(std::move(device)),
      launch_(launch),
      // Caches are time-shared by every resident block; since blocks are
      // simulated one after another, each sees its proportional share of
      // the private view, while the shared view (x vector) keeps half the
      // device capacity (see the field comment in sim.h).
      l2_private_(device_.l2_bytes /
                      std::max<std::uint64_t>(
                          1, resident_blocks_for(device_, launch)),
                  device_.cacheline_bytes),
      l2_shared_(device_.l2_bytes / 2, device_.cacheline_bytes),
      sm_int_ops_(static_cast<std::size_t>(device_.sm_count), 0.0),
      sm_fma_ops_(static_cast<std::size_t>(device_.sm_count), 0.0),
      sm_ls_issues_(static_cast<std::size_t>(device_.sm_count), 0.0),
      sm_shfl_ops_(static_cast<std::size_t>(device_.sm_count), 0.0) {
  BRO_CHECK(launch_.threads_per_block > 0 && launch_.blocks > 0);
  const std::uint64_t resident = resident_blocks();
  const std::uint64_t per_sm_blocks = std::max<std::uint64_t>(
      1, resident / static_cast<std::uint64_t>(device_.sm_count));
  // The texture cache is shared by the SM's resident blocks, but unlike the
  // streamed matrix data their x-vector working sets overlap heavily
  // (neighbouring blocks read neighbouring x ranges), so the effective
  // per-block share shrinks like sqrt(blocks), not linearly.
  const auto tex_share = static_cast<std::size_t>(
      static_cast<double>(device_.tex_cache_bytes_per_sm) /
      std::sqrt(static_cast<double>(per_sm_blocks)));
  tex_.reserve(static_cast<std::size_t>(device_.sm_count));
  for (int s = 0; s < device_.sm_count; ++s)
    tex_.emplace_back(tex_share, device_.tex_line_bytes);
  scratch_.reserve(64);
}

std::uint64_t SimContext::resident_blocks() const {
  return resident_blocks_for(device_, launch_);
}

VirtualArray SimContext::alloc(std::uint64_t elements, int element_bytes) {
  const std::uint64_t base = next_base_;
  std::uint64_t bytes = elements * static_cast<std::uint64_t>(element_bytes);
  // Round regions to 1 MiB so arrays never share cache lines and tags stay
  // visually distinct when debugging.
  bytes = (bytes + (1ull << 20)) & ~((1ull << 20) - 1);
  next_base_ += bytes;
  return VirtualArray(base, element_bytes);
}

BlockContext SimContext::begin_block(std::uint64_t block_id) {
  // Round-robin block-to-SM assignment, matching the GPU's greedy scheduler
  // under a uniform workload.
  const int sm = static_cast<int>(block_id % static_cast<std::uint64_t>(
                                                 device_.sm_count));
  return BlockContext(this, sm);
}

void SimContext::coalesce(std::span<const std::uint64_t> addrs,
                          int bytes_per_lane, int line_bytes) {
  scratch_.clear();
  for (const std::uint64_t a : addrs) {
    if (a == kInactive) continue;
    // An element may straddle a line boundary (sub-word packed streams never
    // do, but 8-byte values at odd offsets could).
    const std::uint64_t first = a / static_cast<std::uint64_t>(line_bytes);
    const std::uint64_t last =
        (a + static_cast<std::uint64_t>(bytes_per_lane) - 1) /
        static_cast<std::uint64_t>(line_bytes);
    for (std::uint64_t t = first; t <= last; ++t) scratch_.push_back(t);
  }
  std::sort(scratch_.begin(), scratch_.end());
  scratch_.erase(std::unique(scratch_.begin(), scratch_.end()),
                 scratch_.end());
}

void SimContext::access_global(int sm, std::span<const std::uint64_t> addrs,
                               int bytes_per_lane, bool write, bool atomic) {
  coalesce(addrs, bytes_per_lane, device_.cacheline_bytes);
  if (scratch_.empty()) return;
  ++stats_.warp_loads;
  stats_.mem_transactions += scratch_.size();
  // Each line segment costs one issue slot (replays for uncoalesced access);
  // atomics serialize harder: charge an extra issue per segment.
  sm_ls_issues_[static_cast<std::size_t>(sm)] +=
      static_cast<double>(scratch_.size()) * (atomic ? 2.0 : 1.0);

  for (const std::uint64_t tag : scratch_) {
    const bool hit = l2_private_.access_tag(tag);
    if (hit) {
      ++stats_.l2_hits;
    } else {
      ++stats_.l2_misses;
      const auto line = static_cast<std::uint64_t>(device_.cacheline_bytes);
      if (write) stats_.dram_write_bytes += line;
      else stats_.dram_read_bytes += line;
    }
  }
  // Write-allocate simplification: a store miss is charged as write traffic
  // only (read-for-ownership ignored; GPU L2 is write-back with byte masks).
  (void)write;
}

void SimContext::access_texture(int sm, std::span<const std::uint64_t> addrs,
                                int bytes_per_lane) {
  // Texture path: probe the per-SM texture cache at tex_line granularity;
  // misses go to L2 (and then DRAM).
  coalesce(addrs, bytes_per_lane, device_.tex_line_bytes);
  if (scratch_.empty()) return;
  ++stats_.warp_loads;
  sm_ls_issues_[static_cast<std::size_t>(sm)] +=
      static_cast<double>(scratch_.size());

  LruCache& tex = tex_[static_cast<std::size_t>(sm)];
  const int lines_per_l2 = device_.cacheline_bytes / device_.tex_line_bytes;
  for (const std::uint64_t tag : scratch_) {
    if (tex.access_tag(tag)) {
      ++stats_.tex_hits;
      continue;
    }
    ++stats_.tex_misses;
    ++stats_.mem_transactions;
    // Probe the shared L2 view with the containing 128 B line.
    const std::uint64_t l2_tag =
        tag / static_cast<std::uint64_t>(lines_per_l2);
    if (l2_shared_.access_tag(l2_tag)) {
      ++stats_.l2_hits;
    } else {
      ++stats_.l2_misses;
      stats_.dram_read_bytes +=
          static_cast<std::uint64_t>(device_.cacheline_bytes);
    }
  }
}

void BlockContext::load_global(std::span<const std::uint64_t> addrs,
                               int bytes_per_lane) {
  ctx_->access_global(sm_, addrs, bytes_per_lane, /*write=*/false,
                      /*atomic=*/false);
}

void BlockContext::store_global(std::span<const std::uint64_t> addrs,
                                int bytes_per_lane) {
  ctx_->access_global(sm_, addrs, bytes_per_lane, /*write=*/true,
                      /*atomic=*/false);
}

void BlockContext::atomic_add_global(std::span<const std::uint64_t> addrs,
                                     int bytes_per_lane) {
  ctx_->access_global(sm_, addrs, bytes_per_lane, /*write=*/true,
                      /*atomic=*/true);
}

void BlockContext::load_texture(std::span<const std::uint64_t> addrs,
                                int bytes_per_lane) {
  ctx_->access_texture(sm_, addrs, bytes_per_lane);
}

void BlockContext::add_dp_fma(std::uint64_t thread_ops) {
  ctx_->sm_fma_ops_[static_cast<std::size_t>(sm_)] +=
      static_cast<double>(thread_ops);
  ctx_->stats_.dp_flops += 2.0 * static_cast<double>(thread_ops);
}

void BlockContext::add_int_ops(std::uint64_t thread_ops) {
  ctx_->sm_int_ops_[static_cast<std::size_t>(sm_)] +=
      static_cast<double>(thread_ops);
  ctx_->stats_.int_ops += static_cast<double>(thread_ops);
}

void BlockContext::add_shfl_ops(std::uint64_t thread_ops) {
  ctx_->sm_shfl_ops_[static_cast<std::size_t>(sm_)] +=
      static_cast<double>(thread_ops);
  ctx_->stats_.shfl_ops += static_cast<double>(thread_ops);
}

double SimContext::littles_law_bw_gbps() const {
  const double warps_per_block =
      std::ceil(static_cast<double>(launch_.threads_per_block) /
                device_.warp_size);
  const double total_warps =
      static_cast<double>(launch_.blocks) * warps_per_block;
  const double resident_warps = std::min(
      total_warps,
      static_cast<double>(device_.sm_count) * device_.max_warps_per_sm);
  const double latency_s =
      device_.mem_latency_cycles / (device_.clock_ghz * 1e9);
  const double bytes_in_flight =
      resident_warps * device_.mlp_per_warp * device_.cacheline_bytes;
  return bytes_in_flight / latency_s / 1e9;
}

TimeEstimate SimContext::estimate(double useful_flops) const {
  TimeEstimate t;

  const double eff_bw =
      std::min(device_.measured_bw_gbps, littles_law_bw_gbps());
  t.effective_bw_gbps = eff_bw;
  t.mem_seconds = static_cast<double>(stats_.dram_bytes()) / (eff_bw * 1e9);

  // Per-SM issue cycles; the slowest SM gates the kernel.
  double worst_cycles = 0;
  for (int s = 0; s < device_.sm_count; ++s) {
    const auto i = static_cast<std::size_t>(s);
    const double cycles =
        sm_fma_ops_[i] / device_.dp_fma_per_cycle_sm() +
        sm_int_ops_[i] / device_.int_ops_per_cycle_sm +
        sm_ls_issues_[i] / device_.ls_per_cycle_sm +
        sm_shfl_ops_[i] / device_.shfl_ops_per_cycle_sm;
    worst_cycles = std::max(worst_cycles, cycles);
  }
  t.compute_seconds = worst_cycles / (device_.clock_ghz * 1e9);

  t.memory_bound = t.mem_seconds >= t.compute_seconds;
  // Imperfect overlap: the smaller roofline term is partially exposed (the
  // decode chain depends on loaded symbols; FMA depends on decoded indices).
  t.seconds = std::max(t.mem_seconds, t.compute_seconds) +
              device_.overlap_alpha * std::min(t.mem_seconds, t.compute_seconds) +
              device_.kernel_launch_us * 1e-6;
  t.gflops = useful_flops / t.seconds / 1e9;
  const double achieved_bw =
      static_cast<double>(stats_.dram_bytes()) / t.seconds / 1e9;
  t.bw_utilization = achieved_bw / device_.peak_bw_gbps;
  t.eai = stats_.dram_bytes() > 0
              ? useful_flops / static_cast<double>(stats_.dram_bytes())
              : 0.0;
  return t;
}

} // namespace bro::sim
