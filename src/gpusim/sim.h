// SimContext: the trace-driven analytic GPU performance model.
//
// A "simulator kernel" is ordinary C++ that walks the launch grid
// block-by-block and warp-by-warp, computing the real numerical result while
// reporting its memory accesses and instruction mix to the SimContext:
//
//   SimContext sim(tesla_k20(), {num_blocks, 256});
//   for (Block b = sim.begin_block(0); ...)  // kernel loops blocks itself
//     ... b.load_global(addrs); b.add_fma(32); ...
//   TimeEstimate t = sim.estimate(flops_useful);
//
// Memory model: a warp-wide access of 32 addresses is coalesced into unique
// 128 B lines; each line probes the shared L2, and on miss counts DRAM
// traffic. Texture loads probe a per-SM LRU first (the paper binds the x
// vector to the texture cache). Blocks are assigned to SMs round-robin and
// instruction cycles are accumulated per SM; the runtime estimate is
//
//   T = max(T_mem, T_compute) + launch overhead, where
//   T_mem     = dram_bytes / min(measured BW, Little's-law BW given the
//               resident warp count),
//   T_compute = max over SMs of issue cycles / clock.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "gpusim/device.h"
#include "gpusim/lru_cache.h"

namespace bro::sim {

/// Address placeholder for inactive lanes in a warp access.
inline constexpr std::uint64_t kInactive = ~0ull;

/// A named region of the simulated device address space. Regions are spaced
/// far apart so distinct arrays never share a cache line.
class VirtualArray {
 public:
  VirtualArray() = default;
  VirtualArray(std::uint64_t base, int element_bytes)
      : base_(base), elem_(element_bytes) {}

  std::uint64_t addr(std::uint64_t index) const {
    return base_ + index * static_cast<std::uint64_t>(elem_);
  }
  int element_bytes() const { return elem_; }

 private:
  std::uint64_t base_ = 0;
  int elem_ = 1;
};

struct LaunchConfig {
  std::uint64_t blocks = 1;
  int threads_per_block = 256;
};

/// Aggregate counters for one kernel launch.
struct KernelStats {
  std::uint64_t dram_read_bytes = 0;
  std::uint64_t dram_write_bytes = 0;
  std::uint64_t l2_hits = 0;
  std::uint64_t l2_misses = 0;
  std::uint64_t tex_hits = 0;
  std::uint64_t tex_misses = 0;
  std::uint64_t warp_loads = 0;        // warp-level load instructions
  std::uint64_t mem_transactions = 0;  // coalesced line segments issued
  double dp_flops = 0;                 // executed FP work (incl. padding)
  double int_ops = 0;
  double shfl_ops = 0;

  std::uint64_t dram_bytes() const { return dram_read_bytes + dram_write_bytes; }
};

struct TimeEstimate {
  double seconds = 0;
  double mem_seconds = 0;     // memory roofline term (before launch overhead)
  double compute_seconds = 0; // issue roofline term
  double effective_bw_gbps = 0; // achieved DRAM bandwidth
  double bw_utilization = 0;    // achieved / peak pin bandwidth
  double gflops = 0;            // useful flops / seconds
  double eai = 0;               // effective arithmetic intensity: F / B
  bool memory_bound = true;
};

class SimContext;

/// Handle the kernel uses to report one thread block's activity. The block
/// is bound to an SM (round-robin by block id) and owns that SM's texture
/// cache while it runs.
class BlockContext {
 public:
  /// Warp-wide global load: 32 (or fewer) addresses, element size taken from
  /// how the kernel formed the addresses. Inactive lanes pass kInactive.
  void load_global(std::span<const std::uint64_t> addrs, int bytes_per_lane);

  /// Warp-wide load through the texture path (x-vector reads).
  void load_texture(std::span<const std::uint64_t> addrs, int bytes_per_lane);

  /// Warp-wide global store.
  void store_global(std::span<const std::uint64_t> addrs, int bytes_per_lane);

  /// Warp-wide atomic add to global memory (COO carry-out path).
  void atomic_add_global(std::span<const std::uint64_t> addrs,
                         int bytes_per_lane);

  // Instruction accounting, in thread-operations (a full warp doing one FMA
  // reports 32).
  void add_dp_fma(std::uint64_t thread_ops);
  void add_int_ops(std::uint64_t thread_ops);
  void add_shfl_ops(std::uint64_t thread_ops);

  int sm() const { return sm_; }

 private:
  friend class SimContext;
  BlockContext(SimContext* ctx, int sm) : ctx_(ctx), sm_(sm) {}
  SimContext* ctx_;
  int sm_;
};

class SimContext {
 public:
  SimContext(DeviceSpec device, LaunchConfig launch);

  const DeviceSpec& device() const { return device_; }
  const LaunchConfig& launch() const { return launch_; }

  /// Allocate a fresh virtual array region (never overlaps earlier ones).
  VirtualArray alloc(std::uint64_t elements, int element_bytes);

  /// Begin simulating block `block_id`; returns its context handle.
  BlockContext begin_block(std::uint64_t block_id);

  const KernelStats& stats() const { return stats_; }

  /// Runtime estimate. `useful_flops` is the numerator of the reported
  /// GFlop/s (the paper uses 2*nnz, excluding padding work).
  TimeEstimate estimate(double useful_flops) const;

  /// Residency-limited bandwidth ceiling (GB/s) for the current launch.
  double littles_law_bw_gbps() const;

  /// Number of blocks resident on the whole device at once for this launch
  /// (bounded by per-SM block and warp slots). The simulator walks blocks
  /// sequentially, so per-block cache capacity is the hardware capacity
  /// divided by this concurrency — otherwise a single simulated warp would
  /// enjoy the whole L2 and uncoalesced access patterns would look free.
  std::uint64_t resident_blocks() const;

 private:
  friend class BlockContext;

  /// Coalesce a warp access into unique line tags (writes into scratch_).
  void coalesce(std::span<const std::uint64_t> addrs, int bytes_per_lane,
                int line_bytes);

  void access_global(int sm, std::span<const std::uint64_t> addrs,
                     int bytes_per_lane, bool write, bool atomic);
  void access_texture(int sm, std::span<const std::uint64_t> addrs,
                      int bytes_per_lane);

  DeviceSpec device_;
  LaunchConfig launch_;
  // Two L2 views: private (streamed matrix data — each resident block only
  // gets its capacity share, so row-walk reuse across a block's iterations
  // is bounded realistically) and shared (the x vector — every resident
  // block reads the same array, so its lines stay hot; half the L2 models
  // the steady-state competition with streaming fills).
  LruCache l2_private_;
  LruCache l2_shared_;
  std::vector<LruCache> tex_; // one per SM
  std::vector<double> sm_int_ops_;
  std::vector<double> sm_fma_ops_;
  std::vector<double> sm_ls_issues_;
  std::vector<double> sm_shfl_ops_;
  KernelStats stats_;
  std::uint64_t next_base_ = 1ull << 20;
  std::vector<std::uint64_t> scratch_;
};

} // namespace bro::sim
