// GPU device models (Table 1 of the paper) and the analytic performance
// constants the simulator uses.
//
// The simulator is a *trace-driven analytic* model, not cycle-accurate: SpMV
// kernels execute functionally warp-by-warp while the simulator counts DRAM
// transactions (128 B coalescing), cache behaviour and per-SM instruction
// issue; the runtime estimate is a roofline combination of those counts with
// an occupancy-limited bandwidth term (Little's law). This captures the
// first-order effects the paper reports: memory-boundedness, decompression
// overhead break-evens, and underutilization when a matrix has too few rows
// to fill a wide GPU.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace bro::sim {

struct DeviceSpec {
  std::string name;

  // Table 1 headline numbers.
  double compute_capability = 2.0;
  int sm_count = 14;
  int cores_per_sm = 32;
  double clock_ghz = 1.15;
  double peak_bw_gbps = 144.0;     // pin bandwidth (GB/s)
  double measured_bw_gbps = 114.0; // achievable (paper §4.1)
  double dp_gflops = 515.0;        // peak double-precision rate

  // Microarchitectural model constants.
  int warp_size = 32;
  int max_warps_per_sm = 48;
  int max_blocks_per_sm = 8;
  std::size_t l2_bytes = 768 * 1024;
  std::size_t tex_cache_bytes_per_sm = 12 * 1024;
  int cacheline_bytes = 128; // global-memory coalescing granularity
  int tex_line_bytes = 32;   // texture fetch granularity

  // Issue throughputs, operations per cycle per SM. The integer rate is the
  // effective throughput of the shift/mask/add decode mix: full ALU rate on
  // Fermi (32/SM) and GK104 (160/SMX), but shift-limited on GK110 (64/SMX) —
  // this is what makes the K20 need the largest space savings before BRO-ELL
  // beats ELLPACK (paper Fig. 3: 17% / 9% / 23% break-evens).
  double int_ops_per_cycle_sm = 32;  // integer ALU (decode loop cost)
  // Load/store throughput in *memory transactions* (cache-line segments)
  // per cycle per SM. Uncoalesced warp accesses replay once per segment,
  // so this is what makes scattered access issue-bound, not just
  // bandwidth-bound.
  double ls_per_cycle_sm = 1.0;
  double shfl_ops_per_cycle_sm = 16; // shuffle / shared-memory exchange

  // Fraction of the smaller roofline term exposed rather than overlapped:
  // T = max(T_mem, T_compute) + overlap_alpha * min(...). Real kernels never
  // overlap perfectly; the decode chain is data-dependent on loaded symbols.
  double overlap_alpha = 0.35;

  // Memory-level parallelism model (Little's law bandwidth ceiling).
  double mem_latency_cycles = 600;
  double mlp_per_warp = 4.0; // outstanding cache-line misses per warp

  double kernel_launch_us = 5.0; // fixed per-kernel-invocation overhead

  /// Double-precision FMA issue rate per cycle per SM (2 flops per FMA).
  double dp_fma_per_cycle_sm() const {
    return dp_gflops / 2.0 / clock_ghz / sm_count;
  }
};

/// Tesla C2070 (Fermi), Table 1 column 1.
DeviceSpec tesla_c2070();

/// GeForce GTX680 (Kepler GK104), Table 1 column 2.
DeviceSpec gtx680();

/// Tesla K20 (Kepler GK110), Table 1 column 3.
DeviceSpec tesla_k20();

/// The three devices in Table 1 order.
const std::vector<DeviceSpec>& all_devices();

} // namespace bro::sim
