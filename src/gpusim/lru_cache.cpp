#include "gpusim/lru_cache.h"

namespace bro::sim {

LruCache::LruCache(std::size_t capacity_bytes, int line_bytes)
    : capacity_lines_(line_bytes > 0 ? capacity_bytes / line_bytes : 0),
      line_bytes_(line_bytes > 0 ? line_bytes : 1) {
  map_.reserve(capacity_lines_ * 2);
  nodes_.reserve(capacity_lines_);
}

bool LruCache::access(std::uint64_t addr) { return access_tag(tag_of(addr)); }

bool LruCache::access_tag(std::uint64_t tag) {
  if (capacity_lines_ == 0) {
    ++misses_;
    return false;
  }
  const auto it = map_.find(tag);
  if (it != map_.end()) {
    ++hits_;
    const std::int32_t i = it->second;
    if (i != head_) {
      unlink(i);
      push_front(i);
    }
    return true;
  }

  ++misses_;
  std::int32_t i;
  if (nodes_.size() < capacity_lines_) {
    i = static_cast<std::int32_t>(nodes_.size());
    nodes_.push_back({tag, -1, -1});
  } else {
    i = tail_; // evict LRU
    map_.erase(nodes_[i].tag);
    unlink(i);
    nodes_[i].tag = tag;
  }
  push_front(i);
  map_.emplace(tag, i);
  return false;
}

void LruCache::clear() {
  map_.clear();
  nodes_.clear();
  head_ = tail_ = -1;
  hits_ = misses_ = 0;
}

void LruCache::unlink(std::int32_t i) {
  Node& n = nodes_[i];
  if (n.prev >= 0) nodes_[n.prev].next = n.next;
  else head_ = n.next;
  if (n.next >= 0) nodes_[n.next].prev = n.prev;
  else tail_ = n.prev;
  n.prev = n.next = -1;
}

void LruCache::push_front(std::int32_t i) {
  Node& n = nodes_[i];
  n.prev = -1;
  n.next = head_;
  if (head_ >= 0) nodes_[head_].prev = i;
  head_ = i;
  if (tail_ < 0) tail_ = i;
}

} // namespace bro::sim
