// Fully-associative LRU cache over fixed-size lines, used to model both the
// shared L2 and the per-SM texture / read-only caches.
//
// Implementation: hash map from line tag to an index in an intrusive doubly
// linked list kept in a flat vector (no per-node allocation on the hot path
// once warmed up).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace bro::sim {

class LruCache {
 public:
  /// capacity_bytes / line_bytes lines; capacity 0 disables the cache
  /// (every access misses).
  LruCache(std::size_t capacity_bytes, int line_bytes);

  int line_bytes() const { return line_bytes_; }
  std::size_t capacity_lines() const { return capacity_lines_; }

  /// Tag for an address (line-granular).
  std::uint64_t tag_of(std::uint64_t addr) const {
    return addr / static_cast<std::uint64_t>(line_bytes_);
  }

  /// Access the line containing `addr`; returns true on hit. On miss the
  /// line is installed, evicting the least recently used line if full.
  bool access(std::uint64_t addr);

  /// Access by precomputed tag.
  bool access_tag(std::uint64_t tag);

  void clear();

  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }

 private:
  struct Node {
    std::uint64_t tag;
    std::int32_t prev;
    std::int32_t next;
  };

  void unlink(std::int32_t i);
  void push_front(std::int32_t i);

  std::size_t capacity_lines_;
  int line_bytes_;
  std::unordered_map<std::uint64_t, std::int32_t> map_;
  std::vector<Node> nodes_;
  std::int32_t head_ = -1;
  std::int32_t tail_ = -1;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

} // namespace bro::sim
