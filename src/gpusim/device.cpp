#include "gpusim/device.h"

namespace bro::sim {

DeviceSpec tesla_c2070() {
  DeviceSpec d;
  d.name = "Tesla C2070";
  d.compute_capability = 2.0;
  d.sm_count = 14;
  d.cores_per_sm = 32;
  d.clock_ghz = 1.15;
  d.peak_bw_gbps = 144.0;
  d.measured_bw_gbps = 114.0;
  d.dp_gflops = 515.0;
  d.max_warps_per_sm = 48;
  d.l2_bytes = 768 * 1024;
  d.tex_cache_bytes_per_sm = 12 * 1024;
  d.int_ops_per_cycle_sm = 32;
  d.ls_per_cycle_sm = 1.0; // L1/LSU: ~one 128 B line segment per cycle
  d.shfl_ops_per_cycle_sm = 16;
  d.mem_latency_cycles = 600;
  d.mlp_per_warp = 4.0;
  return d;
}

DeviceSpec gtx680() {
  DeviceSpec d;
  d.name = "GTX680";
  d.compute_capability = 3.0;
  d.sm_count = 8;
  d.cores_per_sm = 192;
  d.clock_ghz = 1.006;
  d.peak_bw_gbps = 192.3;
  d.measured_bw_gbps = 149.0;
  d.dp_gflops = 129.0;
  d.max_warps_per_sm = 64;
  d.max_blocks_per_sm = 16;
  d.l2_bytes = 512 * 1024;
  d.tex_cache_bytes_per_sm = 12 * 1024; // GK104 texture cache
  d.int_ops_per_cycle_sm = 144; // GK104 effective rate for the decode mix
  d.ls_per_cycle_sm = 2.0; // wider LSU datapath than Fermi
  d.shfl_ops_per_cycle_sm = 32;
  // Kepler: lower-latency cache hierarchy than Fermi (paper §4.2.3), but the
  // wider SMX needs more warps in flight per SM to cover it.
  d.mem_latency_cycles = 450;
  d.mlp_per_warp = 2.5;
  return d;
}

DeviceSpec tesla_k20() {
  DeviceSpec d;
  d.name = "Tesla K20";
  d.compute_capability = 3.5;
  d.sm_count = 13;
  d.cores_per_sm = 192;
  d.clock_ghz = 0.706;
  d.peak_bw_gbps = 208.0;
  d.measured_bw_gbps = 159.0;
  d.dp_gflops = 1170.0;
  d.max_warps_per_sm = 64;
  d.max_blocks_per_sm = 16;
  d.l2_bytes = 1280 * 1024;
  d.tex_cache_bytes_per_sm = 48 * 1024; // GK110 read-only data cache
  // GK110 issues the shift-heavy decode mix at roughly a third of GK104's
  // per-clock rate (32-bit shift units are quarter-rate on GK110).
  d.int_ops_per_cycle_sm = 52;
  d.ls_per_cycle_sm = 2.0;
  d.shfl_ops_per_cycle_sm = 32;
  d.mem_latency_cycles = 500;
  d.mlp_per_warp = 2.5;
  return d;
}

const std::vector<DeviceSpec>& all_devices() {
  static const std::vector<DeviceSpec> devices = {tesla_c2070(), gtx680(),
                                                  tesla_k20()};
  return devices;
}

} // namespace bro::sim
