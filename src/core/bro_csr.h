// BRO-CSR: bit-representation-optimized CSR (an extension beyond the paper,
// closing the gap to the CPU-side CSR compression work it cites — Willcock &
// Lumsdaine, Kourtis et al. — with a GPU-friendly decode).
//
// BRO-ELL needs ELLPACK's padded shape; matrices with wild row-length
// variance fall back to BRO-HYB's two kernels. BRO-CSR instead compresses
// the CSR column indices row-by-row with a single bit width per row
// (bits[r] = max Γ over the row's 1-based deltas) and decodes with a *warp
// per row*: the warp's 32 lanes extract 32 consecutive deltas in parallel
// from the row's bit stream (coalesced symbol loads, branch-free extraction)
// and reconstruct absolute columns with one inclusive warp scan. No padding
// is ever stored, so the format handles power-law matrices directly.
//
// Wire format: one packed bit stream per row, starting at a sym_len-aligned
// symbol boundary; row_sym_ptr[r] gives the row's first symbol index.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <vector>

#include "bits/bit_string.h"
#include "sparse/csr.h"

namespace bro::core {

struct SerializeAccess;

struct BroCsrOptions {
  int sym_len = 32;
};

class BroCsr {
 public:
  static BroCsr compress(const sparse::Csr& csr, BroCsrOptions opts = {});

  index_t rows() const { return rows_; }
  index_t cols() const { return cols_; }
  std::size_t nnz() const { return vals_.size(); }
  const BroCsrOptions& options() const { return opts_; }

  const std::vector<index_t>& row_ptr() const { return row_ptr_; }
  const std::vector<std::uint8_t>& bits_per_row() const { return bits_; }
  const std::vector<std::uint32_t>& row_sym_ptr() const { return sym_ptr_; }
  const std::vector<value_t>& vals() const { return vals_; }

  /// Symbol `i` of the global packed stream (right-aligned sym_len bits).
  std::uint64_t symbol(std::size_t i) const {
    return stream_.symbol(i, opts_.sym_len);
  }
  std::size_t total_symbols() const { return stream_.symbol_count(opts_.sym_len); }

  /// Raw bit extraction from the packed stream (simulator decode path).
  std::uint64_t decode_bits(std::size_t bit_pos, int nbits) const {
    return stream_.peek(bit_pos, nbits);
  }

  /// Decode one row's column indices (verification path).
  std::vector<index_t> decode_row(index_t r) const;

  /// Full decompression back to CSR.
  sparse::Csr decompress() const;

  /// y = A * x with on-the-fly decoding.
  void spmv(std::span<const value_t> x, std::span<value_t> y) const;

  /// Compressed bytes of the column-index data (stream + bits + sym_ptr).
  std::size_t compressed_index_bytes() const;

  /// Original CSR column-index bytes (nnz * 4).
  std::size_t original_index_bytes() const { return nnz() * sizeof(index_t); }

  friend struct SerializeAccess; // serialization (serialize.cpp)

 private:
  index_t rows_ = 0;
  index_t cols_ = 0;
  BroCsrOptions opts_;
  std::vector<index_t> row_ptr_;      // as in CSR (also gives row lengths)
  std::vector<std::uint8_t> bits_;    // per-row delta bit width
  std::vector<std::uint32_t> sym_ptr_; // per-row first symbol (rows+1)
  bits::BitString stream_;            // all rows' packed deltas
  std::vector<value_t> vals_;         // as in CSR
};

} // namespace bro::core
