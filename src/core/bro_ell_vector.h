// BRO-ELL-T: the "multiple threads per row" extension the paper lists as
// future work (§6). Each matrix row is split round-robin into T sub-rows
// (thread l of a row takes entries l, l+T, l+2T, ...); the sub-rows are
// compressed as an ordinary BRO-ELL of m*T rows, with a row's T sub-rows
// adjacent so the GPU kernel can reduce their partial sums with warp
// shuffles. Long-row matrices gain parallelism and shorter decode loops at
// the cost of somewhat larger deltas (stride-T column gaps).
#pragma once

#include "core/bro_ell.h"

namespace bro::core {

class BroEllVector {
 public:
  /// threads_per_row must be a power of two in [1, 32] (a warp fraction).
  static BroEllVector compress(const sparse::Ell& ell, int threads_per_row,
                               BroEllOptions opts = {});

  index_t rows() const { return rows_; }
  index_t cols() const { return inner_.cols(); }
  int threads_per_row() const { return threads_per_row_; }
  const BroEll& inner() const { return inner_; }

  /// y = A * x.
  void spmv(std::span<const value_t> x, std::span<value_t> y) const;

  std::size_t compressed_index_bytes() const {
    return inner_.compressed_index_bytes();
  }
  /// Original bytes of the *unexpanded* ELLPACK index array.
  std::size_t original_index_bytes() const { return original_index_bytes_; }

 private:
  index_t rows_ = 0;
  int threads_per_row_ = 1;
  std::size_t original_index_bytes_ = 0;
  BroEll inner_; // BRO-ELL over the m * T sub-row expansion
};

} // namespace bro::core
