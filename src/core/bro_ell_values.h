// BRO-ELL-VC: value compression, the second future-work item of the paper
// (§6), in the dictionary style of Kourtis et al. (CF'08).
//
// Many engineering matrices carry few distinct values (stencil coefficients,
// unit entries, material constants). Per BRO-ELL slice, the distinct values
// are collected into a dictionary; if there are at most `max_dict` of them,
// the slice's value array is replaced by Γ(|dict|-1)-bit codes packed and
// multiplexed exactly like the index stream (so the GPU decode is the same
// branch-free loop). Slices whose values don't repeat keep the raw array —
// the format never loses, it just stops winning.
#pragma once

#include <optional>

#include "core/bro_ell.h"

namespace bro::core {

struct BroEllValuesOptions {
  BroEllOptions ell;
  std::size_t max_dict = 4096; // dictionary entries worth indexing
};

/// Per-slice value encoding: either a dictionary + packed codes, or raw.
struct ValueSlice {
  std::vector<value_t> dict;     // empty => raw (values read from BroEll)
  int code_bits = 0;             // Γ(|dict|-1), >= 1 when dict in use
  bits::MuxedStream codes;       // height x num_col codes
};

class BroEllValues {
 public:
  static BroEllValues compress(const sparse::Ell& ell,
                               BroEllValuesOptions opts = {});

  const BroEll& index_part() const { return index_; }
  const std::vector<ValueSlice>& value_slices() const { return values_; }

  index_t rows() const { return index_.rows(); }
  index_t cols() const { return index_.cols(); }

  /// y = A * x with on-the-fly index and value decoding.
  void spmv(std::span<const value_t> x, std::span<value_t> y) const;

  /// Value bytes after compression (dicts + code streams + raw slices).
  std::size_t compressed_value_bytes() const;

  /// Original value bytes (m * k * 8).
  std::size_t original_value_bytes() const;

  /// Combined (index + value) compression accounting.
  std::size_t compressed_total_bytes() const {
    return index_.compressed_index_bytes() + compressed_value_bytes();
  }
  std::size_t original_total_bytes() const {
    return index_.original_index_bytes() + original_value_bytes();
  }

  /// Fraction of slices that ended up dictionary-coded.
  double dict_slice_fraction() const;

 private:
  BroEll index_;
  std::vector<ValueSlice> values_;
};

} // namespace bro::core
