#include "core/bro_hyb.h"

#include <algorithm>

#include "sparse/convert.h"
#include "util/error.h"

namespace bro::core {

BroHyb BroHyb::compress(const sparse::Csr& csr, BroHybOptions opts) {
  const sparse::Hyb hyb = sparse::csr_to_hyb(csr, opts.width_override);

  BroHyb out;
  out.rows_ = csr.rows;
  out.cols_ = csr.cols;
  out.split_width_ = hyb.ell.width;
  out.ell_nnz_ = csr.nnz() - hyb.coo.nnz();
  out.ell_ = BroEll::compress(hyb.ell, opts.ell);
  out.coo_ = BroCoo::compress(hyb.coo, opts.coo);
  return out;
}

double BroHyb::ell_fraction() const {
  const std::size_t total = ell_nnz_ + coo_.nnz();
  if (total == 0) return 1.0;
  return static_cast<double>(ell_nnz_) / static_cast<double>(total);
}

void BroHyb::spmv(std::span<const value_t> x, std::span<value_t> y) const {
  ell_.spmv(x, y); // writes y
  if (coo_.nnz() > 0) coo_.spmv_accumulate(x, y);
}

std::size_t BroHyb::compressed_index_bytes() const {
  return ell_.compressed_index_bytes() + coo_.compressed_row_bytes() +
         coo_.nnz() * sizeof(index_t); // COO col_idx stays uncompressed
}

std::size_t BroHyb::resident_index_bytes() const {
  return ell_.resident_index_bytes() + coo_.resident_row_bytes() +
         coo_.padded_nnz() * sizeof(index_t);
}

std::size_t BroHyb::original_index_bytes() const {
  return ell_.original_index_bytes() + 2 * coo_.nnz() * sizeof(index_t);
}

} // namespace bro::core
