#include "core/savings.h"

namespace bro::core {

double Savings::eta() const {
  if (original_bytes == 0) return 0.0;
  return 1.0 - static_cast<double>(compressed_bytes) /
                   static_cast<double>(original_bytes);
}

double Savings::kappa() const {
  if (compressed_bytes == 0) return 0.0;
  return static_cast<double>(original_bytes) /
         static_cast<double>(compressed_bytes);
}

Savings make_savings(std::size_t original_bytes, std::size_t compressed_bytes) {
  return Savings{original_bytes, compressed_bytes};
}

} // namespace bro::core
