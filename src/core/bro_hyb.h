// BRO-HYB: hybrid BRO-ELL + BRO-COO (paper §3.3).
//
// The matrix is split with the same Bell & Garland heuristic as HYB (so the
// HYB and BRO-HYB comparisons share identical partitions, as the paper
// requires for fairness); the ELL part is compressed with BRO-ELL and the
// COO part with BRO-COO.
#pragma once

#include <iosfwd>

#include "core/bro_coo.h"
#include "core/bro_ell.h"
#include "sparse/csr.h"
#include "sparse/hyb.h"

namespace bro::core {

struct SerializeAccess;

struct BroHybOptions {
  BroEllOptions ell;
  BroCooOptions coo;
  index_t width_override = -1; // force the ELL width; -1 = use the heuristic
};

class BroHyb {
 public:
  static BroHyb compress(const sparse::Csr& csr, BroHybOptions opts = {});

  index_t rows() const { return rows_; }
  index_t cols() const { return cols_; }
  const BroEll& ell_part() const { return ell_; }
  const BroCoo& coo_part() const { return coo_; }
  index_t split_width() const { return split_width_; }

  /// Fraction of non-zeros stored in the BRO-ELL part (Table 4 column 1).
  double ell_fraction() const;

  std::size_t ell_nnz() const { return ell_nnz_; }
  std::size_t total_nnz() const { return ell_nnz_ + coo_.nnz(); }

  /// y = A * x.
  void spmv(std::span<const value_t> x, std::span<value_t> y) const;

  /// Compressed index bytes: BRO-ELL streams + BRO-COO row streams + the
  /// COO part's uncompressed column indices.
  std::size_t compressed_index_bytes() const;

  /// Actual heap bytes of the index data as stored (see
  /// BroEll::resident_index_bytes / BroCoo::resident_row_bytes).
  std::size_t resident_index_bytes() const;

  /// Uncompressed HYB index bytes: ELL col_idx + COO row_idx + COO col_idx.
  std::size_t original_index_bytes() const;

  friend struct SerializeAccess; // serialization (serialize.cpp)

 private:
  index_t rows_ = 0;
  index_t cols_ = 0;
  index_t split_width_ = 0;
  std::size_t ell_nnz_ = 0;
  BroEll ell_;
  BroCoo coo_;
};

} // namespace bro::core
