#include "core/sliced_ell.h"

#include <algorithm>

#include "util/error.h"

namespace bro::core {

SlicedEll SlicedEll::build(const sparse::Ell& ell, int slice_height) {
  BRO_CHECK(slice_height > 0);
  SlicedEll out;
  out.rows_ = ell.rows;
  out.cols_ = ell.cols;
  out.slice_height_ = slice_height;

  const index_t h = slice_height;
  for (index_t first = 0; first < ell.rows; first += h) {
    SlicedEllSlice slice;
    slice.first_row = first;
    slice.height = std::min<index_t>(h, ell.rows - first);

    for (index_t t = 0; t < slice.height; ++t) {
      index_t len = 0;
      while (len < ell.width && ell.col_at(first + t, len) != sparse::kPad)
        ++len;
      slice.num_col = std::max(slice.num_col, len);
    }

    const std::size_t entries = static_cast<std::size_t>(slice.height) *
                                static_cast<std::size_t>(slice.num_col);
    slice.col_idx.assign(entries, sparse::kPad);
    slice.vals.assign(entries, value_t{0});
    for (index_t t = 0; t < slice.height; ++t)
      for (index_t c = 0; c < slice.num_col; ++c) {
        if (c >= ell.width) break;
        const index_t col = ell.col_at(first + t, c);
        if (col == sparse::kPad) break;
        slice.col_idx[static_cast<std::size_t>(c) * slice.height + t] = col;
        slice.vals[static_cast<std::size_t>(c) * slice.height + t] =
            ell.val_at(first + t, c);
      }
    out.slices_.push_back(std::move(slice));
  }
  return out;
}

void SlicedEll::spmv(std::span<const value_t> x, std::span<value_t> y) const {
  BRO_CHECK(x.size() == static_cast<std::size_t>(cols_));
  BRO_CHECK(y.size() == static_cast<std::size_t>(rows_));
  for (const SlicedEllSlice& s : slices_) {
    for (index_t t = 0; t < s.height; ++t) {
      value_t sum = 0;
      for (index_t c = 0; c < s.num_col; ++c) {
        const index_t col = s.col_idx[static_cast<std::size_t>(c) * s.height + t];
        if (col == sparse::kPad) continue;
        sum += s.vals[static_cast<std::size_t>(c) * s.height + t] *
               x[static_cast<std::size_t>(col)];
      }
      y[static_cast<std::size_t>(s.first_row + t)] = sum;
    }
  }
}

std::size_t SlicedEll::index_bytes() const {
  std::size_t total = 0;
  for (const auto& s : slices_)
    total += s.col_idx.size() * sizeof(index_t) + sizeof(index_t); // + num_col
  return total;
}

std::size_t SlicedEll::value_bytes() const {
  std::size_t total = 0;
  for (const auto& s : slices_) total += s.vals.size() * sizeof(value_t);
  return total;
}

} // namespace bro::core
