// BRO-BCSR: blocked bit-representation-optimized storage.
//
// FEM-structured matrices carry dense r-by-c micro-blocks (one per coupled
// dof pair). BRO-BCSR covers the CSR pattern with such blocks, keeps ONE
// delta-encoded bit-packed index per block (dividing index bits per nnz by
// r*c relative to BRO-ELL) and stores each block's values as a contiguous
// row-major r*c tile, which makes the FP accumulate vectorizable with plain
// unaligned loads — the part no other BRO format can vectorize.
//
// Layout: block rows are sliced exactly like BRO-ELL rows (per-slice-column
// bit allocation, sym_len-padded row streams, multiplexed), reusing
// BroEllSlice / RowStreamDecoder / bits:: verbatim with "row" meaning "block
// row" and "column index" meaning "block column index". Value tiles are laid
// out per slice: tile (t, j) of a slice lives at
//   vals[slice_val_offset(s) + (t * num_col + j) * r * c]
// in row-major order; ELL padding tiles (delta sentinel 0) stay zero-filled.
// Block covers are exact: fill-in entries are explicit zeros, no nnz is
// dropped, so decompression reproduces the source values bit-for-bit.
//
// Bitwise-FP contract (DESIGN.md §12): every SpMV path — sequential
// reference, scalar/SSE4/AVX2 kernels, SpMM columns, shard re-compressions
// with different shapes — accumulates row r through BcsrLaneAcc below: 8
// partial sums indexed by (column & 7), entries added in ascending column
// order as a separate multiply and add, reduced by a fixed pairwise tree,
// and normalized with a trailing + 0.0 so a fill-in-induced -0.0 cannot
// leak. Because every candidate block width divides 8, a block's columns
// occupy one aligned lane group, which is what the SIMD kernels exploit.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "core/bro_ell.h"
#include "sparse/csr.h"

namespace bro::core {

struct SerializeAccess;

struct BroBcsrOptions {
  // Forced block shape; 0 = choose per matrix by the savings model.
  // block_cols must divide 8 (lane-group alignment), block_rows <= 8.
  int block_rows = 0;
  int block_cols = 0;
  // Block rows per slice. Smaller than BRO-ELL's 256-row slices: num_col is
  // per-slice, so shorter slices confine a long block row's padding tiles
  // to 64 neighbours instead of 256 — on FEM assemblies with a few heavy
  // rows (tower nodes) that difference is most of the format's space cost.
  int slice_height = 64;
  int sym_len = 32;       // bits per load during decompression (32 or 64)
  // Minimum fraction of stored tile entries that are structural nonzeros
  // for the format to be auto-selected (applicability floor). FEM
  // assemblies cover at exactly 1.0 — every coupled dof pair stores a
  // fully dense node block — while run-structured matrices (long row
  // runs, not 2-D coupling) leave partial blocks at run boundaries and
  // top out around 0.92 across generator scales, so 0.95 separates true
  // block structure from runs structurally, independent of matrix size.
  double min_fill = 0.95;
};

/// Candidate shapes tried by the block-detection pass.
inline constexpr std::array<std::pair<int, int>, 4> kBcsrCandidateShapes{
    {{2, 2}, {4, 4}, {8, 1}, {1, 8}}};

/// Cover statistics for one candidate shape.
struct BcsrShapeStats {
  int br = 0, bc = 0;
  std::size_t blocks = 0;      // nonempty blocks in the cover
  std::size_t value_slots = 0; // tile entries incl. slice-ELL padding tiles
  std::size_t index_bits = 0;  // packed block-index stream + header bits
  double fill = 0;             // nnz / (blocks * br * bc)
  // index bytes plus a stored double per value slot beyond nnz: explicit-
  // zero fill is charged against the index-bit savings, so shapes that
  // mostly pad lose to the baseline.
  std::size_t cost_bytes = 0;
};

/// Result of the block-detection pass: every candidate shape's cover stats
/// plus the unblocked BRO-ELL-style baseline they are charged against.
struct BcsrAnalysis {
  std::vector<BcsrShapeStats> shapes; // kBcsrCandidateShapes order
  int best = -1;                      // argmin cost_bytes (-1 iff rows == 0)
  std::size_t ell_value_slots = 0;    // rows * max_row_len
  std::size_t ell_index_bits = 0;     // unblocked delta stream + header bits
};

/// Greedy exact r x c cover of every candidate shape with fill-in
/// accounting; shared by applicability, compression and the tune hook.
BcsrAnalysis analyze_bro_bcsr(const sparse::Csr& csr,
                              const BroBcsrOptions& opts = {});

/// Savings-model applicability: the best shape must clear the fill floor,
/// stay within the ELL expansion bound, and beat the unblocked index cost
/// by a clear margin (so marginally-blocked matrices keep BRO-ELL).
bool bro_bcsr_applicable(const sparse::Csr& csr, double max_ell_expand,
                         const BroBcsrOptions& opts = {});

/// 8-lane accumulator implementing the bitwise-FP contract (header comment).
struct BcsrLaneAcc {
  value_t lane[8] = {0, 0, 0, 0, 0, 0, 0, 0};

  void add(index_t col, value_t a, value_t xv) {
    const value_t p = a * xv;
    lane[col & 7] += p;
  }

  value_t reduce() const {
    return (((lane[0] + lane[1]) + (lane[2] + lane[3])) +
            ((lane[4] + lane[5]) + (lane[6] + lane[7]))) +
           0.0;
  }
};

class BroBcsr {
 public:
  static BroBcsr compress(const sparse::Csr& csr, BroBcsrOptions opts = {});

  index_t rows() const { return rows_; }
  index_t cols() const { return cols_; }
  int block_r() const { return br_; }
  int block_c() const { return bc_; }
  index_t block_rows() const { return block_rows_; }
  index_t ell_width() const { return ell_width_; }
  std::size_t nnz() const { return nnz_; }
  const BroBcsrOptions& options() const { return opts_; }

  /// Block-row index slices; first_row/height count BLOCK rows and num_col
  /// counts blocks per block row.
  const std::vector<BroEllSlice>& slices() const { return slices_; }

  std::span<const value_t> vals() const { return vals_; }
  std::size_t slice_val_offset(std::size_t si) const { return val_off_[si]; }
  std::size_t value_slots() const { return vals_.size(); }

  /// Decode the block-column indices of one block row (verification path).
  std::vector<index_t> decode_block_row(index_t brow) const;

  /// y = A * x, sequentially, under the bitwise-FP contract. This is the
  /// reference every kernel must match bit-for-bit.
  void spmv(std::span<const value_t> x, std::span<value_t> y) const;

  /// Exact reconstruction including explicit fill-in zeros (validation and
  /// generic serving paths).
  sparse::Csr to_csr() const;

  /// Index bytes (streams + per-slice headers) plus the fill charge: a
  /// stored double per tile value slot beyond nnz. Using the charged figure
  /// here makes eta fill-adjusted everywhere savings are reported or
  /// ranked.
  std::size_t compressed_index_bytes() const;

  /// Actual heap bytes of the index data as stored (no fill charge — tile
  /// memory is accounted by resident value bytes).
  std::size_t resident_index_bytes() const;

  /// Baseline ELLPACK index size of the source (rows * max_row_len * 4),
  /// identical to BRO-ELL's baseline so etas are comparable.
  std::size_t original_index_bytes() const;

  friend struct SerializeAccess; // serialization (serialize.cpp)

 private:
  index_t rows_ = 0;
  index_t cols_ = 0;
  int br_ = 1;
  int bc_ = 1;
  index_t block_rows_ = 0;
  index_t ell_width_ = 0; // source max row length (savings baseline)
  std::size_t nnz_ = 0;
  BroBcsrOptions opts_;
  std::vector<BroEllSlice> slices_;
  std::vector<std::size_t> val_off_; // per-slice offset into vals_
  std::vector<value_t> vals_;        // row-major r*c tiles
};

} // namespace bro::core
