#include "core/bro_ell_vector.h"

#include <algorithm>
#include <vector>

#include "util/error.h"

namespace bro::core {

BroEllVector BroEllVector::compress(const sparse::Ell& ell,
                                    int threads_per_row,
                                    BroEllOptions opts) {
  BRO_CHECK_MSG(threads_per_row >= 1 && threads_per_row <= 32 &&
                    (threads_per_row & (threads_per_row - 1)) == 0,
                "threads_per_row must be a power of two in [1, 32]");
  const int t_count = threads_per_row;

  // Expand to m*T sub-rows: sub-row r*T + l holds entries l, l+T, ... of
  // row r. Column indices stay strictly increasing within each sub-row.
  sparse::Ell expanded;
  expanded.rows = ell.rows * t_count;
  expanded.cols = ell.cols;
  expanded.width = (ell.width + t_count - 1) / t_count;
  expanded.col_idx.assign(
      static_cast<std::size_t>(expanded.rows) * expanded.width, sparse::kPad);
  expanded.vals.assign(
      static_cast<std::size_t>(expanded.rows) * expanded.width, value_t{0});

  for (index_t r = 0; r < ell.rows; ++r) {
    for (index_t j = 0; j < ell.width; ++j) {
      const index_t col = ell.col_at(r, j);
      if (col == sparse::kPad) break;
      const index_t sub = r * t_count + (j % t_count);
      const index_t sub_j = j / t_count;
      expanded.col_idx[static_cast<std::size_t>(sub_j) * expanded.rows + sub] =
          col;
      expanded.vals[static_cast<std::size_t>(sub_j) * expanded.rows + sub] =
          ell.val_at(r, j);
    }
  }

  BroEllVector out;
  out.rows_ = ell.rows;
  out.threads_per_row_ = t_count;
  out.original_index_bytes_ = ell.index_bytes();
  out.inner_ = BroEll::compress(expanded, opts);
  return out;
}

void BroEllVector::spmv(std::span<const value_t> x,
                        std::span<value_t> y) const {
  BRO_CHECK(y.size() == static_cast<std::size_t>(rows_));
  std::vector<value_t> partial(
      static_cast<std::size_t>(rows_) * threads_per_row_);
  inner_.spmv(x, partial);
  for (index_t r = 0; r < rows_; ++r) {
    value_t sum = 0;
    for (int l = 0; l < threads_per_row_; ++l)
      sum += partial[static_cast<std::size_t>(r) * threads_per_row_ +
                     static_cast<std::size_t>(l)];
    y[static_cast<std::size_t>(r)] = sum;
  }
}

} // namespace bro::core
