#include "core/bro_coo.h"

#include <algorithm>

#include "bits/bit_string.h"
#include "bits/bitwidth.h"
#include "bits/delta.h"
#include "util/error.h"

namespace bro::core {

BroCoo BroCoo::compress(const sparse::Coo& coo, BroCooOptions opts) {
  BRO_CHECK_MSG(coo.is_canonical(), "BRO-COO requires canonical COO order");
  BRO_CHECK_MSG(opts.warp_size > 0 && opts.interval_cols > 0,
                "interval dimensions must be positive");
  BRO_CHECK_MSG(opts.sym_len == 32 || opts.sym_len == 64,
                "sym_len must be 32 or 64");

  BroCoo out;
  out.rows_ = coo.rows;
  out.cols_ = coo.cols;
  out.nnz_ = coo.nnz();
  out.opts_ = opts;

  if (coo.nnz() == 0) return out;

  // Pad the entry stream to a whole number of intervals with (last_row,
  // last_col, 0.0) entries: delta 0, value 0 — no effect on the product.
  const std::size_t interval_size =
      static_cast<std::size_t>(opts.warp_size) *
      static_cast<std::size_t>(opts.interval_cols);
  const std::size_t padded =
      (coo.nnz() + interval_size - 1) / interval_size * interval_size;

  std::vector<index_t> row_idx = coo.row_idx;
  out.col_idx_ = coo.col_idx;
  out.vals_ = coo.vals;
  row_idx.resize(padded, coo.row_idx.back());
  out.col_idx_.resize(padded, coo.col_idx.back());
  out.vals_.resize(padded, value_t{0});

  const std::size_t num_intervals = padded / interval_size;
  out.intervals_.reserve(num_intervals);
  const int w = opts.warp_size;

  for (std::size_t i = 0; i < num_intervals; ++i) {
    const std::size_t base = i * interval_size;
    BroCooInterval iv;
    iv.start_row = row_idx[base];

    // Pass 1: delta-encode down each lane to find the interval's bit width.
    int bits_needed = 1;
    for (int j = 0; j < w; ++j) {
      index_t prev = iv.start_row;
      for (int c = 0; c < opts.interval_cols; ++c) {
        const index_t r =
            row_idx[base + static_cast<std::size_t>(c) * w +
                    static_cast<std::size_t>(j)];
        BRO_CHECK_MSG(r >= prev, "row indices not sorted within interval");
        bits_needed = std::max(
            bits_needed,
            bits::bit_width_of(static_cast<std::uint32_t>(r - prev)));
        prev = r;
      }
    }

    // Pass 2: pack every lane with the final bit width.
    iv.bits = bits_needed;
    std::vector<bits::BitString> streams(static_cast<std::size_t>(w));
    for (int j = 0; j < w; ++j) {
      index_t prev = iv.start_row;
      auto& bs = streams[static_cast<std::size_t>(j)];
      for (int c = 0; c < opts.interval_cols; ++c) {
        const index_t r =
            row_idx[base + static_cast<std::size_t>(c) * w +
                    static_cast<std::size_t>(j)];
        bs.append(static_cast<std::uint32_t>(r - prev), iv.bits);
        prev = r;
      }
      bs.pad_to_multiple(opts.sym_len);
    }
    iv.stream = bits::MuxedStream::interleave(streams, opts.sym_len);
    out.intervals_.push_back(std::move(iv));
  }
  return out;
}

std::vector<index_t> BroCoo::decode_rows() const {
  std::vector<index_t> out(padded_nnz());
  const int w = opts_.warp_size;
  const std::size_t interval_size =
      static_cast<std::size_t>(w) * static_cast<std::size_t>(opts_.interval_cols);
  for (std::size_t i = 0; i < intervals_.size(); ++i) {
    const auto& iv = intervals_[i];
    for (int j = 0; j < w; ++j) {
      // Reuse the BRO-ELL row-stream decoder shape: symbols of lane j are at
      // c*w + j; decode sequentially with the fixed width.
      std::uint64_t sym = 0;
      int rb = 0;
      index_t loads = 0;
      index_t acc = iv.start_row;
      const auto load = [&]() {
        sym = iv.stream.at(static_cast<std::size_t>(loads),
                           static_cast<std::size_t>(j));
        ++loads;
        rb = opts_.sym_len;
      };
      const auto take = [&](int q) -> std::uint64_t {
        if (q <= 0) return 0;
        const std::uint64_t v =
            (sym >> (rb - q)) & bits::max_value_for_bits(q);
        rb -= q;
        return v;
      };
      for (int c = 0; c < opts_.interval_cols; ++c) {
        std::uint64_t d;
        if (iv.bits <= rb) {
          d = take(iv.bits);
        } else {
          const int high = rb;
          d = take(high);
          load();
          const int low = iv.bits - high;
          d = (d << low) | take(low);
        }
        acc += static_cast<index_t>(d);
        out[i * interval_size + static_cast<std::size_t>(c) * w +
            static_cast<std::size_t>(j)] = acc;
      }
    }
  }
  return out;
}

void BroCoo::spmv_accumulate(std::span<const value_t> x,
                             std::span<value_t> y) const {
  BRO_CHECK(x.size() == static_cast<std::size_t>(cols_));
  BRO_CHECK(y.size() == static_cast<std::size_t>(rows_));
  const std::vector<index_t> rows = decode_rows();
  for (std::size_t i = 0; i < rows.size(); ++i)
    y[static_cast<std::size_t>(rows[i])] +=
        vals_[i] * x[static_cast<std::size_t>(col_idx_[i])];
}

std::size_t BroCoo::compressed_row_bytes() const {
  std::size_t total = 0;
  for (const auto& iv : intervals_) {
    total += iv.stream.byte_size();
    total += sizeof(index_t); // start_row
    total += 1;               // bit width
  }
  return total;
}

std::size_t BroCoo::resident_row_bytes() const {
  std::size_t total = 0;
  for (const auto& iv : intervals_) {
    total += iv.stream.resident_bytes();
    total += sizeof(index_t) + 1;
  }
  return total;
}

} // namespace bro::core
