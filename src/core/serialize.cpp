#include "core/serialize.h"

#include <fstream>
#include <istream>
#include <ostream>

#include "sparse/convert.h"
#include "sparse/coo.h"
#include "util/error.h"

namespace bro::core {

/// Passkey granting the serializers access to the formats' internals.
struct SerializeAccess {
  static BroEll make_ell(index_t rows, index_t cols, index_t width,
                         BroEllOptions opts, std::vector<BroEllSlice> slices,
                         std::vector<value_t> vals) {
    BroEll m;
    m.rows_ = rows;
    m.cols_ = cols;
    m.width_ = width;
    m.opts_ = opts;
    m.slices_ = std::move(slices);
    m.vals_ = std::move(vals);
    return m;
  }
  static BroCoo make_coo(index_t rows, index_t cols, std::size_t nnz,
                         BroCooOptions opts,
                         std::vector<BroCooInterval> intervals,
                         std::vector<index_t> col_idx,
                         std::vector<value_t> vals) {
    BroCoo m;
    m.rows_ = rows;
    m.cols_ = cols;
    m.nnz_ = nnz;
    m.opts_ = opts;
    m.intervals_ = std::move(intervals);
    m.col_idx_ = std::move(col_idx);
    m.vals_ = std::move(vals);
    return m;
  }
  static BroHyb make_hyb(index_t rows, index_t cols, index_t split_width,
                         std::size_t ell_nnz, BroEll ell, BroCoo coo) {
    BroHyb m;
    m.rows_ = rows;
    m.cols_ = cols;
    m.split_width_ = split_width;
    m.ell_nnz_ = ell_nnz;
    m.ell_ = std::move(ell);
    m.coo_ = std::move(coo);
    return m;
  }
  static const bits::BitString& csr_stream(const BroCsr& m) {
    return m.stream_;
  }
  static BroAns make_ans(index_t rows, index_t cols, index_t width,
                         BroAnsOptions opts, bits::AnsTable table,
                         std::vector<BroAnsSlice> slices,
                         std::vector<value_t> vals) {
    BroAns m;
    m.rows_ = rows;
    m.cols_ = cols;
    m.width_ = width;
    m.opts_ = opts;
    m.table_ = std::move(table);
    m.slices_ = std::move(slices);
    m.vals_ = std::move(vals);
    return m;
  }
  static BroBcsr make_bcsr(index_t rows, index_t cols, int br, int bc,
                           index_t ell_width, std::size_t nnz,
                           BroBcsrOptions opts,
                           std::vector<BroEllSlice> slices,
                           std::vector<std::size_t> val_off,
                           std::vector<value_t> vals) {
    BroBcsr m;
    m.rows_ = rows;
    m.cols_ = cols;
    m.br_ = br;
    m.bc_ = bc;
    m.block_rows_ = rows == 0 ? 0 : (rows + br - 1) / br;
    m.ell_width_ = ell_width;
    m.nnz_ = nnz;
    m.opts_ = opts;
    m.slices_ = std::move(slices);
    m.val_off_ = std::move(val_off);
    m.vals_ = std::move(vals);
    return m;
  }
  static BroCsr make_csr(index_t rows, index_t cols, BroCsrOptions opts,
                         std::vector<index_t> row_ptr,
                         std::vector<std::uint8_t> bits,
                         std::vector<std::uint32_t> sym_ptr,
                         std::vector<value_t> vals, bits::BitString stream) {
    BroCsr m;
    m.rows_ = rows;
    m.cols_ = cols;
    m.opts_ = opts;
    m.row_ptr_ = std::move(row_ptr);
    m.bits_ = std::move(bits);
    m.sym_ptr_ = std::move(sym_ptr);
    m.vals_ = std::move(vals);
    m.stream_ = std::move(stream);
    return m;
  }
};

namespace {

constexpr std::uint32_t kMagic = 0x53'4F'52'42; // "BROS" little-endian
constexpr std::uint32_t kVersion = 1;

enum class Tag : std::uint8_t {
  kBroEll = 1,
  kBroCoo = 2,
  kBroHyb = 3,
  kBroCsr = 4,
  kBroAns = 5,
  kBroBcsr = 6,
};

template <typename T>
void write_pod(std::ostream& out, const T& v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
T read_pod(std::istream& in) {
  T v{};
  in.read(reinterpret_cast<char*>(&v), sizeof(T));
  BRO_CHECK_MSG(in.good(), "truncated stream while reading "
                               << sizeof(T) << "-byte field");
  return v;
}

template <typename T>
void write_vec(std::ostream& out, const std::vector<T>& v) {
  write_pod<std::uint64_t>(out, v.size());
  if (!v.empty())
    out.write(reinterpret_cast<const char*>(v.data()),
              static_cast<std::streamsize>(v.size() * sizeof(T)));
}

template <typename T>
std::vector<T> read_vec(std::istream& in, std::uint64_t sanity_max) {
  const auto n = read_pod<std::uint64_t>(in);
  BRO_CHECK_MSG(n <= sanity_max, "implausible element count " << n);
  std::vector<T> v(n);
  if (n > 0) {
    in.read(reinterpret_cast<char*>(v.data()),
            static_cast<std::streamsize>(n * sizeof(T)));
    BRO_CHECK_MSG(in.good(), "truncated stream while reading array");
  }
  return v;
}

// Generous bound for corrupted-size detection (1 G elements).
constexpr std::uint64_t kSane = 1ull << 30;

void write_header(std::ostream& out, Tag tag) {
  write_pod(out, kMagic);
  write_pod(out, kVersion);
  write_pod(out, static_cast<std::uint8_t>(tag));
}

void read_header(std::istream& in, Tag expected) {
  BRO_CHECK_MSG(read_pod<std::uint32_t>(in) == kMagic,
                "not a BRO serialized stream (bad magic)");
  BRO_CHECK_MSG(read_pod<std::uint32_t>(in) == kVersion,
                "unsupported BRO stream version");
  const auto tag = read_pod<std::uint8_t>(in);
  BRO_CHECK_MSG(tag == static_cast<std::uint8_t>(expected),
                "stream holds a different format (tag " << int(tag) << ')');
}

void write_mux(std::ostream& out, const bits::MuxedStream& s) {
  write_pod<std::int32_t>(out, s.sym_len());
  write_pod<std::uint64_t>(out, s.height());
  write_pod<std::uint64_t>(out, s.symbols_per_row());
  for (std::size_t i = 0; i < s.total_symbols(); ++i)
    write_pod<std::uint64_t>(out, s[i]);
}

bits::MuxedStream read_mux(std::istream& in) {
  const auto sym_len = read_pod<std::int32_t>(in);
  const auto height = read_pod<std::uint64_t>(in);
  const auto spr = read_pod<std::uint64_t>(in);
  BRO_CHECK_MSG(height <= kSane && spr <= kSane && height * spr <= kSane,
                "implausible stream dimensions");
  bits::MuxedStream s(sym_len, height, spr);
  for (std::size_t i = 0; i < s.total_symbols(); ++i)
    s.set_slot(i, read_pod<std::uint64_t>(in));
  return s;
}

void write_ell_body(std::ostream& out, const BroEll& m) {
  write_pod(out, m.rows());
  write_pod(out, m.cols());
  write_pod(out, m.width());
  write_pod<std::int32_t>(out, m.options().slice_height);
  write_pod<std::int32_t>(out, m.options().sym_len);
  write_pod<std::uint64_t>(out, m.slices().size());
  for (const BroEllSlice& s : m.slices()) {
    write_pod(out, s.first_row);
    write_pod(out, s.height);
    write_pod(out, s.num_col);
    write_pod<std::int32_t>(out, s.pad_bits);
    write_vec(out, s.bit_alloc);
    write_mux(out, s.stream);
  }
  write_vec(out, m.vals());
}

BroEll read_ell_body(std::istream& in) {
  const auto rows = read_pod<index_t>(in);
  const auto cols = read_pod<index_t>(in);
  const auto width = read_pod<index_t>(in);
  BroEllOptions opts;
  opts.slice_height = read_pod<std::int32_t>(in);
  opts.sym_len = read_pod<std::int32_t>(in);
  BRO_CHECK_MSG(opts.sym_len == 32 || opts.sym_len == 64, "corrupt sym_len");
  const auto n = read_pod<std::uint64_t>(in);
  BRO_CHECK_MSG(n <= kSane, "implausible slice count");
  std::vector<BroEllSlice> slices(n);
  for (auto& s : slices) {
    s.first_row = read_pod<index_t>(in);
    s.height = read_pod<index_t>(in);
    s.num_col = read_pod<index_t>(in);
    s.pad_bits = read_pod<std::int32_t>(in);
    s.bit_alloc = read_vec<std::uint8_t>(in, kSane);
    s.stream = read_mux(in);
  }
  auto vals = read_vec<value_t>(in, kSane);
  return SerializeAccess::make_ell(rows, cols, width, opts, std::move(slices),
                                   std::move(vals));
}

void write_ans_body(std::ostream& out, const BroAns& m) {
  write_pod(out, m.rows());
  write_pod(out, m.cols());
  write_pod(out, m.width());
  write_pod<std::int32_t>(out, m.options().slice_height);
  write_pod<std::int32_t>(out, m.options().sym_len);
  write_pod<std::int32_t>(out, m.options().table_log);
  // Payload layout version (the header tag and global version are shared
  // with every format): 2 = interleaved lane groups with out-of-band
  // initial states. Version 1 (one whole-slice stream, state in-stream) is
  // no longer written or read.
  write_pod<std::uint32_t>(out, 2);
  // The normalized frequency table; the decode table is rebuilt on load.
  write_vec(out, m.table().freqs());
  write_pod<std::uint64_t>(out, m.slices().size());
  for (const BroAnsSlice& s : m.slices()) {
    write_pod(out, s.first_row);
    write_pod(out, s.height);
    write_pod(out, s.num_col);
    write_vec(out, s.init_states);
    write_pod<std::uint64_t>(out, s.groups.size());
    for (const bits::MuxedStream& g : s.groups) write_mux(out, g);
  }
  write_vec(out, m.vals());
}

BroAns read_ans_body(std::istream& in) {
  const auto rows = read_pod<index_t>(in);
  const auto cols = read_pod<index_t>(in);
  const auto width = read_pod<index_t>(in);
  BroAnsOptions opts;
  opts.slice_height = read_pod<std::int32_t>(in);
  opts.sym_len = read_pod<std::int32_t>(in);
  opts.table_log = read_pod<std::int32_t>(in);
  BRO_CHECK_MSG(opts.sym_len == 32 || opts.sym_len == 64, "corrupt sym_len");
  const auto layout = read_pod<std::uint32_t>(in);
  BRO_CHECK_MSG(layout == 2, "unsupported BRO-ANS payload layout "
                                 << layout
                                 << " (this build reads layout 2 only)");
  auto freqs = read_vec<std::uint16_t>(in, kSane);
  // from_freqs validates table_log range, table size and frequency sum.
  bits::AnsTable table =
      bits::AnsTable::from_freqs(std::move(freqs), opts.table_log);
  const auto n = read_pod<std::uint64_t>(in);
  BRO_CHECK_MSG(n <= kSane, "implausible slice count");
  std::vector<BroAnsSlice> slices(n);
  for (auto& s : slices) {
    s.first_row = read_pod<index_t>(in);
    s.height = read_pod<index_t>(in);
    s.num_col = read_pod<index_t>(in);
    s.init_states = read_vec<std::uint16_t>(in, kSane);
    const auto ng = read_pod<std::uint64_t>(in);
    BRO_CHECK_MSG(ng <= kSane, "implausible lane-group count");
    s.groups.resize(ng);
    for (auto& g : s.groups) g = read_mux(in);
  }
  auto vals = read_vec<value_t>(in, kSane);
  return SerializeAccess::make_ans(rows, cols, width, opts, std::move(table),
                                   std::move(slices), std::move(vals));
}

void write_coo_body(std::ostream& out, const BroCoo& m) {
  write_pod(out, m.rows());
  write_pod(out, m.cols());
  write_pod<std::uint64_t>(out, m.nnz());
  write_pod<std::int32_t>(out, m.options().warp_size);
  write_pod<std::int32_t>(out, m.options().interval_cols);
  write_pod<std::int32_t>(out, m.options().sym_len);
  write_pod<std::uint64_t>(out, m.intervals().size());
  for (const BroCooInterval& iv : m.intervals()) {
    write_pod(out, iv.start_row);
    write_pod<std::int32_t>(out, iv.bits);
    write_mux(out, iv.stream);
  }
  write_vec(out, m.col_idx());
  write_vec(out, m.vals());
}

BroCoo read_coo_body(std::istream& in) {
  const auto rows = read_pod<index_t>(in);
  const auto cols = read_pod<index_t>(in);
  const auto nnz = read_pod<std::uint64_t>(in);
  BroCooOptions opts;
  opts.warp_size = read_pod<std::int32_t>(in);
  opts.interval_cols = read_pod<std::int32_t>(in);
  opts.sym_len = read_pod<std::int32_t>(in);
  const auto n = read_pod<std::uint64_t>(in);
  BRO_CHECK_MSG(n <= kSane, "implausible interval count");
  std::vector<BroCooInterval> intervals(n);
  for (auto& iv : intervals) {
    iv.start_row = read_pod<index_t>(in);
    iv.bits = read_pod<std::int32_t>(in);
    iv.stream = read_mux(in);
  }
  auto col_idx = read_vec<index_t>(in, kSane);
  auto vals = read_vec<value_t>(in, kSane);
  return SerializeAccess::make_coo(rows, cols, nnz, opts, std::move(intervals),
                                   std::move(col_idx), std::move(vals));
}

void write_bcsr_body(std::ostream& out, const BroBcsr& m) {
  write_pod(out, m.rows());
  write_pod(out, m.cols());
  write_pod<std::int32_t>(out, m.block_r());
  write_pod<std::int32_t>(out, m.block_c());
  write_pod(out, m.ell_width());
  write_pod<std::uint64_t>(out, m.nnz());
  write_pod<std::int32_t>(out, m.options().block_rows);
  write_pod<std::int32_t>(out, m.options().block_cols);
  write_pod<std::int32_t>(out, m.options().slice_height);
  write_pod<std::int32_t>(out, m.options().sym_len);
  write_pod<double>(out, m.options().min_fill);
  write_pod<std::uint64_t>(out, m.slices().size());
  for (const BroEllSlice& s : m.slices()) {
    write_pod(out, s.first_row);
    write_pod(out, s.height);
    write_pod(out, s.num_col);
    write_pod<std::int32_t>(out, s.pad_bits);
    write_vec(out, s.bit_alloc);
    write_mux(out, s.stream);
  }
  std::vector<value_t> vals(m.vals().begin(), m.vals().end());
  write_vec(out, vals);
}

BroBcsr read_bcsr_body(std::istream& in) {
  const auto rows = read_pod<index_t>(in);
  const auto cols = read_pod<index_t>(in);
  const auto br = read_pod<std::int32_t>(in);
  const auto bc = read_pod<std::int32_t>(in);
  BRO_CHECK_MSG(br >= 1 && br <= 8 && (bc == 1 || bc == 2 || bc == 4 || bc == 8),
                "corrupt BRO-BCSR block shape " << br << 'x' << bc);
  const auto ell_width = read_pod<index_t>(in);
  const auto nnz = read_pod<std::uint64_t>(in);
  BroBcsrOptions opts;
  opts.block_rows = read_pod<std::int32_t>(in);
  opts.block_cols = read_pod<std::int32_t>(in);
  opts.slice_height = read_pod<std::int32_t>(in);
  opts.sym_len = read_pod<std::int32_t>(in);
  opts.min_fill = read_pod<double>(in);
  BRO_CHECK_MSG(opts.sym_len == 32 || opts.sym_len == 64, "corrupt sym_len");
  BRO_CHECK_MSG(opts.slice_height > 0, "corrupt slice_height");
  const auto n = read_pod<std::uint64_t>(in);
  BRO_CHECK_MSG(n <= kSane, "implausible slice count");
  std::vector<BroEllSlice> slices(n);
  std::vector<std::size_t> val_off;
  val_off.reserve(n);
  std::size_t slots = 0;
  const auto tile = static_cast<std::size_t>(br) * static_cast<std::size_t>(bc);
  for (auto& s : slices) {
    s.first_row = read_pod<index_t>(in);
    s.height = read_pod<index_t>(in);
    s.num_col = read_pod<index_t>(in);
    s.pad_bits = read_pod<std::int32_t>(in);
    s.bit_alloc = read_vec<std::uint8_t>(in, kSane);
    BRO_CHECK_MSG(s.height >= 0 && s.num_col >= 0 &&
                      s.bit_alloc.size() ==
                          static_cast<std::size_t>(s.num_col),
                  "corrupt BRO-BCSR slice header");
    s.stream = read_mux(in);
    val_off.push_back(slots);
    slots += static_cast<std::size_t>(s.height) *
             static_cast<std::size_t>(s.num_col) * tile;
  }
  auto vals = read_vec<value_t>(in, kSane);
  BRO_CHECK_MSG(vals.size() == slots,
                "BRO-BCSR value array size mismatches its slices");
  return SerializeAccess::make_bcsr(rows, cols, br, bc, ell_width, nnz, opts,
                                    std::move(slices), std::move(val_off),
                                    std::move(vals));
}

/// The real (unpadded) entries of a BRO-COO as canonical COO triples. The
/// stream enumerates entries in original row-sorted order (lane j of 2-D
/// position c owns entry base + c*warp_size + j), so the first nnz decoded
/// coordinates are exactly the source entries.
void append_bro_coo_entries(const BroCoo& coo, sparse::Coo& out) {
  const auto rows = coo.decode_rows();
  for (std::size_t i = 0; i < coo.nnz(); ++i)
    out.push(rows[i], coo.col_idx()[i], coo.vals()[i]);
}

sparse::Csr csr_from_bro_coo(const BroCoo& m) {
  sparse::Coo coo;
  coo.rows = m.rows();
  coo.cols = m.cols();
  coo.reserve(m.nnz());
  append_bro_coo_entries(m, coo);
  return sparse::coo_to_csr(coo);
}

sparse::Csr csr_from_bro_hyb(const BroHyb& m) {
  // Merge both parts through one COO: the split is by row width, so the
  // parts never hold duplicate coordinates and coo_to_csr just re-sorts.
  sparse::Coo coo;
  coo.rows = m.rows();
  coo.cols = m.cols();
  coo.reserve(m.total_nnz());
  const sparse::Csr ell_csr = sparse::ell_to_csr(m.ell_part().decompress());
  for (index_t r = 0; r < ell_csr.rows; ++r)
    for (index_t k = ell_csr.row_ptr[static_cast<std::size_t>(r)];
         k < ell_csr.row_ptr[static_cast<std::size_t>(r) + 1]; ++k)
      coo.push(r, ell_csr.col_idx[static_cast<std::size_t>(k)],
               ell_csr.vals[static_cast<std::size_t>(k)]);
  append_bro_coo_entries(m.coo_part(), coo);
  return sparse::coo_to_csr(coo);
}

} // namespace

Format peek_bro_format(std::istream& in) {
  BRO_CHECK_MSG(read_pod<std::uint32_t>(in) == kMagic,
                "not a BRO serialized stream (bad magic)");
  BRO_CHECK_MSG(read_pod<std::uint32_t>(in) == kVersion,
                "unsupported BRO stream version");
  const auto tag = read_pod<std::uint8_t>(in);
  switch (static_cast<Tag>(tag)) {
    case Tag::kBroEll: return Format::kBroEll;
    case Tag::kBroCoo: return Format::kBroCoo;
    case Tag::kBroHyb: return Format::kBroHyb;
    case Tag::kBroCsr: return Format::kBroCsr;
    case Tag::kBroAns: return Format::kBroAns;
    case Tag::kBroBcsr: return Format::kBroBcsr;
  }
  BRO_CHECK_MSG(false, "unknown format tag " << int(tag));
  return Format::kBroHyb; // unreachable
}

void write_bro_ell(std::ostream& out, const BroEll& m) {
  write_header(out, Tag::kBroEll);
  write_ell_body(out, m);
}

BroEll read_bro_ell(std::istream& in) {
  read_header(in, Tag::kBroEll);
  return read_ell_body(in);
}

void write_bro_ans(std::ostream& out, const BroAns& m) {
  write_header(out, Tag::kBroAns);
  write_ans_body(out, m);
}

BroAns read_bro_ans(std::istream& in) {
  read_header(in, Tag::kBroAns);
  return read_ans_body(in);
}

void write_bro_coo(std::ostream& out, const BroCoo& m) {
  write_header(out, Tag::kBroCoo);
  write_coo_body(out, m);
}

BroCoo read_bro_coo(std::istream& in) {
  read_header(in, Tag::kBroCoo);
  return read_coo_body(in);
}

void write_bro_hyb(std::ostream& out, const BroHyb& m) {
  write_header(out, Tag::kBroHyb);
  write_pod(out, m.rows());
  write_pod(out, m.cols());
  write_pod(out, m.split_width());
  write_pod<std::uint64_t>(out, m.ell_nnz());
  write_ell_body(out, m.ell_part());
  write_coo_body(out, m.coo_part());
}

BroHyb read_bro_hyb(std::istream& in) {
  read_header(in, Tag::kBroHyb);
  const auto rows = read_pod<index_t>(in);
  const auto cols = read_pod<index_t>(in);
  const auto split_width = read_pod<index_t>(in);
  const auto ell_nnz = read_pod<std::uint64_t>(in);
  BroEll ell = read_ell_body(in);
  BroCoo coo = read_coo_body(in);
  return SerializeAccess::make_hyb(rows, cols, split_width, ell_nnz,
                                   std::move(ell), std::move(coo));
}

void write_bro_csr(std::ostream& out, const BroCsr& m) {
  write_header(out, Tag::kBroCsr);
  write_pod(out, m.rows());
  write_pod(out, m.cols());
  write_pod<std::int32_t>(out, m.options().sym_len);
  write_vec(out, m.row_ptr());
  write_vec(out, m.bits_per_row());
  write_vec(out, m.row_sym_ptr());
  write_vec(out, m.vals());
  // Raw bit-string words.
  const bits::BitString& stream = SerializeAccess::csr_stream(m);
  write_pod<std::uint64_t>(out, stream.size_bits());
  write_vec(out, stream.words());
}

BroCsr read_bro_csr(std::istream& in) {
  read_header(in, Tag::kBroCsr);
  const auto rows = read_pod<index_t>(in);
  const auto cols = read_pod<index_t>(in);
  BroCsrOptions opts;
  opts.sym_len = read_pod<std::int32_t>(in);
  auto row_ptr = read_vec<index_t>(in, kSane);
  auto bits_v = read_vec<std::uint8_t>(in, kSane);
  auto sym_ptr = read_vec<std::uint32_t>(in, kSane);
  auto vals = read_vec<value_t>(in, kSane);
  const auto size_bits = read_pod<std::uint64_t>(in);
  auto words = read_vec<std::uint64_t>(in, kSane);
  return SerializeAccess::make_csr(
      rows, cols, opts, std::move(row_ptr), std::move(bits_v),
      std::move(sym_ptr), std::move(vals),
      bits::BitString::from_words(std::move(words), size_bits));
}

void write_bro_bcsr(std::ostream& out, const BroBcsr& m) {
  write_header(out, Tag::kBroBcsr);
  write_bcsr_body(out, m);
}

BroBcsr read_bro_bcsr(std::istream& in) {
  read_header(in, Tag::kBroBcsr);
  return read_bcsr_body(in);
}

sparse::Csr read_bro_to_csr(std::istream& in, Format* fmt) {
  const std::istream::pos_type start = in.tellg();
  const Format f = peek_bro_format(in);
  in.seekg(start);
  if (fmt != nullptr) *fmt = f;
  switch (f) {
    case Format::kBroEll:
      return sparse::ell_to_csr(read_bro_ell(in).decompress());
    case Format::kBroAns:
      return sparse::ell_to_csr(read_bro_ans(in).decompress());
    case Format::kBroCsr:
      return read_bro_csr(in).decompress();
    case Format::kBroCoo:
      return csr_from_bro_coo(read_bro_coo(in));
    case Format::kBroHyb:
      return csr_from_bro_hyb(read_bro_hyb(in));
    case Format::kBroBcsr: {
      // The cover stores fill-in zeros; strip them so serialize ->
      // deserialize -> serialize is bitwise idempotent for any matrix
      // without explicitly stored zero values. (A source entry that IS
      // exactly 0.0 is indistinguishable from fill and gets dropped too —
      // the one lossy corner of this format's serialization. SpMV results
      // are unaffected either way.)
      const sparse::Csr cover = read_bro_bcsr(in).to_csr();
      sparse::Csr out;
      out.rows = cover.rows;
      out.cols = cover.cols;
      out.row_ptr.reserve(cover.row_ptr.size());
      out.row_ptr.push_back(0);
      for (index_t r = 0; r < cover.rows; ++r) {
        for (index_t e = cover.row_ptr[r]; e < cover.row_ptr[r + 1]; ++e) {
          if (cover.vals[static_cast<std::size_t>(e)] == value_t{0}) continue;
          out.col_idx.push_back(cover.col_idx[static_cast<std::size_t>(e)]);
          out.vals.push_back(cover.vals[static_cast<std::size_t>(e)]);
        }
        out.row_ptr.push_back(static_cast<index_t>(out.col_idx.size()));
      }
      return out;
    }
    default:
      BRO_CHECK_MSG(false, "unsupported .bro payload format tag");
  }
  return {}; // unreachable
}

void save_bro_ell(const std::string& path, const BroEll& m) {
  std::ofstream out(path, std::ios::binary);
  BRO_CHECK_MSG(out.good(), "cannot open '" << path << "' for writing");
  write_bro_ell(out, m);
}

BroEll load_bro_ell(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  BRO_CHECK_MSG(in.good(), "cannot open '" << path << '\'');
  return read_bro_ell(in);
}

void save_bro_hyb(const std::string& path, const BroHyb& m) {
  std::ofstream out(path, std::ios::binary);
  BRO_CHECK_MSG(out.good(), "cannot open '" << path << "' for writing");
  write_bro_hyb(out, m);
}

BroHyb load_bro_hyb(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  BRO_CHECK_MSG(in.good(), "cannot open '" << path << '\'');
  return read_bro_hyb(in);
}

} // namespace bro::core
