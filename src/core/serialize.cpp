#include "core/serialize.h"

#include <fstream>
#include <istream>
#include <ostream>

#include "util/error.h"

namespace bro::core {

/// Passkey granting the serializers access to the formats' internals.
struct SerializeAccess {
  static BroEll make_ell(index_t rows, index_t cols, index_t width,
                         BroEllOptions opts, std::vector<BroEllSlice> slices,
                         std::vector<value_t> vals) {
    BroEll m;
    m.rows_ = rows;
    m.cols_ = cols;
    m.width_ = width;
    m.opts_ = opts;
    m.slices_ = std::move(slices);
    m.vals_ = std::move(vals);
    return m;
  }
  static BroCoo make_coo(index_t rows, index_t cols, std::size_t nnz,
                         BroCooOptions opts,
                         std::vector<BroCooInterval> intervals,
                         std::vector<index_t> col_idx,
                         std::vector<value_t> vals) {
    BroCoo m;
    m.rows_ = rows;
    m.cols_ = cols;
    m.nnz_ = nnz;
    m.opts_ = opts;
    m.intervals_ = std::move(intervals);
    m.col_idx_ = std::move(col_idx);
    m.vals_ = std::move(vals);
    return m;
  }
  static BroHyb make_hyb(index_t rows, index_t cols, index_t split_width,
                         std::size_t ell_nnz, BroEll ell, BroCoo coo) {
    BroHyb m;
    m.rows_ = rows;
    m.cols_ = cols;
    m.split_width_ = split_width;
    m.ell_nnz_ = ell_nnz;
    m.ell_ = std::move(ell);
    m.coo_ = std::move(coo);
    return m;
  }
  static const bits::BitString& csr_stream(const BroCsr& m) {
    return m.stream_;
  }
  static BroAns make_ans(index_t rows, index_t cols, index_t width,
                         BroAnsOptions opts, bits::AnsTable table,
                         std::vector<BroAnsSlice> slices,
                         std::vector<value_t> vals) {
    BroAns m;
    m.rows_ = rows;
    m.cols_ = cols;
    m.width_ = width;
    m.opts_ = opts;
    m.table_ = std::move(table);
    m.slices_ = std::move(slices);
    m.vals_ = std::move(vals);
    return m;
  }
  static BroCsr make_csr(index_t rows, index_t cols, BroCsrOptions opts,
                         std::vector<index_t> row_ptr,
                         std::vector<std::uint8_t> bits,
                         std::vector<std::uint32_t> sym_ptr,
                         std::vector<value_t> vals, bits::BitString stream) {
    BroCsr m;
    m.rows_ = rows;
    m.cols_ = cols;
    m.opts_ = opts;
    m.row_ptr_ = std::move(row_ptr);
    m.bits_ = std::move(bits);
    m.sym_ptr_ = std::move(sym_ptr);
    m.vals_ = std::move(vals);
    m.stream_ = std::move(stream);
    return m;
  }
};

namespace {

constexpr std::uint32_t kMagic = 0x53'4F'52'42; // "BROS" little-endian
constexpr std::uint32_t kVersion = 1;

enum class Tag : std::uint8_t {
  kBroEll = 1,
  kBroCoo = 2,
  kBroHyb = 3,
  kBroCsr = 4,
  kBroAns = 5,
};

template <typename T>
void write_pod(std::ostream& out, const T& v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
T read_pod(std::istream& in) {
  T v{};
  in.read(reinterpret_cast<char*>(&v), sizeof(T));
  BRO_CHECK_MSG(in.good(), "truncated stream while reading "
                               << sizeof(T) << "-byte field");
  return v;
}

template <typename T>
void write_vec(std::ostream& out, const std::vector<T>& v) {
  write_pod<std::uint64_t>(out, v.size());
  if (!v.empty())
    out.write(reinterpret_cast<const char*>(v.data()),
              static_cast<std::streamsize>(v.size() * sizeof(T)));
}

template <typename T>
std::vector<T> read_vec(std::istream& in, std::uint64_t sanity_max) {
  const auto n = read_pod<std::uint64_t>(in);
  BRO_CHECK_MSG(n <= sanity_max, "implausible element count " << n);
  std::vector<T> v(n);
  if (n > 0) {
    in.read(reinterpret_cast<char*>(v.data()),
            static_cast<std::streamsize>(n * sizeof(T)));
    BRO_CHECK_MSG(in.good(), "truncated stream while reading array");
  }
  return v;
}

// Generous bound for corrupted-size detection (1 G elements).
constexpr std::uint64_t kSane = 1ull << 30;

void write_header(std::ostream& out, Tag tag) {
  write_pod(out, kMagic);
  write_pod(out, kVersion);
  write_pod(out, static_cast<std::uint8_t>(tag));
}

void read_header(std::istream& in, Tag expected) {
  BRO_CHECK_MSG(read_pod<std::uint32_t>(in) == kMagic,
                "not a BRO serialized stream (bad magic)");
  BRO_CHECK_MSG(read_pod<std::uint32_t>(in) == kVersion,
                "unsupported BRO stream version");
  const auto tag = read_pod<std::uint8_t>(in);
  BRO_CHECK_MSG(tag == static_cast<std::uint8_t>(expected),
                "stream holds a different format (tag " << int(tag) << ')');
}

void write_mux(std::ostream& out, const bits::MuxedStream& s) {
  write_pod<std::int32_t>(out, s.sym_len());
  write_pod<std::uint64_t>(out, s.height());
  write_pod<std::uint64_t>(out, s.symbols_per_row());
  for (std::size_t i = 0; i < s.total_symbols(); ++i)
    write_pod<std::uint64_t>(out, s[i]);
}

bits::MuxedStream read_mux(std::istream& in) {
  const auto sym_len = read_pod<std::int32_t>(in);
  const auto height = read_pod<std::uint64_t>(in);
  const auto spr = read_pod<std::uint64_t>(in);
  BRO_CHECK_MSG(height <= kSane && spr <= kSane && height * spr <= kSane,
                "implausible stream dimensions");
  bits::MuxedStream s(sym_len, height, spr);
  for (std::size_t i = 0; i < s.total_symbols(); ++i)
    s.set_slot(i, read_pod<std::uint64_t>(in));
  return s;
}

void write_ell_body(std::ostream& out, const BroEll& m) {
  write_pod(out, m.rows());
  write_pod(out, m.cols());
  write_pod(out, m.width());
  write_pod<std::int32_t>(out, m.options().slice_height);
  write_pod<std::int32_t>(out, m.options().sym_len);
  write_pod<std::uint64_t>(out, m.slices().size());
  for (const BroEllSlice& s : m.slices()) {
    write_pod(out, s.first_row);
    write_pod(out, s.height);
    write_pod(out, s.num_col);
    write_pod<std::int32_t>(out, s.pad_bits);
    write_vec(out, s.bit_alloc);
    write_mux(out, s.stream);
  }
  write_vec(out, m.vals());
}

BroEll read_ell_body(std::istream& in) {
  const auto rows = read_pod<index_t>(in);
  const auto cols = read_pod<index_t>(in);
  const auto width = read_pod<index_t>(in);
  BroEllOptions opts;
  opts.slice_height = read_pod<std::int32_t>(in);
  opts.sym_len = read_pod<std::int32_t>(in);
  BRO_CHECK_MSG(opts.sym_len == 32 || opts.sym_len == 64, "corrupt sym_len");
  const auto n = read_pod<std::uint64_t>(in);
  BRO_CHECK_MSG(n <= kSane, "implausible slice count");
  std::vector<BroEllSlice> slices(n);
  for (auto& s : slices) {
    s.first_row = read_pod<index_t>(in);
    s.height = read_pod<index_t>(in);
    s.num_col = read_pod<index_t>(in);
    s.pad_bits = read_pod<std::int32_t>(in);
    s.bit_alloc = read_vec<std::uint8_t>(in, kSane);
    s.stream = read_mux(in);
  }
  auto vals = read_vec<value_t>(in, kSane);
  return SerializeAccess::make_ell(rows, cols, width, opts, std::move(slices),
                                   std::move(vals));
}

void write_ans_body(std::ostream& out, const BroAns& m) {
  write_pod(out, m.rows());
  write_pod(out, m.cols());
  write_pod(out, m.width());
  write_pod<std::int32_t>(out, m.options().slice_height);
  write_pod<std::int32_t>(out, m.options().sym_len);
  write_pod<std::int32_t>(out, m.options().table_log);
  // Payload layout version (the header tag and global version are shared
  // with every format): 2 = interleaved lane groups with out-of-band
  // initial states. Version 1 (one whole-slice stream, state in-stream) is
  // no longer written or read.
  write_pod<std::uint32_t>(out, 2);
  // The normalized frequency table; the decode table is rebuilt on load.
  write_vec(out, m.table().freqs());
  write_pod<std::uint64_t>(out, m.slices().size());
  for (const BroAnsSlice& s : m.slices()) {
    write_pod(out, s.first_row);
    write_pod(out, s.height);
    write_pod(out, s.num_col);
    write_vec(out, s.init_states);
    write_pod<std::uint64_t>(out, s.groups.size());
    for (const bits::MuxedStream& g : s.groups) write_mux(out, g);
  }
  write_vec(out, m.vals());
}

BroAns read_ans_body(std::istream& in) {
  const auto rows = read_pod<index_t>(in);
  const auto cols = read_pod<index_t>(in);
  const auto width = read_pod<index_t>(in);
  BroAnsOptions opts;
  opts.slice_height = read_pod<std::int32_t>(in);
  opts.sym_len = read_pod<std::int32_t>(in);
  opts.table_log = read_pod<std::int32_t>(in);
  BRO_CHECK_MSG(opts.sym_len == 32 || opts.sym_len == 64, "corrupt sym_len");
  const auto layout = read_pod<std::uint32_t>(in);
  BRO_CHECK_MSG(layout == 2, "unsupported BRO-ANS payload layout "
                                 << layout
                                 << " (this build reads layout 2 only)");
  auto freqs = read_vec<std::uint16_t>(in, kSane);
  // from_freqs validates table_log range, table size and frequency sum.
  bits::AnsTable table =
      bits::AnsTable::from_freqs(std::move(freqs), opts.table_log);
  const auto n = read_pod<std::uint64_t>(in);
  BRO_CHECK_MSG(n <= kSane, "implausible slice count");
  std::vector<BroAnsSlice> slices(n);
  for (auto& s : slices) {
    s.first_row = read_pod<index_t>(in);
    s.height = read_pod<index_t>(in);
    s.num_col = read_pod<index_t>(in);
    s.init_states = read_vec<std::uint16_t>(in, kSane);
    const auto ng = read_pod<std::uint64_t>(in);
    BRO_CHECK_MSG(ng <= kSane, "implausible lane-group count");
    s.groups.resize(ng);
    for (auto& g : s.groups) g = read_mux(in);
  }
  auto vals = read_vec<value_t>(in, kSane);
  return SerializeAccess::make_ans(rows, cols, width, opts, std::move(table),
                                   std::move(slices), std::move(vals));
}

void write_coo_body(std::ostream& out, const BroCoo& m) {
  write_pod(out, m.rows());
  write_pod(out, m.cols());
  write_pod<std::uint64_t>(out, m.nnz());
  write_pod<std::int32_t>(out, m.options().warp_size);
  write_pod<std::int32_t>(out, m.options().interval_cols);
  write_pod<std::int32_t>(out, m.options().sym_len);
  write_pod<std::uint64_t>(out, m.intervals().size());
  for (const BroCooInterval& iv : m.intervals()) {
    write_pod(out, iv.start_row);
    write_pod<std::int32_t>(out, iv.bits);
    write_mux(out, iv.stream);
  }
  write_vec(out, m.col_idx());
  write_vec(out, m.vals());
}

BroCoo read_coo_body(std::istream& in) {
  const auto rows = read_pod<index_t>(in);
  const auto cols = read_pod<index_t>(in);
  const auto nnz = read_pod<std::uint64_t>(in);
  BroCooOptions opts;
  opts.warp_size = read_pod<std::int32_t>(in);
  opts.interval_cols = read_pod<std::int32_t>(in);
  opts.sym_len = read_pod<std::int32_t>(in);
  const auto n = read_pod<std::uint64_t>(in);
  BRO_CHECK_MSG(n <= kSane, "implausible interval count");
  std::vector<BroCooInterval> intervals(n);
  for (auto& iv : intervals) {
    iv.start_row = read_pod<index_t>(in);
    iv.bits = read_pod<std::int32_t>(in);
    iv.stream = read_mux(in);
  }
  auto col_idx = read_vec<index_t>(in, kSane);
  auto vals = read_vec<value_t>(in, kSane);
  return SerializeAccess::make_coo(rows, cols, nnz, opts, std::move(intervals),
                                   std::move(col_idx), std::move(vals));
}

} // namespace

Format peek_bro_format(std::istream& in) {
  BRO_CHECK_MSG(read_pod<std::uint32_t>(in) == kMagic,
                "not a BRO serialized stream (bad magic)");
  BRO_CHECK_MSG(read_pod<std::uint32_t>(in) == kVersion,
                "unsupported BRO stream version");
  const auto tag = read_pod<std::uint8_t>(in);
  switch (static_cast<Tag>(tag)) {
    case Tag::kBroEll: return Format::kBroEll;
    case Tag::kBroCoo: return Format::kBroCoo;
    case Tag::kBroHyb: return Format::kBroHyb;
    case Tag::kBroCsr: return Format::kBroCsr;
    case Tag::kBroAns: return Format::kBroAns;
  }
  BRO_CHECK_MSG(false, "unknown format tag " << int(tag));
  return Format::kBroHyb; // unreachable
}

void write_bro_ell(std::ostream& out, const BroEll& m) {
  write_header(out, Tag::kBroEll);
  write_ell_body(out, m);
}

BroEll read_bro_ell(std::istream& in) {
  read_header(in, Tag::kBroEll);
  return read_ell_body(in);
}

void write_bro_ans(std::ostream& out, const BroAns& m) {
  write_header(out, Tag::kBroAns);
  write_ans_body(out, m);
}

BroAns read_bro_ans(std::istream& in) {
  read_header(in, Tag::kBroAns);
  return read_ans_body(in);
}

void write_bro_coo(std::ostream& out, const BroCoo& m) {
  write_header(out, Tag::kBroCoo);
  write_coo_body(out, m);
}

BroCoo read_bro_coo(std::istream& in) {
  read_header(in, Tag::kBroCoo);
  return read_coo_body(in);
}

void write_bro_hyb(std::ostream& out, const BroHyb& m) {
  write_header(out, Tag::kBroHyb);
  write_pod(out, m.rows());
  write_pod(out, m.cols());
  write_pod(out, m.split_width());
  write_pod<std::uint64_t>(out, m.ell_nnz());
  write_ell_body(out, m.ell_part());
  write_coo_body(out, m.coo_part());
}

BroHyb read_bro_hyb(std::istream& in) {
  read_header(in, Tag::kBroHyb);
  const auto rows = read_pod<index_t>(in);
  const auto cols = read_pod<index_t>(in);
  const auto split_width = read_pod<index_t>(in);
  const auto ell_nnz = read_pod<std::uint64_t>(in);
  BroEll ell = read_ell_body(in);
  BroCoo coo = read_coo_body(in);
  return SerializeAccess::make_hyb(rows, cols, split_width, ell_nnz,
                                   std::move(ell), std::move(coo));
}

void write_bro_csr(std::ostream& out, const BroCsr& m) {
  write_header(out, Tag::kBroCsr);
  write_pod(out, m.rows());
  write_pod(out, m.cols());
  write_pod<std::int32_t>(out, m.options().sym_len);
  write_vec(out, m.row_ptr());
  write_vec(out, m.bits_per_row());
  write_vec(out, m.row_sym_ptr());
  write_vec(out, m.vals());
  // Raw bit-string words.
  const bits::BitString& stream = SerializeAccess::csr_stream(m);
  write_pod<std::uint64_t>(out, stream.size_bits());
  write_vec(out, stream.words());
}

BroCsr read_bro_csr(std::istream& in) {
  read_header(in, Tag::kBroCsr);
  const auto rows = read_pod<index_t>(in);
  const auto cols = read_pod<index_t>(in);
  BroCsrOptions opts;
  opts.sym_len = read_pod<std::int32_t>(in);
  auto row_ptr = read_vec<index_t>(in, kSane);
  auto bits_v = read_vec<std::uint8_t>(in, kSane);
  auto sym_ptr = read_vec<std::uint32_t>(in, kSane);
  auto vals = read_vec<value_t>(in, kSane);
  const auto size_bits = read_pod<std::uint64_t>(in);
  auto words = read_vec<std::uint64_t>(in, kSane);
  return SerializeAccess::make_csr(
      rows, cols, opts, std::move(row_ptr), std::move(bits_v),
      std::move(sym_ptr), std::move(vals),
      bits::BitString::from_words(std::move(words), size_bits));
}

void save_bro_ell(const std::string& path, const BroEll& m) {
  std::ofstream out(path, std::ios::binary);
  BRO_CHECK_MSG(out.good(), "cannot open '" << path << "' for writing");
  write_bro_ell(out, m);
}

BroEll load_bro_ell(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  BRO_CHECK_MSG(in.good(), "cannot open '" << path << '\'');
  return read_bro_ell(in);
}

void save_bro_hyb(const std::string& path, const BroHyb& m) {
  std::ofstream out(path, std::ios::binary);
  BRO_CHECK_MSG(out.good(), "cannot open '" << path << "' for writing");
  write_bro_hyb(out, m);
}

BroHyb load_bro_hyb(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  BRO_CHECK_MSG(in.good(), "cannot open '" << path << '\'');
  return read_bro_hyb(in);
}

} // namespace bro::core
