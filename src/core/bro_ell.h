// BRO-ELL: bit-representation-optimized ELLPACK (paper §3.1, Fig. 1).
//
// The ELLPACK col_idx array is delta-encoded row-wise (1-based gaps, 0 =
// padding sentinel), partitioned into slices of `slice_height` rows (one GPU
// thread block each), bit-packed with one bit width per slice column
// (bit_alloc), padded so sym_len divides every row stream, and finally
// multiplexed so thread t reads symbol c*h + t — a coalesced access.
//
// The values array is kept exactly as in ELLPACK (column-major m-by-k);
// BRO compresses index data only. Space savings η = 1 - C/O are therefore
// reported against the ELLPACK index array.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "bits/mux.h"
#include "sparse/ell.h"

namespace bro::core {

struct SerializeAccess;

struct BroEllOptions {
  int slice_height = 256; // h: rows per slice = GPU thread-block size
  int sym_len = 32;       // bits per load during decompression (32 or 64)
  // Floor for every column's bit width (0 = automatic). Used by the Fig. 3
  // experiment to sweep the compression ratio on a dense matrix, where all
  // deltas are 1 and any forced width decodes correctly. Columns needing
  // more bits than the floor still get what they need.
  int forced_bit_width = 0;
};

/// One compressed slice: the per-column bit allocation, the actual column
/// count (num_col), and the multiplexed symbol stream.
struct BroEllSlice {
  index_t first_row = 0;              // first matrix row of the slice
  index_t height = 0;                 // rows in this slice (<= slice_height)
  index_t num_col = 0;                // l_s: valid columns in the slice
  std::vector<std::uint8_t> bit_alloc; // b_1..b_{l_s} (pad bits tracked below)
  int pad_bits = 0;                   // b_p
  bits::MuxedStream stream;
};

class BroEll {
 public:
  /// Offline host-side compression (all Fig. 1 stages).
  static BroEll compress(const sparse::Ell& ell, BroEllOptions opts = {});

  index_t rows() const { return rows_; }
  index_t cols() const { return cols_; }
  index_t width() const { return width_; }
  const BroEllOptions& options() const { return opts_; }
  const std::vector<BroEllSlice>& slices() const { return slices_; }
  const std::vector<value_t>& vals() const { return vals_; }

  /// Decode the column indices of one row (testing / verification path).
  std::vector<index_t> decode_row(index_t row) const;

  /// Full decompression back to ELLPACK (round-trip testing).
  sparse::Ell decompress() const;

  /// y = A * x via the Algorithm-1 decode loop, sequentially per row.
  void spmv(std::span<const value_t> x, std::span<value_t> y) const;

  /// Compressed size of the index data: streams + bit_alloc + num_col.
  std::size_t compressed_index_bytes() const;

  /// Actual heap bytes of the index data as stored (streams at their true
  /// symbol width + bit_alloc + per-slice header). Now that MuxedStream
  /// packs symbols, this coincides with compressed_index_bytes(); it is the
  /// number the plan/PlanCache resident accounting charges.
  std::size_t resident_index_bytes() const;

  /// Original ELLPACK index size (m * k * 4 bytes).
  std::size_t original_index_bytes() const;

  value_t val_at(index_t r, index_t j) const {
    return vals_[static_cast<std::size_t>(j) * rows_ + r];
  }

  friend struct SerializeAccess; // serialization (serialize.cpp)

 private:
  index_t rows_ = 0;
  index_t cols_ = 0;
  index_t width_ = 0;
  BroEllOptions opts_;
  std::vector<BroEllSlice> slices_;
  std::vector<value_t> vals_; // column-major m x k, as in ELLPACK
};

/// Stateful implementation of the Algorithm-1 symbol-buffer decoder for one
/// row stream. Exposed so both the native SpMV and the GPU-simulator kernel
/// share one decode definition; `needs_load()` tells the caller (and the
/// simulator's traffic model) when the next sym_len-bit symbol is consumed.
class RowStreamDecoder {
 public:
  RowStreamDecoder(const BroEllSlice& slice, index_t row_in_slice, int sym_len);

  /// True if decoding the next value will consume a symbol from the stream.
  bool needs_load(int b) const { return b > rb_; }

  /// Decode the next value with bit width b (Algorithm 1 lines 6-16).
  std::uint32_t next(int b);

  /// Symbols consumed so far.
  index_t symbols_loaded() const { return loads_; }

 private:
  const BroEllSlice* slice_;
  index_t row_;
  int sym_len_;
  std::uint64_t sym_ = 0; // buffer, left-aligned in sym_len bits
  int rb_ = 0;            // remaining bits in the buffer
  index_t loads_ = 0;
};

} // namespace bro::core
