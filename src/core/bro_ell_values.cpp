#include "core/bro_ell_values.h"

#include <algorithm>
#include <map>

#include "bits/bit_string.h"
#include "bits/bitwidth.h"
#include "bits/delta.h"
#include "util/error.h"

namespace bro::core {

BroEllValues BroEllValues::compress(const sparse::Ell& ell,
                                    BroEllValuesOptions opts) {
  BroEllValues out;
  out.index_ = BroEll::compress(ell, opts.ell);

  out.values_.reserve(out.index_.slices().size());
  for (const BroEllSlice& slice : out.index_.slices()) {
    ValueSlice vs;
    if (slice.num_col == 0) {
      out.values_.push_back(std::move(vs));
      continue;
    }

    // Collect the slice's values (including padding zeros — they decode to
    // inert FMA operands exactly as in plain BRO-ELL).
    std::map<value_t, std::uint32_t> dict_map;
    bool fits = true;
    for (index_t t = 0; t < slice.height && fits; ++t)
      for (index_t c = 0; c < slice.num_col; ++c) {
        const value_t v = out.index_.val_at(slice.first_row + t, c);
        if (dict_map.emplace(v, 0).second && dict_map.size() > opts.max_dict) {
          fits = false;
          break;
        }
      }

    if (fits && !dict_map.empty()) {
      vs.dict.reserve(dict_map.size());
      std::uint32_t next = 0;
      for (auto& [v, code] : dict_map) {
        code = next++;
        vs.dict.push_back(v);
      }
      vs.code_bits = std::max(
          1, bits::bit_width_of(static_cast<std::uint64_t>(vs.dict.size() - 1)));

      std::vector<bits::BitString> rows(static_cast<std::size_t>(slice.height));
      for (index_t t = 0; t < slice.height; ++t) {
        auto& bs = rows[static_cast<std::size_t>(t)];
        for (index_t c = 0; c < slice.num_col; ++c) {
          const value_t v = out.index_.val_at(slice.first_row + t, c);
          bs.append(dict_map.at(v), vs.code_bits);
        }
        bs.pad_to_multiple(opts.ell.sym_len);
      }
      vs.codes = bits::MuxedStream::interleave(rows, opts.ell.sym_len);
    }
    out.values_.push_back(std::move(vs));
  }
  return out;
}

void BroEllValues::spmv(std::span<const value_t> x,
                        std::span<value_t> y) const {
  BRO_CHECK(x.size() == static_cast<std::size_t>(cols()));
  BRO_CHECK(y.size() == static_cast<std::size_t>(rows()));
  const int sym_len = index_.options().sym_len;

  for (std::size_t si = 0; si < index_.slices().size(); ++si) {
    const BroEllSlice& slice = index_.slices()[si];
    const ValueSlice& vs = values_[si];
    const bool coded = !vs.dict.empty();

    for (index_t t = 0; t < slice.height; ++t) {
      const index_t r = slice.first_row + t;
      RowStreamDecoder dec(slice, t, sym_len);

      // Value-code decoder state (same symbol-buffer discipline).
      std::uint64_t vsym = 0;
      int vrb = 0;
      index_t vloads = 0;
      const auto next_code = [&]() -> std::uint32_t {
        std::uint64_t cbits;
        if (vs.code_bits <= vrb) {
          cbits = (vsym >> (vrb - vs.code_bits)) &
                  bits::max_value_for_bits(vs.code_bits);
          vrb -= vs.code_bits;
        } else {
          const int high = vrb;
          cbits = high > 0 ? (vsym & bits::max_value_for_bits(high)) : 0;
          vsym = vs.codes.at(static_cast<std::size_t>(vloads),
                             static_cast<std::size_t>(t));
          ++vloads;
          vrb = sym_len;
          const int low = vs.code_bits - high;
          cbits = (cbits << low) |
                  ((vsym >> (vrb - low)) & bits::max_value_for_bits(low));
          vrb -= low;
        }
        return static_cast<std::uint32_t>(cbits);
      };

      index_t col = -1;
      value_t sum = 0;
      for (index_t c = 0; c < slice.num_col; ++c) {
        const std::uint32_t d =
            dec.next(slice.bit_alloc[static_cast<std::size_t>(c)]);
        const value_t v = coded ? vs.dict[next_code()]
                                : index_.val_at(r, c);
        if (d != bits::kInvalidDelta) {
          col += static_cast<index_t>(d);
          sum += v * x[static_cast<std::size_t>(col)];
        }
      }
      y[static_cast<std::size_t>(r)] = sum;
    }
  }
}

std::size_t BroEllValues::compressed_value_bytes() const {
  std::size_t total = 0;
  for (std::size_t si = 0; si < values_.size(); ++si) {
    const ValueSlice& vs = values_[si];
    if (vs.dict.empty()) {
      // Raw: the slice reads the ELLPACK values for its num_col columns.
      const BroEllSlice& slice = index_.slices()[si];
      total += static_cast<std::size_t>(slice.height) *
               static_cast<std::size_t>(slice.num_col) * sizeof(value_t);
    } else {
      total += vs.dict.size() * sizeof(value_t) + vs.codes.byte_size() + 2;
    }
  }
  return total;
}

std::size_t BroEllValues::original_value_bytes() const {
  return static_cast<std::size_t>(index_.rows()) *
         static_cast<std::size_t>(index_.width()) * sizeof(value_t);
}

double BroEllValues::dict_slice_fraction() const {
  if (values_.empty()) return 0;
  std::size_t coded = 0;
  for (const auto& vs : values_)
    if (!vs.dict.empty()) ++coded;
  return static_cast<double>(coded) / static_cast<double>(values_.size());
}

} // namespace bro::core
