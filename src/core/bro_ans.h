// BRO-ANS: entropy-coded BRO-ELL (extension beyond the paper).
//
// Same pipeline as BRO-ELL — delta-encode rows (1-based gaps, 0 = padding
// sentinel), slice into `slice_height`-row blocks, pack per-row bit
// strings, multiplex so thread t reads symbol c*h + t — but the fixed
// per-column bit allocation is replaced by a tANS entropy coder over delta
// bit-width classes (bits/ans.h): one normalized frequency table for the
// whole matrix, ~log2(1/p) bits per class plus the mantissa, beating the
// per-column-maximum widths wherever delta widths are skewed.
//
// Interleaved-stream layout (v2, DESIGN.md §10): the rows of a slice are
// partitioned into *lane groups* of kAnsLaneGroup (= 8, the AVX2 u32 SIMD
// width) consecutive rows. Each group is one MuxedStream — symbol c of
// group-lane j lives at flat slot c*gw + j — so a single aligned 8x32-bit
// load feeds all eight ANS states of a group in the vectorized decoder.
// Streams hold nothing but per-symbol fields (bits/ans.h); each row's
// initial decoder state is carried out of band in the slice's init_states
// array (one uint16 offset x0 - L per row). Rows of a group consume
// different bit counts, so each is zero-padded up to the group's longest
// row (rounded to sym_len) before multiplexing — a strictly tighter bound
// than the v1 whole-slice maximum; decoders stop after num_col symbols and
// never read the pad. The values array is ELLPACK's, untouched: like every
// BRO scheme this compresses index data only.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "bits/ans.h"
#include "bits/mux.h"
#include "sparse/ell.h"

namespace bro::core {

struct SerializeAccess;

struct BroAnsOptions {
  int slice_height = 256; // h: rows per slice, as in BRO-ELL
  int sym_len = 32;       // bits per load during decompression (32 or 64)
  int table_log = 10;     // log2 of the ANS table size (4 KiB decode table)
};

/// Rows per interleaved lane group — the AVX2 u32 SIMD width. Slices keep
/// the BRO-ELL slice_height for value layout and row sharding; the lane
/// group is the unit the SIMD decoder consumes.
inline constexpr index_t kAnsLaneGroup = 8;

/// Number of lane groups covering `height` rows.
constexpr index_t ans_num_groups(index_t height) {
  return (height + kAnsLaneGroup - 1) / kAnsLaneGroup;
}

/// Width (row count) of group `g` within a slice of `height` rows — the
/// last group may be partial.
constexpr index_t ans_group_width(index_t height, index_t g) {
  const index_t r0 = g * kAnsLaneGroup;
  return height - r0 < kAnsLaneGroup ? height - r0 : kAnsLaneGroup;
}

/// One compressed slice: the actual column count, the per-row initial ANS
/// states, and one multiplexed fields-only stream per lane group (per-row
/// layout documented in bits/ans.h).
struct BroAnsSlice {
  index_t first_row = 0;
  index_t height = 0;
  index_t num_col = 0; // symbols decoded per row (0: empty streams)
  std::vector<std::uint16_t> init_states; // height entries, x0 - L
  std::vector<bits::MuxedStream> groups;  // ans_num_groups(height) streams
};

class BroAns {
 public:
  static BroAns compress(const sparse::Ell& ell, BroAnsOptions opts = {});

  index_t rows() const { return rows_; }
  index_t cols() const { return cols_; }
  index_t width() const { return width_; }
  const BroAnsOptions& options() const { return opts_; }
  const bits::AnsTable& table() const { return table_; }
  const std::vector<BroAnsSlice>& slices() const { return slices_; }
  const std::vector<value_t>& vals() const { return vals_; }

  /// Decode the column indices of one row (testing / verification path).
  std::vector<index_t> decode_row(index_t row) const;

  /// Full decompression back to ELLPACK (round-trip testing).
  sparse::Ell decompress() const;

  /// y = A * x via the sequential per-row decode loop.
  void spmv(std::span<const value_t> x, std::span<value_t> y) const;

  /// Compressed size of the index data: streams + per-slice num_col + the
  /// serialized frequency table.
  std::size_t compressed_index_bytes() const;

  /// Heap bytes of the index data as resident (decode table included) —
  /// what plan/PlanCache byte accounting charges.
  std::size_t resident_index_bytes() const;

  /// Original ELLPACK index size (m * k * 4 bytes).
  std::size_t original_index_bytes() const;

  value_t val_at(index_t r, index_t j) const {
    return vals_[static_cast<std::size_t>(j) * rows_ + r];
  }

  friend struct SerializeAccess; // serialization (serialize.cpp)

 private:
  index_t rows_ = 0;
  index_t cols_ = 0;
  index_t width_ = 0;
  BroAnsOptions opts_;
  bits::AnsTable table_;
  std::vector<BroAnsSlice> slices_;
  std::vector<value_t> vals_; // column-major m x k, as in ELLPACK
};

} // namespace bro::core
