#include "core/bar.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <unordered_set>

#include "bits/bitwidth.h"
#include "bits/delta.h"
#include "util/error.h"

namespace bro::core {

namespace {

/// Per-row precomputation: delta bit widths and x-vector cache line ids.
struct RowProfile {
  std::vector<std::uint8_t> gamma; // Γ of each delta
  std::vector<std::uint32_t> line; // cache line of each column's x element
};

RowProfile profile_row(const sparse::Csr& csr, index_t r,
                       const BarOptions& opts) {
  RowProfile p;
  const auto cols = csr.row_cols(r);
  const auto deltas = bits::delta_encode_row(cols);
  p.gamma.resize(deltas.size());
  p.line.resize(deltas.size());
  const auto lines_per =
      static_cast<std::uint32_t>(opts.cacheline_bytes / opts.x_element_bytes);
  for (std::size_t j = 0; j < deltas.size(); ++j) {
    p.gamma[j] = static_cast<std::uint8_t>(
        std::max(1, bits::bit_width_of(deltas[j])));
    p.line[j] = static_cast<std::uint32_t>(cols[j]) / lines_per;
  }
  return p;
}

// Per-(cluster, column) cache-line signature: a 1024-bit Bloom filter. The
// width matters — a saturated signature makes every further row look free in
// the c(S, j) term, so the greedy pass would stop preserving x locality.
inline constexpr int kBloomWords = 16; // 1024 bits

struct BloomSig {
  std::uint64_t w[kBloomWords] = {};

  static std::pair<int, std::uint64_t> slot(std::uint32_t line) {
    std::uint64_t x = line;
    x ^= x >> 16;
    x *= 0x45d9f3b;
    x ^= x >> 16;
    const int word = static_cast<int>((x >> 6) % kBloomWords);
    return {word, 1ull << (x & 63)};
  }

  bool contains(std::uint32_t line) const {
    const auto [word, bit] = slot(line);
    return (w[word] & bit) != 0;
  }

  /// Returns true if the line was newly inserted.
  bool insert(std::uint32_t line) {
    const auto [word, bit] = slot(line);
    if (w[word] & bit) return false;
    w[word] |= bit;
    return true;
  }
};

/// Incremental cluster state for the greedy pass.
struct Cluster {
  index_t count = 0;
  std::uint64_t sum_bits = 0;            // Σ_j d(S, j)
  std::uint64_t cache_lines = 0;         // Σ_j c(S, j) (Bloom estimate)
  std::vector<std::uint8_t> d;           // per-column max bit width
  std::vector<BloomSig> bloom;           // per-column line signature

  /// Marginal Eqn. (1) cost (without the constant h/w factor) of adding `p`.
  double marginal_cost(const RowProfile& p, int sym_len) const {
    std::uint64_t extra_bits = 0;
    std::uint64_t extra_lines = 0;
    const std::size_t overlap = std::min(p.gamma.size(), d.size());
    for (std::size_t j = 0; j < overlap; ++j) {
      if (p.gamma[j] > d[j]) extra_bits += p.gamma[j] - d[j];
      if (!bloom[j].contains(p.line[j])) ++extra_lines;
    }
    for (std::size_t j = overlap; j < p.gamma.size(); ++j) {
      extra_bits += p.gamma[j];
      ++extra_lines;
    }
    const double before = std::ceil(static_cast<double>(sum_bits) / sym_len) +
                          static_cast<double>(cache_lines);
    const double after =
        std::ceil(static_cast<double>(sum_bits + extra_bits) / sym_len) +
        static_cast<double>(cache_lines + extra_lines);
    return after - before;
  }

  void add(const RowProfile& p) {
    if (p.gamma.size() > d.size()) {
      d.resize(p.gamma.size(), 0);
      bloom.resize(p.gamma.size());
    }
    for (std::size_t j = 0; j < p.gamma.size(); ++j) {
      if (p.gamma[j] > d[j]) {
        sum_bits += p.gamma[j] - d[j];
        d[j] = p.gamma[j];
      }
      if (bloom[j].insert(p.line[j])) ++cache_lines;
    }
    ++count;
  }
};

} // namespace

double bar_objective(const sparse::Csr& csr, std::span<const index_t> perm,
                     const BarOptions& opts) {
  BRO_CHECK(perm.size() == static_cast<std::size_t>(csr.rows));
  const index_t h = opts.slice_height;
  const double hw = static_cast<double>(h) / opts.warp_size;
  double total = 0;

  // Exact evaluation (hash sets) — used for reporting, not the hot loop.
  for (index_t start = 0; start < csr.rows; start += h) {
    const index_t end = std::min<index_t>(start + h, csr.rows);
    std::vector<std::uint8_t> d;
    std::vector<std::unordered_set<std::uint32_t>> lines;
    for (index_t i = start; i < end; ++i) {
      const RowProfile p = profile_row(csr, perm[static_cast<std::size_t>(i)],
                                       opts);
      if (p.gamma.size() > d.size()) {
        d.resize(p.gamma.size(), 0);
        lines.resize(p.gamma.size());
      }
      for (std::size_t j = 0; j < p.gamma.size(); ++j) {
        d[j] = std::max(d[j], p.gamma[j]);
        lines[j].insert(p.line[j]);
      }
    }
    std::uint64_t sum_bits = 0;
    std::uint64_t cache_lines = 0;
    for (std::size_t j = 0; j < d.size(); ++j) {
      sum_bits += d[j];
      cache_lines += lines[j].size();
    }
    total += hw * (std::ceil(static_cast<double>(sum_bits) / opts.sym_len) +
                   static_cast<double>(cache_lines));
  }
  return total;
}

BarResult bar_reorder(const sparse::Csr& csr, BarOptions opts) {
  BRO_CHECK(opts.slice_height > 0 && opts.warp_size > 0 && opts.sym_len > 0);
  const index_t m = csr.rows;
  BarResult result;
  result.permutation.resize(static_cast<std::size_t>(m));
  std::iota(result.permutation.begin(), result.permutation.end(), 0);
  if (m == 0) return result;

  result.identity_objective = bar_objective(csr, result.permutation, opts);

  const index_t h = opts.slice_height;
  const index_t v = (m + h - 1) / h;

  // Line 2: sort rows by length. Ties broken by row id for determinism.
  std::vector<index_t> sorted(static_cast<std::size_t>(m));
  std::iota(sorted.begin(), sorted.end(), 0);
  std::stable_sort(sorted.begin(), sorted.end(), [&](index_t a, index_t b) {
    return csr.row_length(a) < csr.row_length(b);
  });

  std::vector<Cluster> clusters(static_cast<std::size_t>(v));
  std::vector<std::vector<index_t>> members(static_cast<std::size_t>(v));

  // Precompute profiles once (the greedy pass touches each many times).
  std::vector<RowProfile> profiles(static_cast<std::size_t>(m));
  for (index_t r = 0; r < m; ++r) profiles[static_cast<std::size_t>(r)] =
      profile_row(csr, r, opts);

  // Lines 3-6: seed cluster t with sorted row (t-1)*h+1 — entries spaced h
  // apart so seeds span the row-length range.
  std::vector<bool> placed(static_cast<std::size_t>(m), false);
  for (index_t t = 0; t < v; ++t) {
    const index_t r = sorted[static_cast<std::size_t>(t * h)];
    clusters[static_cast<std::size_t>(t)].add(
        profiles[static_cast<std::size_t>(r)]);
    members[static_cast<std::size_t>(t)].push_back(r);
    placed[static_cast<std::size_t>(r)] = true;
  }

  // Lines 7-13: place each remaining row into the cheapest non-full cluster.
  for (const index_t r : sorted) {
    if (placed[static_cast<std::size_t>(r)]) continue;
    const RowProfile& p = profiles[static_cast<std::size_t>(r)];

    double best_cost = 0;
    index_t best = -1;
    const auto consider = [&](index_t t) {
      Cluster& cl = clusters[static_cast<std::size_t>(t)];
      if (cl.count >= h) return;
      const double cost = cl.marginal_cost(p, opts.sym_len);
      if (best < 0 || cost < best_cost) {
        best_cost = cost;
        best = t;
      }
    };

    if (opts.max_candidates <= 0 || opts.max_candidates >= v) {
      for (index_t t = 0; t < v; ++t) consider(t);
    } else {
      // Evenly spaced subsample, rotated by the row id so all clusters are
      // reachable over the course of the pass.
      const index_t stride = std::max<index_t>(1, v / opts.max_candidates);
      for (index_t s = 0; s < opts.max_candidates + 1; ++s)
        consider((r + s * stride) % v);
      // Always ensure at least one non-full cluster was seen.
      for (index_t t = 0; best < 0 && t < v; ++t) consider(t);
    }

    BRO_CHECK_MSG(best >= 0, "no non-full cluster available");
    clusters[static_cast<std::size_t>(best)].add(p);
    members[static_cast<std::size_t>(best)].push_back(r);
    placed[static_cast<std::size_t>(r)] = true;
  }

  // Emit the clustering as a permutation. The per-column bit allocation of a
  // slice is invariant under any within-cluster row order, so rows inside a
  // cluster are sorted by original index and clusters are ordered by their
  // median row — preserving warp-level x-vector coalescing that the greedy
  // insertion order would otherwise destroy.
  for (auto& mem : members) std::sort(mem.begin(), mem.end());
  std::vector<index_t> cluster_order(static_cast<std::size_t>(v));
  std::iota(cluster_order.begin(), cluster_order.end(), 0);
  std::sort(cluster_order.begin(), cluster_order.end(),
            [&](index_t a, index_t b) {
              const auto& ma = members[static_cast<std::size_t>(a)];
              const auto& mb = members[static_cast<std::size_t>(b)];
              return ma[ma.size() / 2] < mb[mb.size() / 2];
            });
  std::size_t pos = 0;
  for (const index_t t : cluster_order)
    for (const index_t r : members[static_cast<std::size_t>(t)])
      result.permutation[pos++] = r;
  BRO_CHECK(pos == static_cast<std::size_t>(m));

  result.objective = bar_objective(csr, result.permutation, opts);
  return result;
}

} // namespace bro::core
