// bro::core::Matrix — the library's public facade.
//
// Wraps a sparse matrix and lazily materializes any storage format on
// demand, with an auto-selection heuristic mirroring the paper's usage:
// matrices whose ELLPACK padding is modest use BRO-ELL, others BRO-HYB.
//
//   auto A = Matrix::from_file("matrix.mtx");
//   std::vector<double> y(A.rows());
//   A.spmv(x, y);                      // auto-selected BRO format
//   A.spmv(x, y, Format::kEll);        // explicit baseline
//   double eta = A.space_savings();    // index-data compression achieved
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <string>

#include "core/bro_ans.h"
#include "core/bro_bcsr.h"
#include "core/bro_coo.h"
#include "core/bro_csr.h"
#include "core/bro_ell.h"
#include "core/bro_hyb.h"
#include "core/savings.h"
#include "sparse/convert.h"
#include "sparse/stats.h"

namespace bro::core {

enum class Format {
  kCsr,
  kCoo,
  kEll,
  kEllR,
  kHyb,
  kBroEll,
  kBroCoo,
  kBroHyb,
  kBroCsr,  // extension format (see core/bro_csr.h)
  kBroAns,  // extension format (see core/bro_ans.h)
  kBroBcsr, // blocked format (see core/bro_bcsr.h)
};

/// Human-readable format name ("BRO-ELL", ...). Backed by the engine's
/// format registry (engine/format_registry.h), as are spmv dispatch and
/// auto-selection below — linking against bro_engine is required to use
/// the format-generic surface of this facade.
const char* format_name(Format f);

struct MatrixOptions {
  BroEllOptions ell;
  BroCooOptions coo;
  BroAnsOptions ans;
  BroBcsrOptions bcsr;
  /// ELLPACK is considered viable when rows*k <= max_ell_expand * nnz.
  double max_ell_expand = 3.0;
};

class Matrix {
 public:
  static Matrix from_csr(sparse::Csr csr, MatrixOptions opts = {});
  static Matrix from_coo(const sparse::Coo& coo, MatrixOptions opts = {});
  static Matrix from_file(const std::string& mtx_path,
                          MatrixOptions opts = {});

  index_t rows() const { return csr_.rows; }
  index_t cols() const { return csr_.cols; }
  std::size_t nnz() const { return csr_.nnz(); }
  const sparse::Csr& csr() const { return csr_; }
  sparse::MatrixStats stats() const { return sparse::compute_stats(csr_); }

  /// The format auto-selection heuristic (also what spmv() defaults to).
  Format auto_format() const;

  /// y = A * x using the given format (default: auto-selected BRO format).
  void spmv(std::span<const value_t> x, std::span<value_t> y) const;
  void spmv(std::span<const value_t> x, std::span<value_t> y,
            Format format) const;

  /// Index-data space savings achieved by the auto-selected BRO format.
  Savings savings() const;
  double space_savings() const { return savings().eta(); }

  // Lazily-built representations (cached; cheap to call repeatedly).
  const sparse::Ell& ell() const;
  const sparse::EllR& ellr() const;
  const sparse::Coo& coo() const;
  const sparse::Hyb& hyb() const;
  const BroEll& bro_ell() const;
  const BroCoo& bro_coo() const;
  const BroHyb& bro_hyb() const;
  const BroCsr& bro_csr() const;
  const BroAns& bro_ans() const;
  const BroBcsr& bro_bcsr() const;

 private:
  explicit Matrix(sparse::Csr csr, MatrixOptions opts);

  sparse::Csr csr_;
  MatrixOptions opts_;

  // Caches. mutable: building a view does not change the observable matrix.
  mutable std::optional<sparse::Ell> ell_;
  mutable std::optional<sparse::EllR> ellr_;
  mutable std::optional<sparse::Coo> coo_;
  mutable std::optional<sparse::Hyb> hyb_;
  mutable std::optional<BroEll> bro_ell_;
  mutable std::optional<BroCoo> bro_coo_;
  mutable std::optional<BroHyb> bro_hyb_;
  mutable std::optional<BroCsr> bro_csr_;
  mutable std::optional<BroAns> bro_ans_;
  mutable std::optional<BroBcsr> bro_bcsr_;
};

} // namespace bro::core
