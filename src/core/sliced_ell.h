// Sliced-ELLPACK (Monakov et al., HiPEAC'10) — the uncompressed half of
// BRO-ELL. Rows are partitioned into slices of `slice_height`; each slice
// stores its col_idx/vals padded only to the slice's own maximum row length
// (num_col), in slice-local column-major order.
//
// This is implemented both as a baseline from the paper's related work and
// as the key ablation for BRO-ELL: comparing ELLPACK -> Sliced-ELLPACK ->
// BRO-ELL separates how much of BRO-ELL's win comes from per-slice width
// adaptation versus from index compression.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sparse/ell.h"

namespace bro::core {

struct SlicedEllSlice {
  index_t first_row = 0;
  index_t height = 0;
  index_t num_col = 0;
  // Slice-local column-major: entry (t, c) at [c * height + t].
  std::vector<index_t> col_idx;
  std::vector<value_t> vals;
};

class SlicedEll {
 public:
  static SlicedEll build(const sparse::Ell& ell, int slice_height = 256);

  index_t rows() const { return rows_; }
  index_t cols() const { return cols_; }
  int slice_height() const { return slice_height_; }
  const std::vector<SlicedEllSlice>& slices() const { return slices_; }

  /// y = A * x.
  void spmv(std::span<const value_t> x, std::span<value_t> y) const;

  /// Stored index bytes (the quantity BRO-ELL further compresses).
  std::size_t index_bytes() const;

  /// Total stored value bytes.
  std::size_t value_bytes() const;

 private:
  index_t rows_ = 0;
  index_t cols_ = 0;
  int slice_height_ = 256;
  std::vector<SlicedEllSlice> slices_;
};

} // namespace bro::core
