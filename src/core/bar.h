// BAR: BRO-aware matrix reordering (paper §3.4).
//
// Row reordering is posed as equi-partition data clustering: find v = ceil(m/h)
// clusters of at most h rows minimizing Eqn. (1),
//
//   Φ = Σ_i (h/w) * ( ceil(Σ_j d(S_i, j) / α) + Σ_j c(S_i, j) )
//
// where d(S_i, j) is the max delta bit width of column j across the cluster
// (Eqn. 2) and c(S_i, j) counts the unique x-vector cache lines column j
// touches across the cluster (Eqn. 3). Algorithm 2's greedy heuristic seeds
// each cluster with rows spaced h apart in row-length-sorted order, then
// places every remaining row into the cheapest non-full cluster.
//
// The unique-cacheline count uses a 64-bit Bloom signature per cluster column
// (exact sets would dominate the runtime); this only affects the c(.) term's
// estimate, not the correctness of the resulting permutation.
#pragma once

#include <vector>

#include "sparse/csr.h"

namespace bro::core {

struct BarOptions {
  int slice_height = 256;  // h (matches the BRO-ELL slice height)
  int warp_size = 32;      // w
  int sym_len = 32;        // α
  int cacheline_bytes = 128;
  int x_element_bytes = 8; // double-precision input vector
  // 0 = evaluate every non-full cluster per row (Algorithm 2 verbatim);
  // otherwise evaluate this many evenly spaced candidates (large matrices).
  int max_candidates = 0;
};

struct BarResult {
  /// perm[new_row] = old_row. Applying it to the matrix rows yields A' = P*A.
  std::vector<index_t> permutation;
  /// Final value of the Eqn. (1) objective for the produced clustering.
  double objective = 0;
  /// Objective of the identity (unreordered) clustering, for comparison.
  double identity_objective = 0;
};

/// Run Algorithm 2 on the matrix and return the row permutation.
BarResult bar_reorder(const sparse::Csr& csr, BarOptions opts = {});

/// Evaluate the Eqn. (1) objective of an arbitrary row order (rows taken in
/// `perm` order, clustered into consecutive groups of h).
double bar_objective(const sparse::Csr& csr, std::span<const index_t> perm,
                     const BarOptions& opts);

} // namespace bro::core
