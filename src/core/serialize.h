// Binary serialization of the compressed formats.
//
// The paper's deployment model is compress-once-offline, decode-every-
// iteration-online; serialization completes it: a matrix is compressed on
// any host, written as a .bro file, and loaded directly into SpMV-ready form
// without recompression. The encoding is a tagged little-endian stream with
// a magic/version header; malformed input throws std::runtime_error.
#pragma once

#include <iosfwd>
#include <string>

#include "core/bro_coo.h"
#include "core/bro_csr.h"
#include "core/bro_ell.h"
#include "core/bro_hyb.h"

namespace bro::core {

void write_bro_ell(std::ostream& out, const BroEll& m);
BroEll read_bro_ell(std::istream& in);

void write_bro_coo(std::ostream& out, const BroCoo& m);
BroCoo read_bro_coo(std::istream& in);

void write_bro_hyb(std::ostream& out, const BroHyb& m);
BroHyb read_bro_hyb(std::istream& in);

void write_bro_csr(std::ostream& out, const BroCsr& m);
BroCsr read_bro_csr(std::istream& in);

// File-path conveniences.
void save_bro_ell(const std::string& path, const BroEll& m);
BroEll load_bro_ell(const std::string& path);
void save_bro_hyb(const std::string& path, const BroHyb& m);
BroHyb load_bro_hyb(const std::string& path);

} // namespace bro::core
