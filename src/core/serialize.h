// Binary serialization of the compressed formats.
//
// The paper's deployment model is compress-once-offline, decode-every-
// iteration-online; serialization completes it: a matrix is compressed on
// any host, written as a .bro file, and loaded directly into SpMV-ready form
// without recompression. The encoding is a tagged little-endian stream with
// a magic/version header; malformed input throws std::runtime_error.
#pragma once

#include <iosfwd>
#include <string>

#include "core/bro_ans.h"
#include "core/bro_bcsr.h"
#include "core/bro_coo.h"
#include "core/bro_csr.h"
#include "core/bro_ell.h"
#include "core/bro_hyb.h"
#include "core/matrix.h"

namespace bro::core {

/// Read a stream's header and report which format it holds, so callers can
/// dispatch to the matching read_* function — a .bro file carries whichever
/// format `compress --format` wrote, not necessarily BRO-HYB. Validates
/// magic/version/tag (throws on mismatch) and leaves the stream positioned
/// after the header; seek back to the start before calling read_*.
Format peek_bro_format(std::istream& in);

void write_bro_ell(std::ostream& out, const BroEll& m);
BroEll read_bro_ell(std::istream& in);

void write_bro_ans(std::ostream& out, const BroAns& m);
BroAns read_bro_ans(std::istream& in);

void write_bro_coo(std::ostream& out, const BroCoo& m);
BroCoo read_bro_coo(std::istream& in);

void write_bro_hyb(std::ostream& out, const BroHyb& m);
BroHyb read_bro_hyb(std::istream& in);

void write_bro_csr(std::ostream& out, const BroCsr& m);
BroCsr read_bro_csr(std::istream& in);

void write_bro_bcsr(std::ostream& out, const BroBcsr& m);
BroBcsr read_bro_bcsr(std::istream& in);

/// Decompress whichever serialized format the stream holds back to canonical
/// CSR. This is the ONE tag-dispatch site: callers that accept arbitrary
/// .bro payloads (CLI `spmv <file.bro>`, net uploads) route through it
/// instead of switching on formats themselves, so a new tag lands in every
/// consumer automatically. Reports the stream's format via `fmt` when
/// non-null; the stream must be positioned at the header.
sparse::Csr read_bro_to_csr(std::istream& in, Format* fmt = nullptr);

// File-path conveniences.
void save_bro_ell(const std::string& path, const BroEll& m);
BroEll load_bro_ell(const std::string& path);
void save_bro_hyb(const std::string& path, const BroHyb& m);
BroHyb load_bro_hyb(const std::string& path);

} // namespace bro::core
