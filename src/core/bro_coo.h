// BRO-COO: bit-representation-optimized COO (paper §3.2, Fig. 2).
//
// Only the row-index array is compressed. The nnz stream is divided into
// intervals of warp_size * interval_cols entries; each interval is viewed as
// a warp_size-wide 2-D array in which lane j owns entries
// base + c*warp_size + j, so the row index increases monotonically down each
// lane ("the vertical direction"). Lane sequences are delta-encoded against
// the interval's starting row, packed with a single bit width per interval,
// and multiplexed exactly like BRO-ELL row streams.
//
// The trailing partial interval is padded with copies of the last coordinate
// carrying value 0 (a harmless fused multiply-add during SpMV).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <vector>

#include "bits/mux.h"
#include "sparse/coo.h"

namespace bro::core {

struct SerializeAccess;

struct BroCooOptions {
  int warp_size = 32;     // lanes per interval (GPU warp width)
  int interval_cols = 64; // entries per lane; interval = warp_size * this
  int sym_len = 32;
};

struct BroCooInterval {
  index_t start_row = 0; // row index of the interval's first entry
  int bits = 1;          // single bit width used for every delta
  bits::MuxedStream stream;
};

class BroCoo {
 public:
  /// Offline compression. Requires canonical (row-sorted) COO.
  static BroCoo compress(const sparse::Coo& coo, BroCooOptions opts = {});

  index_t rows() const { return rows_; }
  index_t cols() const { return cols_; }
  std::size_t nnz() const { return nnz_; }                 // real entries
  std::size_t padded_nnz() const { return col_idx_.size(); } // incl. padding
  const BroCooOptions& options() const { return opts_; }
  const std::vector<BroCooInterval>& intervals() const { return intervals_; }
  const std::vector<index_t>& col_idx() const { return col_idx_; }
  const std::vector<value_t>& vals() const { return vals_; }

  /// Decode all row indices (testing path); returns padded_nnz entries in
  /// stream order.
  std::vector<index_t> decode_rows() const;

  /// y += A * x (accumulating, matching the GPU kernel's semantics where the
  /// COO part runs after the ELL part in HYB). Callers wanting y = A*x must
  /// zero y first.
  void spmv_accumulate(std::span<const value_t> x, std::span<value_t> y) const;

  /// Compressed bytes of the row-index data (streams + per-interval header).
  std::size_t compressed_row_bytes() const;

  /// Actual heap bytes of the row-index data as stored. Coincides with
  /// compressed_row_bytes() now that MuxedStream packs symbols at their
  /// true width; feeds the plan/PlanCache resident accounting.
  std::size_t resident_row_bytes() const;

  /// Original row-index bytes (nnz * 4, unpadded).
  std::size_t original_row_bytes() const { return nnz_ * sizeof(index_t); }

  friend struct SerializeAccess; // serialization (serialize.cpp)

 private:
  index_t rows_ = 0;
  index_t cols_ = 0;
  std::size_t nnz_ = 0;
  BroCooOptions opts_;
  std::vector<BroCooInterval> intervals_;
  std::vector<index_t> col_idx_; // uncompressed, padded
  std::vector<value_t> vals_;    // uncompressed, padded
};

} // namespace bro::core
