#include "core/bro_ans.h"

#include <algorithm>

#include "bits/bitwidth.h"
#include "bits/delta.h"
#include "util/error.h"

namespace bro::core {

namespace {

/// Sequential MSB-first reader over one lane of a muxed stream — the same
/// b <= rb load rule as RowStreamDecoder / LaneDecoder, against which the
/// kernels are bitwise-fuzzed.
class AnsLaneReader {
 public:
  AnsLaneReader(const bits::MuxedStream& stream, index_t row, int sym_len)
      : stream_(&stream), row_(row), sym_len_(sym_len) {}

  std::uint32_t next(int b) {
    std::uint64_t decoded;
    if (b <= rb_) {
      decoded = b > 0 ? (sym_ >> (rb_ - b)) & bits::max_value_for_bits(b) : 0;
      rb_ -= b;
    } else {
      const int high = rb_;
      decoded = high > 0 ? (sym_ & bits::max_value_for_bits(high)) : 0;
      sym_ = stream_->at(static_cast<std::size_t>(loads_),
                         static_cast<std::size_t>(row_));
      ++loads_;
      const int low = b - high;
      decoded = (decoded << low) |
                ((sym_ >> (sym_len_ - low)) & bits::max_value_for_bits(low));
      rb_ = sym_len_ - low;
    }
    return static_cast<std::uint32_t>(decoded);
  }

 private:
  const bits::MuxedStream* stream_;
  index_t row_;
  int sym_len_;
  std::uint64_t sym_ = 0;
  int rb_ = 0;
  index_t loads_ = 0;
};

} // namespace

BroAns BroAns::compress(const sparse::Ell& ell, BroAnsOptions opts) {
  BRO_CHECK_MSG(opts.slice_height > 0, "slice height must be positive");
  BRO_CHECK_MSG(opts.sym_len == 32 || opts.sym_len == 64,
                "sym_len must be 32 or 64");

  BroAns out;
  out.rows_ = ell.rows;
  out.cols_ = ell.cols;
  out.width_ = ell.width;
  out.opts_ = opts;
  out.vals_ = ell.vals;

  const index_t h = opts.slice_height;
  const index_t num_slices = ell.rows == 0 ? 0 : (ell.rows + h - 1) / h;
  out.slices_.resize(static_cast<std::size_t>(num_slices));

  // Pass 1: delta-encode every row, fix each slice's column count, and
  // histogram the delta bit-width classes (padding slots count as class 0 —
  // they are coded too, exactly like BRO-ELL's sentinel deltas).
  std::vector<std::vector<std::vector<std::uint32_t>>> deltas(
      static_cast<std::size_t>(num_slices));
  std::vector<std::uint64_t> histogram(bits::AnsTable::kNumClasses, 0);
  for (index_t s = 0; s < num_slices; ++s) {
    BroAnsSlice& slice = out.slices_[static_cast<std::size_t>(s)];
    slice.first_row = s * h;
    slice.height = std::min<index_t>(h, ell.rows - slice.first_row);
    auto& slice_deltas = deltas[static_cast<std::size_t>(s)];
    slice_deltas.assign(static_cast<std::size_t>(slice.height), {});
    slice.num_col = 0;
    for (index_t t = 0; t < slice.height; ++t) {
      const index_t r = slice.first_row + t;
      index_t len = 0;
      while (len < ell.width && ell.col_at(r, len) != sparse::kPad) ++len;
      std::vector<index_t> row_cols(static_cast<std::size_t>(len));
      for (index_t j = 0; j < len; ++j) row_cols[j] = ell.col_at(r, j);
      slice_deltas[static_cast<std::size_t>(t)] =
          bits::delta_encode_row(row_cols);
      slice.num_col = std::max(slice.num_col, len);
    }
    for (index_t t = 0; t < slice.height; ++t) {
      const auto& d = slice_deltas[static_cast<std::size_t>(t)];
      for (index_t c = 0; c < slice.num_col; ++c) {
        const std::uint32_t v = static_cast<std::size_t>(c) < d.size()
                                    ? d[static_cast<std::size_t>(c)]
                                    : bits::kInvalidDelta;
        ++histogram[static_cast<std::size_t>(bits::ans_class_of(v))];
      }
    }
  }
  out.table_ = bits::AnsTable::from_histogram(histogram, opts.table_log);

  // Pass 2: entropy-code each row against the shared table into a
  // fields-only stream (the initial state goes to init_states), then pad
  // every row of a lane group to the group's longest stream (entropy-coded
  // rows differ in length; the mux requires equal symbol counts) and
  // multiplex group by group. Group-local padding is what keeps the
  // interleaved layout competitive: the pad bound is the max over 8 rows,
  // not over the whole slice.
  std::vector<bits::AnsEncSym> scratch;
  std::vector<std::uint32_t> padded;
  for (index_t s = 0; s < num_slices; ++s) {
    BroAnsSlice& slice = out.slices_[static_cast<std::size_t>(s)];
    const auto& slice_deltas = deltas[static_cast<std::size_t>(s)];
    const index_t num_groups = ans_num_groups(slice.height);
    slice.init_states.assign(static_cast<std::size_t>(slice.height), 0);
    slice.groups.resize(static_cast<std::size_t>(num_groups));
    for (index_t g = 0; g < num_groups; ++g) {
      const index_t gw = ans_group_width(slice.height, g);
      if (slice.num_col == 0) {
        slice.groups[static_cast<std::size_t>(g)] =
            bits::MuxedStream(opts.sym_len, static_cast<std::size_t>(gw), 0);
        continue;
      }
      std::vector<bits::BitString> row_streams(static_cast<std::size_t>(gw));
      std::size_t max_bits = 0;
      for (index_t j = 0; j < gw; ++j) {
        const index_t t = g * kAnsLaneGroup + j;
        const auto& d = slice_deltas[static_cast<std::size_t>(t)];
        padded.assign(static_cast<std::size_t>(slice.num_col),
                      bits::kInvalidDelta);
        std::copy(d.begin(), d.end(), padded.begin());
        auto& bs = row_streams[static_cast<std::size_t>(j)];
        slice.init_states[static_cast<std::size_t>(t)] =
            static_cast<std::uint16_t>(
                bits::ans_encode_row_split(out.table_, padded, scratch, bs));
        max_bits = std::max(max_bits, bs.size_bits());
      }
      const std::size_t sym_len = static_cast<std::size_t>(opts.sym_len);
      const std::size_t target_bits =
          (max_bits + sym_len - 1) / sym_len * sym_len;
      for (auto& bs : row_streams) {
        while (bs.size_bits() < target_bits) {
          const std::size_t gap = target_bits - bs.size_bits();
          bs.append(0, static_cast<int>(std::min<std::size_t>(64, gap)));
        }
      }
      slice.groups[static_cast<std::size_t>(g)] =
          bits::MuxedStream::interleave(row_streams, opts.sym_len);
    }
  }
  return out;
}

std::vector<index_t> BroAns::decode_row(index_t row) const {
  BRO_CHECK(row >= 0 && row < rows_);
  const auto& slice =
      slices_[static_cast<std::size_t>(row / opts_.slice_height)];
  const index_t t = row - slice.first_row;
  std::vector<index_t> cols;
  if (slice.num_col == 0) return cols;
  const index_t g = t / kAnsLaneGroup;
  AnsLaneReader rd(slice.groups[static_cast<std::size_t>(g)],
                   t % kAnsLaneGroup, opts_.sym_len);
  const int tl = table_.table_log();
  std::uint32_t x =
      (1u << tl) + slice.init_states[static_cast<std::size_t>(t)];
  index_t acc = -1;
  for (index_t c = 0; c < slice.num_col; ++c) {
    const std::uint32_t e = table_.entry(x);
    const int cls = bits::AnsTable::entry_class(e);
    const int nb = bits::AnsTable::entry_bits(e);
    const std::uint32_t mantissa = cls > 0 ? rd.next(cls - 1) : 0;
    const std::uint32_t state_bits = rd.next(nb);
    x = bits::AnsTable::entry_base(e) + state_bits;
    if (cls == 0) continue;
    acc += static_cast<index_t>((1u << (cls - 1)) | mantissa);
    cols.push_back(acc);
  }
  return cols;
}

sparse::Ell BroAns::decompress() const {
  sparse::Ell out;
  out.rows = rows_;
  out.cols = cols_;
  out.width = width_;
  out.col_idx.assign(static_cast<std::size_t>(rows_) * width_, sparse::kPad);
  out.vals = vals_;
  for (index_t r = 0; r < rows_; ++r) {
    const std::vector<index_t> cols = decode_row(r);
    for (std::size_t j = 0; j < cols.size(); ++j)
      out.col_idx[j * static_cast<std::size_t>(rows_) + r] = cols[j];
  }
  return out;
}

void BroAns::spmv(std::span<const value_t> x, std::span<value_t> y) const {
  BRO_CHECK(x.size() == static_cast<std::size_t>(cols_));
  BRO_CHECK(y.size() == static_cast<std::size_t>(rows_));
  const int tl = table_.table_log();
  for (const BroAnsSlice& slice : slices_) {
    for (index_t t = 0; t < slice.height; ++t) {
      const index_t r = slice.first_row + t;
      value_t sum = 0;
      if (slice.num_col > 0) {
        AnsLaneReader rd(slice.groups[static_cast<std::size_t>(t / kAnsLaneGroup)],
                         t % kAnsLaneGroup, opts_.sym_len);
        std::uint32_t st =
            (1u << tl) + slice.init_states[static_cast<std::size_t>(t)];
        index_t col = -1;
        for (index_t c = 0; c < slice.num_col; ++c) {
          const std::uint32_t e = table_.entry(st);
          const int cls = bits::AnsTable::entry_class(e);
          const int nb = bits::AnsTable::entry_bits(e);
          const std::uint32_t mantissa = cls > 0 ? rd.next(cls - 1) : 0;
          const std::uint32_t state_bits = rd.next(nb);
          st = bits::AnsTable::entry_base(e) + state_bits;
          if (cls == 0) continue;
          col += static_cast<index_t>((1u << (cls - 1)) | mantissa);
          sum += val_at(r, c) * x[static_cast<std::size_t>(col)];
        }
      }
      y[static_cast<std::size_t>(r)] = sum;
    }
  }
}

std::size_t BroAns::compressed_index_bytes() const {
  std::size_t total = table_.serialized_bytes();
  for (const auto& s : slices_) {
    for (const auto& g : s.groups) total += g.byte_size();
    total += s.init_states.size() * sizeof(std::uint16_t);
    total += sizeof(index_t); // num_col entry
  }
  return total;
}

std::size_t BroAns::resident_index_bytes() const {
  std::size_t total = table_.resident_bytes();
  for (const auto& s : slices_) {
    for (const auto& g : s.groups) total += g.resident_bytes();
    total += s.init_states.size() * sizeof(std::uint16_t);
    total += sizeof(index_t);
  }
  return total;
}

std::size_t BroAns::original_index_bytes() const {
  return static_cast<std::size_t>(rows_) * static_cast<std::size_t>(width_) *
         sizeof(index_t);
}

} // namespace bro::core
