#include "core/bro_ell.h"

#include <algorithm>

#include "bits/bitwidth.h"
#include "bits/delta.h"
#include "util/error.h"

namespace bro::core {

namespace {

std::uint64_t field_mask(int sym_len) {
  return sym_len >= 64 ? ~0ull : ((1ull << sym_len) - 1);
}

} // namespace

RowStreamDecoder::RowStreamDecoder(const BroEllSlice& slice,
                                   index_t row_in_slice, int sym_len)
    : slice_(&slice), row_(row_in_slice), sym_len_(sym_len) {}

std::uint32_t RowStreamDecoder::next(int b) {
  // Top-of-register extraction: sym[0:q] of Algorithm 1.
  const auto take = [&](int q) -> std::uint64_t {
    if (q <= 0) return 0;
    return (sym_ >> (sym_len_ - q)) & bits::max_value_for_bits(q);
  };
  const auto shift_out = [&](int q) {
    sym_ = (q >= 64 ? 0 : (sym_ << q)) & field_mask(sym_len_);
  };

  // Algorithm 1 uses the strict test `b < rb`, which loads a symbol even
  // when the value exactly drains the buffer — over-reading the stream by
  // one symbol on exact-fit rows. We use b <= rb, which decodes identically,
  // preserves warp-uniform control flow (rb evolves the same in all lanes),
  // and reads exactly ceil(sum(bit_alloc)/sym_len) symbols per row.
  std::uint64_t decoded;
  if (b <= rb_) {
    decoded = take(b);
    shift_out(b);
    rb_ -= b;
  } else {
    // Drain the buffer, then split the value across the freshly loaded
    // symbol (high part came from the old buffer).
    decoded = take(rb_);
    const int b2 = b - rb_;
    sym_ = slice_->stream.at(static_cast<std::size_t>(loads_),
                             static_cast<std::size_t>(row_)) &
           field_mask(sym_len_);
    ++loads_;
    decoded = (decoded << b2) | ((b2 > 0) ? ((sym_ >> (sym_len_ - b2)) &
                                             bits::max_value_for_bits(b2))
                                          : 0);
    shift_out(b2);
    rb_ = sym_len_ - b2;
  }
  return static_cast<std::uint32_t>(decoded);
}

BroEll BroEll::compress(const sparse::Ell& ell, BroEllOptions opts) {
  BRO_CHECK_MSG(opts.slice_height > 0, "slice height must be positive");
  BRO_CHECK_MSG(opts.sym_len == 32 || opts.sym_len == 64,
                "sym_len must be 32 or 64");
  BRO_CHECK_MSG(opts.forced_bit_width >= 0 && opts.forced_bit_width <= 32,
                "forced_bit_width must be in [0, 32]");

  BroEll out;
  out.rows_ = ell.rows;
  out.cols_ = ell.cols;
  out.width_ = ell.width;
  out.opts_ = opts;
  out.vals_ = ell.vals;

  const index_t h = opts.slice_height;
  const index_t num_slices = ell.rows == 0 ? 0 : (ell.rows + h - 1) / h;
  out.slices_.reserve(static_cast<std::size_t>(num_slices));

  std::vector<std::vector<std::uint32_t>> deltas; // per row in slice
  for (index_t s = 0; s < num_slices; ++s) {
    BroEllSlice slice;
    slice.first_row = s * h;
    slice.height = std::min<index_t>(h, ell.rows - slice.first_row);

    // Stage 1: delta-encode each row of the slice (Fig. 1 "delta encoding").
    deltas.assign(static_cast<std::size_t>(slice.height), {});
    slice.num_col = 0;
    for (index_t t = 0; t < slice.height; ++t) {
      const index_t r = slice.first_row + t;
      index_t len = 0;
      while (len < ell.width && ell.col_at(r, len) != sparse::kPad) ++len;
      std::vector<index_t> row_cols(static_cast<std::size_t>(len));
      for (index_t j = 0; j < len; ++j) row_cols[j] = ell.col_at(r, j);
      deltas[static_cast<std::size_t>(t)] = bits::delta_encode_row(row_cols);
      slice.num_col = std::max(slice.num_col, len);
    }

    // Stage 2: per-column bit allocation (Fig. 1 "bit packing").
    slice.bit_alloc.assign(static_cast<std::size_t>(slice.num_col), 1);
    for (index_t c = 0; c < slice.num_col; ++c) {
      // Every valid column holds at least one 1-bit delta; forced_bit_width
      // raises the floor for compression-ratio sweeps.
      int b = std::max(1, opts.forced_bit_width);
      for (index_t t = 0; t < slice.height; ++t) {
        const auto& d = deltas[static_cast<std::size_t>(t)];
        if (static_cast<std::size_t>(c) < d.size())
          b = std::max(b, bits::bit_width_of(d[static_cast<std::size_t>(c)]));
      }
      slice.bit_alloc[static_cast<std::size_t>(c)] =
          static_cast<std::uint8_t>(b);
    }

    // Stage 3: build per-row bit strings (padding rows emit delta 0) and pad
    // each to a sym_len multiple. Every row appends the same total bit count,
    // so pad_bits is identical across rows by construction.
    std::vector<bits::BitString> row_streams(
        static_cast<std::size_t>(slice.height));
    for (index_t t = 0; t < slice.height; ++t) {
      auto& bs = row_streams[static_cast<std::size_t>(t)];
      const auto& d = deltas[static_cast<std::size_t>(t)];
      for (index_t c = 0; c < slice.num_col; ++c) {
        const std::uint32_t v = static_cast<std::size_t>(c) < d.size()
                                    ? d[static_cast<std::size_t>(c)]
                                    : bits::kInvalidDelta;
        bs.append(v, slice.bit_alloc[static_cast<std::size_t>(c)]);
      }
      slice.pad_bits = bs.pad_to_multiple(opts.sym_len);
    }

    // Stage 4: multiplex the row streams (Fig. 1 final stage).
    if (slice.num_col > 0) {
      slice.stream = bits::MuxedStream::interleave(row_streams, opts.sym_len);
    } else {
      slice.stream = bits::MuxedStream(opts.sym_len,
                                       static_cast<std::size_t>(slice.height), 0);
    }
    out.slices_.push_back(std::move(slice));
  }
  return out;
}

std::vector<index_t> BroEll::decode_row(index_t row) const {
  BRO_CHECK(row >= 0 && row < rows_);
  const auto& slice = slices_[static_cast<std::size_t>(row / opts_.slice_height)];
  const index_t t = row - slice.first_row;
  RowStreamDecoder dec(slice, t, opts_.sym_len);
  std::vector<index_t> cols;
  index_t acc = -1;
  for (index_t c = 0; c < slice.num_col; ++c) {
    const std::uint32_t d = dec.next(slice.bit_alloc[static_cast<std::size_t>(c)]);
    if (d == bits::kInvalidDelta) continue;
    acc += static_cast<index_t>(d);
    cols.push_back(acc);
  }
  return cols;
}

sparse::Ell BroEll::decompress() const {
  sparse::Ell out;
  out.rows = rows_;
  out.cols = cols_;
  out.width = width_;
  out.col_idx.assign(static_cast<std::size_t>(rows_) * width_, sparse::kPad);
  out.vals = vals_;
  for (index_t r = 0; r < rows_; ++r) {
    const std::vector<index_t> cols = decode_row(r);
    for (std::size_t j = 0; j < cols.size(); ++j)
      out.col_idx[j * static_cast<std::size_t>(rows_) + r] = cols[j];
  }
  return out;
}

void BroEll::spmv(std::span<const value_t> x, std::span<value_t> y) const {
  BRO_CHECK(x.size() == static_cast<std::size_t>(cols_));
  BRO_CHECK(y.size() == static_cast<std::size_t>(rows_));
  for (const BroEllSlice& slice : slices_) {
    for (index_t t = 0; t < slice.height; ++t) {
      const index_t r = slice.first_row + t;
      RowStreamDecoder dec(slice, t, opts_.sym_len);
      index_t col = -1;
      value_t sum = 0;
      for (index_t c = 0; c < slice.num_col; ++c) {
        const std::uint32_t d =
            dec.next(slice.bit_alloc[static_cast<std::size_t>(c)]);
        if (d != bits::kInvalidDelta) {
          col += static_cast<index_t>(d);
          sum += val_at(r, c) * x[static_cast<std::size_t>(col)];
        }
      }
      y[static_cast<std::size_t>(r)] = sum;
    }
  }
}

std::size_t BroEll::compressed_index_bytes() const {
  std::size_t total = 0;
  for (const auto& s : slices_) {
    total += s.stream.byte_size();
    total += s.bit_alloc.size();  // one byte per column's bit width
    total += sizeof(index_t);     // num_col entry
  }
  return total;
}

std::size_t BroEll::resident_index_bytes() const {
  std::size_t total = 0;
  for (const auto& s : slices_) {
    total += s.stream.resident_bytes();
    total += s.bit_alloc.size();
    total += sizeof(index_t);
  }
  return total;
}

std::size_t BroEll::original_index_bytes() const {
  return static_cast<std::size_t>(rows_) * static_cast<std::size_t>(width_) *
         sizeof(index_t);
}

} // namespace bro::core
