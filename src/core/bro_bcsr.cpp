#include "core/bro_bcsr.h"

#include <algorithm>
#include <limits>

#include "bits/bitwidth.h"
#include "bits/delta.h"
#include "util/error.h"

namespace bro::core {

namespace {

// Relative cost the best blocked cover must stay under versus the unblocked
// baseline: hysteresis so matrices that are only marginally blocked keep
// BRO-ELL (whose decode is the more mature path). The fill floor is the
// structural discriminator (run-structured matrices never cover densely);
// this margin additionally demands the cover actually pays for itself.
// Truss-FEM assemblies stay under 0.48 on this ratio from 1/16 generator
// scale up (and fall with size), so 0.7 leaves real headroom.
constexpr double kBcsrSavingsMargin = 0.7;

void check_shape(int br, int bc) {
  BRO_CHECK_MSG(br >= 1 && br <= 8, "block_rows must be in [1, 8]");
  BRO_CHECK_MSG(bc == 1 || bc == 2 || bc == 4 || bc == 8,
                "block_cols must divide 8");
}

/// Walk the block rows of an r x c cover in order, materializing one block
/// row's ascending unique block-column list at a time (cursor merge over the
/// r member rows; each CSR row is sorted).
template <typename Fn>
void for_each_block_row(const sparse::Csr& csr, int br, int bc, Fn&& fn) {
  const index_t nbrows = csr.rows == 0 ? 0 : (csr.rows + br - 1) / br;
  std::vector<index_t> bcols;
  std::array<index_t, 8> p{}, e{};
  for (index_t brow = 0; brow < nbrows; ++brow) {
    const index_t r0 = brow * br;
    const int rh = static_cast<int>(std::min<index_t>(br, csr.rows - r0));
    for (int i = 0; i < rh; ++i) {
      p[static_cast<std::size_t>(i)] = csr.row_ptr[static_cast<std::size_t>(r0 + i)];
      e[static_cast<std::size_t>(i)] = csr.row_ptr[static_cast<std::size_t>(r0 + i) + 1];
    }
    bcols.clear();
    for (;;) {
      index_t next = std::numeric_limits<index_t>::max();
      for (int i = 0; i < rh; ++i) {
        const auto ui = static_cast<std::size_t>(i);
        if (p[ui] < e[ui])
          next = std::min(next, csr.col_idx[static_cast<std::size_t>(p[ui])] /
                                    bc);
      }
      if (next == std::numeric_limits<index_t>::max()) break;
      bcols.push_back(next);
      for (int i = 0; i < rh; ++i) {
        auto& pi = p[static_cast<std::size_t>(i)];
        const index_t ei = e[static_cast<std::size_t>(i)];
        while (pi < ei &&
               csr.col_idx[static_cast<std::size_t>(pi)] / bc == next)
          ++pi;
      }
    }
    fn(brow, rh, bcols);
  }
}

/// Exact packed-stream cost of slicing `lists` of (block-)column indices the
/// BRO-ELL way: per-slice-column bit allocation over the 1-based deltas,
/// per-row padding to a sym_len multiple, plus bit_alloc and num_col header
/// bytes per slice. Streams one slice of state at a time.
struct SliceCostAccum {
  int slice_height;
  int sym_len;
  std::size_t bits = 0;
  std::size_t value_slots = 0; // slices' height * num_col (TILES, not bytes)

  // current slice state
  index_t in_slice = 0;
  index_t num_col = 0;
  std::vector<int> width = {}; // per slice column, floor 1

  void add_row(std::span<const index_t> cols) {
    const auto deltas = bits::delta_encode_row(cols);
    if (static_cast<index_t>(deltas.size()) > num_col) {
      num_col = static_cast<index_t>(deltas.size());
      width.resize(static_cast<std::size_t>(num_col), 1);
    }
    for (std::size_t j = 0; j < deltas.size(); ++j)
      width[j] = std::max(width[j], bits::bit_width_of(deltas[j]));
    if (++in_slice == slice_height) flush();
  }

  void flush() {
    if (in_slice == 0) return;
    std::size_t row_bits = 0;
    for (index_t j = 0; j < num_col; ++j)
      row_bits += static_cast<std::size_t>(width[static_cast<std::size_t>(j)]);
    const auto sym = static_cast<std::size_t>(sym_len);
    row_bits = (row_bits + sym - 1) / sym * sym;
    bits += static_cast<std::size_t>(in_slice) * row_bits;
    bits += 8 * (static_cast<std::size_t>(num_col) + sizeof(index_t));
    value_slots +=
        static_cast<std::size_t>(in_slice) * static_cast<std::size_t>(num_col);
    in_slice = 0;
    num_col = 0;
    width.clear();
  }
};

} // namespace

BcsrAnalysis analyze_bro_bcsr(const sparse::Csr& csr,
                              const BroBcsrOptions& opts) {
  BRO_CHECK_MSG(opts.slice_height > 0, "slice height must be positive");
  BRO_CHECK_MSG(opts.sym_len == 32 || opts.sym_len == 64,
                "sym_len must be 32 or 64");

  BcsrAnalysis out;
  out.ell_value_slots = static_cast<std::size_t>(csr.rows) *
                        static_cast<std::size_t>(csr.max_row_length());

  // Unblocked baseline: the exact BRO-ELL index stream cost of the rows.
  {
    SliceCostAccum acc{opts.slice_height, opts.sym_len};
    for (index_t r = 0; r < csr.rows; ++r) acc.add_row(csr.row_cols(r));
    acc.flush();
    out.ell_index_bits = acc.bits;
  }

  for (const auto& [br, bc] : kBcsrCandidateShapes) {
    BcsrShapeStats s;
    s.br = br;
    s.bc = bc;
    SliceCostAccum acc{opts.slice_height, opts.sym_len};
    for_each_block_row(csr, br, bc,
                       [&](index_t, int, const std::vector<index_t>& bcols) {
                         s.blocks += bcols.size();
                         acc.add_row(bcols);
                       });
    acc.flush();
    s.index_bits = acc.bits;
    s.value_slots = acc.value_slots * static_cast<std::size_t>(br) *
                    static_cast<std::size_t>(bc);
    const std::size_t tile_entries =
        s.blocks * static_cast<std::size_t>(br) * static_cast<std::size_t>(bc);
    s.fill = tile_entries == 0
                 ? 0.0
                 : static_cast<double>(csr.nnz()) /
                       static_cast<double>(tile_entries);
    // Fill charge: every tile value slot beyond the nnz a plain CSR value
    // array would hold costs a stored double. Charging against nnz (not the
    // ELLPACK slot count, which one heavy row can inflate without bound)
    // makes the shape choice weigh fill-in directly: halving the index bits
    // never justifies doubling the explicit zeros.
    const std::size_t excess =
        s.value_slots > csr.nnz() ? s.value_slots - csr.nnz() : 0;
    s.cost_bytes = (s.index_bits + 7) / 8 + sizeof(value_t) * excess;
    out.shapes.push_back(s);
  }

  if (csr.rows > 0) {
    out.best = 0;
    for (int i = 1; i < static_cast<int>(out.shapes.size()); ++i)
      if (out.shapes[static_cast<std::size_t>(i)].cost_bytes <
          out.shapes[static_cast<std::size_t>(out.best)].cost_bytes)
        out.best = i;
  }
  return out;
}

bool bro_bcsr_applicable(const sparse::Csr& csr, double max_ell_expand,
                         const BroBcsrOptions& opts) {
  if (csr.rows == 0 || csr.cols == 0 || csr.nnz() == 0) return false;
  const BcsrAnalysis a = analyze_bro_bcsr(csr, opts);
  if (a.best < 0) return false;
  const BcsrShapeStats& s = a.shapes[static_cast<std::size_t>(a.best)];
  if (s.fill < opts.min_fill) return false;
  if (static_cast<double>(s.value_slots) >
      max_ell_expand * static_cast<double>(csr.nnz()))
    return false;
  // Same accounting as the blocked cover: index bytes plus a stored double
  // per value slot beyond nnz (the ELL padding). With both sides charged for
  // their padding, a blocked cover only wins when its fill-in is cheaper
  // than the row-length-variance padding it removes — which keeps BRO-BCSR
  // off the near-uniform Test Set 1 matrices automatically.
  const std::size_t ell_excess = a.ell_value_slots > csr.nnz()
                                     ? a.ell_value_slots - csr.nnz()
                                     : 0;
  const std::size_t baseline =
      (a.ell_index_bits + 7) / 8 + sizeof(value_t) * ell_excess;
  return static_cast<double>(s.cost_bytes) <
         kBcsrSavingsMargin * static_cast<double>(baseline);
}

BroBcsr BroBcsr::compress(const sparse::Csr& csr, BroBcsrOptions opts) {
  BRO_CHECK_MSG(opts.slice_height > 0, "slice height must be positive");
  BRO_CHECK_MSG(opts.sym_len == 32 || opts.sym_len == 64,
                "sym_len must be 32 or 64");
  BRO_CHECK_MSG((opts.block_rows == 0) == (opts.block_cols == 0),
                "block_rows and block_cols must be forced together");
  BRO_CHECK_MSG(csr.is_valid(), "BroBcsr::compress needs a valid CSR");

  int br = opts.block_rows, bc = opts.block_cols;
  if (br == 0) {
    const BcsrAnalysis a = analyze_bro_bcsr(csr, opts);
    if (a.best >= 0) {
      br = a.shapes[static_cast<std::size_t>(a.best)].br;
      bc = a.shapes[static_cast<std::size_t>(a.best)].bc;
    } else {
      br = kBcsrCandidateShapes[0].first;
      bc = kBcsrCandidateShapes[0].second;
    }
  }
  check_shape(br, bc);

  BroBcsr out;
  out.rows_ = csr.rows;
  out.cols_ = csr.cols;
  out.br_ = br;
  out.bc_ = bc;
  out.block_rows_ = csr.rows == 0 ? 0 : (csr.rows + br - 1) / br;
  out.ell_width_ = csr.max_row_length();
  out.nnz_ = csr.nnz();
  out.opts_ = opts;

  const index_t h = opts.slice_height;
  const index_t num_slices =
      out.block_rows_ == 0 ? 0 : (out.block_rows_ + h - 1) / h;
  out.slices_.reserve(static_cast<std::size_t>(num_slices));
  out.val_off_.reserve(static_cast<std::size_t>(num_slices));

  // The block cover, one slice of block rows at a time.
  std::vector<std::vector<index_t>> slice_bcols;
  index_t next_brow = 0;
  const auto tile = static_cast<std::size_t>(br) * static_cast<std::size_t>(bc);

  for_each_block_row(
      csr, br, bc, [&](index_t brow, int, const std::vector<index_t>& bcols) {
        slice_bcols.push_back(bcols);
        next_brow = brow + 1;
        const bool slice_done =
            next_brow == out.block_rows_ || next_brow % h == 0;
        if (!slice_done) return;

        BroEllSlice slice;
        slice.height = static_cast<index_t>(slice_bcols.size());
        slice.first_row = next_brow - slice.height;
        slice.num_col = 0;
        std::vector<std::vector<std::uint32_t>> deltas(slice_bcols.size());
        for (std::size_t t = 0; t < slice_bcols.size(); ++t) {
          deltas[t] = bits::delta_encode_row(slice_bcols[t]);
          slice.num_col =
              std::max(slice.num_col, static_cast<index_t>(deltas[t].size()));
        }

        slice.bit_alloc.assign(static_cast<std::size_t>(slice.num_col), 1);
        for (index_t c = 0; c < slice.num_col; ++c) {
          int b = 1;
          for (const auto& d : deltas)
            if (static_cast<std::size_t>(c) < d.size())
              b = std::max(b,
                           bits::bit_width_of(d[static_cast<std::size_t>(c)]));
          slice.bit_alloc[static_cast<std::size_t>(c)] =
              static_cast<std::uint8_t>(b);
        }

        std::vector<bits::BitString> row_streams(slice_bcols.size());
        for (std::size_t t = 0; t < slice_bcols.size(); ++t) {
          auto& bs = row_streams[t];
          for (index_t c = 0; c < slice.num_col; ++c) {
            const std::uint32_t v = static_cast<std::size_t>(c) < deltas[t].size()
                                        ? deltas[t][static_cast<std::size_t>(c)]
                                        : bits::kInvalidDelta;
            bs.append(v, slice.bit_alloc[static_cast<std::size_t>(c)]);
          }
          slice.pad_bits = bs.pad_to_multiple(opts.sym_len);
        }

        if (slice.num_col > 0) {
          slice.stream = bits::MuxedStream::interleave(row_streams, opts.sym_len);
        } else {
          slice.stream =
              bits::MuxedStream(opts.sym_len, slice_bcols.size(), 0);
        }

        out.val_off_.push_back(out.vals_.size());
        out.vals_.resize(out.vals_.size() +
                             slice_bcols.size() *
                                 static_cast<std::size_t>(slice.num_col) * tile,
                         0.0);

        // Value pass: scatter each member row's entries into its tiles.
        value_t* vb = out.vals_.data() + out.val_off_.back();
        for (std::size_t t = 0; t < slice_bcols.size(); ++t) {
          const index_t r0 = (slice.first_row + static_cast<index_t>(t)) * br;
          const int rh =
              static_cast<int>(std::min<index_t>(br, csr.rows - r0));
          const auto& cols = slice_bcols[t];
          for (int i = 0; i < rh; ++i) {
            const index_t r = r0 + i;
            std::size_t j = 0;
            for (index_t p = csr.row_ptr[static_cast<std::size_t>(r)];
                 p < csr.row_ptr[static_cast<std::size_t>(r) + 1]; ++p) {
              const index_t col = csr.col_idx[static_cast<std::size_t>(p)];
              while (cols[j] != col / bc) ++j;
              vb[(t * static_cast<std::size_t>(slice.num_col) + j) * tile +
                 static_cast<std::size_t>(i) * static_cast<std::size_t>(bc) +
                 static_cast<std::size_t>(col - cols[j] * bc)] =
                  csr.vals[static_cast<std::size_t>(p)];
            }
          }
        }

        out.slices_.push_back(std::move(slice));
        slice_bcols.clear();
      });

  return out;
}

std::vector<index_t> BroBcsr::decode_block_row(index_t brow) const {
  BRO_CHECK(brow >= 0 && brow < block_rows_);
  const auto& slice =
      slices_[static_cast<std::size_t>(brow / opts_.slice_height)];
  const index_t t = brow - slice.first_row;
  RowStreamDecoder dec(slice, t, opts_.sym_len);
  std::vector<index_t> bcols;
  index_t acc = -1;
  for (index_t c = 0; c < slice.num_col; ++c) {
    const std::uint32_t d =
        dec.next(slice.bit_alloc[static_cast<std::size_t>(c)]);
    if (d == bits::kInvalidDelta) continue;
    acc += static_cast<index_t>(d);
    bcols.push_back(acc);
  }
  return bcols;
}

void BroBcsr::spmv(std::span<const value_t> x, std::span<value_t> y) const {
  BRO_CHECK(x.size() == static_cast<std::size_t>(cols_));
  BRO_CHECK(y.size() == static_cast<std::size_t>(rows_));
  const auto tile_sz =
      static_cast<std::size_t>(br_) * static_cast<std::size_t>(bc_);
  for (std::size_t si = 0; si < slices_.size(); ++si) {
    const BroEllSlice& slice = slices_[si];
    const value_t* vb = vals_.data() + val_off_[si];
    for (index_t t = 0; t < slice.height; ++t) {
      const index_t r0 = (slice.first_row + t) * br_;
      const int rh = static_cast<int>(std::min<index_t>(br_, rows_ - r0));
      BcsrLaneAcc acc[8];
      RowStreamDecoder dec(slice, t, opts_.sym_len);
      index_t bcol = -1;
      for (index_t j = 0; j < slice.num_col; ++j) {
        const std::uint32_t d =
            dec.next(slice.bit_alloc[static_cast<std::size_t>(j)]);
        if (d == bits::kInvalidDelta) continue;
        bcol += static_cast<index_t>(d);
        const value_t* tv =
            vb + (static_cast<std::size_t>(t) *
                      static_cast<std::size_t>(slice.num_col) +
                  static_cast<std::size_t>(j)) *
                     tile_sz;
        const index_t c0 = bcol * bc_;
        const int ch = static_cast<int>(std::min<index_t>(bc_, cols_ - c0));
        for (int i = 0; i < rh; ++i)
          for (int k = 0; k < ch; ++k)
            acc[i].add(c0 + k, tv[i * bc_ + k],
                       x[static_cast<std::size_t>(c0 + k)]);
      }
      for (int i = 0; i < rh; ++i)
        y[static_cast<std::size_t>(r0 + i)] = acc[i].reduce();
    }
  }
}

sparse::Csr BroBcsr::to_csr() const {
  sparse::Csr out;
  out.rows = rows_;
  out.cols = cols_;
  out.row_ptr.assign(static_cast<std::size_t>(rows_) + 1, 0);
  const auto tile_sz =
      static_cast<std::size_t>(br_) * static_cast<std::size_t>(bc_);
  for (std::size_t si = 0; si < slices_.size(); ++si) {
    const BroEllSlice& slice = slices_[si];
    const value_t* vb = vals_.data() + val_off_[si];
    for (index_t t = 0; t < slice.height; ++t) {
      const index_t brow = slice.first_row + t;
      const std::vector<index_t> bcols = decode_block_row(brow);
      const index_t r0 = brow * br_;
      const int rh = static_cast<int>(std::min<index_t>(br_, rows_ - r0));
      for (int i = 0; i < rh; ++i) {
        for (std::size_t j = 0; j < bcols.size(); ++j) {
          const index_t c0 = bcols[j] * bc_;
          const int ch = static_cast<int>(std::min<index_t>(bc_, cols_ - c0));
          const value_t* tv =
              vb + (static_cast<std::size_t>(t) *
                        static_cast<std::size_t>(slice.num_col) +
                    j) *
                       tile_sz;
          for (int k = 0; k < ch; ++k) {
            out.col_idx.push_back(c0 + k);
            out.vals.push_back(tv[i * bc_ + k]);
          }
        }
        out.row_ptr[static_cast<std::size_t>(r0 + i) + 1] =
            static_cast<index_t>(out.col_idx.size());
      }
    }
  }
  return out;
}

std::size_t BroBcsr::compressed_index_bytes() const {
  std::size_t total = 0;
  for (const auto& s : slices_) {
    total += s.stream.byte_size();
    total += s.bit_alloc.size();
    total += sizeof(index_t);
  }
  if (vals_.size() > nnz_) total += sizeof(value_t) * (vals_.size() - nnz_);
  return total;
}

std::size_t BroBcsr::resident_index_bytes() const {
  std::size_t total = 0;
  for (const auto& s : slices_) {
    total += s.stream.resident_bytes();
    total += s.bit_alloc.size();
    total += sizeof(index_t);
  }
  return total;
}

std::size_t BroBcsr::original_index_bytes() const {
  return static_cast<std::size_t>(rows_) * static_cast<std::size_t>(ell_width_) *
         sizeof(index_t);
}

} // namespace bro::core
