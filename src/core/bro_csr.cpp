#include "core/bro_csr.h"

#include <algorithm>

#include "bits/bitwidth.h"
#include "bits/delta.h"
#include "util/error.h"

namespace bro::core {

BroCsr BroCsr::compress(const sparse::Csr& csr, BroCsrOptions opts) {
  BRO_CHECK_MSG(opts.sym_len == 32 || opts.sym_len == 64,
                "sym_len must be 32 or 64");
  BroCsr out;
  out.rows_ = csr.rows;
  out.cols_ = csr.cols;
  out.opts_ = opts;
  out.row_ptr_ = csr.row_ptr;
  out.vals_ = csr.vals;
  out.bits_.resize(static_cast<std::size_t>(csr.rows), 1);
  out.sym_ptr_.resize(static_cast<std::size_t>(csr.rows) + 1, 0);

  for (index_t r = 0; r < csr.rows; ++r) {
    const auto deltas = bits::delta_encode_row(csr.row_cols(r));
    int b = 1;
    for (const auto d : deltas) b = std::max(b, bits::bit_width_of(d));
    out.bits_[static_cast<std::size_t>(r)] = static_cast<std::uint8_t>(b);
    for (const auto d : deltas) out.stream_.append(d, b);
    out.stream_.pad_to_multiple(opts.sym_len); // rows start symbol-aligned
    out.sym_ptr_[static_cast<std::size_t>(r) + 1] = static_cast<std::uint32_t>(
        out.stream_.symbol_count(opts.sym_len));
  }
  return out;
}

std::vector<index_t> BroCsr::decode_row(index_t r) const {
  BRO_CHECK(r >= 0 && r < rows_);
  const index_t len = row_ptr_[r + 1] - row_ptr_[r];
  const int b = bits_[static_cast<std::size_t>(r)];
  std::vector<index_t> cols;
  cols.reserve(static_cast<std::size_t>(len));
  std::size_t bit_pos = static_cast<std::size_t>(sym_ptr_[static_cast<std::size_t>(r)]) *
                        static_cast<std::size_t>(opts_.sym_len);
  index_t acc = -1;
  for (index_t j = 0; j < len; ++j) {
    const auto d = stream_.peek(bit_pos, b);
    bit_pos += static_cast<std::size_t>(b);
    acc += static_cast<index_t>(d);
    cols.push_back(acc);
  }
  return cols;
}

sparse::Csr BroCsr::decompress() const {
  sparse::Csr out;
  out.rows = rows_;
  out.cols = cols_;
  out.row_ptr = row_ptr_;
  out.vals = vals_;
  out.col_idx.reserve(nnz());
  for (index_t r = 0; r < rows_; ++r) {
    const auto cols = decode_row(r);
    out.col_idx.insert(out.col_idx.end(), cols.begin(), cols.end());
  }
  return out;
}

void BroCsr::spmv(std::span<const value_t> x, std::span<value_t> y) const {
  BRO_CHECK(x.size() == static_cast<std::size_t>(cols_));
  BRO_CHECK(y.size() == static_cast<std::size_t>(rows_));
  for (index_t r = 0; r < rows_; ++r) {
    const index_t len = row_ptr_[r + 1] - row_ptr_[r];
    const int b = bits_[static_cast<std::size_t>(r)];
    std::size_t bit_pos =
        static_cast<std::size_t>(sym_ptr_[static_cast<std::size_t>(r)]) *
        static_cast<std::size_t>(opts_.sym_len);
    index_t col = -1;
    value_t sum = 0;
    for (index_t j = 0; j < len; ++j) {
      col += static_cast<index_t>(stream_.peek(bit_pos, b));
      bit_pos += static_cast<std::size_t>(b);
      sum += vals_[static_cast<std::size_t>(row_ptr_[r] + j)] *
             x[static_cast<std::size_t>(col)];
    }
    y[static_cast<std::size_t>(r)] = sum;
  }
}

std::size_t BroCsr::compressed_index_bytes() const {
  return total_symbols() * static_cast<std::size_t>(opts_.sym_len / 8) +
         bits_.size() + sym_ptr_.size() * sizeof(std::uint32_t);
}

} // namespace bro::core
