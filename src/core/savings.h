// Space-savings and compression-ratio accounting (paper §4.2.1):
//   η = 1 - C/O (space savings), κ = 1/(1-η) = O/C (compression ratio).
#pragma once

#include <cstddef>

namespace bro::core {

struct Savings {
  std::size_t original_bytes = 0;
  std::size_t compressed_bytes = 0;

  /// η in [0, 1); negative if "compression" expanded the data.
  double eta() const;

  /// κ = original/compressed.
  double kappa() const;
};

Savings make_savings(std::size_t original_bytes, std::size_t compressed_bytes);

} // namespace bro::core
