#include "core/matrix.h"

#include <algorithm>
#include <vector>

#include "sparse/mmio.h"
#include "sparse/spmv.h"
#include "util/error.h"

namespace bro::core {

const char* format_name(Format f) {
  switch (f) {
    case Format::kCsr: return "CSR";
    case Format::kCoo: return "COO";
    case Format::kEll: return "ELLPACK";
    case Format::kEllR: return "ELLPACK-R";
    case Format::kHyb: return "HYB";
    case Format::kBroEll: return "BRO-ELL";
    case Format::kBroCoo: return "BRO-COO";
    case Format::kBroHyb: return "BRO-HYB";
    case Format::kBroCsr: return "BRO-CSR";
  }
  return "?";
}

Matrix::Matrix(sparse::Csr csr, MatrixOptions opts)
    : csr_(std::move(csr)), opts_(opts) {
  BRO_CHECK_MSG(csr_.is_valid(), "matrix is structurally invalid");
}

Matrix Matrix::from_csr(sparse::Csr csr, MatrixOptions opts) {
  return Matrix(std::move(csr), opts);
}

Matrix Matrix::from_coo(const sparse::Coo& coo, MatrixOptions opts) {
  return Matrix(sparse::coo_to_csr(coo), opts);
}

Matrix Matrix::from_file(const std::string& mtx_path, MatrixOptions opts) {
  return from_coo(sparse::read_matrix_market_file(mtx_path), opts);
}

Format Matrix::auto_format() const {
  if (nnz() == 0) return Format::kCsr;
  const double padded = static_cast<double>(csr_.rows) *
                        static_cast<double>(csr_.max_row_length());
  if (padded <= opts_.max_ell_expand * static_cast<double>(nnz()))
    return Format::kBroEll;
  return Format::kBroHyb;
}

void Matrix::spmv(std::span<const value_t> x, std::span<value_t> y) const {
  spmv(x, y, auto_format());
}

void Matrix::spmv(std::span<const value_t> x, std::span<value_t> y,
                  Format format) const {
  BRO_CHECK(x.size() == static_cast<std::size_t>(cols()));
  BRO_CHECK(y.size() == static_cast<std::size_t>(rows()));
  switch (format) {
    case Format::kCsr:
      sparse::spmv_csr_reference(csr_, x, y);
      return;
    case Format::kCoo:
      std::fill(y.begin(), y.end(), value_t{0});
      sparse::spmv_coo_accumulate(coo(), x, y);
      return;
    case Format::kEll:
      sparse::spmv_ell(ell(), x, y);
      return;
    case Format::kEllR:
      sparse::spmv_ellr(ellr(), x, y);
      return;
    case Format::kHyb:
      sparse::spmv_hyb(hyb(), x, y);
      return;
    case Format::kBroEll:
      bro_ell().spmv(x, y);
      return;
    case Format::kBroCoo:
      std::fill(y.begin(), y.end(), value_t{0});
      bro_coo().spmv_accumulate(x, y);
      return;
    case Format::kBroHyb:
      bro_hyb().spmv(x, y);
      return;
    case Format::kBroCsr:
      bro_csr().spmv(x, y);
      return;
  }
  BRO_CHECK_MSG(false, "unreachable format");
}

Savings Matrix::savings() const {
  switch (auto_format()) {
    case Format::kBroEll:
      return make_savings(bro_ell().original_index_bytes(),
                          bro_ell().compressed_index_bytes());
    case Format::kBroHyb:
      return make_savings(bro_hyb().original_index_bytes(),
                          bro_hyb().compressed_index_bytes());
    default:
      return {};
  }
}

const sparse::Ell& Matrix::ell() const {
  if (!ell_) ell_ = sparse::csr_to_ell(csr_);
  return *ell_;
}

const sparse::EllR& Matrix::ellr() const {
  if (!ellr_) ellr_ = sparse::csr_to_ellr(csr_);
  return *ellr_;
}

const sparse::Coo& Matrix::coo() const {
  if (!coo_) coo_ = sparse::csr_to_coo(csr_);
  return *coo_;
}

const sparse::Hyb& Matrix::hyb() const {
  if (!hyb_) hyb_ = sparse::csr_to_hyb(csr_);
  return *hyb_;
}

const BroEll& Matrix::bro_ell() const {
  if (!bro_ell_) bro_ell_ = BroEll::compress(ell(), opts_.ell);
  return *bro_ell_;
}

const BroCoo& Matrix::bro_coo() const {
  if (!bro_coo_) bro_coo_ = BroCoo::compress(coo(), opts_.coo);
  return *bro_coo_;
}

const BroCsr& Matrix::bro_csr() const {
  if (!bro_csr_) bro_csr_ = BroCsr::compress(csr_);
  return *bro_csr_;
}

const BroHyb& Matrix::bro_hyb() const {
  if (!bro_hyb_) {
    BroHybOptions o;
    o.ell = opts_.ell;
    o.coo = opts_.coo;
    bro_hyb_ = BroHyb::compress(csr_, o);
  }
  return *bro_hyb_;
}

} // namespace bro::core
