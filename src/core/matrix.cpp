#include "core/matrix.h"

#include <utility>

#include "sparse/mmio.h"
#include "util/error.h"

// format_name, auto_format, spmv and savings are defined in
// src/engine/facade.cpp: they dispatch through the engine's format
// registry, the library's single format-dispatch site.

namespace bro::core {

Matrix::Matrix(sparse::Csr csr, MatrixOptions opts)
    : csr_(std::move(csr)), opts_(opts) {
  BRO_CHECK_MSG(csr_.is_valid(), "matrix is structurally invalid");
}

Matrix Matrix::from_csr(sparse::Csr csr, MatrixOptions opts) {
  return Matrix(std::move(csr), opts);
}

Matrix Matrix::from_coo(const sparse::Coo& coo, MatrixOptions opts) {
  return Matrix(sparse::coo_to_csr(coo), opts);
}

Matrix Matrix::from_file(const std::string& mtx_path, MatrixOptions opts) {
  return from_coo(sparse::read_matrix_market_file(mtx_path), opts);
}

const sparse::Ell& Matrix::ell() const {
  if (!ell_) ell_ = sparse::csr_to_ell(csr_);
  return *ell_;
}

const sparse::EllR& Matrix::ellr() const {
  if (!ellr_) ellr_ = sparse::csr_to_ellr(csr_);
  return *ellr_;
}

const sparse::Coo& Matrix::coo() const {
  if (!coo_) coo_ = sparse::csr_to_coo(csr_);
  return *coo_;
}

const sparse::Hyb& Matrix::hyb() const {
  if (!hyb_) hyb_ = sparse::csr_to_hyb(csr_);
  return *hyb_;
}

const BroEll& Matrix::bro_ell() const {
  if (!bro_ell_) bro_ell_ = BroEll::compress(ell(), opts_.ell);
  return *bro_ell_;
}

const BroCoo& Matrix::bro_coo() const {
  if (!bro_coo_) bro_coo_ = BroCoo::compress(coo(), opts_.coo);
  return *bro_coo_;
}

const BroAns& Matrix::bro_ans() const {
  if (!bro_ans_) bro_ans_ = BroAns::compress(ell(), opts_.ans);
  return *bro_ans_;
}

const BroBcsr& Matrix::bro_bcsr() const {
  if (!bro_bcsr_) bro_bcsr_ = BroBcsr::compress(csr_, opts_.bcsr);
  return *bro_bcsr_;
}

const BroCsr& Matrix::bro_csr() const {
  if (!bro_csr_) bro_csr_ = BroCsr::compress(csr_);
  return *bro_csr_;
}

const BroHyb& Matrix::bro_hyb() const {
  if (!bro_hyb_) {
    BroHybOptions o;
    o.ell = opts_.ell;
    o.coo = opts_.coo;
    bro_hyb_ = BroHyb::compress(csr_, o);
  }
  return *bro_hyb_;
}

} // namespace bro::core
