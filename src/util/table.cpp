#include "util/table.h"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/error.h"

namespace bro {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  BRO_CHECK_MSG(cells.size() == headers_.size(),
                "row has " << cells.size() << " cells, expected "
                           << headers_.size());
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  auto line = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << (c == 0 ? "| " : " | ") << std::left << std::setw(static_cast<int>(width[c]))
         << cells[c];
    }
    os << " |\n";
  };

  line(headers_);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << (c == 0 ? "|" : "-|") << std::string(width[c] + 2, '-');
  }
  os << "-|\n";
  for (const auto& row : rows_) line(row);
}

std::string Table::fmt(double v, int precision) {
  // NaN marks "no measurement" (e.g. bench::geomean of an empty set, or an
  // ISA the host lacks): render it honestly instead of printing "nan".
  if (std::isnan(v)) return "n/a";
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string Table::pct(double fraction, int precision) {
  if (std::isnan(fraction)) return "n/a";
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << fraction * 100.0 << '%';
  return os.str();
}

} // namespace bro
