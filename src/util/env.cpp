#include "util/env.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <iostream>

namespace bro {

namespace {

/// A parse is accepted only when strtod/strtol consumed past the prefix and
/// nothing but trailing whitespace remains: "3abc" and "1.5e" silently
/// reading as 3 and 1.5 has burned enough bench configs that a malformed
/// knob now warns and falls back instead.
bool clean_tail(const char* v, const char* end) {
  if (end == v) return false;
  for (; *end != '\0'; ++end)
    if (!std::isspace(static_cast<unsigned char>(*end))) return false;
  return true;
}

void warn_fallback(const char* name, const char* v, const char* why) {
  std::cerr << "warning: ignoring " << name << "='" << v << "' (" << why
            << "); using built-in default\n";
}

} // namespace

double env_double(const char* name, double fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  errno = 0;
  const double parsed = std::strtod(v, &end);
  if (!clean_tail(v, end)) {
    warn_fallback(name, v, "not a number");
    return fallback;
  }
  if (errno == ERANGE) {
    warn_fallback(name, v, "out of range");
    return fallback;
  }
  return parsed;
}

long env_long(const char* name, long fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  errno = 0;
  const long parsed = std::strtol(v, &end, 10);
  if (!clean_tail(v, end)) {
    warn_fallback(name, v, "not an integer");
    return fallback;
  }
  if (errno == ERANGE) {
    warn_fallback(name, v, "out of range");
    return fallback;
  }
  return parsed;
}

double bench_scale() { return env_double("BRO_SCALE", 0.25); }

} // namespace bro
