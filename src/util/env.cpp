#include "util/env.h"

#include <cstdlib>

namespace bro {

double env_double(const char* name, double fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(v, &end);
  return end == v ? fallback : parsed;
}

long env_long(const char* name, long fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  const long parsed = std::strtol(v, &end, 10);
  return end == v ? fallback : parsed;
}

double bench_scale() { return env_double("BRO_SCALE", 0.25); }

} // namespace bro
