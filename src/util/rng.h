// Deterministic, fast pseudo-random number generation (splitmix64 +
// xoshiro256**). All matrix generators take an explicit seed so every
// experiment is reproducible bit-for-bit across runs and machines.
#pragma once

#include <cstdint>

namespace bro {

/// xoshiro256** PRNG seeded via splitmix64. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) { reseed(seed); }

  void reseed(std::uint64_t seed);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ull; }

  result_type operator()() { return next(); }

  std::uint64_t next();

  /// Uniform integer in [0, n). n must be > 0.
  std::uint64_t below(std::uint64_t n);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform();

  /// Standard normal via Box-Muller (no cached spare; simple and stateless).
  double normal();

  /// Normal with given mean and standard deviation.
  double normal(double mean, double stddev) { return mean + stddev * normal(); }

 private:
  std::uint64_t s_[4];
};

} // namespace bro
