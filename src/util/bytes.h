// Little-endian byte-buffer encode/decode, the substrate of the network
// wire protocol (net/protocol.h). ByteWriter appends fixed-width scalars,
// length-prefixed strings and arrays to a growable byte vector; ByteReader
// is a bounds-checked cursor over a received buffer that throws
// std::runtime_error on underrun, so truncated payloads surface as typed
// decode failures instead of reads past the frame.
//
// Scalars are encoded as their in-memory little-endian representation
// (the only byte order this codebase targets); strings and arrays carry a
// leading element count (u32 for strings, u64 for arrays).
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <type_traits>
#include <vector>

#include "util/error.h"

namespace bro {

class ByteWriter {
 public:
  const std::vector<std::uint8_t>& bytes() const { return buf_; }
  std::vector<std::uint8_t> take() { return std::move(buf_); }
  std::size_t size() const { return buf_.size(); }

  template <typename T>
  void put(T v) {
    static_assert(std::is_trivially_copyable_v<T>);
    const auto n = buf_.size();
    buf_.resize(n + sizeof(T));
    std::memcpy(buf_.data() + n, &v, sizeof(T));
  }

  void put_bytes(const void* data, std::size_t n) {
    const auto off = buf_.size();
    buf_.resize(off + n);
    if (n > 0) std::memcpy(buf_.data() + off, data, n);
  }

  /// u32 length + raw bytes.
  void put_string(const std::string& s) {
    put<std::uint32_t>(static_cast<std::uint32_t>(s.size()));
    put_bytes(s.data(), s.size());
  }

  /// u64 element count + packed elements.
  template <typename T>
  void put_array(std::span<const T> v) {
    static_assert(std::is_trivially_copyable_v<T>);
    put<std::uint64_t>(v.size());
    put_bytes(v.data(), v.size() * sizeof(T));
  }

 private:
  std::vector<std::uint8_t> buf_;
};

class ByteReader {
 public:
  ByteReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}
  explicit ByteReader(std::span<const std::uint8_t> buf)
      : ByteReader(buf.data(), buf.size()) {}

  std::size_t remaining() const { return size_ - pos_; }
  bool done() const { return pos_ == size_; }

  template <typename T>
  T get() {
    static_assert(std::is_trivially_copyable_v<T>);
    T v{};
    std::memcpy(&v, need(sizeof(T)), sizeof(T));
    return v;
  }

  std::string get_string(std::size_t max_len = kSaneCount) {
    const auto n = get<std::uint32_t>();
    BRO_CHECK_MSG(n <= max_len, "implausible string length " << n);
    const auto* p = need(n);
    return std::string(reinterpret_cast<const char*>(p), n);
  }

  template <typename T>
  std::vector<T> get_array(std::size_t max_elems = kSaneCount) {
    static_assert(std::is_trivially_copyable_v<T>);
    const auto n = get<std::uint64_t>();
    BRO_CHECK_MSG(n <= max_elems, "implausible element count " << n);
    std::vector<T> v(static_cast<std::size_t>(n));
    if (n > 0)
      std::memcpy(v.data(), need(static_cast<std::size_t>(n) * sizeof(T)),
                  static_cast<std::size_t>(n) * sizeof(T));
    return v;
  }

  /// Borrow `n` raw bytes (valid while the underlying buffer lives).
  std::span<const std::uint8_t> get_span(std::size_t n) {
    return {need(n), n};
  }

 private:
  // Corrupted-length backstop: no sane payload field holds a billion
  // elements (mirrors serialize.cpp's kSane bound).
  static constexpr std::size_t kSaneCount = std::size_t{1} << 30;

  const std::uint8_t* need(std::size_t n) {
    BRO_CHECK_MSG(n <= size_ - pos_, "payload underrun: need "
                                         << n << " bytes, have "
                                         << (size_ - pos_));
    const auto* p = data_ + pos_;
    pos_ += n;
    return p;
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

} // namespace bro
