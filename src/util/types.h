// Common scalar and index types used across the BRO-SpMV library.
#pragma once

#include <cstdint>
#include <cstddef>

namespace bro {

/// Row/column index type. Matrices up to ~2^31 rows/cols are supported,
/// matching the 32-bit index arrays the paper compresses.
using index_t = std::int32_t;

/// Matrix value type. The paper evaluates double precision.
using value_t = double;

/// Unsigned type used for bit-packed symbol streams.
using symbol_t = std::uint64_t;

} // namespace bro
