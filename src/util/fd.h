// Move-only RAII owner of a POSIX file descriptor, used by the network
// front-end (net/server.h, net/client.h) so every early-exit path closes
// its sockets and pipes.
#pragma once

#include <unistd.h>

#include <utility>

namespace bro {

class UniqueFd {
 public:
  UniqueFd() = default;
  explicit UniqueFd(int fd) : fd_(fd) {}
  ~UniqueFd() { reset(); }

  UniqueFd(UniqueFd&& o) noexcept : fd_(std::exchange(o.fd_, -1)) {}
  UniqueFd& operator=(UniqueFd&& o) noexcept {
    if (this != &o) {
      reset();
      fd_ = std::exchange(o.fd_, -1);
    }
    return *this;
  }

  UniqueFd(const UniqueFd&) = delete;
  UniqueFd& operator=(const UniqueFd&) = delete;

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  explicit operator bool() const { return valid(); }

  int release() { return std::exchange(fd_, -1); }

  void reset(int fd = -1) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = fd;
  }

 private:
  int fd_ = -1;
};

} // namespace bro
