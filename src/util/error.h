// Lightweight runtime-check macros. Used for API-contract violations and
// malformed external inputs (e.g. truncated Matrix Market files); they throw
// std::runtime_error so failure injection is testable.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace bro::detail {

[[noreturn]] inline void fail(const char* expr, const char* file, int line,
                              const std::string& msg) {
  std::ostringstream os;
  os << file << ':' << line << ": check failed (" << expr << ')';
  if (!msg.empty()) os << ": " << msg;
  throw std::runtime_error(os.str());
}

} // namespace bro::detail

#define BRO_CHECK(expr)                                                    \
  do {                                                                     \
    if (!(expr)) ::bro::detail::fail(#expr, __FILE__, __LINE__, "");       \
  } while (0)

#define BRO_CHECK_MSG(expr, msg)                                           \
  do {                                                                     \
    if (!(expr)) {                                                         \
      std::ostringstream os_;                                              \
      os_ << msg;                                                          \
      ::bro::detail::fail(#expr, __FILE__, __LINE__, os_.str());           \
    }                                                                      \
  } while (0)
