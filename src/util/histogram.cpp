#include "util/histogram.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/error.h"

namespace bro {

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), counts_(bounds_.size() + 1, 0) {
  BRO_CHECK_MSG(!bounds_.empty(), "Histogram needs at least one bucket");
  BRO_CHECK_MSG(std::is_sorted(bounds_.begin(), bounds_.end()),
                "Histogram bounds must be sorted");
}

Histogram Histogram::linear(double lo, double hi, std::size_t buckets) {
  BRO_CHECK_MSG(buckets > 0 && hi > lo, "bad linear histogram shape");
  std::vector<double> bounds(buckets);
  const double step = (hi - lo) / static_cast<double>(buckets);
  for (std::size_t i = 0; i < buckets; ++i)
    bounds[i] = lo + step * static_cast<double>(i + 1);
  return Histogram(std::move(bounds));
}

Histogram Histogram::exponential(double lo, double hi, double factor) {
  BRO_CHECK_MSG(lo > 0 && hi > lo && factor > 1,
                "bad exponential histogram shape");
  std::vector<double> bounds;
  for (double b = lo; b < hi; b *= factor) bounds.push_back(b);
  bounds.push_back(hi);
  return Histogram(std::move(bounds));
}

void Histogram::add(double v) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  ++counts_[static_cast<std::size_t>(it - bounds_.begin())];
  ++count_;
  sum_ += v;
  if (count_ == 1) {
    min_ = max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
}

void Histogram::merge(const Histogram& other) {
  BRO_CHECK_MSG(other.bounds_ == bounds_,
                "Histogram::merge requires identical bucket bounds");
  for (std::size_t i = 0; i < counts_.size(); ++i)
    counts_[i] += other.counts_[i];
  if (other.count_ > 0) {
    min_ = count_ ? std::min(min_, other.min_) : other.min_;
    max_ = count_ ? std::max(max_, other.max_) : other.max_;
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

double Histogram::percentile(double p) const {
  if (count_ == 0) return 0.0;
  const double clamped = std::clamp(p, 0.0, 100.0);
  const std::uint64_t rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             std::ceil(clamped / 100.0 * static_cast<double>(count_))));
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    cum += counts_[i];
    if (cum >= rank)
      return i < bounds_.size() ? bounds_[i] : max_;
  }
  return max_;
}

std::string Histogram::summary() const {
  std::ostringstream os;
  os.precision(3);
  os << "p50=" << percentile(50) << " p95=" << percentile(95)
     << " p99=" << percentile(99) << " max=" << max();
  return os.str();
}

} // namespace bro
