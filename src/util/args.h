// Minimal command-line argument parser for the CLI tool and examples:
// positional arguments plus --key=value / --key value / --flag options.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace bro {

class Args {
 public:
  /// Parse argv (argv[0] is skipped). Unknown options are kept; validation
  /// is the caller's job via `allow_only`.
  Args(int argc, const char* const* argv);

  const std::vector<std::string>& positional() const { return positional_; }

  bool has(const std::string& key) const { return options_.count(key) > 0; }

  std::string get(const std::string& key, const std::string& fallback) const;
  double get_double(const std::string& key, double fallback) const;
  long get_long(const std::string& key, long fallback) const;

  /// Throws std::runtime_error if any option key is not in `keys`.
  void allow_only(const std::vector<std::string>& keys) const;

 private:
  std::vector<std::string> positional_;
  std::map<std::string, std::string> options_; // flag => "" if no value
};

} // namespace bro
