// Minimal fixed-width table printer used by the bench harness to emit
// paper-style tables (Table 1-5) and figure series on stdout.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace bro {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Append one row; the number of cells must match the header count.
  void add_row(std::vector<std::string> cells);

  /// Render with column alignment and a header separator.
  void print(std::ostream& os) const;

  std::size_t rows() const { return rows_.size(); }

  // Formatting helpers for cells.
  static std::string fmt(double v, int precision = 2);
  static std::string pct(double fraction, int precision = 1);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

} // namespace bro
