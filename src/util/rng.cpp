#include "util/rng.h"

#include <cmath>

namespace bro {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

} // namespace

void Rng::reseed(std::uint64_t seed) {
  for (auto& s : s_) s = splitmix64(seed);
  // Avoid the all-zero state (cannot occur with splitmix64, but keep the
  // invariant explicit for readers).
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t n) {
  // Lemire's multiply-shift rejection-free approximation is fine here; bias
  // is < 2^-64 * n which is negligible for workload generation.
  return static_cast<std::uint64_t>(
      (static_cast<unsigned __int128>(next()) * n) >> 64);
}

std::int64_t Rng::range(std::int64_t lo, std::int64_t hi) {
  return lo + static_cast<std::int64_t>(below(static_cast<std::uint64_t>(hi - lo + 1)));
}

double Rng::uniform() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::normal() {
  // Box-Muller; draw until u1 is nonzero to keep log() finite.
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
}

} // namespace bro
