// Environment-variable knobs shared by the bench harness.
#pragma once

#include <string>

namespace bro {

/// Read a double from the environment, falling back to `fallback` when the
/// variable is unset, has trailing non-numeric characters, or overflows.
/// Malformed values warn on stderr rather than silently truncating.
double env_double(const char* name, double fallback);

/// Read an integer from the environment with a fallback, under the same
/// strictness (no trailing garbage, ERANGE rejected with a warning).
long env_long(const char* name, long fallback);

/// Global matrix scale factor for benches (BRO_SCALE, default 0.25).
/// Matrix dimensions are multiplied by this factor so the full suite runs in
/// minutes on a small host; set BRO_SCALE=1 to reproduce paper-size matrices.
double bench_scale();

} // namespace bro
