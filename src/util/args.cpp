#include "util/args.h"

#include <cstdlib>

#include "util/error.h"

namespace bro {

Args::Args(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    const std::string body = arg.substr(2);
    const auto eq = body.find('=');
    if (eq != std::string::npos) {
      options_[body.substr(0, eq)] = body.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      options_[body] = argv[++i];
    } else {
      options_[body] = "";
    }
  }
}

std::string Args::get(const std::string& key,
                      const std::string& fallback) const {
  const auto it = options_.find(key);
  return it == options_.end() ? fallback : it->second;
}

double Args::get_double(const std::string& key, double fallback) const {
  const auto it = options_.find(key);
  if (it == options_.end() || it->second.empty()) return fallback;
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  // The whole token must parse: "12abc" is an error, not 12.
  BRO_CHECK_MSG(end != it->second.c_str() && *end == '\0',
                "--" << key << " expects a number, got '" << it->second
                     << '\'');
  return v;
}

long Args::get_long(const std::string& key, long fallback) const {
  const auto it = options_.find(key);
  if (it == options_.end() || it->second.empty()) return fallback;
  char* end = nullptr;
  const long v = std::strtol(it->second.c_str(), &end, 10);
  BRO_CHECK_MSG(end != it->second.c_str() && *end == '\0',
                "--" << key << " expects an integer, got '" << it->second
                     << '\'');
  return v;
}

void Args::allow_only(const std::vector<std::string>& keys) const {
  for (const auto& [k, v] : options_) {
    bool ok = false;
    for (const auto& allowed : keys)
      if (k == allowed) ok = true;
    BRO_CHECK_MSG(ok, "unknown option --" << k);
  }
}

} // namespace bro
