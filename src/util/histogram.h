// Fixed-bucket histogram for serve metrics: batch-size distributions and
// latency percentiles. Buckets are chosen at construction (linear or
// exponential edges), add() is O(log buckets), and percentile() answers
// from bucket counts — accurate to one bucket width, which is what a
// serving dashboard needs without unbounded memory.
//
// Not internally synchronized; the serve layer guards its histograms with
// the metrics mutex.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace bro {

class Histogram {
 public:
  /// `buckets` evenly spaced upper bounds over (lo, hi]; values above hi
  /// land in an implicit overflow bucket.
  static Histogram linear(double lo, double hi, std::size_t buckets);

  /// Upper bounds lo, lo*factor, lo*factor^2, ... up to and including the
  /// first bound >= hi (factor > 1). The right shape for latencies.
  static Histogram exponential(double lo, double hi, double factor);

  void add(double v);
  void merge(const Histogram& other); // other must share this bucket shape

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const { return count_ ? sum_ / double(count_) : 0.0; }
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }

  /// Value at or below which p percent (0 < p <= 100) of the samples fall,
  /// reported as the containing bucket's upper bound (the overflow bucket
  /// reports the observed maximum). 0 when empty.
  double percentile(double p) const;

  const std::vector<double>& upper_bounds() const { return bounds_; }
  /// Per-bucket counts; one extra trailing entry is the overflow bucket.
  const std::vector<std::uint64_t>& counts() const { return counts_; }

  /// "p50=1.2e-04 p95=3.1e-04 p99=3.1e-04 max=4.0e-04" — log-line form.
  std::string summary() const;

 private:
  explicit Histogram(std::vector<double> bounds);

  std::vector<double> bounds_;        // sorted upper bounds
  std::vector<std::uint64_t> counts_; // bounds_.size() + 1 (overflow)
  std::uint64_t count_ = 0;
  double sum_ = 0;
  double min_ = 0;
  double max_ = 0;
};

} // namespace bro
