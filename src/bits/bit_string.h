// BitString: an append-only big-endian bit string plus a matching reader.
//
// The BRO formats treat each matrix row's compressed indices as one long bit
// string: values are appended MSB-first, then the string is chopped into
// sym_len-bit symbols (Algorithm 1 consumes bits from the top of the symbol
// buffer via `decoded = sym[0:b]; sym <<= b`). BitString implements exactly
// that bit order so the packer and the GPU-style decoder agree.
#pragma once

#include <cstdint>
#include <vector>

#include "util/error.h"

namespace bro::bits {

class BitString {
 public:
  BitString() = default;

  /// Append the low `nbits` bits of `value`, most significant bit first.
  /// nbits must be in [0, 64] and value must fit in nbits bits.
  void append(std::uint64_t value, int nbits);

  /// Append every bit of `other`, preserving order.
  void append(const BitString& other);

  /// Total number of bits appended so far.
  std::size_t size_bits() const { return size_bits_; }

  /// Pad with zero bits so that `multiple` divides size_bits().
  /// Returns the number of padding bits added.
  int pad_to_multiple(int multiple);

  /// Extract the symbol of width `sym_len` starting at bit `sym_len * index`.
  /// The symbol is returned right-aligned (low sym_len bits). Bits beyond
  /// size_bits() read as zero.
  std::uint64_t symbol(std::size_t index, int sym_len) const;

  /// Number of sym_len-wide symbols needed to hold the string.
  std::size_t symbol_count(int sym_len) const {
    return (size_bits_ + static_cast<std::size_t>(sym_len) - 1) /
           static_cast<std::size_t>(sym_len);
  }

  /// Read back `nbits` bits starting at `bit_pos` (MSB-first order).
  std::uint64_t peek(std::size_t bit_pos, int nbits) const;

  // Serialization access: the raw word storage (big-endian bit order within
  // each word) and reconstruction from it.
  const std::vector<std::uint64_t>& words() const { return words_; }
  static BitString from_words(std::vector<std::uint64_t> words,
                              std::size_t size_bits);

 private:
  std::vector<std::uint64_t> words_; // big-endian bit order within each word
  std::size_t size_bits_ = 0;
};

/// Sequential reader over a BitString (host-side verification path).
class BitStringReader {
 public:
  explicit BitStringReader(const BitString& s) : s_(&s) {}

  std::uint64_t read(int nbits) {
    const std::uint64_t v = s_->peek(pos_, nbits);
    pos_ += static_cast<std::size_t>(nbits);
    return v;
  }

  std::size_t position() const { return pos_; }
  bool exhausted() const { return pos_ >= s_->size_bits(); }

 private:
  const BitString* s_;
  std::size_t pos_ = 0;
};

} // namespace bro::bits
