// Bit-width helpers: the Γ(u) function of the paper (number of bits required
// to represent an unsigned integer) and related utilities.
#pragma once

#include <bit>
#include <cstdint>

namespace bro::bits {

/// Γ(u): number of bits required to pack the unsigned integer u.
/// Γ(0) = 0, Γ(1) = 1, Γ(2) = 2, Γ(3) = 2, Γ(4) = 3, ...
constexpr int bit_width_of(std::uint64_t u) {
  return u == 0 ? 0 : 64 - std::countl_zero(u);
}

/// Largest value representable in `b` bits (b in [0, 64]).
constexpr std::uint64_t max_value_for_bits(int b) {
  return b >= 64 ? ~0ull : (b <= 0 ? 0ull : ((1ull << b) - 1));
}

/// Zigzag map for signed deltas (extension; the paper's deltas are
/// non-negative, but reordering experiments may produce signed gaps).
constexpr std::uint64_t zigzag_encode(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

constexpr std::int64_t zigzag_decode(std::uint64_t u) {
  return static_cast<std::int64_t>(u >> 1) ^
         -static_cast<std::int64_t>(u & 1);
}

} // namespace bro::bits
