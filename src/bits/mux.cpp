#include "bits/mux.h"

#include "util/error.h"

namespace bro::bits {

MuxedStream::MuxedStream(int sym_len, std::size_t height,
                         std::size_t symbols_per_row)
    : sym_len_(sym_len), height_(height), symbols_per_row_(symbols_per_row) {
  BRO_CHECK_MSG(sym_len == 32 || sym_len == 64,
                "sym_len must be 32 or 64, got " << sym_len);
  const std::size_t n = height * symbols_per_row;
  if (sym_len == 32)
    slots32_.assign(n, 0);
  else
    slots64_.assign(n, 0);
}

void MuxedStream::set_slot(std::size_t i, std::uint64_t v) {
  if (sym_len_ == 32) {
    BRO_CHECK_MSG(v <= 0xffffffffull,
                  "symbol value does not fit a 32-bit slot");
    slots32_[i] = static_cast<std::uint32_t>(v);
  } else {
    slots64_[i] = v;
  }
}

MuxedStream MuxedStream::interleave(std::span<const BitString> rows,
                                    int sym_len) {
  BRO_CHECK(!rows.empty());
  const std::size_t h = rows.size();
  std::size_t symbols = rows[0].symbol_count(sym_len);
  for (const auto& r : rows) {
    BRO_CHECK_MSG(r.symbol_count(sym_len) == symbols,
                  "all row streams must have equal symbol counts (pad first)");
  }
  MuxedStream out(sym_len, h, symbols);
  for (std::size_t c = 0; c < symbols; ++c)
    for (std::size_t t = 0; t < h; ++t)
      out.set_slot(c * h + t, rows[t].symbol(c, sym_len));
  return out;
}

} // namespace bro::bits
