#include "bits/bit_string.h"

#include "bits/bitwidth.h"

namespace bro::bits {

void BitString::append(std::uint64_t value, int nbits) {
  BRO_CHECK_MSG(nbits >= 0 && nbits <= 64, "nbits=" << nbits);
  if (nbits == 0) return;
  BRO_CHECK_MSG(nbits == 64 || value <= max_value_for_bits(nbits),
                "value " << value << " does not fit in " << nbits << " bits");

  std::size_t bit_pos = size_bits_;
  size_bits_ += static_cast<std::size_t>(nbits);
  words_.resize((size_bits_ + 63) / 64, 0);

  // Write MSB-first: the first appended bit lands at the highest free bit of
  // the current word.
  int remaining = nbits;
  while (remaining > 0) {
    const std::size_t word = bit_pos / 64;
    const int offset = static_cast<int>(bit_pos % 64); // bits already used
    const int room = 64 - offset;
    const int take = remaining < room ? remaining : room;
    // The `take` most significant of the remaining bits of `value`.
    const std::uint64_t chunk =
        (remaining == 64 && take == 64)
            ? value
            : (value >> (remaining - take)) & max_value_for_bits(take);
    words_[word] |= chunk << (room - take);
    bit_pos += static_cast<std::size_t>(take);
    remaining -= take;
  }
}

void BitString::append(const BitString& other) {
  std::size_t pos = 0;
  std::size_t left = other.size_bits_;
  while (left > 0) {
    const int take = left < 64 ? static_cast<int>(left) : 64;
    append(other.peek(pos, take), take);
    pos += static_cast<std::size_t>(take);
    left -= static_cast<std::size_t>(take);
  }
}

int BitString::pad_to_multiple(int multiple) {
  BRO_CHECK(multiple > 0);
  const int rem = static_cast<int>(size_bits_ % static_cast<std::size_t>(multiple));
  if (rem == 0) return 0;
  const int pad = multiple - rem;
  // Zero padding may exceed 64 bits in principle; append in chunks.
  int left = pad;
  while (left > 0) {
    const int take = left < 64 ? left : 64;
    append(0, take);
    left -= take;
  }
  return pad;
}

std::uint64_t BitString::peek(std::size_t bit_pos, int nbits) const {
  BRO_CHECK_MSG(nbits >= 0 && nbits <= 64, "nbits=" << nbits);
  if (nbits == 0) return 0;
  std::uint64_t out = 0;
  int remaining = nbits;
  while (remaining > 0) {
    const std::size_t word = bit_pos / 64;
    const int offset = static_cast<int>(bit_pos % 64);
    const int room = 64 - offset;
    const int take = remaining < room ? remaining : room;
    std::uint64_t w = word < words_.size() ? words_[word] : 0;
    // Bits [offset, offset+take) of w, counting from the MSB side.
    const std::uint64_t chunk = (w >> (room - take)) & max_value_for_bits(take);
    out = (take == 64) ? chunk : ((out << take) | chunk);
    bit_pos += static_cast<std::size_t>(take);
    remaining -= take;
  }
  return out;
}

BitString BitString::from_words(std::vector<std::uint64_t> words,
                                std::size_t size_bits) {
  BRO_CHECK_MSG(words.size() == (size_bits + 63) / 64,
                "word count inconsistent with bit size");
  BitString out;
  out.words_ = std::move(words);
  out.size_bits_ = size_bits;
  return out;
}

std::uint64_t BitString::symbol(std::size_t index, int sym_len) const {
  BRO_CHECK_MSG(sym_len > 0 && sym_len <= 64, "sym_len=" << sym_len);
  return peek(index * static_cast<std::size_t>(sym_len), sym_len);
}

} // namespace bro::bits
