#include "bits/delta.h"

#include "util/error.h"

namespace bro::bits {

std::vector<std::uint32_t> delta_encode_row(std::span<const index_t> idx) {
  std::vector<std::uint32_t> out;
  out.reserve(idx.size());
  index_t prev = -1; // 0-based indices biased by one: first gap = idx[0]+1
  for (const index_t v : idx) {
    BRO_CHECK_MSG(v > prev, "column indices must be strictly increasing");
    out.push_back(static_cast<std::uint32_t>(v - prev));
    prev = v;
  }
  return out;
}

std::vector<index_t> delta_decode_row(std::span<const std::uint32_t> deltas) {
  std::vector<index_t> out;
  out.reserve(deltas.size());
  index_t acc = -1;
  for (const std::uint32_t d : deltas) {
    if (d == kInvalidDelta) continue;
    acc += static_cast<index_t>(d);
    out.push_back(acc);
  }
  return out;
}

std::vector<std::uint32_t> delta_encode_monotonic(std::span<const index_t> idx,
                                                  index_t base) {
  std::vector<std::uint32_t> out;
  out.reserve(idx.size());
  index_t prev = base;
  for (const index_t v : idx) {
    BRO_CHECK_MSG(v >= prev, "sequence must be non-decreasing");
    out.push_back(static_cast<std::uint32_t>(v - prev));
    prev = v;
  }
  return out;
}

std::vector<index_t> delta_decode_monotonic(std::span<const std::uint32_t> deltas,
                                            index_t base) {
  std::vector<index_t> out;
  out.reserve(deltas.size());
  index_t acc = base;
  for (const std::uint32_t d : deltas) {
    acc += static_cast<index_t>(d);
    out.push_back(acc);
  }
  return out;
}

} // namespace bro::bits
