// tANS (table-based asymmetric numeral system) coding of delta bit-width
// classes — the entropy layer under BRO-ANS (see DESIGN.md "Entropy-coded
// index streams").
//
// The fixed-width BRO schemes spend bit_alloc[c] bits on every delta of a
// slice column, i.e. the per-column *maximum* width. The entropy coder
// instead maps each delta to its bit-width class s = Γ(delta) (class 0 is
// the ELLPACK padding sentinel, delta 0) and spends ~log2(1/p_s) bits on
// the class plus s-1 raw bits for the mantissa (the leading 1 of an s-bit
// value is implied). Class probabilities are captured in one normalized
// frequency table per matrix whose entries sum to L = 1 << table_log.
//
// Stream layout per row (MSB-first, decoded strictly forward):
//
//   per symbol: [mantissa: class-1 bits] [state renormalization bits: nb bits]
//
// The encoder runs backwards (LIFO, as ANS requires) from state L,
// recording per-symbol bit fields, and emits them in forward order; the
// final encoder state (= the decoder's initial state) is carried out of
// band so a stream holds nothing but symbol fields — that is what lets
// BRO-ANS interleave eight rows round-robin into one lane group and decode
// all eight states from a single aligned load (DESIGN.md §10). The decoder
// is a strict read-ahead loop — one table lookup plus one bit-read per
// symbol — with the same symbol-buffer refill structure as the fixed-width
// LaneDecoder, so it multiplexes across rows unchanged. The legacy
// single-stream helpers (ans_encode_row / ans_decode_row) prefix the
// initial state as table_log leading bits and remain the self-contained
// round-trip oracle.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "bits/bit_string.h"
#include "bits/bitwidth.h"

namespace bro::bits {

/// The normalized class-frequency model plus its packed decode table.
///
/// Decode-table entries pack, for table position p in [0, L):
///   bits  0..5  — class s (0..32)
///   bits  6..10 — nb, renormalization bit count for this transition
///   bits 11..31 — base, the next-state contribution (new state = base + the
///                 nb read bits); base < 2L, so table_log <= 15 keeps the
///                 entry in 32 bits with room to spare.
class AnsTable {
 public:
  /// Delta bit-width classes 0 (padding) through 32.
  static constexpr int kNumClasses = 33;
  /// L must cover every present class (>= kNumClasses) and the packed
  /// base/frequency fields must fit (base < 2L in 21 bits, freq <= L in
  /// uint16), so table_log lives in [6, 15].
  static constexpr int kMinTableLog = 6;
  static constexpr int kMaxTableLog = 15;

  AnsTable() = default;

  /// Normalize a class histogram (kNumClasses counts) to frequencies
  /// summing exactly to 1 << table_log — every present class keeps at
  /// least 1 — and build the decode table. An all-zero histogram yields a
  /// degenerate table that codes only class 0.
  static AnsTable from_histogram(std::span<const std::uint64_t> histogram,
                                 int table_log);

  /// Rebuild from an already-normalized frequency table (the serialized
  /// form). Throws on invalid input: wrong size or sum != 1 << table_log.
  static AnsTable from_freqs(std::vector<std::uint16_t> freqs, int table_log);

  int table_log() const { return table_log_; }
  std::uint32_t size() const { return 1u << table_log_; }
  const std::vector<std::uint16_t>& freqs() const { return freqs_; }
  std::uint16_t freq(int cls) const {
    return freqs_[static_cast<std::size_t>(cls)];
  }
  /// Cumulative frequency (table offset) of class cls.
  std::uint32_t cum(int cls) const {
    return cum_[static_cast<std::size_t>(cls)];
  }

  /// Raw decode table (size() packed entries) for the kernels.
  const std::uint32_t* decode_data() const { return decode_.data(); }
  /// Packed entry for state x in [L, 2L).
  std::uint32_t entry(std::uint32_t x) const {
    return decode_[x - size()];
  }
  static constexpr int entry_class(std::uint32_t e) {
    return static_cast<int>(e & 63u);
  }
  static constexpr int entry_bits(std::uint32_t e) {
    return static_cast<int>((e >> 6) & 31u);
  }
  static constexpr std::uint32_t entry_base(std::uint32_t e) {
    return e >> 11;
  }

  /// Serialized footprint: the normalized frequency table (the decode
  /// table is derived on load).
  std::size_t serialized_bytes() const {
    return freqs_.size() * sizeof(std::uint16_t) + sizeof(std::int32_t);
  }
  /// Heap bytes as resident in memory (decode table included).
  std::size_t resident_bytes() const {
    return decode_.size() * sizeof(std::uint32_t) +
           freqs_.size() * sizeof(std::uint16_t) +
           cum_.size() * sizeof(std::uint32_t);
  }

 private:
  void build_decode_table();

  int table_log_ = 0;
  std::vector<std::uint16_t> freqs_;  // kNumClasses, sum == 1 << table_log_
  std::vector<std::uint32_t> cum_;    // kNumClasses + 1 prefix sums
  std::vector<std::uint32_t> decode_; // 1 << table_log_ packed entries
};

/// The bit-width class of a delta: Γ(delta), with class 0 = the padding
/// sentinel (kInvalidDelta).
constexpr int ans_class_of(std::uint32_t delta) {
  return bit_width_of(delta);
}

/// Per-symbol encoder scratch (see ans_encode_row).
struct AnsEncSym {
  std::uint32_t mantissa = 0;    // delta minus its implied leading 1
  std::uint16_t state_bits = 0;  // renormalization bits pushed out
  std::uint8_t mantissa_nbits = 0;
  std::uint8_t state_nbits = 0;
};

/// Encode one row of deltas (padding slots = kInvalidDelta) onto `out` as
/// symbol fields only — no in-stream initial state — and return the final
/// encoder state as an offset x - L in [0, L) for out-of-band storage.
/// `scratch` is caller-owned to keep repeated encodes allocation-free; it
/// is resized as needed. Every class present in `deltas` must have nonzero
/// frequency in `table`.
std::uint32_t ans_encode_row_split(const AnsTable& table,
                                   std::span<const std::uint32_t> deltas,
                                   std::vector<AnsEncSym>& scratch,
                                   BitString& out);

/// Reference forward decode of `count` deltas from the start of a
/// symbol-fields-only stream, seeded with the encoder's out-of-band state
/// offset — the bits-level oracle for the interleaved BRO-ANS layout.
std::vector<std::uint32_t> ans_decode_row_split(const AnsTable& table,
                                                const BitString& s,
                                                std::uint32_t init_state,
                                                std::size_t count);

/// Self-contained variant: prefixes the initial state as table_log leading
/// bits so one BitString round-trips on its own.
void ans_encode_row(const AnsTable& table,
                    std::span<const std::uint32_t> deltas,
                    std::vector<AnsEncSym>& scratch, BitString& out);

/// Reference decode of `count` deltas from the start of `s` (self-contained
/// layout) — the bits-level round-trip oracle for tests and validators.
std::vector<std::uint32_t> ans_decode_row(const AnsTable& table,
                                          const BitString& s,
                                          std::size_t count);

} // namespace bro::bits
