// Symbol-stream multiplexing (the final stage of Fig. 1/2).
//
// Given h per-row bit strings that have been padded to the same number S of
// sym_len-bit symbols, the symbols are interleaved so that stream[c*h + t]
// holds symbol c of row t. During decompression, thread t of a slice loads
// consecutive groups of h symbols together with its warp-mates — a coalesced
// access pattern on the GPU.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "bits/bit_string.h"

namespace bro::bits {

/// A multiplexed stream of fixed-width symbols. Symbols are stored one per
/// uint64 slot for decode speed on the host; byte_size() reports the true
/// packed size (sym_len bits per symbol) used for space-savings accounting
/// and for the simulator's memory addressing.
class MuxedStream {
 public:
  MuxedStream() = default;
  MuxedStream(int sym_len, std::size_t height, std::size_t symbols_per_row);

  /// Build by interleaving `rows` (each padded to the same symbol count).
  static MuxedStream interleave(std::span<const BitString> rows, int sym_len);

  int sym_len() const { return sym_len_; }
  std::size_t height() const { return height_; }
  std::size_t symbols_per_row() const { return symbols_per_row_; }
  std::size_t total_symbols() const { return slots_.size(); }

  /// Symbol c of row t (the GPU access comp_str[c*h + t]).
  std::uint64_t at(std::size_t c, std::size_t t) const {
    return slots_[c * height_ + t];
  }

  /// Linear access by flat symbol index.
  std::uint64_t operator[](std::size_t i) const { return slots_[i]; }
  std::uint64_t& slot(std::size_t i) { return slots_[i]; }

  /// True packed size in bytes (sym_len bits per symbol, byte-rounded
  /// per stream as a whole).
  std::size_t byte_size() const {
    return (slots_.size() * static_cast<std::size_t>(sym_len_) + 7) / 8;
  }

  /// Simulated device address of flat symbol i relative to the stream base.
  std::size_t symbol_offset_bytes(std::size_t i) const {
    return i * static_cast<std::size_t>(sym_len_ / 8);
  }

 private:
  int sym_len_ = 32;
  std::size_t height_ = 0;
  std::size_t symbols_per_row_ = 0;
  std::vector<std::uint64_t> slots_;
};

} // namespace bro::bits
