// Symbol-stream multiplexing (the final stage of Fig. 1/2).
//
// Given h per-row bit strings that have been padded to the same number S of
// sym_len-bit symbols, the symbols are interleaved so that stream[c*h + t]
// holds symbol c of row t. During decompression, thread t of a slice loads
// consecutive groups of h symbols together with its warp-mates — a coalesced
// access pattern on the GPU.
#pragma once

#include <cstdint>
#include <span>
#include <type_traits>
#include <vector>

#include "bits/bit_string.h"

namespace bro::bits {

/// A multiplexed stream of fixed-width symbols, stored at its true width:
/// sym_len=32 streams keep one uint32 per symbol, sym_len=64 streams one
/// uint64. The paper's entire premise is that SpMV is bandwidth-bound, so
/// the host-side decode path must not re-inflate each 32-bit symbol into a
/// 64-bit slot (2x the traffic the compression just saved). byte_size()
/// reports the packed size (sym_len bits per symbol), which now coincides
/// with the resident storage; the width-specialized kernels read the raw
/// slot array through data<SymT>().
class MuxedStream {
 public:
  MuxedStream() = default;
  MuxedStream(int sym_len, std::size_t height, std::size_t symbols_per_row);

  /// Build by interleaving `rows` (each padded to the same symbol count).
  static MuxedStream interleave(std::span<const BitString> rows, int sym_len);

  int sym_len() const { return sym_len_; }
  std::size_t height() const { return height_; }
  std::size_t symbols_per_row() const { return symbols_per_row_; }
  std::size_t total_symbols() const {
    return sym_len_ == 32 ? slots32_.size() : slots64_.size();
  }

  /// Symbol c of row t (the GPU access comp_str[c*h + t]).
  std::uint64_t at(std::size_t c, std::size_t t) const {
    const std::size_t i = c * height_ + t;
    return sym_len_ == 32 ? slots32_[i] : slots64_[i];
  }

  /// Linear access by flat symbol index.
  std::uint64_t operator[](std::size_t i) const {
    return sym_len_ == 32 ? slots32_[i] : slots64_[i];
  }

  /// Store flat symbol i. The value must fit in sym_len bits.
  void set_slot(std::size_t i, std::uint64_t v);

  /// Raw slot array for the width-specialized decode kernels. SymT must
  /// match the stream's symbol width (uint32_t for sym_len=32, uint64_t for
  /// sym_len=64).
  template <typename SymT>
  const SymT* data() const {
    static_assert(std::is_same_v<SymT, std::uint32_t> ||
                  std::is_same_v<SymT, std::uint64_t>);
    if constexpr (std::is_same_v<SymT, std::uint32_t>)
      return slots32_.data();
    else
      return slots64_.data();
  }

  /// True packed size in bytes (sym_len bits per symbol, byte-rounded
  /// per stream as a whole).
  std::size_t byte_size() const {
    return (total_symbols() * static_cast<std::size_t>(sym_len_) + 7) / 8;
  }

  /// Actual heap bytes of the slot storage. Equal to byte_size() now that
  /// symbols are stored at their true width — half the former one-uint64-
  /// per-symbol footprint for sym_len=32 streams. Feeds the plan/PlanCache
  /// resident-byte accounting.
  std::size_t resident_bytes() const {
    return slots32_.size() * sizeof(std::uint32_t) +
           slots64_.size() * sizeof(std::uint64_t);
  }

  /// Simulated device address of flat symbol i relative to the stream base.
  std::size_t symbol_offset_bytes(std::size_t i) const {
    return i * static_cast<std::size_t>(sym_len_ / 8);
  }

 private:
  int sym_len_ = 32;
  std::size_t height_ = 0;
  std::size_t symbols_per_row_ = 0;
  std::vector<std::uint32_t> slots32_; // used when sym_len == 32
  std::vector<std::uint64_t> slots64_; // used when sym_len == 64
};

} // namespace bro::bits
