// Delta coding of index sequences (the preprocessing stage of Fig. 1/2).
//
// Column indices within a matrix row are strictly increasing, so successive
// differences are >= 1 once indices are biased to 1-based values. The BRO
// schemes reserve delta value 0 for ELLPACK padding ("invalid"), which is why
// the bias matters: a valid first column index of 0 still produces delta 1.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/types.h"

namespace bro::bits {

/// Sentinel delta marking an ELLPACK padding slot.
inline constexpr std::uint32_t kInvalidDelta = 0;

/// Delta-encode a strictly increasing run of 0-based column indices into
/// 1-based gaps: out[0] = idx[0]+1, out[j] = idx[j]-idx[j-1] (all >= 1).
std::vector<std::uint32_t> delta_encode_row(std::span<const index_t> idx);

/// Inverse of delta_encode_row. Deltas equal to kInvalidDelta terminate
/// nothing here; they are simply skipped (they carry no index).
std::vector<index_t> delta_decode_row(std::span<const std::uint32_t> deltas);

/// Delta-encode a non-decreasing sequence (BRO-COO row indices along a warp
/// lane): out[j] = idx[j] - prev, with `prev` starting at `base`. Gaps may be
/// zero (repeated rows are the common case in COO).
std::vector<std::uint32_t> delta_encode_monotonic(std::span<const index_t> idx,
                                                  index_t base);

/// Inverse of delta_encode_monotonic.
std::vector<index_t> delta_decode_monotonic(std::span<const std::uint32_t> deltas,
                                            index_t base);

} // namespace bro::bits
