#include "bits/ans.h"

#include <algorithm>
#include <numeric>

#include "util/error.h"

namespace bro::bits {

AnsTable AnsTable::from_histogram(std::span<const std::uint64_t> histogram,
                                  int table_log) {
  BRO_CHECK_MSG(histogram.size() == static_cast<std::size_t>(kNumClasses),
                "class histogram must have " << kNumClasses << " entries");
  BRO_CHECK_MSG(table_log >= kMinTableLog && table_log <= kMaxTableLog,
                "table_log must be in [" << kMinTableLog << ", "
                                         << kMaxTableLog << "], got "
                                         << table_log);
  const std::uint32_t L = 1u << table_log;
  const std::uint64_t total =
      std::accumulate(histogram.begin(), histogram.end(), std::uint64_t{0});

  std::vector<std::uint16_t> freqs(kNumClasses, 0);
  if (total == 0) {
    // Degenerate model: nothing was counted, code only the padding class.
    freqs[0] = static_cast<std::uint16_t>(L);
    return from_freqs(std::move(freqs), table_log);
  }

  // Proportional allocation with a floor of 1 for every present class, then
  // trim/grant the rounding residue against the largest frequencies. The
  // floor guarantees encodability of every observed symbol; L >= kNumClasses
  // guarantees the trim loop terminates above sum == #present classes.
  std::uint64_t sum = 0;
  for (int s = 0; s < kNumClasses; ++s) {
    const std::uint64_t h = histogram[static_cast<std::size_t>(s)];
    if (h == 0) continue;
    const std::uint64_t f = std::max<std::uint64_t>(1, h * L / total);
    freqs[static_cast<std::size_t>(s)] = static_cast<std::uint16_t>(f);
    sum += f;
  }
  const auto largest = [&freqs] {
    int arg = 0;
    for (int s = 1; s < kNumClasses; ++s)
      if (freqs[static_cast<std::size_t>(s)] >
          freqs[static_cast<std::size_t>(arg)])
        arg = s;
    return arg;
  };
  while (sum > L) {
    const int arg = largest();
    BRO_CHECK_MSG(freqs[static_cast<std::size_t>(arg)] > 1,
                  "frequency normalization cannot reach table size");
    --freqs[static_cast<std::size_t>(arg)];
    --sum;
  }
  if (sum < L) {
    freqs[static_cast<std::size_t>(largest())] +=
        static_cast<std::uint16_t>(L - sum);
  }
  return from_freqs(std::move(freqs), table_log);
}

AnsTable AnsTable::from_freqs(std::vector<std::uint16_t> freqs,
                              int table_log) {
  BRO_CHECK_MSG(table_log >= kMinTableLog && table_log <= kMaxTableLog,
                "table_log must be in [" << kMinTableLog << ", "
                                         << kMaxTableLog << "], got "
                                         << table_log);
  BRO_CHECK_MSG(freqs.size() == static_cast<std::size_t>(kNumClasses),
                "frequency table must have " << kNumClasses << " entries");
  const std::uint32_t L = 1u << table_log;
  std::uint64_t sum = 0;
  for (const std::uint16_t f : freqs) sum += f;
  BRO_CHECK_MSG(sum == L, "frequencies must sum to " << L << ", got " << sum);

  AnsTable t;
  t.table_log_ = table_log;
  t.freqs_ = std::move(freqs);
  t.cum_.assign(kNumClasses + 1, 0);
  for (int s = 0; s < kNumClasses; ++s)
    t.cum_[static_cast<std::size_t>(s) + 1] =
        t.cum_[static_cast<std::size_t>(s)] +
        t.freqs_[static_cast<std::size_t>(s)];
  t.build_decode_table();
  return t;
}

void AnsTable::build_decode_table() {
  // Sequential ("precise") symbol spread: class s owns table positions
  // [cum[s], cum[s]+f_s). For position p = cum[s]+q the decoder's new
  // pre-renormalization state is f_s + q, shifted up by nb to land back in
  // the working interval [L, 2L).
  const std::uint32_t L = 1u << table_log_;
  decode_.assign(L, 0);
  std::uint32_t p = 0;
  for (int s = 0; s < kNumClasses; ++s) {
    const std::uint32_t f = freqs_[static_cast<std::size_t>(s)];
    for (std::uint32_t q = 0; q < f; ++q, ++p) {
      const std::uint32_t new_x = f + q;
      const int nb = table_log_ - (bit_width_of(new_x) - 1);
      const std::uint32_t base = new_x << nb;
      decode_[p] = static_cast<std::uint32_t>(s) |
                   (static_cast<std::uint32_t>(nb) << 6) | (base << 11);
    }
  }
}

std::uint32_t ans_encode_row_split(const AnsTable& table,
                                   std::span<const std::uint32_t> deltas,
                                   std::vector<AnsEncSym>& scratch,
                                   BitString& out) {
  const int tl = table.table_log();
  BRO_CHECK_MSG(tl > 0, "encoding through an empty AnsTable");
  const std::uint32_t L = 1u << tl;
  scratch.resize(deltas.size());

  // LIFO encode from the last symbol: push renormalization bits out of the
  // state until x/2^nb lands in [f_s, 2f_s), then map into [L, 2L) through
  // the class's cumulative slot. nb is maxBits or maxBits-1 — the standard
  // one-branch renormalization for power-of-two L.
  std::uint32_t x = L;
  for (std::size_t i = deltas.size(); i-- > 0;) {
    const std::uint32_t d = deltas[i];
    const int cls = ans_class_of(d);
    const std::uint32_t f = table.freq(cls);
    BRO_CHECK_MSG(f > 0, "delta class " << cls
                                        << " has zero frequency in table");
    const int max_bits = tl - (bit_width_of(f) - 1);
    const int nb =
        x >= (f << max_bits) ? max_bits : max_bits - 1;
    AnsEncSym& rec = scratch[i];
    rec.mantissa =
        cls > 0 ? (d & static_cast<std::uint32_t>(max_value_for_bits(cls - 1)))
                : 0;
    rec.mantissa_nbits = static_cast<std::uint8_t>(cls > 0 ? cls - 1 : 0);
    rec.state_bits = static_cast<std::uint16_t>(
        x & static_cast<std::uint32_t>(max_value_for_bits(nb)));
    rec.state_nbits = static_cast<std::uint8_t>(nb);
    x = L + table.cum(cls) + ((x >> nb) - f);
  }

  // Emit forward: each symbol's mantissa and renormalization bits in
  // decode order; the final encoder state is the caller's to carry.
  for (const AnsEncSym& rec : scratch) {
    out.append(rec.mantissa, rec.mantissa_nbits);
    out.append(rec.state_bits, rec.state_nbits);
  }
  return x - L;
}

void ans_encode_row(const AnsTable& table,
                    std::span<const std::uint32_t> deltas,
                    std::vector<AnsEncSym>& scratch, BitString& out) {
  BitString fields;
  const std::uint32_t x0 = ans_encode_row_split(table, deltas, scratch, fields);
  out.append(x0, table.table_log());
  out.append(fields);
}

namespace {

/// Shared forward-decode core: `x` is already in the working interval.
std::vector<std::uint32_t> decode_fields(const AnsTable& table,
                                         BitStringReader& reader,
                                         std::uint32_t x, std::size_t count) {
  std::vector<std::uint32_t> deltas(count);
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint32_t e = table.entry(x);
    const int cls = AnsTable::entry_class(e);
    const int nb = AnsTable::entry_bits(e);
    const std::uint32_t mantissa =
        cls > 0 ? static_cast<std::uint32_t>(reader.read(cls - 1)) : 0;
    const std::uint32_t state_bits =
        static_cast<std::uint32_t>(reader.read(nb));
    deltas[i] = cls > 0 ? ((1u << (cls - 1)) | mantissa) : 0;
    x = AnsTable::entry_base(e) + state_bits;
  }
  return deltas;
}

} // namespace

std::vector<std::uint32_t> ans_decode_row_split(const AnsTable& table,
                                                const BitString& s,
                                                std::uint32_t init_state,
                                                std::size_t count) {
  const int tl = table.table_log();
  BRO_CHECK_MSG(tl > 0, "decoding through an empty AnsTable");
  const std::uint32_t L = 1u << tl;
  BRO_CHECK_MSG(init_state < L, "ANS initial state out of range");
  BitStringReader reader(s);
  return decode_fields(table, reader, L + init_state, count);
}

std::vector<std::uint32_t> ans_decode_row(const AnsTable& table,
                                          const BitString& s,
                                          std::size_t count) {
  const int tl = table.table_log();
  BRO_CHECK_MSG(tl > 0, "decoding through an empty AnsTable");
  const std::uint32_t L = 1u << tl;
  BitStringReader reader(s);
  const std::uint32_t x = L + static_cast<std::uint32_t>(reader.read(tl));
  return decode_fields(table, reader, x, count);
}

} // namespace bro::bits
