// AVX2 BRO decode kernel set (8 x u32 / 4 x u64 lanes). Compiled with
// -mavx2 -ffp-contract=off when the toolchain supports it (see
// src/kernels/CMakeLists.txt); collapses to a stub exporting a null set
// otherwise, so non-x86 builds link unchanged.
#include "kernels/bro_decode_simd.h"

#if defined(__AVX2__)

#define BRO_SIMD_NS simd_avx2
#define BRO_SIMD_ISA ::bro::kernels::SimdIsa::kAvx2
#include "kernels/bro_decode_simd_impl.h"
#undef BRO_SIMD_NS
#undef BRO_SIMD_ISA

namespace bro::kernels::detail {
const SimdKernelSet* const kSimdSetAvx2 = &simd_avx2::kKernelSet;
} // namespace bro::kernels::detail

#else

namespace bro::kernels::detail {
const SimdKernelSet* const kSimdSetAvx2 = nullptr;
} // namespace bro::kernels::detail

#endif
