// Scalar BRO-BCSR kernels and the baseline-ABI dispatch layer.
#include "kernels/bro_bcsr_decode.h"

#include <algorithm>

#include "bits/bitwidth.h"
#include "bits/delta.h"
#include "util/error.h"

namespace bro::kernels {

namespace {

using core::BcsrLaneAcc;
using core::BroBcsr;
using core::BroEllSlice;

/// Symbol-buffer decoder over one lane (block row) of a muxed stream,
/// templated on the symbol type. Decodes the identical sequence as
/// core::RowStreamDecoder (same b <= rb load rule), with the symbol width a
/// compile-time constant.
template <typename SymT>
class LaneStream {
 public:
  LaneStream(const bits::MuxedStream& s, std::size_t lane)
      : base_(s.template data<SymT>()), height_(s.height()), lane_(lane) {}

  std::uint32_t next(int b) {
    std::uint64_t decoded;
    if (b <= rb_) {
      decoded = take(b);
      shift_out(b);
      rb_ -= b;
    } else {
      decoded = take(rb_);
      const int b2 = b - rb_;
      sym_ = static_cast<std::uint64_t>(base_[loads_ * height_ + lane_]);
      ++loads_;
      decoded = (decoded << b2) | take(b2);
      shift_out(b2);
      rb_ = kSymLen - b2;
    }
    return static_cast<std::uint32_t>(decoded);
  }

 private:
  static constexpr int kSymLen = 8 * static_cast<int>(sizeof(SymT));
  static constexpr std::uint64_t kMask = bits::max_value_for_bits(kSymLen);

  std::uint64_t take(int q) const {
    if (q <= 0) return 0;
    return (sym_ >> (kSymLen - q)) & bits::max_value_for_bits(q);
  }
  void shift_out(int q) { sym_ = (q >= 64 ? 0 : (sym_ << q)) & kMask; }

  const SymT* base_;
  std::size_t height_;
  std::size_t lane_;
  std::uint64_t sym_ = 0;
  int rb_ = 0;
  std::size_t loads_ = 0;
};

/// One slice's SpMV, shape-templated (BR/BC = -1 reads the shape at run
/// time). Performs exactly the contract op sequence of core::BroBcsr::spmv.
template <typename SymT, int BR, int BC>
void slice_spmv(const BroBcsr& a, std::size_t si, std::span<const value_t> x,
                std::span<value_t> y) {
  const BroEllSlice& slice = a.slices()[si];
  const int br = BR > 0 ? BR : a.block_r();
  const int bc = BC > 0 ? BC : a.block_c();
  const auto tile = static_cast<std::size_t>(br) * static_cast<std::size_t>(bc);
  const value_t* vb = a.vals().data() + a.slice_val_offset(si);
  const index_t rows = a.rows(), cols = a.cols();
  // Shape-templated instantiations size the accumulator bank to the block
  // height: a 2x2 slice then clears and reduces 2 lane groups per block
  // row, not 8 — at two output rows per block row the bank setup would
  // otherwise dominate the whole kernel.
  constexpr int kAccRows = BR > 0 ? BR : 8;
  for (index_t t = 0; t < slice.height; ++t) {
    const index_t r0 = (slice.first_row + t) * br;
    const int rh = static_cast<int>(std::min<index_t>(br, rows - r0));
    BcsrLaneAcc acc[kAccRows];
    LaneStream<SymT> dec(slice.stream, static_cast<std::size_t>(t));
    const value_t* trow =
        vb + static_cast<std::size_t>(t) *
                 static_cast<std::size_t>(slice.num_col) * tile;
    index_t bcol = -1;
    for (index_t j = 0; j < slice.num_col; ++j) {
      const std::uint32_t d =
          dec.next(slice.bit_alloc[static_cast<std::size_t>(j)]);
      if (d == bits::kInvalidDelta) continue;
      bcol += static_cast<index_t>(d);
      const value_t* tv = trow + static_cast<std::size_t>(j) * tile;
      const index_t c0 = bcol * bc;
      const int ch = static_cast<int>(std::min<index_t>(bc, cols - c0));
      if (rh == br && ch == bc) {
        // c0 is bc-aligned and bc divides 8, so the block's columns map to
        // the contiguous lanes [c0 & 7, (c0 & 7) + bc) — hoist the lane
        // base instead of recomputing col & 7 per entry. Same products,
        // same lanes, same order as BcsrLaneAcc::add.
        const int lbase = static_cast<int>(c0 & 7);
        for (int i = 0; i < br; ++i) {
          value_t* lane = acc[i].lane + lbase;
          const value_t* tr = tv + i * bc;
          for (int k = 0; k < bc; ++k) {
            const value_t p = tr[k] * x[static_cast<std::size_t>(c0 + k)];
            lane[k] += p;
          }
        }
      } else {
        for (int i = 0; i < rh; ++i)
          for (int k = 0; k < ch; ++k)
            acc[i].add(c0 + k, tv[i * bc + k],
                       x[static_cast<std::size_t>(c0 + k)]);
      }
    }
    for (int i = 0; i < rh; ++i)
      y[static_cast<std::size_t>(r0 + i)] = acc[i].reduce();
  }
}

/// One slice's SpMM over chunks of up to 8 right-hand sides: the stream is
/// decoded once per chunk and every column's accumulation follows the
/// single-vector contract exactly (acc[i][lane][j] sees the same products in
/// the same order as column j's spmv).
template <typename SymT, int BR, int BC>
void slice_spmm(const BroBcsr& a, std::size_t si, std::span<const value_t> x,
                std::span<value_t> y, int k) {
  const BroEllSlice& slice = a.slices()[si];
  const int br = BR > 0 ? BR : a.block_r();
  const int bc = BC > 0 ? BC : a.block_c();
  const auto tile = static_cast<std::size_t>(br) * static_cast<std::size_t>(bc);
  const value_t* vb = a.vals().data() + a.slice_val_offset(si);
  const index_t rows = a.rows(), cols = a.cols();
  const auto uk = static_cast<std::size_t>(k);
  for (int j0 = 0; j0 < k; j0 += 8) {
    const int kc = std::min(8, k - j0);
    for (index_t t = 0; t < slice.height; ++t) {
      const index_t r0 = (slice.first_row + t) * br;
      const int rh = static_cast<int>(std::min<index_t>(br, rows - r0));
      value_t acc[8][8][8]; // [block row][lane][rhs in chunk]
      for (int i = 0; i < rh; ++i)
        for (int l = 0; l < 8; ++l)
          for (int j = 0; j < kc; ++j) acc[i][l][j] = 0;
      LaneStream<SymT> dec(slice.stream, static_cast<std::size_t>(t));
      const value_t* trow =
          vb + static_cast<std::size_t>(t) *
                   static_cast<std::size_t>(slice.num_col) * tile;
      index_t bcol = -1;
      for (index_t j = 0; j < slice.num_col; ++j) {
        const std::uint32_t d =
            dec.next(slice.bit_alloc[static_cast<std::size_t>(j)]);
        if (d == bits::kInvalidDelta) continue;
        bcol += static_cast<index_t>(d);
        const value_t* tv = trow + static_cast<std::size_t>(j) * tile;
        const index_t c0 = bcol * bc;
        const int ch = static_cast<int>(std::min<index_t>(bc, cols - c0));
        for (int i = 0; i < rh; ++i) {
          for (int kk = 0; kk < ch; ++kk) {
            const int lane = (c0 + kk) & 7;
            const value_t av = tv[i * bc + kk];
            const value_t* xv =
                x.data() + static_cast<std::size_t>(c0 + kk) * uk + j0;
            for (int jj = 0; jj < kc; ++jj) {
              const value_t p = av * xv[jj];
              acc[i][lane][jj] += p;
            }
          }
        }
      }
      for (int i = 0; i < rh; ++i) {
        value_t* yr = y.data() + static_cast<std::size_t>(r0 + i) * uk + j0;
        for (int jj = 0; jj < kc; ++jj) {
          const auto& l = acc[i];
          yr[jj] = (((l[0][jj] + l[1][jj]) + (l[2][jj] + l[3][jj])) +
                    ((l[4][jj] + l[5][jj]) + (l[6][jj] + l[7][jj]))) +
                   0.0;
        }
      }
    }
  }
}

template <typename SymT, int BR, int BC>
constexpr BroBcsrKernel make_scalar_kernel() {
  return {&slice_spmv<SymT, BR, BC>, &slice_spmm<SymT, BR, BC>,
          SimdIsa::kScalar};
}

template <typename SymT>
BroBcsrKernel scalar_kernel_for(int shape_index) {
  switch (shape_index) {
    case 0: return make_scalar_kernel<SymT, 2, 2>();
    case 1: return make_scalar_kernel<SymT, 4, 4>();
    case 2: return make_scalar_kernel<SymT, 8, 1>();
    case 3: return make_scalar_kernel<SymT, 1, 8>();
    default: return make_scalar_kernel<SymT, -1, -1>();
  }
}

} // namespace

int bcsr_shape_index(int br, int bc) {
  for (int i = 0; i < static_cast<int>(core::kBcsrCandidateShapes.size()); ++i)
    if (core::kBcsrCandidateShapes[static_cast<std::size_t>(i)].first == br &&
        core::kBcsrCandidateShapes[static_cast<std::size_t>(i)].second == bc)
      return i;
  return -1;
}

const BcsrSimdKernelSet* bcsr_simd_kernel_set(SimdIsa isa) {
  switch (isa) {
    case SimdIsa::kSse4: return detail::kBcsrSimdSetSse4;
    case SimdIsa::kAvx2: return detail::kBcsrSimdSetAvx2;
    case SimdIsa::kScalar: break;
  }
  return nullptr;
}

BroBcsrKernel select_bro_bcsr_kernel(const core::BroBcsr& a, SimdIsa isa) {
  const int sym_len = a.options().sym_len;
  const int shape = bcsr_shape_index(a.block_r(), a.block_c());
  BroBcsrKernel k = sym_len == 32 ? scalar_kernel_for<std::uint32_t>(shape)
                                  : scalar_kernel_for<std::uint64_t>(shape);
  if (isa == SimdIsa::kScalar || shape < 0) return k;
  const BcsrSimdKernelSet* set = bcsr_simd_kernel_set(isa);
  if (set == nullptr) return k;
  const auto fn = sym_len == 32 ? set->spmv32[shape] : set->spmv64[shape];
  if (fn != nullptr) {
    k.spmv = fn;
    k.isa = isa;
  }
  return k;
}

BroBcsrKernel generic_bro_bcsr_kernel(int sym_len) {
  return sym_len == 32 ? make_scalar_kernel<std::uint32_t, -1, -1>()
                       : make_scalar_kernel<std::uint64_t, -1, -1>();
}

std::vector<BroBcsrKernel> plan_bro_bcsr_kernels(const core::BroBcsr& a,
                                                 SimdIsa isa) {
  return std::vector<BroBcsrKernel>(a.slices().size(),
                                    select_bro_bcsr_kernel(a, isa));
}

std::vector<BroBcsrKernel> plan_bro_bcsr_kernels(const core::BroBcsr& a) {
  return plan_bro_bcsr_kernels(a, active_simd_isa());
}

void native_spmv_bro_bcsr(const core::BroBcsr& a,
                          std::span<const BroBcsrKernel> kernels,
                          std::span<const value_t> x, std::span<value_t> y) {
  BRO_CHECK(x.size() == static_cast<std::size_t>(a.cols()));
  BRO_CHECK(y.size() == static_cast<std::size_t>(a.rows()));
  BRO_CHECK(kernels.size() == a.slices().size());
#pragma omp parallel for schedule(dynamic, 1)
  for (std::size_t si = 0; si < kernels.size(); ++si)
    kernels[si].spmv(a, si, x, y);
}

void native_spmv_bro_bcsr(const core::BroBcsr& a, std::span<const value_t> x,
                          std::span<value_t> y) {
  BRO_CHECK(x.size() == static_cast<std::size_t>(a.cols()));
  BRO_CHECK(y.size() == static_cast<std::size_t>(a.rows()));
  const BroBcsrKernel k = select_bro_bcsr_kernel(a, active_simd_isa());
#pragma omp parallel for schedule(dynamic, 1)
  for (std::size_t si = 0; si < a.slices().size(); ++si) k.spmv(a, si, x, y);
}

void native_spmv_bro_bcsr_generic(const core::BroBcsr& a,
                                  std::span<const value_t> x,
                                  std::span<value_t> y) {
  BRO_CHECK(x.size() == static_cast<std::size_t>(a.cols()));
  BRO_CHECK(y.size() == static_cast<std::size_t>(a.rows()));
  const BroBcsrKernel k = generic_bro_bcsr_kernel(a.options().sym_len);
#pragma omp parallel for schedule(dynamic, 1)
  for (std::size_t si = 0; si < a.slices().size(); ++si) k.spmv(a, si, x, y);
}

void native_spmm_bro_bcsr(const core::BroBcsr& a,
                          std::span<const BroBcsrKernel> kernels,
                          std::span<const value_t> x, std::span<value_t> y,
                          int k) {
  BRO_CHECK(k > 0);
  BRO_CHECK(x.size() ==
            static_cast<std::size_t>(a.cols()) * static_cast<std::size_t>(k));
  BRO_CHECK(y.size() ==
            static_cast<std::size_t>(a.rows()) * static_cast<std::size_t>(k));
  BRO_CHECK(kernels.size() == a.slices().size());
#pragma omp parallel for schedule(dynamic, 1)
  for (std::size_t si = 0; si < kernels.size(); ++si)
    kernels[si].spmm(a, si, x, y, k);
}

void native_spmm_bro_bcsr(const core::BroBcsr& a, std::span<const value_t> x,
                          std::span<value_t> y, int k) {
  BRO_CHECK(k > 0);
  BRO_CHECK(x.size() ==
            static_cast<std::size_t>(a.cols()) * static_cast<std::size_t>(k));
  BRO_CHECK(y.size() ==
            static_cast<std::size_t>(a.rows()) * static_cast<std::size_t>(k));
  const BroBcsrKernel kn = select_bro_bcsr_kernel(a, active_simd_isa());
#pragma omp parallel for schedule(dynamic, 1)
  for (std::size_t si = 0; si < a.slices().size(); ++si)
    kn.spmm(a, si, x, y, k);
}

} // namespace bro::kernels
