// AVX2 BRO-BCSR kernel set (4 x f64 lanes). Compiled with
// -mavx2 -ffp-contract=off when the toolchain supports it (see
// src/kernels/CMakeLists.txt); collapses to a stub exporting a null set
// otherwise, so non-x86 builds link unchanged.
#include "kernels/bro_bcsr_decode.h"

#if defined(__AVX2__)

#define BRO_SIMD_NS simd_bcsr_avx2
#define BRO_SIMD_ISA ::bro::kernels::SimdIsa::kAvx2
#include "kernels/bro_bcsr_decode_simd_impl.h"
#undef BRO_SIMD_NS
#undef BRO_SIMD_ISA

namespace bro::kernels::detail {
const BcsrSimdKernelSet* const kBcsrSimdSetAvx2 =
    &simd_bcsr_avx2::kBcsrKernelSet;
} // namespace bro::kernels::detail

#else

namespace bro::kernels::detail {
const BcsrSimdKernelSet* const kBcsrSimdSetAvx2 = nullptr;
} // namespace bro::kernels::detail

#endif
