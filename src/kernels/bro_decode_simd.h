// The SIMD decode backend's link seam: one SimdKernelSet per ISA, defined by
// the per-ISA translation units (bro_decode_sse4.cpp / bro_decode_avx2.cpp —
// the only TUs in the tree compiled with ISA target flags) and consumed by
// the baseline-ABI dispatch code (bro_decode.cpp, cpu_features.cpp).
//
// The seam is deliberately data, not code: each per-ISA TU exports a
// constant-initialized pointer to its kernel set (nullptr when the
// toolchain could not target the ISA and the TU collapsed to a stub), so
// probing availability never executes an instruction from an ISA-flagged
// TU on a host that may not support it.
#pragma once

#include <cstdint>

#include "kernels/cpu_features.h"
#include "kernels/native_spmv.h"

namespace bro::kernels {

/// Decode-only lockstep checksum over a muxed symbol stream with per-column
/// bit widths (widths[c] bits for delta c, `cols` deltas per lane, `lanes`
/// lanes): the SIMD counterpart of detail::decode_lane_checksum, summed over
/// every lane. Used by the decode-throughput microbenchmark; the sum equals
/// the scalar decoders' checksum bit for bit.
template <typename SymT>
using SimdChecksumFn = std::uint64_t (*)(const SymT* stream,
                                         std::size_t lanes,
                                         const std::uint8_t* widths,
                                         std::size_t cols);

/// Everything one ISA contributes to dispatch: BRO-ELL slice and BRO-COO
/// interval kernels for both symbol lengths (runtime-width — the vector
/// shift count is a register operand, so one kernel covers every width 0..32
/// uniform or mixed), plus the bench checksum passes. All kernels decode the
/// identical delta sequence and keep per-row/per-segment FP accumulation in
/// scalar program order, so results are bitwise equal to the scalar kernels.
struct SimdKernelSet {
  SimdIsa isa = SimdIsa::kScalar;
  decltype(BroEllKernel::spmv) ell_spmv32 = nullptr;
  decltype(BroEllKernel::spmv) ell_spmv64 = nullptr;
  decltype(BroEllKernel::spmm) ell_spmm32 = nullptr;
  decltype(BroEllKernel::spmm) ell_spmm64 = nullptr;
  decltype(BroCooKernel::spmv) coo_spmv32 = nullptr;
  decltype(BroCooKernel::spmv) coo_spmv64 = nullptr;
  decltype(BroCooKernel::spmm) coo_spmm32 = nullptr;
  decltype(BroCooKernel::spmm) coo_spmm64 = nullptr;
  SimdChecksumFn<std::uint32_t> checksum32 = nullptr;
  SimdChecksumFn<std::uint64_t> checksum64 = nullptr;
};

/// What one ISA contributes to BRO-ANS entropy decode. A separate set (and
/// separate per-ISA TUs, bro_ans_decode_{sse4,avx2}.cpp) because the
/// entropy decoders share nothing with the fixed-width lockstep kernels:
/// they run one ANS state per interleaved lane-group row, with vectorized
/// table gathers and branchless renorm on AVX2. The checksum entries are
/// the decode-only passes the throughput bench and entropy-bench time.
/// Every kernel decodes the identical delta sequence and keeps per-row FP
/// accumulation in scalar program order, so results are bitwise equal to
/// the scalar chains.
struct AnsSimdKernelSet {
  SimdIsa isa = SimdIsa::kScalar;
  decltype(BroAnsKernel::spmv) spmv32 = nullptr;
  decltype(BroAnsKernel::spmv) spmv64 = nullptr;
  std::uint64_t (*checksum32)(const core::BroAns& a,
                              const core::BroAnsSlice& slice) = nullptr;
  std::uint64_t (*checksum64)(const core::BroAns& a,
                              const core::BroAnsSlice& slice) = nullptr;
};

/// The kernel set compiled for `isa`, or nullptr when the binary does not
/// carry one (kScalar, or a toolchain that cannot target the ISA). Link-time
/// availability only — whether the host can execute the set is
/// cpu_features()'s side of the bargain, and active_simd_isa() combines the
/// two.
const SimdKernelSet* simd_kernel_set(SimdIsa isa);

/// Same contract for the BRO-ANS entropy decode set.
const AnsSimdKernelSet* ans_simd_kernel_set(SimdIsa isa);

namespace detail {
// Defined by the per-ISA TUs; read by simd_kernel_set() /
// ans_simd_kernel_set(). Constant initialized, so safe to read from any
// static initializer.
extern const SimdKernelSet* const kSimdSetSse4;
extern const SimdKernelSet* const kSimdSetAvx2;
extern const AnsSimdKernelSet* const kAnsSimdSetSse4;
extern const AnsSimdKernelSet* const kAnsSimdSetAvx2;
} // namespace detail

} // namespace bro::kernels
