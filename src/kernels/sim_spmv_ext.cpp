#include "kernels/sim_spmv_ext.h"

#include <algorithm>
#include <array>

#include "bits/bitwidth.h"
#include "bits/delta.h"
#include "util/error.h"

namespace bro::kernels {

namespace {

constexpr int kWarp = 32;

using AddrArray = std::array<std::uint64_t, kWarp>;

} // namespace

SimResult sim_spmv_sliced_ell(const sim::DeviceSpec& dev,
                              const core::SlicedEll& a,
                              std::span<const value_t> x) {
  BRO_CHECK(x.size() == static_cast<std::size_t>(a.cols()));
  const index_t m = a.rows();
  const int h = a.slice_height();
  const std::uint64_t blocks = std::max<std::uint64_t>(1, a.slices().size());
  sim::SimContext sim(dev, {blocks, h});

  const auto x_arr = sim.alloc(x.size(), sizeof(value_t));
  const auto y_arr = sim.alloc(static_cast<std::uint64_t>(m), sizeof(value_t));
  std::vector<sim::VirtualArray> col_arrs, val_arrs;
  for (const auto& s : a.slices()) {
    col_arrs.push_back(sim.alloc(s.col_idx.size(), sizeof(index_t)));
    val_arrs.push_back(sim.alloc(s.vals.size(), sizeof(value_t)));
  }

  SimResult res;
  res.y.assign(static_cast<std::size_t>(m), value_t{0});
  std::size_t nnz = 0;

  AddrArray addrs{};
  for (std::size_t si = 0; si < a.slices().size(); ++si) {
    const core::SlicedEllSlice& slice = a.slices()[si];
    auto blk = sim.begin_block(si);
    const int warps = (slice.height + kWarp - 1) / kWarp;
    for (int w = 0; w < warps; ++w) {
      const index_t t0 = w * kWarp;
      const int lanes = std::min<index_t>(kWarp, slice.height - t0);

      for (index_t c = 0; c < slice.num_col; ++c) {
        for (int l = 0; l < kWarp; ++l)
          addrs[static_cast<std::size_t>(l)] =
              l < lanes ? col_arrs[si].addr(
                              static_cast<std::uint64_t>(c) * slice.height +
                              t0 + l)
                        : sim::kInactive;
        blk.load_global(addrs, sizeof(index_t));
        blk.add_int_ops(static_cast<std::uint64_t>(lanes) * kEllIterIntOps);

        AddrArray vaddrs{};
        AddrArray xaddrs{};
        int active = 0;
        for (int l = 0; l < kWarp; ++l) {
          vaddrs[static_cast<std::size_t>(l)] = sim::kInactive;
          xaddrs[static_cast<std::size_t>(l)] = sim::kInactive;
          if (l >= lanes) continue;
          const index_t t = t0 + l;
          const index_t col =
              slice.col_idx[static_cast<std::size_t>(c) * slice.height + t];
          if (col == sparse::kPad) continue;
          vaddrs[static_cast<std::size_t>(l)] = val_arrs[si].addr(
              static_cast<std::uint64_t>(c) * slice.height + t);
          xaddrs[static_cast<std::size_t>(l)] =
              x_arr.addr(static_cast<std::uint64_t>(col));
          res.y[static_cast<std::size_t>(slice.first_row + t)] +=
              slice.vals[static_cast<std::size_t>(c) * slice.height + t] *
              x[static_cast<std::size_t>(col)];
          ++active;
          ++nnz;
        }
        if (active > 0) {
          blk.load_global(vaddrs, sizeof(value_t));
          blk.load_texture(xaddrs, sizeof(value_t));
          blk.add_dp_fma(static_cast<std::uint64_t>(active));
        }
      }

      for (int l = 0; l < kWarp; ++l)
        addrs[static_cast<std::size_t>(l)] =
            l < lanes ? y_arr.addr(static_cast<std::uint64_t>(
                            slice.first_row + t0 + l))
                      : sim::kInactive;
      blk.store_global(addrs, sizeof(value_t));
    }
  }

  res.stats = sim.stats();
  res.time = sim.estimate(2.0 * static_cast<double>(nnz));
  return res;
}

SimResult sim_spmv_bro_ell_vector(const sim::DeviceSpec& dev,
                                  const core::BroEllVector& a,
                                  std::span<const value_t> x) {
  // The inner kernel is a plain BRO-ELL launch over m*T sub-rows; on top of
  // its trace we charge the in-warp partial-sum reduction (log2(T) shuffle +
  // add steps per sub-row) and correct the y-store traffic (one store per
  // row, not per sub-row).
  SimResult inner = sim_spmv_bro_ell(dev, a.inner(), x);

  const int t_count = a.threads_per_row();
  const index_t m = a.rows();
  std::vector<value_t> y(static_cast<std::size_t>(m), value_t{0});
  for (index_t r = 0; r < m; ++r)
    for (int l = 0; l < t_count; ++l)
      y[static_cast<std::size_t>(r)] +=
          inner.y[static_cast<std::size_t>(r) * t_count +
                  static_cast<std::size_t>(l)];
  inner.y = std::move(y);

  if (t_count > 1) {
    int steps = 0;
    for (int s = 1; s < t_count; s <<= 1) ++steps;
    const double extra_shfl =
        static_cast<double>(m) * t_count * steps; // shuffle + add per step
    inner.stats.shfl_ops += extra_shfl;
    inner.stats.dp_flops += extra_shfl;
    // Shuffle issue rate: device shfl throughput across all SMs.
    const double shfl_rate =
        dev.shfl_ops_per_cycle_sm * dev.sm_count * dev.clock_ghz * 1e9;
    const double fma_rate =
        dev.dp_fma_per_cycle_sm() * dev.sm_count * dev.clock_ghz * 1e9;
    const double extra_s = extra_shfl / shfl_rate + extra_shfl / fma_rate;
    inner.time.compute_seconds += extra_s;
    inner.time.seconds += dev.overlap_alpha * extra_s;
    // Store saving: (T-1)/T of the y stores disappear; the traffic is tiny
    // relative to the streams, so the correction is applied to bytes only.
    const std::uint64_t saved =
        static_cast<std::uint64_t>(m) * (t_count - 1) * sizeof(value_t);
    inner.stats.dram_write_bytes -=
        std::min(inner.stats.dram_write_bytes, saved);
  }
  // Recompute headline numbers over the original matrix's useful flops.
  std::size_t nnz = 0;
  for (index_t r = 0; r < a.inner().rows(); ++r)
    nnz += a.inner().decode_row(r).size();
  inner.time.gflops = 2.0 * static_cast<double>(nnz) / inner.time.seconds / 1e9;
  inner.time.eai = inner.stats.dram_bytes() > 0
                       ? 2.0 * static_cast<double>(nnz) /
                             static_cast<double>(inner.stats.dram_bytes())
                       : 0;
  return inner;
}

SimResult sim_spmv_bro_ans(const sim::DeviceSpec& dev, const core::BroAns& a,
                           std::span<const value_t> x) {
  BRO_CHECK(x.size() == static_cast<std::size_t>(a.cols()));
  const index_t m = a.rows();
  const int h = a.options().slice_height;
  const int sym_bytes = a.options().sym_len / 8;
  const int sym_len = a.options().sym_len;
  const int tl = a.table().table_log();
  const std::uint64_t blocks = std::max<std::uint64_t>(1, a.slices().size());
  sim::SimContext sim(dev, {blocks, h});

  const auto val_arr = sim.alloc(a.vals().size(), sizeof(value_t));
  const auto x_arr = sim.alloc(x.size(), sizeof(value_t));
  const auto y_arr = sim.alloc(static_cast<std::uint64_t>(m), sizeof(value_t));
  // One device array per lane-group stream plus one per-slice array of
  // out-of-band initial states (v2 interleaved layout, core/bro_ans.h).
  std::vector<std::vector<sim::VirtualArray>> group_arrs;
  std::vector<sim::VirtualArray> init_arrs;
  group_arrs.reserve(a.slices().size());
  init_arrs.reserve(a.slices().size());
  for (const auto& s : a.slices()) {
    std::vector<sim::VirtualArray> ga;
    ga.reserve(s.groups.size());
    for (const auto& g : s.groups)
      ga.push_back(sim.alloc(g.total_symbols(), sym_bytes));
    group_arrs.push_back(std::move(ga));
    init_arrs.push_back(
        sim.alloc(s.init_states.size(), sizeof(std::uint16_t)));
  }

  SimResult res;
  res.y.assign(static_cast<std::size_t>(m), value_t{0});
  std::size_t nnz = 0;

  // Per-lane functional reader over the slice's muxed stream: same bit
  // arithmetic as the host decoders, but reporting which load index (if
  // any) each read consumed so the divergent refill traffic can be issued.
  struct Lane {
    std::uint64_t sym = 0;
    int rb = 0;
    index_t loads = 0;
    std::uint32_t state = 0;
    index_t col = -1;
  };

  AddrArray addrs{};
  for (std::size_t si = 0; si < a.slices().size(); ++si) {
    const core::BroAnsSlice& slice = a.slices()[si];
    auto blk = sim.begin_block(si);
    const auto& slice_group_arrs = group_arrs[si];
    const auto& init_arr = init_arrs[si];
    if (slice.num_col == 0) {
      for (int l = 0; l < kWarp; ++l)
        addrs[static_cast<std::size_t>(l)] =
            l < slice.height
                ? y_arr.addr(static_cast<std::uint64_t>(slice.first_row + l))
                : sim::kInactive;
      blk.store_global(addrs, sizeof(value_t));
      continue;
    }

    const auto read = [&](Lane& ln, index_t t, int b,
                          std::uint64_t& load_addr) -> std::uint32_t {
      std::uint64_t d;
      load_addr = sim::kInactive;
      if (b <= ln.rb) {
        d = b > 0 ? (ln.sym >> (ln.rb - b)) & bits::max_value_for_bits(b) : 0;
        ln.rb -= b;
      } else {
        const int high = ln.rb;
        d = high > 0 ? (ln.sym & bits::max_value_for_bits(high)) : 0;
        const index_t g = t / core::kAnsLaneGroup;
        const index_t j = t % core::kAnsLaneGroup;
        const bits::MuxedStream& mux =
            slice.groups[static_cast<std::size_t>(g)];
        ln.sym = mux.at(static_cast<std::size_t>(ln.loads),
                        static_cast<std::size_t>(j));
        load_addr = slice_group_arrs[static_cast<std::size_t>(g)].addr(
            static_cast<std::uint64_t>(ln.loads) * mux.height() +
            static_cast<std::uint64_t>(j));
        ++ln.loads;
        const int low = b - high;
        d = (d << low) |
            ((ln.sym >> (sym_len - low)) & bits::max_value_for_bits(low));
        ln.rb = sym_len - low;
      }
      return static_cast<std::uint32_t>(d);
    };

    const int warps = (slice.height + kWarp - 1) / kWarp;
    for (int w = 0; w < warps; ++w) {
      const index_t t0 = w * kWarp;
      const int lanes = std::min<index_t>(kWarp, slice.height - t0);
      std::vector<Lane> lane(static_cast<std::size_t>(lanes));

      // Initial state: one coalesced 2-byte load per lane from the
      // out-of-band init_states array (no in-stream bits in the v2 layout).
      for (int l = 0; l < kWarp; ++l) addrs[static_cast<std::size_t>(l)] = sim::kInactive;
      for (int l = 0; l < lanes; ++l) {
        auto& ln = lane[static_cast<std::size_t>(l)];
        ln.state = (1u << tl) +
                   slice.init_states[static_cast<std::size_t>(t0 + l)];
        addrs[static_cast<std::size_t>(l)] =
            init_arr.addr(static_cast<std::uint64_t>(t0 + l));
      }
      blk.load_global(addrs, sizeof(std::uint16_t));
      blk.add_int_ops(static_cast<std::uint64_t>(lanes) * 2);

      for (index_t c = 0; c < slice.num_col; ++c) {
        // Decode-table lookup (shared memory) + class/bits/base unpack +
        // state rebuild: modeled as int ops on top of the bit extraction.
        blk.add_int_ops(static_cast<std::uint64_t>(lanes) *
                        (kBroDecodeIntOps + 4));

        // The mantissa and renormalization reads each refill at most once
        // per lane, and lanes diverge — gather both rounds' addresses.
        AddrArray refill1{};
        AddrArray refill2{};
        AddrArray vaddrs{};
        AddrArray xaddrs{};
        int loads1 = 0, loads2 = 0, active = 0;
        for (int l = 0; l < kWarp; ++l) {
          refill1[static_cast<std::size_t>(l)] = sim::kInactive;
          refill2[static_cast<std::size_t>(l)] = sim::kInactive;
          vaddrs[static_cast<std::size_t>(l)] = sim::kInactive;
          xaddrs[static_cast<std::size_t>(l)] = sim::kInactive;
          if (l >= lanes) continue;
          auto& ln = lane[static_cast<std::size_t>(l)];
          const std::uint32_t e = a.table().entry(ln.state);
          const int cls = bits::AnsTable::entry_class(e);
          const int nb = bits::AnsTable::entry_bits(e);
          std::uint64_t la1, la2;
          const std::uint32_t mantissa =
              cls > 0 ? read(ln, t0 + l, cls - 1, la1) : (la1 = sim::kInactive, 0u);
          const std::uint32_t state_bits = read(ln, t0 + l, nb, la2);
          ln.state = bits::AnsTable::entry_base(e) + state_bits;
          refill1[static_cast<std::size_t>(l)] = la1;
          refill2[static_cast<std::size_t>(l)] = la2;
          if (la1 != sim::kInactive) ++loads1;
          if (la2 != sim::kInactive) ++loads2;
          if (cls == 0) continue; // padding slot
          ln.col += static_cast<index_t>((1u << (cls - 1)) | mantissa);
          const index_t r = slice.first_row + t0 + l;
          vaddrs[static_cast<std::size_t>(l)] =
              val_arr.addr(static_cast<std::uint64_t>(c) * m + r);
          xaddrs[static_cast<std::size_t>(l)] =
              x_arr.addr(static_cast<std::uint64_t>(ln.col));
          res.y[static_cast<std::size_t>(r)] +=
              a.val_at(r, c) * x[static_cast<std::size_t>(ln.col)];
          ++active;
          ++nnz;
        }
        if (loads1 > 0) blk.load_global(refill1, sym_bytes);
        if (loads2 > 0) blk.load_global(refill2, sym_bytes);
        if (active > 0) {
          blk.load_global(vaddrs, sizeof(value_t));
          blk.load_texture(xaddrs, sizeof(value_t));
          blk.add_dp_fma(static_cast<std::uint64_t>(active));
        }
      }

      for (int l = 0; l < kWarp; ++l)
        addrs[static_cast<std::size_t>(l)] =
            l < lanes ? y_arr.addr(static_cast<std::uint64_t>(slice.first_row +
                                                              t0 + l))
                      : sim::kInactive;
      blk.store_global(addrs, sizeof(value_t));
    }
  }

  res.stats = sim.stats();
  res.time = sim.estimate(2.0 * static_cast<double>(nnz));
  return res;
}

SimResult sim_spmv_bro_bcsr(const sim::DeviceSpec& dev, const core::BroBcsr& a,
                            std::span<const value_t> x) {
  BRO_CHECK(x.size() == static_cast<std::size_t>(a.cols()));
  const index_t m = a.rows();
  const int br = a.block_r();
  const int bc = a.block_c();
  const int tile = br * bc;
  const int h = a.options().slice_height;
  const int sym_len = a.options().sym_len;
  const int sym_bytes = sym_len / 8;
  const std::uint64_t blocks = std::max<std::uint64_t>(1, a.slices().size());
  sim::SimContext sim(dev, {blocks, h});

  const auto x_arr = sim.alloc(x.size(), sizeof(value_t));
  const auto y_arr = sim.alloc(static_cast<std::uint64_t>(m), sizeof(value_t));
  std::vector<sim::VirtualArray> idx_arrs, val_arrs;
  for (const auto& s : a.slices()) {
    idx_arrs.push_back(sim.alloc(s.stream.total_symbols(), sym_bytes));
    val_arrs.push_back(sim.alloc(static_cast<std::uint64_t>(s.height) *
                                     std::max<index_t>(1, s.num_col) * tile,
                                 sizeof(value_t)));
  }

  SimResult res;
  std::size_t decoded_blocks = 0;

  AddrArray addrs{};
  for (std::size_t si = 0; si < a.slices().size(); ++si) {
    const core::BroEllSlice& slice = a.slices()[si];
    auto blk = sim.begin_block(si);
    const int warps = (slice.height + kWarp - 1) / kWarp;
    for (int w = 0; w < warps; ++w) {
      const index_t t0 = w * kWarp;
      const int lanes = std::min<index_t>(kWarp, slice.height - t0);

      std::vector<core::RowStreamDecoder> dec;
      dec.reserve(static_cast<std::size_t>(lanes));
      for (int l = 0; l < lanes; ++l)
        dec.emplace_back(slice, t0 + l, sym_len);
      std::vector<index_t> bcol(static_cast<std::size_t>(lanes), -1);

      int rb = 0;
      index_t loads = 0;
      for (index_t c = 0; c < slice.num_col; ++c) {
        const int bwidth = slice.bit_alloc[static_cast<std::size_t>(c)];
        // Uniform per-column widths: the warp's refills stay in lockstep,
        // one coalesced load round whenever the shared buffer runs dry.
        if (bwidth > rb) {
          for (int l = 0; l < kWarp; ++l)
            addrs[static_cast<std::size_t>(l)] =
                l < lanes ? idx_arrs[si].addr(
                                static_cast<std::uint64_t>(loads) * h + t0 + l)
                          : sim::kInactive;
          blk.load_global(addrs, sym_bytes);
          rb = sym_len - (bwidth - rb);
          ++loads;
        } else {
          rb -= bwidth;
        }
        blk.add_int_ops(static_cast<std::uint64_t>(lanes) * kBroDecodeIntOps);

        std::vector<bool> active(static_cast<std::size_t>(lanes), false);
        int nactive = 0;
        for (int l = 0; l < lanes; ++l) {
          const std::uint32_t d = dec[static_cast<std::size_t>(l)].next(bwidth);
          if (d == bits::kInvalidDelta) continue;
          bcol[static_cast<std::size_t>(l)] += static_cast<index_t>(d);
          active[static_cast<std::size_t>(l)] = true;
          ++nactive;
          ++decoded_blocks;
        }
        if (nactive == 0) continue;

        // One decoded block index feeds r*c value loads and FMAs; the tile
        // is contiguous per thread, so element e of every lane's tile forms
        // one warp access round.
        for (int e = 0; e < tile; ++e) {
          for (int l = 0; l < kWarp; ++l)
            addrs[static_cast<std::size_t>(l)] =
                (l < lanes && active[static_cast<std::size_t>(l)])
                    ? val_arrs[si].addr(
                          (static_cast<std::uint64_t>(t0 + l) * slice.num_col +
                           c) *
                              tile +
                          e)
                    : sim::kInactive;
          blk.load_global(addrs, sizeof(value_t));
        }
        // x: one texture read per block column of the tile, reused by all
        // r rows of the block.
        for (int k = 0; k < bc; ++k) {
          for (int l = 0; l < kWarp; ++l) {
            addrs[static_cast<std::size_t>(l)] = sim::kInactive;
            if (l >= lanes || !active[static_cast<std::size_t>(l)]) continue;
            const index_t col = bcol[static_cast<std::size_t>(l)] * bc + k;
            if (col < a.cols())
              addrs[static_cast<std::size_t>(l)] =
                  x_arr.addr(static_cast<std::uint64_t>(col));
          }
          blk.load_texture(addrs, sizeof(value_t));
        }
        blk.add_dp_fma(static_cast<std::uint64_t>(nactive) * tile);
      }

      // Each thread owns br output rows (clipped at the matrix edge).
      for (int i = 0; i < br; ++i) {
        for (int l = 0; l < kWarp; ++l) {
          addrs[static_cast<std::size_t>(l)] = sim::kInactive;
          if (l >= lanes) continue;
          const index_t r = (slice.first_row + t0 + l) * br + i;
          if (r < m) addrs[static_cast<std::size_t>(l)] =
              y_arr.addr(static_cast<std::uint64_t>(r));
        }
        blk.store_global(addrs, sizeof(value_t));
      }
    }
  }

  // Numerical result from the format's reference implementation.
  std::vector<value_t> y(static_cast<std::size_t>(m));
  a.spmv(x, y);
  res.y = std::move(y);

  res.stats = sim.stats();
  // Useful flops count only the real nonzeros: fill-in work the cover
  // executes is pure overhead and shows up as a lower headline rate.
  res.time = sim.estimate(2.0 * static_cast<double>(a.nnz()));
  (void)decoded_blocks;
  return res;
}

SimResult sim_spmv_bro_csr(const sim::DeviceSpec& dev, const core::BroCsr& a,
                           std::span<const value_t> x) {
  BRO_CHECK(x.size() == static_cast<std::size_t>(a.cols()));
  const index_t m = a.rows();
  constexpr int kBlockSize = 256;
  const std::uint64_t warps = std::max<index_t>(1, m); // one warp per row
  const std::uint64_t blocks = (warps * kWarp + kBlockSize - 1) / kBlockSize;
  sim::SimContext sim(dev, {blocks, kBlockSize});

  const int sym_bytes = a.options().sym_len / 8;
  const auto sym_arr = sim.alloc(a.total_symbols(), sym_bytes);
  const auto val_arr = sim.alloc(a.nnz(), sizeof(value_t));
  const auto bits_arr = sim.alloc(static_cast<std::uint64_t>(m), 1);
  const auto ptr_arr = sim.alloc(static_cast<std::uint64_t>(m) + 1,
                                 sizeof(std::uint32_t));
  const auto x_arr = sim.alloc(x.size(), sizeof(value_t));
  const auto y_arr = sim.alloc(static_cast<std::uint64_t>(m), sizeof(value_t));

  SimResult res;
  res.y.assign(static_cast<std::size_t>(m), value_t{0});

  AddrArray addrs{};
  for (index_t r = 0; r < m; ++r) {
    auto blk = sim.begin_block(static_cast<std::uint64_t>(r) * kWarp / kBlockSize);
    const index_t len = a.row_ptr()[r + 1] - a.row_ptr()[r];
    const int b = a.bits_per_row()[static_cast<std::size_t>(r)];

    // Header loads (bits, sym_ptr, row_ptr) — lane 0 broadcast.
    for (int l = 0; l < kWarp; ++l) addrs[static_cast<std::size_t>(l)] = sim::kInactive;
    addrs[0] = bits_arr.addr(static_cast<std::uint64_t>(r));
    blk.load_global(addrs, 1);
    addrs[0] = ptr_arr.addr(static_cast<std::uint64_t>(r));
    blk.load_global(addrs, sizeof(std::uint32_t));

    const std::uint64_t row_sym0 =
        a.row_sym_ptr()[static_cast<std::size_t>(r)];
    std::size_t bit_pos =
        static_cast<std::size_t>(row_sym0) * static_cast<std::size_t>(a.options().sym_len);
    index_t col = -1;

    for (index_t chunk = 0; chunk < len; chunk += kWarp) {
      const int lanes = std::min<index_t>(kWarp, len - chunk);
      // The chunk's deltas occupy lanes*b consecutive bits: every touched
      // symbol is loaded once by some lane (coalesced — consecutive 4/8 B
      // words of the stream).
      const std::size_t first_sym = bit_pos / static_cast<std::size_t>(a.options().sym_len);
      const std::size_t last_sym =
          (bit_pos + static_cast<std::size_t>(lanes) * b - 1) /
          static_cast<std::size_t>(a.options().sym_len);
      int li = 0;
      for (std::size_t s2 = first_sym; s2 <= last_sym && li < kWarp; ++s2, ++li)
        addrs[static_cast<std::size_t>(li)] = sym_arr.addr(s2);
      for (; li < kWarp; ++li) addrs[static_cast<std::size_t>(li)] = sim::kInactive;
      blk.load_global(addrs, sym_bytes);

      // Extraction (~4 ops) + inclusive scan (log2(32) shuffle+add steps)
      // + carry broadcast from the previous chunk.
      blk.add_int_ops(static_cast<std::uint64_t>(lanes) * 4);
      blk.add_shfl_ops(static_cast<std::uint64_t>(lanes) * (kCooScanSteps + 1));
      blk.add_int_ops(static_cast<std::uint64_t>(lanes) * kCooScanSteps);

      AddrArray vaddrs{};
      AddrArray xaddrs{};
      for (int l = 0; l < kWarp; ++l) {
        vaddrs[static_cast<std::size_t>(l)] = sim::kInactive;
        xaddrs[static_cast<std::size_t>(l)] = sim::kInactive;
        if (l >= lanes) continue;
        // Functional decode straight from the stream (lane l's delta).
        const std::size_t p =
            bit_pos + static_cast<std::size_t>(l) * static_cast<std::size_t>(b);
        col += static_cast<index_t>(a.decode_bits(p, b));
        const std::uint64_t vp = static_cast<std::uint64_t>(a.row_ptr()[r]) +
                                 static_cast<std::uint64_t>(chunk + l);
        vaddrs[static_cast<std::size_t>(l)] = val_arr.addr(vp);
        xaddrs[static_cast<std::size_t>(l)] =
            x_arr.addr(static_cast<std::uint64_t>(col));
        res.y[static_cast<std::size_t>(r)] +=
            a.vals()[vp] * x[static_cast<std::size_t>(col)];
      }
      blk.load_global(vaddrs, sizeof(value_t));
      blk.load_texture(xaddrs, sizeof(value_t));
      blk.add_dp_fma(static_cast<std::uint64_t>(lanes));
      bit_pos += static_cast<std::size_t>(lanes) * static_cast<std::size_t>(b);
    }

    // Final cross-lane reduction + single-lane store.
    blk.add_shfl_ops(kWarp * kCooScanSteps);
    blk.add_dp_fma(kWarp * kCooScanSteps);
    for (int l = 0; l < kWarp; ++l) addrs[static_cast<std::size_t>(l)] = sim::kInactive;
    addrs[0] = y_arr.addr(static_cast<std::uint64_t>(r));
    blk.store_global(addrs, sizeof(value_t));
  }

  res.stats = sim.stats();
  res.time = sim.estimate(2.0 * static_cast<double>(a.nnz()));
  return res;
}

SimResult sim_spmv_bro_ell_values(const sim::DeviceSpec& dev,
                                  const core::BroEllValues& a,
                                  std::span<const value_t> x) {
  BRO_CHECK(x.size() == static_cast<std::size_t>(a.cols()));
  const core::BroEll& idx = a.index_part();
  const index_t m = idx.rows();
  const int h = idx.options().slice_height;
  const int sym_len = idx.options().sym_len;
  const int sym_bytes = sym_len / 8;
  const std::uint64_t blocks = std::max<std::uint64_t>(1, idx.slices().size());
  sim::SimContext sim(dev, {blocks, h});

  const auto x_arr = sim.alloc(x.size(), sizeof(value_t));
  const auto y_arr = sim.alloc(static_cast<std::uint64_t>(m), sizeof(value_t));
  std::vector<sim::VirtualArray> idx_arrs, code_arrs, raw_arrs;
  for (std::size_t si = 0; si < idx.slices().size(); ++si) {
    idx_arrs.push_back(
        sim.alloc(idx.slices()[si].stream.total_symbols(), sym_bytes));
    const auto& vs = a.value_slices()[si];
    code_arrs.push_back(vs.dict.empty()
                            ? sim::VirtualArray()
                            : sim.alloc(vs.codes.total_symbols(), sym_bytes));
    raw_arrs.push_back(sim.alloc(
        static_cast<std::uint64_t>(idx.slices()[si].height) *
            std::max<index_t>(1, idx.slices()[si].num_col),
        sizeof(value_t)));
  }

  SimResult res;
  res.y.assign(static_cast<std::size_t>(m), value_t{0});
  std::size_t nnz = 0;

  AddrArray addrs{};
  for (std::size_t si = 0; si < idx.slices().size(); ++si) {
    const core::BroEllSlice& slice = idx.slices()[si];
    const core::ValueSlice& vs = a.value_slices()[si];
    const bool coded = !vs.dict.empty();
    auto blk = sim.begin_block(si);

    const int warps = (slice.height + kWarp - 1) / kWarp;
    for (int w = 0; w < warps; ++w) {
      const index_t t0 = w * kWarp;
      const int lanes = std::min<index_t>(kWarp, slice.height - t0);

      std::vector<core::RowStreamDecoder> dec;
      dec.reserve(static_cast<std::size_t>(lanes));
      for (int l = 0; l < lanes; ++l)
        dec.emplace_back(slice, t0 + l, sym_len);
      std::vector<index_t> col(static_cast<std::size_t>(lanes), -1);

      int rb = 0, vrb = 0;
      index_t loads = 0, vloads = 0;
      // Functional value-code decode runs through BroEllValues::spmv's
      // logic; here the simulator only needs the traffic pattern, and the
      // numerical result is obtained from the format's own spmv afterwards.
      for (index_t c = 0; c < slice.num_col; ++c) {
        const int bwidth = slice.bit_alloc[static_cast<std::size_t>(c)];
        blk.add_int_ops(static_cast<std::uint64_t>(lanes)); // bit_alloc read

        if (bwidth > rb) {
          for (int l = 0; l < kWarp; ++l)
            addrs[static_cast<std::size_t>(l)] =
                l < lanes ? idx_arrs[si].addr(
                                static_cast<std::uint64_t>(loads) * h + t0 + l)
                          : sim::kInactive;
          blk.load_global(addrs, sym_bytes);
          rb = sym_len - (bwidth - rb);
          ++loads;
        } else {
          rb -= bwidth;
        }
        blk.add_int_ops(static_cast<std::uint64_t>(lanes) * kBroDecodeIntOps);

        if (coded) {
          if (vs.code_bits > vrb) {
            for (int l = 0; l < kWarp; ++l)
              addrs[static_cast<std::size_t>(l)] =
                  l < lanes ? code_arrs[si].addr(
                                  static_cast<std::uint64_t>(vloads) * h + t0 + l)
                            : sim::kInactive;
            blk.load_global(addrs, sym_bytes);
            vrb = sym_len - (vs.code_bits - vrb);
            ++vloads;
          } else {
            vrb -= vs.code_bits;
          }
          // Dictionary lookup from shared memory.
          blk.add_int_ops(static_cast<std::uint64_t>(lanes) * kBroDecodeIntOps);
          blk.add_shfl_ops(static_cast<std::uint64_t>(lanes));
        }

        AddrArray vaddrs{};
        AddrArray xaddrs{};
        int active = 0;
        for (int l = 0; l < kWarp; ++l) {
          vaddrs[static_cast<std::size_t>(l)] = sim::kInactive;
          xaddrs[static_cast<std::size_t>(l)] = sim::kInactive;
          if (l >= lanes) continue;
          const std::uint32_t d = dec[static_cast<std::size_t>(l)].next(bwidth);
          if (d == bits::kInvalidDelta) continue;
          auto& cl = col[static_cast<std::size_t>(l)];
          cl += static_cast<index_t>(d);
          if (!coded)
            vaddrs[static_cast<std::size_t>(l)] = raw_arrs[si].addr(
                static_cast<std::uint64_t>(c) * slice.height + t0 + l);
          xaddrs[static_cast<std::size_t>(l)] =
              x_arr.addr(static_cast<std::uint64_t>(cl));
          ++active;
          ++nnz;
        }
        if (active > 0) {
          if (!coded) blk.load_global(vaddrs, sizeof(value_t));
          blk.load_texture(xaddrs, sizeof(value_t));
          blk.add_dp_fma(static_cast<std::uint64_t>(active));
        }
      }

      for (int l = 0; l < kWarp; ++l)
        addrs[static_cast<std::size_t>(l)] =
            l < lanes ? y_arr.addr(static_cast<std::uint64_t>(
                            slice.first_row + t0 + l))
                      : sim::kInactive;
      blk.store_global(addrs, sizeof(value_t));
    }
  }

  // Numerical result from the format's reference implementation.
  std::vector<value_t> y(static_cast<std::size_t>(m));
  a.spmv(x, y);
  res.y = std::move(y);

  res.stats = sim.stats();
  res.time = sim.estimate(2.0 * static_cast<double>(nnz));
  return res;
}

} // namespace bro::kernels
