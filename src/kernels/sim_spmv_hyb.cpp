// Simulator kernels for HYB and BRO-HYB: an ELL-family launch followed by a
// COO-family launch accumulating into the same output vector.
#include "kernels/sim_spmv.h"

namespace bro::kernels {

namespace {

/// Re-derive the headline numbers after merging launches: GFlop/s over the
/// matrix's real nnz and EAI over the combined traffic.
void finalize(SimResult& total, double useful_flops) {
  total.time.gflops = useful_flops / total.time.seconds / 1e9;
  total.time.eai =
      total.stats.dram_bytes() > 0
          ? useful_flops / static_cast<double>(total.stats.dram_bytes())
          : 0.0;
}

} // namespace

SimResult sim_spmv_hyb(const sim::DeviceSpec& dev, const sparse::Hyb& a,
                       std::span<const value_t> x) {
  SimResult ell = sim_spmv_ell(dev, a.ell, x);
  const double useful = 2.0 * static_cast<double>(a.nnz());
  if (a.coo.nnz() == 0) {
    finalize(ell, useful);
    return ell;
  }
  SimResult coo = sim_spmv_coo_accumulate(dev, a.coo, x, ell.y);
  std::vector<value_t> y = std::move(coo.y);
  SimResult total = combine(std::move(ell), coo);
  total.y = std::move(y);
  finalize(total, useful);
  return total;
}

SimResult sim_spmv_bro_hyb(const sim::DeviceSpec& dev, const core::BroHyb& a,
                           std::span<const value_t> x) {
  SimResult ell = sim_spmv_bro_ell(dev, a.ell_part(), x);
  const double useful = 2.0 * static_cast<double>(a.total_nnz());
  if (a.coo_part().nnz() == 0) {
    finalize(ell, useful);
    return ell;
  }
  SimResult coo = sim_spmv_bro_coo_accumulate(dev, a.coo_part(), x, ell.y);
  std::vector<value_t> y = std::move(coo.y);
  SimResult total = combine(std::move(ell), coo);
  total.y = std::move(y);
  finalize(total, useful);
  return total;
}

} // namespace bro::kernels
