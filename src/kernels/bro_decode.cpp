// Dispatch tables over the width-templated BRO decode kernels
// (bro_decode.h) and the per-slice / per-interval selection rules.
//
// ISA layering: the scalar tables below are always present and are what
// generic_bro_*_kernel exposes as the parity baseline. When the active ISA
// carries a compiled-in SIMD kernel set (bro_decode_simd.h), selection
// returns that set's runtime-width kernel instead — for specialized AND
// mixed-width slices alike, since the vector shift count is a register
// operand. The width field keeps its informational meaning (uniform width
// or -1) either way, so selection-rule tests and diagnostics are
// ISA-independent.
#include <array>
#include <utility>

#include "kernels/bro_decode.h"
#include "kernels/bro_decode_simd.h"
#include "kernels/native_spmv.h"
#include "util/error.h"

namespace bro::kernels {

namespace {

using detail::kGenericWidth;

// One specialized entry per width 0..kMaxSpecializedDecodeWidth per symbol
// type, built at compile time from the templates in bro_decode.h.
template <typename SymT, std::size_t... Ws>
constexpr auto ell_table(std::index_sequence<Ws...>) {
  return std::array<BroEllKernel, sizeof...(Ws)>{
      BroEllKernel{static_cast<int>(Ws),
                   &detail::bro_ell_slice_spmv<SymT, static_cast<int>(Ws)>,
                   &detail::bro_ell_slice_spmm<SymT, static_cast<int>(Ws)>}...};
}

template <typename SymT, std::size_t... Ws>
constexpr auto coo_table(std::index_sequence<Ws...>) {
  return std::array<BroCooKernel, sizeof...(Ws)>{
      BroCooKernel{static_cast<int>(Ws),
                   &detail::bro_coo_interval_spmv<SymT, static_cast<int>(Ws)>,
                   &detail::bro_coo_interval_spmm<SymT,
                                                  static_cast<int>(Ws)>}...};
}

using Widths = std::make_index_sequence<kMaxSpecializedDecodeWidth + 1>;

constexpr auto kEll32 = ell_table<std::uint32_t>(Widths{});
constexpr auto kEll64 = ell_table<std::uint64_t>(Widths{});
constexpr auto kCoo32 = coo_table<std::uint32_t>(Widths{});
constexpr auto kCoo64 = coo_table<std::uint64_t>(Widths{});

constexpr BroEllKernel kEllGeneric32{
    kGenericWidth, &detail::bro_ell_slice_spmv<std::uint32_t, kGenericWidth>,
    &detail::bro_ell_slice_spmm<std::uint32_t, kGenericWidth>};
constexpr BroEllKernel kEllGeneric64{
    kGenericWidth, &detail::bro_ell_slice_spmv<std::uint64_t, kGenericWidth>,
    &detail::bro_ell_slice_spmm<std::uint64_t, kGenericWidth>};
constexpr BroCooKernel kCooGeneric32{
    kGenericWidth,
    &detail::bro_coo_interval_spmv<std::uint32_t, kGenericWidth>,
    &detail::bro_coo_interval_spmm<std::uint32_t, kGenericWidth>};
constexpr BroCooKernel kCooGeneric64{
    kGenericWidth,
    &detail::bro_coo_interval_spmv<std::uint64_t, kGenericWidth>,
    &detail::bro_coo_interval_spmm<std::uint64_t, kGenericWidth>};

void check_sym_len(int sym_len) {
  BRO_CHECK_MSG(sym_len == 32 || sym_len == 64,
                "sym_len must be 32 or 64, got " << sym_len);
}

/// The uniform width of a slice's bit allocation, or kGenericWidth when the
/// slice mixes widths (pre-BAR slices with ragged per-column maxima).
int uniform_width(const core::BroEllSlice& slice) {
  if (slice.num_col == 0) return 0; // nothing to decode: any width works
  const int b = slice.bit_alloc[0];
  for (std::size_t c = 1; c < slice.bit_alloc.size(); ++c)
    if (slice.bit_alloc[c] != b) return kGenericWidth;
  return b;
}

} // namespace

BroEllKernel generic_bro_ell_kernel(int sym_len) {
  check_sym_len(sym_len);
  return sym_len == 32 ? kEllGeneric32 : kEllGeneric64;
}

BroCooKernel generic_bro_coo_kernel(int sym_len) {
  check_sym_len(sym_len);
  return sym_len == 32 ? kCooGeneric32 : kCooGeneric64;
}

BroEllKernel select_bro_ell_kernel(const core::BroEllSlice& slice,
                                   int sym_len, SimdIsa isa) {
  check_sym_len(sym_len);
  const int w = uniform_width(slice);
  if (isa != SimdIsa::kScalar) {
    if (const SimdKernelSet* set = simd_kernel_set(isa)) {
      BroEllKernel k;
      k.width = w >= 0 && w <= kMaxSpecializedDecodeWidth ? w : -1;
      k.spmv = sym_len == 32 ? set->ell_spmv32 : set->ell_spmv64;
      k.spmm = sym_len == 32 ? set->ell_spmm32 : set->ell_spmm64;
      k.isa = isa;
      return k;
    }
  }
  if (w < 0 || w > kMaxSpecializedDecodeWidth)
    return generic_bro_ell_kernel(sym_len);
  return sym_len == 32 ? kEll32[static_cast<std::size_t>(w)]
                       : kEll64[static_cast<std::size_t>(w)];
}

BroCooKernel select_bro_coo_kernel(const core::BroCooInterval& iv,
                                   int sym_len, SimdIsa isa) {
  check_sym_len(sym_len);
  if (isa != SimdIsa::kScalar) {
    if (const SimdKernelSet* set = simd_kernel_set(isa)) {
      BroCooKernel k;
      k.width =
          iv.bits >= 0 && iv.bits <= kMaxSpecializedDecodeWidth ? iv.bits
                                                                : -1;
      k.spmv = sym_len == 32 ? set->coo_spmv32 : set->coo_spmv64;
      k.spmm = sym_len == 32 ? set->coo_spmm32 : set->coo_spmm64;
      k.isa = isa;
      return k;
    }
  }
  if (iv.bits < 0 || iv.bits > kMaxSpecializedDecodeWidth)
    return generic_bro_coo_kernel(sym_len);
  return sym_len == 32 ? kCoo32[static_cast<std::size_t>(iv.bits)]
                       : kCoo64[static_cast<std::size_t>(iv.bits)];
}

BroEllKernel select_bro_ell_kernel(const core::BroEllSlice& slice,
                                   int sym_len) {
  return select_bro_ell_kernel(slice, sym_len, active_simd_isa());
}

BroCooKernel select_bro_coo_kernel(const core::BroCooInterval& iv,
                                   int sym_len) {
  return select_bro_coo_kernel(iv, sym_len, active_simd_isa());
}

std::vector<BroEllKernel> plan_bro_ell_kernels(const core::BroEll& a,
                                               SimdIsa isa) {
  std::vector<BroEllKernel> kernels;
  kernels.reserve(a.slices().size());
  for (const auto& slice : a.slices())
    kernels.push_back(select_bro_ell_kernel(slice, a.options().sym_len, isa));
  return kernels;
}

std::vector<BroCooKernel> plan_bro_coo_kernels(const core::BroCoo& a,
                                               SimdIsa isa) {
  std::vector<BroCooKernel> kernels;
  kernels.reserve(a.intervals().size());
  for (const auto& iv : a.intervals())
    kernels.push_back(select_bro_coo_kernel(iv, a.options().sym_len, isa));
  return kernels;
}

std::vector<BroEllKernel> plan_bro_ell_kernels(const core::BroEll& a) {
  return plan_bro_ell_kernels(a, active_simd_isa());
}

std::vector<BroCooKernel> plan_bro_coo_kernels(const core::BroCoo& a) {
  return plan_bro_coo_kernels(a, active_simd_isa());
}

} // namespace bro::kernels
