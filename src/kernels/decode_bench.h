// Decode-throughput microbenchmark support: synthetic BRO symbol streams and
// a single-pass decode driver over the three decoder variants the PR's perf
// claim compares — width-specialized over packed storage, runtime-width
// (generic) over packed storage, and runtime-width over the legacy
// one-uint64-per-symbol slot layout. Shared by bench_decode_throughput (the
// google-benchmark binary) and `brospmv bench --decode` (the self-timed
// table) so both report the same inner loops.
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "bits/mux.h"
#include "core/bro_ans.h"
#include "core/bro_bcsr.h"
#include "kernels/cpu_features.h"

namespace bro::kernels {

/// One synthetic decode workload: `lanes` lanes of `deltas_per_lane` deltas,
/// every delta `width` bits, multiplexed exactly like a BRO-ELL slice /
/// BRO-COO interval stream. Held both in the current packed storage and in a
/// copy of the legacy one-uint64-per-symbol layout.
struct DecodeBenchCase {
  int width = 1;
  int sym_len = 32;
  std::size_t lanes = 0;
  std::size_t deltas_per_lane = 0;
  bits::MuxedStream stream;
  std::vector<std::uint64_t> legacy_slots; // symbol i right-aligned in slot i
  std::vector<std::uint8_t> widths; // per-column widths (all == width), the
                                    // form the SIMD checksum kernels take
};

DecodeBenchCase make_decode_bench_case(int width, int sym_len,
                                       std::size_t lanes,
                                       std::size_t deltas_per_lane,
                                       std::uint64_t seed);

enum class DecodeVariant {
  kSpecialized, // width-templated kernel, packed storage (dispatch choice)
  kGeneric,     // runtime-width kernel, packed storage
  kLegacySlots, // runtime-width decode over one-uint64-per-symbol storage
};

/// One full decode pass over every lane. Returns the sum of all decoded
/// deltas — consumed by the caller so the loop cannot be optimized away, and
/// identical across variants (the parity check the throughput numbers rest
/// on). For widths above kMaxSpecializedDecodeWidth the kSpecialized variant
/// runs the generic kernel, mirroring what the dispatcher would select.
std::uint64_t decode_pass(const DecodeBenchCase& c, DecodeVariant variant);

/// One full decode pass through `isa`'s lockstep SIMD checksum kernel.
/// Returns the same checksum as decode_pass (bitwise — the parity contract).
/// Requires simd_isa_runnable(isa) and isa != kScalar.
std::uint64_t simd_decode_pass(const DecodeBenchCase& c, SimdIsa isa);

inline std::size_t decode_pass_deltas(const DecodeBenchCase& c) {
  return c.lanes * c.deltas_per_lane;
}

/// Self-timed sweep (steady_clock, >= min_seconds_per_cell per measurement)
/// reporting decode throughput in giga-deltas per second for each variant.
/// The per-ISA SIMD columns are NaN (rendered "n/a" by Table::fmt) when the
/// ISA is not runnable on this host/binary.
struct DecodeThroughputRow {
  int width = 0;
  int sym_len = 0;
  double specialized_gdps = 0;
  double generic_gdps = 0;
  double legacy_gdps = 0;
  double sse4_gdps = std::numeric_limits<double>::quiet_NaN();
  double avx2_gdps = std::numeric_limits<double>::quiet_NaN();
};

std::vector<DecodeThroughputRow> decode_throughput_sweep(
    int sym_len, std::size_t lanes, std::size_t deltas_per_lane,
    double min_seconds_per_cell);

/// Scalar-vs-SIMD decode A/B over real BRO-ELL compressions of the matgen
/// suite (Test Set 1): per matrix, one pass decodes every slice of the
/// compressed index stream. The scalar side is exactly what PR 4's dispatch
/// ran (width-specialized kernel for uniform slices <=
/// kMaxSpecializedDecodeWidth, runtime-width generic otherwise); the SIMD
/// side is `isa`'s lockstep checksum kernel. Measurements alternate
/// scalar/SIMD rounds and keep each side's best throughput (CPU-time
/// minima), the same protocol as the PR 4 decode experiments.
struct EllSuiteDecodeRow {
  std::string matrix;
  std::size_t deltas = 0; // deltas decoded per pass (incl. padding slots)
  double scalar_gdps = 0;
  double simd_gdps = 0;
};

std::vector<EllSuiteDecodeRow> ell_suite_decode_sweep(
    SimdIsa isa, double scale, double min_seconds_per_cell);

/// Entropy-coding A/B over BRO-ELL vs BRO-ANS compressions of the matgen
/// suite (Test Set 1): per matrix, index space savings (eta) of both formats
/// and full-stream decode throughput of each format's dispatched decode path
/// planned at `isa` (what execute() would run with that ISA active — the
/// scalar 4-chain fallback when the ISA has no ANS kernel for the width).
/// Both sides decode the identical delta sequence (checked bitwise via the
/// checksum before timing).
struct EntropySuiteRow {
  std::string matrix;
  std::size_t deltas = 0; // deltas decoded per pass (incl. padding slots)
  double ell_eta = 0;     // BRO-ELL index space savings
  double ans_eta = 0;     // BRO-ANS index space savings
  double ell_gdps = 0;    // BRO-ELL decode throughput
  double ans_gdps = 0;    // BRO-ANS decode throughput
};

std::vector<EntropySuiteRow> entropy_suite_sweep(SimdIsa isa, double scale,
                                                 double min_seconds_per_cell);

/// Blocked A/B over the truss-FEM workload (matgen suite Test Set 3): per
/// matrix, fill-adjusted index space savings of BRO-ELL and BRO-BCSR (both
/// charged a stored double per value slot beyond nnz, so padding — ELL's
/// row-length variance or BCSR's explicit-zero fill — costs the same on
/// either side) and index decode throughput of each format's dispatched
/// decode path at `isa`, in matrix rows per second. Decode throughput is
/// the gate metric: both formats decompress the identical row structure,
/// and BRO-BCSR's one-index-per-block stream decodes ~block_r*block_c
/// fewer symbols per matrix row. End-to-end SpMV rows/s ride along as
/// informational columns, and the BRO-BCSR SpMV side is pinned bitwise:
/// the `isa` kernels must reproduce the scalar 8-lane reference exactly
/// before any timing is trusted.
struct BlockSuiteRow {
  std::string matrix;
  index_t rows = 0;
  std::size_t nnz = 0;
  int shape_r = 0;     // chosen block shape
  int shape_c = 0;
  double fill = 0;     // nnz / stored BCSR value slots (padding included)
  double ell_eta = 0;  // fill-adjusted BRO-ELL savings
  double bcsr_eta = 0; // fill-adjusted BRO-BCSR savings
  double ell_rps = 0;  // BRO-ELL index decode, matrix rows/s at `isa`
  double bcsr_rps = 0; // BRO-BCSR index decode, matrix rows/s at `isa`
  double ell_spmv_rps = 0;  // BRO-ELL SpMV rows/s at `isa` (informational)
  double bcsr_spmv_rps = 0; // BRO-BCSR SpMV rows/s at `isa` (informational)
};

std::vector<BlockSuiteRow> block_suite_sweep(SimdIsa isa, double scale,
                                             double min_seconds_per_cell);

/// BRO-ANS full-stream decode workload for the microbenchmark rows: a
/// synthetic FEM-like matrix (aligned blocks — the structure class BRO-ANS
/// is built for) compressed at `sym_len`, plus the sequential reference
/// decoder's checksum that every timed pass is checked against.
struct AnsDecodeBenchCase {
  std::shared_ptr<const core::BroAns> coded;
  std::size_t deltas = 0;   // padded deltas decoded per pass
  std::uint64_t expect = 0; // sequential reference checksum
};

AnsDecodeBenchCase make_ans_decode_bench_case(int sym_len, index_t rows,
                                              std::uint64_t seed);

/// One decode-checksum pass over every slice through the kernel dispatch
/// would select at `isa`: the per-ISA vector set when it has one for the
/// stream width, else the baseline interleaved scalar chains. Returns the
/// checksum (must equal c.expect — the parity contract).
std::uint64_t ans_decode_pass(const AnsDecodeBenchCase& c, SimdIsa isa);

/// BRO-BCSR block-index decode workload for the microbenchmark rows: a
/// truss-FEM assembly (the structure class the blocked format is built
/// for) compressed at `sym_len`, plus the scalar dispatch path's checksum
/// that every timed pass is checked against. `deltas` counts block
/// indices (incl. slice padding) — the whole point of the format is that
/// this is ~block-area smaller than the matrix's nnz.
struct BcsrDecodeBenchCase {
  std::shared_ptr<const core::BroBcsr> coded;
  std::size_t deltas = 0;   // block indices decoded per pass
  std::uint64_t expect = 0; // scalar dispatch-path checksum
};

BcsrDecodeBenchCase make_bcsr_decode_bench_case(int sym_len, index_t panels,
                                                std::uint64_t seed);

/// One decode-checksum pass over the block-index slices through the decode
/// path dispatch selects at `isa` — identical machinery to BRO-ELL decode
/// (the slices share the layout), so A/B against `decode-*` rows is fair.
std::uint64_t bcsr_decode_pass(const BcsrDecodeBenchCase& c, SimdIsa isa);

} // namespace bro::kernels
