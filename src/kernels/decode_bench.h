// Decode-throughput microbenchmark support: synthetic BRO symbol streams and
// a single-pass decode driver over the three decoder variants the PR's perf
// claim compares — width-specialized over packed storage, runtime-width
// (generic) over packed storage, and runtime-width over the legacy
// one-uint64-per-symbol slot layout. Shared by bench_decode_throughput (the
// google-benchmark binary) and `brospmv bench --decode` (the self-timed
// table) so both report the same inner loops.
#pragma once

#include <cstdint>
#include <vector>

#include "bits/mux.h"

namespace bro::kernels {

/// One synthetic decode workload: `lanes` lanes of `deltas_per_lane` deltas,
/// every delta `width` bits, multiplexed exactly like a BRO-ELL slice /
/// BRO-COO interval stream. Held both in the current packed storage and in a
/// copy of the legacy one-uint64-per-symbol layout.
struct DecodeBenchCase {
  int width = 1;
  int sym_len = 32;
  std::size_t lanes = 0;
  std::size_t deltas_per_lane = 0;
  bits::MuxedStream stream;
  std::vector<std::uint64_t> legacy_slots; // symbol i right-aligned in slot i
};

DecodeBenchCase make_decode_bench_case(int width, int sym_len,
                                       std::size_t lanes,
                                       std::size_t deltas_per_lane,
                                       std::uint64_t seed);

enum class DecodeVariant {
  kSpecialized, // width-templated kernel, packed storage (dispatch choice)
  kGeneric,     // runtime-width kernel, packed storage
  kLegacySlots, // runtime-width decode over one-uint64-per-symbol storage
};

/// One full decode pass over every lane. Returns the sum of all decoded
/// deltas — consumed by the caller so the loop cannot be optimized away, and
/// identical across variants (the parity check the throughput numbers rest
/// on). For widths above kMaxSpecializedDecodeWidth the kSpecialized variant
/// runs the generic kernel, mirroring what the dispatcher would select.
std::uint64_t decode_pass(const DecodeBenchCase& c, DecodeVariant variant);

inline std::size_t decode_pass_deltas(const DecodeBenchCase& c) {
  return c.lanes * c.deltas_per_lane;
}

/// Self-timed sweep (steady_clock, >= min_seconds_per_cell per measurement)
/// reporting decode throughput in giga-deltas per second for each variant.
struct DecodeThroughputRow {
  int width = 0;
  int sym_len = 0;
  double specialized_gdps = 0;
  double generic_gdps = 0;
  double legacy_gdps = 0;
};

std::vector<DecodeThroughputRow> decode_throughput_sweep(
    int sym_len, std::size_t lanes, std::size_t deltas_per_lane,
    double min_seconds_per_cell);

} // namespace bro::kernels
