// SSE4 BRO decode kernel set (4 x u32 / 2 x u64 lanes — the portable x86-64
// fallback below AVX2). Compiled with -msse4.2 -ffp-contract=off when the
// toolchain supports it (see src/kernels/CMakeLists.txt); collapses to a
// stub exporting a null set otherwise, so non-x86 builds link unchanged.
#include "kernels/bro_decode_simd.h"

#if defined(__SSE4_2__)

#define BRO_SIMD_NS simd_sse4
#define BRO_SIMD_ISA ::bro::kernels::SimdIsa::kSse4
#include "kernels/bro_decode_simd_impl.h"
#undef BRO_SIMD_NS
#undef BRO_SIMD_ISA

namespace bro::kernels::detail {
const SimdKernelSet* const kSimdSetSse4 = &simd_sse4::kKernelSet;
} // namespace bro::kernels::detail

#else

namespace bro::kernels::detail {
const SimdKernelSet* const kSimdSetSse4 = nullptr;
} // namespace bro::kernels::detail

#endif
