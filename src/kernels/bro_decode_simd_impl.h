// Vectorized BRO decode kernels, included once per ISA translation unit.
//
// The including TU defines
//   BRO_SIMD_NS   — the namespace for this ISA's kernels (e.g. simd_avx2)
//   BRO_SIMD_ISA  — the matching ::bro::kernels::SimdIsa enumerator
// and is compiled with exactly that ISA's target flag plus -ffp-contract=off
// (src/kernels/CMakeLists.txt), never -march=native.
//
// ODR rule for this file: stay self-contained. Do NOT instantiate the
// kernel/decoder templates from bro_decode.h (or any other non-trivial
// shared inline code that baseline TUs also instantiate) — the linker keeps
// a single copy of such comdat instantiations, and if it picks the one
// compiled here the "scalar" dispatch path would execute ISA instructions
// on hosts that lack them. bro_decode.h is included for its constexpr
// cutoff constants only; the scalar remainder loops below are local copies.
//
// Lane mapping follows the paper's warp mapping: BRO-ELL assigns one vector
// lane per row of a slice, BRO-COO one lane per interval column position.
// Only the integer bit-unpack (shared refill + shift + mask, Algorithm 1
// with the b <= rb load rule) is vectorized; column-index updates, x loads
// and floating-point accumulation stay scalar per lane in the exact order
// of the kernels in bro_decode.h, so results are bitwise identical by
// construction — the property the differential fuzzer's SIMD sweep and the
// ISA-sweep dispatch tests pin down.

#include <immintrin.h>

#include <algorithm>
#include <cstdint>

#include "bits/bitwidth.h"
#include "bits/delta.h"
#include "core/bro_ans.h"
#include "core/bro_coo.h"
#include "core/bro_ell.h"
#include "kernels/bro_decode.h" // constexpr cutoffs only — see ODR rule above
#include "kernels/bro_decode_simd.h"

namespace bro::kernels::BRO_SIMD_NS {
namespace {

// Vector-op shims: the kernels below are written once against this
// interface and instantiated per symbol type. Shift counts are runtime
// values (that is the point — one kernel covers every bit width 0..32,
// uniform or mixed), so the _sll/_srl forms with the count in an xmm
// register, which treat counts >= the lane width as a full shift to zero —
// matching the scalar decoders' uint64 arithmetic on every path the widths
// can reach.
#if defined(__AVX2__)

struct VecU32 {
  using Reg = __m256i;
  static constexpr int kLanes = 8;
  static Reg zero() { return _mm256_setzero_si256(); }
  static Reg load(const std::uint32_t* p) {
    return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
  }
  static void store(std::uint32_t* p, Reg v) {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), v);
  }
  static Reg srl(Reg v, int n) {
    return _mm256_srl_epi32(v, _mm_cvtsi32_si128(n));
  }
  static Reg sll(Reg v, int n) {
    return _mm256_sll_epi32(v, _mm_cvtsi32_si128(n));
  }
  static Reg and_mask(Reg v, std::uint32_t m) {
    return _mm256_and_si256(v, _mm256_set1_epi32(static_cast<int>(m)));
  }
  static Reg or_(Reg a, Reg b) { return _mm256_or_si256(a, b); }
};

struct VecU64 {
  using Reg = __m256i;
  static constexpr int kLanes = 4;
  static Reg zero() { return _mm256_setzero_si256(); }
  static Reg load(const std::uint64_t* p) {
    return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
  }
  static void store(std::uint64_t* p, Reg v) {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), v);
  }
  static Reg srl(Reg v, int n) {
    return _mm256_srl_epi64(v, _mm_cvtsi32_si128(n));
  }
  static Reg sll(Reg v, int n) {
    return _mm256_sll_epi64(v, _mm_cvtsi32_si128(n));
  }
  static Reg and_mask(Reg v, std::uint64_t m) {
    return _mm256_and_si256(v,
                            _mm256_set1_epi64x(static_cast<long long>(m)));
  }
  static Reg or_(Reg a, Reg b) { return _mm256_or_si256(a, b); }
};

#else // 128-bit lanes: every intrinsic below is SSE2, the TU targets SSE4.2.

struct VecU32 {
  using Reg = __m128i;
  static constexpr int kLanes = 4;
  static Reg zero() { return _mm_setzero_si128(); }
  static Reg load(const std::uint32_t* p) {
    return _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
  }
  static void store(std::uint32_t* p, Reg v) {
    _mm_storeu_si128(reinterpret_cast<__m128i*>(p), v);
  }
  static Reg srl(Reg v, int n) { return _mm_srl_epi32(v, _mm_cvtsi32_si128(n)); }
  static Reg sll(Reg v, int n) { return _mm_sll_epi32(v, _mm_cvtsi32_si128(n)); }
  static Reg and_mask(Reg v, std::uint32_t m) {
    return _mm_and_si128(v, _mm_set1_epi32(static_cast<int>(m)));
  }
  static Reg or_(Reg a, Reg b) { return _mm_or_si128(a, b); }
};

struct VecU64 {
  using Reg = __m128i;
  static constexpr int kLanes = 2;
  static Reg zero() { return _mm_setzero_si128(); }
  static Reg load(const std::uint64_t* p) {
    return _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
  }
  static void store(std::uint64_t* p, Reg v) {
    _mm_storeu_si128(reinterpret_cast<__m128i*>(p), v);
  }
  static Reg srl(Reg v, int n) { return _mm_srl_epi64(v, _mm_cvtsi32_si128(n)); }
  static Reg sll(Reg v, int n) { return _mm_sll_epi64(v, _mm_cvtsi32_si128(n)); }
  static Reg and_mask(Reg v, std::uint64_t m) {
    return _mm_and_si128(v, _mm_set1_epi64x(static_cast<long long>(m)));
  }
  static Reg or_(Reg a, Reg b) { return _mm_or_si128(a, b); }
};

#endif

/// One lockstep decode step for V::kLanes adjacent lanes: extract a b-bit
/// delta per lane into d[], refilling every lane from next_load (advanced
/// by `stride`) when the shared residual bit count runs dry. Branch
/// structure and bit arithmetic match LaneDecoder::next exactly.
template <typename SymT, typename V>
inline void lockstep_next(typename V::Reg& sym, int& rb, int b,
                          const SymT*& next_load, std::size_t stride,
                          SymT* d) {
  constexpr int kSym = static_cast<int>(sizeof(SymT) * 8);
  if (b <= rb) {
    rb -= b;
    V::store(d, V::and_mask(V::srl(sym, rb),
                            static_cast<SymT>(bits::max_value_for_bits(b))));
  } else {
    const int high = rb;
    const int low = b - high;
    const typename V::Reg hpart = V::and_mask(
        sym, static_cast<SymT>(bits::max_value_for_bits(high)));
    sym = V::load(next_load);
    next_load += stride;
    rb = kSym - low;
    V::store(d,
             V::or_(V::sll(hpart, low),
                    V::and_mask(V::srl(sym, rb),
                                static_cast<SymT>(
                                    bits::max_value_for_bits(low)))));
  }
}

/// Local copy of LaneDecoder's runtime-width decode (see the ODR rule in
/// the file header for why this is not the shared template): drives the
/// remainder rows of a slice, lanes past the vector multiple of a COO
/// interval's warp, and warps wider than detail::kMaxCooLanes.
template <typename SymT>
class ScalarLane {
 public:
  ScalarLane() = default; // for arrays of deferred-init ANS chains below
  ScalarLane(const SymT* stream, std::size_t stride, std::size_t lane)
      : next_load_(stream + lane), stride_(stride) {}

  inline std::uint32_t next(int b) {
    constexpr int kSym = static_cast<int>(sizeof(SymT) * 8);
    std::uint64_t d;
    if (b <= rb_) {
      d = (sym_ >> (rb_ - b)) & bits::max_value_for_bits(b);
      rb_ -= b;
    } else {
      const int high = rb_;
      d = high > 0 ? (sym_ & bits::max_value_for_bits(high)) : 0;
      sym_ = *next_load_;
      next_load_ += stride_;
      const int low = b - high;
      d = (d << low) |
          ((sym_ >> (kSym - low)) & bits::max_value_for_bits(low));
      rb_ = kSym - low;
    }
    return static_cast<std::uint32_t>(d);
  }

 private:
  const SymT* next_load_ = nullptr;
  std::size_t stride_ = 0;
  std::uint64_t sym_ = 0;
  int rb_ = 0;
};

// ---------------------------------------------------------------- BRO-ELL

template <typename SymT, typename V>
void ell_slice_spmv(const core::BroEll& a, const core::BroEllSlice& slice,
                    std::span<const value_t> x, std::span<value_t> y) {
  const SymT* stream = slice.stream.template data<SymT>();
  const std::size_t h = static_cast<std::size_t>(slice.height);
  const std::uint8_t* alloc = slice.bit_alloc.data();
  const value_t* vals = a.vals().data();
  const value_t* xp = x.data();
  const std::size_t m = static_cast<std::size_t>(a.rows());
  constexpr int W = V::kLanes;

  // One vector lane per row: all rows of a slice consume alloc[c] bits at
  // column c, so the W symbol buffers live in one register and drain in
  // lockstep. The decoded deltas are spilled to d[] and each row's column
  // walk + FP accumulation runs scalar in column order, exactly as in
  // bro_ell_slice_spmv.
  index_t t = 0;
  for (; t + W - 1 < slice.height; t += W) {
    const std::size_t r0 = static_cast<std::size_t>(slice.first_row + t);
    const SymT* next_load = stream + static_cast<std::size_t>(t);
    typename V::Reg sym = V::zero();
    int rb = 0;
    alignas(32) SymT d[W];
    index_t col[W];
    value_t sum[W];
    for (int j = 0; j < W; ++j) col[j] = -1;
    for (int j = 0; j < W; ++j) sum[j] = 0;
    std::size_t voff = 0;
    for (index_t c = 0; c < slice.num_col; ++c, voff += m) {
      lockstep_next<SymT, V>(sym, rb, alloc[static_cast<std::size_t>(c)],
                             next_load, h, d);
      for (int j = 0; j < W; ++j) {
        if (static_cast<std::uint32_t>(d[j]) != bits::kInvalidDelta) {
          col[j] += static_cast<index_t>(static_cast<std::uint32_t>(d[j]));
          sum[j] += vals[voff + r0 + static_cast<std::size_t>(j)] *
                    xp[static_cast<std::size_t>(col[j])];
        }
      }
    }
    for (int j = 0; j < W; ++j)
      y[r0 + static_cast<std::size_t>(j)] = sum[j];
  }
  for (; t < slice.height; ++t) {
    const std::size_t r = static_cast<std::size_t>(slice.first_row + t);
    ScalarLane<SymT> dec(stream, h, static_cast<std::size_t>(t));
    index_t col = -1;
    value_t sum = 0;
    std::size_t voff = 0;
    for (index_t c = 0; c < slice.num_col; ++c, voff += m) {
      const std::uint32_t d = dec.next(alloc[static_cast<std::size_t>(c)]);
      if (d != bits::kInvalidDelta) {
        col += static_cast<index_t>(d);
        sum += vals[voff + r] * xp[static_cast<std::size_t>(col)];
      }
    }
    y[r] = sum;
  }
}

template <typename SymT, typename V>
void ell_slice_spmm(const core::BroEll& a, const core::BroEllSlice& slice,
                    std::span<const value_t> x, std::span<value_t> y,
                    int k) {
  const SymT* stream = slice.stream.template data<SymT>();
  const std::size_t h = static_cast<std::size_t>(slice.height);
  const std::uint8_t* alloc = slice.bit_alloc.data();
  const value_t* vals = a.vals().data();
  const std::size_t m = static_cast<std::size_t>(a.rows());
  const std::size_t uk = static_cast<std::size_t>(k);
  constexpr int W = V::kLanes;

  // Same lane-per-row decode as the SpMV kernel; each decoded column feeds
  // k FMAs per live row, per-row in column order as in bro_ell_slice_spmm.
  index_t t = 0;
  for (; t + W - 1 < slice.height; t += W) {
    const std::size_t r0 = static_cast<std::size_t>(slice.first_row + t);
    const SymT* next_load = stream + static_cast<std::size_t>(t);
    typename V::Reg sym = V::zero();
    int rb = 0;
    alignas(32) SymT d[W];
    index_t col[W];
    value_t* yr[W];
    for (int j = 0; j < W; ++j) col[j] = -1;
    for (int j = 0; j < W; ++j) {
      yr[j] = y.data() + (r0 + static_cast<std::size_t>(j)) * uk;
      for (std::size_t bb = 0; bb < uk; ++bb) yr[j][bb] = 0;
    }
    std::size_t voff = 0;
    for (index_t c = 0; c < slice.num_col; ++c, voff += m) {
      lockstep_next<SymT, V>(sym, rb, alloc[static_cast<std::size_t>(c)],
                             next_load, h, d);
      for (int j = 0; j < W; ++j) {
        if (static_cast<std::uint32_t>(d[j]) != bits::kInvalidDelta) {
          col[j] += static_cast<index_t>(static_cast<std::uint32_t>(d[j]));
          const value_t v = vals[voff + r0 + static_cast<std::size_t>(j)];
          const value_t* xc =
              x.data() + static_cast<std::size_t>(col[j]) * uk;
          for (std::size_t bb = 0; bb < uk; ++bb) yr[j][bb] += v * xc[bb];
        }
      }
    }
  }
  for (; t < slice.height; ++t) {
    const std::size_t r = static_cast<std::size_t>(slice.first_row + t);
    ScalarLane<SymT> dec(stream, h, static_cast<std::size_t>(t));
    index_t col = -1;
    value_t* yr = y.data() + r * uk;
    for (std::size_t bb = 0; bb < uk; ++bb) yr[bb] = 0;
    std::size_t voff = 0;
    for (index_t c = 0; c < slice.num_col; ++c, voff += m) {
      const std::uint32_t d = dec.next(alloc[static_cast<std::size_t>(c)]);
      if (d != bits::kInvalidDelta) {
        col += static_cast<index_t>(d);
        const value_t v = vals[voff + r];
        const value_t* xc = x.data() + static_cast<std::size_t>(col) * uk;
        for (std::size_t bb = 0; bb < uk; ++bb) yr[bb] += v * xc[bb];
      }
    }
  }
}

// ---------------------------------------------------------------- BRO-COO

/// Decode-only pass over the final lane of interval i (cf.
/// bro_coo_interval_last_row): 1/w-th of the decode work up front buys the
/// branch-cheap routing below.
template <typename SymT>
index_t coo_last_row(const core::BroCooInterval& iv, const SymT* stream,
                     int w, int cols) {
  ScalarLane<SymT> dec(stream, static_cast<std::size_t>(w),
                       static_cast<std::size_t>(w - 1));
  index_t row = iv.start_row;
  for (int c = 0; c < cols; ++c)
    row += static_cast<index_t>(dec.next(iv.bits));
  return row;
}

template <typename SymT, typename V>
void coo_interval_spmv(const core::BroCoo& a, std::size_t i,
                       std::span<const value_t> x, std::span<value_t> y,
                       BroCooCarry& carry) {
  const auto& iv = a.intervals()[i];
  const int w = a.options().warp_size;
  const int cols = a.options().interval_cols;
  const std::size_t base =
      i * static_cast<std::size_t>(w) * static_cast<std::size_t>(cols);
  const SymT* stream = iv.stream.template data<SymT>();
  const value_t* vals = a.vals().data();
  const index_t* col_idx = a.col_idx().data();
  const value_t* xp = x.data();
  value_t* yp = y.data();
  const index_t last_row = coo_last_row<SymT>(iv, stream, w, cols);
  carry = BroCooCarry{};
  carry.first_row = iv.start_row;
  carry.last_row = last_row;

  const auto route = [&](index_t row, value_t contrib) {
    if (row == iv.start_row) {
      carry.first_sum += contrib;
    } else if (row == last_row) {
      carry.last_sum += contrib;
    } else {
      yp[static_cast<std::size_t>(row)] += contrib;
    }
  };
  constexpr int kSym = static_cast<int>(sizeof(SymT) * 8);
  constexpr int W = V::kLanes;
  const int b = iv.bits;
  if (w <= detail::kMaxCooLanes) {
    // Transposed column-major walk in lockstep, as in
    // bro_coo_interval_spmv, with the per-column extract/refill running
    // over the w lane buffers in W-wide vector chunks (plus a scalar chunk
    // for the remainder lanes). Row updates and routing stay scalar in
    // lane order, so every entry hits y/the carry in global entry order.
    alignas(32) SymT sym[detail::kMaxCooLanes];
    alignas(32) SymT d[detail::kMaxCooLanes];
    index_t row[detail::kMaxCooLanes];
    for (int j = 0; j < w; ++j) sym[j] = 0;
    for (int j = 0; j < w; ++j) row[j] = iv.start_row;
    int rb = 0;
    const SymT* next_load = stream;
    std::size_t e = base;
    for (int c = 0; c < cols; ++c) {
      if (b <= rb) {
        rb -= b;
        const SymT mask = static_cast<SymT>(bits::max_value_for_bits(b));
        int j = 0;
        for (; j + W <= w; j += W)
          V::store(d + j, V::and_mask(V::srl(V::load(sym + j), rb), mask));
        for (; j < w; ++j) d[j] = static_cast<SymT>((sym[j] >> rb) & mask);
      } else {
        const int high = rb;
        const int low = b - high;
        const SymT hmask = static_cast<SymT>(bits::max_value_for_bits(high));
        const SymT lmask = static_cast<SymT>(bits::max_value_for_bits(low));
        rb = kSym - low;
        int j = 0;
        for (; j + W <= w; j += W) {
          const typename V::Reg hpart = V::and_mask(V::load(sym + j), hmask);
          const typename V::Reg s = V::load(next_load + j);
          V::store(sym + j, s);
          V::store(d + j, V::or_(V::sll(hpart, low),
                                 V::and_mask(V::srl(s, rb), lmask)));
        }
        for (; j < w; ++j) {
          const std::uint64_t hpart = sym[j] & hmask;
          const SymT s = next_load[j];
          sym[j] = s;
          d[j] = static_cast<SymT>((hpart << low) | ((s >> rb) & lmask));
        }
        next_load += w;
      }
      for (int j = 0; j < w; ++j)
        row[j] += static_cast<index_t>(static_cast<std::uint32_t>(d[j]));
      for (int j = 0; j < w; ++j)
        route(row[j],
              vals[e + static_cast<std::size_t>(j)] *
                  xp[static_cast<std::size_t>(
                      col_idx[e + static_cast<std::size_t>(j)])]);
      e += static_cast<std::size_t>(w);
    }
  } else {
    // Exotic warp sizes: one lane at a time, as in the scalar kernels.
    for (int j = 0; j < w; ++j) {
      ScalarLane<SymT> dec(stream, static_cast<std::size_t>(w),
                           static_cast<std::size_t>(j));
      index_t row = iv.start_row;
      std::size_t e = base + static_cast<std::size_t>(j);
      for (int c = 0; c < cols; ++c, e += static_cast<std::size_t>(w)) {
        row += static_cast<index_t>(dec.next(b));
        route(row, vals[e] * xp[static_cast<std::size_t>(col_idx[e])]);
      }
    }
  }
}

template <typename SymT, typename V>
void coo_interval_spmm(const core::BroCoo& a, std::size_t i,
                       std::span<const value_t> x, std::span<value_t> y,
                       int k, BroCooCarry& carry, value_t* first_sum,
                       value_t* last_sum) {
  const auto& iv = a.intervals()[i];
  const int w = a.options().warp_size;
  const int cols = a.options().interval_cols;
  const std::size_t base =
      i * static_cast<std::size_t>(w) * static_cast<std::size_t>(cols);
  const SymT* stream = iv.stream.template data<SymT>();
  const value_t* vals = a.vals().data();
  const index_t* col_idx = a.col_idx().data();
  const std::size_t uk = static_cast<std::size_t>(k);
  const index_t last_row = coo_last_row<SymT>(iv, stream, w, cols);
  carry = BroCooCarry{};
  carry.first_row = iv.start_row;
  carry.last_row = last_row;

  // Tile-of-kCooSegWidth structure exactly as in bro_coo_interval_spmm:
  // wider batches re-decode the interval once per tile, every entry hits
  // each destination in the same order per right-hand side.
  constexpr int kSym = static_cast<int>(sizeof(SymT) * 8);
  constexpr int W = V::kLanes;
  const int b = iv.bits;
  for (int k0 = 0; k0 < k; k0 += detail::kCooSegWidth) {
    const std::size_t kc =
        static_cast<std::size_t>(std::min(detail::kCooSegWidth, k - k0));
    const std::size_t uk0 = static_cast<std::size_t>(k0);
    for (std::size_t bb = 0; bb < kc; ++bb) first_sum[uk0 + bb] = 0;
    for (std::size_t bb = 0; bb < kc; ++bb) last_sum[uk0 + bb] = 0;
    const auto accumulate = [&](index_t row, std::size_t e) {
      const value_t v = vals[e];
      const value_t* xc =
          x.data() + static_cast<std::size_t>(col_idx[e]) * uk + uk0;
      value_t* dst;
      if (row == iv.start_row) {
        dst = first_sum + uk0;
      } else if (row == last_row) {
        dst = last_sum + uk0;
      } else {
        dst = y.data() + static_cast<std::size_t>(row) * uk + uk0;
      }
      for (std::size_t bb = 0; bb < kc; ++bb) dst[bb] += v * xc[bb];
    };
    if (w <= detail::kMaxCooLanes) {
      alignas(32) SymT sym[detail::kMaxCooLanes];
      alignas(32) SymT d[detail::kMaxCooLanes];
      index_t row[detail::kMaxCooLanes];
      for (int j = 0; j < w; ++j) sym[j] = 0;
      for (int j = 0; j < w; ++j) row[j] = iv.start_row;
      int rb = 0;
      const SymT* next_load = stream;
      std::size_t e = base;
      for (int c = 0; c < cols; ++c) {
        if (b <= rb) {
          rb -= b;
          const SymT mask = static_cast<SymT>(bits::max_value_for_bits(b));
          int j = 0;
          for (; j + W <= w; j += W)
            V::store(d + j, V::and_mask(V::srl(V::load(sym + j), rb), mask));
          for (; j < w; ++j) d[j] = static_cast<SymT>((sym[j] >> rb) & mask);
        } else {
          const int high = rb;
          const int low = b - high;
          const SymT hmask =
              static_cast<SymT>(bits::max_value_for_bits(high));
          const SymT lmask =
              static_cast<SymT>(bits::max_value_for_bits(low));
          rb = kSym - low;
          int j = 0;
          for (; j + W <= w; j += W) {
            const typename V::Reg hpart =
                V::and_mask(V::load(sym + j), hmask);
            const typename V::Reg s = V::load(next_load + j);
            V::store(sym + j, s);
            V::store(d + j, V::or_(V::sll(hpart, low),
                                   V::and_mask(V::srl(s, rb), lmask)));
          }
          for (; j < w; ++j) {
            const std::uint64_t hpart = sym[j] & hmask;
            const SymT s = next_load[j];
            sym[j] = s;
            d[j] = static_cast<SymT>((hpart << low) | ((s >> rb) & lmask));
          }
          next_load += w;
        }
        for (int j = 0; j < w; ++j)
          row[j] += static_cast<index_t>(static_cast<std::uint32_t>(d[j]));
        for (int j = 0; j < w; ++j)
          accumulate(row[j], e + static_cast<std::size_t>(j));
        e += static_cast<std::size_t>(w);
      }
    } else {
      for (int j = 0; j < w; ++j) {
        ScalarLane<SymT> dec(stream, static_cast<std::size_t>(w),
                             static_cast<std::size_t>(j));
        index_t row = iv.start_row;
        std::size_t e = base + static_cast<std::size_t>(j);
        for (int c = 0; c < cols; ++c, e += static_cast<std::size_t>(w)) {
          row += static_cast<index_t>(dec.next(b));
          accumulate(row, e);
        }
      }
    }
  }
}

// --------------------------------------------------------------- checksum

/// Lockstep decode-only checksum over a muxed stream with per-column
/// widths: the bench's pure-unpack inner loop (see SimdChecksumFn). Vector
/// groups of kLanes lanes, scalar for the remainder; the sum over all lanes
/// equals the scalar decoders' checksum (uint64 addition commutes).
template <typename SymT, typename V>
std::uint64_t stream_checksum(const SymT* stream, std::size_t lanes,
                              const std::uint8_t* widths, std::size_t cols) {
  constexpr int W = V::kLanes;
  std::uint64_t total = 0;
  std::size_t t = 0;
  for (; t + W <= lanes; t += W) {
    const SymT* next_load = stream + t;
    typename V::Reg sym = V::zero();
    int rb = 0;
    alignas(32) SymT d[W];
    std::uint64_t acc[W] = {};
    for (std::size_t c = 0; c < cols; ++c) {
      lockstep_next<SymT, V>(sym, rb, widths[c], next_load, lanes, d);
      for (int j = 0; j < W; ++j) acc[j] += d[j];
    }
    for (int j = 0; j < W; ++j) total += acc[j];
  }
  for (; t < lanes; ++t) {
    ScalarLane<SymT> dec(stream, lanes, t);
    for (std::size_t c = 0; c < cols; ++c) total += dec.next(widths[c]);
  }
  return total;
}

} // namespace

// The set this TU contributes, constant-initialized so the baseline-ABI
// dispatch code can read the exported pointer without running any code
// compiled at this ISA.
constexpr SimdKernelSet kKernelSet{
    .isa = BRO_SIMD_ISA,
    .ell_spmv32 = &ell_slice_spmv<std::uint32_t, VecU32>,
    .ell_spmv64 = &ell_slice_spmv<std::uint64_t, VecU64>,
    .ell_spmm32 = &ell_slice_spmm<std::uint32_t, VecU32>,
    .ell_spmm64 = &ell_slice_spmm<std::uint64_t, VecU64>,
    .coo_spmv32 = &coo_interval_spmv<std::uint32_t, VecU32>,
    .coo_spmv64 = &coo_interval_spmv<std::uint64_t, VecU64>,
    .coo_spmm32 = &coo_interval_spmm<std::uint32_t, VecU32>,
    .coo_spmm64 = &coo_interval_spmm<std::uint64_t, VecU64>,
    .checksum32 = &stream_checksum<std::uint32_t, VecU32>,
    .checksum64 = &stream_checksum<std::uint64_t, VecU64>,
};

} // namespace bro::kernels::BRO_SIMD_NS
