// OpenMP-parallel host SpMM (multi-vector SpMV) kernels.
//
// The serving layer folds k right-hand sides into one pass over the matrix:
// every index decoded (or delta-unpacked, for the BRO formats) feeds k FMAs
// instead of one, so the per-index cost — Algorithm 1's bit unpacking for
// BRO-ELL/BRO-COO, the sentinel test for ELLPACK, the row_ptr walk for CSR —
// is amortized over the batch, the same bits-per-flop win the paper gets
// from compression, now per batch.
//
// The BRO kernels dispatch through the same width-specialized decode tables
// as the single-vector kernels (native_spmv.h): pass the plan-time
// BroEllKernel / BroCooKernel choices for the branch-free plan path, or use
// the table-free overloads which select inline per slice/interval.
//
// Layout: the k vectors are interleaved. X[c*k + j] is element c of
// right-hand side j, Y[r*k + j] element r of result j, so one decoded column
// index addresses k contiguous x values.
//
// Contract: each kernel accumulates every Y element in exactly the order the
// corresponding single-vector kernel in native_spmv.h accumulates it, so
// with k = 1 — and column-by-column for any k — results are bitwise equal to
// k independent native_spmv_* calls. The differential fuzz driver asserts
// this exactly (no tolerance).
#pragma once

#include <span>

#include "core/bro_coo.h"
#include "core/bro_ell.h"
#include "kernels/native_spmv.h"
#include "sparse/csr.h"
#include "sparse/ell.h"

namespace bro::kernels {

/// Y = A * X for k interleaved right-hand sides (X: cols*k, Y: rows*k).
void native_spmm_csr(const sparse::Csr& a, std::span<const value_t> x,
                     std::span<value_t> y, int k);

void native_spmm_ell(const sparse::Ell& a, std::span<const value_t> x,
                     std::span<value_t> y, int k);

void native_spmm_bro_ell(const core::BroEll& a, std::span<const value_t> x,
                         std::span<value_t> y, int k);

/// BRO-ELL over plan-time kernel choices (aligned with slices()).
void native_spmm_bro_ell(const core::BroEll& a,
                         std::span<const BroEllKernel> kernels,
                         std::span<const value_t> x, std::span<value_t> y,
                         int k);

void native_spmm_bro_coo(const core::BroCoo& a, std::span<const value_t> x,
                         std::span<value_t> y, int k);

/// BRO-COO with caller-owned scratch: `carries` records each interval's
/// first/last row (>= intervals() entries; the scalar sum fields are unused
/// here), `carry_sums` holds the k-wide partial sums for those two rows,
/// laid out as [interval * 2k .. interval * 2k + k) for the first row and
/// [interval * 2k + k .. (interval + 1) * 2k) for the last. The
/// allocation-free plan path; kernel selection is inline per interval.
void native_spmm_bro_coo(const core::BroCoo& a, std::span<const value_t> x,
                         std::span<value_t> y, int k,
                         std::span<BroCooCarry> carries,
                         std::span<value_t> carry_sums);

/// BRO-COO over plan-time kernel choices (aligned with intervals()): the
/// allocation- and branch-free plan path.
void native_spmm_bro_coo(const core::BroCoo& a,
                         std::span<const BroCooKernel> kernels,
                         std::span<const value_t> x, std::span<value_t> y,
                         int k, std::span<BroCooCarry> carries,
                         std::span<value_t> carry_sums);

} // namespace bro::kernels
