// Vectorized BRO-ANS entropy decode, included once per ISA translation
// unit (bro_ans_decode_sse4.cpp / bro_ans_decode_avx2.cpp).
//
// The including TU defines
//   BRO_SIMD_NS   — the namespace for this ISA's kernels (e.g. ans_avx2)
//   BRO_SIMD_ISA  — the matching ::bro::kernels::SimdIsa enumerator
// and is compiled with exactly that ISA's target flag plus -ffp-contract=off
// (src/kernels/CMakeLists.txt), never -march=native.
//
// ODR rule, as in bro_decode_simd_impl.h: stay self-contained. The scalar
// chain below is a local copy of detail::AnsChain (bro_ans_decode.h), NOT
// an instantiation of it — the linker keeps one copy of comdat template
// instantiations, and if it picked the one compiled here the baseline
// dispatch path could execute ISA instructions on hosts without them.
//
// What vectorizes (AVX2, 32-bit stream symbols): the v2 layout interleaves
// the 8 rows of a lane group round-robin into one stream, so the 8 ANS
// states advance over disjoint bit budgets — symbol c of lane j at flat
// slot c*8 + j. Per decoded column the kernel does one vpgatherdd into the
// L1-resident decode table for all 8 states, extracts class/nb/base with
// vector shifts and masks, reads mantissa + renorm bits through an
// MSB-justified per-lane window (variable-shift extract, vector-compare
// cross detection, one vpgatherdd refill prefetched a read ahead), and
// rebuilds the deltas with vpsllv. kVecChains lane groups run as
// independent interleaved chains so the table-gather latency that
// serializes each chain overlaps the others' work; slice drivers drain
// leftover groups in power-of-two batches. The SpMV driver phase-splits
// each kSpmvTile-column tile: decode parks deltas in a stack buffer at
// full chain ILP, then a vectorized column/FP tail (masked x gather,
// -0.0 blend for padding lanes, all-live and all-padding fast paths)
// accumulates per lane in column order — bitwise identical to the
// sequential reference, the property the differential fuzzer and the
// dispatch parity tests pin.
//
// SSE4 has neither gathers nor per-lane variable shifts, so its
// contribution is chain count, not vector unpacking: all 8 chains of a
// lane group in flight (the baseline keeps 4), compiled under -msse4.2.
// 64-bit stream symbols stay on the baseline scalar path (spmv64 is null;
// dispatch falls back to the 4-chain ILP kernel).

#include <immintrin.h>

#include <algorithm>
#include <cstdint>
#include <type_traits>

#include "bits/bitwidth.h"
#include "bits/delta.h"
#include "core/bro_ans.h"
#include "kernels/bro_decode_simd.h"

namespace bro::kernels::BRO_SIMD_NS {
namespace {

// ------------------------------------------------ local scalar chain
// Default-constructible local copy of detail::AnsChain (see ODR rule) so a
// fixed-size array of chains can be init()'d in a loop; eager branchless
// refill, 64-bit buffer (this TU only ever runs it for 32-bit symbols).
struct Chain {
  const std::uint32_t* p = nullptr;
  const std::uint32_t* last = nullptr;
  std::size_t stride = 0;
  std::uint64_t buf = 0;
  int rb = 0;
  std::uint32_t x = 0;
  std::uint32_t zero = 0;

  void init(const std::uint32_t* stream, std::size_t stride_in,
            std::size_t lane, std::size_t total_slots,
            std::uint32_t init_state, int tl) {
    stride = stride_in;
    if (total_slots == 0) {
      p = last = &zero;
    } else {
      p = stream + lane;
      last = stream + (total_slots - 1);
    }
    buf = static_cast<std::uint64_t>(*p);
    rb = 32;
    const std::uint32_t* pn = p + stride;
    p = pn < last ? pn : last;
    x = (1u << tl) + init_state;
  }

  inline std::uint32_t read(int b) {
    const std::uint64_t d = (buf >> (rb - b)) & bits::max_value_for_bits(b);
    rb -= b;
    const std::uint32_t w = *p; // clamped cursor — always in bounds
    const bool need = rb < 32;
    const std::uint32_t* pn = p + stride;
    buf = need ? ((buf << 32) | w) : buf;
    rb += need ? 32 : 0;
    p = need ? (pn < last ? pn : last) : p;
    return static_cast<std::uint32_t>(d);
  }

  inline std::uint32_t step(const std::uint32_t* table, std::uint32_t L) {
    const std::uint32_t e = table[x - L];
    const int cls = static_cast<int>(e & 63u);
    const int nb = static_cast<int>((e >> 6) & 31u);
    const int mb = cls > 0 ? cls - 1 : 0;
    std::uint32_t mantissa, state_bits;
    if (mb + nb <= 32) {
      const std::uint32_t r = read(mb + nb);
      mantissa = r >> nb;
      state_bits =
          r & static_cast<std::uint32_t>(bits::max_value_for_bits(nb));
    } else {
      mantissa = read(mb);
      state_bits = read(nb);
    }
    x = (e >> 11) + state_bits;
    return cls > 0 ? ((1u << (cls - 1)) | mantissa) : 0;
  }
};

/// One lane group decoded by up-to-kAnsLaneGroup interleaved scalar chains
/// — the SSE4 SpMV body and the AVX2 remainder path (partial last group or
/// zero-slot streams).
inline void ans_group_spmv_chains(const core::BroAns& a,
                                  const core::BroAnsSlice& slice, index_t g,
                                  const value_t* xp, value_t* yp) {
  const bits::MuxedStream& mux = slice.groups[static_cast<std::size_t>(g)];
  const std::uint32_t* stream = mux.data<std::uint32_t>();
  const int gw = static_cast<int>(mux.height());
  const std::size_t n = mux.total_symbols();
  const std::uint32_t* table = a.table().decode_data();
  const int tl = a.table().table_log();
  const std::uint32_t L = 1u << tl;
  const value_t* vals = a.vals().data();
  const std::size_t m = static_cast<std::size_t>(a.rows());
  const index_t t0 = g * core::kAnsLaneGroup;
  const std::size_t r0 =
      static_cast<std::size_t>(slice.first_row) + static_cast<std::size_t>(t0);

  Chain ch[core::kAnsLaneGroup];
  index_t col[core::kAnsLaneGroup];
  value_t sum[core::kAnsLaneGroup];
  for (int j = 0; j < gw; ++j) {
    ch[j].init(stream, static_cast<std::size_t>(gw),
               static_cast<std::size_t>(j), n,
               slice.init_states[static_cast<std::size_t>(t0 + j)], tl);
    col[j] = -1;
    sum[j] = 0;
  }
  std::size_t voff = 0;
  for (index_t c = 0; c < slice.num_col; ++c, voff += m) {
    for (int j = 0; j < gw; ++j) {
      const std::uint32_t d = ch[j].step(table, L);
      if (d != bits::kInvalidDelta) {
        col[j] += static_cast<index_t>(d);
        sum[j] += vals[voff + r0 + static_cast<std::size_t>(j)] *
                  xp[static_cast<std::size_t>(col[j])];
      }
    }
  }
  for (int j = 0; j < gw; ++j) yp[r0 + static_cast<std::size_t>(j)] = sum[j];
}

/// Checksum twin of ans_group_spmv_chains.
inline std::uint64_t ans_group_checksum_chains(const core::BroAns& a,
                                               const core::BroAnsSlice& slice,
                                               index_t g) {
  const bits::MuxedStream& mux = slice.groups[static_cast<std::size_t>(g)];
  const std::uint32_t* stream = mux.data<std::uint32_t>();
  const int gw = static_cast<int>(mux.height());
  const std::size_t n = mux.total_symbols();
  const std::uint32_t* table = a.table().decode_data();
  const int tl = a.table().table_log();
  const std::uint32_t L = 1u << tl;
  const index_t t0 = g * core::kAnsLaneGroup;

  Chain ch[core::kAnsLaneGroup];
  std::uint64_t acc[core::kAnsLaneGroup] = {};
  for (int j = 0; j < gw; ++j)
    ch[j].init(stream, static_cast<std::size_t>(gw),
               static_cast<std::size_t>(j), n,
               slice.init_states[static_cast<std::size_t>(t0 + j)], tl);
  for (index_t c = 0; c < slice.num_col; ++c)
    for (int j = 0; j < gw; ++j) acc[j] += ch[j].step(table, L);
  std::uint64_t sum = 0;
  for (int j = 0; j < gw; ++j) sum += acc[j];
  return sum;
}

#if defined(__AVX2__)

// ------------------------------------------------ AVX2 vector group
// All eight ANS states of one full lane group as 8 x u32 vectors. The bit
// reader keeps each lane's window MSB-justified: `va` holds the lane's
// next `rb` unread bits in its TOP bits with zeros below, so a b-bit read
// is one variable shift with no masking — vpsrlvd/vpsllvd yield 0 for any
// count outside [0, 31], which makes every edge (b = 0, b = rb, rb = 0)
// fall out of the same two-term splice. `k` is the next round-robin slot
// index (flat slot k*8 + lane); `nextw` is that slot's word, gathered one
// read ahead so the renorm load stays off the serial state chain. Decoded
// values are invariant to refill timing versus the eager scalar chain —
// consecutive MSB-first reads concatenate — which the dispatch parity
// tests and the fuzzer verify end to end.
struct VecGroup {
  __m256i x, va, rb;
  __m256i idx;   // flat slot of the next refill word: cursor k * 8 + lane,
                 // maintained incrementally (crossers step by 8)
  __m256i nextw; // per-lane word at idx, gathered one read ahead
  const std::uint32_t* base;
  __m256i idxmax; // last flat slot per lane: cursor clamp for exhausted
                  // lanes
};

inline __m256i lane_offsets() {
  return _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7);
}

inline void vg_init(VecGroup& vg, const std::uint32_t* stream,
                    std::size_t spr, const std::uint16_t* init,
                    std::uint32_t L) {
  const __m128i s16 =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(init));
  vg.x = _mm256_add_epi32(_mm256_set1_epi32(static_cast<int>(L)),
                          _mm256_cvtepu16_epi32(s16));
  vg.va = _mm256_setzero_si256();
  vg.rb = _mm256_setzero_si256();
  vg.idx = lane_offsets();
  vg.base = stream;
  vg.idxmax = _mm256_add_epi32(
      _mm256_set1_epi32((static_cast<int>(spr) - 1) * 8), lane_offsets());
  // spr > 0 (vg_eligible), so slot 0 of every lane exists.
  vg.nextw = _mm256_i32gather_epi32(reinterpret_cast<const int*>(stream),
                                    lane_offsets(), 4);
}

/// MSB-first read of b bits per lane (0 <= b <= 32), branchless renorm.
/// Non-crossing lanes take the top b bits of their window; lanes whose
/// window runs short (`cross`) splice its remainder onto the head of the
/// prefetched slot. Both paths are the same OR of two variable shifts:
/// counts outside [0, 31] (b = 0; the non-crossers' `low` is negative)
/// contribute exact zeros, so no lane needs a mask or a blend.
inline __m256i vg_read(VecGroup& vg, __m256i b) {
  const __m256i c32 = _mm256_set1_epi32(32);
  const __m256i cross = _mm256_cmpgt_epi32(b, vg.rb);
  const __m256i d_hi = _mm256_srlv_epi32(vg.va, _mm256_sub_epi32(c32, b));
  if (_mm256_movemask_epi8(cross) == 0) {
    vg.va = _mm256_sllv_epi32(vg.va, b);
    vg.rb = _mm256_sub_epi32(vg.rb, b);
    return d_hi;
  }
  const __m256i w = vg.nextw;
  const __m256i low = _mm256_sub_epi32(b, vg.rb); // < 0 for non-crossers
  const __m256i d = _mm256_or_si256(
      d_hi, _mm256_srlv_epi32(w, _mm256_sub_epi32(c32, low)));
  // A lane with b == rb drains its window and picks up the whole of w here
  // (sllv count 0), leaving va = w with rb = 0. That is self-consistent:
  // until the lane's next read advances k, nextw still holds w, and with
  // rb = 0 both splice terms read the same top-of-w bits.
  vg.va = _mm256_or_si256(_mm256_sllv_epi32(vg.va, b),
                          _mm256_sllv_epi32(w, low));
  vg.rb = _mm256_add_epi32(_mm256_sub_epi32(vg.rb, b),
                           _mm256_and_si256(cross, c32));
  // cross is all-ones: the flat slot steps by one cursor (8 slots).
  vg.idx = _mm256_sub_epi32(vg.idx,
                            _mm256_and_si256(cross, _mm256_set1_epi32(-8)));
  // A crossing lane always has another slot (the encoder wrote every bit
  // it consumes); clamp only the exhausted lanes' cursors, then gather the
  // new cursors' words for the *next* crossing read — the load overlaps
  // the table gathers in between. Non-crossing lanes re-gather their
  // unchanged slot, which is idempotent.
  const __m256i idxc = _mm256_min_epu32(vg.idx, vg.idxmax);
  vg.nextw = _mm256_i32gather_epi32(reinterpret_cast<const int*>(vg.base),
                                    idxc, 4);
  return d;
}

/// Decode one delta per lane: gather the packed table entries for all
/// eight states, unpack class/nb/base, read the mantissa and renorm bits
/// (fused into one read when every lane fits a 32-bit yield — the common
/// case for table_log <= 15; bit-identical either way), advance the
/// states, and return the rebuilt deltas (0 = padding sentinel).
inline __m256i vg_step(VecGroup& vg, const std::uint32_t* table,
                       std::uint32_t L) {
  const __m256i one = _mm256_set1_epi32(1);
  const __m256i pos =
      _mm256_sub_epi32(vg.x, _mm256_set1_epi32(static_cast<int>(L)));
  const __m256i e = _mm256_i32gather_epi32(
      reinterpret_cast<const int*>(table), pos, 4);
  const __m256i cls = _mm256_and_si256(e, _mm256_set1_epi32(63));
  const __m256i nb =
      _mm256_and_si256(_mm256_srli_epi32(e, 6), _mm256_set1_epi32(31));
  const __m256i basev = _mm256_srli_epi32(e, 11);
  const __m256i gt0 = _mm256_cmpgt_epi32(cls, _mm256_setzero_si256());
  const __m256i mb = _mm256_add_epi32(cls, gt0); // cls - 1, floored at 0
  const __m256i b = _mm256_add_epi32(mb, nb);
  __m256i mant, sb;
  if (_mm256_movemask_epi8(
          _mm256_cmpgt_epi32(b, _mm256_set1_epi32(32))) == 0) {
    const __m256i r = vg_read(vg, b);
    mant = _mm256_srlv_epi32(r, nb);
    // r minus the mantissa bits shifted back up == the low nb state bits,
    // one op cheaper than masking.
    sb = _mm256_sub_epi32(r, _mm256_sllv_epi32(mant, nb));
  } else {
    mant = vg_read(vg, mb);
    sb = vg_read(vg, nb);
  }
  vg.x = _mm256_add_epi32(basev, sb);
  return _mm256_and_si256(_mm256_or_si256(_mm256_sllv_epi32(one, mb), mant),
                          gt0);
}

/// Column/FP tail for one lane group, vectorized ACROSS lanes: each lane's
/// adds still land in column order, so per-row results are bitwise
/// identical to the sequential reference (lanes are independent rows — no
/// cross-lane reassociation). Padding lanes (delta 0) must not perturb
/// their accumulator, so their product is replaced by -0.0 before the add:
/// s + (-0.0) == s bitwise for every s (+0 stays +0, -0 stays -0, inf and
/// NaN pass through as vaddpd's first operand), exactly matching the
/// scalar kernels' skipped add. The x gather is masked with the same
/// validity mask, so padding lanes (whose running column can still be the
/// initial -1) never form an address and load 0.0 instead; their junk
/// product is then blended away before it can touch the accumulator.
inline void vg_accumulate(__m256i dv, __m256i& col, __m256d& sum_lo,
                          __m256d& sum_hi, const value_t* v,
                          const value_t* xp) {
  col = _mm256_add_epi32(col, dv); // delta 0 leaves the lane's column put
  const __m256i iszero =
      _mm256_cmpeq_epi32(dv, _mm256_setzero_si256());
  const int zm = _mm256_movemask_epi8(iszero);
  if (zm == 0) {
    // All eight lanes live — the overwhelmingly common case (padding is
    // trailing), and the branch predicts as such. Plain gathers on the
    // (all-valid) columns, no masks, no blends.
    const __m256d x_lo =
        _mm256_i32gather_pd(xp, _mm256_castsi256_si128(col), 8);
    const __m256d x_hi =
        _mm256_i32gather_pd(xp, _mm256_extracti128_si256(col, 1), 8);
    sum_lo = _mm256_add_pd(sum_lo, _mm256_mul_pd(_mm256_loadu_pd(v), x_lo));
    sum_hi = _mm256_add_pd(sum_hi,
                           _mm256_mul_pd(_mm256_loadu_pd(v + 4), x_hi));
    return;
  }
  // All eight lanes padding: nothing to touch. Rows of a group are
  // adjacent and a slice's rows have similar lengths, so once the whole
  // group runs past its shortest row the remaining columns are usually
  // all-padding for the whole group — on heavily padded suites this skips
  // the value loads ELL's branchy tail never issues either, and the
  // branch predicts cleanly (padding is trailing).
  if (zm == -1) return;
  const __m256i valid =
      _mm256_xor_si256(iszero, _mm256_set1_epi32(-1));
  const __m256i vm_lo =
      _mm256_cvtepi32_epi64(_mm256_castsi256_si128(valid));
  const __m256i vm_hi =
      _mm256_cvtepi32_epi64(_mm256_extracti128_si256(valid, 1));
  const __m256d x_lo = _mm256_mask_i32gather_pd(
      _mm256_setzero_pd(), xp, _mm256_castsi256_si128(col),
      _mm256_castsi256_pd(vm_lo), 8);
  const __m256d x_hi = _mm256_mask_i32gather_pd(
      _mm256_setzero_pd(), xp, _mm256_extracti128_si256(col, 1),
      _mm256_castsi256_pd(vm_hi), 8);
  const __m256d neg0 = _mm256_set1_pd(-0.0);
  const __m256d p_lo = _mm256_mul_pd(_mm256_loadu_pd(v), x_lo);
  const __m256d p_hi = _mm256_mul_pd(_mm256_loadu_pd(v + 4), x_hi);
  sum_lo = _mm256_add_pd(
      sum_lo, _mm256_blendv_pd(neg0, p_lo, _mm256_castsi256_pd(vm_lo)));
  sum_hi = _mm256_add_pd(
      sum_hi, _mm256_blendv_pd(neg0, p_hi, _mm256_castsi256_pd(vm_hi)));
}

/// Whether group g is eligible for the vector path: a full 8-lane group
/// with at least one stream slot (the gather needs a real base).
inline bool vg_eligible(const core::BroAnsSlice& slice, index_t g) {
  const bits::MuxedStream& mux = slice.groups[static_cast<std::size_t>(g)];
  return mux.height() == core::kAnsLaneGroup && mux.symbols_per_row() > 0;
}

/// How many vector chains (lane groups) the slice drivers keep in flight:
/// the table gather that serializes each 8-state chain has enough latency
/// to hide several independent chains' worth of ALU work.
inline constexpr int kVecChains = 8;
inline constexpr int kSpmvChains = kVecChains;

/// Column-tile depth for the SpMV driver's phase split (see below).
inline constexpr index_t kSpmvTile = 16;

/// NG full lane groups decoded in lockstep column steps — NG independent
/// 8-state vector chains whose gathers overlap — feeding the vectorized
/// column/FP tail.
///
/// Decode and accumulate are phase-split over kSpmvTile-column tiles: the
/// decode phase runs all NG chains with only the ANS state live (the same
/// register footprint the checksum kernel sustains at kVecChains), parking
/// each step's deltas in a small stack buffer; the accumulate phase then
/// walks the buffer one chain at a time with just that chain's column and
/// accumulator vectors live. Fusing the two per column-step instead would
/// keep NG * 3 extra vectors live across every step and spill the decode
/// chains themselves — measured several ticks slower — while the buffer
/// traffic here is L1-resident and off every critical path.
template <int NG>
inline void vg_spmv_groups(const core::BroAns& a,
                           const core::BroAnsSlice& slice,
                           const index_t* gs, const value_t* xp,
                           value_t* yp) {
  const std::uint32_t* table = a.table().decode_data();
  const std::uint32_t L = 1u << a.table().table_log();
  const value_t* vals = a.vals().data();
  const std::size_t m = static_cast<std::size_t>(a.rows());
  const std::size_t first = static_cast<std::size_t>(slice.first_row);
  VecGroup vg[NG];
  __m256i col[NG];
  __m256d slo[NG], shi[NG];
  std::size_t r0[NG];
  for (int i = 0; i < NG; ++i) {
    const index_t g = gs[i];
    const bits::MuxedStream& mux = slice.groups[static_cast<std::size_t>(g)];
    const index_t t0 = g * core::kAnsLaneGroup;
    r0[i] = first + static_cast<std::size_t>(t0);
    vg_init(vg[i], mux.data<std::uint32_t>(), mux.symbols_per_row(),
            slice.init_states.data() + t0, L);
    col[i] = _mm256_set1_epi32(-1);
    slo[i] = _mm256_setzero_pd();
    shi[i] = _mm256_setzero_pd();
  }
  alignas(32) std::uint32_t dbuf[kSpmvTile][NG][core::kAnsLaneGroup];
  for (index_t c0 = 0; c0 < slice.num_col; c0 += kSpmvTile) {
    const index_t tc = std::min(kSpmvTile, slice.num_col - c0);
    for (index_t t = 0; t < tc; ++t)
      for (int i = 0; i < NG; ++i)
        _mm256_store_si256(reinterpret_cast<__m256i*>(dbuf[t][i]),
                           vg_step(vg[i], table, L));
    for (int i = 0; i < NG; ++i) {
      __m256i cl = col[i];
      __m256d lo = slo[i], hi = shi[i];
      const value_t* v = vals + static_cast<std::size_t>(c0) * m + r0[i];
      for (index_t t = 0; t < tc; ++t, v += m)
        vg_accumulate(
            _mm256_load_si256(reinterpret_cast<const __m256i*>(dbuf[t][i])),
            cl, lo, hi, v, xp);
      col[i] = cl;
      slo[i] = lo;
      shi[i] = hi;
    }
  }
  for (int i = 0; i < NG; ++i) {
    _mm256_storeu_pd(yp + r0[i], slo[i]);
    _mm256_storeu_pd(yp + r0[i] + 4, shi[i]);
  }
}

/// AVX2 SpMV over one slice: eligible lane groups batched kSpmvChains at a
/// time through the vector chains (order across groups is free — rows are
/// independent); leftovers and ineligible groups take the interleaved
/// scalar chains.
void ans_slice_spmv_vec(const core::BroAns& a, const core::BroAnsSlice& slice,
                        std::span<const value_t> x, std::span<value_t> y) {
  static_assert(std::is_same_v<value_t, double>,
                "vg_accumulate assumes 64-bit lanes");
  const std::size_t first = static_cast<std::size_t>(slice.first_row);
  if (slice.num_col == 0) {
    for (index_t t = 0; t < slice.height; ++t)
      y[first + static_cast<std::size_t>(t)] = 0;
    return;
  }
  const value_t* xp = x.data();
  value_t* yp = y.data();
  const index_t num_groups = core::ans_num_groups(slice.height);
  index_t pend[kSpmvChains];
  int np = 0;
  for (index_t g = 0; g < num_groups; ++g) {
    if (vg_eligible(slice, g)) {
      pend[np++] = g;
      if (np == kSpmvChains) {
        vg_spmv_groups<kSpmvChains>(a, slice, pend, xp, yp);
        np = 0;
      }
    } else {
      ans_group_spmv_chains(a, slice, g, xp, yp);
    }
  }
  // Leftovers (np < kSpmvChains at slice end) still deserve cross-chain
  // ILP: drain them in power-of-two batches rather than one latency-bound
  // chain at a time — on suites whose slices hold ~30 groups the leftover
  // fraction is ~10% of all groups and single-chain decode is several
  // times slower.
  int i = 0;
  for (; i + 3 < np; i += 4) vg_spmv_groups<4>(a, slice, pend + i, xp, yp);
  for (; i + 1 < np; i += 2) vg_spmv_groups<2>(a, slice, pend + i, xp, yp);
  if (i < np) vg_spmv_groups<1>(a, slice, pend + i, xp, yp);
}

/// Pairwise u32 -> u64 widening of all eight lanes into four u64 partials
/// (u64 addition commutes, so any lane-to-partial assignment checksums the
/// same) and its horizontal fold — the checksum kernel's accumulator.
inline __m256i widen_u32_sum(__m256i v) {
  return _mm256_add_epi64(
      _mm256_cvtepu32_epi64(_mm256_castsi256_si128(v)),
      _mm256_cvtepu32_epi64(_mm256_extracti128_si256(v, 1)));
}

inline std::uint64_t hsum_u64(__m256i v) {
  alignas(32) std::uint64_t t[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(t), v);
  return t[0] + t[1] + t[2] + t[3];
}

/// Checksum twin of vg_spmv_groups (the bench kernel's inner block).
template <int NG>
inline std::uint64_t vg_checksum_groups(const core::BroAns& a,
                                        const core::BroAnsSlice& slice,
                                        const index_t* gs) {
  const std::uint32_t* table = a.table().decode_data();
  const std::uint32_t L = 1u << a.table().table_log();
  VecGroup vg[NG];
  __m256i acc[NG];
  for (int i = 0; i < NG; ++i) {
    const index_t g = gs[i];
    const bits::MuxedStream& mux = slice.groups[static_cast<std::size_t>(g)];
    const index_t t0 = g * core::kAnsLaneGroup;
    vg_init(vg[i], mux.data<std::uint32_t>(), mux.symbols_per_row(),
            slice.init_states.data() + t0, L);
    acc[i] = _mm256_setzero_si256();
  }
  for (index_t c = 0; c < slice.num_col; ++c)
    for (int i = 0; i < NG; ++i)
      acc[i] = _mm256_add_epi64(acc[i], widen_u32_sum(vg_step(vg[i], table, L)));
  std::uint64_t total = 0;
  for (int i = 0; i < NG; ++i) total += hsum_u64(acc[i]);
  return total;
}

/// Decode-only checksum twin of ans_slice_spmv_vec (the bench kernel).
std::uint64_t ans_slice_checksum_vec(const core::BroAns& a,
                                     const core::BroAnsSlice& slice) {
  if (slice.num_col == 0) return 0;
  const index_t num_groups = core::ans_num_groups(slice.height);
  std::uint64_t total = 0;
  index_t pend[kVecChains];
  int np = 0;
  for (index_t g = 0; g < num_groups; ++g) {
    if (vg_eligible(slice, g)) {
      pend[np++] = g;
      if (np == kVecChains) {
        total += vg_checksum_groups<kVecChains>(a, slice, pend);
        np = 0;
      }
    } else {
      total += ans_group_checksum_chains(a, slice, g);
    }
  }
  int i = 0;
  for (; i + 3 < np; i += 4)
    total += vg_checksum_groups<4>(a, slice, pend + i);
  for (; i + 1 < np; i += 2)
    total += vg_checksum_groups<2>(a, slice, pend + i);
  if (i < np) total += vg_checksum_groups<1>(a, slice, pend + i);
  return total;
}

#else // !__AVX2__ — the SSE4 TU: interleaved scalar chains

void ans_slice_spmv_chains8(const core::BroAns& a,
                            const core::BroAnsSlice& slice,
                            std::span<const value_t> x,
                            std::span<value_t> y) {
  const std::size_t first = static_cast<std::size_t>(slice.first_row);
  if (slice.num_col == 0) {
    for (index_t t = 0; t < slice.height; ++t)
      y[first + static_cast<std::size_t>(t)] = 0;
    return;
  }
  const index_t num_groups = core::ans_num_groups(slice.height);
  for (index_t g = 0; g < num_groups; ++g)
    ans_group_spmv_chains(a, slice, g, x.data(), y.data());
}

std::uint64_t ans_slice_checksum_chains8(const core::BroAns& a,
                                         const core::BroAnsSlice& slice) {
  if (slice.num_col == 0) return 0;
  std::uint64_t total = 0;
  const index_t num_groups = core::ans_num_groups(slice.height);
  for (index_t g = 0; g < num_groups; ++g)
    total += ans_group_checksum_chains(a, slice, g);
  return total;
}

#endif

} // namespace

// The set this TU contributes, constant-initialized so the baseline-ABI
// dispatch code can read the exported pointer without running any code
// compiled at this ISA. 64-bit symbol streams stay null: dispatch falls
// back to the baseline 4-chain scalar kernel.
#if defined(__AVX2__)
constexpr AnsSimdKernelSet kAnsKernelSet{
    .isa = BRO_SIMD_ISA,
    .spmv32 = &ans_slice_spmv_vec,
    .spmv64 = nullptr,
    .checksum32 = &ans_slice_checksum_vec,
    .checksum64 = nullptr,
};
#else
constexpr AnsSimdKernelSet kAnsKernelSet{
    .isa = BRO_SIMD_ISA,
    .spmv32 = &ans_slice_spmv_chains8,
    .spmv64 = nullptr,
    .checksum32 = &ans_slice_checksum_chains8,
    .checksum64 = nullptr,
};
#endif

} // namespace bro::kernels::BRO_SIMD_NS
