// Vectorized BRO-BCSR kernels, included once per ISA translation unit.
//
// The including TU defines BRO_SIMD_NS / BRO_SIMD_ISA and is compiled with
// exactly that ISA's target flag plus -ffp-contract=off
// (src/kernels/CMakeLists.txt), never -march=native.
//
// ODR rule: as in bro_decode_simd_impl.h, stay self-contained — the symbol
// decoder below is a local copy of the bro_bcsr_decode.cpp one, not a shared
// template the baseline TUs also instantiate.
//
// Unlike the ELL/COO kernels (which vectorize the integer bit-unpack), BCSR
// vectorizes the VALUE loop: a block's tile is contiguous and every
// candidate block width divides 8, so a block's columns occupy one aligned
// group of the 8-lane accumulator contract (core/bro_bcsr.h) and the vector
// slots ARE the contract's lanes. Index decode stays scalar — it carries
// 1/(r*c) of BRO-ELL's symbol traffic. Multiplies and adds are separate
// intrinsics in ascending block order and the reduction is always the
// scalar pairwise tree over a spilled 8-lane buffer, so results are bitwise
// identical to the scalar kernels by construction.
//
// x tail safety: a vector x load spans one block's columns. Only the last
// real block column of the matrix can be column-partial (cols % bc != 0),
// and block columns per row are strictly increasing, so each row defers at
// most that one block and applies it scalar on the spilled lanes — after
// the vector loop, which preserves the per-lane ascending-column order.
// Row-partial tail blocks need no care: their padding tile rows are zero
// and their lanes are simply never stored back.

#include <immintrin.h>

#include <algorithm>
#include <cstdint>

#include "bits/bitwidth.h"
#include "bits/delta.h"
#include "core/bro_bcsr.h"
#include "kernels/bro_bcsr_decode.h"

namespace bro::kernels::BRO_SIMD_NS {
namespace {

using core::BroBcsr;
using core::BroEllSlice;

// Local copy of the symbol-buffer lane decoder (see ODR rule above).
template <typename SymT>
class LaneStream {
 public:
  LaneStream(const bits::MuxedStream& s, std::size_t lane)
      : base_(s.template data<SymT>()), height_(s.height()), lane_(lane) {}

  std::uint32_t next(int b) {
    std::uint64_t decoded;
    if (b <= rb_) {
      decoded = take(b);
      shift_out(b);
      rb_ -= b;
    } else {
      decoded = take(rb_);
      const int b2 = b - rb_;
      sym_ = static_cast<std::uint64_t>(base_[loads_ * height_ + lane_]);
      ++loads_;
      decoded = (decoded << b2) | take(b2);
      shift_out(b2);
      rb_ = kSymLen - b2;
    }
    return static_cast<std::uint32_t>(decoded);
  }

 private:
  static constexpr int kSymLen = 8 * static_cast<int>(sizeof(SymT));
  static constexpr std::uint64_t kMask = bits::max_value_for_bits(kSymLen);

  std::uint64_t take(int q) const {
    if (q <= 0) return 0;
    return (sym_ >> (kSymLen - q)) & bits::max_value_for_bits(q);
  }
  void shift_out(int q) { sym_ = (q >= 64 ? 0 : (sym_ << q)) & kMask; }

  const SymT* base_;
  std::size_t height_;
  std::size_t lane_;
  std::uint64_t sym_ = 0;
  int rb_ = 0;
  std::size_t loads_ = 0;
};

// Double-lane shim: one kernel body per shape covers both register widths.
// madd() is a separate multiply then add — with -ffp-contract=off the
// compiler cannot fuse them, matching the scalar two-statement contract.
#if defined(__AVX2__)

struct VecD {
  using Reg = __m256d;
  static constexpr int kLanes = 4;
  static Reg zero() { return _mm256_setzero_pd(); }
  static Reg load(const value_t* p) { return _mm256_loadu_pd(p); }
  static void store(value_t* p, Reg v) { _mm256_storeu_pd(p, v); }
  static Reg broadcast(value_t v) { return _mm256_set1_pd(v); }
  static Reg madd(Reg acc, Reg a, Reg b) {
    return _mm256_add_pd(acc, _mm256_mul_pd(a, b));
  }
};

#else // 128-bit lanes: every intrinsic below is SSE2, the TU targets SSE4.2.

struct VecD {
  using Reg = __m128d;
  static constexpr int kLanes = 2;
  static Reg zero() { return _mm_setzero_pd(); }
  static Reg load(const value_t* p) { return _mm_loadu_pd(p); }
  static void store(value_t* p, Reg v) { _mm_storeu_pd(p, v); }
  static Reg broadcast(value_t v) { return _mm_set1_pd(v); }
  static Reg madd(Reg acc, Reg a, Reg b) {
    return _mm_add_pd(acc, _mm_mul_pd(a, b));
  }
};

#endif

// The contract's fixed pairwise reduction (core::BcsrLaneAcc::reduce).
inline value_t reduce8(const value_t* l) {
  return (((l[0] + l[1]) + (l[2] + l[3])) + ((l[4] + l[5]) + (l[6] + l[7]))) +
         0.0;
}

// Scalar application of the deferred column-partial block onto spilled
// lanes: rows i < rh, columns k < ch, ascending — core::BroBcsr::spmv's
// clipped path verbatim.
inline void apply_partial(value_t lanes[][8], const value_t* tv, int bc,
                          int rh, int ch, index_t c0,
                          std::span<const value_t> x) {
  for (int i = 0; i < rh; ++i) {
    for (int k = 0; k < ch; ++k) {
      const value_t p = tv[i * bc + k] * x[static_cast<std::size_t>(c0 + k)];
      lanes[i][(c0 + k) & 7] += p;
    }
  }
}

// 2x2: block columns land on lane pair {2*(bcol&3), +1}; accumulators are
// four xmm pairs per block row. Pure SSE2, shared by both register widths.
template <typename SymT>
void spmv_2x2(const BroBcsr& a, std::size_t si, std::span<const value_t> x,
              std::span<value_t> y) {
  const BroEllSlice& slice = a.slices()[si];
  const value_t* vb = a.vals().data() + a.slice_val_offset(si);
  const index_t rows = a.rows(), cols = a.cols();
  const index_t last_partial = (cols % 2 != 0) ? cols / 2 : -1;
  for (index_t t = 0; t < slice.height; ++t) {
    const index_t r0 = (slice.first_row + t) * 2;
    const int rh = static_cast<int>(std::min<index_t>(2, rows - r0));
    __m128d acc[2][4];
    for (auto& row : acc)
      for (auto& s : row) s = _mm_setzero_pd();
    LaneStream<SymT> dec(slice.stream, static_cast<std::size_t>(t));
    const value_t* trow =
        vb + static_cast<std::size_t>(t) *
                 static_cast<std::size_t>(slice.num_col) * 4;
    index_t bcol = -1, pj = -1;
    for (index_t j = 0; j < slice.num_col; ++j) {
      const std::uint32_t d =
          dec.next(slice.bit_alloc[static_cast<std::size_t>(j)]);
      if (d == bits::kInvalidDelta) continue;
      bcol += static_cast<index_t>(d);
      if (bcol == last_partial) {
        pj = j;
        continue;
      }
      const value_t* tv = trow + static_cast<std::size_t>(j) * 4;
      const __m128d xv = _mm_loadu_pd(x.data() + bcol * 2);
      const int s = bcol & 3;
      acc[0][s] = _mm_add_pd(acc[0][s], _mm_mul_pd(_mm_loadu_pd(tv), xv));
      acc[1][s] = _mm_add_pd(acc[1][s], _mm_mul_pd(_mm_loadu_pd(tv + 2), xv));
    }
    value_t lanes[2][8];
    for (int i = 0; i < rh; ++i)
      for (int s = 0; s < 4; ++s) _mm_storeu_pd(lanes[i] + 2 * s, acc[i][s]);
    if (pj >= 0)
      apply_partial(lanes, trow + static_cast<std::size_t>(pj) * 4, 2, rh,
                    static_cast<int>(cols - last_partial * 2),
                    last_partial * 2, x);
    for (int i = 0; i < rh; ++i)
      y[static_cast<std::size_t>(r0 + i)] = reduce8(lanes[i]);
  }
}

// 4x4: block columns land on lane quad {4*(bcol&1)..}; per block row, two
// accumulator slots of 4 lanes each.
template <typename SymT>
void spmv_4x4(const BroBcsr& a, std::size_t si, std::span<const value_t> x,
              std::span<value_t> y) {
  constexpr int kRegs = 4 / VecD::kLanes;
  const BroEllSlice& slice = a.slices()[si];
  const value_t* vb = a.vals().data() + a.slice_val_offset(si);
  const index_t rows = a.rows(), cols = a.cols();
  const index_t last_partial = (cols % 4 != 0) ? cols / 4 : -1;
  for (index_t t = 0; t < slice.height; ++t) {
    const index_t r0 = (slice.first_row + t) * 4;
    const int rh = static_cast<int>(std::min<index_t>(4, rows - r0));
    typename VecD::Reg acc[4][2][kRegs];
    for (auto& row : acc)
      for (auto& slot : row)
        for (auto& r : slot) r = VecD::zero();
    LaneStream<SymT> dec(slice.stream, static_cast<std::size_t>(t));
    const value_t* trow =
        vb + static_cast<std::size_t>(t) *
                 static_cast<std::size_t>(slice.num_col) * 16;
    index_t bcol = -1, pj = -1;
    for (index_t j = 0; j < slice.num_col; ++j) {
      const std::uint32_t d =
          dec.next(slice.bit_alloc[static_cast<std::size_t>(j)]);
      if (d == bits::kInvalidDelta) continue;
      bcol += static_cast<index_t>(d);
      if (bcol == last_partial) {
        pj = j;
        continue;
      }
      const value_t* tv = trow + static_cast<std::size_t>(j) * 16;
      typename VecD::Reg xv[kRegs];
      for (int v = 0; v < kRegs; ++v)
        xv[v] = VecD::load(x.data() + bcol * 4 + v * VecD::kLanes);
      const int s = bcol & 1;
      for (int i = 0; i < 4; ++i)
        for (int v = 0; v < kRegs; ++v)
          acc[i][s][v] = VecD::madd(acc[i][s][v],
                                    VecD::load(tv + i * 4 + v * VecD::kLanes),
                                    xv[v]);
    }
    value_t lanes[4][8];
    for (int i = 0; i < rh; ++i)
      for (int s = 0; s < 2; ++s)
        for (int v = 0; v < kRegs; ++v)
          VecD::store(lanes[i] + 4 * s + v * VecD::kLanes, acc[i][s][v]);
    if (pj >= 0)
      apply_partial(lanes, trow + static_cast<std::size_t>(pj) * 16, 4, rh,
                    static_cast<int>(cols - last_partial * 4),
                    last_partial * 4, x);
    for (int i = 0; i < rh; ++i)
      y[static_cast<std::size_t>(r0 + i)] = reduce8(lanes[i]);
  }
}

// 8x1: one lane per block (bcol & 7), vectorized over the tile's 8 ROWS
// with a broadcast x value. Accumulators live in a lane-major buffer
// (accT[lane][row]) touched one lane per block; bc == 1 means no block can
// be column-partial.
template <typename SymT>
void spmv_8x1(const BroBcsr& a, std::size_t si, std::span<const value_t> x,
              std::span<value_t> y) {
  constexpr int kRegs = 8 / VecD::kLanes;
  const BroEllSlice& slice = a.slices()[si];
  const value_t* vb = a.vals().data() + a.slice_val_offset(si);
  const index_t rows = a.rows();
  for (index_t t = 0; t < slice.height; ++t) {
    const index_t r0 = (slice.first_row + t) * 8;
    const int rh = static_cast<int>(std::min<index_t>(8, rows - r0));
    alignas(32) value_t accT[8][8] = {};
    LaneStream<SymT> dec(slice.stream, static_cast<std::size_t>(t));
    const value_t* trow =
        vb + static_cast<std::size_t>(t) *
                 static_cast<std::size_t>(slice.num_col) * 8;
    index_t bcol = -1;
    for (index_t j = 0; j < slice.num_col; ++j) {
      const std::uint32_t d =
          dec.next(slice.bit_alloc[static_cast<std::size_t>(j)]);
      if (d == bits::kInvalidDelta) continue;
      bcol += static_cast<index_t>(d);
      const value_t* tv = trow + static_cast<std::size_t>(j) * 8;
      value_t* al = accT[bcol & 7];
      const typename VecD::Reg xb =
          VecD::broadcast(x[static_cast<std::size_t>(bcol)]);
      for (int v = 0; v < kRegs; ++v) {
        const int o = v * VecD::kLanes;
        VecD::store(al + o, VecD::madd(VecD::load(al + o),
                                       VecD::load(tv + o), xb));
      }
    }
    for (int i = 0; i < rh; ++i) {
      value_t lanes[8];
      for (int l = 0; l < 8; ++l) lanes[l] = accT[l][i];
      y[static_cast<std::size_t>(r0 + i)] = reduce8(lanes);
    }
  }
}

// 1x8: the block's 8 columns ARE the 8 contract lanes (c0 aligned to 8);
// never a row tail.
template <typename SymT>
void spmv_1x8(const BroBcsr& a, std::size_t si, std::span<const value_t> x,
              std::span<value_t> y) {
  constexpr int kRegs = 8 / VecD::kLanes;
  const BroEllSlice& slice = a.slices()[si];
  const value_t* vb = a.vals().data() + a.slice_val_offset(si);
  const index_t cols = a.cols();
  const index_t last_partial = (cols % 8 != 0) ? cols / 8 : -1;
  for (index_t t = 0; t < slice.height; ++t) {
    const index_t r0 = slice.first_row + t;
    typename VecD::Reg acc[kRegs];
    for (auto& r : acc) r = VecD::zero();
    LaneStream<SymT> dec(slice.stream, static_cast<std::size_t>(t));
    const value_t* trow =
        vb + static_cast<std::size_t>(t) *
                 static_cast<std::size_t>(slice.num_col) * 8;
    index_t bcol = -1, pj = -1;
    for (index_t j = 0; j < slice.num_col; ++j) {
      const std::uint32_t d =
          dec.next(slice.bit_alloc[static_cast<std::size_t>(j)]);
      if (d == bits::kInvalidDelta) continue;
      bcol += static_cast<index_t>(d);
      if (bcol == last_partial) {
        pj = j;
        continue;
      }
      const value_t* tv = trow + static_cast<std::size_t>(j) * 8;
      for (int v = 0; v < kRegs; ++v) {
        const int o = v * VecD::kLanes;
        acc[v] = VecD::madd(acc[v], VecD::load(tv + o),
                            VecD::load(x.data() + bcol * 8 + o));
      }
    }
    value_t lanes[1][8];
    for (int v = 0; v < kRegs; ++v)
      VecD::store(lanes[0] + v * VecD::kLanes, acc[v]);
    if (pj >= 0)
      apply_partial(lanes, trow + static_cast<std::size_t>(pj) * 8, 8, 1,
                    static_cast<int>(cols - last_partial * 8),
                    last_partial * 8, x);
    y[static_cast<std::size_t>(r0)] = reduce8(lanes[0]);
  }
}

} // namespace

// kBcsrCandidateShapes order: 0=2x2, 1=4x4, 2=8x1, 3=1x8.
constexpr BcsrSimdKernelSet kBcsrKernelSet = {
    BRO_SIMD_ISA,
    {&spmv_2x2<std::uint32_t>, &spmv_4x4<std::uint32_t>,
     &spmv_8x1<std::uint32_t>, &spmv_1x8<std::uint32_t>},
    {&spmv_2x2<std::uint64_t>, &spmv_4x4<std::uint64_t>,
     &spmv_8x1<std::uint64_t>, &spmv_1x8<std::uint64_t>},
};

} // namespace bro::kernels::BRO_SIMD_NS
