// Simulator kernels for the extension formats (DESIGN.md §5): Sliced-ELLPACK
// (Monakov et al. baseline / BRO-ELL ablation), BRO-ELL-T (multiple threads
// per row) and BRO-ELL-VC (value compression).
#pragma once

#include "core/bro_ans.h"
#include "core/bro_bcsr.h"
#include "core/bro_csr.h"
#include "core/bro_ell_values.h"
#include "core/bro_ell_vector.h"
#include "core/sliced_ell.h"
#include "kernels/sim_spmv.h"

namespace bro::kernels {

/// Warp-per-row BRO-CSR: lanes extract 32 consecutive deltas in parallel
/// from the row's packed stream and rebuild columns with an inclusive scan.
SimResult sim_spmv_bro_csr(const sim::DeviceSpec& dev, const core::BroCsr& a,
                           std::span<const value_t> x);

/// Thread-per-row BRO-ANS: like the BRO-ELL kernel, but the per-symbol bit
/// count is state-dependent, so stream refills diverge across the warp (each
/// lane issues its own load when its buffer runs dry) and every symbol costs
/// an extra decode-table lookup served from shared memory.
SimResult sim_spmv_bro_ans(const sim::DeviceSpec& dev, const core::BroAns& a,
                           std::span<const value_t> x);

/// Thread-per-block-row BRO-BCSR: index decode as in the BRO-ELL kernel but
/// over block columns (1/(r*c) of the symbol traffic), then r*c value loads
/// and FMAs per decoded block — fill-in zeros execute like real entries, so
/// the estimate inherently charges the cover's overhead. x reads go through
/// the texture path, one per block column of the tile.
SimResult sim_spmv_bro_bcsr(const sim::DeviceSpec& dev, const core::BroBcsr& a,
                            std::span<const value_t> x);

SimResult sim_spmv_sliced_ell(const sim::DeviceSpec& dev,
                              const core::SlicedEll& a,
                              std::span<const value_t> x);

SimResult sim_spmv_bro_ell_vector(const sim::DeviceSpec& dev,
                                  const core::BroEllVector& a,
                                  std::span<const value_t> x);

SimResult sim_spmv_bro_ell_values(const sim::DeviceSpec& dev,
                                  const core::BroEllValues& a,
                                  std::span<const value_t> x);

} // namespace bro::kernels
