#include "kernels/cpu_features.h"

#include <atomic>
#include <cstdlib>

#include "kernels/bro_decode_simd.h"

namespace bro::kernels {

namespace {

// ScopedSimdIsa's save/restore slot: -1 = no override live. Relaxed is
// enough — the override is a test/debug seam, not a synchronization point.
std::atomic<int> g_forced_isa{-1};

} // namespace

const char* simd_isa_name(SimdIsa isa) {
  switch (isa) {
    case SimdIsa::kScalar: return "scalar";
    case SimdIsa::kSse4: return "sse4";
    case SimdIsa::kAvx2: return "avx2";
  }
  return "unknown";
}

std::optional<SimdIsa> parse_simd_isa(std::string_view name) {
  if (name == "scalar") return SimdIsa::kScalar;
  if (name == "sse4") return SimdIsa::kSse4;
  if (name == "avx2") return SimdIsa::kAvx2;
  return std::nullopt;
}

CpuFeatures cpu_features() {
#if defined(__x86_64__) || defined(__i386__)
  static const CpuFeatures features = [] {
    CpuFeatures f;
    f.sse4 = __builtin_cpu_supports("sse4.2") != 0;
    f.avx2 = __builtin_cpu_supports("avx2") != 0;
    return f;
  }();
  return features;
#else
  return CpuFeatures{};
#endif
}

bool simd_isa_compiled(SimdIsa isa) {
  return isa == SimdIsa::kScalar || simd_kernel_set(isa) != nullptr;
}

const SimdKernelSet* simd_kernel_set(SimdIsa isa) {
  switch (isa) {
    case SimdIsa::kScalar: return nullptr;
    case SimdIsa::kSse4: return detail::kSimdSetSse4;
    case SimdIsa::kAvx2: return detail::kSimdSetAvx2;
  }
  return nullptr;
}

const AnsSimdKernelSet* ans_simd_kernel_set(SimdIsa isa) {
  switch (isa) {
    case SimdIsa::kScalar: return nullptr;
    case SimdIsa::kSse4: return detail::kAnsSimdSetSse4;
    case SimdIsa::kAvx2: return detail::kAnsSimdSetAvx2;
  }
  return nullptr;
}

bool simd_isa_runnable(SimdIsa isa) {
  if (isa == SimdIsa::kScalar) return true;
  if (!simd_isa_compiled(isa)) return false;
  const CpuFeatures f = cpu_features();
  return isa == SimdIsa::kSse4 ? f.sse4 : f.avx2;
}

SimdIsa best_simd_isa() {
  static const SimdIsa best = [] {
    const CpuFeatures f = cpu_features();
    if (f.avx2 && simd_isa_compiled(SimdIsa::kAvx2)) return SimdIsa::kAvx2;
    if (f.sse4 && simd_isa_compiled(SimdIsa::kSse4)) return SimdIsa::kSse4;
    return SimdIsa::kScalar;
  }();
  return best;
}

const char* simd_env_raw() {
  static const char* const raw = std::getenv("BRO_SIMD");
  return raw;
}

std::optional<SimdIsa> simd_env_override() {
  static const std::optional<SimdIsa> parsed = [] {
    const char* raw = simd_env_raw();
    return raw ? parse_simd_isa(raw) : std::nullopt;
  }();
  return parsed;
}

SimdIsa resolve_simd_isa(std::optional<SimdIsa> request, SimdIsa best) {
  if (!request) return best;
  return static_cast<int>(*request) < static_cast<int>(best) ? *request : best;
}

SimdIsa active_simd_isa() {
  const int forced = g_forced_isa.load(std::memory_order_relaxed);
  if (forced >= 0)
    return resolve_simd_isa(static_cast<SimdIsa>(forced), best_simd_isa());
  return resolve_simd_isa(simd_env_override(), best_simd_isa());
}

ScopedSimdIsa::ScopedSimdIsa(SimdIsa isa)
    : prev_(g_forced_isa.exchange(static_cast<int>(isa),
                                  std::memory_order_relaxed)) {}

ScopedSimdIsa::~ScopedSimdIsa() {
  g_forced_isa.store(prev_, std::memory_order_relaxed);
}

} // namespace bro::kernels
