// Width-templated BRO decode loops (internal header: included by the
// bro_decode/native_spmv/native_spmm translation units and the decode
// microbenchmark only; the public dispatch API lives in native_spmv.h).
//
// The paper's compression pays off only if the decode path runs at memory
// speed, so the inner loops here are templated on the delta bit width B and
// the symbol type SymT (uint32_t for sym_len=32 streams, uint64_t for 64):
// every shift amount and mask is a compile-time constant, the symbol stream
// is read through a raw pointer with the lane stride folded in, and the
// compiler can unroll the periodic load pattern. B = kGenericWidth selects
// the runtime-width variant — one instantiation per SymT — which decodes
// bit-for-bit identically and serves as the parity baseline.
//
// All variants implement the same MSB-first symbol-buffer algorithm as
// core::RowStreamDecoder / the BRO-COO lane decoder (Algorithm 1 with the
// b <= rb load rule), so decoded deltas — and therefore the floating-point
// accumulation order — are identical across variants.
#pragma once

#include <algorithm>
#include <cstdint>

#include "bits/bitwidth.h"
#include "bits/delta.h"
#include "kernels/native_spmv.h"

namespace bro::kernels::detail {

/// Template argument selecting the runtime-width decoder variant.
inline constexpr int kGenericWidth = -1;

/// Right-hand-side tile width for the BRO-COO SpMM kernel: per-lane row
/// segments accumulate into a stack array of this many values, and wider
/// batches re-decode the interval once per tile. 8 doubles fit the tile in
/// registers without starving the decode loop.
inline constexpr int kCooSegWidth = 8;

/// Widest warp the transposed BRO-COO decode loop supports: per-lane symbol
/// buffers and row cursors live in stack arrays of this many entries (1.5 KiB
/// at 128 — comfortably L1-resident). Wider configurations take the simple
/// lane-at-a-time path.
inline constexpr int kMaxCooLanes = 128;

/// Sequential MSB-first decoder over one lane of a muxed stream: lane t of
/// a stream with `stride` lanes reads symbols stream[c*stride + t]. B >= 0
/// fixes the bit width at compile time; B == kGenericWidth takes the width
/// as a next() argument.
template <typename SymT, int B>
class LaneDecoder {
 public:
  LaneDecoder(const SymT* stream, std::size_t stride, std::size_t lane)
      : next_load_(stream + lane), stride_(stride) {}

  inline std::uint32_t next(int runtime_b = 0) {
    constexpr int kSym = static_cast<int>(sizeof(SymT) * 8);
    const int b = B >= 0 ? B : runtime_b;
    std::uint64_t d;
    if (b <= rb_) {
      d = (sym_ >> (rb_ - b)) & bits::max_value_for_bits(b);
      rb_ -= b;
    } else {
      // Drain the rb_ remaining bits, then split the value across the
      // freshly loaded symbol (high part came from the old buffer).
      const int high = rb_;
      d = high > 0 ? (sym_ & bits::max_value_for_bits(high)) : 0;
      sym_ = *next_load_;
      next_load_ += stride_;
      const int low = b - high;
      d = (d << low) |
          ((sym_ >> (kSym - low)) & bits::max_value_for_bits(low));
      rb_ = kSym - low;
    }
    return static_cast<std::uint32_t>(d);
  }

 private:
  const SymT* next_load_;
  std::size_t stride_;
  std::uint64_t sym_ = 0;
  int rb_ = 0;
};

// ---------------------------------------------------------------- BRO-ELL

template <typename SymT, int B>
void bro_ell_slice_spmv(const core::BroEll& a, const core::BroEllSlice& slice,
                        std::span<const value_t> x, std::span<value_t> y) {
  const SymT* stream = slice.stream.template data<SymT>();
  const std::size_t h = static_cast<std::size_t>(slice.height);
  const std::uint8_t* alloc = slice.bit_alloc.data();
  const value_t* vals = a.vals().data();
  const value_t* xp = x.data();
  const std::size_t m = static_cast<std::size_t>(a.rows());

  // Every row of a slice consumes the same alloc[c] bits at column c, so
  // all row decoders drain their symbol buffers in lockstep: the residual
  // bit count and refill cadence are shared state. Decoding four rows per
  // pass therefore costs one refill branch per column (not per row), the
  // four refill loads are adjacent lanes (one or two cache lines), and the
  // four extract chains are independent. Each row's sum still accumulates
  // in column order, so no result bit changes.
  constexpr int kSym = static_cast<int>(sizeof(SymT) * 8);
  index_t t = 0;
  for (; t + 3 < slice.height; t += 4) {
    const std::size_t r0 = static_cast<std::size_t>(slice.first_row + t);
    const SymT* next_load = stream + static_cast<std::size_t>(t);
    std::uint64_t sym0 = 0, sym1 = 0, sym2 = 0, sym3 = 0;
    int rb = 0;
    index_t col0 = -1, col1 = -1, col2 = -1, col3 = -1;
    value_t sum0 = 0, sum1 = 0, sum2 = 0, sum3 = 0;
    std::size_t voff = 0;
    for (index_t c = 0; c < slice.num_col; ++c, voff += m) {
      const int b = B >= 0 ? B : alloc[static_cast<std::size_t>(c)];
      std::uint32_t d0, d1, d2, d3;
      if (b <= rb) {
        rb -= b;
        const std::uint64_t mask = bits::max_value_for_bits(b);
        d0 = static_cast<std::uint32_t>((sym0 >> rb) & mask);
        d1 = static_cast<std::uint32_t>((sym1 >> rb) & mask);
        d2 = static_cast<std::uint32_t>((sym2 >> rb) & mask);
        d3 = static_cast<std::uint32_t>((sym3 >> rb) & mask);
      } else {
        const int high = rb;
        const int low = b - high;
        const std::uint64_t hmask = bits::max_value_for_bits(high);
        const std::uint64_t lmask = bits::max_value_for_bits(low);
        const std::uint64_t h0 = sym0 & hmask, h1 = sym1 & hmask;
        const std::uint64_t h2 = sym2 & hmask, h3 = sym3 & hmask;
        sym0 = next_load[0];
        sym1 = next_load[1];
        sym2 = next_load[2];
        sym3 = next_load[3];
        next_load += h;
        rb = kSym - low;
        d0 = static_cast<std::uint32_t>((h0 << low) | ((sym0 >> rb) & lmask));
        d1 = static_cast<std::uint32_t>((h1 << low) | ((sym1 >> rb) & lmask));
        d2 = static_cast<std::uint32_t>((h2 << low) | ((sym2 >> rb) & lmask));
        d3 = static_cast<std::uint32_t>((h3 << low) | ((sym3 >> rb) & lmask));
      }
      if (d0 != bits::kInvalidDelta) {
        col0 += static_cast<index_t>(d0);
        sum0 += vals[voff + r0] * xp[static_cast<std::size_t>(col0)];
      }
      if (d1 != bits::kInvalidDelta) {
        col1 += static_cast<index_t>(d1);
        sum1 += vals[voff + r0 + 1] * xp[static_cast<std::size_t>(col1)];
      }
      if (d2 != bits::kInvalidDelta) {
        col2 += static_cast<index_t>(d2);
        sum2 += vals[voff + r0 + 2] * xp[static_cast<std::size_t>(col2)];
      }
      if (d3 != bits::kInvalidDelta) {
        col3 += static_cast<index_t>(d3);
        sum3 += vals[voff + r0 + 3] * xp[static_cast<std::size_t>(col3)];
      }
    }
    y[r0] = sum0;
    y[r0 + 1] = sum1;
    y[r0 + 2] = sum2;
    y[r0 + 3] = sum3;
  }
  for (; t < slice.height; ++t) {
    const std::size_t r = static_cast<std::size_t>(slice.first_row + t);
    LaneDecoder<SymT, B> dec(stream, h, static_cast<std::size_t>(t));
    index_t col = -1;
    value_t sum = 0;
    std::size_t voff = 0;
    for (index_t c = 0; c < slice.num_col; ++c, voff += m) {
      const std::uint32_t d =
          B >= 0 ? dec.next()
                 : dec.next(alloc[static_cast<std::size_t>(c)]);
      if (d != bits::kInvalidDelta) {
        col += static_cast<index_t>(d);
        sum += vals[voff + r] * xp[static_cast<std::size_t>(col)];
      }
    }
    y[r] = sum;
  }
}

template <typename SymT, int B>
void bro_ell_slice_spmm(const core::BroEll& a, const core::BroEllSlice& slice,
                        std::span<const value_t> x, std::span<value_t> y,
                        int k) {
  const SymT* stream = slice.stream.template data<SymT>();
  const std::size_t h = static_cast<std::size_t>(slice.height);
  const std::uint8_t* alloc = slice.bit_alloc.data();
  const value_t* vals = a.vals().data();
  const std::size_t m = static_cast<std::size_t>(a.rows());
  const std::size_t uk = static_cast<std::size_t>(k);
  // Row pairing as in the SpMV kernel: per-row accumulation order is
  // untouched (each row still sums in column order), so results are
  // bit-identical while two decode chains stay in flight. One decode per
  // column index, k FMAs per decode: the unpacking cost of Algorithm 1 is
  // amortized over the batch.
  index_t t = 0;
  for (; t + 1 < slice.height; t += 2) {
    const std::size_t r0 = static_cast<std::size_t>(slice.first_row + t);
    const std::size_t r1 = r0 + 1;
    LaneDecoder<SymT, B> dec0(stream, h, static_cast<std::size_t>(t));
    LaneDecoder<SymT, B> dec1(stream, h, static_cast<std::size_t>(t) + 1);
    index_t col0 = -1, col1 = -1;
    value_t* y0 = y.data() + r0 * uk;
    value_t* y1 = y.data() + r1 * uk;
    for (std::size_t b = 0; b < uk; ++b) y0[b] = 0;
    for (std::size_t b = 0; b < uk; ++b) y1[b] = 0;
    std::size_t voff = 0;
    for (index_t c = 0; c < slice.num_col; ++c, voff += m) {
      const int bw = B >= 0 ? 0 : alloc[static_cast<std::size_t>(c)];
      const std::uint32_t d0 = dec0.next(bw);
      const std::uint32_t d1 = dec1.next(bw);
      if (d0 != bits::kInvalidDelta) {
        col0 += static_cast<index_t>(d0);
        const value_t v = vals[voff + r0];
        const value_t* xc = x.data() + static_cast<std::size_t>(col0) * uk;
        for (std::size_t b = 0; b < uk; ++b) y0[b] += v * xc[b];
      }
      if (d1 != bits::kInvalidDelta) {
        col1 += static_cast<index_t>(d1);
        const value_t v = vals[voff + r1];
        const value_t* xc = x.data() + static_cast<std::size_t>(col1) * uk;
        for (std::size_t b = 0; b < uk; ++b) y1[b] += v * xc[b];
      }
    }
  }
  for (; t < slice.height; ++t) {
    const std::size_t r = static_cast<std::size_t>(slice.first_row + t);
    LaneDecoder<SymT, B> dec(stream, h, static_cast<std::size_t>(t));
    index_t col = -1;
    value_t* yr = y.data() + r * uk;
    for (std::size_t b = 0; b < uk; ++b) yr[b] = 0;
    std::size_t voff = 0;
    for (index_t c = 0; c < slice.num_col; ++c, voff += m) {
      const std::uint32_t d =
          B >= 0 ? dec.next()
                 : dec.next(alloc[static_cast<std::size_t>(c)]);
      if (d != bits::kInvalidDelta) {
        col += static_cast<index_t>(d);
        const value_t v = vals[voff + r];
        const value_t* xc = x.data() + static_cast<std::size_t>(col) * uk;
        for (std::size_t b = 0; b < uk; ++b) yr[b] += v * xc[b];
      }
    }
  }
}

// ---------------------------------------------------------------- BRO-COO

/// Decode-only pass over the final lane of interval i: the entry stream is
/// row-sorted in entry order and the interval's last entry ((cols-1)*w +
/// (w-1)) lives in lane w-1, so this yields the interval's last row for
/// 1/w-th of the interval's decode work. Knowing it up front lets the main
/// loop route every entry with two predictable equality tests instead of
/// tracking a candidate last row with a flush-and-reset chain per row
/// change.
template <typename SymT, int B>
index_t bro_coo_interval_last_row(const core::BroCooInterval& iv,
                                  const SymT* stream, int w, int cols) {
  LaneDecoder<SymT, B> dec(stream, static_cast<std::size_t>(w),
                           static_cast<std::size_t>(w - 1));
  index_t row = iv.start_row;
  for (int c = 0; c < cols; ++c)
    row += static_cast<index_t>(B >= 0 ? dec.next() : dec.next(iv.bits));
  return row;
}

template <typename SymT, int B>
void bro_coo_interval_spmv(const core::BroCoo& a, std::size_t i,
                           std::span<const value_t> x, std::span<value_t> y,
                           BroCooCarry& carry) {
  const auto& iv = a.intervals()[i];
  const int w = a.options().warp_size;
  const int cols = a.options().interval_cols;
  const std::size_t base = i * static_cast<std::size_t>(w) *
                           static_cast<std::size_t>(cols);
  const SymT* stream = iv.stream.template data<SymT>();
  const value_t* vals = a.vals().data();
  const index_t* col_idx = a.col_idx().data();
  const value_t* xp = x.data();
  value_t* yp = y.data();
  const index_t last_row =
      bro_coo_interval_last_row<SymT, B>(iv, stream, w, cols);
  carry = BroCooCarry{};
  carry.first_row = iv.start_row;
  carry.last_row = last_row;

  // Decode lanes and accumulate. Lane j covers entries base + c*w + j.
  // Interior rows are exclusive to the interval and go straight into y;
  // the first and the last row may be shared with a neighbour and are
  // reported through the carry. (When the whole interval is one row, the
  // first test catches every entry and last_sum stays 0.)
  const auto route = [&](index_t row, value_t contrib) {
    if (row == iv.start_row) {
      carry.first_sum += contrib;
    } else if (row == last_row) {
      carry.last_sum += contrib;
    } else {
      yp[static_cast<std::size_t>(row)] += contrib;
    }
  };
  constexpr int kSym = static_cast<int>(sizeof(SymT) * 8);
  const int b = B >= 0 ? B : iv.bits;
  if (w <= kMaxCooLanes) {
    // Every lane of the interval decodes the same iv.bits per column, so
    // all w symbol buffers drain in lockstep: residual bit count and refill
    // cadence are shared, the loop walks entries column-major (base + c*w
    // + j for j = 0..w-1, i.e. global entry order), refill loads are w
    // contiguous symbols, and vals/col_idx are read sequentially. The w
    // decode chains live in small stack arrays, so no chain ever waits on
    // another. Mirrored exactly (same traversal, same w cutoff) by the
    // SpMM kernel below so multi-vector results stay bitwise equal to
    // per-column SpMV.
    std::uint64_t sym[kMaxCooLanes];
    index_t row[kMaxCooLanes];
    for (int j = 0; j < w; ++j) sym[j] = 0;
    for (int j = 0; j < w; ++j) row[j] = iv.start_row;
    int rb = 0;
    const SymT* next_load = stream;
    std::size_t e = base;
    for (int c = 0; c < cols; ++c) {
      if (b <= rb) {
        rb -= b;
        const std::uint64_t mask = bits::max_value_for_bits(b);
        for (int j = 0; j < w; ++j)
          row[j] += static_cast<index_t>((sym[j] >> rb) & mask);
      } else {
        const int high = rb;
        const int low = b - high;
        const std::uint64_t hmask = bits::max_value_for_bits(high);
        const std::uint64_t lmask = bits::max_value_for_bits(low);
        rb = kSym - low;
        for (int j = 0; j < w; ++j) {
          const std::uint64_t hpart = sym[j] & hmask;
          const std::uint64_t s = next_load[j];
          sym[j] = s;
          row[j] += static_cast<index_t>((hpart << low) | ((s >> rb) & lmask));
        }
        next_load += w;
      }
      for (int j = 0; j < w; ++j)
        route(row[j],
              vals[e + static_cast<std::size_t>(j)] *
                  xp[static_cast<std::size_t>(
                      col_idx[e + static_cast<std::size_t>(j)])]);
      e += static_cast<std::size_t>(w);
    }
  } else {
    // Correctness path for exotic warp sizes: one lane at a time.
    for (int j = 0; j < w; ++j) {
      LaneDecoder<SymT, B> dec(stream, static_cast<std::size_t>(w),
                               static_cast<std::size_t>(j));
      index_t row = iv.start_row;
      std::size_t e = base + static_cast<std::size_t>(j);
      for (int c = 0; c < cols; ++c, e += static_cast<std::size_t>(w)) {
        row += static_cast<index_t>(dec.next(b));
        route(row, vals[e] * xp[static_cast<std::size_t>(col_idx[e])]);
      }
    }
  }
}

template <typename SymT, int B>
void bro_coo_interval_spmm(const core::BroCoo& a, std::size_t i,
                           std::span<const value_t> x, std::span<value_t> y,
                           int k, BroCooCarry& carry, value_t* first_sum,
                           value_t* last_sum) {
  const auto& iv = a.intervals()[i];
  const int w = a.options().warp_size;
  const int cols = a.options().interval_cols;
  const std::size_t base = i * static_cast<std::size_t>(w) *
                           static_cast<std::size_t>(cols);
  const SymT* stream = iv.stream.template data<SymT>();
  const value_t* vals = a.vals().data();
  const index_t* col_idx = a.col_idx().data();
  const std::size_t uk = static_cast<std::size_t>(k);
  const index_t last_row =
      bro_coo_interval_last_row<SymT, B>(iv, stream, w, cols);
  carry = BroCooCarry{};
  carry.first_row = iv.start_row;
  carry.last_row = last_row;

  // Same transposed traversal (and the same w cutoff) as the single-vector
  // kernel — per right-hand side, entries hit each y element in the same
  // order, so multi-vector results stay bitwise equal to per-column SpMV —
  // with every scalar accumulation widened to a tile of at most
  // kCooSegWidth right-hand sides. Wider batches re-decode the interval
  // once per tile: the unpacking cost is amortized over kc FMAs per entry.
  constexpr int kSym = static_cast<int>(sizeof(SymT) * 8);
  const int b = B >= 0 ? B : iv.bits;
  for (int k0 = 0; k0 < k; k0 += kCooSegWidth) {
    const std::size_t kc =
        static_cast<std::size_t>(std::min(kCooSegWidth, k - k0));
    const std::size_t uk0 = static_cast<std::size_t>(k0);
    for (std::size_t bb = 0; bb < kc; ++bb) first_sum[uk0 + bb] = 0;
    for (std::size_t bb = 0; bb < kc; ++bb) last_sum[uk0 + bb] = 0;
    const auto accumulate = [&](index_t row, std::size_t e) {
      const value_t v = vals[e];
      const value_t* xc =
          x.data() + static_cast<std::size_t>(col_idx[e]) * uk + uk0;
      value_t* dst;
      if (row == iv.start_row) {
        dst = first_sum + uk0;
      } else if (row == last_row) {
        dst = last_sum + uk0;
      } else {
        dst = y.data() + static_cast<std::size_t>(row) * uk + uk0;
      }
      for (std::size_t bb = 0; bb < kc; ++bb) dst[bb] += v * xc[bb];
    };
    if (w <= kMaxCooLanes) {
      std::uint64_t sym[kMaxCooLanes];
      index_t row[kMaxCooLanes];
      for (int j = 0; j < w; ++j) sym[j] = 0;
      for (int j = 0; j < w; ++j) row[j] = iv.start_row;
      int rb = 0;
      const SymT* next_load = stream;
      std::size_t e = base;
      for (int c = 0; c < cols; ++c) {
        if (b <= rb) {
          rb -= b;
          const std::uint64_t mask = bits::max_value_for_bits(b);
          for (int j = 0; j < w; ++j)
            row[j] += static_cast<index_t>((sym[j] >> rb) & mask);
        } else {
          const int high = rb;
          const int low = b - high;
          const std::uint64_t hmask = bits::max_value_for_bits(high);
          const std::uint64_t lmask = bits::max_value_for_bits(low);
          rb = kSym - low;
          for (int j = 0; j < w; ++j) {
            const std::uint64_t hpart = sym[j] & hmask;
            const std::uint64_t s = next_load[j];
            sym[j] = s;
            row[j] +=
                static_cast<index_t>((hpart << low) | ((s >> rb) & lmask));
          }
          next_load += w;
        }
        for (int j = 0; j < w; ++j)
          accumulate(row[j], e + static_cast<std::size_t>(j));
        e += static_cast<std::size_t>(w);
      }
    } else {
      for (int j = 0; j < w; ++j) {
        LaneDecoder<SymT, B> dec(stream, static_cast<std::size_t>(w),
                                 static_cast<std::size_t>(j));
        index_t row = iv.start_row;
        std::size_t e = base + static_cast<std::size_t>(j);
        for (int c = 0; c < cols; ++c, e += static_cast<std::size_t>(w)) {
          row += static_cast<index_t>(dec.next(b));
          accumulate(row, e);
        }
      }
    }
  }
}

/// Decode `count` deltas of width B from one lane and fold them into a
/// checksum — the decode-only inner loop the throughput microbenchmark
/// times (no values, no x gather: pure unpack speed).
template <typename SymT, int B>
std::uint64_t decode_lane_checksum(const SymT* stream, std::size_t stride,
                                   std::size_t lane, std::size_t count,
                                   int runtime_b) {
  LaneDecoder<SymT, B> dec(stream, stride, lane);
  std::uint64_t sum = 0;
  for (std::size_t c = 0; c < count; ++c)
    sum += B >= 0 ? dec.next() : dec.next(runtime_b);
  return sum;
}

} // namespace bro::kernels::detail
