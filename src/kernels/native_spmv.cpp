#include "kernels/native_spmv.h"

#include <algorithm>
#include <vector>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "bits/bitwidth.h"
#include "bits/delta.h"
#include "util/error.h"

namespace bro::kernels {

CooRange coo_entry_range(const sparse::Coo& a, std::size_t part,
                         std::size_t parts) {
  const std::size_t n = a.nnz();
  if (n == 0 || parts == 0 || part >= parts) return {};
  const auto snap = [&](std::size_t i) {
    while (i > 0 && i < n && a.row_idx[i] == a.row_idx[i - 1]) ++i;
    return std::min(i, n);
  };
  return {snap(n * part / parts), snap(n * (part + 1) / parts)};
}

std::vector<CooRange> coo_thread_ranges(const sparse::Coo& a, int parts) {
  std::vector<CooRange> ranges;
  if (a.nnz() == 0 || parts < 1) return ranges;
  ranges.reserve(static_cast<std::size_t>(parts));
  for (int p = 0; p < parts; ++p) {
    const CooRange r = coo_entry_range(a, static_cast<std::size_t>(p),
                                       static_cast<std::size_t>(parts));
    if (r.lo < r.hi) ranges.push_back(r);
  }
  return ranges;
}

namespace {

int runtime_threads() {
#ifdef _OPENMP
  return omp_get_num_threads();
#else
  return 1;
#endif
}

int runtime_thread_id() {
#ifdef _OPENMP
  return omp_get_thread_num();
#else
  return 0;
#endif
}

/// Accumulate one row-complete chunk of a COO entry stream onto y.
void accumulate_coo_range(const sparse::Coo& a, const CooRange& r,
                          std::span<const value_t> x, std::span<value_t> y) {
  for (std::size_t i = r.lo; i < r.hi; ++i)
    y[static_cast<std::size_t>(a.row_idx[i])] +=
        a.vals[i] * x[static_cast<std::size_t>(a.col_idx[i])];
}

} // namespace

void native_spmv_csr(const sparse::Csr& a, std::span<const value_t> x,
                     std::span<value_t> y) {
  BRO_CHECK(x.size() == static_cast<std::size_t>(a.cols));
  BRO_CHECK(y.size() == static_cast<std::size_t>(a.rows));
#pragma omp parallel for schedule(guided)
  for (index_t r = 0; r < a.rows; ++r) {
    value_t sum = 0;
    for (index_t p = a.row_ptr[r]; p < a.row_ptr[r + 1]; ++p)
      sum += a.vals[p] * x[static_cast<std::size_t>(a.col_idx[p])];
    y[static_cast<std::size_t>(r)] = sum;
  }
}

void native_spmv_ell(const sparse::Ell& a, std::span<const value_t> x,
                     std::span<value_t> y) {
  BRO_CHECK(x.size() == static_cast<std::size_t>(a.cols));
  BRO_CHECK(y.size() == static_cast<std::size_t>(a.rows));
#pragma omp parallel for schedule(static)
  for (index_t r = 0; r < a.rows; ++r) {
    value_t sum = 0;
    for (index_t j = 0; j < a.width; ++j) {
      const index_t c = a.col_at(r, j);
      if (c == sparse::kPad) break; // rows are left-packed
      sum += a.val_at(r, j) * x[static_cast<std::size_t>(c)];
    }
    y[static_cast<std::size_t>(r)] = sum;
  }
}

void native_spmv_ellr(const sparse::EllR& a, std::span<const value_t> x,
                      std::span<value_t> y) {
  BRO_CHECK(x.size() == static_cast<std::size_t>(a.ell.cols));
  BRO_CHECK(y.size() == static_cast<std::size_t>(a.ell.rows));
#pragma omp parallel for schedule(static)
  for (index_t r = 0; r < a.ell.rows; ++r) {
    value_t sum = 0;
    const index_t len = a.row_length[static_cast<std::size_t>(r)];
    for (index_t j = 0; j < len; ++j)
      sum += a.ell.val_at(r, j) *
             x[static_cast<std::size_t>(a.ell.col_at(r, j))];
    y[static_cast<std::size_t>(r)] = sum;
  }
}

void native_spmv_coo(const sparse::Coo& a, std::span<const value_t> x,
                     std::span<value_t> y) {
  BRO_CHECK(x.size() == static_cast<std::size_t>(a.cols));
  BRO_CHECK(y.size() == static_cast<std::size_t>(a.rows));
  std::fill(y.begin(), y.end(), value_t{0});
  if (a.nnz() == 0) return;

#pragma omp parallel
  {
    // Balanced entry split with boundaries snapped forward to row changes
    // (coo_entry_range), so each thread owns complete rows and writes
    // race-free.
    const CooRange r =
        coo_entry_range(a, static_cast<std::size_t>(runtime_thread_id()),
                        static_cast<std::size_t>(runtime_threads()));
    accumulate_coo_range(a, r, x, y);
  }
}

void native_spmv_coo(const sparse::Coo& a, std::span<const CooRange> ranges,
                     std::span<const value_t> x, std::span<value_t> y) {
  BRO_CHECK(x.size() == static_cast<std::size_t>(a.cols));
  BRO_CHECK(y.size() == static_cast<std::size_t>(a.rows));
  std::fill(y.begin(), y.end(), value_t{0});
  // Ranges are row-complete and disjoint, so chunks write race-free
  // regardless of how many threads the runtime actually provides.
#pragma omp parallel for schedule(static)
  for (std::size_t p = 0; p < ranges.size(); ++p)
    accumulate_coo_range(a, ranges[p], x, y);
}

void native_spmv_hyb(const sparse::Hyb& a, std::span<const value_t> x,
                     std::span<value_t> y) {
  native_spmv_ell(a.ell, x, y);
  if (a.coo.nnz() == 0) return;
  // Accumulate the COO overflow on top, in parallel: the row-complete split
  // touches disjoint y entries, so skewed matrices (where the overflow is
  // anything but small) no longer serialize here.
#pragma omp parallel
  {
    const CooRange r = coo_entry_range(
        a.coo, static_cast<std::size_t>(runtime_thread_id()),
        static_cast<std::size_t>(runtime_threads()));
    accumulate_coo_range(a.coo, r, x, y);
  }
}

void native_spmv_hyb(const sparse::Hyb& a, std::span<const CooRange> ranges,
                     std::span<const value_t> x, std::span<value_t> y) {
  native_spmv_ell(a.ell, x, y);
#pragma omp parallel for schedule(static)
  for (std::size_t p = 0; p < ranges.size(); ++p)
    accumulate_coo_range(a.coo, ranges[p], x, y);
}

void native_spmv_bro_ell(const core::BroEll& a,
                         std::span<const BroEllKernel> kernels,
                         std::span<const value_t> x, std::span<value_t> y) {
  BRO_CHECK(x.size() == static_cast<std::size_t>(a.cols()));
  BRO_CHECK(y.size() == static_cast<std::size_t>(a.rows()));
  const auto& slices = a.slices();
  BRO_CHECK(kernels.size() == slices.size());
#pragma omp parallel for schedule(dynamic, 1)
  for (std::size_t si = 0; si < slices.size(); ++si)
    kernels[si].spmv(a, slices[si], x, y);
}

void native_spmv_bro_ell(const core::BroEll& a, std::span<const value_t> x,
                         std::span<value_t> y) {
  BRO_CHECK(x.size() == static_cast<std::size_t>(a.cols()));
  BRO_CHECK(y.size() == static_cast<std::size_t>(a.rows()));
  const auto& slices = a.slices();
  const int sym_len = a.options().sym_len;
#pragma omp parallel for schedule(dynamic, 1)
  for (std::size_t si = 0; si < slices.size(); ++si) {
    const BroEllKernel k = select_bro_ell_kernel(slices[si], sym_len);
    k.spmv(a, slices[si], x, y);
  }
}

void native_spmv_bro_ell_generic(const core::BroEll& a,
                                 std::span<const value_t> x,
                                 std::span<value_t> y) {
  BRO_CHECK(x.size() == static_cast<std::size_t>(a.cols()));
  BRO_CHECK(y.size() == static_cast<std::size_t>(a.rows()));
  const auto& slices = a.slices();
  const BroEllKernel k = generic_bro_ell_kernel(a.options().sym_len);
#pragma omp parallel for schedule(dynamic, 1)
  for (std::size_t si = 0; si < slices.size(); ++si)
    k.spmv(a, slices[si], x, y);
}

namespace {

/// Shared outer loop of the BRO-COO kernels: zero y, run one interval
/// kernel per interval (interior rows written directly, boundary rows into
/// carries), then merge the carries sequentially (tiny: two sums per
/// interval) — interval-boundary rows may be shared with the neighbouring
/// interval, so they cannot be written concurrently.
template <typename KernelFor>
void bro_coo_spmv_impl(const core::BroCoo& a, std::span<const value_t> x,
                       std::span<value_t> y, std::span<BroCooCarry> carries,
                       KernelFor&& kernel_for) {
  BRO_CHECK(x.size() == static_cast<std::size_t>(a.cols()));
  BRO_CHECK(y.size() == static_cast<std::size_t>(a.rows()));
  std::fill(y.begin(), y.end(), value_t{0});
  const auto& intervals = a.intervals();
  if (intervals.empty()) return;
  BRO_CHECK(carries.size() >= intervals.size());

#pragma omp parallel for schedule(dynamic, 4)
  for (std::size_t i = 0; i < intervals.size(); ++i)
    kernel_for(i).spmv(a, i, x, y, carries[i]);

  for (std::size_t i = 0; i < intervals.size(); ++i) {
    const BroCooCarry& c = carries[i];
    y[static_cast<std::size_t>(c.first_row)] += c.first_sum;
    if (c.last_row != c.first_row)
      y[static_cast<std::size_t>(c.last_row)] += c.last_sum;
  }
}

} // namespace

void native_spmv_bro_coo(const core::BroCoo& a, std::span<const value_t> x,
                         std::span<value_t> y) {
  std::vector<BroCooCarry> carries(a.intervals().size());
  native_spmv_bro_coo(a, x, y, carries);
}

void native_spmv_bro_coo(const core::BroCoo& a, std::span<const value_t> x,
                         std::span<value_t> y,
                         std::span<BroCooCarry> carries) {
  const int sym_len = a.options().sym_len;
  bro_coo_spmv_impl(a, x, y, carries, [&](std::size_t i) {
    return select_bro_coo_kernel(a.intervals()[i], sym_len);
  });
}

void native_spmv_bro_coo(const core::BroCoo& a,
                         std::span<const BroCooKernel> kernels,
                         std::span<const value_t> x, std::span<value_t> y,
                         std::span<BroCooCarry> carries) {
  BRO_CHECK(kernels.size() == a.intervals().size());
  bro_coo_spmv_impl(a, x, y, carries,
                    [&](std::size_t i) { return kernels[i]; });
}

void native_spmv_bro_coo_generic(const core::BroCoo& a,
                                 std::span<const value_t> x,
                                 std::span<value_t> y) {
  std::vector<BroCooCarry> carries(a.intervals().size());
  const BroCooKernel k = generic_bro_coo_kernel(a.options().sym_len);
  bro_coo_spmv_impl(a, x, y, carries, [&](std::size_t) { return k; });
}

void native_spmv_bro_hyb(const core::BroHyb& a, std::span<const value_t> x,
                         std::span<value_t> y) {
  std::vector<value_t> y_coo(y.size());
  std::vector<BroCooCarry> carries(a.coo_part().intervals().size());
  native_spmv_bro_hyb(a, x, y, y_coo, carries);
}

void native_spmv_bro_hyb(const core::BroHyb& a, std::span<const value_t> x,
                         std::span<value_t> y, std::span<value_t> y_coo,
                         std::span<BroCooCarry> carries) {
  native_spmv_bro_ell(a.ell_part(), x, y);
  if (a.coo_part().nnz() > 0) {
    BRO_CHECK(y_coo.size() >= y.size());
    native_spmv_bro_coo(a.coo_part(), x, y_coo.first(y.size()), carries);
    for (std::size_t i = 0; i < y.size(); ++i) y[i] += y_coo[i];
  }
}

void native_spmv_bro_hyb(const core::BroHyb& a,
                         std::span<const BroEllKernel> ell_kernels,
                         std::span<const BroCooKernel> coo_kernels,
                         std::span<const value_t> x, std::span<value_t> y,
                         std::span<value_t> y_coo,
                         std::span<BroCooCarry> carries) {
  native_spmv_bro_ell(a.ell_part(), ell_kernels, x, y);
  if (a.coo_part().nnz() > 0) {
    BRO_CHECK(y_coo.size() >= y.size());
    native_spmv_bro_coo(a.coo_part(), coo_kernels, x, y_coo.first(y.size()),
                        carries);
    for (std::size_t i = 0; i < y.size(); ++i) y[i] += y_coo[i];
  }
}

void native_spmv_bro_hyb_generic(const core::BroHyb& a,
                                 std::span<const value_t> x,
                                 std::span<value_t> y) {
  native_spmv_bro_ell_generic(a.ell_part(), x, y);
  if (a.coo_part().nnz() > 0) {
    std::vector<value_t> y_coo(y.size());
    native_spmv_bro_coo_generic(a.coo_part(), x, y_coo);
    for (std::size_t i = 0; i < y.size(); ++i) y[i] += y_coo[i];
  }
}

} // namespace bro::kernels
