#include "kernels/native_spmv.h"

#include <algorithm>
#include <vector>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "bits/bitwidth.h"
#include "bits/delta.h"
#include "util/error.h"

namespace bro::kernels {

std::vector<CooRange> coo_thread_ranges(const sparse::Coo& a, int parts) {
  std::vector<CooRange> ranges;
  const std::size_t n = a.nnz();
  if (n == 0 || parts < 1) return ranges;
  const auto snap = [&](std::size_t i) {
    while (i > 0 && i < n && a.row_idx[i] == a.row_idx[i - 1]) ++i;
    return std::min(i, n);
  };
  ranges.reserve(static_cast<std::size_t>(parts));
  for (int p = 0; p < parts; ++p) {
    const std::size_t lo = snap(n * static_cast<std::size_t>(p) /
                                static_cast<std::size_t>(parts));
    const std::size_t hi = snap(n * (static_cast<std::size_t>(p) + 1) /
                                static_cast<std::size_t>(parts));
    if (lo < hi) ranges.push_back({lo, hi});
  }
  return ranges;
}

void native_spmv_csr(const sparse::Csr& a, std::span<const value_t> x,
                     std::span<value_t> y) {
  BRO_CHECK(x.size() == static_cast<std::size_t>(a.cols));
  BRO_CHECK(y.size() == static_cast<std::size_t>(a.rows));
#pragma omp parallel for schedule(guided)
  for (index_t r = 0; r < a.rows; ++r) {
    value_t sum = 0;
    for (index_t p = a.row_ptr[r]; p < a.row_ptr[r + 1]; ++p)
      sum += a.vals[p] * x[static_cast<std::size_t>(a.col_idx[p])];
    y[static_cast<std::size_t>(r)] = sum;
  }
}

void native_spmv_ell(const sparse::Ell& a, std::span<const value_t> x,
                     std::span<value_t> y) {
  BRO_CHECK(x.size() == static_cast<std::size_t>(a.cols));
  BRO_CHECK(y.size() == static_cast<std::size_t>(a.rows));
#pragma omp parallel for schedule(static)
  for (index_t r = 0; r < a.rows; ++r) {
    value_t sum = 0;
    for (index_t j = 0; j < a.width; ++j) {
      const index_t c = a.col_at(r, j);
      if (c == sparse::kPad) break; // rows are left-packed
      sum += a.val_at(r, j) * x[static_cast<std::size_t>(c)];
    }
    y[static_cast<std::size_t>(r)] = sum;
  }
}

void native_spmv_ellr(const sparse::EllR& a, std::span<const value_t> x,
                      std::span<value_t> y) {
  BRO_CHECK(x.size() == static_cast<std::size_t>(a.ell.cols));
  BRO_CHECK(y.size() == static_cast<std::size_t>(a.ell.rows));
#pragma omp parallel for schedule(static)
  for (index_t r = 0; r < a.ell.rows; ++r) {
    value_t sum = 0;
    const index_t len = a.row_length[static_cast<std::size_t>(r)];
    for (index_t j = 0; j < len; ++j)
      sum += a.ell.val_at(r, j) *
             x[static_cast<std::size_t>(a.ell.col_at(r, j))];
    y[static_cast<std::size_t>(r)] = sum;
  }
}

void native_spmv_coo(const sparse::Coo& a, std::span<const value_t> x,
                     std::span<value_t> y) {
  BRO_CHECK(x.size() == static_cast<std::size_t>(a.cols));
  BRO_CHECK(y.size() == static_cast<std::size_t>(a.rows));
  std::fill(y.begin(), y.end(), value_t{0});
  const std::size_t n = a.nnz();
  if (n == 0) return;

#pragma omp parallel
  {
#ifdef _OPENMP
    const int tid = omp_get_thread_num();
    const int threads = omp_get_num_threads();
#else
    const int tid = 0;
    const int threads = 1;
#endif
    // Balanced entry split with boundaries snapped forward to row changes,
    // so each thread owns complete rows and writes race-free.
    auto snap = [&](std::size_t i) {
      while (i > 0 && i < n && a.row_idx[i] == a.row_idx[i - 1]) ++i;
      return std::min(i, n);
    };
    const std::size_t lo = snap(n * static_cast<std::size_t>(tid) /
                                static_cast<std::size_t>(threads));
    const std::size_t hi = snap(n * (static_cast<std::size_t>(tid) + 1) /
                                static_cast<std::size_t>(threads));
    for (std::size_t i = lo; i < hi; ++i)
      y[static_cast<std::size_t>(a.row_idx[i])] +=
          a.vals[i] * x[static_cast<std::size_t>(a.col_idx[i])];
  }
}

void native_spmv_coo(const sparse::Coo& a, std::span<const CooRange> ranges,
                     std::span<const value_t> x, std::span<value_t> y) {
  BRO_CHECK(x.size() == static_cast<std::size_t>(a.cols));
  BRO_CHECK(y.size() == static_cast<std::size_t>(a.rows));
  std::fill(y.begin(), y.end(), value_t{0});
  // Ranges are row-complete and disjoint, so chunks write race-free
  // regardless of how many threads the runtime actually provides.
#pragma omp parallel for schedule(static)
  for (std::size_t p = 0; p < ranges.size(); ++p) {
    for (std::size_t i = ranges[p].lo; i < ranges[p].hi; ++i)
      y[static_cast<std::size_t>(a.row_idx[i])] +=
          a.vals[i] * x[static_cast<std::size_t>(a.col_idx[i])];
  }
}

void native_spmv_hyb(const sparse::Hyb& a, std::span<const value_t> x,
                     std::span<value_t> y) {
  native_spmv_ell(a.ell, x, y);
  // Accumulate the COO overflow on top (sequential: the overflow is small
  // by construction of the split heuristic).
  for (std::size_t i = 0; i < a.coo.nnz(); ++i)
    y[static_cast<std::size_t>(a.coo.row_idx[i])] +=
        a.coo.vals[i] * x[static_cast<std::size_t>(a.coo.col_idx[i])];
}

void native_spmv_bro_ell(const core::BroEll& a, std::span<const value_t> x,
                         std::span<value_t> y) {
  BRO_CHECK(x.size() == static_cast<std::size_t>(a.cols()));
  BRO_CHECK(y.size() == static_cast<std::size_t>(a.rows()));
  const auto& slices = a.slices();
  const int sym_len = a.options().sym_len;
  const index_t m = a.rows();
#pragma omp parallel for schedule(dynamic, 1)
  for (std::size_t si = 0; si < slices.size(); ++si) {
    const core::BroEllSlice& slice = slices[si];
    for (index_t t = 0; t < slice.height; ++t) {
      const index_t r = slice.first_row + t;
      core::RowStreamDecoder dec(slice, t, sym_len);
      index_t col = -1;
      value_t sum = 0;
      for (index_t c = 0; c < slice.num_col; ++c) {
        const std::uint32_t d =
            dec.next(slice.bit_alloc[static_cast<std::size_t>(c)]);
        if (d != bits::kInvalidDelta) {
          col += static_cast<index_t>(d);
          sum += a.vals()[static_cast<std::size_t>(c) * m + r] *
                 x[static_cast<std::size_t>(col)];
        }
      }
      y[static_cast<std::size_t>(r)] = sum;
    }
  }
}

void native_spmv_bro_coo(const core::BroCoo& a, std::span<const value_t> x,
                         std::span<value_t> y) {
  std::vector<BroCooCarry> carries(a.intervals().size());
  native_spmv_bro_coo(a, x, y, carries);
}

void native_spmv_bro_coo(const core::BroCoo& a, std::span<const value_t> x,
                         std::span<value_t> y,
                         std::span<BroCooCarry> carries) {
  BRO_CHECK(x.size() == static_cast<std::size_t>(a.cols()));
  BRO_CHECK(y.size() == static_cast<std::size_t>(a.rows()));
  std::fill(y.begin(), y.end(), value_t{0});
  const auto& intervals = a.intervals();
  if (intervals.empty()) return;
  BRO_CHECK(carries.size() >= intervals.size());

  const int w = a.options().warp_size;
  const int cols = a.options().interval_cols;
  const int sym_len = a.options().sym_len;
  const std::size_t interval_size =
      static_cast<std::size_t>(w) * static_cast<std::size_t>(cols);

  // Interval-boundary rows may be shared with the neighbouring interval;
  // their partial sums go into per-interval carries, merged sequentially.
#pragma omp parallel for schedule(dynamic, 4)
  for (std::size_t i = 0; i < intervals.size(); ++i) {
    const auto& iv = intervals[i];
    const std::size_t base = i * interval_size;
    BroCooCarry carry;
    carry.first_row = iv.start_row;

    // Decode lanes and accumulate. Lane j covers entries base + c*w + j.
    // Find the interval's last row first (lane w-1 ends the interval).
    index_t last_row = iv.start_row;
    for (int j = 0; j < w; ++j) {
      std::uint64_t sym = 0;
      int rb = 0;
      index_t loads = 0;
      index_t row = iv.start_row;
      for (int c = 0; c < cols; ++c) {
        std::uint64_t d;
        if (iv.bits <= rb) {
          d = (sym >> (rb - iv.bits)) & bits::max_value_for_bits(iv.bits);
          rb -= iv.bits;
        } else {
          const int high = rb;
          d = high > 0 ? (sym & bits::max_value_for_bits(high)) : 0;
          sym = iv.stream.at(static_cast<std::size_t>(loads),
                             static_cast<std::size_t>(j));
          ++loads;
          rb = sym_len;
          const int low = iv.bits - high;
          d = (d << low) |
              ((sym >> (rb - low)) & bits::max_value_for_bits(low));
          rb -= low;
        }
        row += static_cast<index_t>(d);
        const std::size_t e = base + static_cast<std::size_t>(c) * w +
                              static_cast<std::size_t>(j);
        const value_t contrib =
            a.vals()[e] * x[static_cast<std::size_t>(a.col_idx()[e])];
        if (row == iv.start_row) {
          carry.first_sum += contrib;
        } else {
          // Rows strictly inside the interval are exclusive to it; the
          // interval's maximum row is carried (it may continue next door).
          if (row > last_row) {
            // Flush the previous candidate "last row" into y: it turned out
            // not to be the final row of the interval.
            if (last_row != iv.start_row)
              y[static_cast<std::size_t>(last_row)] += carry.last_sum;
            carry.last_sum = 0;
            last_row = row;
          }
          if (row == last_row) {
            carry.last_sum += contrib;
          } else {
            y[static_cast<std::size_t>(row)] += contrib;
          }
        }
      }
    }
    carry.last_row = last_row;
    carries[i] = carry;
  }

  // Sequential carry resolution (tiny: two sums per interval).
  for (std::size_t i = 0; i < intervals.size(); ++i) {
    const BroCooCarry& c = carries[i];
    y[static_cast<std::size_t>(c.first_row)] += c.first_sum;
    if (c.last_row != c.first_row)
      y[static_cast<std::size_t>(c.last_row)] += c.last_sum;
  }
}

void native_spmv_bro_hyb(const core::BroHyb& a, std::span<const value_t> x,
                         std::span<value_t> y) {
  std::vector<value_t> y_coo(y.size());
  std::vector<BroCooCarry> carries(a.coo_part().intervals().size());
  native_spmv_bro_hyb(a, x, y, y_coo, carries);
}

void native_spmv_bro_hyb(const core::BroHyb& a, std::span<const value_t> x,
                         std::span<value_t> y, std::span<value_t> y_coo,
                         std::span<BroCooCarry> carries) {
  native_spmv_bro_ell(a.ell_part(), x, y);
  if (a.coo_part().nnz() > 0) {
    BRO_CHECK(y_coo.size() >= y.size());
    native_spmv_bro_coo(a.coo_part(), x, y_coo.first(y.size()), carries);
    for (std::size_t i = 0; i < y.size(); ++i) y[i] += y_coo[i];
  }
}

} // namespace bro::kernels
