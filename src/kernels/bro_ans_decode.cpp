// BRO-ANS kernel selection and OpenMP-parallel slice drivers (the entropy
// format's counterpart of the dispatch half of bro_decode.cpp).
#include "kernels/bro_ans_decode.h"

#include "kernels/bro_decode_simd.h"
#include "kernels/native_spmv.h"
#include "util/error.h"

namespace bro::kernels {

namespace {

void check_sym_len(int sym_len) {
  BRO_CHECK_MSG(sym_len == 32 || sym_len == 64,
                "unsupported symbol length: " + std::to_string(sym_len));
}

} // namespace

BroAnsKernel select_bro_ans_kernel(int sym_len, SimdIsa isa) {
  check_sym_len(sym_len);
  BroAnsKernel k;
  if (const AnsSimdKernelSet* set = ans_simd_kernel_set(isa)) {
    k.spmv = sym_len == 32 ? set->spmv32 : set->spmv64;
    if (k.spmv) {
      k.isa = set->isa;
      return k;
    }
  }
  k.spmv = sym_len == 32 ? &detail::bro_ans_slice_spmv<std::uint32_t>
                         : &detail::bro_ans_slice_spmv<std::uint64_t>;
  return k;
}

BroAnsKernel generic_bro_ans_kernel(int sym_len) {
  check_sym_len(sym_len);
  BroAnsKernel k;
  k.spmv = sym_len == 32 ? &detail::bro_ans_slice_spmv_single<std::uint32_t>
                         : &detail::bro_ans_slice_spmv_single<std::uint64_t>;
  return k;
}

std::vector<BroAnsKernel> plan_bro_ans_kernels(const core::BroAns& a) {
  return plan_bro_ans_kernels(a, active_simd_isa());
}

std::vector<BroAnsKernel> plan_bro_ans_kernels(const core::BroAns& a,
                                               SimdIsa isa) {
  const BroAnsKernel k = select_bro_ans_kernel(a.options().sym_len, isa);
  return std::vector<BroAnsKernel>(a.slices().size(), k);
}

void native_spmv_bro_ans(const core::BroAns& a, std::span<const value_t> x,
                         std::span<value_t> y) {
  BRO_CHECK(x.size() >= static_cast<std::size_t>(a.cols()));
  BRO_CHECK(y.size() >= static_cast<std::size_t>(a.rows()));
  const BroAnsKernel k =
      select_bro_ans_kernel(a.options().sym_len, active_simd_isa());
  const auto& slices = a.slices();
#pragma omp parallel for schedule(dynamic, 1)
  for (std::size_t si = 0; si < slices.size(); ++si)
    k.spmv(a, slices[si], x, y);
}

void native_spmv_bro_ans(const core::BroAns& a,
                         std::span<const BroAnsKernel> kernels,
                         std::span<const value_t> x, std::span<value_t> y) {
  BRO_CHECK(x.size() >= static_cast<std::size_t>(a.cols()));
  BRO_CHECK(y.size() >= static_cast<std::size_t>(a.rows()));
  const auto& slices = a.slices();
  BRO_CHECK(kernels.size() == slices.size());
#pragma omp parallel for schedule(dynamic, 1)
  for (std::size_t si = 0; si < slices.size(); ++si)
    kernels[si].spmv(a, slices[si], x, y);
}

void native_spmv_bro_ans_generic(const core::BroAns& a,
                                 std::span<const value_t> x,
                                 std::span<value_t> y) {
  BRO_CHECK(x.size() >= static_cast<std::size_t>(a.cols()));
  BRO_CHECK(y.size() >= static_cast<std::size_t>(a.rows()));
  const BroAnsKernel k = generic_bro_ans_kernel(a.options().sym_len);
  const auto& slices = a.slices();
#pragma omp parallel for schedule(dynamic, 1)
  for (std::size_t si = 0; si < slices.size(); ++si)
    k.spmv(a, slices[si], x, y);
}

} // namespace bro::kernels
