// OpenMP-parallel host SpMV kernels: the real wall-clock measurement path
// used by the google-benchmark binaries (the simulator path models GPU
// behaviour; this path demonstrates the library on actual hardware).
#pragma once

#include <span>

#include "core/bro_coo.h"
#include "core/bro_ell.h"
#include "core/bro_hyb.h"
#include "sparse/coo.h"
#include "sparse/csr.h"
#include "sparse/ell.h"
#include "sparse/hyb.h"

namespace bro::kernels {

void native_spmv_csr(const sparse::Csr& a, std::span<const value_t> x,
                     std::span<value_t> y);

void native_spmv_ell(const sparse::Ell& a, std::span<const value_t> x,
                     std::span<value_t> y);

void native_spmv_ellr(const sparse::EllR& a, std::span<const value_t> x,
                      std::span<value_t> y);

/// COO via per-thread row-range partitioning (entries are row-sorted, so a
/// balanced split on entry count with boundary fix-up is race-free).
void native_spmv_coo(const sparse::Coo& a, std::span<const value_t> x,
                     std::span<value_t> y);

void native_spmv_hyb(const sparse::Hyb& a, std::span<const value_t> x,
                     std::span<value_t> y);

void native_spmv_bro_ell(const core::BroEll& a, std::span<const value_t> x,
                         std::span<value_t> y);

void native_spmv_bro_coo(const core::BroCoo& a, std::span<const value_t> x,
                         std::span<value_t> y);

void native_spmv_bro_hyb(const core::BroHyb& a, std::span<const value_t> x,
                         std::span<value_t> y);

} // namespace bro::kernels
