// OpenMP-parallel host SpMV kernels: the real wall-clock measurement path
// used by the google-benchmark binaries (the simulator path models GPU
// behaviour; this path demonstrates the library on actual hardware).
#pragma once

#include <span>

#include "core/bro_coo.h"
#include "core/bro_ell.h"
#include "core/bro_hyb.h"
#include "sparse/coo.h"
#include "sparse/csr.h"
#include "sparse/ell.h"
#include "sparse/hyb.h"

namespace bro::kernels {

/// One row-complete [lo, hi) chunk of a row-sorted COO entry stream.
struct CooRange {
  std::size_t lo = 0;
  std::size_t hi = 0;
};

/// Split a row-sorted COO entry stream into up to `parts` row-complete,
/// disjoint ranges (balanced on entry count, boundaries snapped forward to
/// row changes). Computed once per plan; ranges stay valid as long as the
/// matrix structure does.
std::vector<CooRange> coo_thread_ranges(const sparse::Coo& a, int parts);

/// Per-interval partial sums for the rows a BRO-COO interval shares with its
/// neighbours; sized to intervals().size() and merged sequentially.
struct BroCooCarry {
  index_t first_row = 0, last_row = 0;
  value_t first_sum = 0, last_sum = 0;
};

void native_spmv_csr(const sparse::Csr& a, std::span<const value_t> x,
                     std::span<value_t> y);

void native_spmv_ell(const sparse::Ell& a, std::span<const value_t> x,
                     std::span<value_t> y);

void native_spmv_ellr(const sparse::EllR& a, std::span<const value_t> x,
                      std::span<value_t> y);

/// COO via per-thread row-range partitioning (entries are row-sorted, so a
/// balanced split on entry count with boundary fix-up is race-free).
void native_spmv_coo(const sparse::Coo& a, std::span<const value_t> x,
                     std::span<value_t> y);

/// COO over pre-computed row-complete ranges (see coo_thread_ranges): the
/// allocation-free plan path — the split is not recomputed per call.
void native_spmv_coo(const sparse::Coo& a, std::span<const CooRange> ranges,
                     std::span<const value_t> x, std::span<value_t> y);

void native_spmv_hyb(const sparse::Hyb& a, std::span<const value_t> x,
                     std::span<value_t> y);

void native_spmv_bro_ell(const core::BroEll& a, std::span<const value_t> x,
                         std::span<value_t> y);

void native_spmv_bro_coo(const core::BroCoo& a, std::span<const value_t> x,
                         std::span<value_t> y);

/// BRO-COO with caller-owned carry scratch (>= a.intervals().size() entries):
/// the allocation-free plan path.
void native_spmv_bro_coo(const core::BroCoo& a, std::span<const value_t> x,
                         std::span<value_t> y, std::span<BroCooCarry> carries);

void native_spmv_bro_hyb(const core::BroHyb& a, std::span<const value_t> x,
                         std::span<value_t> y);

/// BRO-HYB with caller-owned scratch: y_coo (>= y.size()) holds the COO
/// half's partial result, carries covers the COO half's intervals. The
/// allocation-free plan path — nothing is heap-allocated per apply.
void native_spmv_bro_hyb(const core::BroHyb& a, std::span<const value_t> x,
                         std::span<value_t> y, std::span<value_t> y_coo,
                         std::span<BroCooCarry> carries);

} // namespace bro::kernels
