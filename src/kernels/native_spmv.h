// OpenMP-parallel host SpMV kernels: the real wall-clock measurement path
// used by the google-benchmark binaries (the simulator path models GPU
// behaviour; this path demonstrates the library on actual hardware).
//
// The BRO decode loops come in two flavours: a generic variable-width
// decoder (one shift/mask pair per delta with the bit width read from
// bit_alloc at run time) and width-specialized kernels instantiated for
// every bit width 0..kMaxSpecializedDecodeWidth with the shift/mask
// constants folded at compile time (src/kernels/bro_decode.h). Selection is
// per BRO-ELL slice / BRO-COO interval: a slice whose bit_alloc is constant
// across columns (the common post-BAR case) or an interval (always a single
// width) dispatches to the specialized kernel; everything else falls back to
// the generic decoder. plan_bro_*_kernels() materializes that choice once at
// SpmvPlan build time so execute() stays branch- and allocation-free.
#pragma once

#include <span>

#include "core/bro_ans.h"
#include "core/bro_coo.h"
#include "core/bro_ell.h"
#include "core/bro_hyb.h"
#include "kernels/cpu_features.h"
#include "sparse/coo.h"
#include "sparse/csr.h"
#include "sparse/ell.h"
#include "sparse/hyb.h"

namespace bro::kernels {

/// One row-complete [lo, hi) chunk of a row-sorted COO entry stream.
struct CooRange {
  std::size_t lo = 0;
  std::size_t hi = 0;
};

/// Part `part` of a `parts`-way balanced split of a row-sorted COO entry
/// stream: boundaries are placed by entry count and snapped forward to the
/// next row change, so every part owns complete rows and parallel
/// accumulation into y is race-free. The single definition of the snap rule
/// shared by coo_thread_ranges, native_spmv_coo's inline split and the HYB
/// overflow path.
CooRange coo_entry_range(const sparse::Coo& a, std::size_t part,
                         std::size_t parts);

/// Split a row-sorted COO entry stream into up to `parts` row-complete,
/// disjoint ranges (balanced on entry count, boundaries snapped forward to
/// row changes). Computed once per plan; ranges stay valid as long as the
/// matrix structure does. Empty parts are dropped.
std::vector<CooRange> coo_thread_ranges(const sparse::Coo& a, int parts);

/// Per-interval partial sums for the rows a BRO-COO interval shares with its
/// neighbours; sized to intervals().size() and merged sequentially.
struct BroCooCarry {
  index_t first_row = 0, last_row = 0;
  value_t first_sum = 0, last_sum = 0;
};

/// Widths 0..kMaxSpecializedDecodeWidth get a compile-time-specialized
/// decode kernel; wider (rare: deltas above 16M) fall back to the generic
/// decoder.
inline constexpr int kMaxSpecializedDecodeWidth = 24;

/// The decode-kernel choice for one BRO-ELL slice: the uniform bit width
/// (-1 when the slice mixes widths; for scalar dispatch that selects the
/// generic decoder), the SpMV/SpMM slice kernels to run, and the ISA the
/// kernels were compiled for (SIMD kernels take the width at run time, so
/// one kernel per ISA covers the whole table). Selected once per slice at
/// plan build time; both function pointers are always non-null.
struct BroEllKernel {
  int width = -1;
  void (*spmv)(const core::BroEll& a, const core::BroEllSlice& slice,
               std::span<const value_t> x, std::span<value_t> y) = nullptr;
  void (*spmm)(const core::BroEll& a, const core::BroEllSlice& slice,
               std::span<const value_t> x, std::span<value_t> y,
               int k) = nullptr;
  SimdIsa isa = SimdIsa::kScalar;
};

/// The decode-kernel choice for one BRO-COO interval (intervals always have
/// a single bit width, so only widths above kMaxSpecializedDecodeWidth use
/// the generic decoder). The interval kernels decode every lane, write
/// interior rows straight into y and report the boundary-row partial sums
/// through the carry (SpMM: through first_sum/last_sum, k values each).
struct BroCooKernel {
  int width = -1;
  void (*spmv)(const core::BroCoo& a, std::size_t interval,
               std::span<const value_t> x, std::span<value_t> y,
               BroCooCarry& carry) = nullptr;
  void (*spmm)(const core::BroCoo& a, std::size_t interval,
               std::span<const value_t> x, std::span<value_t> y, int k,
               BroCooCarry& carry, value_t* first_sum,
               value_t* last_sum) = nullptr;
  SimdIsa isa = SimdIsa::kScalar;
};

/// The decode-kernel choice for one BRO-ANS slice. Entropy-coded streams
/// have no compile-time width to specialize on (the per-symbol bit count is
/// state-dependent), so the choice is only scalar-vs-SIMD per symbol length;
/// the width field stays for dispatch-table symmetry and is always -1.
struct BroAnsKernel {
  int width = -1;
  void (*spmv)(const core::BroAns& a, const core::BroAnsSlice& slice,
               std::span<const value_t> x, std::span<value_t> y) = nullptr;
  SimdIsa isa = SimdIsa::kScalar;
};

/// Per-slice / per-interval kernel selection (the plan-time step). The
/// returned vectors are index-aligned with slices() / intervals(). The
/// overloads without an ISA parameter use active_simd_isa() — the BRO_SIMD
/// override and host capability are folded in exactly once, here; execute()
/// runs whatever the table says with no further branching.
std::vector<BroEllKernel> plan_bro_ell_kernels(const core::BroEll& a);
std::vector<BroCooKernel> plan_bro_coo_kernels(const core::BroCoo& a);
std::vector<BroEllKernel> plan_bro_ell_kernels(const core::BroEll& a,
                                               SimdIsa isa);
std::vector<BroCooKernel> plan_bro_coo_kernels(const core::BroCoo& a,
                                               SimdIsa isa);
std::vector<BroAnsKernel> plan_bro_ans_kernels(const core::BroAns& a);
std::vector<BroAnsKernel> plan_bro_ans_kernels(const core::BroAns& a,
                                               SimdIsa isa);

/// Selection for a single slice / interval (what plan_bro_*_kernels applies
/// per element; exposed for tests and the table-free kernel overloads).
BroEllKernel select_bro_ell_kernel(const core::BroEllSlice& slice,
                                   int sym_len);
BroCooKernel select_bro_coo_kernel(const core::BroCooInterval& iv,
                                   int sym_len);
BroEllKernel select_bro_ell_kernel(const core::BroEllSlice& slice,
                                   int sym_len, SimdIsa isa);
BroCooKernel select_bro_coo_kernel(const core::BroCooInterval& iv,
                                   int sym_len, SimdIsa isa);

/// The generic variable-width kernels as a dispatch entry (width -1): the
/// bitwise-parity baseline the specialized kernels are fuzzed against.
BroEllKernel generic_bro_ell_kernel(int sym_len);
BroCooKernel generic_bro_coo_kernel(int sym_len);

/// BRO-ANS slice kernel selection: the SIMD set's entry when the ISA
/// provides one, else the scalar multi-chain kernel. All slices of one
/// matrix share a symbol length, so selection is per matrix, not per slice.
BroAnsKernel select_bro_ans_kernel(int sym_len, SimdIsa isa);

/// The single-chain sequential decoder as a dispatch entry: the
/// bitwise-parity baseline the multi-chain/SIMD kernels are fuzzed against.
BroAnsKernel generic_bro_ans_kernel(int sym_len);

void native_spmv_csr(const sparse::Csr& a, std::span<const value_t> x,
                     std::span<value_t> y);

void native_spmv_ell(const sparse::Ell& a, std::span<const value_t> x,
                     std::span<value_t> y);

void native_spmv_ellr(const sparse::EllR& a, std::span<const value_t> x,
                      std::span<value_t> y);

/// COO via per-thread row-range partitioning (entries are row-sorted, so a
/// balanced split on entry count with boundary fix-up is race-free).
void native_spmv_coo(const sparse::Coo& a, std::span<const value_t> x,
                     std::span<value_t> y);

/// COO over pre-computed row-complete ranges (see coo_thread_ranges): the
/// allocation-free plan path — the split is not recomputed per call.
void native_spmv_coo(const sparse::Coo& a, std::span<const CooRange> ranges,
                     std::span<const value_t> x, std::span<value_t> y);

void native_spmv_hyb(const sparse::Hyb& a, std::span<const value_t> x,
                     std::span<value_t> y);

/// HYB with the COO overflow accumulated in parallel over pre-computed
/// row-complete ranges (the plan path): row-complete chunks touch disjoint
/// y entries, so the overflow no longer serializes on skewed matrices.
void native_spmv_hyb(const sparse::Hyb& a, std::span<const CooRange> ranges,
                     std::span<const value_t> x, std::span<value_t> y);

/// BRO-ELL with per-slice kernel selection done inline (table-free
/// convenience path; selection is a cheap bit_alloc scan per slice).
void native_spmv_bro_ell(const core::BroEll& a, std::span<const value_t> x,
                         std::span<value_t> y);

/// BRO-ELL over plan-time kernel choices (kernels aligned with slices()):
/// the branch-free plan path.
void native_spmv_bro_ell(const core::BroEll& a,
                         std::span<const BroEllKernel> kernels,
                         std::span<const value_t> x, std::span<value_t> y);

/// BRO-ELL forced through the generic variable-width decoder for every
/// slice — the parity baseline of the differential decode checks.
void native_spmv_bro_ell_generic(const core::BroEll& a,
                                 std::span<const value_t> x,
                                 std::span<value_t> y);

/// BRO-ANS with inline kernel selection (table-free convenience path).
void native_spmv_bro_ans(const core::BroAns& a, std::span<const value_t> x,
                         std::span<value_t> y);

/// BRO-ANS over plan-time kernel choices (kernels aligned with slices()):
/// the branch-free plan path.
void native_spmv_bro_ans(const core::BroAns& a,
                         std::span<const BroAnsKernel> kernels,
                         std::span<const value_t> x, std::span<value_t> y);

/// BRO-ANS forced through the single-chain sequential decoder for every
/// slice — the parity baseline of the differential decode checks.
void native_spmv_bro_ans_generic(const core::BroAns& a,
                                 std::span<const value_t> x,
                                 std::span<value_t> y);

void native_spmv_bro_coo(const core::BroCoo& a, std::span<const value_t> x,
                         std::span<value_t> y);

/// BRO-COO with caller-owned carry scratch (>= a.intervals().size() entries)
/// and inline per-interval kernel selection.
void native_spmv_bro_coo(const core::BroCoo& a, std::span<const value_t> x,
                         std::span<value_t> y, std::span<BroCooCarry> carries);

/// BRO-COO over plan-time kernel choices: the allocation- and branch-free
/// plan path.
void native_spmv_bro_coo(const core::BroCoo& a,
                         std::span<const BroCooKernel> kernels,
                         std::span<const value_t> x, std::span<value_t> y,
                         std::span<BroCooCarry> carries);

/// BRO-COO forced through the generic decoder for every interval.
void native_spmv_bro_coo_generic(const core::BroCoo& a,
                                 std::span<const value_t> x,
                                 std::span<value_t> y);

void native_spmv_bro_hyb(const core::BroHyb& a, std::span<const value_t> x,
                         std::span<value_t> y);

/// BRO-HYB with caller-owned scratch: y_coo (>= y.size()) holds the COO
/// half's partial result, carries covers the COO half's intervals. Kernel
/// selection is inline per slice/interval.
void native_spmv_bro_hyb(const core::BroHyb& a, std::span<const value_t> x,
                         std::span<value_t> y, std::span<value_t> y_coo,
                         std::span<BroCooCarry> carries);

/// BRO-HYB over plan-time kernel choices for both halves: the allocation-
/// and branch-free plan path.
void native_spmv_bro_hyb(const core::BroHyb& a,
                         std::span<const BroEllKernel> ell_kernels,
                         std::span<const BroCooKernel> coo_kernels,
                         std::span<const value_t> x, std::span<value_t> y,
                         std::span<value_t> y_coo,
                         std::span<BroCooCarry> carries);

/// BRO-HYB forced through the generic decoder on both halves.
void native_spmv_bro_hyb_generic(const core::BroHyb& a,
                                 std::span<const value_t> x,
                                 std::span<value_t> y);

} // namespace bro::kernels
