// Entropy-coded (BRO-ANS) decode loops (internal header, like
// bro_decode.h: included by the kernel translation units and benches only;
// the public dispatch API lives in native_spmv.h).
//
// The v2 interleaved layout (core/bro_ans.h) stores each slice as lane
// groups of core::kAnsLaneGroup rows sharing one muxed stream, with every
// row's initial decoder state carried out of band. A tANS chain is still
// state-serial — the bit count consumed per symbol depends on the evolving
// state — so the scalar kernels here run several fully independent row
// chains in flight (instruction-level parallelism), each over its own lane
// of the group stream plus a 4 KiB (L1-resident) decode-table lookup per
// symbol. The vectorized counterparts live behind the AnsSimdKernelSet
// seam (bro_ans_decode_simd_impl.h). Per-row floating-point accumulation
// stays in column order everywhere, so results are bitwise identical to
// the sequential reference decoder by construction — the property the
// differential fuzzer pins.
#pragma once

#include <cstdint>
#include <type_traits>

#include "bits/ans.h"
#include "bits/bitwidth.h"
#include "core/bro_ans.h"
#include "kernels/bro_decode.h"

namespace bro::kernels::detail {

/// One independent tANS decode chain over lane `lane` of a group stream:
/// seeded from the out-of-band initial state, then per step one
/// decode-table lookup and one fused bit-read covering the mantissa and
/// the renormalization bits (split in two only when their sum exceeds a
/// single read's 32-bit yield — bit-identical either way, since
/// consecutive MSB-first reads concatenate).
///
/// Unlike the fixed-width kernels' LaneDecoder, the per-symbol bit count
/// here is state-dependent, so a lazy "refill when short" buffer turns
/// into a data-dependent branch that mispredicts every few symbols — and
/// the mispredict stalls, not the arithmetic, dominate entropy decode.
/// The chain instead keeps a buffer twice the symbol width — 64 bits for
/// 32-bit stream symbols, 128 bits for 64-bit ones — and refills eagerly
/// and branchlessly after every read: an unconditional load (the cursor is
/// clamped to the stream's last slot, so it stays in bounds; duplicated
/// tail bits sit below the live ones and are never consumed) plus
/// conditional-move updates of buffer, bit count, and cursor. The refill
/// restores rb >= sym_len, so every read of <= 32 bits hits the in-buffer
/// fast path. On toolchains without a 128-bit integer type the 64-bit
/// symbol path falls back to the branchy drain-and-reload loop.
template <typename SymT>
class AnsChain {
  static constexpr int kSym = static_cast<int>(sizeof(SymT) * 8);
#if defined(__SIZEOF_INT128__)
  static constexpr bool kEager = true;
  using BufT =
      std::conditional_t<kSym == 32, std::uint64_t, unsigned __int128>;
#else
  static constexpr bool kEager = kSym == 32;
  using BufT = std::uint64_t;
#endif

 public:
  AnsChain(const SymT* stream, std::size_t stride, std::size_t lane,
           std::size_t total_slots, std::uint32_t init_state, int tl)
      : stride_(stride) {
    if (total_slots == 0) {
      // All rows of this group coded to zero bits: every read is 0 bits
      // wide, but the eager refill still dereferences the cursor — park it
      // on a chain-local zero word.
      p_ = last_ = &zero_;
    } else {
      p_ = stream + lane;
      last_ = stream + (total_slots - 1);
    }
    if constexpr (kEager) {
      // Prime the invariant rb_ >= kSym: buffer the lane's first symbol.
      buf_ = static_cast<BufT>(*p_);
      rb_ = kSym;
      advance();
    }
    x_ = (1u << tl) + init_state;
  }

  // The clamped cursor may point at the chain-local zero word.
  AnsChain(const AnsChain&) = delete;
  AnsChain& operator=(const AnsChain&) = delete;

  /// Decode one delta (0 = padding sentinel).
  inline std::uint32_t step(const std::uint32_t* table, std::uint32_t L) {
    const std::uint32_t e = table[x_ - L];
    const int cls = static_cast<int>(e & 63u);
    const int nb = static_cast<int>((e >> 6) & 31u);
    const int mb = cls > 0 ? cls - 1 : 0;
    std::uint32_t mantissa, state_bits;
    if (mb + nb <= 32) {
      const std::uint32_t r = read(mb + nb);
      mantissa = r >> nb;
      state_bits =
          r & static_cast<std::uint32_t>(bits::max_value_for_bits(nb));
    } else {
      mantissa = read(mb);
      state_bits = read(nb);
    }
    x_ = (e >> 11) + state_bits;
    return cls > 0 ? ((1u << (cls - 1)) | mantissa) : 0;
  }

 private:
  /// MSB-first read of b <= 32 bits.
  inline std::uint32_t read(int b) {
    if constexpr (kEager) {
      const std::uint64_t d =
          static_cast<std::uint64_t>(buf_ >> (rb_ - b)) &
          bits::max_value_for_bits(b);
      rb_ -= b;
      // Branchless eager refill: restore rb_ >= kSym so the next read of
      // up to 32 bits always hits the fast extract above. Capacity is
      // safe: rb_ <= kSym - 1 before a refill, so rb_ <= 2*kSym - 1 after,
      // and the buffer holds 2*kSym bits.
      const SymT w = *p_; // clamped cursor — always in bounds
      const bool need = rb_ < kSym;
      const SymT* pn = p_ + stride_;
      buf_ = need ? ((buf_ << kSym) | w) : buf_;
      rb_ += need ? kSym : 0;
      p_ = need ? (pn < last_ ? pn : last_) : p_;
      return static_cast<std::uint32_t>(d);
    } else {
      std::uint64_t d;
      if (b <= rb_) {
        d = (buf_ >> (rb_ - b)) & bits::max_value_for_bits(b);
        rb_ -= b;
      } else {
        const int high = rb_;
        d = high > 0 ? (static_cast<std::uint64_t>(buf_) &
                        bits::max_value_for_bits(high))
                     : 0;
        buf_ = *p_;
        advance();
        const int low = b - high;
        d = (d << low) | ((static_cast<std::uint64_t>(buf_) >> (kSym - low)) &
                          bits::max_value_for_bits(low));
        rb_ = kSym - low;
      }
      return static_cast<std::uint32_t>(d);
    }
  }

  inline void advance() {
    const SymT* pn = p_ + stride_;
    p_ = pn < last_ ? pn : last_;
  }

  const SymT* p_;
  const SymT* last_;
  std::size_t stride_;
  BufT buf_ = 0;
  int rb_ = 0;
  std::uint32_t x_ = 0;
  SymT zero_ = 0; // cursor target for zero-slot group streams
};

/// Up to four independent chains in flight over one lane group (the ILP
/// analogue of the fixed-width kernels' four-row lockstep; wider
/// interleave loses to register spills — each chain carries six live
/// values), scalar single-chain remainder for partial quads.
template <typename SymT>
void bro_ans_slice_spmv(const core::BroAns& a, const core::BroAnsSlice& slice,
                        std::span<const value_t> x, std::span<value_t> y) {
  const std::size_t first = static_cast<std::size_t>(slice.first_row);
  if (slice.num_col == 0) {
    for (index_t t = 0; t < slice.height; ++t)
      y[first + static_cast<std::size_t>(t)] = 0;
    return;
  }
  const std::uint32_t* table = a.table().decode_data();
  const int tl = a.table().table_log();
  const std::uint32_t L = 1u << tl;
  const std::uint16_t* init = slice.init_states.data();
  const value_t* vals = a.vals().data();
  const value_t* xp = x.data();
  const std::size_t m = static_cast<std::size_t>(a.rows());

  const index_t num_groups = core::ans_num_groups(slice.height);
  for (index_t g = 0; g < num_groups; ++g) {
    const bits::MuxedStream& mux = slice.groups[static_cast<std::size_t>(g)];
    const SymT* stream = mux.template data<SymT>();
    const std::size_t gw = mux.height();
    const std::size_t n = mux.total_symbols();
    const index_t t0 = g * core::kAnsLaneGroup;
    index_t j = 0;
    for (; j + 3 < static_cast<index_t>(gw); j += 4) {
      const std::size_t b = static_cast<std::size_t>(t0 + j);
      const std::size_t r0 = first + b;
      AnsChain<SymT> ch0(stream, gw, static_cast<std::size_t>(j), n,
                         init[b], tl);
      AnsChain<SymT> ch1(stream, gw, static_cast<std::size_t>(j) + 1, n,
                         init[b + 1], tl);
      AnsChain<SymT> ch2(stream, gw, static_cast<std::size_t>(j) + 2, n,
                         init[b + 2], tl);
      AnsChain<SymT> ch3(stream, gw, static_cast<std::size_t>(j) + 3, n,
                         init[b + 3], tl);
      index_t col0 = -1, col1 = -1, col2 = -1, col3 = -1;
      value_t sum0 = 0, sum1 = 0, sum2 = 0, sum3 = 0;
      std::size_t voff = 0;
      for (index_t c = 0; c < slice.num_col; ++c, voff += m) {
        const std::uint32_t d0 = ch0.step(table, L);
        const std::uint32_t d1 = ch1.step(table, L);
        const std::uint32_t d2 = ch2.step(table, L);
        const std::uint32_t d3 = ch3.step(table, L);
        if (d0 != bits::kInvalidDelta) {
          col0 += static_cast<index_t>(d0);
          sum0 += vals[voff + r0] * xp[static_cast<std::size_t>(col0)];
        }
        if (d1 != bits::kInvalidDelta) {
          col1 += static_cast<index_t>(d1);
          sum1 += vals[voff + r0 + 1] * xp[static_cast<std::size_t>(col1)];
        }
        if (d2 != bits::kInvalidDelta) {
          col2 += static_cast<index_t>(d2);
          sum2 += vals[voff + r0 + 2] * xp[static_cast<std::size_t>(col2)];
        }
        if (d3 != bits::kInvalidDelta) {
          col3 += static_cast<index_t>(d3);
          sum3 += vals[voff + r0 + 3] * xp[static_cast<std::size_t>(col3)];
        }
      }
      y[r0] = sum0;
      y[r0 + 1] = sum1;
      y[r0 + 2] = sum2;
      y[r0 + 3] = sum3;
    }
    for (; j < static_cast<index_t>(gw); ++j) {
      const std::size_t b = static_cast<std::size_t>(t0 + j);
      const std::size_t r = first + b;
      AnsChain<SymT> ch(stream, gw, static_cast<std::size_t>(j), n, init[b],
                        tl);
      index_t col = -1;
      value_t sum = 0;
      std::size_t voff = 0;
      for (index_t c = 0; c < slice.num_col; ++c, voff += m) {
        const std::uint32_t d = ch.step(table, L);
        if (d != bits::kInvalidDelta) {
          col += static_cast<index_t>(d);
          sum += vals[voff + r] * xp[static_cast<std::size_t>(col)];
        }
      }
      y[r] = sum;
    }
  }
}

/// One chain at a time — the parity baseline the differential fuzzer's
/// decode sweep compares the dispatched kernels against.
template <typename SymT>
void bro_ans_slice_spmv_single(const core::BroAns& a,
                               const core::BroAnsSlice& slice,
                               std::span<const value_t> x,
                               std::span<value_t> y) {
  const std::size_t first = static_cast<std::size_t>(slice.first_row);
  if (slice.num_col == 0) {
    for (index_t t = 0; t < slice.height; ++t)
      y[first + static_cast<std::size_t>(t)] = 0;
    return;
  }
  const std::uint32_t* table = a.table().decode_data();
  const int tl = a.table().table_log();
  const std::uint32_t L = 1u << tl;
  const value_t* vals = a.vals().data();
  const value_t* xp = x.data();
  const std::size_t m = static_cast<std::size_t>(a.rows());
  for (index_t t = 0; t < slice.height; ++t) {
    const bits::MuxedStream& mux =
        slice.groups[static_cast<std::size_t>(t / core::kAnsLaneGroup)];
    const std::size_t r = first + static_cast<std::size_t>(t);
    AnsChain<SymT> ch(mux.template data<SymT>(), mux.height(),
                      static_cast<std::size_t>(t % core::kAnsLaneGroup),
                      mux.total_symbols(),
                      slice.init_states[static_cast<std::size_t>(t)], tl);
    index_t col = -1;
    value_t sum = 0;
    std::size_t voff = 0;
    for (index_t c = 0; c < slice.num_col; ++c, voff += m) {
      const std::uint32_t d = ch.step(table, L);
      if (d != bits::kInvalidDelta) {
        col += static_cast<index_t>(d);
        sum += vals[voff + r] * xp[static_cast<std::size_t>(col)];
      }
    }
    y[r] = sum;
  }
}

/// Decode-only checksum over every lane of one BRO-ANS slice — the entropy
/// counterpart of decode_lane_checksum for the throughput bench. Four
/// interleaved chains per group, the ILP structure of the dispatched
/// scalar SpMV kernel, so the bench times what execute() actually runs.
template <typename SymT>
std::uint64_t ans_decode_checksum(const core::BroAns& a,
                                  const core::BroAnsSlice& slice) {
  if (slice.num_col == 0) return 0;
  const std::uint32_t* table = a.table().decode_data();
  const int tl = a.table().table_log();
  const std::uint32_t L = 1u << tl;
  const std::uint16_t* init = slice.init_states.data();
  std::uint64_t sum = 0;
  const index_t num_groups = core::ans_num_groups(slice.height);
  for (index_t g = 0; g < num_groups; ++g) {
    const bits::MuxedStream& mux = slice.groups[static_cast<std::size_t>(g)];
    const SymT* stream = mux.template data<SymT>();
    const std::size_t gw = mux.height();
    const std::size_t n = mux.total_symbols();
    const index_t t0 = g * core::kAnsLaneGroup;
    index_t j = 0;
    for (; j + 3 < static_cast<index_t>(gw); j += 4) {
      const std::size_t b = static_cast<std::size_t>(t0 + j);
      AnsChain<SymT> ch0(stream, gw, static_cast<std::size_t>(j), n,
                         init[b], tl);
      AnsChain<SymT> ch1(stream, gw, static_cast<std::size_t>(j) + 1, n,
                         init[b + 1], tl);
      AnsChain<SymT> ch2(stream, gw, static_cast<std::size_t>(j) + 2, n,
                         init[b + 2], tl);
      AnsChain<SymT> ch3(stream, gw, static_cast<std::size_t>(j) + 3, n,
                         init[b + 3], tl);
      std::uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
      for (index_t c = 0; c < slice.num_col; ++c) {
        s0 += ch0.step(table, L);
        s1 += ch1.step(table, L);
        s2 += ch2.step(table, L);
        s3 += ch3.step(table, L);
      }
      sum += s0 + s1 + s2 + s3;
    }
    for (; j < static_cast<index_t>(gw); ++j) {
      const std::size_t b = static_cast<std::size_t>(t0 + j);
      AnsChain<SymT> ch(stream, gw, static_cast<std::size_t>(j), n, init[b],
                        tl);
      for (index_t c = 0; c < slice.num_col; ++c) sum += ch.step(table, L);
    }
  }
  return sum;
}

} // namespace bro::kernels::detail
