// Entropy-coded (BRO-ANS) decode loops (internal header, like
// bro_decode.h: included by the kernel translation units and benches only;
// the public dispatch API lives in native_spmv.h).
//
// A tANS decode chain is state-serial: the bit count consumed per symbol
// depends on the evolving state, so — unlike the fixed-width kernels —
// rows of a slice cannot share one residual-bit counter and refill in
// lockstep. What survives is instruction-level parallelism: several fully
// independent row chains in flight, each a LaneDecoder over its muxed
// stream lane plus a 4 KiB (L1-resident) decode-table lookup per symbol.
// Per-row floating-point accumulation stays in column order, so results
// are bitwise identical to the sequential reference decoder by
// construction — the property the differential fuzzer pins.
#pragma once

#include <cstdint>

#include "bits/ans.h"
#include "bits/bitwidth.h"
#include "core/bro_ans.h"
#include "kernels/bro_decode.h"

namespace bro::kernels::detail {

/// One independent tANS decode chain over lane `lane` of a muxed stream:
/// reads the initial state, then per step one decode-table lookup and one
/// fused bit-read covering the mantissa and the renormalization bits
/// (split in two only when their sum exceeds a single read's 32-bit yield
/// — bit-identical either way, since consecutive MSB-first reads
/// concatenate).
///
/// Unlike the fixed-width kernels' LaneDecoder, the per-symbol bit count
/// here is state-dependent, so a lazy "refill when short" buffer turns
/// into a data-dependent branch that mispredicts every few symbols — and
/// the mispredict stalls, not the arithmetic, dominate entropy decode.
/// For 32-bit stream symbols the chain instead keeps a 64-bit buffer and
/// refills eagerly and branchlessly after every read: an unconditional
/// load (the cursor is clamped to the stream's last slot, so it stays in
/// bounds; duplicated tail bits sit below the live ones and are never
/// consumed) plus conditional-move updates of buffer, bit count, and
/// cursor. 64-bit stream symbols keep the branchy drain-and-reload path —
/// a 64-bit buffer cannot eagerly absorb a whole 64-bit symbol.
template <typename SymT>
class AnsChain {
  static constexpr int kSym = static_cast<int>(sizeof(SymT) * 8);

 public:
  AnsChain(const SymT* stream, std::size_t stride, std::size_t lane,
           std::size_t total_slots, int tl)
      : p_(stream + lane), last_(stream + (total_slots - 1)),
        stride_(stride) {
    if constexpr (kSym == 32) {
      // Prime the invariant rb_ >= 32: buffer the lane's first symbol.
      buf_ = static_cast<std::uint64_t>(*p_);
      rb_ = 32;
      advance();
    }
    x_ = (1u << tl) + read(tl);
  }

  /// Decode one delta (0 = padding sentinel).
  inline std::uint32_t step(const std::uint32_t* table, std::uint32_t L) {
    const std::uint32_t e = table[x_ - L];
    const int cls = static_cast<int>(e & 63u);
    const int nb = static_cast<int>((e >> 6) & 31u);
    const int mb = cls > 0 ? cls - 1 : 0;
    std::uint32_t mantissa, state_bits;
    if (mb + nb <= 32) {
      const std::uint32_t r = read(mb + nb);
      mantissa = r >> nb;
      state_bits =
          r & static_cast<std::uint32_t>(bits::max_value_for_bits(nb));
    } else {
      mantissa = read(mb);
      state_bits = read(nb);
    }
    x_ = (e >> 11) + state_bits;
    return cls > 0 ? ((1u << (cls - 1)) | mantissa) : 0;
  }

 private:
  /// MSB-first read of b <= 32 bits.
  inline std::uint32_t read(int b) {
    if constexpr (kSym == 32) {
      const std::uint64_t d =
          (buf_ >> (rb_ - b)) & bits::max_value_for_bits(b);
      rb_ -= b;
      // Branchless eager refill: restore rb_ >= 32 so the next read of up
      // to 32 bits always hits the fast extract above.
      const SymT w = *p_; // clamped cursor — always in bounds
      const bool need = rb_ < 32;
      const SymT* pn = p_ + stride_;
      buf_ = need ? ((buf_ << 32) | w) : buf_;
      rb_ += need ? 32 : 0;
      p_ = need ? (pn < last_ ? pn : last_) : p_;
      return static_cast<std::uint32_t>(d);
    } else {
      std::uint64_t d;
      if (b <= rb_) {
        d = (buf_ >> (rb_ - b)) & bits::max_value_for_bits(b);
        rb_ -= b;
      } else {
        const int high = rb_;
        d = high > 0 ? (buf_ & bits::max_value_for_bits(high)) : 0;
        buf_ = *p_;
        advance();
        const int low = b - high;
        d = (d << low) |
            ((buf_ >> (kSym - low)) & bits::max_value_for_bits(low));
        rb_ = kSym - low;
      }
      return static_cast<std::uint32_t>(d);
    }
  }

  inline void advance() {
    const SymT* pn = p_ + stride_;
    p_ = pn < last_ ? pn : last_;
  }

  const SymT* p_;
  const SymT* last_;
  std::size_t stride_;
  std::uint64_t buf_ = 0;
  int rb_ = 0;
  std::uint32_t x_ = 0;
};

/// Four independent chains in flight (the ILP analogue of the fixed-width
/// kernels' four-row lockstep; wider interleave loses to register spills —
/// each chain carries six live values), scalar single-chain remainder.
template <typename SymT>
void bro_ans_slice_spmv(const core::BroAns& a, const core::BroAnsSlice& slice,
                        std::span<const value_t> x, std::span<value_t> y) {
  const std::size_t first = static_cast<std::size_t>(slice.first_row);
  if (slice.num_col == 0) {
    for (index_t t = 0; t < slice.height; ++t)
      y[first + static_cast<std::size_t>(t)] = 0;
    return;
  }
  const SymT* stream = slice.stream.template data<SymT>();
  const std::size_t h = static_cast<std::size_t>(slice.height);
  const std::size_t n = slice.stream.total_symbols();
  const std::uint32_t* table = a.table().decode_data();
  const int tl = a.table().table_log();
  const std::uint32_t L = 1u << tl;
  const value_t* vals = a.vals().data();
  const value_t* xp = x.data();
  const std::size_t m = static_cast<std::size_t>(a.rows());

  index_t t = 0;
  for (; t + 3 < slice.height; t += 4) {
    const std::size_t r0 = first + static_cast<std::size_t>(t);
    AnsChain<SymT> ch0(stream, h, static_cast<std::size_t>(t), n, tl);
    AnsChain<SymT> ch1(stream, h, static_cast<std::size_t>(t) + 1, n, tl);
    AnsChain<SymT> ch2(stream, h, static_cast<std::size_t>(t) + 2, n, tl);
    AnsChain<SymT> ch3(stream, h, static_cast<std::size_t>(t) + 3, n, tl);
    index_t col0 = -1, col1 = -1, col2 = -1, col3 = -1;
    value_t sum0 = 0, sum1 = 0, sum2 = 0, sum3 = 0;
    std::size_t voff = 0;
    for (index_t c = 0; c < slice.num_col; ++c, voff += m) {
      const std::uint32_t d0 = ch0.step(table, L);
      const std::uint32_t d1 = ch1.step(table, L);
      const std::uint32_t d2 = ch2.step(table, L);
      const std::uint32_t d3 = ch3.step(table, L);
      if (d0 != bits::kInvalidDelta) {
        col0 += static_cast<index_t>(d0);
        sum0 += vals[voff + r0] * xp[static_cast<std::size_t>(col0)];
      }
      if (d1 != bits::kInvalidDelta) {
        col1 += static_cast<index_t>(d1);
        sum1 += vals[voff + r0 + 1] * xp[static_cast<std::size_t>(col1)];
      }
      if (d2 != bits::kInvalidDelta) {
        col2 += static_cast<index_t>(d2);
        sum2 += vals[voff + r0 + 2] * xp[static_cast<std::size_t>(col2)];
      }
      if (d3 != bits::kInvalidDelta) {
        col3 += static_cast<index_t>(d3);
        sum3 += vals[voff + r0 + 3] * xp[static_cast<std::size_t>(col3)];
      }
    }
    y[r0] = sum0;
    y[r0 + 1] = sum1;
    y[r0 + 2] = sum2;
    y[r0 + 3] = sum3;
  }
  for (; t < slice.height; ++t) {
    const std::size_t r = first + static_cast<std::size_t>(t);
    AnsChain<SymT> ch(stream, h, static_cast<std::size_t>(t), n, tl);
    index_t col = -1;
    value_t sum = 0;
    std::size_t voff = 0;
    for (index_t c = 0; c < slice.num_col; ++c, voff += m) {
      const std::uint32_t d = ch.step(table, L);
      if (d != bits::kInvalidDelta) {
        col += static_cast<index_t>(d);
        sum += vals[voff + r] * xp[static_cast<std::size_t>(col)];
      }
    }
    y[r] = sum;
  }
}

/// One chain at a time — the parity baseline the differential fuzzer's
/// decode sweep compares the dispatched kernels against.
template <typename SymT>
void bro_ans_slice_spmv_single(const core::BroAns& a,
                               const core::BroAnsSlice& slice,
                               std::span<const value_t> x,
                               std::span<value_t> y) {
  const std::size_t first = static_cast<std::size_t>(slice.first_row);
  if (slice.num_col == 0) {
    for (index_t t = 0; t < slice.height; ++t)
      y[first + static_cast<std::size_t>(t)] = 0;
    return;
  }
  const SymT* stream = slice.stream.template data<SymT>();
  const std::size_t h = static_cast<std::size_t>(slice.height);
  const std::size_t n = slice.stream.total_symbols();
  const std::uint32_t* table = a.table().decode_data();
  const int tl = a.table().table_log();
  const std::uint32_t L = 1u << tl;
  const value_t* vals = a.vals().data();
  const value_t* xp = x.data();
  const std::size_t m = static_cast<std::size_t>(a.rows());
  for (index_t t = 0; t < slice.height; ++t) {
    const std::size_t r = first + static_cast<std::size_t>(t);
    AnsChain<SymT> ch(stream, h, static_cast<std::size_t>(t), n, tl);
    index_t col = -1;
    value_t sum = 0;
    std::size_t voff = 0;
    for (index_t c = 0; c < slice.num_col; ++c, voff += m) {
      const std::uint32_t d = ch.step(table, L);
      if (d != bits::kInvalidDelta) {
        col += static_cast<index_t>(d);
        sum += vals[voff + r] * xp[static_cast<std::size_t>(col)];
      }
    }
    y[r] = sum;
  }
}

/// Decode-only checksum over every lane of one BRO-ANS slice stream — the
/// entropy counterpart of decode_lane_checksum for the throughput bench.
/// Four interleaved chains, the ILP structure of the dispatched SpMV
/// kernel, so the bench times what execute() actually runs.
template <typename SymT>
std::uint64_t ans_decode_checksum(const core::BroAns& a,
                                  const core::BroAnsSlice& slice) {
  if (slice.num_col == 0) return 0;
  const SymT* stream = slice.stream.template data<SymT>();
  const std::size_t h = static_cast<std::size_t>(slice.height);
  const std::size_t n = slice.stream.total_symbols();
  const std::uint32_t* table = a.table().decode_data();
  const int tl = a.table().table_log();
  const std::uint32_t L = 1u << tl;
  std::uint64_t sum = 0;
  index_t t = 0;
  for (; t + 3 < slice.height; t += 4) {
    const std::size_t b = static_cast<std::size_t>(t);
    AnsChain<SymT> ch0(stream, h, b, n, tl);
    AnsChain<SymT> ch1(stream, h, b + 1, n, tl);
    AnsChain<SymT> ch2(stream, h, b + 2, n, tl);
    AnsChain<SymT> ch3(stream, h, b + 3, n, tl);
    std::uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
    for (index_t c = 0; c < slice.num_col; ++c) {
      s0 += ch0.step(table, L);
      s1 += ch1.step(table, L);
      s2 += ch2.step(table, L);
      s3 += ch3.step(table, L);
    }
    sum += s0 + s1 + s2 + s3;
  }
  for (; t < slice.height; ++t) {
    AnsChain<SymT> ch(stream, h, static_cast<std::size_t>(t), n, tl);
    for (index_t c = 0; c < slice.num_col; ++c) sum += ch.step(table, L);
  }
  return sum;
}

} // namespace bro::kernels::detail
