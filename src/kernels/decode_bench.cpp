#include "kernels/decode_bench.h"

#include <algorithm>
#include <array>
#include <bit>
#include <chrono>
#include <utility>
#include <vector>

#include "bits/bit_string.h"
#include "bits/bitwidth.h"
#include "core/bro_ans.h"
#include "core/bro_bcsr.h"
#include "core/bro_ell.h"
#include "core/savings.h"
#include "kernels/bro_ans_decode.h"
#include "kernels/bro_bcsr_decode.h"
#include "kernels/bro_decode.h"
#include "kernels/bro_decode_simd.h"
#include "kernels/native_spmv.h"
#include "sparse/convert.h"
#include "sparse/matgen/generators.h"
#include "sparse/matgen/suite.h"
#include "util/error.h"

namespace bro::kernels {

namespace {

using ChecksumFn = std::uint64_t (*)(const void* stream, std::size_t stride,
                                     std::size_t lane, std::size_t count,
                                     int runtime_b);

template <typename SymT, int B>
std::uint64_t checksum_thunk(const void* stream, std::size_t stride,
                             std::size_t lane, std::size_t count,
                             int runtime_b) {
  return detail::decode_lane_checksum<SymT, B>(
      static_cast<const SymT*>(stream), stride, lane, count, runtime_b);
}

template <typename SymT, std::size_t... Ws>
constexpr auto checksum_table(std::index_sequence<Ws...>) {
  return std::array<ChecksumFn, sizeof...(Ws)>{
      &checksum_thunk<SymT, static_cast<int>(Ws)>...};
}

using Widths = std::make_index_sequence<kMaxSpecializedDecodeWidth + 1>;
constexpr auto kChecksum32 = checksum_table<std::uint32_t>(Widths{});
constexpr auto kChecksum64 = checksum_table<std::uint64_t>(Widths{});

/// The pre-packing decode loop: runtime bit width AND runtime symbol length
/// over one-uint64-per-symbol storage (each symbol right-aligned in its
/// slot), exactly what the old MuxedStream forced on sym_len=32 streams.
std::uint64_t legacy_lane_checksum(const std::uint64_t* slots,
                                   std::size_t stride, std::size_t lane,
                                   std::size_t count, int b, int sym_len) {
  const std::uint64_t* next_load = slots + lane;
  std::uint64_t sym = 0;
  int rb = 0;
  std::uint64_t sum = 0;
  for (std::size_t c = 0; c < count; ++c) {
    std::uint64_t d;
    if (b <= rb) {
      d = (sym >> (rb - b)) & bits::max_value_for_bits(b);
      rb -= b;
    } else {
      const int high = rb;
      d = high > 0 ? (sym & bits::max_value_for_bits(high)) : 0;
      sym = *next_load;
      next_load += stride;
      const int low = b - high;
      d = (d << low) |
          ((sym >> (sym_len - low)) & bits::max_value_for_bits(low));
      rb = sym_len - low;
    }
    sum += d;
  }
  return sum;
}

} // namespace

DecodeBenchCase make_decode_bench_case(int width, int sym_len,
                                       std::size_t lanes,
                                       std::size_t deltas_per_lane,
                                       std::uint64_t seed) {
  BRO_CHECK_MSG(width >= 0 && width <= 32, "width must be in [0, 32]");
  BRO_CHECK_MSG(sym_len == 32 || sym_len == 64, "sym_len must be 32 or 64");

  DecodeBenchCase c;
  c.width = width;
  c.sym_len = sym_len;
  c.lanes = lanes;
  c.deltas_per_lane = deltas_per_lane;

  // Deterministic splitmix-style generator: the bench must not depend on
  // std::random_device and must reproduce across runs.
  std::uint64_t state = seed;
  const auto next_rand = [&state]() {
    state += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  };

  std::vector<bits::BitString> rows(lanes);
  for (auto& bs : rows) {
    for (std::size_t i = 0; i < deltas_per_lane; ++i)
      bs.append(next_rand() & bits::max_value_for_bits(width), width);
    bs.pad_to_multiple(sym_len);
  }
  c.stream = bits::MuxedStream::interleave(rows, sym_len);
  c.legacy_slots.resize(c.stream.total_symbols());
  for (std::size_t i = 0; i < c.legacy_slots.size(); ++i)
    c.legacy_slots[i] = c.stream[i];
  c.widths.assign(deltas_per_lane, static_cast<std::uint8_t>(width));
  return c;
}

std::uint64_t simd_decode_pass(const DecodeBenchCase& c, SimdIsa isa) {
  const SimdKernelSet* set = simd_kernel_set(isa);
  BRO_CHECK_MSG(set != nullptr && simd_isa_runnable(isa),
                "SIMD ISA " << simd_isa_name(isa)
                            << " is not runnable in this process");
  if (c.sym_len == 32)
    return set->checksum32(c.stream.data<std::uint32_t>(), c.lanes,
                           c.widths.data(), c.deltas_per_lane);
  return set->checksum64(c.stream.data<std::uint64_t>(), c.lanes,
                         c.widths.data(), c.deltas_per_lane);
}

std::uint64_t decode_pass(const DecodeBenchCase& c, DecodeVariant variant) {
  std::uint64_t sum = 0;
  const std::size_t stride = c.stream.height();
  switch (variant) {
    case DecodeVariant::kSpecialized: {
      if (c.width > kMaxSpecializedDecodeWidth)
        return decode_pass(c, DecodeVariant::kGeneric);
      const auto& table = c.sym_len == 32 ? kChecksum32 : kChecksum64;
      const ChecksumFn fn = table[static_cast<std::size_t>(c.width)];
      const void* stream = c.sym_len == 32
                               ? static_cast<const void*>(
                                     c.stream.data<std::uint32_t>())
                               : static_cast<const void*>(
                                     c.stream.data<std::uint64_t>());
      for (std::size_t lane = 0; lane < c.lanes; ++lane)
        sum += fn(stream, stride, lane, c.deltas_per_lane, c.width);
      break;
    }
    case DecodeVariant::kGeneric: {
      if (c.sym_len == 32) {
        const std::uint32_t* stream = c.stream.data<std::uint32_t>();
        for (std::size_t lane = 0; lane < c.lanes; ++lane)
          sum += detail::decode_lane_checksum<std::uint32_t,
                                              detail::kGenericWidth>(
              stream, stride, lane, c.deltas_per_lane, c.width);
      } else {
        const std::uint64_t* stream = c.stream.data<std::uint64_t>();
        for (std::size_t lane = 0; lane < c.lanes; ++lane)
          sum += detail::decode_lane_checksum<std::uint64_t,
                                              detail::kGenericWidth>(
              stream, stride, lane, c.deltas_per_lane, c.width);
      }
      break;
    }
    case DecodeVariant::kLegacySlots: {
      for (std::size_t lane = 0; lane < c.lanes; ++lane)
        sum += legacy_lane_checksum(c.legacy_slots.data(), stride, lane,
                                    c.deltas_per_lane, c.width, c.sym_len);
      break;
    }
  }
  return sum;
}

namespace {

/// Self-timed throughput of one decode pass `pass` known to return `expect`:
/// doubling pass counts until a measurement spans min_seconds, reported in
/// giga-deltas per second.
template <typename PassFn>
double time_pass(std::size_t deltas, std::uint64_t expect, PassFn&& pass,
                 double min_seconds) {
  using clock = std::chrono::steady_clock;
  std::size_t passes = 1;
  for (;;) {
    const auto t0 = clock::now();
    std::uint64_t sink = 0;
    for (std::size_t p = 0; p < passes; ++p) {
      sink += pass();
      // The pass only reads memory, so without this clobber the compiler
      // is entitled to hoist the call out of the loop and time nothing.
#if defined(__GNUC__) || defined(__clang__)
      asm volatile("" ::: "memory");
#endif
    }
    const double secs = std::chrono::duration<double>(clock::now() - t0).count();
    BRO_CHECK(sink == expect * passes); // keeps `sink` live
    if (secs >= min_seconds || passes > (std::size_t{1} << 30))
      return static_cast<double>(deltas) * static_cast<double>(passes) /
             (secs * 1e9);
    passes *= 2;
  }
}

double time_variant(const DecodeBenchCase& c, DecodeVariant variant,
                    double min_seconds) {
  // Parity first: all variants must agree before we trust the numbers.
  const std::uint64_t expect = decode_pass(c, DecodeVariant::kGeneric);
  BRO_CHECK_MSG(decode_pass(c, variant) == expect,
                "decode variants disagree at width " << c.width);
  return time_pass(
      decode_pass_deltas(c), expect, [&] { return decode_pass(c, variant); },
      min_seconds);
}

double time_simd(const DecodeBenchCase& c, SimdIsa isa, double min_seconds) {
  const std::uint64_t expect = decode_pass(c, DecodeVariant::kGeneric);
  BRO_CHECK_MSG(simd_decode_pass(c, isa) == expect,
                simd_isa_name(isa) << " decode disagrees with scalar at width "
                                   << c.width);
  return time_pass(
      decode_pass_deltas(c), expect, [&] { return simd_decode_pass(c, isa); },
      min_seconds);
}

} // namespace

std::vector<DecodeThroughputRow> decode_throughput_sweep(
    int sym_len, std::size_t lanes, std::size_t deltas_per_lane,
    double min_seconds_per_cell) {
  static constexpr int kWidths[] = {1, 2, 4, 6, 8, 12, 16, 20, 24, 28, 32};
  std::vector<DecodeThroughputRow> rows;
  rows.reserve(std::size(kWidths));
  for (const int w : kWidths) {
    const DecodeBenchCase c =
        make_decode_bench_case(w, sym_len, lanes, deltas_per_lane,
                               /*seed=*/0x5eed0000u + static_cast<unsigned>(w));
    DecodeThroughputRow row;
    row.width = w;
    row.sym_len = sym_len;
    row.specialized_gdps =
        time_variant(c, DecodeVariant::kSpecialized, min_seconds_per_cell);
    row.generic_gdps =
        time_variant(c, DecodeVariant::kGeneric, min_seconds_per_cell);
    row.legacy_gdps =
        time_variant(c, DecodeVariant::kLegacySlots, min_seconds_per_cell);
    if (simd_isa_runnable(SimdIsa::kSse4))
      row.sse4_gdps = time_simd(c, SimdIsa::kSse4, min_seconds_per_cell);
    if (simd_isa_runnable(SimdIsa::kAvx2))
      row.avx2_gdps = time_simd(c, SimdIsa::kAvx2, min_seconds_per_cell);
    rows.push_back(row);
  }
  return rows;
}

namespace {

/// Scalar decode checksum over a span of BRO-ELL-layout index slices,
/// taking exactly the decode path PR 4's dispatch selected: the
/// width-specialized kernel when the slice's bit allocation is uniform and
/// within kMaxSpecializedDecodeWidth, the runtime-width generic decoder
/// otherwise. Span-based so BRO-BCSR — whose block-index slices are the
/// same BroEllSlice layout — times the identical decode machinery.
template <typename SymT>
std::uint64_t scalar_slices_checksum(
    std::span<const core::BroEllSlice> slices,
    const std::array<ChecksumFn, kMaxSpecializedDecodeWidth + 1>& table) {
  std::uint64_t sum = 0;
  for (const auto& s : slices) {
    if (s.height <= 0 || s.num_col <= 0) continue;
    const SymT* stream = s.stream.template data<SymT>();
    const std::size_t h = static_cast<std::size_t>(s.height);
    const std::size_t cols = static_cast<std::size_t>(s.num_col);
    const std::uint8_t* alloc = s.bit_alloc.data();
    int uniform = alloc[0];
    for (std::size_t c = 1; c < cols; ++c)
      if (alloc[c] != uniform) { uniform = -1; break; }
    if (uniform >= 0 && uniform <= kMaxSpecializedDecodeWidth) {
      const ChecksumFn fn = table[static_cast<std::size_t>(uniform)];
      for (std::size_t lane = 0; lane < h; ++lane)
        sum += fn(stream, h, lane, cols, uniform);
    } else {
      for (std::size_t lane = 0; lane < h; ++lane) {
        detail::LaneDecoder<SymT, detail::kGenericWidth> dec(stream, h, lane);
        for (std::size_t c = 0; c < cols; ++c) sum += dec.next(alloc[c]);
      }
    }
  }
  return sum;
}

std::uint64_t scalar_slices_checksum(std::span<const core::BroEllSlice> slices,
                                     int sym_len) {
  return sym_len == 32
             ? scalar_slices_checksum<std::uint32_t>(slices, kChecksum32)
             : scalar_slices_checksum<std::uint64_t>(slices, kChecksum64);
}

std::uint64_t simd_slices_checksum(std::span<const core::BroEllSlice> slices,
                                   int sym_len, const SimdKernelSet& set) {
  std::uint64_t sum = 0;
  for (const auto& s : slices) {
    if (s.height <= 0 || s.num_col <= 0) continue;
    const std::size_t h = static_cast<std::size_t>(s.height);
    const std::size_t cols = static_cast<std::size_t>(s.num_col);
    if (sym_len == 32)
      sum += set.checksum32(s.stream.data<std::uint32_t>(), h,
                            s.bit_alloc.data(), cols);
    else
      sum += set.checksum64(s.stream.data<std::uint64_t>(), h,
                            s.bit_alloc.data(), cols);
  }
  return sum;
}

std::uint64_t scalar_ell_checksum(const core::BroEll& a) {
  return scalar_slices_checksum(a.slices(), a.options().sym_len);
}

std::uint64_t simd_ell_checksum(const core::BroEll& a,
                                const SimdKernelSet& set) {
  return simd_slices_checksum(a.slices(), a.options().sym_len, set);
}

} // namespace

std::vector<EllSuiteDecodeRow> ell_suite_decode_sweep(
    SimdIsa isa, double scale, double min_seconds_per_cell) {
  const SimdKernelSet* set = simd_kernel_set(isa);
  BRO_CHECK_MSG(set != nullptr && simd_isa_runnable(isa),
                "SIMD ISA " << simd_isa_name(isa)
                            << " is not runnable in this process");

  std::vector<EllSuiteDecodeRow> rows;
  for (const auto& entry : sparse::suite_test_set(1)) {
    const sparse::Csr csr = sparse::generate_suite_matrix(entry, scale);
    const core::BroEll bro = core::BroEll::compress(sparse::csr_to_ell(csr));

    EllSuiteDecodeRow row;
    row.matrix = entry.name;
    for (const auto& s : bro.slices())
      row.deltas += static_cast<std::size_t>(s.height) *
                    static_cast<std::size_t>(s.num_col);
    if (row.deltas == 0) continue;

    const std::uint64_t expect = scalar_ell_checksum(bro);
    BRO_CHECK_MSG(simd_ell_checksum(bro, *set) == expect,
                  simd_isa_name(isa) << " decode disagrees with scalar on "
                                     << entry.name);

    // Alternate the two sides and keep each one's best throughput: the
    // CPU-time-minima protocol the repo's experiments use, so a scheduling
    // hiccup on one round cannot masquerade as a SIMD speedup.
    for (int round = 0; round < 3; ++round) {
      row.scalar_gdps = std::max(
          row.scalar_gdps,
          time_pass(row.deltas, expect,
                    [&] { return scalar_ell_checksum(bro); },
                    min_seconds_per_cell));
      row.simd_gdps = std::max(
          row.simd_gdps,
          time_pass(row.deltas, expect,
                    [&] { return simd_ell_checksum(bro, *set); },
                    min_seconds_per_cell));
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

namespace {

std::uint64_t ans_suite_checksum(const core::BroAns& a) {
  std::uint64_t sum = 0;
  for (const auto& s : a.slices()) {
    if (s.height <= 0 || s.num_col <= 0) continue;
    sum += a.options().sym_len == 32
               ? detail::ans_decode_checksum<std::uint32_t>(a, s)
               : detail::ans_decode_checksum<std::uint64_t>(a, s);
  }
  return sum;
}

} // namespace

std::vector<EntropySuiteRow> entropy_suite_sweep(
    SimdIsa isa, double scale, double min_seconds_per_cell) {
  std::vector<EntropySuiteRow> rows;
  for (const auto& entry : sparse::suite_test_set(1)) {
    const sparse::Csr csr = sparse::generate_suite_matrix(entry, scale);
    const sparse::Ell ell = sparse::csr_to_ell(csr);
    const core::BroEll fixed = core::BroEll::compress(ell);
    const core::BroAns coded = core::BroAns::compress(ell);

    EntropySuiteRow row;
    row.matrix = entry.name;
    for (const auto& s : fixed.slices())
      row.deltas += static_cast<std::size_t>(s.height) *
                    static_cast<std::size_t>(s.num_col);
    if (row.deltas == 0) continue;
    row.ell_eta = core::make_savings(fixed.original_index_bytes(),
                                     fixed.compressed_index_bytes())
                      .eta();
    row.ans_eta = core::make_savings(coded.original_index_bytes(),
                                     coded.compressed_index_bytes())
                      .eta();

    // Both formats slice the same ELLPACK with the same default height, so
    // they decode the identical padded delta sequence — pin that bitwise
    // before trusting the relative timings.
    BRO_CHECK_MSG(ans_suite_checksum(coded) == scalar_ell_checksum(fixed),
                  "BRO-ANS decode disagrees with BRO-ELL on " << entry.name);

    // Time each format's dispatched SpMV slice kernels at `isa` — what
    // execute() actually runs with that ISA active — over the full matrix,
    // single-threaded. Both formats accumulate per row in column order over
    // the same padded delta sequence, so the output vectors must match
    // bitwise; fold y's bit pattern into the pass checksum to pin that
    // every pass.
    const auto ell_kernels = plan_bro_ell_kernels(fixed, isa);
    const auto ans_kernels = plan_bro_ans_kernels(coded, isa);
    std::vector<value_t> x(static_cast<std::size_t>(csr.cols));
    for (std::size_t i = 0; i < x.size(); ++i)
      x[i] = 1.0 + static_cast<value_t>(i % 16) * 0.0625;
    std::vector<value_t> y(static_cast<std::size_t>(csr.rows));
    const auto fold_y = [&y] {
      std::uint64_t h = 0;
      for (const value_t v : y) h += std::bit_cast<std::uint64_t>(v);
      return h;
    };
    const auto ell_pass = [&] {
      const auto& slices = fixed.slices();
      for (std::size_t si = 0; si < slices.size(); ++si)
        ell_kernels[si].spmv(fixed, slices[si], x, y);
      return fold_y();
    };
    const auto ans_pass = [&] {
      const auto& slices = coded.slices();
      for (std::size_t si = 0; si < slices.size(); ++si)
        ans_kernels[si].spmv(coded, slices[si], x, y);
      return fold_y();
    };
    const std::uint64_t expect = ell_pass();
    BRO_CHECK_MSG(ans_pass() == expect,
                  "BRO-ANS SpMV differs bitwise from BRO-ELL on "
                      << entry.name);

    for (int round = 0; round < 3; ++round) {
      row.ell_gdps =
          std::max(row.ell_gdps, time_pass(row.deltas, expect, ell_pass,
                                           min_seconds_per_cell));
      row.ans_gdps =
          std::max(row.ans_gdps, time_pass(row.deltas, expect, ans_pass,
                                           min_seconds_per_cell));
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

std::vector<BlockSuiteRow> block_suite_sweep(SimdIsa isa, double scale,
                                             double min_seconds_per_cell) {
  std::vector<BlockSuiteRow> rows;
  for (const auto& entry : sparse::suite_test_set(3)) {
    const sparse::Csr csr = sparse::generate_suite_matrix(entry, scale);
    const core::BroEll ell = core::BroEll::compress(sparse::csr_to_ell(csr));
    const core::BroBcsr bcsr = core::BroBcsr::compress(csr);

    BlockSuiteRow row;
    row.matrix = entry.name;
    row.rows = csr.rows;
    row.nnz = csr.nnz();
    row.shape_r = bcsr.block_r();
    row.shape_c = bcsr.block_c();
    row.fill = bcsr.value_slots() == 0
                   ? 0.0
                   : static_cast<double>(bcsr.nnz()) /
                         static_cast<double>(bcsr.value_slots());

    // Fill-adjusted etas: BRO-BCSR's compressed_index_bytes() already
    // charges its explicit-zero fill; charge BRO-ELL's value padding the
    // same way so the comparison prices total stored bytes, not just index
    // bits. Both originals are rows * max_row_len * 4, so the etas share a
    // baseline.
    std::size_t ell_slots = 0;
    for (const auto& s : ell.slices())
      ell_slots += static_cast<std::size_t>(s.height) *
                   static_cast<std::size_t>(s.num_col);
    const std::size_t ell_pad =
        ell_slots > csr.nnz() ? ell_slots - csr.nnz() : 0;
    row.ell_eta = core::make_savings(ell.original_index_bytes(),
                                     ell.compressed_index_bytes() +
                                         sizeof(value_t) * ell_pad)
                      .eta();
    row.bcsr_eta = core::make_savings(bcsr.original_index_bytes(),
                                      bcsr.compressed_index_bytes())
                       .eta();

    std::vector<value_t> x(static_cast<std::size_t>(csr.cols));
    for (std::size_t i = 0; i < x.size(); ++i)
      x[i] = 1.0 + static_cast<value_t>(i % 16) * 0.0625;
    std::vector<value_t> y(static_cast<std::size_t>(csr.rows));
    const auto fold_y = [&y] {
      std::uint64_t h = 0;
      for (const value_t v : y) h += std::bit_cast<std::uint64_t>(v);
      return h;
    };

    const auto ell_kernels = plan_bro_ell_kernels(ell, isa);
    const auto ell_pass = [&] {
      const auto& slices = ell.slices();
      for (std::size_t si = 0; si < slices.size(); ++si)
        ell_kernels[si].spmv(ell, slices[si], x, y);
      return fold_y();
    };

    const auto bcsr_scalar = plan_bro_bcsr_kernels(bcsr, SimdIsa::kScalar);
    const auto bcsr_kernels = plan_bro_bcsr_kernels(bcsr, isa);
    const auto bcsr_pass_with = [&](const std::vector<BroBcsrKernel>& ks) {
      for (std::size_t si = 0; si < ks.size(); ++si)
        ks[si].spmv(bcsr, si, x, y);
      return fold_y();
    };

    // Pin the tentpole contract before timing: the `isa` kernels must
    // reproduce the scalar 8-lane reference bit-for-bit.
    const std::uint64_t bcsr_expect = bcsr_pass_with(bcsr_scalar);
    BRO_CHECK_MSG(bcsr_pass_with(bcsr_kernels) == bcsr_expect,
                  simd_isa_name(isa)
                      << " BRO-BCSR SpMV differs bitwise from scalar on "
                      << entry.name);
    const std::uint64_t ell_expect = ell_pass();

    // Gate metric: index decode throughput through the dispatched decode
    // path at `isa`. BCSR block-index slices share BRO-ELL's layout, so
    // both sides run the identical decode machinery — the difference is
    // purely how many symbols each format stores per matrix row.
    const SimdKernelSet* set =
        isa == SimdIsa::kScalar ? nullptr : simd_kernel_set(isa);
    const auto ell_decode = [&] {
      return set ? simd_slices_checksum(ell.slices(), ell.options().sym_len,
                                        *set)
                 : scalar_slices_checksum(ell.slices(),
                                          ell.options().sym_len);
    };
    const auto bcsr_decode = [&] {
      return set ? simd_slices_checksum(bcsr.slices(),
                                        bcsr.options().sym_len, *set)
                 : scalar_slices_checksum(bcsr.slices(),
                                          bcsr.options().sym_len);
    };
    const std::uint64_t ell_decode_expect =
        scalar_slices_checksum(ell.slices(), ell.options().sym_len);
    const std::uint64_t bcsr_decode_expect =
        scalar_slices_checksum(bcsr.slices(), bcsr.options().sym_len);
    BRO_CHECK_MSG(ell_decode() == ell_decode_expect,
                  simd_isa_name(isa)
                      << " BRO-ELL decode disagrees with scalar on "
                      << entry.name);
    BRO_CHECK_MSG(bcsr_decode() == bcsr_decode_expect,
                  simd_isa_name(isa)
                      << " BRO-BCSR decode disagrees with scalar on "
                      << entry.name);

    // Alternate sides and keep CPU-time minima (max throughput), the same
    // protocol as the other suite sweeps. time_pass reports giga-units/s,
    // so feed it matrix rows and rescale to rows/s.
    const auto nrows = static_cast<std::size_t>(csr.rows);
    for (int round = 0; round < 3; ++round) {
      row.ell_rps = std::max(
          row.ell_rps, 1e9 * time_pass(nrows, ell_decode_expect, ell_decode,
                                       min_seconds_per_cell));
      row.bcsr_rps = std::max(
          row.bcsr_rps, 1e9 * time_pass(nrows, bcsr_decode_expect,
                                        bcsr_decode, min_seconds_per_cell));
      row.ell_spmv_rps = std::max(
          row.ell_spmv_rps,
          1e9 * time_pass(nrows, ell_expect, ell_pass, min_seconds_per_cell));
      row.bcsr_spmv_rps = std::max(
          row.bcsr_spmv_rps,
          1e9 * time_pass(nrows, bcsr_expect,
                          [&] { return bcsr_pass_with(bcsr_kernels); },
                          min_seconds_per_cell));
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

AnsDecodeBenchCase make_ans_decode_bench_case(int sym_len, index_t nrows,
                                              std::uint64_t seed) {
  sparse::GenSpec spec;
  spec.rows = nrows;
  spec.cols = nrows;
  spec.mu = 24.0;
  spec.sigma = 4.0;
  spec.aligned_blocks = true;
  spec.run = 4;
  spec.seed = seed;
  const sparse::Ell ell = sparse::csr_to_ell(sparse::generate(spec));
  core::BroAnsOptions opts;
  opts.sym_len = sym_len;
  AnsDecodeBenchCase c;
  c.coded =
      std::make_shared<const core::BroAns>(core::BroAns::compress(ell, opts));
  for (const auto& s : c.coded->slices())
    c.deltas += static_cast<std::size_t>(s.height) *
                static_cast<std::size_t>(s.num_col);
  c.expect = ans_suite_checksum(*c.coded);
  return c;
}

std::uint64_t ans_decode_pass(const AnsDecodeBenchCase& c, SimdIsa isa) {
  const core::BroAns& a = *c.coded;
  const bool w32 = a.options().sym_len == 32;
  const AnsSimdKernelSet* set = ans_simd_kernel_set(isa);
  const auto vec = set ? (w32 ? set->checksum32 : set->checksum64) : nullptr;
  std::uint64_t sum = 0;
  for (const auto& s : a.slices()) {
    if (s.height <= 0 || s.num_col <= 0) continue;
    sum += vec ? vec(a, s)
               : (w32 ? detail::ans_decode_checksum<std::uint32_t>(a, s)
                      : detail::ans_decode_checksum<std::uint64_t>(a, s));
  }
  return sum;
}

BcsrDecodeBenchCase make_bcsr_decode_bench_case(int sym_len, index_t panels,
                                                std::uint64_t seed) {
  const sparse::Csr csr = sparse::generate_truss2d(panels, /*stories=*/6,
                                                   seed);
  core::BroBcsrOptions opts;
  opts.sym_len = sym_len;
  BcsrDecodeBenchCase c;
  c.coded = std::make_shared<const core::BroBcsr>(
      core::BroBcsr::compress(csr, opts));
  for (const auto& s : c.coded->slices())
    c.deltas += static_cast<std::size_t>(s.height) *
                static_cast<std::size_t>(s.num_col);
  c.expect = scalar_slices_checksum(c.coded->slices(),
                                    c.coded->options().sym_len);
  return c;
}

std::uint64_t bcsr_decode_pass(const BcsrDecodeBenchCase& c, SimdIsa isa) {
  const core::BroBcsr& a = *c.coded;
  if (isa == SimdIsa::kScalar)
    return scalar_slices_checksum(a.slices(), a.options().sym_len);
  const SimdKernelSet* set = simd_kernel_set(isa);
  BRO_CHECK_MSG(set != nullptr, "no SIMD kernel set for "
                                    << simd_isa_name(isa));
  return simd_slices_checksum(a.slices(), a.options().sym_len, *set);
}

} // namespace bro::kernels
