// Runtime ISA detection and SIMD-backend selection for the BRO decode
// kernels.
//
// The library is built without -march=native: every translation unit targets
// the baseline ABI except the two per-ISA kernel TUs (bro_decode_sse4.cpp,
// bro_decode_avx2.cpp), which are compiled with exactly their own target
// flag. Which of those kernel sets actually runs is decided here, once, at
// run time: the hardware probe (cpu_features), the link-time availability
// check (simd_isa_compiled — the per-ISA TUs collapse to stubs when the
// toolchain cannot target x86) and the BRO_SIMD env override meet in
// active_simd_isa(), which plan-time kernel selection consults. One binary
// therefore stays portable across CI runners and user machines while still
// using the widest vectors the host offers.
#pragma once

#include <optional>
#include <string_view>

namespace bro::kernels {

/// The SIMD instruction sets the decode backend is built for, in strictly
/// increasing capability order (resolution clamps a request downward, so the
/// enum order is load-bearing).
enum class SimdIsa : int {
  kScalar = 0, // baseline-ABI kernels from bro_decode.h
  kSse4 = 1,   // 128-bit lanes (4 x u32 / 2 x u64)
  kAvx2 = 2,   // 256-bit lanes (8 x u32 / 4 x u64)
};

/// "scalar", "sse4" or "avx2".
const char* simd_isa_name(SimdIsa isa);

/// Inverse of simd_isa_name; nullopt for anything unknown (callers treat an
/// unparsable BRO_SIMD as unset rather than failing).
std::optional<SimdIsa> parse_simd_isa(std::string_view name);

/// What the host CPU reports. Probed once and cached.
struct CpuFeatures {
  bool sse4 = false;
  bool avx2 = false;
};
CpuFeatures cpu_features();

/// Whether the kernel set for `isa` was compiled into this binary (false on
/// toolchains that cannot target the ISA; kScalar is always available).
bool simd_isa_compiled(SimdIsa isa);

/// Whether this process can actually execute the kernel set for `isa`:
/// compiled in AND supported by the host CPU (kScalar always is). This is
/// the gate tests and benches use before forcing an ISA.
bool simd_isa_runnable(SimdIsa isa);

/// The widest ISA that is both supported by the host and compiled in.
SimdIsa best_simd_isa();

/// The BRO_SIMD environment override, read and parsed once per process:
/// nullopt when unset or unparsable. simd_env_raw() returns the raw value
/// (nullptr when unset) so diagnostics can show what was actually typed.
std::optional<SimdIsa> simd_env_override();
const char* simd_env_raw();

/// The resolution rule, exposed pure for tests: an explicit request is
/// honored but clamped to `best` (asking for AVX2 on an SSE4-only host gets
/// SSE4, never an illegal-instruction fault); no request takes `best`.
SimdIsa resolve_simd_isa(std::optional<SimdIsa> request, SimdIsa best);

/// The ISA plan-time kernel selection uses right now: a ScopedSimdIsa
/// override if one is live, else the BRO_SIMD request, else best_simd_isa()
/// — always clamped to what this host and binary can run.
SimdIsa active_simd_isa();

/// RAII override of active_simd_isa() — the A/B seam the differential
/// fuzzer's SIMD sweep and the ISA-sweep tests use to force a dispatch
/// choice mid-process. Process-global (a relaxed atomic), nests by
/// save/restore, and is not meant for use while another thread is planning.
class ScopedSimdIsa {
 public:
  explicit ScopedSimdIsa(SimdIsa isa);
  ~ScopedSimdIsa();
  ScopedSimdIsa(const ScopedSimdIsa&) = delete;
  ScopedSimdIsa& operator=(const ScopedSimdIsa&) = delete;

 private:
  int prev_;
};

} // namespace bro::kernels
