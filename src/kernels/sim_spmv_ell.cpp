// Simulator kernels for ELLPACK, ELLPACK-R and BRO-ELL (thread-per-row).
#include <algorithm>
#include <array>

#include "bits/delta.h"
#include "kernels/sim_spmv.h"
#include "util/error.h"

namespace bro::kernels {

namespace {

constexpr int kBlockSize = 256; // h: threads per block (paper §4)
constexpr int kWarp = 32;

using AddrArray = std::array<std::uint64_t, kWarp>;

} // namespace

SimResult combine(SimResult first, const SimResult& second) {
  first.stats.dram_read_bytes += second.stats.dram_read_bytes;
  first.stats.dram_write_bytes += second.stats.dram_write_bytes;
  first.stats.l2_hits += second.stats.l2_hits;
  first.stats.l2_misses += second.stats.l2_misses;
  first.stats.tex_hits += second.stats.tex_hits;
  first.stats.tex_misses += second.stats.tex_misses;
  first.stats.warp_loads += second.stats.warp_loads;
  first.stats.mem_transactions += second.stats.mem_transactions;
  first.stats.dp_flops += second.stats.dp_flops;
  first.stats.int_ops += second.stats.int_ops;
  first.stats.shfl_ops += second.stats.shfl_ops;

  first.time.seconds += second.time.seconds;
  first.time.mem_seconds += second.time.mem_seconds;
  first.time.compute_seconds += second.time.compute_seconds;
  first.time.memory_bound = first.time.mem_seconds >= first.time.compute_seconds;
  first.launches += second.launches;
  return first;
}

SimResult sim_spmv_ell(const sim::DeviceSpec& dev, const sparse::Ell& a,
                       std::span<const value_t> x) {
  BRO_CHECK(x.size() == static_cast<std::size_t>(a.cols));
  const index_t m = a.rows;
  const std::uint64_t blocks =
      std::max<std::uint64_t>(1, (static_cast<std::uint64_t>(m) + kBlockSize - 1) /
                                     kBlockSize);
  sim::SimContext sim(dev, {blocks, kBlockSize});
  const auto col_arr = sim.alloc(a.entries(), sizeof(index_t));
  const auto val_arr = sim.alloc(a.entries(), sizeof(value_t));
  const auto x_arr = sim.alloc(x.size(), sizeof(value_t));
  const auto y_arr = sim.alloc(static_cast<std::uint64_t>(m), sizeof(value_t));

  SimResult res;
  res.y.assign(static_cast<std::size_t>(m), value_t{0});
  std::size_t nnz = 0;

  AddrArray addrs{};
  for (std::uint64_t b = 0; b < blocks; ++b) {
    auto blk = sim.begin_block(b);
    for (int w = 0; w < kBlockSize / kWarp; ++w) {
      const index_t r0 = static_cast<index_t>(b) * kBlockSize + w * kWarp;
      if (r0 >= m) break;
      const int lanes = std::min<index_t>(kWarp, m - r0);

      for (index_t j = 0; j < a.width; ++j) {
        // Load the column-index column slice for this warp (coalesced:
        // column-major layout puts the warp's rows contiguously).
        for (int l = 0; l < kWarp; ++l)
          addrs[static_cast<std::size_t>(l)] =
              l < lanes ? col_arr.addr(static_cast<std::uint64_t>(j) * m + r0 + l)
                        : sim::kInactive;
        blk.load_global(addrs, sizeof(index_t));
        blk.add_int_ops(static_cast<std::uint64_t>(lanes) * kEllIterIntOps);

        // Lanes with valid (non-padding) entries load vals and x, then FMA.
        AddrArray vaddrs{};
        AddrArray xaddrs{};
        int active = 0;
        for (int l = 0; l < kWarp; ++l) {
          vaddrs[static_cast<std::size_t>(l)] = sim::kInactive;
          xaddrs[static_cast<std::size_t>(l)] = sim::kInactive;
          if (l >= lanes) continue;
          const index_t r = r0 + l;
          const index_t c = a.col_at(r, j);
          if (c == sparse::kPad) continue;
          vaddrs[static_cast<std::size_t>(l)] =
              val_arr.addr(static_cast<std::uint64_t>(j) * m + r);
          xaddrs[static_cast<std::size_t>(l)] =
              x_arr.addr(static_cast<std::uint64_t>(c));
          res.y[static_cast<std::size_t>(r)] +=
              a.val_at(r, j) * x[static_cast<std::size_t>(c)];
          ++active;
          ++nnz;
        }
        if (active > 0) {
          blk.load_global(vaddrs, sizeof(value_t));
          blk.load_texture(xaddrs, sizeof(value_t));
          blk.add_dp_fma(static_cast<std::uint64_t>(active));
        }
      }

      for (int l = 0; l < kWarp; ++l)
        addrs[static_cast<std::size_t>(l)] =
            l < lanes ? y_arr.addr(static_cast<std::uint64_t>(r0 + l))
                      : sim::kInactive;
      blk.store_global(addrs, sizeof(value_t));
    }
  }

  res.stats = sim.stats();
  res.time = sim.estimate(2.0 * static_cast<double>(nnz));
  return res;
}

SimResult sim_spmv_ellr(const sim::DeviceSpec& dev, const sparse::EllR& a,
                        std::span<const value_t> x) {
  BRO_CHECK(x.size() == static_cast<std::size_t>(a.ell.cols));
  const index_t m = a.ell.rows;
  const std::uint64_t blocks =
      std::max<std::uint64_t>(1, (static_cast<std::uint64_t>(m) + kBlockSize - 1) /
                                     kBlockSize);
  sim::SimContext sim(dev, {blocks, kBlockSize});
  const auto col_arr = sim.alloc(a.ell.entries(), sizeof(index_t));
  const auto val_arr = sim.alloc(a.ell.entries(), sizeof(value_t));
  const auto len_arr = sim.alloc(static_cast<std::uint64_t>(m), sizeof(index_t));
  const auto x_arr = sim.alloc(x.size(), sizeof(value_t));
  const auto y_arr = sim.alloc(static_cast<std::uint64_t>(m), sizeof(value_t));

  SimResult res;
  res.y.assign(static_cast<std::size_t>(m), value_t{0});
  std::size_t nnz = 0;

  AddrArray addrs{};
  for (std::uint64_t b = 0; b < blocks; ++b) {
    auto blk = sim.begin_block(b);
    for (int w = 0; w < kBlockSize / kWarp; ++w) {
      const index_t r0 = static_cast<index_t>(b) * kBlockSize + w * kWarp;
      if (r0 >= m) break;
      const int lanes = std::min<index_t>(kWarp, m - r0);

      // Load row lengths for the warp.
      index_t warp_max = 0;
      for (int l = 0; l < kWarp; ++l) {
        addrs[static_cast<std::size_t>(l)] =
            l < lanes ? len_arr.addr(static_cast<std::uint64_t>(r0 + l))
                      : sim::kInactive;
        if (l < lanes)
          warp_max = std::max(warp_max,
                              a.row_length[static_cast<std::size_t>(r0 + l)]);
      }
      blk.load_global(addrs, sizeof(index_t));

      // The warp iterates to the longest row among its lanes only
      // (ELLPACK-R's saving over ELLPACK).
      for (index_t j = 0; j < warp_max; ++j) {
        AddrArray caddrs{};
        AddrArray vaddrs{};
        AddrArray xaddrs{};
        int active = 0;
        for (int l = 0; l < kWarp; ++l) {
          caddrs[static_cast<std::size_t>(l)] = sim::kInactive;
          vaddrs[static_cast<std::size_t>(l)] = sim::kInactive;
          xaddrs[static_cast<std::size_t>(l)] = sim::kInactive;
          if (l >= lanes) continue;
          const index_t r = r0 + l;
          if (j >= a.row_length[static_cast<std::size_t>(r)]) continue;
          const index_t c = a.ell.col_at(r, j);
          caddrs[static_cast<std::size_t>(l)] =
              col_arr.addr(static_cast<std::uint64_t>(j) * m + r);
          vaddrs[static_cast<std::size_t>(l)] =
              val_arr.addr(static_cast<std::uint64_t>(j) * m + r);
          xaddrs[static_cast<std::size_t>(l)] =
              x_arr.addr(static_cast<std::uint64_t>(c));
          res.y[static_cast<std::size_t>(r)] +=
              a.ell.val_at(r, j) * x[static_cast<std::size_t>(c)];
          ++active;
          ++nnz;
        }
        blk.load_global(caddrs, sizeof(index_t));
        blk.load_global(vaddrs, sizeof(value_t));
        blk.load_texture(xaddrs, sizeof(value_t));
        blk.add_dp_fma(static_cast<std::uint64_t>(active));
        blk.add_int_ops(static_cast<std::uint64_t>(active) * kEllRIterIntOps);
      }

      for (int l = 0; l < kWarp; ++l)
        addrs[static_cast<std::size_t>(l)] =
            l < lanes ? y_arr.addr(static_cast<std::uint64_t>(r0 + l))
                      : sim::kInactive;
      blk.store_global(addrs, sizeof(value_t));
    }
  }

  res.stats = sim.stats();
  res.time = sim.estimate(2.0 * static_cast<double>(nnz));
  return res;
}

SimResult sim_spmv_bro_ell(const sim::DeviceSpec& dev, const core::BroEll& a,
                           std::span<const value_t> x) {
  BRO_CHECK(x.size() == static_cast<std::size_t>(a.cols()));
  const index_t m = a.rows();
  const int h = a.options().slice_height;
  const int sym_bytes = a.options().sym_len / 8;
  const std::uint64_t blocks = std::max<std::uint64_t>(1, a.slices().size());
  sim::SimContext sim(dev, {blocks, h});

  const auto val_arr = sim.alloc(a.vals().size(), sizeof(value_t));
  const auto x_arr = sim.alloc(x.size(), sizeof(value_t));
  const auto y_arr = sim.alloc(static_cast<std::uint64_t>(m), sizeof(value_t));
  // One virtual region per slice stream keeps the addressing simple; the
  // traffic is identical to a single concatenated stream.
  std::vector<sim::VirtualArray> stream_arrs;
  stream_arrs.reserve(a.slices().size());
  for (const auto& s : a.slices())
    stream_arrs.push_back(sim.alloc(s.stream.total_symbols(), sym_bytes));

  SimResult res;
  res.y.assign(static_cast<std::size_t>(m), value_t{0});
  std::size_t nnz = 0;

  AddrArray addrs{};
  for (std::size_t si = 0; si < a.slices().size(); ++si) {
    const core::BroEllSlice& slice = a.slices()[si];
    auto blk = sim.begin_block(si);
    const auto& stream_arr = stream_arrs[si];

    const int warps = (slice.height + kWarp - 1) / kWarp;
    for (int w = 0; w < warps; ++w) {
      const index_t t0 = w * kWarp; // thread index within the slice
      const int lanes = std::min<index_t>(kWarp, slice.height - t0);

      // Per-lane functional decoders (Algorithm 1 state).
      std::vector<core::RowStreamDecoder> dec;
      dec.reserve(static_cast<std::size_t>(lanes));
      for (int l = 0; l < lanes; ++l)
        dec.emplace_back(slice, t0 + l, a.options().sym_len);
      std::vector<index_t> col(static_cast<std::size_t>(lanes), -1);

      int rb = 0; // warp-uniform remaining-bit counter (mirrors the lanes)
      index_t loads = 0;
      for (index_t c = 0; c < slice.num_col; ++c) {
        const int bwidth = slice.bit_alloc[static_cast<std::size_t>(c)];
        // bit_alloc lives in constant memory: broadcast, 1 int op.
        blk.add_int_ops(static_cast<std::uint64_t>(lanes));

        const bool need_load = bwidth > rb;
        if (need_load) {
          // Warp-uniform symbol load: comp_str[loads*h + t].
          for (int l = 0; l < kWarp; ++l)
            addrs[static_cast<std::size_t>(l)] =
                l < lanes
                    ? stream_arr.addr(static_cast<std::uint64_t>(loads) * h +
                                      t0 + l)
                    : sim::kInactive;
          blk.load_global(addrs, sym_bytes);
          rb = a.options().sym_len - (bwidth - rb);
          ++loads;
        } else {
          rb -= bwidth;
        }
        blk.add_int_ops(static_cast<std::uint64_t>(lanes) * kBroDecodeIntOps);

        AddrArray vaddrs{};
        AddrArray xaddrs{};
        int active = 0;
        for (int l = 0; l < kWarp; ++l) {
          vaddrs[static_cast<std::size_t>(l)] = sim::kInactive;
          xaddrs[static_cast<std::size_t>(l)] = sim::kInactive;
          if (l >= lanes) continue;
          const std::uint32_t d = dec[static_cast<std::size_t>(l)].next(bwidth);
          if (d == bits::kInvalidDelta) continue;
          auto& cl = col[static_cast<std::size_t>(l)];
          cl += static_cast<index_t>(d);
          const index_t r = slice.first_row + t0 + l;
          vaddrs[static_cast<std::size_t>(l)] =
              val_arr.addr(static_cast<std::uint64_t>(c) * m + r);
          xaddrs[static_cast<std::size_t>(l)] =
              x_arr.addr(static_cast<std::uint64_t>(cl));
          res.y[static_cast<std::size_t>(r)] +=
              a.val_at(r, c) * x[static_cast<std::size_t>(cl)];
          ++active;
          ++nnz;
        }
        if (active > 0) {
          blk.load_global(vaddrs, sizeof(value_t));
          blk.load_texture(xaddrs, sizeof(value_t));
          blk.add_dp_fma(static_cast<std::uint64_t>(active));
        }
      }

      for (int l = 0; l < kWarp; ++l)
        addrs[static_cast<std::size_t>(l)] =
            l < lanes ? y_arr.addr(
                            static_cast<std::uint64_t>(slice.first_row + t0 + l))
                      : sim::kInactive;
      blk.store_global(addrs, sizeof(value_t));
    }
  }

  res.stats = sim.stats();
  res.time = sim.estimate(2.0 * static_cast<double>(nnz));
  return res;
}

} // namespace bro::kernels
