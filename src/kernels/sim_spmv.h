// GPU-simulator SpMV kernels for every storage format the paper evaluates.
//
// Each kernel walks the launch grid warp-by-warp exactly as the CUDA kernels
// of Bell & Garland / the paper do, computes the real numerical result, and
// reports its memory/instruction trace to a SimContext. The returned
// TimeEstimate is what the benches plot as GFlop/s; the paper's GFlop/s are
// 2*nnz / time (padding work does not count as useful flops).
//
// Instruction-cost constants below are the model's calibration knobs. They
// set the relative weight of index arithmetic, Algorithm-1 decoding and the
// COO segmented scan against FMA and load-issue work; the Fig. 3 breakeven
// points (space savings needed before BRO-ELL beats ELLPACK) are the
// observable they calibrate.
#pragma once

#include <span>
#include <vector>

#include "core/bro_coo.h"
#include "core/bro_ell.h"
#include "core/bro_hyb.h"
#include "gpusim/sim.h"
#include "sparse/coo.h"
#include "sparse/ell.h"
#include "sparse/hyb.h"

namespace bro::kernels {

// --- calibration constants (per thread, per inner-loop iteration) ---
inline constexpr int kEllIterIntOps = 2;     // address calc + padding test
inline constexpr int kEllRIterIntOps = 2;    // address calc + loop bound
inline constexpr int kBroDecodeIntOps = 9;   // Algorithm 1 lines 5-18
inline constexpr int kCooIterIntOps = 3;     // index calc + segment compare
inline constexpr int kCooScanSteps = 5;      // log2(warp) segmented-scan steps
inline constexpr int kBroCooDecodeIntOps = 6;

struct SimResult {
  sim::KernelStats stats;
  sim::TimeEstimate time;
  std::vector<value_t> y;
  int launches = 1;
};

/// Sum of two sequential kernel launches (used by the HYB variants).
SimResult combine(SimResult first, const SimResult& second);

/// Device-matched BRO-COO compression options: pick the interval length so
/// the warp count fills the device (the same sizing rule the COO kernel
/// uses), clamped to [1, 64] iterations per lane.
core::BroCooOptions bro_coo_options_for(std::size_t nnz,
                                        const sim::DeviceSpec& dev);

SimResult sim_spmv_ell(const sim::DeviceSpec& dev, const sparse::Ell& a,
                       std::span<const value_t> x);

SimResult sim_spmv_ellr(const sim::DeviceSpec& dev, const sparse::EllR& a,
                        std::span<const value_t> x);

SimResult sim_spmv_bro_ell(const sim::DeviceSpec& dev, const core::BroEll& a,
                           std::span<const value_t> x);

SimResult sim_spmv_coo(const sim::DeviceSpec& dev, const sparse::Coo& a,
                       std::span<const value_t> x);

/// CSR baselines from Bell & Garland (paper §2/§5 background): thread-per-row
/// (poorly coalesced by construction) and warp-per-row variants.
SimResult sim_spmv_csr_scalar(const sim::DeviceSpec& dev, const sparse::Csr& a,
                              std::span<const value_t> x);
SimResult sim_spmv_csr_vector(const sim::DeviceSpec& dev, const sparse::Csr& a,
                              std::span<const value_t> x);

SimResult sim_spmv_bro_coo(const sim::DeviceSpec& dev, const core::BroCoo& a,
                           std::span<const value_t> x);

SimResult sim_spmv_hyb(const sim::DeviceSpec& dev, const sparse::Hyb& a,
                       std::span<const value_t> x);

SimResult sim_spmv_bro_hyb(const sim::DeviceSpec& dev, const core::BroHyb& a,
                           std::span<const value_t> x);

// Internal entry points that accumulate into an existing y (the COO halves
// of the HYB kernels). Exposed for the HYB implementations and tests.
SimResult sim_spmv_coo_accumulate(const sim::DeviceSpec& dev,
                                  const sparse::Coo& a,
                                  std::span<const value_t> x,
                                  std::span<value_t> y);
SimResult sim_spmv_bro_coo_accumulate(const sim::DeviceSpec& dev,
                                      const core::BroCoo& a,
                                      std::span<const value_t> x,
                                      std::span<value_t> y);

} // namespace bro::kernels
