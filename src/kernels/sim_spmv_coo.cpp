// Simulator kernels for COO and BRO-COO (warp-per-interval with segmented
// reduction, following the CUSP implementation the paper builds on).
//
// Both kernels charge the warp-level segmented scan (log2(32) = 5
// shuffle+add steps per element) and a second reduction launch that combines
// the per-warp carry-outs — the overheads the paper cites when explaining
// why BRO-COO speedups are smaller than BRO-ELL's (§4.2.3).
#include <algorithm>
#include <array>

#include "kernels/sim_spmv.h"
#include "util/error.h"

namespace bro::kernels {

namespace {

constexpr int kWarp = 32;
constexpr int kBlockSize = 256;

using AddrArray = std::array<std::uint64_t, kWarp>;

/// Charge the second "carry reduction" kernel: one (row, value) pair per
/// warp is read back, segment-reduced and added to y.
void charge_carry_reduction(const sim::DeviceSpec& dev, std::uint64_t warps,
                            SimResult& res) {
  sim::SimContext sim(dev, {std::max<std::uint64_t>(1, (warps + kBlockSize - 1) /
                                                           kBlockSize),
                            kBlockSize});
  const auto carry_rows = sim.alloc(warps, sizeof(index_t));
  const auto carry_vals = sim.alloc(warps, sizeof(value_t));
  const auto y_arr = sim.alloc(warps, sizeof(value_t));

  AddrArray addrs{};
  for (std::uint64_t w0 = 0; w0 < warps; w0 += kWarp) {
    auto blk = sim.begin_block(w0 / kBlockSize);
    const int lanes = static_cast<int>(std::min<std::uint64_t>(kWarp, warps - w0));
    for (int l = 0; l < kWarp; ++l)
      addrs[static_cast<std::size_t>(l)] =
          l < lanes ? carry_rows.addr(w0 + static_cast<std::uint64_t>(l))
                    : sim::kInactive;
    blk.load_global(addrs, sizeof(index_t));
    for (int l = 0; l < kWarp; ++l)
      if (l < lanes)
        addrs[static_cast<std::size_t>(l)] =
            carry_vals.addr(w0 + static_cast<std::uint64_t>(l));
    blk.load_global(addrs, sizeof(value_t));
    blk.add_shfl_ops(static_cast<std::uint64_t>(lanes) * kCooScanSteps);
    blk.add_dp_fma(static_cast<std::uint64_t>(lanes) * kCooScanSteps);
    for (int l = 0; l < kWarp; ++l)
      if (l < lanes)
        addrs[static_cast<std::size_t>(l)] =
            y_arr.addr(w0 + static_cast<std::uint64_t>(l));
    blk.atomic_add_global(addrs, sizeof(value_t));
  }
  SimResult reduction;
  reduction.stats = sim.stats();
  reduction.time = sim.estimate(0.0);
  res = combine(std::move(res), reduction);
}

} // namespace

core::BroCooOptions bro_coo_options_for(std::size_t nnz,
                                        const sim::DeviceSpec& dev) {
  core::BroCooOptions opts;
  const std::uint64_t target_warps =
      static_cast<std::uint64_t>(dev.sm_count) *
      static_cast<std::uint64_t>(dev.max_warps_per_sm);
  const std::uint64_t per_lane = std::max<std::uint64_t>(
      1, (nnz + target_warps * 32 - 1) / (target_warps * 32));
  opts.interval_cols = static_cast<int>(std::min<std::uint64_t>(64, per_lane));
  return opts;
}

SimResult sim_spmv_coo_accumulate(const sim::DeviceSpec& dev,
                                  const sparse::Coo& a,
                                  std::span<const value_t> x,
                                  std::span<value_t> y) {
  BRO_CHECK(x.size() == static_cast<std::size_t>(a.cols));
  BRO_CHECK(y.size() == static_cast<std::size_t>(a.rows));

  SimResult res;
  res.y.assign(y.begin(), y.end());
  if (a.nnz() == 0) {
    sim::SimContext sim(dev, {1, kBlockSize});
    res.time = sim.estimate(0.0);
    return res;
  }

  // Interval sizing: fill the device with resident warps, as CUSP does.
  const std::uint64_t nnz = a.nnz();
  const std::uint64_t target_warps =
      static_cast<std::uint64_t>(dev.sm_count) *
      static_cast<std::uint64_t>(dev.max_warps_per_sm);
  const std::uint64_t per_lane = std::max<std::uint64_t>(
      1, (nnz + target_warps * kWarp - 1) / (target_warps * kWarp));
  const std::uint64_t interval = per_lane * kWarp;
  const std::uint64_t warps = (nnz + interval - 1) / interval;
  const std::uint64_t blocks =
      std::max<std::uint64_t>(1, (warps * kWarp + kBlockSize - 1) / kBlockSize);

  sim::SimContext sim(dev, {blocks, kBlockSize});
  const auto row_arr = sim.alloc(nnz, sizeof(index_t));
  const auto col_arr = sim.alloc(nnz, sizeof(index_t));
  const auto val_arr = sim.alloc(nnz, sizeof(value_t));
  const auto x_arr = sim.alloc(x.size(), sizeof(value_t));
  const auto y_arr =
      sim.alloc(static_cast<std::uint64_t>(a.rows), sizeof(value_t));

  AddrArray addrs{};
  for (std::uint64_t w = 0; w < warps; ++w) {
    auto blk = sim.begin_block(w * kWarp / kBlockSize);
    const std::uint64_t base = w * interval;
    const std::uint64_t end = std::min<std::uint64_t>(base + interval, nnz);

    for (std::uint64_t chunk = base; chunk < end; chunk += kWarp) {
      const int lanes = static_cast<int>(std::min<std::uint64_t>(kWarp, end - chunk));
      // Coalesced loads of row, col, val for the chunk.
      for (int l = 0; l < kWarp; ++l)
        addrs[static_cast<std::size_t>(l)] =
            l < lanes ? row_arr.addr(chunk + static_cast<std::uint64_t>(l))
                      : sim::kInactive;
      blk.load_global(addrs, sizeof(index_t));
      for (int l = 0; l < lanes; ++l)
        addrs[static_cast<std::size_t>(l)] =
            col_arr.addr(chunk + static_cast<std::uint64_t>(l));
      blk.load_global(addrs, sizeof(index_t));
      for (int l = 0; l < lanes; ++l)
        addrs[static_cast<std::size_t>(l)] =
            val_arr.addr(chunk + static_cast<std::uint64_t>(l));
      blk.load_global(addrs, sizeof(value_t));

      // x gathers.
      AddrArray xaddrs{};
      for (int l = 0; l < kWarp; ++l)
        xaddrs[static_cast<std::size_t>(l)] =
            l < lanes ? x_arr.addr(static_cast<std::uint64_t>(
                            a.col_idx[chunk + static_cast<std::uint64_t>(l)]))
                      : sim::kInactive;
      blk.load_texture(xaddrs, sizeof(value_t));

      blk.add_dp_fma(static_cast<std::uint64_t>(lanes));
      blk.add_int_ops(static_cast<std::uint64_t>(lanes) * kCooIterIntOps);
      // Segmented scan across the warp.
      blk.add_shfl_ops(static_cast<std::uint64_t>(lanes) * kCooScanSteps);
      blk.add_dp_fma(static_cast<std::uint64_t>(lanes) * kCooScanSteps);

      // Functional accumulation + segment-boundary stores.
      AddrArray baddrs{};
      int boundaries = 0;
      for (int l = 0; l < kWarp; ++l)
        baddrs[static_cast<std::size_t>(l)] = sim::kInactive;
      for (int l = 0; l < lanes; ++l) {
        const std::uint64_t i = chunk + static_cast<std::uint64_t>(l);
        res.y[static_cast<std::size_t>(a.row_idx[i])] +=
            a.vals[i] * x[static_cast<std::size_t>(a.col_idx[i])];
        const bool last_of_segment =
            (i + 1 == end) || (a.row_idx[i + 1] != a.row_idx[i]);
        if (last_of_segment) {
          baddrs[static_cast<std::size_t>(l)] =
              y_arr.addr(static_cast<std::uint64_t>(a.row_idx[i]));
          ++boundaries;
        }
      }
      if (boundaries > 0) blk.store_global(baddrs, sizeof(value_t));
    }
  }

  res.stats = sim.stats();
  res.time = sim.estimate(2.0 * static_cast<double>(nnz));
  charge_carry_reduction(dev, warps, res);
  // combine() overwrote the useful-flops-based gflops; recompute.
  res.time.gflops = 2.0 * static_cast<double>(nnz) / res.time.seconds / 1e9;
  return res;
}

SimResult sim_spmv_coo(const sim::DeviceSpec& dev, const sparse::Coo& a,
                       std::span<const value_t> x) {
  std::vector<value_t> y(static_cast<std::size_t>(a.rows), value_t{0});
  return sim_spmv_coo_accumulate(dev, a, x, y);
}

SimResult sim_spmv_bro_coo_accumulate(const sim::DeviceSpec& dev,
                                      const core::BroCoo& a,
                                      std::span<const value_t> x,
                                      std::span<value_t> y) {
  BRO_CHECK(x.size() == static_cast<std::size_t>(a.cols()));
  BRO_CHECK(y.size() == static_cast<std::size_t>(a.rows()));

  SimResult res;
  res.y.assign(y.begin(), y.end());
  if (a.nnz() == 0) {
    sim::SimContext sim(dev, {1, kBlockSize});
    res.time = sim.estimate(0.0);
    return res;
  }

  const int w = a.options().warp_size;
  BRO_CHECK_MSG(w == kWarp, "simulator assumes 32-lane intervals");
  const int sym_bytes = a.options().sym_len / 8;
  const std::uint64_t warps = a.intervals().size();
  const std::uint64_t blocks =
      std::max<std::uint64_t>(1, (warps * kWarp + kBlockSize - 1) / kBlockSize);

  sim::SimContext sim(dev, {blocks, kBlockSize});
  const auto col_arr = sim.alloc(a.padded_nnz(), sizeof(index_t));
  const auto val_arr = sim.alloc(a.padded_nnz(), sizeof(value_t));
  const auto start_arr = sim.alloc(warps, sizeof(index_t));
  const auto x_arr = sim.alloc(x.size(), sizeof(value_t));
  const auto y_arr =
      sim.alloc(static_cast<std::uint64_t>(a.rows()), sizeof(value_t));
  std::vector<sim::VirtualArray> stream_arrs;
  stream_arrs.reserve(a.intervals().size());
  for (const auto& iv : a.intervals())
    stream_arrs.push_back(sim.alloc(iv.stream.total_symbols(), sym_bytes));

  // Decode once functionally (the per-lane decode cost is charged below).
  const std::vector<index_t> rows = a.decode_rows();
  const std::size_t interval_size =
      static_cast<std::size_t>(kWarp) *
      static_cast<std::size_t>(a.options().interval_cols);

  AddrArray addrs{};
  for (std::uint64_t iv_id = 0; iv_id < warps; ++iv_id) {
    const auto& iv = a.intervals()[iv_id];
    auto blk = sim.begin_block(iv_id * kWarp / kBlockSize);
    const std::uint64_t base = iv_id * interval_size;

    // Broadcast load of the interval's start row + bit width (one lane).
    for (int l = 0; l < kWarp; ++l) addrs[static_cast<std::size_t>(l)] = sim::kInactive;
    addrs[0] = start_arr.addr(iv_id);
    blk.load_global(addrs, sizeof(index_t));

    int rb = 0;
    index_t loads = 0;
    for (int c = 0; c < a.options().interval_cols; ++c) {
      const std::uint64_t chunk = base + static_cast<std::uint64_t>(c) * kWarp;

      // Warp-uniform symbol loads for the compressed row stream.
      if (iv.bits > rb) {
        for (int l = 0; l < kWarp; ++l)
          addrs[static_cast<std::size_t>(l)] = stream_arrs[iv_id].addr(
              static_cast<std::uint64_t>(loads) * kWarp +
              static_cast<std::uint64_t>(l));
        blk.load_global(addrs, sym_bytes);
        rb = a.options().sym_len - (iv.bits - rb);
        ++loads;
      } else {
        rb -= iv.bits;
      }
      blk.add_int_ops(kWarp * kBroCooDecodeIntOps);

      // col and val loads (uncompressed, coalesced).
      for (int l = 0; l < kWarp; ++l)
        addrs[static_cast<std::size_t>(l)] =
            col_arr.addr(chunk + static_cast<std::uint64_t>(l));
      blk.load_global(addrs, sizeof(index_t));
      for (int l = 0; l < kWarp; ++l)
        addrs[static_cast<std::size_t>(l)] =
            val_arr.addr(chunk + static_cast<std::uint64_t>(l));
      blk.load_global(addrs, sizeof(value_t));

      AddrArray xaddrs{};
      for (int l = 0; l < kWarp; ++l)
        xaddrs[static_cast<std::size_t>(l)] = x_arr.addr(
            static_cast<std::uint64_t>(a.col_idx()[chunk + static_cast<std::uint64_t>(l)]));
      blk.load_texture(xaddrs, sizeof(value_t));

      blk.add_dp_fma(kWarp);
      blk.add_shfl_ops(kWarp * kCooScanSteps);
      blk.add_dp_fma(kWarp * kCooScanSteps);

      AddrArray baddrs{};
      int boundaries = 0;
      for (int l = 0; l < kWarp; ++l) baddrs[static_cast<std::size_t>(l)] = sim::kInactive;
      for (int l = 0; l < kWarp; ++l) {
        const std::size_t i = chunk + static_cast<std::size_t>(l);
        res.y[static_cast<std::size_t>(rows[i])] +=
            a.vals()[i] * x[static_cast<std::size_t>(a.col_idx()[i])];
        const bool last_of_segment =
            (i + 1 == rows.size()) || (rows[i + 1] != rows[i]);
        if (last_of_segment) {
          baddrs[static_cast<std::size_t>(l)] =
              y_arr.addr(static_cast<std::uint64_t>(rows[i]));
          ++boundaries;
        }
      }
      if (boundaries > 0) blk.store_global(baddrs, sizeof(value_t));
    }
  }

  res.stats = sim.stats();
  res.time = sim.estimate(2.0 * static_cast<double>(a.nnz()));
  charge_carry_reduction(dev, warps, res);
  res.time.gflops = 2.0 * static_cast<double>(a.nnz()) / res.time.seconds / 1e9;
  return res;
}

SimResult sim_spmv_bro_coo(const sim::DeviceSpec& dev, const core::BroCoo& a,
                           std::span<const value_t> x) {
  std::vector<value_t> y(static_cast<std::size_t>(a.rows()), value_t{0});
  return sim_spmv_bro_coo_accumulate(dev, a, x, y);
}

} // namespace bro::kernels
