// SSE4.2 BRO-ANS entropy decode kernel set. SSE4 has neither gathers nor
// per-lane variable shifts, so there is nothing to vectorize in a tANS
// chain at this ISA; its contribution is chain count — all 8 lanes of a
// group in flight (the baseline interleaves 4) compiled under -msse4.2.
// Collapses to a stub exporting a null set when the toolchain cannot
// target the ISA, so non-x86 builds link unchanged.
#include "kernels/bro_decode_simd.h"

#if defined(__SSE4_2__)

#define BRO_SIMD_NS ans_sse4
#define BRO_SIMD_ISA ::bro::kernels::SimdIsa::kSse4
#include "kernels/bro_ans_decode_simd_impl.h"
#undef BRO_SIMD_NS
#undef BRO_SIMD_ISA

namespace bro::kernels::detail {
const AnsSimdKernelSet* const kAnsSimdSetSse4 = &ans_sse4::kAnsKernelSet;
} // namespace bro::kernels::detail

#else

namespace bro::kernels::detail {
const AnsSimdKernelSet* const kAnsSimdSetSse4 = nullptr;
} // namespace bro::kernels::detail

#endif
