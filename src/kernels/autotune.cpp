#include "kernels/autotune.h"

#include <algorithm>

#include "core/savings.h"
#include "kernels/sim_spmv_ext.h"
#include "sparse/convert.h"
#include "util/rng.h"

namespace bro::kernels {

TuneResult autotune(const sparse::Csr& csr, const sim::DeviceSpec& dev,
                    const TuneOptions& opts) {
  // A deterministic probe vector; the access pattern, not the values,
  // drives the simulated performance.
  Rng rng(2013);
  std::vector<value_t> x(static_cast<std::size_t>(csr.cols));
  for (auto& v : x) v = rng.uniform() * 2 - 1;

  const bool ell_viable =
      csr.nnz() > 0 &&
      static_cast<double>(csr.rows) * csr.max_row_length() <=
          opts.max_ell_expand * static_cast<double>(csr.nnz());

  TuneResult result;
  const auto add = [&](core::Format f, double gflops, double eta) {
    result.ranking.push_back({f, gflops, eta, true});
  };

  const sparse::Coo coo = sparse::csr_to_coo(csr);
  add(core::Format::kCoo, sim_spmv_coo(dev, coo, x).time.gflops, 0.0);
  {
    const auto bro =
        core::BroCoo::compress(coo, bro_coo_options_for(coo.nnz(), dev));
    add(core::Format::kBroCoo, sim_spmv_bro_coo(dev, bro, x).time.gflops,
        core::make_savings(bro.original_row_bytes(), bro.compressed_row_bytes())
            .eta());
  }

  if (ell_viable) {
    const sparse::Ell ell = sparse::csr_to_ell(csr);
    add(core::Format::kEll, sim_spmv_ell(dev, ell, x).time.gflops, 0.0);
    add(core::Format::kEllR,
        sim_spmv_ellr(dev, sparse::csr_to_ellr(csr), x).time.gflops, 0.0);
    const auto bro = core::BroEll::compress(ell);
    add(core::Format::kBroEll, sim_spmv_bro_ell(dev, bro, x).time.gflops,
        core::make_savings(bro.original_index_bytes(),
                           bro.compressed_index_bytes())
            .eta());
  } else {
    result.ranking.push_back({core::Format::kEll, 0, 0, false});
    result.ranking.push_back({core::Format::kEllR, 0, 0, false});
    result.ranking.push_back({core::Format::kBroEll, 0, 0, false});
  }

  {
    const sparse::Hyb hyb = sparse::csr_to_hyb(csr);
    add(core::Format::kHyb, sim_spmv_hyb(dev, hyb, x).time.gflops, 0.0);
    core::BroHybOptions ho;
    ho.width_override = hyb.ell.width;
    ho.coo = bro_coo_options_for(hyb.coo.nnz(), dev);
    const auto bro = core::BroHyb::compress(csr, ho);
    add(core::Format::kBroHyb, sim_spmv_bro_hyb(dev, bro, x).time.gflops,
        core::make_savings(bro.original_index_bytes(),
                           bro.compressed_index_bytes())
            .eta());
  }

  if (opts.include_extensions) {
    const auto bro = core::BroCsr::compress(csr);
    add(core::Format::kBroCsr, sim_spmv_bro_csr(dev, bro, x).time.gflops,
        core::make_savings(bro.original_index_bytes(),
                           bro.compressed_index_bytes())
            .eta());
  }

  std::stable_sort(result.ranking.begin(), result.ranking.end(),
                   [](const TuneEntry& a, const TuneEntry& b) {
                     if (a.applicable != b.applicable) return a.applicable;
                     return a.gflops > b.gflops;
                   });
  return result;
}

} // namespace bro::kernels
