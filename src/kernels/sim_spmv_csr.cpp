// CSR simulator kernels (Bell & Garland's scalar and vector variants).
//
// These are background/related-work baselines (paper §2, §5): CSR-scalar
// maps one thread per row — its col/val accesses stride by row length, so
// the coalescer splinters each warp access into many transactions. The
// vector variant maps a warp per row, restoring coalescing at the cost of a
// per-row shuffle reduction. The classic result (scalar << vector <= ELL
// for regular matrices) emerges from the transaction counts alone.
#include <algorithm>
#include <array>

#include "kernels/sim_spmv.h"
#include "util/error.h"

namespace bro::kernels {

namespace {

constexpr int kWarp = 32;
constexpr int kBlockSize = 256;

using AddrArray = std::array<std::uint64_t, kWarp>;

} // namespace

SimResult sim_spmv_csr_scalar(const sim::DeviceSpec& dev, const sparse::Csr& a,
                              std::span<const value_t> x) {
  BRO_CHECK(x.size() == static_cast<std::size_t>(a.cols));
  const index_t m = a.rows;
  const std::uint64_t blocks = std::max<std::uint64_t>(
      1, (static_cast<std::uint64_t>(m) + kBlockSize - 1) / kBlockSize);
  sim::SimContext sim(dev, {blocks, kBlockSize});
  const auto ptr_arr = sim.alloc(static_cast<std::uint64_t>(m) + 1, sizeof(index_t));
  const auto col_arr = sim.alloc(a.nnz(), sizeof(index_t));
  const auto val_arr = sim.alloc(a.nnz(), sizeof(value_t));
  const auto x_arr = sim.alloc(x.size(), sizeof(value_t));
  const auto y_arr = sim.alloc(static_cast<std::uint64_t>(m), sizeof(value_t));

  SimResult res;
  res.y.assign(static_cast<std::size_t>(m), value_t{0});

  AddrArray addrs{};
  for (std::uint64_t b = 0; b < blocks; ++b) {
    auto blk = sim.begin_block(b);
    const index_t b0 = static_cast<index_t>(b) * kBlockSize;
    const index_t block_rows = std::min<index_t>(kBlockSize, m - b0);
    if (block_rows <= 0) break;

    // row_ptr loads (coalesced, one pass per warp).
    for (index_t t0 = 0; t0 < block_rows; t0 += kWarp) {
      const int lanes = std::min<index_t>(kWarp, block_rows - t0);
      for (int l = 0; l < kWarp; ++l)
        addrs[static_cast<std::size_t>(l)] =
            l < lanes ? ptr_arr.addr(static_cast<std::uint64_t>(b0 + t0 + l))
                      : sim::kInactive;
      blk.load_global(addrs, sizeof(index_t));
    }

    index_t longest = 0;
    for (index_t t = 0; t < block_rows; ++t)
      longest = std::max(longest, a.row_length(b0 + t));

    // Iterations are simulated j-outer across all of the block's warps —
    // the order the hardware scheduler interleaves them — so a warp's
    // row-walk cannot monopolize the (shared) caches between iterations.
    // Lane l reads its own row's j-th element: addresses stride by the row
    // starts, so coalescing is poor by construction.
    for (index_t j = 0; j < longest; ++j) {
      for (index_t t0 = 0; t0 < block_rows; t0 += kWarp) {
        const int lanes = std::min<index_t>(kWarp, block_rows - t0);
        AddrArray caddrs{};
        AddrArray vaddrs{};
        AddrArray xaddrs{};
        int active = 0;
        for (int l = 0; l < kWarp; ++l) {
          caddrs[static_cast<std::size_t>(l)] = sim::kInactive;
          vaddrs[static_cast<std::size_t>(l)] = sim::kInactive;
          xaddrs[static_cast<std::size_t>(l)] = sim::kInactive;
          if (l >= lanes) continue;
          const index_t r = b0 + t0 + l;
          if (j >= a.row_length(r)) continue;
          const std::uint64_t p =
              static_cast<std::uint64_t>(a.row_ptr[r]) + static_cast<std::uint64_t>(j);
          const index_t c = a.col_idx[p];
          caddrs[static_cast<std::size_t>(l)] = col_arr.addr(p);
          vaddrs[static_cast<std::size_t>(l)] = val_arr.addr(p);
          xaddrs[static_cast<std::size_t>(l)] =
              x_arr.addr(static_cast<std::uint64_t>(c));
          res.y[static_cast<std::size_t>(r)] +=
              a.vals[p] * x[static_cast<std::size_t>(c)];
          ++active;
        }
        if (active > 0) {
          blk.load_global(caddrs, sizeof(index_t));
          blk.load_global(vaddrs, sizeof(value_t));
          blk.load_texture(xaddrs, sizeof(value_t));
          blk.add_dp_fma(static_cast<std::uint64_t>(active));
          blk.add_int_ops(static_cast<std::uint64_t>(active) * kEllIterIntOps);
        }
      }
    }

    for (index_t t0 = 0; t0 < block_rows; t0 += kWarp) {
      const int lanes = std::min<index_t>(kWarp, block_rows - t0);
      for (int l = 0; l < kWarp; ++l)
        addrs[static_cast<std::size_t>(l)] =
            l < lanes ? y_arr.addr(static_cast<std::uint64_t>(b0 + t0 + l))
                      : sim::kInactive;
      blk.store_global(addrs, sizeof(value_t));
    }
  }

  res.stats = sim.stats();
  res.time = sim.estimate(2.0 * static_cast<double>(a.nnz()));
  return res;
}

SimResult sim_spmv_csr_vector(const sim::DeviceSpec& dev, const sparse::Csr& a,
                              std::span<const value_t> x) {
  BRO_CHECK(x.size() == static_cast<std::size_t>(a.cols));
  const index_t m = a.rows;
  // One warp per row.
  const std::uint64_t warps = std::max<index_t>(1, m);
  const std::uint64_t blocks =
      (warps * kWarp + kBlockSize - 1) / kBlockSize;
  sim::SimContext sim(dev, {blocks, kBlockSize});
  const auto col_arr = sim.alloc(a.nnz(), sizeof(index_t));
  const auto val_arr = sim.alloc(a.nnz(), sizeof(value_t));
  const auto x_arr = sim.alloc(x.size(), sizeof(value_t));
  const auto y_arr = sim.alloc(static_cast<std::uint64_t>(m), sizeof(value_t));

  SimResult res;
  res.y.assign(static_cast<std::size_t>(m), value_t{0});

  AddrArray addrs{};
  for (index_t r = 0; r < m; ++r) {
    auto blk = sim.begin_block(static_cast<std::uint64_t>(r) * kWarp / kBlockSize);
    const index_t begin = a.row_ptr[r];
    const index_t end = a.row_ptr[r + 1];

    for (index_t chunk = begin; chunk < end; chunk += kWarp) {
      const int lanes = std::min<index_t>(kWarp, end - chunk);
      for (int l = 0; l < kWarp; ++l)
        addrs[static_cast<std::size_t>(l)] =
            l < lanes ? col_arr.addr(static_cast<std::uint64_t>(chunk + l))
                      : sim::kInactive;
      blk.load_global(addrs, sizeof(index_t));
      for (int l = 0; l < lanes; ++l)
        addrs[static_cast<std::size_t>(l)] =
            val_arr.addr(static_cast<std::uint64_t>(chunk + l));
      blk.load_global(addrs, sizeof(value_t));

      AddrArray xaddrs{};
      for (int l = 0; l < kWarp; ++l)
        xaddrs[static_cast<std::size_t>(l)] =
            l < lanes ? x_arr.addr(static_cast<std::uint64_t>(
                            a.col_idx[chunk + l]))
                      : sim::kInactive;
      blk.load_texture(xaddrs, sizeof(value_t));

      blk.add_dp_fma(static_cast<std::uint64_t>(lanes));
      blk.add_int_ops(static_cast<std::uint64_t>(lanes) * kEllIterIntOps);
      for (int l = 0; l < lanes; ++l) {
        const std::uint64_t p = static_cast<std::uint64_t>(chunk) +
                                static_cast<std::uint64_t>(l);
        res.y[static_cast<std::size_t>(r)] +=
            a.vals[p] * x[static_cast<std::size_t>(a.col_idx[p])];
      }
    }
    // Warp-level reduction of the 32 partials + single-lane store.
    blk.add_shfl_ops(kWarp * 5);
    blk.add_dp_fma(kWarp * 5);
    for (int l = 0; l < kWarp; ++l) addrs[static_cast<std::size_t>(l)] = sim::kInactive;
    addrs[0] = y_arr.addr(static_cast<std::uint64_t>(r));
    blk.store_global(addrs, sizeof(value_t));
  }

  res.stats = sim.stats();
  res.time = sim.estimate(2.0 * static_cast<double>(a.nnz()));
  return res;
}

} // namespace bro::kernels
