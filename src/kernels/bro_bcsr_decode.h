// BRO-BCSR decode kernels: one bit-unpacked block index feeds r*c FMAs.
//
// The scalar kernels are shape-templated (one instantiation per candidate
// block shape, a runtime-shape generic fallback) over both symbol lengths.
// The SSE4/AVX2 kernels vectorize the VALUE loop — the part no other BRO
// format can vectorize: a block's tile is contiguous, and because every
// candidate block width divides 8 the block's columns land in one aligned
// lane group of the 8-lane accumulator (core/bro_bcsr.h), so the vector
// slots ARE the contract's lanes. Index decode stays scalar: it is 1/(r*c)
// of the symbol traffic of BRO-ELL and no longer the bottleneck.
//
// Bitwise contract: every kernel here — scalar, SIMD, SpMM column j —
// performs, per output element, exactly the multiply/add/reduce sequence of
// core::BroBcsr::spmv. The differential fuzzer compares them with no
// tolerance.
//
// Per-ISA kernel sets follow the SimdKernelSet seam (bro_decode_simd.h):
// bro_bcsr_decode_{sse4,avx2}.cpp are the only BCSR TUs compiled with ISA
// target flags and export constant-initialized set pointers.
#pragma once

#include <span>
#include <vector>

#include "core/bro_bcsr.h"
#include "kernels/cpu_features.h"

namespace bro::kernels {

/// The kernel choice for one BRO-BCSR slice. Kernels take the parent matrix
/// plus a slice index (the slice's value-tile base lives in the parent).
/// Both pointers are always non-null after selection.
struct BroBcsrKernel {
  void (*spmv)(const core::BroBcsr& a, std::size_t slice_index,
               std::span<const value_t> x, std::span<value_t> y) = nullptr;
  void (*spmm)(const core::BroBcsr& a, std::size_t slice_index,
               std::span<const value_t> x, std::span<value_t> y,
               int k) = nullptr;
  SimdIsa isa = SimdIsa::kScalar;
};

/// What one ISA contributes to BCSR decode, indexed by block shape in
/// kBcsrCandidateShapes order (0=2x2, 1=4x4, 2=8x1, 3=1x8) and symbol
/// length. A null entry means that shape runs the scalar kernel. SpMM stays
/// on the scalar kernels for every ISA (the batch loop already amortizes
/// decode; entries exist for future use).
struct BcsrSimdKernelSet {
  SimdIsa isa = SimdIsa::kScalar;
  decltype(BroBcsrKernel::spmv) spmv32[4] = {};
  decltype(BroBcsrKernel::spmv) spmv64[4] = {};
};

/// The BCSR kernel set compiled for `isa`, or nullptr when the binary does
/// not carry one. Link-time availability only, as with simd_kernel_set().
const BcsrSimdKernelSet* bcsr_simd_kernel_set(SimdIsa isa);

/// Index of (br, bc) in kBcsrCandidateShapes, or -1 for other shapes.
int bcsr_shape_index(int br, int bc);

/// Per-slice kernel selection (all slices of one matrix share shape and
/// sym_len, so every entry is identical; the table keeps plan symmetry with
/// the other BRO formats). The ISA-free overload uses active_simd_isa().
std::vector<BroBcsrKernel> plan_bro_bcsr_kernels(const core::BroBcsr& a);
std::vector<BroBcsrKernel> plan_bro_bcsr_kernels(const core::BroBcsr& a,
                                                 SimdIsa isa);
BroBcsrKernel select_bro_bcsr_kernel(const core::BroBcsr& a, SimdIsa isa);

/// The runtime-shape scalar kernels as a dispatch entry: the bitwise-parity
/// baseline of the differential decode checks.
BroBcsrKernel generic_bro_bcsr_kernel(int sym_len);

/// BRO-BCSR SpMV with inline kernel selection (table-free convenience).
void native_spmv_bro_bcsr(const core::BroBcsr& a, std::span<const value_t> x,
                          std::span<value_t> y);

/// BRO-BCSR over plan-time kernel choices (aligned with slices()): the
/// branch- and allocation-free plan path.
void native_spmv_bro_bcsr(const core::BroBcsr& a,
                          std::span<const BroBcsrKernel> kernels,
                          std::span<const value_t> x, std::span<value_t> y);

/// BRO-BCSR forced through the runtime-shape generic kernel for every slice.
void native_spmv_bro_bcsr_generic(const core::BroBcsr& a,
                                  std::span<const value_t> x,
                                  std::span<value_t> y);

/// Y = A * X for k interleaved right-hand sides (layout as native_spmm.h:
/// X[c*k + j], Y[r*k + j]); column j is bitwise equal to a single-vector
/// spmv against column j.
void native_spmm_bro_bcsr(const core::BroBcsr& a, std::span<const value_t> x,
                          std::span<value_t> y, int k);

void native_spmm_bro_bcsr(const core::BroBcsr& a,
                          std::span<const BroBcsrKernel> kernels,
                          std::span<const value_t> x, std::span<value_t> y,
                          int k);

namespace detail {
// Defined by the per-ISA TUs; constant initialized.
extern const BcsrSimdKernelSet* const kBcsrSimdSetSse4;
extern const BcsrSimdKernelSet* const kBcsrSimdSetAvx2;
} // namespace detail

} // namespace bro::kernels
