#include "kernels/native_spmm.h"

#include <algorithm>
#include <vector>

#include "bits/bitwidth.h"
#include "bits/delta.h"
#include "util/error.h"

namespace bro::kernels {

namespace {

void check_spmm_shapes(index_t rows, index_t cols, std::span<const value_t> x,
                       std::span<value_t> y, int k) {
  BRO_CHECK_MSG(k >= 1, "SpMM batch size must be >= 1");
  BRO_CHECK(x.size() == static_cast<std::size_t>(cols) *
                            static_cast<std::size_t>(k));
  BRO_CHECK(y.size() == static_cast<std::size_t>(rows) *
                            static_cast<std::size_t>(k));
}

} // namespace

void native_spmm_csr(const sparse::Csr& a, std::span<const value_t> x,
                     std::span<value_t> y, int k) {
  check_spmm_shapes(a.rows, a.cols, x, y, k);
  const std::size_t uk = static_cast<std::size_t>(k);
#pragma omp parallel for schedule(guided)
  for (index_t r = 0; r < a.rows; ++r) {
    value_t* yr = y.data() + static_cast<std::size_t>(r) * uk;
    std::fill(yr, yr + uk, value_t{0});
    for (index_t p = a.row_ptr[r]; p < a.row_ptr[r + 1]; ++p) {
      const value_t v = a.vals[p];
      const value_t* xc = x.data() + static_cast<std::size_t>(a.col_idx[p]) * uk;
      for (std::size_t j = 0; j < uk; ++j) yr[j] += v * xc[j];
    }
  }
}

void native_spmm_ell(const sparse::Ell& a, std::span<const value_t> x,
                     std::span<value_t> y, int k) {
  check_spmm_shapes(a.rows, a.cols, x, y, k);
  const std::size_t uk = static_cast<std::size_t>(k);
#pragma omp parallel for schedule(static)
  for (index_t r = 0; r < a.rows; ++r) {
    value_t* yr = y.data() + static_cast<std::size_t>(r) * uk;
    std::fill(yr, yr + uk, value_t{0});
    for (index_t j = 0; j < a.width; ++j) {
      const index_t c = a.col_at(r, j);
      if (c == sparse::kPad) break; // rows are left-packed
      const value_t v = a.val_at(r, j);
      const value_t* xc = x.data() + static_cast<std::size_t>(c) * uk;
      for (std::size_t b = 0; b < uk; ++b) yr[b] += v * xc[b];
    }
  }
}

void native_spmm_bro_ell(const core::BroEll& a, std::span<const value_t> x,
                         std::span<value_t> y, int k) {
  check_spmm_shapes(a.rows(), a.cols(), x, y, k);
  const std::size_t uk = static_cast<std::size_t>(k);
  const auto& slices = a.slices();
  const int sym_len = a.options().sym_len;
  const index_t m = a.rows();
#pragma omp parallel for schedule(dynamic, 1)
  for (std::size_t si = 0; si < slices.size(); ++si) {
    const core::BroEllSlice& slice = slices[si];
    for (index_t t = 0; t < slice.height; ++t) {
      const index_t r = slice.first_row + t;
      core::RowStreamDecoder dec(slice, t, sym_len);
      index_t col = -1;
      value_t* yr = y.data() + static_cast<std::size_t>(r) * uk;
      std::fill(yr, yr + uk, value_t{0});
      // One decode per column index, k FMAs per decode: the unpacking cost
      // of Algorithm 1 is amortized over the batch.
      for (index_t c = 0; c < slice.num_col; ++c) {
        const std::uint32_t d =
            dec.next(slice.bit_alloc[static_cast<std::size_t>(c)]);
        if (d != bits::kInvalidDelta) {
          col += static_cast<index_t>(d);
          const value_t v = a.vals()[static_cast<std::size_t>(c) * m + r];
          const value_t* xc =
              x.data() + static_cast<std::size_t>(col) * uk;
          for (std::size_t b = 0; b < uk; ++b) yr[b] += v * xc[b];
        }
      }
    }
  }
}

void native_spmm_bro_coo(const core::BroCoo& a, std::span<const value_t> x,
                         std::span<value_t> y, int k) {
  std::vector<BroCooCarry> carries(a.intervals().size());
  std::vector<value_t> carry_sums(a.intervals().size() * 2 *
                                  static_cast<std::size_t>(k));
  native_spmm_bro_coo(a, x, y, k, carries, carry_sums);
}

void native_spmm_bro_coo(const core::BroCoo& a, std::span<const value_t> x,
                         std::span<value_t> y, int k,
                         std::span<BroCooCarry> carries,
                         std::span<value_t> carry_sums) {
  check_spmm_shapes(a.rows(), a.cols(), x, y, k);
  std::fill(y.begin(), y.end(), value_t{0});
  const auto& intervals = a.intervals();
  if (intervals.empty()) return;
  const std::size_t uk = static_cast<std::size_t>(k);
  BRO_CHECK(carries.size() >= intervals.size());
  BRO_CHECK(carry_sums.size() >= intervals.size() * 2 * uk);

  const int w = a.options().warp_size;
  const int cols = a.options().interval_cols;
  const int sym_len = a.options().sym_len;
  const std::size_t interval_size =
      static_cast<std::size_t>(w) * static_cast<std::size_t>(cols);

  // Same carry discipline as the single-vector kernel (native_spmv.cpp),
  // with the two boundary-row partial sums widened to k values each.
#pragma omp parallel for schedule(dynamic, 4)
  for (std::size_t i = 0; i < intervals.size(); ++i) {
    const auto& iv = intervals[i];
    const std::size_t base = i * interval_size;
    value_t* first_sum = carry_sums.data() + i * 2 * uk;
    value_t* last_sum = first_sum + uk;
    std::fill(first_sum, first_sum + 2 * uk, value_t{0});
    BroCooCarry carry;
    carry.first_row = iv.start_row;

    index_t last_row = iv.start_row;
    for (int j = 0; j < w; ++j) {
      std::uint64_t sym = 0;
      int rb = 0;
      index_t loads = 0;
      index_t row = iv.start_row;
      for (int c = 0; c < cols; ++c) {
        std::uint64_t d;
        if (iv.bits <= rb) {
          d = (sym >> (rb - iv.bits)) & bits::max_value_for_bits(iv.bits);
          rb -= iv.bits;
        } else {
          const int high = rb;
          d = high > 0 ? (sym & bits::max_value_for_bits(high)) : 0;
          sym = iv.stream.at(static_cast<std::size_t>(loads),
                             static_cast<std::size_t>(j));
          ++loads;
          rb = sym_len;
          const int low = iv.bits - high;
          d = (d << low) |
              ((sym >> (rb - low)) & bits::max_value_for_bits(low));
          rb -= low;
        }
        row += static_cast<index_t>(d);
        const std::size_t e = base + static_cast<std::size_t>(c) * w +
                              static_cast<std::size_t>(j);
        const value_t v = a.vals()[e];
        const value_t* xc =
            x.data() + static_cast<std::size_t>(a.col_idx()[e]) * uk;
        if (row == iv.start_row) {
          for (std::size_t b = 0; b < uk; ++b) first_sum[b] += v * xc[b];
        } else {
          if (row > last_row) {
            // Flush the previous candidate "last row" into y: it turned out
            // not to be the final row of the interval.
            if (last_row != iv.start_row) {
              value_t* yl = y.data() + static_cast<std::size_t>(last_row) * uk;
              for (std::size_t b = 0; b < uk; ++b) yl[b] += last_sum[b];
            }
            std::fill(last_sum, last_sum + uk, value_t{0});
            last_row = row;
          }
          if (row == last_row) {
            for (std::size_t b = 0; b < uk; ++b) last_sum[b] += v * xc[b];
          } else {
            value_t* yr = y.data() + static_cast<std::size_t>(row) * uk;
            for (std::size_t b = 0; b < uk; ++b) yr[b] += v * xc[b];
          }
        }
      }
    }
    carry.last_row = last_row;
    carries[i] = carry;
  }

  // Sequential carry resolution, in interval order as the single-vector
  // kernel does it.
  for (std::size_t i = 0; i < intervals.size(); ++i) {
    const BroCooCarry& c = carries[i];
    const value_t* first_sum = carry_sums.data() + i * 2 * uk;
    const value_t* last_sum = first_sum + uk;
    value_t* yf = y.data() + static_cast<std::size_t>(c.first_row) * uk;
    for (std::size_t b = 0; b < uk; ++b) yf[b] += first_sum[b];
    if (c.last_row != c.first_row) {
      value_t* yl = y.data() + static_cast<std::size_t>(c.last_row) * uk;
      for (std::size_t b = 0; b < uk; ++b) yl[b] += last_sum[b];
    }
  }
}

} // namespace bro::kernels
