#include "kernels/native_spmm.h"

#include <algorithm>
#include <vector>

#include "bits/bitwidth.h"
#include "bits/delta.h"
#include "util/error.h"

namespace bro::kernels {

namespace {

void check_spmm_shapes(index_t rows, index_t cols, std::span<const value_t> x,
                       std::span<value_t> y, int k) {
  BRO_CHECK_MSG(k >= 1, "SpMM batch size must be >= 1");
  BRO_CHECK(x.size() == static_cast<std::size_t>(cols) *
                            static_cast<std::size_t>(k));
  BRO_CHECK(y.size() == static_cast<std::size_t>(rows) *
                            static_cast<std::size_t>(k));
}

} // namespace

void native_spmm_csr(const sparse::Csr& a, std::span<const value_t> x,
                     std::span<value_t> y, int k) {
  check_spmm_shapes(a.rows, a.cols, x, y, k);
  const std::size_t uk = static_cast<std::size_t>(k);
#pragma omp parallel for schedule(guided)
  for (index_t r = 0; r < a.rows; ++r) {
    value_t* yr = y.data() + static_cast<std::size_t>(r) * uk;
    std::fill(yr, yr + uk, value_t{0});
    for (index_t p = a.row_ptr[r]; p < a.row_ptr[r + 1]; ++p) {
      const value_t v = a.vals[p];
      const value_t* xc = x.data() + static_cast<std::size_t>(a.col_idx[p]) * uk;
      for (std::size_t j = 0; j < uk; ++j) yr[j] += v * xc[j];
    }
  }
}

void native_spmm_ell(const sparse::Ell& a, std::span<const value_t> x,
                     std::span<value_t> y, int k) {
  check_spmm_shapes(a.rows, a.cols, x, y, k);
  const std::size_t uk = static_cast<std::size_t>(k);
#pragma omp parallel for schedule(static)
  for (index_t r = 0; r < a.rows; ++r) {
    value_t* yr = y.data() + static_cast<std::size_t>(r) * uk;
    std::fill(yr, yr + uk, value_t{0});
    for (index_t j = 0; j < a.width; ++j) {
      const index_t c = a.col_at(r, j);
      if (c == sparse::kPad) break; // rows are left-packed
      const value_t v = a.val_at(r, j);
      const value_t* xc = x.data() + static_cast<std::size_t>(c) * uk;
      for (std::size_t b = 0; b < uk; ++b) yr[b] += v * xc[b];
    }
  }
}

void native_spmm_bro_ell(const core::BroEll& a,
                         std::span<const BroEllKernel> kernels,
                         std::span<const value_t> x, std::span<value_t> y,
                         int k) {
  check_spmm_shapes(a.rows(), a.cols(), x, y, k);
  const auto& slices = a.slices();
  BRO_CHECK(kernels.size() == slices.size());
#pragma omp parallel for schedule(dynamic, 1)
  for (std::size_t si = 0; si < slices.size(); ++si)
    kernels[si].spmm(a, slices[si], x, y, k);
}

void native_spmm_bro_ell(const core::BroEll& a, std::span<const value_t> x,
                         std::span<value_t> y, int k) {
  check_spmm_shapes(a.rows(), a.cols(), x, y, k);
  const auto& slices = a.slices();
  const int sym_len = a.options().sym_len;
#pragma omp parallel for schedule(dynamic, 1)
  for (std::size_t si = 0; si < slices.size(); ++si) {
    const BroEllKernel kn = select_bro_ell_kernel(slices[si], sym_len);
    kn.spmm(a, slices[si], x, y, k);
  }
}

namespace {

/// Shared outer loop of the BRO-COO SpMM kernels (see the single-vector
/// bro_coo_spmv_impl in native_spmv.cpp for the carry discipline).
template <typename KernelFor>
void bro_coo_spmm_impl(const core::BroCoo& a, std::span<const value_t> x,
                       std::span<value_t> y, int k,
                       std::span<BroCooCarry> carries,
                       std::span<value_t> carry_sums,
                       KernelFor&& kernel_for) {
  check_spmm_shapes(a.rows(), a.cols(), x, y, k);
  std::fill(y.begin(), y.end(), value_t{0});
  const auto& intervals = a.intervals();
  if (intervals.empty()) return;
  const std::size_t uk = static_cast<std::size_t>(k);
  BRO_CHECK(carries.size() >= intervals.size());
  BRO_CHECK(carry_sums.size() >= intervals.size() * 2 * uk);

#pragma omp parallel for schedule(dynamic, 4)
  for (std::size_t i = 0; i < intervals.size(); ++i) {
    value_t* first_sum = carry_sums.data() + i * 2 * uk;
    kernel_for(i).spmm(a, i, x, y, k, carries[i], first_sum, first_sum + uk);
  }

  // Sequential carry resolution, in interval order as the single-vector
  // kernel does it.
  for (std::size_t i = 0; i < intervals.size(); ++i) {
    const BroCooCarry& c = carries[i];
    const value_t* first_sum = carry_sums.data() + i * 2 * uk;
    const value_t* last_sum = first_sum + uk;
    value_t* yf = y.data() + static_cast<std::size_t>(c.first_row) * uk;
    for (std::size_t b = 0; b < uk; ++b) yf[b] += first_sum[b];
    if (c.last_row != c.first_row) {
      value_t* yl = y.data() + static_cast<std::size_t>(c.last_row) * uk;
      for (std::size_t b = 0; b < uk; ++b) yl[b] += last_sum[b];
    }
  }
}

} // namespace

void native_spmm_bro_coo(const core::BroCoo& a, std::span<const value_t> x,
                         std::span<value_t> y, int k) {
  std::vector<BroCooCarry> carries(a.intervals().size());
  std::vector<value_t> carry_sums(a.intervals().size() * 2 *
                                  static_cast<std::size_t>(k));
  native_spmm_bro_coo(a, x, y, k, carries, carry_sums);
}

void native_spmm_bro_coo(const core::BroCoo& a, std::span<const value_t> x,
                         std::span<value_t> y, int k,
                         std::span<BroCooCarry> carries,
                         std::span<value_t> carry_sums) {
  const int sym_len = a.options().sym_len;
  bro_coo_spmm_impl(a, x, y, k, carries, carry_sums, [&](std::size_t i) {
    return select_bro_coo_kernel(a.intervals()[i], sym_len);
  });
}

void native_spmm_bro_coo(const core::BroCoo& a,
                         std::span<const BroCooKernel> kernels,
                         std::span<const value_t> x, std::span<value_t> y,
                         int k, std::span<BroCooCarry> carries,
                         std::span<value_t> carry_sums) {
  BRO_CHECK(kernels.size() == a.intervals().size());
  bro_coo_spmm_impl(a, x, y, k, carries, carry_sums,
                    [&](std::size_t i) { return kernels[i]; });
}

} // namespace bro::kernels
