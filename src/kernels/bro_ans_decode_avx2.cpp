// AVX2 BRO-ANS entropy decode kernel set (8 interleaved tANS states per
// lane group, vpgatherdd table lookups, branchless vector renorm).
// Compiled with -mavx2 -ffp-contract=off when the toolchain supports it
// (see src/kernels/CMakeLists.txt); collapses to a stub exporting a null
// set otherwise, so non-x86 builds link unchanged.
#include "kernels/bro_decode_simd.h"

#if defined(__AVX2__)

#define BRO_SIMD_NS ans_avx2
#define BRO_SIMD_ISA ::bro::kernels::SimdIsa::kAvx2
#include "kernels/bro_ans_decode_simd_impl.h"
#undef BRO_SIMD_NS
#undef BRO_SIMD_ISA

namespace bro::kernels::detail {
const AnsSimdKernelSet* const kAnsSimdSetAvx2 = &ans_avx2::kAnsKernelSet;
} // namespace bro::kernels::detail

#else

namespace bro::kernels::detail {
const AnsSimdKernelSet* const kAnsSimdSetAvx2 = nullptr;
} // namespace bro::kernels::detail

#endif
