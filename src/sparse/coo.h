// Coordinate (COO) sparse matrix storage (paper §2.1.1).
#pragma once

#include <vector>

#include "util/types.h"

namespace bro::sparse {

/// COO stores every non-zero as an explicit (row, col, value) triple.
/// Invariant after canonicalize(): entries are sorted by (row, col) with no
/// duplicates — the order the GPU COO kernel requires for segmented reduction.
struct Coo {
  index_t rows = 0;
  index_t cols = 0;
  std::vector<index_t> row_idx;
  std::vector<index_t> col_idx;
  std::vector<value_t> vals;

  std::size_t nnz() const { return vals.size(); }

  void reserve(std::size_t n) {
    row_idx.reserve(n);
    col_idx.reserve(n);
    vals.reserve(n);
  }

  void push(index_t r, index_t c, value_t v) {
    row_idx.push_back(r);
    col_idx.push_back(c);
    vals.push_back(v);
  }

  /// Sort by (row, col) and sum duplicate entries. Drops explicit zeros
  /// produced by duplicate cancellation only if `drop_zeros` is set.
  void canonicalize(bool drop_zeros = false);

  /// True if entries are sorted by (row, col) without duplicates.
  bool is_canonical() const;

  /// Structural validity: all indices within [0, rows) x [0, cols),
  /// array lengths consistent.
  bool is_valid() const;
};

} // namespace bro::sparse
