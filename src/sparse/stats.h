// Row-length statistics (the μ and σ columns of Table 2).
#pragma once

#include <string>

#include "sparse/csr.h"

namespace bro::sparse {

struct MatrixStats {
  index_t rows = 0;
  index_t cols = 0;
  std::size_t nnz = 0;
  double mean_row_length = 0;   // μ
  double stddev_row_length = 0; // σ (population standard deviation)
  index_t max_row_length = 0;   // k
  index_t min_row_length = 0;
  double density = 0; // nnz / (rows * cols)
};

MatrixStats compute_stats(const Csr& csr);

/// "130k x 130k"-style rendering used by the Table 2 bench.
std::string dims_string(index_t rows, index_t cols);

} // namespace bro::sparse
