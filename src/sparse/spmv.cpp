#include "sparse/spmv.h"

#include "util/error.h"

namespace bro::sparse {

void spmv_coo_accumulate(const Coo& a, std::span<const value_t> x,
                         std::span<value_t> y) {
  BRO_CHECK(x.size() == static_cast<std::size_t>(a.cols));
  BRO_CHECK(y.size() == static_cast<std::size_t>(a.rows));
  for (std::size_t i = 0; i < a.nnz(); ++i)
    y[static_cast<std::size_t>(a.row_idx[i])] +=
        a.vals[i] * x[static_cast<std::size_t>(a.col_idx[i])];
}

void spmv_ell(const Ell& a, std::span<const value_t> x, std::span<value_t> y) {
  BRO_CHECK(x.size() == static_cast<std::size_t>(a.cols));
  BRO_CHECK(y.size() == static_cast<std::size_t>(a.rows));
  for (index_t r = 0; r < a.rows; ++r) {
    value_t sum = 0;
    for (index_t j = 0; j < a.width; ++j) {
      const index_t c = a.col_at(r, j);
      if (c != kPad) sum += a.val_at(r, j) * x[static_cast<std::size_t>(c)];
    }
    y[static_cast<std::size_t>(r)] = sum;
  }
}

void spmv_ellr(const EllR& a, std::span<const value_t> x,
               std::span<value_t> y) {
  BRO_CHECK(x.size() == static_cast<std::size_t>(a.ell.cols));
  BRO_CHECK(y.size() == static_cast<std::size_t>(a.ell.rows));
  for (index_t r = 0; r < a.ell.rows; ++r) {
    value_t sum = 0;
    const index_t len = a.row_length[static_cast<std::size_t>(r)];
    for (index_t j = 0; j < len; ++j)
      sum += a.ell.val_at(r, j) *
             x[static_cast<std::size_t>(a.ell.col_at(r, j))];
    y[static_cast<std::size_t>(r)] = sum;
  }
}

void spmv_hyb(const Hyb& a, std::span<const value_t> x, std::span<value_t> y) {
  spmv_ell(a.ell, x, y);
  spmv_coo_accumulate(a.coo, x, y);
}

} // namespace bro::sparse
