#include "sparse/ell.h"

namespace bro::sparse {

bool Ell::is_valid() const {
  const std::size_t expect =
      static_cast<std::size_t>(rows) * static_cast<std::size_t>(width);
  if (col_idx.size() != expect || vals.size() != expect) return false;
  for (index_t r = 0; r < rows; ++r) {
    index_t prev = -1;
    bool in_pad = false;
    for (index_t j = 0; j < width; ++j) {
      const index_t c = col_at(r, j);
      if (c == kPad) {
        in_pad = true; // once padding starts it must continue to the end
        continue;
      }
      if (in_pad) return false;             // data after padding
      if (c < 0 || c >= cols) return false; // out of range
      if (c <= prev) return false;          // not strictly increasing
      prev = c;
    }
  }
  return true;
}

bool EllR::is_valid() const {
  if (!ell.is_valid()) return false;
  if (row_length.size() != static_cast<std::size_t>(ell.rows)) return false;
  for (index_t r = 0; r < ell.rows; ++r) {
    index_t len = 0;
    while (len < ell.width && ell.col_at(r, len) != kPad) ++len;
    if (row_length[r] != len) return false;
  }
  return true;
}

} // namespace bro::sparse
