// Conversions between sparse formats. CSR is the hub: COO <-> CSR,
// CSR -> ELL / ELL-R / HYB and the inverses used by tests.
#pragma once

#include "sparse/coo.h"
#include "sparse/csr.h"
#include "sparse/ell.h"
#include "sparse/hyb.h"

namespace bro::sparse {

/// COO (any order, duplicates summed) -> CSR.
Csr coo_to_csr(const Coo& coo);

/// CSR -> canonical COO.
Coo csr_to_coo(const Csr& csr);

/// CSR -> ELLPACK. Throws if the padded size would exceed `max_expand`
/// times nnz (guards against pathological rows; HYB handles those).
Ell csr_to_ell(const Csr& csr, double max_expand = 1e30);

/// CSR -> ELLPACK-R.
EllR csr_to_ellr(const Csr& csr);

/// ELLPACK -> CSR (drops padding).
Csr ell_to_csr(const Ell& ell);

/// CSR -> HYB using hyb_split_width(); `width_override` >= 0 forces the
/// ELLPACK width (used to keep HYB and BRO-HYB splits identical, as the
/// paper does for fair comparison).
Hyb csr_to_hyb(const Csr& csr, index_t width_override = -1);

/// HYB -> CSR (merges both parts).
Csr hyb_to_csr(const Hyb& hyb);

/// Row-length array of a CSR matrix.
std::vector<index_t> row_lengths(const Csr& csr);

} // namespace bro::sparse
