#include "sparse/stats.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace bro::sparse {

MatrixStats compute_stats(const Csr& csr) {
  MatrixStats s;
  s.rows = csr.rows;
  s.cols = csr.cols;
  s.nnz = csr.nnz();
  if (csr.rows == 0) return s;

  s.min_row_length = csr.row_length(0);
  double sum = 0;
  for (index_t r = 0; r < csr.rows; ++r) {
    const index_t l = csr.row_length(r);
    sum += l;
    s.max_row_length = std::max(s.max_row_length, l);
    s.min_row_length = std::min(s.min_row_length, l);
  }
  s.mean_row_length = sum / csr.rows;

  double sq = 0;
  for (index_t r = 0; r < csr.rows; ++r) {
    const double d = csr.row_length(r) - s.mean_row_length;
    sq += d * d;
  }
  s.stddev_row_length = std::sqrt(sq / csr.rows);
  s.density = static_cast<double>(s.nnz) /
              (static_cast<double>(csr.rows) * static_cast<double>(csr.cols));
  return s;
}

std::string dims_string(index_t rows, index_t cols) {
  auto one = [](index_t v) {
    std::ostringstream os;
    if (v >= 1000000) {
      const double m = v / 1000000.0;
      const double rounded = std::round(m * 10.0) / 10.0;
      os << rounded << 'M';
    } else if (v >= 1000) {
      os << (v + 500) / 1000 << 'k';
    } else {
      os << v;
    }
    return os.str();
  };
  return one(rows) + " x " + one(cols);
}

} // namespace bro::sparse
