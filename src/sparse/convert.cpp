#include "sparse/convert.h"

#include <algorithm>

#include "util/error.h"

namespace bro::sparse {

Csr coo_to_csr(const Coo& coo_in) {
  BRO_CHECK_MSG(coo_in.is_valid(), "COO matrix is structurally invalid");
  Coo coo = coo_in;
  if (!coo.is_canonical()) coo.canonicalize();

  Csr out;
  out.rows = coo.rows;
  out.cols = coo.cols;
  out.row_ptr.assign(static_cast<std::size_t>(coo.rows) + 1, 0);
  for (const index_t r : coo.row_idx) ++out.row_ptr[r + 1];
  for (index_t r = 0; r < coo.rows; ++r) out.row_ptr[r + 1] += out.row_ptr[r];
  out.col_idx = coo.col_idx;
  out.vals = coo.vals;
  return out;
}

Coo csr_to_coo(const Csr& csr) {
  Coo out;
  out.rows = csr.rows;
  out.cols = csr.cols;
  out.reserve(csr.nnz());
  for (index_t r = 0; r < csr.rows; ++r)
    for (index_t p = csr.row_ptr[r]; p < csr.row_ptr[r + 1]; ++p)
      out.push(r, csr.col_idx[p], csr.vals[p]);
  return out;
}

Ell csr_to_ell(const Csr& csr, double max_expand) {
  const index_t k = csr.max_row_length();
  const double padded =
      static_cast<double>(csr.rows) * static_cast<double>(k);
  BRO_CHECK_MSG(csr.nnz() == 0 ||
                    padded <= max_expand * static_cast<double>(csr.nnz()),
                "ELLPACK expansion " << padded / std::max<double>(1.0, double(csr.nnz()))
                                     << "x exceeds limit; use HYB");

  Ell out;
  out.rows = csr.rows;
  out.cols = csr.cols;
  out.width = k;
  out.col_idx.assign(static_cast<std::size_t>(csr.rows) * k, kPad);
  out.vals.assign(static_cast<std::size_t>(csr.rows) * k, value_t{0});
  for (index_t r = 0; r < csr.rows; ++r) {
    index_t j = 0;
    for (index_t p = csr.row_ptr[r]; p < csr.row_ptr[r + 1]; ++p, ++j) {
      out.col_idx[static_cast<std::size_t>(j) * csr.rows + r] = csr.col_idx[p];
      out.vals[static_cast<std::size_t>(j) * csr.rows + r] = csr.vals[p];
    }
  }
  return out;
}

EllR csr_to_ellr(const Csr& csr) {
  EllR out;
  out.ell = csr_to_ell(csr);
  out.row_length = row_lengths(csr);
  return out;
}

Csr ell_to_csr(const Ell& ell) {
  Coo coo;
  coo.rows = ell.rows;
  coo.cols = ell.cols;
  for (index_t r = 0; r < ell.rows; ++r)
    for (index_t j = 0; j < ell.width; ++j) {
      const index_t c = ell.col_at(r, j);
      if (c == kPad) break;
      coo.push(r, c, ell.val_at(r, j));
    }
  return coo_to_csr(coo);
}

Hyb csr_to_hyb(const Csr& csr, index_t width_override) {
  const std::vector<index_t> lens = row_lengths(csr);
  const index_t k =
      width_override >= 0 ? width_override : hyb_split_width(lens);

  Hyb out;
  out.ell.rows = csr.rows;
  out.ell.cols = csr.cols;
  out.ell.width = k;
  out.ell.col_idx.assign(static_cast<std::size_t>(csr.rows) * k, kPad);
  out.ell.vals.assign(static_cast<std::size_t>(csr.rows) * k, value_t{0});
  out.coo.rows = csr.rows;
  out.coo.cols = csr.cols;

  for (index_t r = 0; r < csr.rows; ++r) {
    index_t j = 0;
    for (index_t p = csr.row_ptr[r]; p < csr.row_ptr[r + 1]; ++p, ++j) {
      if (j < k) {
        out.ell.col_idx[static_cast<std::size_t>(j) * csr.rows + r] =
            csr.col_idx[p];
        out.ell.vals[static_cast<std::size_t>(j) * csr.rows + r] = csr.vals[p];
      } else {
        out.coo.push(r, csr.col_idx[p], csr.vals[p]);
      }
    }
  }
  return out;
}

Csr hyb_to_csr(const Hyb& hyb) {
  Coo coo = csr_to_coo(ell_to_csr(hyb.ell));
  coo.rows = hyb.rows();
  coo.cols = hyb.cols();
  for (std::size_t i = 0; i < hyb.coo.nnz(); ++i)
    coo.push(hyb.coo.row_idx[i], hyb.coo.col_idx[i], hyb.coo.vals[i]);
  return coo_to_csr(coo);
}

std::vector<index_t> row_lengths(const Csr& csr) {
  std::vector<index_t> lens(static_cast<std::size_t>(csr.rows));
  for (index_t r = 0; r < csr.rows; ++r) lens[r] = csr.row_length(r);
  return lens;
}

} // namespace bro::sparse
