// Matrix Market (.mtx) reader/writer.
//
// Supports the coordinate format with real / integer / pattern fields and
// general / symmetric / skew-symmetric symmetry, which covers the University
// of Florida collection the paper draws its matrices from. Malformed input
// throws std::runtime_error with a line-numbered message.
#pragma once

#include <iosfwd>
#include <string>

#include "sparse/coo.h"

namespace bro::sparse {

/// Parse a Matrix Market stream into COO (canonicalized).
Coo read_matrix_market(std::istream& in);

/// Convenience overload reading from a file path.
Coo read_matrix_market_file(const std::string& path);

/// Write COO as a general real coordinate Matrix Market body.
void write_matrix_market(std::ostream& out, const Coo& coo);

void write_matrix_market_file(const std::string& path, const Coo& coo);

} // namespace bro::sparse
