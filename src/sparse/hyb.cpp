#include "sparse/hyb.h"

#include <algorithm>

namespace bro::sparse {

std::size_t Hyb::nnz() const {
  std::size_t ell_nnz = 0;
  for (index_t r = 0; r < ell.rows; ++r)
    for (index_t j = 0; j < ell.width; ++j)
      if (ell.col_at(r, j) != kPad) ++ell_nnz;
  return ell_nnz + coo.nnz();
}

double Hyb::ell_fraction() const {
  const std::size_t total = nnz();
  if (total == 0) return 1.0;
  return static_cast<double>(total - coo.nnz()) / static_cast<double>(total);
}

index_t hyb_split_width(std::span<const index_t> row_lengths) {
  if (row_lengths.empty()) return 0;
  const index_t rows = static_cast<index_t>(row_lengths.size());
  index_t max_len = 0;
  for (const index_t l : row_lengths) max_len = std::max(max_len, l);

  // hist[k] = number of rows with length >= k, computed via a suffix sum.
  std::vector<index_t> count(static_cast<std::size_t>(max_len) + 2, 0);
  for (const index_t l : row_lengths) ++count[l];
  std::vector<index_t> at_least(static_cast<std::size_t>(max_len) + 2, 0);
  for (index_t k = max_len; k >= 0; --k)
    at_least[k] = at_least[k + 1] + count[k];

  const index_t threshold = std::max<index_t>(1, rows / 3);
  index_t best = 0;
  for (index_t k = 1; k <= max_len; ++k)
    if (at_least[k] >= threshold) best = k;
  return best;
}

} // namespace bro::sparse
