#include "sparse/mmio.h"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <limits>
#include <sstream>

#include "util/error.h"

namespace bro::sparse {

namespace {

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

} // namespace

Coo read_matrix_market(std::istream& in) {
  std::string line;
  long line_no = 0;

  // Header: "%%MatrixMarket matrix coordinate <field> <symmetry>"
  BRO_CHECK_MSG(std::getline(in, line), "empty Matrix Market stream");
  ++line_no;
  std::istringstream hdr(line);
  std::string banner, object, fmt, field, symmetry;
  hdr >> banner >> object >> fmt >> field >> symmetry;
  BRO_CHECK_MSG(lower(banner) == "%%matrixmarket",
                "line 1: missing %%MatrixMarket banner");
  BRO_CHECK_MSG(lower(object) == "matrix", "line 1: only 'matrix' supported");
  BRO_CHECK_MSG(lower(fmt) == "coordinate",
                "line 1: only 'coordinate' format supported");
  field = lower(field);
  symmetry = lower(symmetry);
  const bool pattern = field == "pattern";
  BRO_CHECK_MSG(field == "real" || field == "integer" || pattern,
                "line 1: unsupported field '" << field << '\'');
  const bool symmetric = symmetry == "symmetric";
  const bool skew = symmetry == "skew-symmetric";
  BRO_CHECK_MSG(symmetric || skew || symmetry == "general",
                "line 1: unsupported symmetry '" << symmetry << '\'');

  // Skip comments, read the size line.
  long rows = -1, cols = -1, entries = -1;
  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line[0] == '%') continue;
    if (line.find_first_not_of(" \t\r\n") == std::string::npos) continue;
    std::istringstream sz(line);
    BRO_CHECK_MSG(sz >> rows >> cols >> entries,
                  "line " << line_no << ": malformed size line");
    break;
  }
  BRO_CHECK_MSG(rows >= 0 && cols >= 0 && entries >= 0,
                "missing size line (truncated file?)");
  // The size line comes from an untrusted file: dimensions and entry count
  // must fit index_t (CSR row pointers store nnz as index_t), and the
  // pre-reserve must not trust an adversarial header.
  constexpr long kMaxIndex = std::numeric_limits<index_t>::max();
  BRO_CHECK_MSG(rows <= kMaxIndex && cols <= kMaxIndex,
                "size line: dimensions " << rows << " x " << cols
                                         << " exceed the 32-bit index range");
  BRO_CHECK_MSG(entries <= kMaxIndex,
                "size line: " << entries
                              << " entries exceed the 32-bit index range");

  Coo coo;
  coo.rows = static_cast<index_t>(rows);
  coo.cols = static_cast<index_t>(cols);
  constexpr long kReserveCap = 1L << 22; // grow past this only on real data
  coo.reserve(static_cast<std::size_t>(
      std::min(entries * (symmetric || skew ? 2 : 1), kReserveCap)));

  long seen = 0;
  while (seen < entries && std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '%') continue;
    if (line.find_first_not_of(" \t\r\n") == std::string::npos) continue;
    std::istringstream es(line);
    long r = 0, c = 0;
    double v = 1.0;
    BRO_CHECK_MSG(es >> r >> c, "line " << line_no << ": malformed entry");
    if (!pattern)
      BRO_CHECK_MSG(es >> v, "line " << line_no << ": missing value");
    BRO_CHECK_MSG(r >= 1 && r <= rows && c >= 1 && c <= cols,
                  "line " << line_no << ": index out of range");
    const index_t ri = static_cast<index_t>(r - 1);
    const index_t ci = static_cast<index_t>(c - 1);
    coo.push(ri, ci, v);
    if ((symmetric || skew) && ri != ci) coo.push(ci, ri, skew ? -v : v);
    ++seen;
  }
  BRO_CHECK_MSG(seen == entries, "truncated file: expected " << entries
                                     << " entries, found " << seen);
  coo.canonicalize();
  // Symmetric expansion doubles off-diagonal entries; the final count must
  // still fit the index type.
  BRO_CHECK_MSG(coo.nnz() <= static_cast<std::size_t>(kMaxIndex),
                "matrix has " << coo.nnz()
                              << " stored entries after symmetric expansion, "
                                 "exceeding the 32-bit index range");
  return coo;
}

Coo read_matrix_market_file(const std::string& path) {
  std::ifstream in(path);
  BRO_CHECK_MSG(in.good(), "cannot open '" << path << '\'');
  return read_matrix_market(in);
}

void write_matrix_market(std::ostream& out, const Coo& coo) {
  out << "%%MatrixMarket matrix coordinate real general\n";
  out << coo.rows << ' ' << coo.cols << ' ' << coo.nnz() << '\n';
  out.precision(17);
  for (std::size_t i = 0; i < coo.nnz(); ++i)
    out << coo.row_idx[i] + 1 << ' ' << coo.col_idx[i] + 1 << ' '
        << coo.vals[i] << '\n';
}

void write_matrix_market_file(const std::string& path, const Coo& coo) {
  std::ofstream out(path);
  BRO_CHECK_MSG(out.good(), "cannot open '" << path << "' for writing");
  write_matrix_market(out, coo);
}

} // namespace bro::sparse
