// The benchmark suite: one named generator per University of Florida matrix
// in Table 2 of the paper, with the paper's published statistics attached so
// benches can print paper-vs-measured side by side.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "sparse/csr.h"

namespace bro::sparse {

struct SuiteEntry {
  std::string name;
  // 1 = BRO-ELL-representable, 2 = needs BRO-HYB, 3 = truss-FEM workload
  // (block-structured; the BRO-BCSR benchmark set — no published paper
  // statistics, so the paper_* result columns stay -1).
  int test_set = 1;

  // Published Table 2 statistics (full-scale matrix).
  index_t paper_rows = 0;
  index_t paper_cols = 0;
  std::size_t paper_nnz = 0;
  double paper_mu = 0;
  double paper_sigma = 0;

  // Published per-matrix results where the paper reports them.
  double paper_eta_broell = -1; // Table 3 space savings (Test Set 1)
  double paper_eta_bar = -1;    // Table 5 space savings after BAR
  double paper_ell_frac = -1;   // Table 4 %BRO-ELL (Test Set 2)
  double paper_eta_brohyb = -1; // Table 4 space savings (Test Set 2)
};

/// All entries: the 30 Table 2 matrices (Test Set 1 then Test Set 2)
/// followed by the truss-FEM workload (Test Set 3).
const std::vector<SuiteEntry>& suite_entries();

/// Entries filtered by test set (1, 2 or 3).
std::vector<SuiteEntry> suite_test_set(int set);

/// Look up an entry by name; nullopt if unknown.
std::optional<SuiteEntry> find_suite_entry(const std::string& name);

/// Generate the stand-in matrix for `entry` at a linear size scale factor
/// (rows and cols multiplied by `scale`; row-length structure preserved).
/// scale = 1 reproduces the paper-size matrix.
Csr generate_suite_matrix(const SuiteEntry& entry, double scale = 1.0);

} // namespace bro::sparse
