#include "sparse/matgen/suite.h"

#include <algorithm>
#include <cmath>

#include "sparse/matgen/generators.h"
#include "util/error.h"

namespace bro::sparse {

namespace {

// Structure class controls the column pattern of the generator; it encodes
// what is known about each UF matrix's origin (FEM, grid, circuit, web...).
struct Recipe {
  SuiteEntry entry;
  LenDist dist = LenDist::kNormal;
  double local_prob = 0.9;
  double band_frac = 0.02;
  int run = 1;
  index_t spike_rows = 0;
  index_t spike_len = 0;
  // Special cases built by dedicated generators.
  enum class Special {
    kNone,
    kGrid2d,
    kLattice4d,
    kTrussFem
  } special = Special::kNone;
  index_t stories = 4; // kTrussFem: node rows of the truss
  bool aligned_blocks = false; // FEM structure (see GenSpec::aligned_blocks)
  // Bulk row-length overrides for spike-dominated matrices: the paper's
  // mu/sigma include the spikes, so the non-spike bulk needs its own
  // distribution parameters (<= 0 means "use the paper values").
  double bulk_mu = -1;
  double bulk_sigma = -1;
};

std::vector<Recipe> build_recipes() {
  std::vector<Recipe> r;
  auto add = [&](SuiteEntry e, LenDist dist, double local, double band,
                 int run, index_t spike_rows = 0, index_t spike_len = 0,
                 Recipe::Special special = Recipe::Special::kNone) {
    Recipe rec;
    rec.entry = std::move(e);
    rec.dist = dist;
    rec.local_prob = local;
    rec.band_frac = band;
    rec.run = run;
    rec.spike_rows = spike_rows;
    rec.spike_len = spike_len;
    rec.special = special;
    r.push_back(std::move(rec));
  };

  // --- Test Set 1 (Table 2 top half; Table 3 / Table 5 columns attached) ---
  // name, set, rows, cols, nnz, mu, sigma, eta_broell, eta_bar
  add({"cage12", 1, 130228, 130228, 2032536, 15.6, 4.7, 0.780, 0.811, -1, -1},
      LenDist::kNormal, 0.92, 0.008, 2);
  add({"cant", 1, 62451, 62451, 4007383, 64.2, 14.1, 0.859, 0.927, -1, -1},
      LenDist::kNormal, 0.97, 0.002, 3);
  add({"consph", 1, 83334, 83334, 6010480, 72.1, 19.1, 0.853, 0.917, -1, -1},
      LenDist::kNormal, 0.97, 0.0025, 3);
  add({"e40r5000", 1, 17281, 17281, 553956, 32.1, 15.5, 0.925, 0.954, -1, -1},
      LenDist::kNormal, 0.98, 0.0015, 8);
  add({"epb3", 1, 84617, 84617, 463625, 5.5, 0.5, 0.832, 0.832, -1, -1},
      LenDist::kNormal, 0.99, 0.0005, 5);
  add({"lhr71", 1, 70304, 70304, 1528092, 21.7, 26.3, 0.921, 0.957, -1, -1},
      LenDist::kLogNormal, 0.95, 0.01, 1);
  add({"mc2depi", 1, 525825, 525825, 2100225, 4.0, 0.1, 0.507, 0.507, -1, -1},
      LenDist::kConstant, 1.0, 0.0, 1, 0, 0, Recipe::Special::kGrid2d);
  add({"pdb1HYS", 1, 36417, 36417, 4344765, 119.3, 31.9, 0.892, 0.908, -1, -1},
      LenDist::kNormal, 0.96, 0.002, 4);
  add({"qcd5_4", 1, 49152, 49152, 1916928, 39.0, 0.0, 0.877, 0.889, -1, -1},
      LenDist::kConstant, 1.0, 0.0, 5, 0, 0, Recipe::Special::kLattice4d);
  add({"rim", 1, 22560, 22560, 1014951, 45.0, 26.6, 0.927, 0.960, -1, -1},
      LenDist::kNormal, 0.97, 0.0015, 8);
  add({"rma10", 1, 46835, 46835, 2374001, 50.7, 27.8, 0.908, 0.949, -1, -1},
      LenDist::kNormal, 0.96, 0.002, 6);
  add({"shipsec1", 1, 140874, 140874, 7813404, 55.5, 11.1, 0.929, 0.948, -1, -1},
      LenDist::kNormal, 0.98, 0.001, 12);
  add({"stomach", 1, 213360, 213360, 3021648, 14.2, 5.9, 0.707, 0.823, -1, -1},
      LenDist::kNormal, 0.87, 0.015, 2);
  add({"torso3", 1, 259156, 259156, 4429042, 17.1, 4.4, 0.759, 0.836, -1, -1},
      LenDist::kNormal, 0.92, 0.008, 2);
  add({"venkat01", 1, 62424, 62424, 1717792, 27.5, 2.3, 0.902, 0.923, -1, -1},
      LenDist::kNormal, 0.98, 0.001, 6);
  add({"xenon2", 1, 157464, 157464, 3866688, 24.6, 4.1, 0.740, 0.873, -1, -1},
      LenDist::kNormal, 0.92, 0.008, 2);

  // --- Test Set 2 (Table 2 bottom half; Table 4 columns attached) ---
  // name, set, rows, cols, nnz, mu, sigma, -, -, ell_frac, eta_brohyb
  add({"bcsstk32", 2, 44609, 44609, 2014701, 45.2, 15.5, -1, -1, 0.966, 0.604},
      LenDist::kNormal, 0.97, 0.02, 3);
  add({"cop20k_A", 2, 121192, 121192, 2624331, 21.7, 13.8, -1, -1, 0.823, 0.467},
      LenDist::kLogNormal, 0.85, 0.02, 1);
  add({"ct20stif", 2, 52329, 52329, 2698463, 51.6, 17.0, -1, -1, 0.907, 0.559},
      LenDist::kNormal, 0.96, 0.035, 2);
  add({"gupta2", 2, 62064, 62064, 4248286, 68.5, 356.0, -1, -1, 0.500, 0.438},
      LenDist::kNormal, 0.5, 0.03, 1, 120, 17500);
  add({"hvdc2", 2, 189860, 189860, 1347273, 7.1, 3.8, -1, -1, 0.869, 0.455},
      LenDist::kLogNormal, 0.9, 0.01, 1);
  add({"mac_econ", 2, 206500, 206500, 1273389, 6.2, 4.4, -1, -1, 0.811, 0.516},
      LenDist::kLogNormal, 0.99, 0.004, 1);
  add({"ohne2", 2, 181343, 181343, 11063545, 61.0, 21.1, -1, -1, 0.965, 0.495},
      LenDist::kNormal, 0.95, 0.04, 2);
  add({"pwtk", 2, 217918, 217918, 11634424, 53.4, 4.7, -1, -1, 0.994, 0.787},
      LenDist::kNormal, 0.98, 0.003, 6);
  add({"rail4284", 2, 4284, 109000, 11279748, 2633.0, 4209.0, -1, -1, 0.0085,
       0.452},
      LenDist::kNormal, 0.2, 0.1, 2, 643, 17000);
  add({"rajat30", 2, 643994, 643994, 6175377, 9.6, 785.0, -1, -1, 0.681, 0.345},
      LenDist::kNormal, 0.5, 0.01, 1, 40, 310000);
  add({"scircuit", 2, 170998, 170998, 958936, 5.6, 4.4, -1, -1, 0.782, 0.366},
      LenDist::kLogNormal, 0.3, 0.1, 1);
  add({"sme3Da", 2, 12504, 12504, 874887, 70.0, 34.9, -1, -1, 0.836, 0.556},
      LenDist::kNormal, 0.95, 0.05, 2);
  add({"twotone", 2, 120750, 120750, 1224224, 10.1, 15.0, -1, -1, 0.618, 0.488},
      LenDist::kLogNormal, 0.8, 0.02, 1);
  add({"webbase-1M", 2, 1000005, 1000005, 3105536, 3.1, 25.3, -1, -1, 0.642,
       0.134},
      LenDist::kPareto, 0.15, 0.05, 1, 40, 4000);

  // --- Test Set 3 (truss-FEM workload: 2-dof node blocks, BRO-BCSR's
  // target class; rows = 2 * (panels + 1) * stories, geometry derived from
  // the paper_rows entry in generate_from_recipe) ---
  add({"fem", 3, 24012, 24012, 372000, 15.5, 3.5, -1, -1, -1, -1},
      LenDist::kNormal, 1.0, 0.0, 2, 0, 0, Recipe::Special::kTrussFem);
  add({"truss-deck", 3, 24004, 24004, 264000, 11.0, 3.0, -1, -1, -1, -1},
      LenDist::kNormal, 1.0, 0.0, 2, 0, 0, Recipe::Special::kTrussFem);
  add({"truss-tower", 3, 12200, 12200, 196000, 16.1, 2.9, -1, -1, -1, -1},
      LenDist::kNormal, 1.0, 0.0, 2, 0, 0, Recipe::Special::kTrussFem);
  add({"truss-wide", 3, 12024, 12024, 194000, 16.1, 3.0, -1, -1, -1, -1},
      LenDist::kNormal, 1.0, 0.0, 2, 0, 0, Recipe::Special::kTrussFem);
  for (auto& rec : r) {
    if (rec.entry.name == "fem") rec.stories = 6;
    if (rec.entry.name == "truss-deck") rec.stories = 2;
    if (rec.entry.name == "truss-tower") rec.stories = 100;
    if (rec.entry.name == "truss-wide") rec.stories = 12;
  }

  // Spike-dominated matrices: bulk distributions excluding the spikes.
  for (auto& rec : r) {
    if (rec.entry.name == "rajat30") { rec.bulk_mu = 9.2; rec.bulk_sigma = 2.0; }
    if (rec.entry.name == "gupta2") { rec.bulk_mu = 30.0; rec.bulk_sigma = 22.0; }
    if (rec.entry.name == "webbase-1M") { rec.bulk_mu = 3.0; }
    if (rec.entry.name == "rail4284") { rec.bulk_mu = 20.0; rec.bulk_sigma = 10.0; }
  }

  // FEM-class matrices use the aligned-block column structure.
  for (auto& rec : r) {
    for (const char* nm : {"cage12", "cant", "consph", "e40r5000", "epb3", "pdb1HYS", "rim", "rma10", "shipsec1", "venkat01", "xenon2", "torso3", "pwtk"}) {
      if (rec.entry.name == nm) rec.aligned_blocks = true;
    }
  }

  return r;
}

const std::vector<Recipe>& recipes() {
  static const std::vector<Recipe> r = build_recipes();
  return r;
}

std::uint64_t name_seed(const std::string& name) {
  std::uint64_t h = 1469598103934665603ull; // FNV-1a
  for (const char c : name) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

Csr generate_from_recipe(const Recipe& rec, double scale) {
  BRO_CHECK_MSG(scale > 0, "scale must be positive");
  const auto& e = rec.entry;
  const auto scaled = [&](index_t v) {
    return std::max<index_t>(64, static_cast<index_t>(std::lround(v * scale)));
  };

  switch (rec.special) {
    case Recipe::Special::kGrid2d: {
      // Square-ish grid sized so nx*ny ~= scaled rows.
      const index_t n = scaled(e.paper_rows);
      const index_t nx = std::max<index_t>(
          8, static_cast<index_t>(std::lround(std::sqrt(double(n)))));
      return generate_grid2d(nx, n / nx, name_seed(e.name));
    }
    case Recipe::Special::kLattice4d: {
      const index_t n = scaled(e.paper_rows);
      const index_t side = std::max<index_t>(
          4, static_cast<index_t>(std::lround(std::pow(double(n), 0.25))));
      return generate_lattice4d(side, static_cast<index_t>(e.paper_mu),
                                rec.run, name_seed(e.name));
    }
    case Recipe::Special::kTrussFem: {
      const index_t rows = scaled(e.paper_rows);
      const index_t stories = rec.stories;
      const index_t panels =
          std::max<index_t>(4, rows / (2 * stories) - 1);
      return generate_truss2d(panels, stories, name_seed(e.name));
    }
    case Recipe::Special::kNone:
      break;
  }

  GenSpec spec;
  spec.rows = scaled(e.paper_rows);
  spec.cols = scaled(e.paper_cols);
  spec.len_dist = rec.dist;
  spec.mu = rec.bulk_mu > 0 ? rec.bulk_mu : e.paper_mu;
  spec.sigma = rec.bulk_sigma > 0 ? rec.bulk_sigma : e.paper_sigma;
  // Heavy-tailed rectangular matrices (rail4284) have a substantial
  // minimum row length; small-mu Pareto matrices keep min 1.
  spec.min_len =
      rec.dist == LenDist::kPareto && e.paper_mu > 100
          ? std::max<index_t>(1, static_cast<index_t>(e.paper_mu / 60))
          : 1;
  spec.local_prob = rec.local_prob;
  spec.band_frac = rec.band_frac;
  spec.run = rec.run;
  spec.aligned_blocks = rec.aligned_blocks;
  // Spike magnitudes scale with the matrix so σ stays proportionally huge.
  spec.spike_rows = rec.spike_rows == 0
                        ? 0
                        : std::max<index_t>(1, static_cast<index_t>(std::lround(
                                                   rec.spike_rows * scale)));
  spec.spike_len = rec.spike_len == 0
                       ? 0
                       : std::max<index_t>(8, static_cast<index_t>(std::lround(
                                                  rec.spike_len * scale)));
  spec.seed = name_seed(e.name);
  return generate(spec);
}

} // namespace

const std::vector<SuiteEntry>& suite_entries() {
  static const std::vector<SuiteEntry> entries = [] {
    std::vector<SuiteEntry> out;
    for (const auto& r : recipes()) out.push_back(r.entry);
    return out;
  }();
  return entries;
}

std::vector<SuiteEntry> suite_test_set(int set) {
  std::vector<SuiteEntry> out;
  for (const auto& e : suite_entries())
    if (e.test_set == set) out.push_back(e);
  return out;
}

std::optional<SuiteEntry> find_suite_entry(const std::string& name) {
  for (const auto& e : suite_entries())
    if (e.name == name) return e;
  return std::nullopt;
}

Csr generate_suite_matrix(const SuiteEntry& entry, double scale) {
  for (const auto& r : recipes())
    if (r.entry.name == entry.name) return generate_from_recipe(r, scale);
  ::bro::detail::fail("known suite matrix", __FILE__, __LINE__, entry.name);
}

} // namespace bro::sparse
