#include "sparse/matgen/adversarial.h"

#include <algorithm>
#include <limits>

#include "sparse/convert.h"
#include "util/error.h"
#include "util/rng.h"

namespace bro::sparse {

namespace {

/// Build a CSR from explicit (row, col) pairs; values are seeded uniforms.
Csr from_pattern(index_t rows, index_t cols,
                 const std::vector<std::pair<index_t, index_t>>& entries,
                 Rng& rng) {
  Coo coo;
  coo.rows = rows;
  coo.cols = cols;
  for (const auto& [r, c] : entries) coo.push(r, c, rng.uniform() * 2 - 1);
  coo.canonicalize();
  return coo_to_csr(coo);
}

} // namespace

std::vector<AdversarialCase> adversarial_suite(std::uint64_t seed) {
  Rng rng(seed);
  std::vector<AdversarialCase> out;
  const auto add = [&](std::string name, Csr csr) {
    BRO_CHECK_MSG(csr.is_valid(), "adversarial case '" << name
                                                       << "' is malformed");
    out.push_back({std::move(name), std::move(csr)});
  };

  // Empty matrices in every flavour: no rows, no cols, neither, and a
  // non-degenerate shape holding zero entries.
  add("0x0-empty", from_pattern(0, 0, {}, rng));
  add("0xN-no-rows", from_pattern(0, 17, {}, rng));
  add("Nx0-no-cols", from_pattern(17, 0, {}, rng));
  add("all-rows-empty", from_pattern(32, 48, {}, rng));
  add("1x1-empty", from_pattern(1, 1, {}, rng));
  add("1x1-single", from_pattern(1, 1, {{0, 0}}, rng));

  // Empty rows interleaved with occupied ones (every 7th row occupied),
  // including an empty trailing row just past a slice boundary.
  {
    std::vector<std::pair<index_t, index_t>> e;
    for (index_t r = 0; r < 70; r += 7)
      for (index_t j = 0; j < 3; ++j) e.push_back({r, r + j});
    add("sparse-rows-mostly-empty", from_pattern(70, 80, e, rng));
  }
  {
    // 257 rows: one row past the default 256-row slice, and that last row
    // is empty (a one-row slice with num_col == 0).
    std::vector<std::pair<index_t, index_t>> e;
    for (index_t r = 0; r < 256; ++r) e.push_back({r, r % 64});
    add("empty-row-after-slice-boundary", from_pattern(257, 64, e, rng));
  }

  // Degenerate aspect ratios.
  {
    std::vector<std::pair<index_t, index_t>> e;
    for (index_t c = 0; c < 512; ++c) e.push_back({0, c});
    add("1xN-single-dense-row", from_pattern(1, 512, e, rng));
  }
  {
    std::vector<std::pair<index_t, index_t>> e;
    for (index_t r = 0; r < 512; ++r) e.push_back({r, 0});
    add("Nx1-full-column", from_pattern(512, 1, e, rng));
  }

  // One dense row amid short rows: the HYB split must spill it to COO, and
  // BRO-COO sees one long run of identical row indices.
  {
    std::vector<std::pair<index_t, index_t>> e;
    for (index_t r = 0; r < 96; ++r) e.push_back({r, r});
    for (index_t c = 0; c < 96; ++c)
      if (c != 40) e.push_back({40, c});
    add("single-dense-row", from_pattern(96, 96, e, rng));
  }

  // Maximum per-row column delta: first and last column of a wide matrix in
  // the same row, so one slice column must carry a ~2^20 delta while the
  // other carries delta 1.
  {
    const index_t wide = 1 << 20;
    std::vector<std::pair<index_t, index_t>> e;
    for (index_t r = 0; r < 40; ++r) {
      e.push_back({r, 0});
      e.push_back({r, wide - 1 - (r % 3)}); // vary so deltas differ per row
    }
    add("max-delta-last-column", from_pattern(40, wide, e, rng));
  }

  // Duplicate-heavy pre-canonical COO: shuffled entries where each
  // coordinate appears several times, so canonicalize() must sort and merge
  // before any conversion is legal.
  {
    Coo coo;
    coo.rows = 48;
    coo.cols = 48;
    for (int pass = 0; pass < 4; ++pass)
      for (index_t r = 47; r >= 0; --r) {
        coo.push(r, (r * 7 + pass) % 48, rng.uniform());
        coo.push(r, r % 48, 0.25); // the duplicate-heavy coordinate
      }
    add("duplicate-heavy-precanonical-coo", coo_to_csr(coo));
  }

  // Strictly decreasing row lengths (triangular profile): stresses the
  // ELL width choice and the HYB split with no two rows alike.
  {
    std::vector<std::pair<index_t, index_t>> e;
    for (index_t r = 0; r < 64; ++r)
      for (index_t j = 0; j < 64 - r; ++j) e.push_back({r, j});
    add("decreasing-row-lengths", from_pattern(64, 64, e, rng));
  }

  // Alternating empty/dense rows across more than one slice.
  {
    std::vector<std::pair<index_t, index_t>> e;
    for (index_t r = 0; r < 300; r += 2)
      for (index_t j = 0; j < 8; ++j) e.push_back({r, (r + j * 17) % 256});
    add("alternating-empty-dense-rows", from_pattern(300, 256, e, rng));
  }

  // --- Block-structure edge cases (BRO-BCSR cover stress) ---

  // One fully dense 8x8 block in an otherwise empty matrix: the cover is a
  // single tile (or one tile column) with fill 1.0 — the most blocked
  // matrix possible, and the one case in this battery that must pass the
  // BRO-BCSR applicability test.
  {
    std::vector<std::pair<index_t, index_t>> e;
    for (index_t r = 8; r < 16; ++r)
      for (index_t c = 16; c < 24; ++c) e.push_back({r, c});
    add("single-dense-block", from_pattern(64, 64, e, rng));
  }

  // Dense 2x2 tiles placed at odd offsets around matrix row 512 — the
  // block-row slice boundary for 2x2 blocks at the default slice height of
  // 256 block rows. Each tile straddles two block rows, so the cover must
  // split it across slices without losing entries.
  {
    std::vector<std::pair<index_t, index_t>> e;
    for (index_t r = 503; r < 521; r += 2)
      for (index_t dr = 0; dr < 2; ++dr)
        for (index_t dc = 0; dc < 2; ++dc)
          e.push_back({r + dr, (r * 3) % 128 + 1 + dc});
    for (index_t r = 0; r < 528; r += 16) e.push_back({r, 0});
    add("blocks-straddling-slice-boundary", from_pattern(528, 192, e, rng));
  }

  // Pure 1xN row-run structure: every row is a train of aligned 8-wide
  // runs with nothing to gain from multi-row blocks; exercises the 1x8
  // shape and block rows of height one.
  {
    std::vector<std::pair<index_t, index_t>> e;
    for (index_t r = 0; r < 96; ++r)
      for (index_t blk = 0; blk < 3; ++blk)
        for (index_t j = 0; j < 8; ++j)
          e.push_back({r, ((r * 5 + blk * 11) % 20) * 8 + j});
    add("one-by-n-block-rows", from_pattern(96, 160, e, rng));
  }

  // Checkerboard: every candidate tile is exactly half explicit zeros, the
  // worst admissible fill. The cover must account every fill-in slot and
  // decode must produce bitwise-identical results despite the padding.
  {
    std::vector<std::pair<index_t, index_t>> e;
    for (index_t r = 0; r < 80; ++r)
      for (index_t c = (r & 1); c < 80; c += 2) e.push_back({r, c});
    add("all-fill-in-checkerboard", from_pattern(80, 80, e, rng));
  }

  return out;
}

std::vector<AdversarialCase> adversarial_huge_cases(std::uint64_t seed) {
  Rng rng(seed);
  std::vector<AdversarialCase> out;
  // A few rows spanning columns up to near the index_t maximum: the column
  // deltas need the full 31/32-bit range, and every byte-size accounting
  // path must avoid 32-bit overflow. Row count stays tiny so row_ptr and
  // the value arrays remain allocatable.
  const index_t huge = std::numeric_limits<index_t>::max() - 8;
  std::vector<std::pair<index_t, index_t>> e;
  for (index_t r = 0; r < 3; ++r) {
    e.push_back({r, 0});
    e.push_back({r, 1 + r});
    e.push_back({r, huge - 1 - r});
  }
  Coo coo;
  coo.rows = 3;
  coo.cols = huge;
  for (const auto& [r, c] : e) coo.push(r, c, rng.uniform() * 2 - 1);
  coo.canonicalize();
  out.push_back({"near-max-cols", coo_to_csr(coo)});
  return out;
}

} // namespace bro::sparse
