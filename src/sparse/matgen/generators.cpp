#include "sparse/matgen/generators.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "util/error.h"
#include "util/rng.h"

namespace bro::sparse {

namespace {

index_t clamp_index(long v, index_t lo, index_t hi) {
  return static_cast<index_t>(std::clamp<long>(v, lo, hi));
}

/// Map a standard-normal deviate through the requested length distribution.
index_t length_from_z(const GenSpec& spec, double z) {
  double len = spec.mu;
  switch (spec.len_dist) {
    case LenDist::kConstant:
      len = spec.mu;
      break;
    case LenDist::kNormal:
      // Truncated at +-2 sigma: real mesh degree distributions are bounded
      // (e.g. cant's true maximum row is ~mu + sigma), and an unbounded tail
      // would inflate the ELLPACK width k far beyond what the paper's
      // matrices exhibit.
      len = spec.mu + spec.sigma * std::clamp(z, -2.0, 2.0);
      break;
    case LenDist::kLogNormal: {
      // Parameterize so the resulting lengths have roughly the requested
      // mean and sigma: for lognormal, m = exp(a + s^2/2).
      const double cv2 = (spec.sigma * spec.sigma) / (spec.mu * spec.mu);
      const double s2 = std::log1p(cv2);
      const double a = std::log(spec.mu) - 0.5 * s2;
      len = std::exp(a + std::sqrt(s2) * z);
      break;
    }
    case LenDist::kPareto: {
      // Pareto with alpha chosen from mu/min_len; xm = min_len. The normal
      // deviate is mapped through its CDF to a uniform first.
      const double xm = std::max<double>(1.0, spec.min_len);
      const double alpha =
          spec.mu > xm ? spec.mu / (spec.mu - xm) : 10.0; // mean = a*xm/(a-1)
      double u = 0.5 * (1.0 + std::erf(z / 1.4142135623730951));
      u = std::clamp(u, 1e-12, 1.0 - 1e-12);
      len = xm / std::pow(1.0 - u, 1.0 / std::max(1.01, alpha));
      break;
    }
  }
  return clamp_index(std::lround(len), spec.min_len, spec.cols);
}

/// Draw all row lengths. With len_corr > 0 a coarse standard-normal field is
/// linearly interpolated (and re-standardized) so nearby rows get similar
/// lengths, mirroring the smooth degree variation of real meshes.
std::vector<index_t> draw_lengths(const GenSpec& spec, Rng& rng) {
  std::vector<index_t> lengths(static_cast<std::size_t>(spec.rows));
  if (spec.len_corr <= 1) {
    for (auto& l : lengths) l = length_from_z(spec, rng.normal());
    return lengths;
  }
  const index_t step = spec.len_corr;
  const std::size_t knots = static_cast<std::size_t>(spec.rows / step) + 2;
  std::vector<double> knot(knots);
  for (auto& k : knot) k = rng.normal();
  for (index_t r = 0; r < spec.rows; ++r) {
    const std::size_t k0 = static_cast<std::size_t>(r / step);
    const double t = static_cast<double>(r % step) / step;
    // Interpolation shrinks the variance by (1-t)^2 + t^2; re-standardize so
    // the marginal distribution keeps the requested sigma.
    const double z = (knot[k0] * (1.0 - t) + knot[k0 + 1] * t) /
                     std::sqrt((1.0 - t) * (1.0 - t) + t * t);
    lengths[static_cast<std::size_t>(r)] = length_from_z(spec, z);
  }
  return lengths;
}

/// Aligned-block mode: a train of `run`-wide blocks spaced `gap` apart,
/// centred on the row's diagonal position with mild jitter.
void draw_columns_aligned(const GenSpec& spec, index_t row, index_t len,
                          Rng& rng, std::vector<index_t>& out) {
  out.clear();
  if (len <= 0) return;
  const int run = std::max(1, spec.run);
  const index_t nb = std::max<index_t>(1, (len + run - 1) / run);
  const double center =
      spec.rows > 1
          ? static_cast<double>(row) * (spec.cols - 1) / (spec.rows - 1)
          : 0.0;
  const double gap = std::max(2.0, spec.band_frac * spec.cols);
  const double stride = run + gap;
  const double start = center - 0.5 * (nb - 1) * stride;

  std::unordered_set<index_t> seen;
  seen.reserve(static_cast<std::size_t>(len) * 2);
  for (index_t b = 0; b < nb; ++b) {
    const double jitter = rng.normal() * gap * spec.block_jitter;
    long s = std::lround(start + b * stride + jitter);
    s -= s % run; // align run starts so slice columns line up across rows
    for (int t = 0; t < run && static_cast<index_t>(seen.size()) < len; ++t)
      seen.insert(clamp_index(s + t, 0, spec.cols - 1));
  }
  // Deterministic fill for collisions after clamping near the edges.
  for (long c = std::lround(center);
       static_cast<index_t>(seen.size()) < len && c >= 0; --c)
    seen.insert(clamp_index(c, 0, spec.cols - 1));

  out.assign(seen.begin(), seen.end());
  std::sort(out.begin(), out.end());
}

/// Draw a row's column set: mixture of banded-local and uniform picks, each
/// expanded into a run of consecutive columns.
void draw_columns(const GenSpec& spec, index_t row, index_t len, Rng& rng,
                  std::vector<index_t>& out) {
  if (spec.aligned_blocks) {
    draw_columns_aligned(spec, row, len, rng, out);
    return;
  }
  out.clear();
  if (len <= 0) return;
  std::unordered_set<index_t> seen;
  seen.reserve(static_cast<std::size_t>(len) * 2);

  const double center =
      spec.rows > 1
          ? static_cast<double>(row) * (spec.cols - 1) / (spec.rows - 1)
          : 0.0;
  const double band = std::max(1.0, spec.band_frac * spec.cols);
  const int run = std::max(1, spec.run);

  // Cap attempts so adversarial parameters (len close to cols) terminate;
  // any shortfall is filled deterministically afterwards.
  long attempts = 16L * len + 64;
  while (static_cast<index_t>(seen.size()) < len && attempts-- > 0) {
    long base;
    if (rng.uniform() < spec.local_prob) {
      base = std::lround(center + rng.normal() * band);
    } else {
      base = static_cast<long>(rng.below(static_cast<std::uint64_t>(spec.cols)));
    }
    // Align run starts so repeated hits reinforce the same block pattern.
    base -= base % run;
    for (int t = 0; t < run && static_cast<index_t>(seen.size()) < len; ++t) {
      const index_t c = clamp_index(base + t, 0, spec.cols - 1);
      seen.insert(c);
    }
  }
  // Deterministic fill for the (rare) shortfall.
  for (index_t c = 0; static_cast<index_t>(seen.size()) < len && c < spec.cols;
       ++c)
    seen.insert(c);

  out.assign(seen.begin(), seen.end());
  std::sort(out.begin(), out.end());
}

} // namespace

Csr generate(const GenSpec& spec) {
  BRO_CHECK(spec.rows > 0 && spec.cols > 0);
  Rng rng(spec.seed);

  // Choose which rows carry spikes (deterministically spread out).
  std::vector<index_t> lengths = draw_lengths(spec, rng);
  if (spec.spike_rows > 0) {
    const index_t stride = std::max<index_t>(1, spec.rows / spec.spike_rows);
    for (index_t s = 0; s < spec.spike_rows; ++s) {
      const index_t r = std::min<index_t>(spec.rows - 1, s * stride + stride / 2);
      const double jitter = 0.5 + rng.uniform(); // 0.5x .. 1.5x
      lengths[r] = clamp_index(std::lround(spec.spike_len * jitter), 1,
                               spec.cols);
    }
  }

  Csr out;
  out.rows = spec.rows;
  out.cols = spec.cols;
  out.row_ptr.assign(static_cast<std::size_t>(spec.rows) + 1, 0);
  std::size_t total = 0;
  for (index_t r = 0; r < spec.rows; ++r) total += lengths[r];
  out.col_idx.reserve(total);
  out.vals.reserve(total);

  std::vector<index_t> cols;
  for (index_t r = 0; r < spec.rows; ++r) {
    // Spiked rows scatter uniformly (dense rows touch everything).
    GenSpec row_spec = spec;
    if (spec.spike_rows > 0 && lengths[r] > 4 * spec.mu)
      row_spec.local_prob = 0.0;
    draw_columns(row_spec, r, lengths[r], rng, cols);
    for (const index_t c : cols) {
      out.col_idx.push_back(c);
      out.vals.push_back(rng.uniform() * 2.0 - 1.0);
    }
    out.row_ptr[r + 1] = static_cast<index_t>(out.col_idx.size());
  }
  return out;
}

Csr generate_dense(index_t rows, index_t cols, std::uint64_t seed) {
  Rng rng(seed);
  Csr out;
  out.rows = rows;
  out.cols = cols;
  out.row_ptr.resize(static_cast<std::size_t>(rows) + 1);
  out.col_idx.resize(static_cast<std::size_t>(rows) * cols);
  out.vals.resize(static_cast<std::size_t>(rows) * cols);
  for (index_t r = 0; r <= rows; ++r)
    out.row_ptr[r] = r * cols;
  for (index_t r = 0; r < rows; ++r)
    for (index_t c = 0; c < cols; ++c) {
      out.col_idx[static_cast<std::size_t>(r) * cols + c] = c;
      out.vals[static_cast<std::size_t>(r) * cols + c] =
          rng.uniform() * 2.0 - 1.0;
    }
  return out;
}

Csr generate_grid2d(index_t nx, index_t ny, std::uint64_t seed) {
  Rng rng(seed);
  const index_t n = nx * ny;
  Csr out;
  out.rows = n;
  out.cols = n;
  out.row_ptr.assign(static_cast<std::size_t>(n) + 1, 0);
  for (index_t y = 0; y < ny; ++y)
    for (index_t x = 0; x < nx; ++x) {
      const index_t i = y * nx + x;
      index_t deg = 0;
      if (y > 0) ++deg;
      if (x > 0) ++deg;
      if (x + 1 < nx) ++deg;
      if (y + 1 < ny) ++deg;
      out.row_ptr[i + 1] = deg;
    }
  for (index_t i = 0; i < n; ++i) out.row_ptr[i + 1] += out.row_ptr[i];
  out.col_idx.resize(static_cast<std::size_t>(out.row_ptr[n]));
  out.vals.resize(out.col_idx.size());
  for (index_t y = 0; y < ny; ++y)
    for (index_t x = 0; x < nx; ++x) {
      const index_t i = y * nx + x;
      index_t p = out.row_ptr[i];
      auto put = [&](index_t c) {
        out.col_idx[p] = c;
        out.vals[p] = rng.uniform() * 2.0 - 1.0;
        ++p;
      };
      if (y > 0) put(i - nx);
      if (x > 0) put(i - 1);
      if (x + 1 < nx) put(i + 1);
      if (y + 1 < ny) put(i + nx);
    }
  return out;
}

Csr generate_poisson2d(index_t nx, index_t ny) {
  const index_t n = nx * ny;
  Csr out;
  out.rows = n;
  out.cols = n;
  out.row_ptr.assign(static_cast<std::size_t>(n) + 1, 0);
  for (index_t y = 0; y < ny; ++y)
    for (index_t x = 0; x < nx; ++x) {
      const index_t i = y * nx + x;
      index_t deg = 1; // diagonal
      if (y > 0) ++deg;
      if (x > 0) ++deg;
      if (x + 1 < nx) ++deg;
      if (y + 1 < ny) ++deg;
      out.row_ptr[i + 1] = deg;
    }
  for (index_t i = 0; i < n; ++i) out.row_ptr[i + 1] += out.row_ptr[i];
  out.col_idx.resize(static_cast<std::size_t>(out.row_ptr[n]));
  out.vals.resize(out.col_idx.size());
  for (index_t y = 0; y < ny; ++y)
    for (index_t x = 0; x < nx; ++x) {
      const index_t i = y * nx + x;
      index_t p = out.row_ptr[i];
      auto put = [&](index_t c, value_t v) {
        out.col_idx[p] = c;
        out.vals[p] = v;
        ++p;
      };
      if (y > 0) put(i - nx, -1.0);
      if (x > 0) put(i - 1, -1.0);
      put(i, 4.0);
      if (x + 1 < nx) put(i + 1, -1.0);
      if (y + 1 < ny) put(i + nx, -1.0);
    }
  return out;
}

Csr generate_lattice4d(index_t side, index_t row_len, int run,
                       std::uint64_t seed) {
  BRO_CHECK(side >= 2 && run >= 1 && row_len >= 1);
  Rng rng(seed);
  const index_t n = side * side * side * side;
  const index_t strides[4] = {1, side, side * side, side * side * side};

  Csr out;
  out.rows = n;
  out.cols = n;
  out.row_ptr.resize(static_cast<std::size_t>(n) + 1);
  out.col_idx.reserve(static_cast<std::size_t>(n) * row_len);
  out.vals.reserve(static_cast<std::size_t>(n) * row_len);
  out.row_ptr[0] = 0;

  std::vector<index_t> cols;
  for (index_t i = 0; i < n; ++i) {
    cols.clear();
    std::unordered_set<index_t> seen;
    // Fixed neighbour pattern: runs of `run` consecutive indices at the
    // site itself and at +-stride in each lattice dimension (wrap-around),
    // like the spin-colour blocks of a lattice QCD operator.
    auto add_run = [&](long base) {
      base -= base % run;
      for (int t = 0;
           t < run && static_cast<index_t>(seen.size()) < row_len; ++t) {
        long c = base + t;
        c = ((c % n) + n) % n; // periodic boundary
        seen.insert(static_cast<index_t>(c));
      }
    };
    add_run(i);
    for (int d = 0; d < 4 && static_cast<index_t>(seen.size()) < row_len; ++d) {
      add_run(static_cast<long>(i) + strides[d] * run);
      add_run(static_cast<long>(i) - strides[d] * run);
    }
    // Top up with additional runs at growing offsets until row_len reached.
    for (long off = 2; static_cast<index_t>(seen.size()) < row_len; ++off) {
      add_run(static_cast<long>(i) + strides[off % 4] * run * off);
    }
    cols.assign(seen.begin(), seen.end());
    std::sort(cols.begin(), cols.end());
    for (const index_t c : cols) {
      out.col_idx.push_back(c);
      out.vals.push_back(rng.uniform() * 2.0 - 1.0);
    }
    out.row_ptr[i + 1] = static_cast<index_t>(out.col_idx.size());
  }
  return out;
}

Csr generate_truss2d(index_t panels, index_t stories, std::uint64_t seed) {
  BRO_CHECK(panels >= 1 && stories >= 2);
  Rng rng(seed);
  const index_t ncols = panels + 1; // node columns along the deck
  const index_t nodes = ncols * stories;
  auto node = [&](index_t p, index_t s) { return p * stories + s; };

  // Node coordinates in panel/story units with fabrication jitter: real
  // survey geometry is never axis-perfect, so no member has an exactly
  // zero direction cosine and every assembled 2x2 node block is fully
  // dense — the property that makes FEM matrices the blocked-format
  // target workload.
  std::vector<double> px(static_cast<std::size_t>(nodes));
  std::vector<double> py(static_cast<std::size_t>(nodes));
  for (index_t p = 0; p < ncols; ++p)
    for (index_t s = 0; s < stories; ++s) {
      const auto n = static_cast<std::size_t>(node(p, s));
      px[n] = static_cast<double>(p) + 0.15 * (rng.uniform() * 2 - 1);
      py[n] = static_cast<double>(s) + 0.15 * (rng.uniform() * 2 - 1);
    }

  // Assemble per-node-pair 2x2 stiffness blocks; std::map keeps block rows
  // and block columns sorted for the CSR emission below.
  std::map<std::pair<index_t, index_t>, std::array<double, 4>> blocks;
  auto add_member = [&](index_t a, index_t b) {
    const double dx = px[static_cast<std::size_t>(b)] -
                      px[static_cast<std::size_t>(a)];
    const double dy = py[static_cast<std::size_t>(b)] -
                      py[static_cast<std::size_t>(a)];
    const double len = std::sqrt(dx * dx + dy * dy);
    const double cx = dx / len;
    const double cy = dy / len;
    // Bar stiffness EA/L with per-member area variation.
    const double k = (0.5 + rng.uniform()) / len;
    const std::array<double, 4> m = {k * cx * cx, k * cx * cy, k * cx * cy,
                                     k * cy * cy};
    auto acc = [&](index_t i, index_t j, double sgn) {
      auto& blk = blocks[{i, j}];
      for (int e = 0; e < 4; ++e) blk[e] += sgn * m[e];
    };
    acc(a, a, 1.0);
    acc(b, b, 1.0);
    acc(a, b, -1.0);
    acc(b, a, -1.0);
  };

  // Chords (horizontal bars) on every story, verticals in every node
  // column, X-bracing diagonals in every bay.
  for (index_t s = 0; s < stories; ++s)
    for (index_t p = 0; p < panels; ++p)
      add_member(node(p, s), node(p + 1, s));
  for (index_t p = 0; p < ncols; ++p)
    for (index_t s = 0; s + 1 < stories; ++s)
      add_member(node(p, s), node(p, s + 1));
  for (index_t p = 0; p < panels; ++p)
    for (index_t s = 0; s + 1 < stories; ++s) {
      add_member(node(p, s), node(p + 1, s + 1));
      add_member(node(p + 1, s), node(p, s + 1));
    }
  // Suspension cables: two tower tops at the quarter points, tied to every
  // third deck node within a bounded span either side — the long-range
  // blocks of a real bridge model. The span cap keeps the tower rows a
  // small constant factor above the mean row length (real cables reach the
  // deck through hangers, not a direct member per deck node); unbounded
  // fans would give the matrix a few huge rows that no sliced format —
  // blocked or not — can represent without massive padding.
  if (panels >= 8) {
    const index_t towers[2] = {panels / 4, (3 * panels) / 4};
    const index_t span = std::min<index_t>(panels / 4, 18);
    for (const index_t tp : towers)
      for (index_t p = std::max<index_t>(0, tp - span);
           p <= std::min<index_t>(panels, tp + span); p += 3) {
        if (p == tp) continue;
        add_member(node(tp, stories - 1), node(p, 0));
      }
  }

  Csr out;
  out.rows = 2 * nodes;
  out.cols = 2 * nodes;
  out.row_ptr.reserve(static_cast<std::size_t>(out.rows) + 1);
  out.row_ptr.push_back(0);
  // Emit dof rows 2a and 2a+1 from node a's (sorted) block row. Jittered
  // coordinates make every block entry nonzero; the guard below only
  // protects against an exact cancellation across members.
  auto row_begin = blocks.begin();
  for (index_t a = 0; a < nodes; ++a) {
    auto row_end = row_begin;
    while (row_end != blocks.end() && row_end->first.first == a) ++row_end;
    for (int i = 0; i < 2; ++i) {
      for (auto it = row_begin; it != row_end; ++it) {
        const index_t b = it->first.second;
        for (int j = 0; j < 2; ++j) {
          const double v = it->second[static_cast<std::size_t>(i * 2 + j)];
          if (v == 0.0) continue;
          out.col_idx.push_back(2 * b + j);
          out.vals.push_back(v);
        }
      }
      out.row_ptr.push_back(static_cast<index_t>(out.col_idx.size()));
    }
    row_begin = row_end;
  }
  return out;
}

void make_diag_dominant(Csr& csr, double margin) {
  BRO_CHECK_MSG(csr.rows == csr.cols, "requires a square matrix");
  // Ensure a diagonal entry exists in every row, then boost it above the
  // absolute row sum.
  Csr out;
  out.rows = csr.rows;
  out.cols = csr.cols;
  out.row_ptr.assign(static_cast<std::size_t>(csr.rows) + 1, 0);
  out.col_idx.reserve(csr.nnz() + csr.rows);
  out.vals.reserve(csr.nnz() + csr.rows);
  for (index_t r = 0; r < csr.rows; ++r) {
    bool have_diag = false;
    double row_abs = 0;
    for (index_t p = csr.row_ptr[r]; p < csr.row_ptr[r + 1]; ++p) {
      if (csr.col_idx[p] == r) have_diag = true;
      else row_abs += std::abs(csr.vals[p]);
    }
    const double diag = row_abs + margin;
    bool placed = false;
    for (index_t p = csr.row_ptr[r]; p < csr.row_ptr[r + 1]; ++p) {
      if (!placed && !have_diag && csr.col_idx[p] > r) {
        out.col_idx.push_back(r);
        out.vals.push_back(diag);
        placed = true;
      }
      out.col_idx.push_back(csr.col_idx[p]);
      out.vals.push_back(csr.col_idx[p] == r ? diag : csr.vals[p]);
    }
    if (!have_diag && !placed) {
      out.col_idx.push_back(r);
      out.vals.push_back(diag);
    }
    out.row_ptr[r + 1] = static_cast<index_t>(out.col_idx.size());
  }
  csr = std::move(out);
}

} // namespace bro::sparse
