// Synthetic sparse matrix generators.
//
// The paper benchmarks 30 University of Florida matrices (Table 2); the
// collection is not available offline, so each matrix is substituted by a
// generator matched on dimensions, nnz, row-length mean/σ, and structure
// class. Structure matters because BRO compressibility is governed by the
// delta-encoded column gaps: FEM matrices have short runs of consecutive
// columns (tiny deltas), grids have a few large fixed offsets, web graphs
// have near-random columns.
#pragma once

#include <cstdint>

#include "sparse/csr.h"

namespace bro::sparse {

/// Row-length distribution families.
enum class LenDist {
  kConstant,  // every row has round(mu) entries
  kNormal,    // clipped normal(mu, sigma)
  kLogNormal, // heavy-ish tail, parameterized by mean/sigma of lengths
  kPareto,    // heavy tail (web graphs, rail)
};

/// Declarative description of a synthetic matrix.
struct GenSpec {
  index_t rows = 0;
  index_t cols = 0;

  LenDist len_dist = LenDist::kNormal;
  double mu = 8.0;    // target mean row length
  double sigma = 2.0; // target row-length standard deviation
  index_t min_len = 1;
  // Spatial correlation length of row lengths, in rows. Real meshes have
  // smoothly varying vertex degrees, so consecutive rows have similar
  // lengths; 0 draws lengths i.i.d. The marginal distribution (mu/sigma)
  // is preserved either way.
  index_t len_corr = 32;

  // Column structure ------------------------------------------------------
  // A pick is "local" with probability local_prob: the base column is drawn
  // from a normal centred on the row's diagonal position with stddev
  // band_frac * cols. Otherwise the base is uniform over all columns. Each
  // base contributes `run` consecutive columns (FEM dof blocks).
  double local_prob = 0.9;
  double band_frac = 0.02;
  int run = 1;

  // Aligned-block mode (FEM matrices): instead of random picks, each row is
  // a train of `run`-wide blocks evenly spaced around the diagonal with
  // small jitter. Rows of a slice then share their column structure, which
  // keeps the per-column delta maxima small — the property that gives real
  // FEM matrices their high BRO-ELL compression ratios.
  bool aligned_blocks = false;
  // Relative jitter of each block's position (fraction of the inter-block
  // gap). Larger jitter widens the per-column delta range across a slice,
  // lowering the compression ratio toward what irregular meshes show.
  double block_jitter = 0.5;

  // Heavy-row spikes (rajat30 / gupta2-style): `spike_rows` rows get
  // approximately `spike_len` entries spread uniformly.
  index_t spike_rows = 0;
  index_t spike_len = 0;

  std::uint64_t seed = 1;
};

/// Generate a CSR matrix from a GenSpec. Values are uniform in [-1, 1].
Csr generate(const GenSpec& spec);

/// Dense m-by-n matrix in CSR form (used by the Fig. 3 scaling experiment).
Csr generate_dense(index_t rows, index_t cols, std::uint64_t seed = 1);

/// 2-D grid transition structure: each site connects to its 4 lattice
/// neighbours (mc2depi-style, μ ≈ 4, σ ≈ 0).
Csr generate_grid2d(index_t nx, index_t ny, std::uint64_t seed = 1);

/// 5-point Poisson stencil on an nx-by-ny grid (SPD; used by solver
/// examples and tests).
Csr generate_poisson2d(index_t nx, index_t ny);

/// 4-D lattice with fixed per-row pattern of `runs` consecutive blocks
/// (qcd5_4-style: exactly `row_len` non-zeros in every row).
Csr generate_lattice4d(index_t side, index_t row_len, int run,
                       std::uint64_t seed = 1);

/// 2-D truss-FEM stiffness matrix (Golden-Gate style): a deck of `panels`
/// X-braced bays, `stories` node rows tall, assembled from bar elements
/// with 2 displacement dofs per node. Each member (direction cosines cx,
/// cy; stiffness ~ 1/length) contributes +-k*[cx^2, cx*cy; cx*cy, cy^2]
/// 2x2 node blocks, so the pattern is a union of dof-aligned 2x2 tiles —
/// the structure class BRO-BCSR targets. When `panels` is large enough a
/// pair of tower nodes gains long suspension-cable members to the deck,
/// adding the far-off-diagonal blocks real bridge models show. Node
/// coordinates carry fabrication jitter, so no member is axis-aligned,
/// every stored 2x2 node block is fully dense, and the assembly produces
/// no exact zeros.
Csr generate_truss2d(index_t panels, index_t stories, std::uint64_t seed = 1);

/// Make the matrix strictly diagonally dominant (adds/boosts the diagonal);
/// keeps the sparsity pattern otherwise. Requires a square matrix.
void make_diag_dominant(Csr& csr, double margin = 1.0);

} // namespace bro::sparse
