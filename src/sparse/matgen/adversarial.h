// Adversarial matrix battery for the bro::check differential harness.
//
// Every matrix here is a shape the BRO compression pipeline must survive
// losslessly but that the synthetic suite generators never produce: empty
// matrices, empty rows inside and at the end of slices, single dense rows,
// maximum column deltas, duplicate-heavy pre-canonical COO input, block
// covers at their extremes (a single dense block, tiles straddling the
// slice boundary, 1xN block rows, half-fill checkerboards), and dimensions
// close to the index_t limit. The differential fuzz driver and the
// cross-format test sweep iterate this list in front of every random round.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sparse/csr.h"

namespace bro::sparse {

struct AdversarialCase {
  std::string name;
  Csr csr;
};

/// The deterministic degenerate-shape battery. Matrices with `spmv_safe`
/// dimensions only; see adversarial_huge_cases() for the near-index_t-max
/// shapes whose x/y vectors are too large to allocate.
std::vector<AdversarialCase> adversarial_suite(std::uint64_t seed = 1);

/// Shapes with dimensions near the index_t maximum: structurally valid and
/// compressible, but an x vector of size cols cannot be allocated, so
/// callers run structure/round-trip checks only.
std::vector<AdversarialCase> adversarial_huge_cases(std::uint64_t seed = 1);

} // namespace bro::sparse
