// Compressed Sparse Row storage. CSR is the library's canonical in-memory
// format: all conversions and the reference SpMV go through it.
#pragma once

#include <span>
#include <vector>

#include "util/types.h"

namespace bro::sparse {

struct Csr {
  index_t rows = 0;
  index_t cols = 0;
  std::vector<index_t> row_ptr; // length rows+1
  std::vector<index_t> col_idx; // length nnz, sorted within each row
  std::vector<value_t> vals;    // length nnz

  std::size_t nnz() const { return vals.size(); }

  index_t row_length(index_t r) const { return row_ptr[r + 1] - row_ptr[r]; }

  std::span<const index_t> row_cols(index_t r) const {
    return {col_idx.data() + row_ptr[r],
            static_cast<std::size_t>(row_length(r))};
  }

  std::span<const value_t> row_vals(index_t r) const {
    return {vals.data() + row_ptr[r], static_cast<std::size_t>(row_length(r))};
  }

  /// Structural validity: monotone row_ptr, in-range sorted column indices.
  bool is_valid() const;

  /// Maximum row length (the ELLPACK width k).
  index_t max_row_length() const;
};

/// y = A * x (sequential reference used as ground truth by every test).
void spmv_csr_reference(const Csr& a, std::span<const value_t> x,
                        std::span<value_t> y);

} // namespace bro::sparse
