// ELLPACK-ITPACK and ELLPACK-R storage (paper §2.1.2 / §2.1.4).
//
// Both store an m-by-k dense pair of arrays (col_idx, vals) in column-major
// order so that GPU thread r reading entry (r, j) is coalesced with its warp
// mates. Padding slots hold col = kPad and val = 0. ELLPACK-R adds the
// row_length array so kernels can stop early instead of testing a sentinel.
#pragma once

#include <vector>

#include "util/types.h"

namespace bro::sparse {

/// Sentinel column index marking an ELLPACK padding slot.
inline constexpr index_t kPad = -1;

struct Ell {
  index_t rows = 0;
  index_t cols = 0;
  index_t width = 0; // k: the maximum row length

  // Column-major m*k arrays: entry (r, j) lives at [j * rows + r].
  std::vector<index_t> col_idx;
  std::vector<value_t> vals;

  std::size_t entries() const { return col_idx.size(); }

  index_t col_at(index_t r, index_t j) const {
    return col_idx[static_cast<std::size_t>(j) * rows + r];
  }
  value_t val_at(index_t r, index_t j) const {
    return vals[static_cast<std::size_t>(j) * rows + r];
  }

  /// Stored bytes of the index array (what BRO-ELL compresses away).
  std::size_t index_bytes() const { return entries() * sizeof(index_t); }

  bool is_valid() const;
};

struct EllR {
  Ell ell;
  std::vector<index_t> row_length; // length rows

  bool is_valid() const;
};

} // namespace bro::sparse
