// Hybrid ELLPACK + COO storage (paper §2.1.3, Bell & Garland's HYB).
#pragma once

#include <span>

#include "sparse/coo.h"
#include "sparse/ell.h"

namespace bro::sparse {

struct Hyb {
  Ell ell;      // the first `ell.width` entries of each row
  Coo coo;      // the overflow entries (canonical order)

  index_t rows() const { return ell.rows; }
  index_t cols() const { return ell.cols; }
  std::size_t nnz() const;

  /// Fraction of non-zeros stored in the ELL part (Table 4's "% BRO-ELL").
  double ell_fraction() const;
};

/// Bell & Garland's split heuristic: pick the largest ELLPACK width k such
/// that at least max(1, rows/3) rows have >= k non-zeros (i.e. adding column
/// k still benefits a third of the rows). Rows shorter than k are padded;
/// entries beyond k spill into the COO part.
index_t hyb_split_width(std::span<const index_t> row_lengths);

} // namespace bro::sparse
