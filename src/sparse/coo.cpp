#include "sparse/coo.h"

#include <algorithm>
#include <numeric>

namespace bro::sparse {

void Coo::canonicalize(bool drop_zeros) {
  const std::size_t n = nnz();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (row_idx[a] != row_idx[b]) return row_idx[a] < row_idx[b];
    return col_idx[a] < col_idx[b];
  });

  std::vector<index_t> r2, c2;
  std::vector<value_t> v2;
  r2.reserve(n);
  c2.reserve(n);
  v2.reserve(n);
  for (const std::size_t i : order) {
    if (!r2.empty() && r2.back() == row_idx[i] && c2.back() == col_idx[i]) {
      v2.back() += vals[i]; // merge duplicate coordinate
    } else {
      r2.push_back(row_idx[i]);
      c2.push_back(col_idx[i]);
      v2.push_back(vals[i]);
    }
  }

  if (drop_zeros) {
    std::size_t w = 0;
    for (std::size_t i = 0; i < v2.size(); ++i) {
      if (v2[i] != value_t{0}) {
        r2[w] = r2[i];
        c2[w] = c2[i];
        v2[w] = v2[i];
        ++w;
      }
    }
    r2.resize(w);
    c2.resize(w);
    v2.resize(w);
  }

  row_idx = std::move(r2);
  col_idx = std::move(c2);
  vals = std::move(v2);
}

bool Coo::is_canonical() const {
  for (std::size_t i = 1; i < nnz(); ++i) {
    if (row_idx[i] < row_idx[i - 1]) return false;
    if (row_idx[i] == row_idx[i - 1] && col_idx[i] <= col_idx[i - 1])
      return false;
  }
  return true;
}

bool Coo::is_valid() const {
  if (row_idx.size() != vals.size() || col_idx.size() != vals.size())
    return false;
  for (std::size_t i = 0; i < nnz(); ++i) {
    if (row_idx[i] < 0 || row_idx[i] >= rows) return false;
    if (col_idx[i] < 0 || col_idx[i] >= cols) return false;
  }
  return true;
}

} // namespace bro::sparse
