#include "sparse/csr.h"

#include <algorithm>

#include "util/error.h"

namespace bro::sparse {

bool Csr::is_valid() const {
  if (row_ptr.size() != static_cast<std::size_t>(rows) + 1) return false;
  if (row_ptr.front() != 0) return false;
  if (static_cast<std::size_t>(row_ptr.back()) != nnz()) return false;
  if (col_idx.size() != vals.size()) return false;
  for (index_t r = 0; r < rows; ++r) {
    if (row_ptr[r + 1] < row_ptr[r]) return false;
    for (index_t p = row_ptr[r]; p < row_ptr[r + 1]; ++p) {
      if (col_idx[p] < 0 || col_idx[p] >= cols) return false;
      if (p > row_ptr[r] && col_idx[p] <= col_idx[p - 1]) return false;
    }
  }
  return true;
}

index_t Csr::max_row_length() const {
  index_t k = 0;
  for (index_t r = 0; r < rows; ++r) k = std::max(k, row_length(r));
  return k;
}

void spmv_csr_reference(const Csr& a, std::span<const value_t> x,
                        std::span<value_t> y) {
  BRO_CHECK(x.size() == static_cast<std::size_t>(a.cols));
  BRO_CHECK(y.size() == static_cast<std::size_t>(a.rows));
  for (index_t r = 0; r < a.rows; ++r) {
    value_t sum = 0;
    for (index_t p = a.row_ptr[r]; p < a.row_ptr[r + 1]; ++p)
      sum += a.vals[p] * x[a.col_idx[p]];
    y[r] = sum;
  }
}

} // namespace bro::sparse
