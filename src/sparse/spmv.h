// Sequential SpMV for each classical storage format. These are the
// functional definitions; the OpenMP-parallel native benchmark kernels and
// the GPU-simulator kernels live in src/kernels/.
#pragma once

#include <span>

#include "sparse/coo.h"
#include "sparse/csr.h"
#include "sparse/ell.h"
#include "sparse/hyb.h"

namespace bro::sparse {

/// y += A * x over COO triples (callers zero y for a plain product).
void spmv_coo_accumulate(const Coo& a, std::span<const value_t> x,
                         std::span<value_t> y);

/// y = A * x over ELLPACK (iterates all k columns, skipping padding).
void spmv_ell(const Ell& a, std::span<const value_t> x, std::span<value_t> y);

/// y = A * x over ELLPACK-R (loops row_length[r] per row).
void spmv_ellr(const EllR& a, std::span<const value_t> x,
               std::span<value_t> y);

/// y = A * x over HYB (ELL pass then COO accumulation).
void spmv_hyb(const Hyb& a, std::span<const value_t> x, std::span<value_t> y);

} // namespace bro::sparse
