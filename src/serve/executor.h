// bro::serve execution layer — plan resolution, worker pools, sharding.
//
// The executor owns what the original monolithic SpmvServer kept tangled
// with its queue: the matrix registry, the PlanCache, the per-matrix
// exec_mu that upholds SpmvPlan's single-executor contract, and per-batch
// metrics (batch sizes, queue-wait and execute-time percentiles, per-format
// latency). execute_batch() takes one coalesced batch from the scheduling
// layer, interleaves the right-hand sides, runs the SpMM, and fulfills the
// request promises.
//
// Two execution strategies:
//
//   * Executor — runs the batch on the calling (dispatch) thread, exactly
//     the old server's behavior; kernels parallelize internally via OpenMP.
//   * ShardedExecutor — owns N WorkerPools. Matrices large enough to shard
//     (>= shard_min_nnz, row-shardable format) execute as S row shards
//     fanned out across the pools through an engine::ShardedSpmvPlan,
//     bitwise-identical to the unsharded plan (engine/shard.h). Smaller or
//     unshardable matrices route whole to one pool chosen by consistent
//     hashing of the matrix id, so a working set of matrices spreads across
//     pools with minimal reshuffling as ids come and go.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "engine/shard.h"
#include "serve/plan_cache.h"
#include "serve/scheduler.h"
#include "util/histogram.h"

namespace bro::serve {

struct ExecutorOptions {
  std::size_t cache_bytes = std::size_t{256} << 20; // plan-cache budget
  // Force one format for every matrix; default auto-selects per matrix.
  std::optional<core::Format> format;

  // ShardedExecutor only (make_executor: pools == 0 selects the plain
  // execute-on-dispatch-thread Executor):
  int pools = 0;        // worker pools
  int pool_threads = 1; // OS threads per pool
  // OpenMP threads each pool worker grants its kernels (omp_set_num_threads
  // on the worker thread); 0 leaves the ambient setting. With sharding,
  // parallelism usually moves from inside the kernel to across shards, so
  // 1 avoids oversubscription.
  int pool_omp = 0;
  int shards = 0;                      // row shards per matrix; <= 1 = off
  std::size_t shard_min_nnz = 100000;  // smaller matrices stay unsharded
};

struct ExecMetrics {
  std::uint64_t served = 0;          // requests whose future got a value
  std::uint64_t failed = 0;          // requests whose future got an exception
  std::uint64_t batches = 0;         // SpMM invocations
  std::uint64_t sharded_batches = 0; // batches that fanned out over shards
  Histogram batch_sizes;             // one sample per batch
  Histogram queue_wait;              // per-request seconds enqueue -> execute
  Histogram execute;                 // per-batch execute seconds
  // One histogram of per-batch execute seconds per canonical format name.
  std::unordered_map<std::string, Histogram> latency_by_format;

  ExecMetrics();
};

/// A fixed pool of worker threads draining a task queue. Each worker pins
/// its OpenMP thread-count ICV at startup (omp_threads > 0), so kernels
/// posted to the pool use that many threads regardless of the ambient
/// setting — the knob that keeps pool-level and kernel-level parallelism
/// from oversubscribing each other.
class WorkerPool {
 public:
  explicit WorkerPool(int threads, int omp_threads = 0);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Run `fn` on a pool thread; the future delivers completion or the
  /// exception `fn` threw.
  std::future<void> post(std::function<void()> fn);

  int threads() const { return static_cast<int>(workers_.size()); }

 private:
  void loop(int omp_threads);

  std::mutex mu_;
  std::condition_variable ready_;
  std::deque<std::packaged_task<void()>> tasks_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

/// Consistent hashing of string keys onto [0, nodes): each node projects
/// `vnodes` points onto a hash ring and a key maps to the next point
/// clockwise. Adding/removing one node moves only ~1/nodes of the keys.
class HashRing {
 public:
  explicit HashRing(int nodes, int vnodes = 64);

  int node(const std::string& key) const;
  int nodes() const { return nodes_; }

 private:
  int nodes_;
  std::vector<std::pair<std::size_t, int>> ring_; // (point, node), sorted
};

class Executor {
 public:
  explicit Executor(ExecutorOptions opts);
  virtual ~Executor() = default;

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  /// Register a matrix under `id` (replacing any previous registration for
  /// new requests; in-flight batches keep the entry they resolved).
  void add_matrix(const std::string& id,
                  std::shared_ptr<const core::Matrix> matrix);

  /// Drop the registration and every plan the cache holds for `id`.
  /// Returns false when the id was not registered. In-flight batches keep
  /// their resolved entry and plan; new submits see an unknown id.
  bool remove_matrix(const std::string& id);

  /// The registered matrix, or null.
  std::shared_ptr<const core::Matrix> matrix(const std::string& id) const;

  /// Execute one coalesced batch on the calling thread: interleave the
  /// right-hand sides, run the SpMM (run_batch strategy), scatter results
  /// into the request promises. Failures become promise exceptions, never
  /// escape.
  void execute_batch(Batch& batch);

  ExecMetrics metrics() const;
  PlanCacheStats cache_stats() const { return cache_.stats(); }
  const ExecutorOptions& options() const { return opts_; }

 protected:
  struct MatrixEntry {
    std::shared_ptr<const core::Matrix> matrix;
    // SpmvPlan is a single-executor object (engine/plan.h); batches for
    // the same matrix serialize on this so two pool workers never share a
    // plan's workspace concurrently.
    std::mutex exec_mu;
    // Lazily built by ShardedExecutor (guarded by shard_mu, executed under
    // exec_mu like the unsharded plan).
    std::mutex shard_mu;
    std::shared_ptr<engine::ShardedSpmvPlan> sharded;
  };

  struct RunResult {
    double secs = 0;                 // execute wall time
    bool sharded = false;            // fanned out across row shards
    const char* format_name = nullptr;
  };

  /// The strategy seam: run Y = A * X for the batch. Base class: resolve
  /// the plan through the cache and execute on the calling thread under
  /// the entry's exec_mu.
  virtual RunResult run_batch(MatrixEntry& entry, const std::string& id,
                              std::span<const value_t> x,
                              std::span<value_t> y, int k);

  const ExecutorOptions opts_;
  PlanCache cache_;

 private:
  mutable std::mutex mu_; // guards matrices_
  std::unordered_map<std::string, std::shared_ptr<MatrixEntry>> matrices_;

  mutable std::mutex metrics_mu_;
  ExecMetrics metrics_;
};

class ShardedExecutor : public Executor {
 public:
  explicit ShardedExecutor(ExecutorOptions opts);

  int pool_count() const { return static_cast<int>(pools_.size()); }

  /// The pool a whole (unsharded) matrix id routes to — exposed so tests
  /// and benches can reason about placement.
  int pool_for(const std::string& id) const { return ring_.node(id); }

 protected:
  RunResult run_batch(MatrixEntry& entry, const std::string& id,
                      std::span<const value_t> x, std::span<value_t> y,
                      int k) override;

 private:
  std::vector<std::unique_ptr<WorkerPool>> pools_;
  HashRing ring_;
};

/// Factory: a ShardedExecutor when pools or sharding are requested, else
/// the plain on-caller-thread Executor.
std::unique_ptr<Executor> make_executor(ExecutorOptions opts);

} // namespace bro::serve
