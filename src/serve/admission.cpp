#include "serve/admission.h"

#include <algorithm>
#include <chrono>

namespace bro::serve {

namespace {

double steady_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

} // namespace

AdmissionController::AdmissionController(AdmissionOptions opts, Clock clock)
    : opts_(opts),
      burst_(opts.burst > 0 ? opts.burst : std::max(opts.rate, 1.0)),
      clock_(clock ? std::move(clock) : Clock(&steady_seconds)) {}

void AdmissionController::admit(const std::string& client,
                                std::size_t queue_depth) {
  std::unique_lock lk(mu_);
  if (opts_.shed_depth > 0 && queue_depth >= opts_.shed_depth) {
    ++stats_.shed;
    lk.unlock();
    throw RejectedError("load shed: " + std::to_string(queue_depth) +
                            " pending >= shed depth " +
                            std::to_string(opts_.shed_depth) +
                            "; retry with backoff",
                        queue_depth);
  }
  if (opts_.rate > 0) {
    const double now = clock_();
    auto [it, inserted] = buckets_.try_emplace(client);
    Bucket& b = it->second;
    if (inserted) {
      b.tokens = burst_; // a new client starts with a full burst allowance
      b.last = now;
    } else {
      b.tokens =
          std::min(burst_, b.tokens + (now - b.last) * opts_.rate);
      b.last = now;
    }
    if (b.tokens < 1.0) {
      ++stats_.throttled;
      lk.unlock();
      throw RejectedError("client '" + client + "' throttled (" +
                              std::to_string(opts_.rate) +
                              " req/s, burst " + std::to_string(burst_) +
                              "); retry later",
                          queue_depth);
    }
    b.tokens -= 1.0;
  }
  ++stats_.admitted;
}

AdmissionStats AdmissionController::stats() const {
  std::lock_guard lk(mu_);
  return stats_;
}

} // namespace bro::serve
