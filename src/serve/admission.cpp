#include "serve/admission.h"

#include <algorithm>
#include <chrono>

namespace bro::serve {

namespace {

double steady_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

} // namespace

AdmissionController::AdmissionController(AdmissionOptions opts, Clock clock)
    : opts_(opts),
      burst_(opts.burst > 0 ? opts.burst : std::max(opts.rate, 1.0)),
      clock_(clock ? std::move(clock) : Clock(&steady_seconds)) {}

void AdmissionController::admit(const std::string& client,
                                std::size_t queue_depth) {
  std::unique_lock lk(mu_);
  if (opts_.shed_depth > 0 && queue_depth >= opts_.shed_depth) {
    ++stats_.shed;
    lk.unlock();
    throw RejectedError("load shed: " + std::to_string(queue_depth) +
                            " pending >= shed depth " +
                            std::to_string(opts_.shed_depth) +
                            "; retry with backoff",
                        queue_depth, RejectCause::kShed);
  }
  if (opts_.rate > 0) {
    const double now = clock_();
    evict_idle_locked(now);
    auto [it, inserted] = buckets_.try_emplace(client);
    if (inserted && opts_.max_clients > 0 &&
        buckets_.size() > opts_.max_clients) {
      // Over the hard cap: evict the least-recently-used other bucket.
      auto lru = buckets_.end();
      for (auto bi = buckets_.begin(); bi != buckets_.end(); ++bi) {
        if (bi == it) continue;
        if (lru == buckets_.end() || bi->second.last < lru->second.last)
          lru = bi;
      }
      if (lru != buckets_.end()) buckets_.erase(lru);
    }
    Bucket& b = it->second;
    if (inserted) {
      b.tokens = burst_; // a new client starts with a full burst allowance
      b.last = now;
    } else {
      b.tokens =
          std::min(burst_, b.tokens + (now - b.last) * opts_.rate);
      b.last = now;
    }
    if (b.tokens < 1.0) {
      ++stats_.throttled;
      lk.unlock();
      throw RejectedError("client '" + client + "' throttled (" +
                              std::to_string(opts_.rate) +
                              " req/s, burst " + std::to_string(burst_) +
                              "); retry later",
                          queue_depth, RejectCause::kThrottled);
    }
    b.tokens -= 1.0;
  }
  ++stats_.admitted;
}

void AdmissionController::evict_idle_locked(double now) {
  if (opts_.idle_window <= 0) return;
  if (now < next_sweep_) return;
  next_sweep_ = now + opts_.idle_window / 2;
  for (auto it = buckets_.begin(); it != buckets_.end();) {
    const Bucket& b = it->second;
    const double idle = now - b.last;
    // Evict only once the bucket has both gone idle for the window and
    // refilled to the burst cap — at that point it is byte-for-byte the
    // bucket a brand-new client would be given, so dropping it cannot
    // change any future admission decision.
    if (idle >= opts_.idle_window && b.tokens + idle * opts_.rate >= burst_)
      it = buckets_.erase(it);
    else
      ++it;
  }
}

AdmissionStats AdmissionController::stats() const {
  std::lock_guard lk(mu_);
  return stats_;
}

std::size_t AdmissionController::tracked_clients() const {
  std::lock_guard lk(mu_);
  return buckets_.size();
}

} // namespace bro::serve
