#include "serve/scheduler.h"

#include "util/error.h"

namespace bro::serve {

Scheduler::Scheduler(std::size_t max_queue, int max_batch)
    : max_queue_(max_queue), max_batch_(max_batch) {}

void Scheduler::enqueue(Request req) {
  std::unique_lock lk(mu_);
  if (queue_.size() >= max_queue_) {
    ++stats_.rejected;
    const std::size_t depth = queue_.size();
    lk.unlock();
    throw RejectedError("serve queue full (" + std::to_string(depth) +
                            " pending, bound " + std::to_string(max_queue_) +
                            "); retry later",
                        depth, RejectCause::kQueueFull);
  }
  req.enqueued = std::chrono::steady_clock::now();
  queue_.push_back(std::move(req));
  ++stats_.submitted;
  lk.unlock();
  work_ready_.notify_one();
}

Batch Scheduler::take_locked() {
  Batch batch;
  batch.push_back(std::move(queue_.front()));
  queue_.pop_front();
  // Coalesce: pull every queued request for the same matrix (submission
  // order preserved) up to max_batch — they become one SpMM.
  for (auto it = queue_.begin();
       it != queue_.end() &&
       batch.size() < static_cast<std::size_t>(max_batch_);) {
    if (it->id == batch.front().id) {
      batch.push_back(std::move(*it));
      it = queue_.erase(it);
    } else {
      ++it;
    }
  }
  ++in_flight_;
  return batch;
}

std::optional<Batch> Scheduler::try_take() {
  std::lock_guard lk(mu_);
  if (queue_.empty()) return std::nullopt;
  return take_locked();
}

std::optional<Batch> Scheduler::wait_take() {
  std::unique_lock lk(mu_);
  for (;;) {
    work_ready_.wait(lk, [&] { return stop_ || !queue_.empty(); });
    if (!queue_.empty()) return take_locked();
    if (stop_) return std::nullopt;
  }
}

void Scheduler::complete() {
  std::lock_guard lk(mu_);
  // A complete() with no taken batch outstanding is a driver bug (double
  // complete, or complete before take); letting in_flight_ go negative
  // would wedge drain() forever instead of failing loudly here.
  BRO_CHECK_MSG(in_flight_ > 0, "Scheduler::complete() without a taken batch");
  --in_flight_;
  if (queue_.empty() && in_flight_ == 0) idle_.notify_all();
}

void Scheduler::stop() {
  {
    std::lock_guard lk(mu_);
    stop_ = true;
  }
  work_ready_.notify_all();
}

void Scheduler::drain() {
  std::unique_lock lk(mu_);
  idle_.wait(lk, [&] { return queue_.empty() && in_flight_ == 0; });
}

std::size_t Scheduler::depth() const {
  std::lock_guard lk(mu_);
  return queue_.size();
}

SchedulerStats Scheduler::stats() const {
  std::lock_guard lk(mu_);
  return stats_;
}

} // namespace bro::serve
