// bro::serve scheduling layer — the bounded queue and SpMM coalescing.
//
// Extracted from the original monolithic SpmvServer: the scheduler owns
// the pending-request deque, enforces the max_queue backpressure bound
// (RejectedError with the observed depth), and folds queued requests
// against the same matrix into one batch of up to max_batch right-hand
// sides — the paper's bits-per-flop win applied across requests, since the
// executor decodes each index once per batch (kernels/native_spmm.h).
//
// Dispatch protocol: a driver thread (the façade's dispatch loop, or a
// caller's poll_once) takes a coalesced batch with wait_take()/try_take(),
// hands it to the execution layer, and calls complete() when the batch is
// finished. take marks the batch in-flight, so drain() can wait for
// "queue empty AND nothing executing".
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "serve/admission.h"
#include "util/types.h"

namespace bro::serve {

/// One pending y = A[id] * x request. `enqueued` is stamped by the
/// scheduler; the executor turns it into the queue-wait sample.
struct Request {
  std::string id;
  std::vector<value_t> x;
  std::promise<std::vector<value_t>> result;
  std::chrono::steady_clock::time_point enqueued;
};

/// A coalesced batch: >= 1 requests, all against the same matrix id, in
/// submission order.
using Batch = std::vector<Request>;

struct SchedulerStats {
  std::uint64_t submitted = 0; // accepted into the queue
  std::uint64_t rejected = 0;  // refused: queue at max_queue
};

class Scheduler {
 public:
  Scheduler(std::size_t max_queue, int max_batch);

  /// Enqueue or throw RejectedError (with the observed depth) when the
  /// queue is at max_queue. Stamps req.enqueued.
  void enqueue(Request req);

  /// Coalesced batch, or nullopt immediately when the queue is empty.
  std::optional<Batch> try_take();

  /// Block until work or stop(); nullopt only when stopped with an empty
  /// queue (the dispatch-loop exit signal).
  std::optional<Batch> wait_take();

  /// The batch handed out by the last take has finished executing.
  void complete();

  /// Wake every wait_take() blocked on an empty queue; they return nullopt
  /// once the queue is drained.
  void stop();

  /// Block until the queue is empty and no taken batch is outstanding.
  /// Callers in synchronous setups must drive try_take themselves first.
  void drain();

  std::size_t depth() const;
  SchedulerStats stats() const;

 private:
  Batch take_locked();

  const std::size_t max_queue_;
  const int max_batch_;

  mutable std::mutex mu_;
  std::condition_variable work_ready_;
  std::condition_variable idle_;
  std::deque<Request> queue_;
  int in_flight_ = 0;
  bool stop_ = false;
  SchedulerStats stats_;
};

} // namespace bro::serve
