#include "serve/plan_cache.h"

#ifdef _OPENMP
#include <omp.h>
#endif

#include "util/error.h"

namespace bro::serve {

namespace {

int current_thread_count() {
#ifdef _OPENMP
  return omp_get_max_threads();
#else
  return 1;
#endif
}

} // namespace

std::size_t PlanKeyHash::operator()(const PlanKey& k) const {
  std::size_t h = std::hash<std::string>{}(k.matrix_id);
  h ^= std::hash<std::size_t>{}(static_cast<std::size_t>(k.format) * 131 +
                                static_cast<std::size_t>(k.threads)) +
       0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  return h;
}

PlanCache::PlanCache(std::size_t max_resident_bytes)
    : cap_(max_resident_bytes) {
  BRO_CHECK_MSG(cap_ > 0, "PlanCache needs a nonzero byte budget");
}

std::shared_ptr<engine::SpmvPlan> PlanCache::get_or_build(
    const std::string& matrix_id,
    const std::shared_ptr<const core::Matrix>& matrix,
    std::optional<core::Format> format) {
  BRO_CHECK_MSG(matrix != nullptr, "PlanCache requires a matrix");
  const core::Format f = format.value_or(matrix->auto_format());
  const PlanKey key{matrix_id, f, current_thread_count()};

  std::unique_lock lk(mu_);
  for (;;) {
    auto it = entries_.find(key);
    if (it == entries_.end()) break;
    Entry& e = it->second;
    if (e.building) {
      // Another thread is compressing this key; wait for it rather than
      // duplicating the build. A failed build erases the entry, so the
      // loop re-finds and re-dispatches.
      build_done_.wait(lk);
      continue;
    }
    ++stats_.hits;
    lru_.splice(lru_.begin(), lru_, e.lru_it);
    return e.plan;
  }

  ++stats_.misses;
  Entry& e = entries_[key]; // building placeholder; reference survives rehash
  auto& slot = build_mu_[key.matrix_id];
  if (!slot) slot = std::make_shared<std::mutex>();
  const auto build_mu = slot;
  lk.unlock();

  std::shared_ptr<engine::SpmvPlan> plan;
  std::size_t bytes = 0;
  try {
    std::lock_guard build_lk(*build_mu);
    plan = std::make_shared<engine::SpmvPlan>(matrix, f);
    bytes = plan->resident_bytes();
  } catch (...) {
    lk.lock();
    entries_.erase(key);
    ++stats_.build_failures;
    build_done_.notify_all();
    throw;
  }

  lk.lock();
  if (e.discard) {
    // The matrix was removed while this build was in flight: drop the
    // entry instead of inserting a plan for a matrix the server no longer
    // serves. This caller's request predates the removal, so it still
    // gets its plan — it just is not cached.
    entries_.erase(key);
    build_done_.notify_all();
    return plan;
  }
  e.plan = std::move(plan);
  e.bytes = bytes;
  e.building = false;
  stats_.resident_bytes += bytes;
  lru_.push_front(key);
  e.lru_it = lru_.begin();
  evict_locked();
  build_done_.notify_all();
  return e.plan;
}

void PlanCache::evict_locked() {
  // The LRU list holds completed entries only, most recent at the front;
  // keeping >= 1 entry admits a single oversized plan instead of thrashing.
  while (stats_.resident_bytes > cap_ && lru_.size() > 1) {
    const PlanKey victim = lru_.back();
    auto it = entries_.find(victim);
    stats_.resident_bytes -= it->second.bytes;
    ++stats_.evictions;
    entries_.erase(it);
    lru_.pop_back();
  }
}

PlanCacheStats PlanCache::stats() const {
  std::lock_guard lk(mu_);
  PlanCacheStats s = stats_;
  s.entries = entries_.size();
  return s;
}

std::size_t PlanCache::erase_matrix(const std::string& matrix_id) {
  std::lock_guard lk(mu_);
  std::size_t dropped = 0;
  for (auto it = lru_.begin(); it != lru_.end();) {
    if (it->matrix_id != matrix_id) {
      ++it;
      continue;
    }
    auto entry = entries_.find(*it);
    stats_.resident_bytes -= entry->second.bytes;
    entries_.erase(entry);
    it = lru_.erase(it);
    ++dropped;
  }
  // The LRU walk only sees completed entries: builds still in flight live
  // solely in entries_. Mark them so their completion drops the result
  // instead of re-inserting a plan for the removed matrix.
  for (auto& [key, e] : entries_) {
    if (e.building && !e.discard && key.matrix_id == matrix_id) {
      e.discard = true;
      ++dropped;
    }
  }
  build_mu_.erase(matrix_id);
  return dropped;
}

void PlanCache::clear() {
  std::lock_guard lk(mu_);
  for (const PlanKey& key : lru_) {
    auto it = entries_.find(key);
    stats_.resident_bytes -= it->second.bytes;
    entries_.erase(it);
  }
  lru_.clear();
  // Same blind spot as erase_matrix: in-flight builds are not on the LRU
  // list. Discard them on completion, and release the per-matrix build
  // locks (builders keep theirs alive through their own shared_ptr).
  for (auto& [key, e] : entries_) {
    (void)key;
    if (e.building) e.discard = true;
  }
  build_mu_.clear();
}

} // namespace bro::serve
