#include "serve/executor.h"

#include <algorithm>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "engine/format_registry.h"
#include "util/error.h"
#include "util/timer.h"

namespace bro::serve {

namespace {

// Latency buckets: 1 µs .. 10 s, doubling — 24 buckets covers every host
// kernel this repo runs (and the queue waits in front of them).
Histogram latency_histogram() {
  return Histogram::exponential(1e-6, 10.0, 2.0);
}

} // namespace

ExecMetrics::ExecMetrics()
    : batch_sizes(Histogram::linear(0.5, 64.5, 64)),
      queue_wait(latency_histogram()),
      execute(latency_histogram()) {}

// ---------------------------------------------------------------- WorkerPool

WorkerPool::WorkerPool(int threads, int omp_threads) {
  BRO_CHECK_MSG(threads >= 1, "WorkerPool needs >= 1 thread, got " << threads);
  workers_.reserve(static_cast<std::size_t>(threads));
  for (int i = 0; i < threads; ++i)
    workers_.emplace_back([this, omp_threads] { loop(omp_threads); });
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard lk(mu_);
    stop_ = true;
  }
  ready_.notify_all();
  for (auto& w : workers_) w.join();
}

std::future<void> WorkerPool::post(std::function<void()> fn) {
  std::packaged_task<void()> task(std::move(fn));
  auto future = task.get_future();
  {
    std::lock_guard lk(mu_);
    BRO_CHECK_MSG(!stop_, "WorkerPool::post after shutdown");
    tasks_.push_back(std::move(task));
  }
  ready_.notify_one();
  return future;
}

void WorkerPool::loop(int omp_threads) {
#ifdef _OPENMP
  // The num-threads ICV is per OS thread: pinning it here scopes every
  // kernel this worker runs, without touching other pools or the caller.
  if (omp_threads > 0) omp_set_num_threads(omp_threads);
#else
  (void)omp_threads;
#endif
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock lk(mu_);
      ready_.wait(lk, [&] { return stop_ || !tasks_.empty(); });
      if (tasks_.empty()) return; // stop_ and drained
      task = std::move(tasks_.front());
      tasks_.pop_front();
    }
    task(); // exceptions land in the poster's future
  }
}

// ------------------------------------------------------------------ HashRing

HashRing::HashRing(int nodes, int vnodes) : nodes_(nodes) {
  BRO_CHECK_MSG(nodes >= 1, "HashRing needs >= 1 node, got " << nodes);
  BRO_CHECK_MSG(vnodes >= 1, "HashRing needs >= 1 vnode, got " << vnodes);
  const std::hash<std::string> h;
  ring_.reserve(static_cast<std::size_t>(nodes) *
                static_cast<std::size_t>(vnodes));
  for (int n = 0; n < nodes; ++n)
    for (int v = 0; v < vnodes; ++v)
      ring_.emplace_back(
          h("pool-" + std::to_string(n) + "#" + std::to_string(v)), n);
  std::sort(ring_.begin(), ring_.end());
}

int HashRing::node(const std::string& key) const {
  const std::size_t point = std::hash<std::string>{}(key);
  const auto it = std::lower_bound(
      ring_.begin(), ring_.end(), point,
      [](const auto& entry, std::size_t p) { return entry.first < p; });
  return it == ring_.end() ? ring_.front().second : it->second;
}

// ------------------------------------------------------------------ Executor

Executor::Executor(ExecutorOptions opts)
    : opts_(opts), cache_(opts.cache_bytes) {}

void Executor::add_matrix(const std::string& id,
                          std::shared_ptr<const core::Matrix> matrix) {
  BRO_CHECK_MSG(matrix != nullptr, "add_matrix requires a matrix");
  auto entry = std::make_shared<MatrixEntry>();
  entry->matrix = std::move(matrix);
  std::lock_guard lk(mu_);
  matrices_[id] = std::move(entry);
}

bool Executor::remove_matrix(const std::string& id) {
  bool existed;
  {
    std::lock_guard lk(mu_);
    existed = matrices_.erase(id) > 0;
  }
  // Drop the cached plans either way: a stale build may survive a replaced
  // registration.
  cache_.erase_matrix(id);
  return existed;
}

std::shared_ptr<const core::Matrix> Executor::matrix(
    const std::string& id) const {
  std::lock_guard lk(mu_);
  const auto it = matrices_.find(id);
  return it == matrices_.end() ? nullptr : it->second->matrix;
}

void Executor::execute_batch(Batch& batch) {
  const std::string& id = batch.front().id;
  std::shared_ptr<MatrixEntry> entry;
  {
    std::lock_guard lk(mu_);
    const auto it = matrices_.find(id);
    if (it != matrices_.end()) entry = it->second;
  }
  const auto uk = batch.size();
  const int k = static_cast<int>(uk);

  // Queue-wait samples are taken whether the batch succeeds or not — the
  // time was spent either way.
  const auto start = std::chrono::steady_clock::now();
  std::vector<double> waits;
  waits.reserve(uk);
  for (const Request& req : batch)
    waits.push_back(
        std::chrono::duration<double>(start - req.enqueued).count());

  try {
    BRO_CHECK_MSG(entry != nullptr,
                  "matrix '" << id << "' was removed while queued");
    const auto rows = static_cast<std::size_t>(entry->matrix->rows());
    const auto cols = static_cast<std::size_t>(entry->matrix->cols());

    std::vector<value_t> x_batch(cols * uk);
    for (std::size_t j = 0; j < uk; ++j) {
      BRO_CHECK_MSG(batch[j].x.size() == cols,
                    "matrix '" << id << "' changed shape mid-flight");
      for (std::size_t c = 0; c < cols; ++c)
        x_batch[c * uk + j] = batch[j].x[c];
    }
    std::vector<value_t> y_batch(rows * uk);

    const RunResult run = run_batch(*entry, id, x_batch, y_batch, k);

    for (std::size_t j = 0; j < uk; ++j) {
      std::vector<value_t> y(rows);
      for (std::size_t r = 0; r < rows; ++r) y[r] = y_batch[r * uk + j];
      batch[j].result.set_value(std::move(y));
    }

    std::lock_guard mlk(metrics_mu_);
    ++metrics_.batches;
    if (run.sharded) ++metrics_.sharded_batches;
    metrics_.served += uk;
    metrics_.batch_sizes.add(static_cast<double>(k));
    for (double w : waits) metrics_.queue_wait.add(w);
    metrics_.execute.add(run.secs);
    if (run.format_name) {
      auto [hit, inserted] = metrics_.latency_by_format.try_emplace(
          run.format_name, latency_histogram());
      (void)inserted;
      hit->second.add(run.secs);
    }
  } catch (...) {
    const auto error = std::current_exception();
    for (auto& req : batch) req.result.set_exception(error);
    std::lock_guard mlk(metrics_mu_);
    metrics_.failed += uk;
    for (double w : waits) metrics_.queue_wait.add(w);
  }
}

Executor::RunResult Executor::run_batch(MatrixEntry& entry,
                                        const std::string& id,
                                        std::span<const value_t> x,
                                        std::span<value_t> y, int k) {
  RunResult run;
  auto plan = cache_.get_or_build(id, entry.matrix, opts_.format);
  run.format_name = plan->format_traits().name;
  // One executor per plan at a time (the SpmvPlan contract).
  std::lock_guard ex(entry.exec_mu);
  Timer t;
  plan->execute_multi(x, y, k);
  run.secs = t.seconds();
  return run;
}

ExecMetrics Executor::metrics() const {
  std::lock_guard mlk(metrics_mu_);
  return metrics_;
}

// ----------------------------------------------------------- ShardedExecutor

ShardedExecutor::ShardedExecutor(ExecutorOptions opts)
    : Executor(opts), ring_(std::max(opts.pools, 1)) {
  const int pools = std::max(opts.pools, 1);
  const int threads = std::max(opts.pool_threads, 1);
  pools_.reserve(static_cast<std::size_t>(pools));
  for (int p = 0; p < pools; ++p)
    pools_.push_back(std::make_unique<WorkerPool>(threads, opts.pool_omp));
}

Executor::RunResult ShardedExecutor::run_batch(MatrixEntry& entry,
                                               const std::string& id,
                                               std::span<const value_t> x,
                                               std::span<value_t> y, int k) {
  // Shard only when the format the unsharded path would pick is itself
  // row-shardable — never silently trade the matrix's format for a
  // shardable one (that would change results and drop the compression the
  // format was chosen for).
  const core::Format format =
      opts_.format ? *opts_.format : entry.matrix->auto_format();
  const bool shard = opts_.shards > 1 && entry.matrix->rows() > 1 &&
                     entry.matrix->nnz() >= opts_.shard_min_nnz &&
                     engine::traits(format).row_shardable;

  if (!shard) {
    // Whole-matrix route: consistent-hash the id to one pool so a working
    // set of matrices spreads across pools.
    RunResult run;
    pools_[static_cast<std::size_t>(ring_.node(id))]
        ->post([&] { run = Executor::run_batch(entry, id, x, y, k); })
        .get();
    return run;
  }

  std::shared_ptr<engine::ShardedSpmvPlan> plan;
  {
    std::lock_guard lk(entry.shard_mu);
    if (!entry.sharded)
      entry.sharded = std::make_shared<engine::ShardedSpmvPlan>(
          entry.matrix, opts_.shards, format);
    plan = entry.sharded;
  }

  RunResult run;
  run.sharded = true;
  run.format_name = engine::traits(plan->format()).name;
  const auto uk = static_cast<std::size_t>(k);

  // Same-matrix batches serialize on exec_mu (each shard plan is a
  // single-executor SpmvPlan); the shards of *this* batch fan out across
  // the pools and write disjoint y sub-spans.
  std::lock_guard ex(entry.exec_mu);
  Timer t;
  std::vector<std::future<void>> parts;
  parts.reserve(static_cast<std::size_t>(plan->shard_count()));
  for (int s = 0; s < plan->shard_count(); ++s) {
    const engine::RowShard& sh = plan->shard(s);
    auto y_part = y.subspan(static_cast<std::size_t>(sh.begin) * uk,
                            static_cast<std::size_t>(sh.rows()) * uk);
    parts.push_back(
        pools_[static_cast<std::size_t>(s) % pools_.size()]->post(
            [plan, s, x, y_part, k] {
              plan->execute_shard_multi(s, x, y_part, k);
            }));
  }
  std::exception_ptr err;
  for (auto& part : parts) {
    try {
      part.get();
    } catch (...) {
      if (!err) err = std::current_exception();
    }
  }
  run.secs = t.seconds();
  if (err) std::rethrow_exception(err);
  return run;
}

// ------------------------------------------------------------------- factory

std::unique_ptr<Executor> make_executor(ExecutorOptions opts) {
  if (opts.pools > 0 || opts.shards > 1)
    return std::make_unique<ShardedExecutor>(opts);
  return std::make_unique<Executor>(opts);
}

} // namespace bro::serve
