#include "serve/server.h"

#include "engine/format_registry.h"
#include "util/error.h"
#include "util/timer.h"

namespace bro::serve {

namespace {

// Latency buckets: 1 µs .. 10 s, doubling — 24 buckets covers every host
// kernel this repo runs.
Histogram latency_histogram() {
  return Histogram::exponential(1e-6, 10.0, 2.0);
}

} // namespace

ServerMetrics::ServerMetrics()
    : batch_sizes(Histogram::linear(0.5, 64.5, 64)) {}

SpmvServer::SpmvServer(ServerOptions opts)
    : opts_(opts), cache_(opts.cache_bytes) {
  BRO_CHECK_MSG(opts_.threads >= 0, "SpmvServer threads must be >= 0");
  BRO_CHECK_MSG(opts_.max_batch >= 1, "SpmvServer max_batch must be >= 1");
  BRO_CHECK_MSG(opts_.max_queue >= 1, "SpmvServer max_queue must be >= 1");
  workers_.reserve(static_cast<std::size_t>(opts_.threads));
  for (int i = 0; i < opts_.threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

SpmvServer::~SpmvServer() {
  {
    std::lock_guard lk(mu_);
    stop_ = true;
  }
  work_ready_.notify_all();
  for (auto& w : workers_) w.join();
  // Synchronous servers have no workers to drain the queue; serve what is
  // left so no promise is silently broken.
  while (poll_once()) {
  }
}

void SpmvServer::add_matrix(const std::string& id, core::Matrix matrix) {
  add_matrix(id,
             std::make_shared<const core::Matrix>(std::move(matrix)));
}

void SpmvServer::add_matrix(const std::string& id,
                            std::shared_ptr<const core::Matrix> matrix) {
  BRO_CHECK_MSG(matrix != nullptr, "add_matrix requires a matrix");
  auto entry = std::make_shared<MatrixEntry>();
  entry->matrix = std::move(matrix);
  std::lock_guard lk(mu_);
  matrices_[id] = std::move(entry);
}

std::shared_ptr<const core::Matrix> SpmvServer::matrix(
    const std::string& id) const {
  std::lock_guard lk(mu_);
  const auto it = matrices_.find(id);
  return it == matrices_.end() ? nullptr : it->second->matrix;
}

std::future<std::vector<value_t>> SpmvServer::submit(
    const std::string& id, std::vector<value_t> x) {
  std::unique_lock lk(mu_);
  const auto it = matrices_.find(id);
  BRO_CHECK_MSG(it != matrices_.end(), "unknown matrix id '" << id << "'");
  const auto cols =
      static_cast<std::size_t>(it->second->matrix->cols());
  BRO_CHECK_MSG(x.size() == cols, "matrix '" << id << "' needs x of size "
                                             << cols << ", got " << x.size());
  if (queue_.size() >= opts_.max_queue) {
    lk.unlock();
    {
      std::lock_guard mlk(metrics_mu_);
      ++metrics_.rejected;
    }
    throw RejectedError("serve queue full (" +
                        std::to_string(opts_.max_queue) +
                        " pending); retry later");
  }
  Request req;
  req.id = id;
  req.x = std::move(x);
  auto future = req.result.get_future();
  queue_.push_back(std::move(req));
  lk.unlock();
  {
    std::lock_guard mlk(metrics_mu_);
    ++metrics_.submitted;
  }
  work_ready_.notify_one();
  return future;
}

std::vector<SpmvServer::Request> SpmvServer::take_batch_locked() {
  std::vector<Request> batch;
  batch.push_back(std::move(queue_.front()));
  queue_.pop_front();
  // Coalesce: pull every queued request for the same matrix (submission
  // order preserved) up to max_batch — they become one SpMM.
  for (auto it = queue_.begin();
       it != queue_.end() &&
       batch.size() < static_cast<std::size_t>(opts_.max_batch);) {
    if (it->id == batch.front().id) {
      batch.push_back(std::move(*it));
      it = queue_.erase(it);
    } else {
      ++it;
    }
  }
  return batch;
}

bool SpmvServer::poll_once() {
  std::unique_lock lk(mu_);
  if (queue_.empty()) return false;
  auto batch = take_batch_locked();
  ++in_flight_;
  lk.unlock();
  serve_batch(std::move(batch));
  lk.lock();
  --in_flight_;
  if (queue_.empty() && in_flight_ == 0) idle_.notify_all();
  return true;
}

void SpmvServer::worker_loop() {
  for (;;) {
    std::unique_lock lk(mu_);
    work_ready_.wait(lk, [&] { return stop_ || !queue_.empty(); });
    if (queue_.empty()) {
      if (stop_) return;
      continue;
    }
    auto batch = take_batch_locked();
    ++in_flight_;
    lk.unlock();
    serve_batch(std::move(batch));
    lk.lock();
    --in_flight_;
    if (queue_.empty() && in_flight_ == 0) idle_.notify_all();
  }
}

bool SpmvServer::serve_batch(std::vector<Request> batch) {
  const std::string& id = batch.front().id;
  std::shared_ptr<MatrixEntry> entry;
  {
    std::lock_guard lk(mu_);
    entry = matrices_.at(id); // submit() validated the id
  }
  const int k = static_cast<int>(batch.size());
  const std::size_t uk = batch.size();
  try {
    auto plan = cache_.get_or_build(id, entry->matrix, opts_.format);
    const auto rows = static_cast<std::size_t>(plan->rows());
    const auto cols = static_cast<std::size_t>(plan->cols());

    std::vector<value_t> x_batch(cols * uk);
    for (std::size_t j = 0; j < uk; ++j) {
      BRO_CHECK_MSG(batch[j].x.size() == cols,
                    "matrix '" << id << "' changed shape mid-flight");
      for (std::size_t c = 0; c < cols; ++c)
        x_batch[c * uk + j] = batch[j].x[c];
    }
    std::vector<value_t> y_batch(rows * uk);

    double secs;
    {
      // One executor per plan at a time (the SpmvPlan contract).
      std::lock_guard ex(entry->exec_mu);
      Timer t;
      plan->execute_multi(x_batch, y_batch, k);
      secs = t.seconds();
    }

    for (std::size_t j = 0; j < uk; ++j) {
      std::vector<value_t> y(rows);
      for (std::size_t r = 0; r < rows; ++r) y[r] = y_batch[r * uk + j];
      batch[j].result.set_value(std::move(y));
    }

    std::lock_guard mlk(metrics_mu_);
    ++metrics_.batches;
    metrics_.served += uk;
    metrics_.batch_sizes.add(static_cast<double>(k));
    auto [hit, inserted] = metrics_.latency_by_format.try_emplace(
        plan->format_traits().name, latency_histogram());
    (void)inserted;
    hit->second.add(secs);
    return true;
  } catch (...) {
    const auto error = std::current_exception();
    for (auto& req : batch) req.result.set_exception(error);
    std::lock_guard mlk(metrics_mu_);
    metrics_.failed += uk;
    return false;
  }
}

void SpmvServer::drain() {
  if (opts_.threads == 0) {
    // Synchronous mode: the caller is the worker.
    while (poll_once()) {
    }
  }
  std::unique_lock lk(mu_);
  idle_.wait(lk, [&] { return queue_.empty() && in_flight_ == 0; });
}

ServerMetrics SpmvServer::metrics() const {
  ServerMetrics m = [&] {
    std::lock_guard mlk(metrics_mu_);
    return metrics_;
  }();
  m.cache = cache_.stats();
  return m;
}

} // namespace bro::serve
