#include "serve/server.h"

#include "util/error.h"

namespace bro::serve {

void ServerOptions::validate() const {
  BRO_CHECK_MSG(threads >= 0, "SpmvServer threads must be >= 0");
  BRO_CHECK_MSG(max_batch >= 1, "SpmvServer max_batch must be >= 1");
  BRO_CHECK_MSG(max_queue >= 1, "SpmvServer max_queue must be >= 1");
  BRO_CHECK_MSG(pools >= 0, "SpmvServer pools must be >= 0");
  BRO_CHECK_MSG(pool_threads >= 1, "SpmvServer pool_threads must be >= 1");
  BRO_CHECK_MSG(pool_omp >= 0, "SpmvServer pool_omp must be >= 0");
  BRO_CHECK_MSG(shards >= 0, "SpmvServer shards must be >= 0");
  BRO_CHECK_MSG(admission.rate >= 0,
                "SpmvServer admission rate must be >= 0");
}

ServerMetrics::ServerMetrics()
    : batch_sizes(Histogram::linear(0.5, 64.5, 64)),
      queue_wait(Histogram::exponential(1e-6, 10.0, 2.0)),
      execute(Histogram::exponential(1e-6, 10.0, 2.0)) {}

namespace {

ExecutorOptions executor_options(const ServerOptions& opts) {
  ExecutorOptions eo;
  eo.cache_bytes = opts.cache_bytes;
  eo.format = opts.format;
  eo.pools = opts.pools;
  eo.pool_threads = opts.pool_threads;
  eo.pool_omp = opts.pool_omp;
  eo.shards = opts.shards;
  eo.shard_min_nnz = opts.shard_min_nnz;
  return eo;
}

} // namespace

SpmvServer::SpmvServer(ServerOptions opts)
    : opts_((opts.validate(), opts)),
      executor_(make_executor(executor_options(opts))),
      scheduler_(opts.max_queue, opts.max_batch),
      admission_(opts.admission) {
  dispatchers_.reserve(static_cast<std::size_t>(opts_.threads));
  for (int i = 0; i < opts_.threads; ++i)
    dispatchers_.emplace_back([this] { dispatch_loop(); });
}

SpmvServer::~SpmvServer() {
  scheduler_.stop();
  for (auto& d : dispatchers_) d.join();
  // Synchronous servers have no dispatchers to drain the queue; serve what
  // is left so no promise is silently broken.
  while (poll_once()) {
  }
}

void SpmvServer::dispatch_loop() {
  while (auto batch = scheduler_.wait_take()) {
    executor_->execute_batch(*batch);
    scheduler_.complete();
  }
}

void SpmvServer::add_matrix(const std::string& id, core::Matrix matrix) {
  add_matrix(id, std::make_shared<const core::Matrix>(std::move(matrix)));
}

void SpmvServer::add_matrix(const std::string& id,
                            std::shared_ptr<const core::Matrix> matrix) {
  executor_->add_matrix(id, std::move(matrix));
}

bool SpmvServer::remove_matrix(const std::string& id) {
  return executor_->remove_matrix(id);
}

std::shared_ptr<const core::Matrix> SpmvServer::matrix(
    const std::string& id) const {
  return executor_->matrix(id);
}

std::future<std::vector<value_t>> SpmvServer::submit(
    const std::string& id, std::vector<value_t> x,
    const std::string& client) {
  // Transport: validate against the registry, then admission-control.
  const auto m = executor_->matrix(id);
  BRO_CHECK_MSG(m != nullptr, "unknown matrix id '" << id << "'");
  const auto cols = static_cast<std::size_t>(m->cols());
  BRO_CHECK_MSG(x.size() == cols, "matrix '" << id << "' needs x of size "
                                             << cols << ", got " << x.size());
  admission_.admit(client, scheduler_.depth());

  // Scheduling: the bounded queue owns the request from here.
  Request req;
  req.id = id;
  req.x = std::move(x);
  auto future = req.result.get_future();
  scheduler_.enqueue(std::move(req));
  return future;
}

bool SpmvServer::poll_once() {
  auto batch = scheduler_.try_take();
  if (!batch) return false;
  executor_->execute_batch(*batch);
  scheduler_.complete();
  return true;
}

void SpmvServer::drain() {
  if (opts_.threads == 0) {
    // Synchronous mode: the caller is the dispatcher.
    while (poll_once()) {
    }
  }
  scheduler_.drain();
}

ServerMetrics SpmvServer::metrics() const {
  ServerMetrics m;
  const AdmissionStats adm = admission_.stats();
  const SchedulerStats sched = scheduler_.stats();
  const ExecMetrics exec = executor_->metrics();
  m.submitted = sched.submitted;
  m.shed = adm.shed;
  m.throttled = adm.throttled;
  m.rejected = sched.rejected + adm.shed + adm.throttled;
  m.served = exec.served;
  m.failed = exec.failed;
  m.batches = exec.batches;
  m.sharded_batches = exec.sharded_batches;
  m.cache = executor_->cache_stats();
  m.batch_sizes = exec.batch_sizes;
  m.queue_wait = exec.queue_wait;
  m.execute = exec.execute;
  m.latency_by_format = exec.latency_by_format;
  return m;
}

} // namespace bro::serve
