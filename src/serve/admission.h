// bro::serve transport layer — submit-side admission control.
//
// Three refusal mechanisms stack in front of the scheduler's bounded queue,
// each reported as a RejectedError carrying the queue depth the caller
// observed:
//
//   * load shedding: at/above shed_depth pending requests, refuse *before*
//     the queue is hard-full, so well-behaved clients back off while the
//     queue still has slack for in-flight retries,
//   * per-client token buckets: each client id accrues `rate` tokens/sec up
//     to `burst`; a submit with no token is throttled. One chatty client
//     cannot starve the rest of the queue,
//   * the scheduler's own max_queue bound (scheduler.h) remains the hard
//     backstop.
//
// The clock is injectable so tests drive bucket refill deterministically.
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <stdexcept>
#include <string>
#include <unordered_map>

namespace bro::serve {

/// Which admission mechanism refused a submit. The network protocol maps
/// each cause to a distinct wire status, so remote clients can calibrate
/// their reaction (back off vs slow down vs spread load) exactly like
/// in-process callers inspecting the throwing layer.
enum class RejectCause {
  kQueueFull, // the scheduler's hard max_queue bound
  kShed,      // load shedding: queue depth >= shed_depth
  kThrottled, // the client's token bucket was empty
};

/// Backpressure signal: the request was refused at submit time (queue full,
/// load shed, or client throttled). Carries the refusing mechanism and the
/// pending-queue depth at the moment of refusal so callers can calibrate
/// their backoff.
class RejectedError : public std::runtime_error {
 public:
  explicit RejectedError(const std::string& what, std::size_t queue_depth = 0,
                         RejectCause cause = RejectCause::kQueueFull)
      : std::runtime_error(what), queue_depth_(queue_depth), cause_(cause) {}

  std::size_t queue_depth() const { return queue_depth_; }
  RejectCause cause() const { return cause_; }

 private:
  std::size_t queue_depth_;
  RejectCause cause_;
};

struct AdmissionOptions {
  /// Tokens per second granted to each client id; 0 disables throttling.
  double rate = 0;
  /// Bucket capacity (burst allowance); <= 0 defaults to max(rate, 1).
  double burst = 0;
  /// Queue depth at/above which new submits are shed; 0 disables shedding.
  std::size_t shed_depth = 0;
  /// Seconds after which an untouched bucket whose tokens have refilled to
  /// the burst cap is evicted. Such a bucket is indistinguishable from the
  /// fresh one the client would get on its next submit, so eviction never
  /// changes admission decisions — it only bounds memory against client-id
  /// churn (every distinct id otherwise leaves a bucket behind forever).
  /// <= 0 disables idle eviction.
  double idle_window = 300;
  /// Hard cap on tracked buckets: inserting past it evicts the
  /// least-recently-used other bucket (which forfeits that client's spent
  /// tokens — acceptable, the cap is a memory backstop). 0 = uncapped.
  std::size_t max_clients = 0;
};

struct AdmissionStats {
  std::uint64_t admitted = 0;  // passed every admission check
  std::uint64_t throttled = 0; // refused: client token bucket empty
  std::uint64_t shed = 0;      // refused: queue depth >= shed_depth
};

class AdmissionController {
 public:
  /// Monotone seconds source; the default reads std::chrono::steady_clock.
  using Clock = std::function<double()>;

  explicit AdmissionController(AdmissionOptions opts, Clock clock = {});

  /// Pass or throw RejectedError: shed check first (cheapest, protects the
  /// whole server), then the client's token bucket. `client` may be empty —
  /// all anonymous submits then share one bucket.
  void admit(const std::string& client, std::size_t queue_depth);

  AdmissionStats stats() const;
  const AdmissionOptions& options() const { return opts_; }

  /// Buckets currently tracked (tests pin the eviction behavior on this).
  std::size_t tracked_clients() const;

 private:
  struct Bucket {
    double tokens = 0;
    double last = 0; // clock seconds of the previous refill
  };

  /// Drop buckets idle past idle_window whose tokens have refilled to the
  /// burst cap. Amortized: a full sweep runs at most once per half window.
  void evict_idle_locked(double now);

  AdmissionOptions opts_;
  double burst_;
  Clock clock_;
  mutable std::mutex mu_;
  std::unordered_map<std::string, Bucket> buckets_;
  double next_sweep_ = 0;
  AdmissionStats stats_;
};

} // namespace bro::serve
