// bro::serve::SpmvServer — the concurrent multi-matrix serving façade.
//
// The repo's north star is a service, not a library: many callers, a
// working set of matrices, each request a right-hand side. The server is a
// thin composition of three explicit layers:
//
//   * transport (serve/admission.h): submit-side validation, per-client
//     token-bucket admission and load shedding in front of the queue —
//     every refusal is a RejectedError carrying the observed queue depth,
//   * scheduling (serve/scheduler.h): the bounded pending queue
//     (max_queue backpressure) and same-matrix coalescing into SpMM
//     batches of up to max_batch right-hand sides,
//   * execution (serve/executor.h): PlanCache resolution, per-matrix
//     plan serialization, worker pools, and row-sharded multi-pool
//     execution of large matrices (engine/shard.h — bitwise-identical to
//     the unsharded plan).
//
// The façade owns `threads` dispatch threads that move batches from the
// scheduler to the executor. With threads == 0 the server runs
// synchronously: the caller drives batches with poll_once() —
// deterministic, which is what the batching tests and benches need.
// Metrics merge the per-layer views: admission (shed/throttled),
// scheduler (submitted/rejected), executor (batches, queue-wait vs
// execute-time percentiles, per-format latency, cache stats).
#pragma once

#include <cstdint>
#include <future>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "serve/admission.h"
#include "serve/executor.h"
#include "serve/plan_cache.h"
#include "serve/scheduler.h"
#include "util/histogram.h"

namespace bro::serve {

struct ServerOptions {
  int threads = 2;          // dispatch threads; 0 = synchronous (poll_once)
  std::size_t max_queue = 256; // pending-request bound (backpressure)
  int max_batch = 8;        // most right-hand sides folded into one SpMM
  std::size_t cache_bytes = std::size_t{256} << 20; // plan-cache budget
  // Force one format for every matrix; default auto-selects per matrix.
  std::optional<core::Format> format;

  // Transport: token-bucket rate/burst per client and the shed depth
  // (admission.h); all off by default.
  AdmissionOptions admission;

  // Execution: pools == 0 executes on the dispatch thread (the classic
  // single-pool server); pools >= 1 routes through worker pools with
  // consistent id hashing, and shards > 1 row-shards matrices of at least
  // shard_min_nnz across those pools (executor.h).
  int pools = 0;
  int pool_threads = 1;
  int pool_omp = 0; // OpenMP threads per pool worker; 0 = ambient
  int shards = 0;
  std::size_t shard_min_nnz = 100000;

  /// Throws (BRO_CHECK) on out-of-domain values: threads < 0,
  /// max_batch < 1, max_queue == 0, negative pool/shard counts, ...
  void validate() const;
};

struct ServerMetrics {
  std::uint64_t submitted = 0; // accepted into the queue
  std::uint64_t rejected = 0;  // refused with RejectedError (all causes)
  std::uint64_t shed = 0;      //   ... of which: load shed (admission)
  std::uint64_t throttled = 0; //   ... of which: client token bucket empty
  std::uint64_t served = 0;    // requests whose future got a value
  std::uint64_t failed = 0;    // requests whose future got an exception
  std::uint64_t batches = 0;   // execute_multi invocations
  std::uint64_t sharded_batches = 0; // batches fanned out over row shards
  PlanCacheStats cache;
  Histogram batch_sizes;       // one sample per batch
  Histogram queue_wait;        // per-request seconds enqueue -> execute
  Histogram execute;           // per-batch execute seconds
  // One histogram of per-batch execute seconds per canonical format name.
  std::unordered_map<std::string, Histogram> latency_by_format;

  ServerMetrics();
};

class SpmvServer {
 public:
  explicit SpmvServer(ServerOptions opts = {});
  /// Drains the queue, then joins the dispatch threads.
  ~SpmvServer();

  SpmvServer(const SpmvServer&) = delete;
  SpmvServer& operator=(const SpmvServer&) = delete;

  /// Register a matrix under `id` (replacing any previous registration for
  /// new requests; in-flight batches keep the plan they resolved).
  void add_matrix(const std::string& id, core::Matrix matrix);
  void add_matrix(const std::string& id,
                  std::shared_ptr<const core::Matrix> matrix);

  /// Drop the registration and every cached plan for `id`. Returns false
  /// when the id was not registered. Requests already queued against the
  /// id fail with their promise's exception; new submits throw.
  bool remove_matrix(const std::string& id);

  /// The registered matrix, or null.
  std::shared_ptr<const core::Matrix> matrix(const std::string& id) const;

  /// Enqueue y = A[id] * x; the future delivers y (or the serving error).
  /// Throws std::runtime_error for an unknown id or wrong-sized x, and
  /// RejectedError (with the observed queue depth) when the queue is full,
  /// the request is shed, or `client`'s token bucket is empty.
  std::future<std::vector<value_t>> submit(const std::string& id,
                                           std::vector<value_t> x,
                                           const std::string& client = "");

  /// Serve one coalesced batch on the calling thread. Returns false when
  /// the queue is empty. The synchronous driver for threads == 0 setups
  /// (also usable alongside dispatch threads).
  bool poll_once();

  /// Block until the queue is empty and no batch is in flight.
  void drain();

  ServerMetrics metrics() const;
  const ServerOptions& options() const { return opts_; }

  /// The composed execution layer (worker pools, plan cache) — exposed for
  /// tests and benches that reason about placement and sharding.
  Executor& executor() { return *executor_; }

 private:
  void dispatch_loop();

  ServerOptions opts_;
  std::unique_ptr<Executor> executor_;
  Scheduler scheduler_;
  AdmissionController admission_;
  std::vector<std::thread> dispatchers_;
};

} // namespace bro::serve
