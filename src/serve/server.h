// bro::serve::SpmvServer — the concurrent multi-matrix serving layer.
//
// The repo's north star is a service, not a library: many callers, a
// working set of matrices, each request a right-hand side. The server
// composes the pieces the engine already provides into that shape:
//
//   * a PlanCache so a request never rebuilds a compressed plan another
//     request already paid for,
//   * request coalescing: queued requests against the same matrix are
//     folded into one execute_multi() batch, so every decoded index feeds
//     k FMAs (kernels/native_spmm.h) — the paper's bits-per-flop win
//     applied across requests,
//   * a fixed worker pool with a bounded queue and explicit backpressure:
//     submit() throws RejectedError when the queue is full; the queue can
//     never grow without bound,
//   * serve metrics: cache hits/misses/evictions, a batch-size histogram,
//     and per-format batch-latency percentiles (util/histogram.h), exposed
//     through `brospmv serve-bench`.
//
// With threads == 0 the server runs synchronously: no workers are started
// and the caller drives batches with poll_once() — deterministic, which is
// what the batching tests and benches need.
#pragma once

#include <cstdint>
#include <future>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>
#include <deque>

#include "serve/plan_cache.h"
#include "util/histogram.h"

namespace bro::serve {

struct ServerOptions {
  int threads = 2;          // workers; 0 = synchronous (poll_once drives)
  std::size_t max_queue = 256; // pending-request bound (backpressure)
  int max_batch = 8;        // most right-hand sides folded into one SpMM
  std::size_t cache_bytes = std::size_t{256} << 20; // plan-cache budget
  // Force one format for every matrix; default auto-selects per matrix.
  std::optional<core::Format> format;
};

/// Backpressure signal: the pending queue is at max_queue. Retry later or
/// shed load; the server never queues unboundedly.
class RejectedError : public std::runtime_error {
 public:
  explicit RejectedError(const std::string& what)
      : std::runtime_error(what) {}
};

struct ServerMetrics {
  std::uint64_t submitted = 0; // accepted into the queue
  std::uint64_t rejected = 0;  // refused with RejectedError
  std::uint64_t served = 0;    // requests whose future got a value
  std::uint64_t failed = 0;    // requests whose future got an exception
  std::uint64_t batches = 0;   // execute_multi invocations
  PlanCacheStats cache;
  Histogram batch_sizes;       // one sample per batch
  // One histogram of per-batch execute seconds per canonical format name.
  std::unordered_map<std::string, Histogram> latency_by_format;

  ServerMetrics();
};

class SpmvServer {
 public:
  explicit SpmvServer(ServerOptions opts = {});
  /// Drains the queue, then joins the workers.
  ~SpmvServer();

  SpmvServer(const SpmvServer&) = delete;
  SpmvServer& operator=(const SpmvServer&) = delete;

  /// Register a matrix under `id` (replacing any previous registration for
  /// new requests; in-flight batches keep the plan they resolved).
  void add_matrix(const std::string& id, core::Matrix matrix);
  void add_matrix(const std::string& id,
                  std::shared_ptr<const core::Matrix> matrix);

  /// The registered matrix, or null.
  std::shared_ptr<const core::Matrix> matrix(const std::string& id) const;

  /// Enqueue y = A[id] * x; the future delivers y (or the serving error).
  /// Throws std::runtime_error for an unknown id or wrong-sized x, and
  /// RejectedError when the queue is full.
  std::future<std::vector<value_t>> submit(const std::string& id,
                                           std::vector<value_t> x);

  /// Serve one coalesced batch on the calling thread. Returns false when
  /// the queue is empty. The synchronous driver for threads == 0 setups
  /// (also usable alongside workers).
  bool poll_once();

  /// Block until the queue is empty and no batch is in flight.
  void drain();

  ServerMetrics metrics() const;
  const ServerOptions& options() const { return opts_; }

 private:
  struct Request {
    std::string id;
    std::vector<value_t> x;
    std::promise<std::vector<value_t>> result;
  };
  struct MatrixEntry {
    std::shared_ptr<const core::Matrix> matrix;
    // SpmvPlan is a single-executor object (engine/plan.h); batches for
    // the same matrix serialize on this so two workers never share the
    // plan's workspace concurrently.
    std::mutex exec_mu;
  };

  void worker_loop();
  bool serve_batch(std::vector<Request> batch);
  std::vector<Request> take_batch_locked();

  ServerOptions opts_;
  PlanCache cache_;

  mutable std::mutex mu_; // guards matrices_, queue_, in_flight_, stop_
  std::condition_variable work_ready_;
  std::condition_variable idle_;
  std::unordered_map<std::string, std::shared_ptr<MatrixEntry>> matrices_;
  std::deque<Request> queue_;
  int in_flight_ = 0;
  bool stop_ = false;

  mutable std::mutex metrics_mu_;
  ServerMetrics metrics_;

  std::vector<std::thread> workers_;
};

} // namespace bro::serve
