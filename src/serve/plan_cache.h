// bro::serve::PlanCache — thread-safe LRU cache of built SpmvPlans.
//
// Planning is the expensive half of the paper's compress-once /
// apply-every-iteration split: building a plan compresses the matrix into
// its format and pre-sizes kernel scratch. A server handling requests
// against a working set of matrices must not rebuild that per request, so
// the cache keys plans by (matrix id, format, thread count) and evicts by
// least-recent use when the resident-byte budget is exceeded — the same
// amortize-the-indexing-step economics SMASH argues for, applied across
// requests instead of solver iterations.
//
// Concurrency: any number of threads may call get_or_build. A miss inserts
// a building placeholder and compresses outside the lock; other threads
// requesting the same key wait on the build (counted as hits — the plan was
// reused, not rebuilt) instead of duplicating it. Evicted plans stay alive
// while callers hold their shared_ptr; eviction only drops the cache's
// reference. The returned plan still carries SpmvPlan's single-executor
// contract — callers execute under their own per-plan lock (SpmvServer
// does) or hold one plan per thread.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "engine/plan.h"

namespace bro::serve {

struct PlanKey {
  std::string matrix_id;
  core::Format format = core::Format::kCsr;
  int threads = 1;

  bool operator==(const PlanKey&) const = default;
};

struct PlanKeyHash {
  std::size_t operator()(const PlanKey& k) const;
};

struct PlanCacheStats {
  std::uint64_t hits = 0;           // lookups served from the cache
  std::uint64_t misses = 0;         // lookups that triggered a build
  std::uint64_t evictions = 0;      // entries dropped for the byte budget
  std::uint64_t build_failures = 0; // builds that threw
  std::size_t resident_bytes = 0;   // sum over live entries
  std::size_t entries = 0;          // live entries (incl. in-flight builds)
};

class PlanCache {
 public:
  /// `max_resident_bytes` bounds the sum of SpmvPlan::resident_bytes() over
  /// cached entries; the most recently used entry always survives, so one
  /// oversized plan is admitted rather than thrashing forever.
  explicit PlanCache(std::size_t max_resident_bytes);

  PlanCache(const PlanCache&) = delete;
  PlanCache& operator=(const PlanCache&) = delete;

  /// Return the cached plan for (matrix_id, format, current thread count),
  /// building it from `matrix` on a miss. `format` defaults to the
  /// matrix's auto-selected format. Build exceptions propagate to every
  /// waiter of that key and leave the cache unchanged.
  std::shared_ptr<engine::SpmvPlan> get_or_build(
      const std::string& matrix_id,
      const std::shared_ptr<const core::Matrix>& matrix,
      std::optional<core::Format> format = std::nullopt);

  PlanCacheStats stats() const;
  std::size_t max_resident_bytes() const { return cap_; }

  /// Drop every entry for `matrix_id` across all formats and thread counts
  /// (SpmvServer::remove_matrix). Completed entries are dropped
  /// immediately; in-flight builds are marked and their results discarded
  /// on completion (the building caller still receives its plan — the
  /// request predates the removal — it just is not cached). Callers
  /// holding an evicted plan keep it alive through their shared_ptr.
  /// Returns the number of entries dropped or marked.
  std::size_t erase_matrix(const std::string& matrix_id);

  /// Drop every entry (in-flight builds are discarded on completion, as in
  /// erase_matrix) and release the per-matrix build locks.
  void clear();

 private:
  struct Entry {
    std::shared_ptr<engine::SpmvPlan> plan; // null while building
    std::size_t bytes = 0;
    bool building = true;
    bool failed = false;  // build threw; waiters re-dispatch
    bool discard = false; // matrix removed mid-build; drop on completion
    std::list<PlanKey>::iterator lru_it;    // valid when !building
  };

  void evict_locked();

  const std::size_t cap_;
  mutable std::mutex mu_;
  std::condition_variable build_done_;
  // Builds of *different* plans for one matrix id run serialized: the
  // facade's lazily-built representations are not safe to materialize from
  // two threads at once.
  std::unordered_map<std::string, std::shared_ptr<std::mutex>> build_mu_;
  std::list<PlanKey> lru_; // front = most recently used
  std::unordered_map<PlanKey, Entry, PlanKeyHash> entries_;
  PlanCacheStats stats_;
};

} // namespace bro::serve
