// Offline compression cost (host wall-clock). The paper's scheme relies on
// compression being a one-time offline step amortized over thousands of
// iterative-solver SpMVs (§3); this bench quantifies that cost: matrix
// build throughput per format and the BAR reordering cost on top.
#include "bench_common.h"

#include "core/bar.h"
#include "core/bro_csr.h"
#include "sparse/convert.h"
#include "util/timer.h"

int main() {
  using namespace bro;
  bench::print_header("Offline compression cost (host wall-clock)",
                      "paper §3: compression is performed offline on the "
                      "host CPU");

  Table t({"Matrix", "nnz", "BRO-ELL MB/s", "BRO-COO MB/s", "BRO-HYB MB/s",
           "BRO-CSR MB/s", "BAR (s)"});
  for (const char* name : {"cant", "stomach", "scircuit"}) {
    const auto entry = sparse::find_suite_entry(name);
    const sparse::Csr m = sparse::generate_suite_matrix(*entry, bench_scale());
    const double mb =
        static_cast<double>(m.nnz()) * 12.0 / 1e6; // 4B idx + 8B val

    volatile std::size_t sink = 0; // keep the compressors from being elided
    const auto rate = [&](auto&& fn) {
      Timer timer;
      sink += fn();
      return mb / timer.seconds();
    };

    std::string ell_rate = "n/a";
    if (static_cast<double>(m.rows) * m.max_row_length() <=
        3.0 * static_cast<double>(m.nnz())) {
      const sparse::Ell ell = sparse::csr_to_ell(m);
      ell_rate = Table::fmt(
          rate([&] { return core::BroEll::compress(ell).compressed_index_bytes(); }),
          0);
    }
    const sparse::Coo coo = sparse::csr_to_coo(m);
    const auto coo_rate = rate(
        [&] { return core::BroCoo::compress(coo).compressed_row_bytes(); });
    const auto hyb_rate = rate(
        [&] { return core::BroHyb::compress(m).compressed_index_bytes(); });
    const auto csr_rate = rate(
        [&] { return core::BroCsr::compress(m).compressed_index_bytes(); });

    Timer bar_timer;
    core::BarOptions bopts;
    bopts.max_candidates = 24;
    const auto bar = core::bar_reorder(m, bopts);
    const double bar_s = bar_timer.seconds();
    (void)bar;

    t.add_row({name, std::to_string(m.nnz()), ell_rate,
               Table::fmt(coo_rate, 0), Table::fmt(hyb_rate, 0),
               Table::fmt(csr_rate, 0), Table::fmt(bar_s, 2)});
  }
  t.print(std::cout);
  std::cout << "\nAt solver scale (thousands of SpMV iterations) even the "
               "slowest path amortizes in a handful of iterations.\n";
  return 0;
}
