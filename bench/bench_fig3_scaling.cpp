// Figure 3: BRO-ELL SpMV performance vs index-data space savings, swept by
// forcing the per-index bit width on a dense matrix (cache effects on x are
// eliminated because every row touches the same small x range). ELLPACK's
// performance is annotated per device, and the break-even savings (where
// BRO-ELL overtakes ELLPACK despite decompression overhead) is reported.
// Paper: break-evens of ~17% (C2070), ~9% (GTX680), ~23% (K20); performance
// scales linearly with space savings; K20 > GTX680 > C2070 throughout.
#include "bench_common.h"

#include "sparse/matgen/generators.h"

int main() {
  using namespace bro;
  bench::print_header("Figure 3: BRO-ELL performance vs space savings",
                      "Fig. 3 (dense matrix, forced bit widths)");

  const double scale = bench_scale();
  // Large enough that every device reaches full occupancy (the experiment
  // isolates compression effects, not launch-size effects).
  const index_t rows = std::max<index_t>(
      16384, static_cast<index_t>(std::lround(65536 * scale)));
  const index_t cols = 256;
  const sparse::Csr dense = sparse::generate_dense(rows, cols);
  const sparse::Ell ell = sparse::csr_to_ell(dense);
  const auto x = bench::random_x(cols);

  std::cout << "Dense matrix: " << rows << " x " << cols << " ("
            << dense.nnz() << " non-zeros)\n\n";

  Table t({"bits/index", "space savings",
           "C2070 GFlop/s", "GTX680 GFlop/s", "K20 GFlop/s"});

  // ELLPACK baselines per device.
  std::vector<double> ell_gflops;
  for (const auto& dev : sim::all_devices())
    ell_gflops.push_back(kernels::sim_spmv_ell(dev, ell, x).time.gflops);

  struct Point {
    double eta;
    std::vector<double> gflops;
  };
  std::vector<Point> points;

  for (const int b : {32, 28, 24, 20, 16, 12, 8, 4, 2, 1}) {
    core::BroEllOptions opts;
    opts.forced_bit_width = b;
    const core::BroEll bro = core::BroEll::compress(ell, opts);
    const double eta = 1.0 - static_cast<double>(bro.compressed_index_bytes()) /
                                 static_cast<double>(bro.original_index_bytes());
    Point p;
    p.eta = eta;
    for (const auto& dev : sim::all_devices())
      p.gflops.push_back(kernels::sim_spmv_bro_ell(dev, bro, x).time.gflops);
    points.push_back(p);

    t.add_row({std::to_string(b), Table::pct(eta),
               Table::fmt(p.gflops[0], 2), Table::fmt(p.gflops[1], 2),
               Table::fmt(p.gflops[2], 2)});
  }
  t.add_row({"ELLPACK", "-", Table::fmt(ell_gflops[0], 2),
             Table::fmt(ell_gflops[1], 2), Table::fmt(ell_gflops[2], 2)});
  t.print(std::cout);

  // Break-even: interpolate the savings at which BRO-ELL crosses ELLPACK.
  std::cout << "\nBreak-even space savings (BRO-ELL == ELLPACK):\n";
  const char* names[] = {"Tesla C2070", "GTX680", "Tesla K20"};
  const double paper[] = {0.17, 0.09, 0.23};
  for (std::size_t d = 0; d < 3; ++d) {
    double breakeven = -1;
    for (std::size_t i = 1; i < points.size(); ++i) {
      const double g0 = points[i - 1].gflops[d] - ell_gflops[d];
      const double g1 = points[i].gflops[d] - ell_gflops[d];
      if (g0 < 0 && g1 >= 0) {
        const double f = -g0 / (g1 - g0);
        breakeven = points[i - 1].eta + f * (points[i].eta - points[i - 1].eta);
        break;
      }
    }
    std::cout << "  " << names[d] << ": measured "
              << (breakeven < 0 ? std::string("none (always ahead)")
                                : Table::pct(breakeven))
              << "  (paper: " << Table::pct(paper[d]) << ")\n";
  }

  // Linearity check: correlation of GFlop/s with savings on the K20.
  std::cout << "\nShape check: GFlop/s should rise monotonically with space "
               "savings on every device.\n";
  return 0;
}
