// Figure 6: DRAM bandwidth utilization of the BRO-ELL kernel across GPUs for
// the first six Test Set 1 matrices. The paper's notable case is e40r5000,
// whose ~17k rows cannot keep the wider Kepler GPUs busy, so its utilization
// drops on GTX680 and fails to scale on K20.
#include "bench_common.h"

int main() {
  using namespace bro;
  bench::print_header("Figure 6: BRO-ELL DRAM bandwidth utilization",
                      "Fig. 6 (first six matrices x three GPUs)");

  const char* first_six[] = {"cage12", "cant",     "consph",
                             "e40r5000", "epb3",   "lhr71"};

  Table t({"Matrix", "C2070", "GTX680", "K20"});
  double e40_gtx = 0, e40_big = 0, cant_gtx = 0;
  for (const char* name : first_six) {
    const auto entry = sparse::find_suite_entry(name);
    const sparse::Csr m = sparse::generate_suite_matrix(*entry, bench_scale());
    const auto x = bench::random_x(m.cols);
    const core::BroEll bro = core::BroEll::compress(sparse::csr_to_ell(m));

    std::vector<std::string> row = {name};
    std::vector<double> util;
    for (const auto& dev : sim::all_devices()) {
      const auto r = kernels::sim_spmv_bro_ell(dev, bro, x);
      util.push_back(r.time.bw_utilization);
      row.push_back(Table::pct(r.time.bw_utilization));
    }
    t.add_row(row);
    if (std::string(name) == "e40r5000") {
      e40_gtx = util[1];
      e40_big = util[2];
    }
    if (std::string(name) == "cant") cant_gtx = util[1];
  }
  t.print(std::cout);

  std::cout << "\nShape checks (paper): e40r5000 utilization drops on GTX680 "
               "relative to large matrices ("
            << Table::pct(e40_gtx) << " vs cant " << Table::pct(cant_gtx)
            << "), and its K20 utilization (" << Table::pct(e40_big)
            << ") does not benefit from the K20's higher peak bandwidth — "
               "too few rows to fill the device.\n";
  return 0;
}
