// Figure 8: BRO-HYB vs HYB on Test Set 2 (the paper shows the K20 figure;
// C2070 and GTX680 were reported as similar, with average speedups of 1.6x /
// 1.3x / 1.4x on C2070 / GTX680 / K20). Both formats use the identical
// partition, as in the paper.
#include "bench_common.h"

#include "sparse/convert.h"

int main() {
  using namespace bro;
  bench::print_header("Figure 8: BRO-HYB vs HYB",
                      "Fig. 8 (Test Set 2; K20 figure in the paper)");

  const double paper_avg[] = {1.6, 1.3, 1.4};
  for (std::size_t d = 0; d < sim::all_devices().size(); ++d) {
    const auto& dev = sim::all_devices()[d];
    std::cout << dev.name << ":\n";
    Table t({"Matrix", "HYB GFlop/s", "BRO-HYB GFlop/s", "speedup"});
    std::vector<double> speedups;
    for (const auto& e : sparse::suite_test_set(2)) {
      const sparse::Csr m = sparse::generate_suite_matrix(e, bench_scale());
      const auto x = bench::random_x(m.cols);

      // Identical partitions for both formats (paper §4.2.3).
      const sparse::Hyb hyb = sparse::csr_to_hyb(m);
      core::BroHybOptions opts;
      opts.width_override = hyb.ell.width;
      opts.coo = kernels::bro_coo_options_for(hyb.coo.nnz(), dev);
      const core::BroHyb bro = core::BroHyb::compress(m, opts);

      const auto r_hyb = kernels::sim_spmv_hyb(dev, hyb, x);
      const auto r_bro = kernels::sim_spmv_bro_hyb(dev, bro, x);
      const double s = r_hyb.time.gflops > 0
                           ? r_bro.time.gflops / r_hyb.time.gflops
                           : 0.0;
      speedups.push_back(s);
      t.add_row({e.name, Table::fmt(r_hyb.time.gflops, 2),
                 Table::fmt(r_bro.time.gflops, 2), Table::fmt(s, 2) + "x"});
    }
    t.print(std::cout);
    std::cout << "Average speedup: " << Table::fmt(bench::geomean(speedups), 2)
              << "x (paper: " << Table::fmt(paper_avg[d], 1) << "x)\n\n";
  }
  std::cout << "Shape check (paper): high-BRO-ELL-fraction matrices (pwtk, "
               "bcsstk32) gain most; rail4284 and rajat30 gain least.\n";
  return 0;
}
