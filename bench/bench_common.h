// Shared helpers for the paper-reproduction bench binaries.
//
// Every bench prints the corresponding paper table/figure as text on stdout
// with a paper-vs-measured column where the paper reports numbers. The
// BRO_SCALE environment variable (default 0.25) scales matrix dimensions;
// BRO_SCALE=1 reproduces paper-size matrices.
#pragma once

#include <cmath>
#include <iostream>
#include <limits>
#include <string>
#include <vector>

#include "core/matrix.h"
#include "gpusim/device.h"
#include "kernels/sim_spmv.h"
#include "sparse/convert.h"
#include "sparse/matgen/suite.h"
#include "sparse/stats.h"
#include "util/env.h"
#include "util/rng.h"
#include "util/table.h"

namespace bro::bench {

inline std::vector<value_t> random_x(index_t n, std::uint64_t seed = 2013) {
  Rng rng(seed);
  std::vector<value_t> x(static_cast<std::size_t>(n));
  for (auto& v : x) v = rng.uniform() * 2 - 1;
  return x;
}

inline void print_header(const std::string& title, const std::string& paper_ref) {
  std::cout << "\n=== " << title << " ===\n"
            << "Reproduces: " << paper_ref << "\n"
            << "Matrix scale factor (BRO_SCALE): " << bench_scale() << "\n\n";
}

/// Geometric mean helper for "average speedup" rows (the paper averages
/// per-matrix speedups). An empty input has no mean: NaN, which the table
/// formatters render as "n/a" — a hard 0.0 would read as a measured
/// 0x slowdown.
inline double geomean(const std::vector<double>& v) {
  if (v.empty()) return std::numeric_limits<double>::quiet_NaN();
  double log_sum = 0;
  for (const double x : v) log_sum += std::log(x);
  return std::exp(log_sum / static_cast<double>(v.size()));
}

} // namespace bro::bench
