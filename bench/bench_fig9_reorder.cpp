// Figure 9: BRO-aware reordering (BAR) vs RCM and AMD on Test Set 1,
// measured as BRO-ELL SpMV performance after each reordering relative to the
// unreordered BRO-ELL baseline. The paper reports BAR averaging +7% while
// the non-BRO-aware RCM and AMD average about -4%.
#include "bench_common.h"

#include "core/bar.h"
#include "reorder/amd.h"
#include "reorder/permutation.h"
#include "reorder/rcm.h"

int main() {
  using namespace bro;
  bench::print_header("Figure 9: BAR vs RCM vs AMD reordering",
                      "Fig. 9 (Test Set 1, Tesla K20, BRO-ELL GFlop/s)");

  const auto dev = sim::tesla_k20();
  Table t({"Matrix", "BRO-ELL", "+BAR", "+RCM", "+AMD"});
  std::vector<double> g_bar, g_rcm, g_amd;

  for (const auto& e : sparse::suite_test_set(1)) {
    const sparse::Csr m = sparse::generate_suite_matrix(e, bench_scale());
    const auto x = bench::random_x(m.cols);

    const auto run = [&](const sparse::Csr& mat) {
      return kernels::sim_spmv_bro_ell(
                 dev, core::BroEll::compress(sparse::csr_to_ell(mat)), x)
          .time.gflops;
    };

    const double base = run(m);

    core::BarOptions bopts;
    bopts.max_candidates = 0; // full Algorithm 2 (all clusters considered)
    const auto bar = core::bar_reorder(m, bopts);
    const double with_bar = run(reorder::permute_rows(m, bar.permutation));

    // RCM/AMD orderings are symmetric permutations in their usual use; for
    // the SpMV comparison the paper applies them as row reorderings of A.
    const double with_rcm =
        m.rows == m.cols
            ? run(reorder::permute_rows(m, reorder::rcm_order(m)))
            : base;
    const double with_amd =
        m.rows == m.cols
            ? run(reorder::permute_rows(m, reorder::amd_order(m)))
            : base;

    g_bar.push_back(with_bar / base);
    g_rcm.push_back(with_rcm / base);
    g_amd.push_back(with_amd / base);
    t.add_row({e.name, Table::fmt(base, 2), Table::fmt(with_bar, 2),
               Table::fmt(with_rcm, 2), Table::fmt(with_amd, 2)});
  }
  t.print(std::cout);

  std::cout << "\nAverage change vs unreordered BRO-ELL:\n"
            << "  BAR: " << Table::pct(bench::geomean(g_bar) - 1.0)
            << " (paper: +7%)\n"
            << "  RCM: " << Table::pct(bench::geomean(g_rcm) - 1.0)
            << " (paper: ~-4%)\n"
            << "  AMD: " << Table::pct(bench::geomean(g_amd) - 1.0)
            << " (paper: ~-4%)\n";
  return 0;
}
