// Decode-throughput microbenchmark (google-benchmark): pure symbol-stream
// unpack speed per delta bit width, no values or x gather, for the decoder
// variants the width-specialization and SIMD work compare:
//
//   spec    width-templated kernel over packed MuxedStream storage (what the
//           plan's dispatch table selects for uniform-width slices/intervals)
//   gen     runtime-width kernel over packed storage (the dispatch fallback)
//   legacy  runtime-width decode over the old one-uint64-per-symbol slots
//   sse4    lockstep SIMD checksum kernel, 128-bit lanes (when runnable)
//   avx2    lockstep SIMD checksum kernel, 256-bit lanes (when runnable)
//
// Reported counter: deltas decoded per second. The same inner loops back
// `brospmv bench --decode`, which cross-checks all variants for bitwise
// parity before timing.
//
// Before the registered benchmarks run, the binary prints the BRO-ELL suite
// decode A/B (scalar dispatch path vs the active SIMD ISA over real matgen
// compressions, CPU-time minima) with its geomean speedup — the number the
// SIMD PR's perf claim is gated on. BRO_SUITE_AB=0 skips it; BRO_SCALE
// (default 0.125 here) sets the suite matrix scale.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <cmath>
#include <iostream>
#include <string>
#include <vector>

#include "kernels/decode_bench.h"
#include "util/env.h"
#include "util/table.h"

namespace {

using namespace bro;

constexpr std::size_t kLanes = 64;
constexpr std::size_t kDeltasPerLane = 16384;

void BM_Decode(benchmark::State& state, kernels::DecodeVariant variant,
               int sym_len) {
  const int width = static_cast<int>(state.range(0));
  const auto c = kernels::make_decode_bench_case(
      width, sym_len, kLanes, kDeltasPerLane,
      0x5eed0000u + static_cast<unsigned>(width));
  std::uint64_t sink = 0;
  for (auto _ : state) {
    sink += kernels::decode_pass(c, variant);
    benchmark::DoNotOptimize(sink);
  }
  state.counters["deltas/s"] = benchmark::Counter(
      static_cast<double>(kernels::decode_pass_deltas(c)) *
          static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate, benchmark::Counter::OneK::kIs1000);
}

void BM_DecodeSimd(benchmark::State& state, kernels::SimdIsa isa,
                   int sym_len) {
  const int width = static_cast<int>(state.range(0));
  const auto c = kernels::make_decode_bench_case(
      width, sym_len, kLanes, kDeltasPerLane,
      0x5eed0000u + static_cast<unsigned>(width));
  if (kernels::simd_decode_pass(c, isa) !=
      kernels::decode_pass(c, kernels::DecodeVariant::kGeneric)) {
    state.SkipWithError("SIMD decode disagrees with scalar");
    return;
  }
  std::uint64_t sink = 0;
  for (auto _ : state) {
    sink += kernels::simd_decode_pass(c, isa);
    benchmark::DoNotOptimize(sink);
  }
  state.counters["deltas/s"] = benchmark::Counter(
      static_cast<double>(kernels::decode_pass_deltas(c)) *
          static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate, benchmark::Counter::OneK::kIs1000);
}

/// BRO-ANS entropy decode through the path dispatch would select at `isa`
/// (vector kernel set when present for the width, else the interleaved
/// scalar chains). One synthetic FEM-like matrix per sym_len, checksum
/// checked against the sequential reference before timing.
void BM_AnsDecode(benchmark::State& state, kernels::SimdIsa isa,
                  int sym_len) {
  const auto c = kernels::make_ans_decode_bench_case(
      sym_len, 4096, 0xa45eed00u + static_cast<unsigned>(sym_len));
  if (kernels::ans_decode_pass(c, isa) != c.expect) {
    state.SkipWithError("BRO-ANS decode disagrees with sequential reference");
    return;
  }
  std::uint64_t sink = 0;
  for (auto _ : state) {
    sink += kernels::ans_decode_pass(c, isa);
    benchmark::DoNotOptimize(sink);
  }
  state.counters["deltas/s"] = benchmark::Counter(
      static_cast<double>(c.deltas) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate, benchmark::Counter::OneK::kIs1000);
}

/// BRO-BCSR block-index decode through the path dispatch would select at
/// `isa` — the same slice machinery the decode-* rows time, fed the
/// one-index-per-block stream of a truss-FEM compression. Checksum checked
/// against the scalar dispatch path before timing.
void BM_BcsrDecode(benchmark::State& state, kernels::SimdIsa isa,
                   int sym_len) {
  const auto c = kernels::make_bcsr_decode_bench_case(
      sym_len, /*panels=*/2000, 0xbc5eed00u + static_cast<unsigned>(sym_len));
  if (kernels::bcsr_decode_pass(c, isa) != c.expect) {
    state.SkipWithError("BRO-BCSR decode disagrees with scalar dispatch");
    return;
  }
  std::uint64_t sink = 0;
  for (auto _ : state) {
    sink += kernels::bcsr_decode_pass(c, isa);
    benchmark::DoNotOptimize(sink);
  }
  state.counters["deltas/s"] = benchmark::Counter(
      static_cast<double>(c.deltas) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate, benchmark::Counter::OneK::kIs1000);
}

/// The BRO-ELL suite scalar-vs-SIMD A/B, printed once before the registered
/// benchmarks so every perf-smoke artifact's log carries the geomean.
void print_suite_ab() {
  if (env_long("BRO_SUITE_AB", 1) == 0) return;
  const kernels::SimdIsa isa = kernels::active_simd_isa();
  if (isa == kernels::SimdIsa::kScalar) {
    std::cout << "suite decode A/B skipped: no SIMD ISA active on this "
                 "host/binary\n\n";
    return;
  }
  const double scale = env_double("BRO_SCALE", 0.125);
  const auto rows = kernels::ell_suite_decode_sweep(isa, scale, 0.02);
  std::cout << "BRO-ELL suite decode throughput (Gdeltas/s), scalar vs "
            << kernels::simd_isa_name(isa) << ", scale " << scale << ":\n";
  Table t({"Matrix", "scalar", kernels::simd_isa_name(isa), "speedup"});
  double log_sum = 0;
  for (const auto& r : rows) {
    const double speedup = r.simd_gdps / r.scalar_gdps;
    log_sum += std::log(speedup);
    t.add_row({r.matrix, Table::fmt(r.scalar_gdps, 3),
               Table::fmt(r.simd_gdps, 3), Table::fmt(speedup, 2) + "x"});
  }
  t.print(std::cout);
  if (!rows.empty())
    std::cout << "geomean speedup: "
              << Table::fmt(
                     std::exp(log_sum / static_cast<double>(rows.size())), 2)
              << "x over " << rows.size() << " matrices\n";
  std::cout << '\n';
}

} // namespace

int main(int argc, char** argv) {
  static constexpr int kWidths[] = {1, 2, 4, 6, 8, 12, 16, 20, 24, 28, 32};
  static constexpr struct {
    const char* name;
    kernels::DecodeVariant variant;
  } kVariants[] = {
      {"spec", kernels::DecodeVariant::kSpecialized},
      {"gen", kernels::DecodeVariant::kGeneric},
      {"legacy", kernels::DecodeVariant::kLegacySlots},
  };
  for (const int sym_len : {32, 64}) {
    for (const auto& v : kVariants) {
      auto* b = benchmark::RegisterBenchmark(
          ("decode-" + std::string(v.name) + "/sym" + std::to_string(sym_len))
              .c_str(),
          BM_Decode, v.variant, sym_len);
      for (const int w : kWidths) b->Arg(w);
    }
    for (const kernels::SimdIsa isa :
         {kernels::SimdIsa::kSse4, kernels::SimdIsa::kAvx2}) {
      if (!kernels::simd_isa_runnable(isa)) continue;
      auto* b = benchmark::RegisterBenchmark(
          ("decode-" + std::string(kernels::simd_isa_name(isa)) + "/sym" +
           std::to_string(sym_len))
              .c_str(),
          BM_DecodeSimd, isa, sym_len);
      for (const int w : kWidths) b->Arg(w);
    }
    for (const kernels::SimdIsa isa :
         {kernels::SimdIsa::kScalar, kernels::SimdIsa::kSse4,
          kernels::SimdIsa::kAvx2}) {
      if (!kernels::simd_isa_runnable(isa)) continue;
      benchmark::RegisterBenchmark(
          ("ans-decode-" + std::string(kernels::simd_isa_name(isa)) + "/sym" +
           std::to_string(sym_len))
              .c_str(),
          BM_AnsDecode, isa, sym_len);
      benchmark::RegisterBenchmark(
          ("bcsr-decode-" + std::string(kernels::simd_isa_name(isa)) +
           "/sym" + std::to_string(sym_len))
              .c_str(),
          BM_BcsrDecode, isa, sym_len);
    }
  }
  print_suite_ab();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
