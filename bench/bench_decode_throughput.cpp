// Decode-throughput microbenchmark (google-benchmark): pure symbol-stream
// unpack speed per delta bit width, no values or x gather, for the three
// decoder variants the width-specialization work compares:
//
//   spec    width-templated kernel over packed MuxedStream storage (what the
//           plan's dispatch table selects for uniform-width slices/intervals)
//   gen     runtime-width kernel over packed storage (the dispatch fallback)
//   legacy  runtime-width decode over the old one-uint64-per-symbol slots
//
// Reported counter: deltas decoded per second. The same inner loops back
// `brospmv bench --decode`, which cross-checks all variants for bitwise
// parity before timing.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <string>

#include "kernels/decode_bench.h"

namespace {

using namespace bro;

constexpr std::size_t kLanes = 64;
constexpr std::size_t kDeltasPerLane = 16384;

void BM_Decode(benchmark::State& state, kernels::DecodeVariant variant,
               int sym_len) {
  const int width = static_cast<int>(state.range(0));
  const auto c = kernels::make_decode_bench_case(
      width, sym_len, kLanes, kDeltasPerLane,
      0x5eed0000u + static_cast<unsigned>(width));
  std::uint64_t sink = 0;
  for (auto _ : state) {
    sink += kernels::decode_pass(c, variant);
    benchmark::DoNotOptimize(sink);
  }
  state.counters["deltas/s"] = benchmark::Counter(
      static_cast<double>(kernels::decode_pass_deltas(c)) *
          static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate, benchmark::Counter::OneK::kIs1000);
}

} // namespace

int main(int argc, char** argv) {
  static constexpr int kWidths[] = {1, 2, 4, 6, 8, 12, 16, 20, 24, 28, 32};
  static constexpr struct {
    const char* name;
    kernels::DecodeVariant variant;
  } kVariants[] = {
      {"spec", kernels::DecodeVariant::kSpecialized},
      {"gen", kernels::DecodeVariant::kGeneric},
      {"legacy", kernels::DecodeVariant::kLegacySlots},
  };
  for (const int sym_len : {32, 64}) {
    for (const auto& v : kVariants) {
      auto* b = benchmark::RegisterBenchmark(
          ("decode-" + std::string(v.name) + "/sym" + std::to_string(sym_len))
              .c_str(),
          BM_Decode, v.variant, sym_len);
      for (const int w : kWidths) b->Arg(w);
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
