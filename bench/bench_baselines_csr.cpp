// Background baseline check (paper §2/§5): the classic Bell & Garland
// ordering CSR-scalar << CSR-vector <= ELLPACK must emerge from the
// simulator's coalescing model alone — CSR-scalar's per-thread row walks
// splinter every warp access into many memory transactions.
#include "bench_common.h"

#include "sparse/convert.h"

int main() {
  using namespace bro;
  bench::print_header("Baselines: CSR-scalar vs CSR-vector vs ELLPACK",
                      "Bell & Garland kernels referenced in paper §2/§5");

  const auto dev = sim::tesla_c2070(); // the architecture B&G targeted
  Table t({"Matrix", "CSR-scalar", "CSR-vector", "ELLPACK",
           "scalar txn/warp-load"});
  for (const char* name : {"cant", "consph", "mc2depi", "cage12"}) {
    const auto entry = sparse::find_suite_entry(name);
    const sparse::Csr m = sparse::generate_suite_matrix(*entry, bench_scale());
    const auto x = bench::random_x(m.cols);

    const auto scalar = kernels::sim_spmv_csr_scalar(dev, m, x);
    const auto vector = kernels::sim_spmv_csr_vector(dev, m, x);
    const auto ell = kernels::sim_spmv_ell(dev, sparse::csr_to_ell(m), x);
    const double txn_per_load =
        scalar.stats.warp_loads > 0
            ? static_cast<double>(scalar.stats.mem_transactions) /
                  static_cast<double>(scalar.stats.warp_loads)
            : 0;
    t.add_row({name, Table::fmt(scalar.time.gflops, 2),
               Table::fmt(vector.time.gflops, 2),
               Table::fmt(ell.time.gflops, 2), Table::fmt(txn_per_load, 1)});
  }
  t.print(std::cout);
  std::cout << "\nExpected shape: scalar CSR far below vector CSR and "
               "ELLPACK (uncoalesced access, many transactions per warp "
               "load); ELLPACK leads on regular matrices.\n";
  return 0;
}
