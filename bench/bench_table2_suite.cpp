// Table 2: overview of the 30-matrix benchmark suite. Prints the generated
// stand-in matrices' statistics next to the paper's published values for the
// original University of Florida matrices.
#include "bench_common.h"

int main() {
  using namespace bro;
  bench::print_header("Table 2: benchmark matrix suite",
                      "Table 2 (30 UF matrices, substituted by matched "
                      "synthetic generators — see DESIGN.md)");

  const double scale = bench_scale();
  for (const int set : {1, 2}) {
    std::cout << "Test Set " << set << ":\n";
    Table t({"Matrix", "Dims (gen)", "nnz (gen)", "mu gen/paper",
             "sigma gen/paper"});
    for (const auto& e : sparse::suite_test_set(set)) {
      const sparse::Csr m = sparse::generate_suite_matrix(e, scale);
      const auto s = sparse::compute_stats(m);
      t.add_row({e.name, sparse::dims_string(s.rows, s.cols),
                 std::to_string(s.nnz),
                 Table::fmt(s.mean_row_length, 1) + " / " +
                     Table::fmt(e.paper_mu, 1),
                 Table::fmt(s.stddev_row_length, 1) + " / " +
                     Table::fmt(e.paper_sigma, 1)});
    }
    t.print(std::cout);
    std::cout << '\n';
  }
  std::cout << "Generated at scale " << scale
            << "; paper dims/nnz are the full-scale values (nnz scales ~"
            << scale << "x, row-length structure is preserved).\n";
  return 0;
}
