// Model breakdown: where the simulated time goes, per format, on one
// representative matrix — DRAM traffic decomposition, cache hit rates, and
// the memory/compute roofline split. This is the diagnostic view behind
// EXPERIMENTS.md's analysis.
#include "bench_common.h"

#include "sparse/convert.h"

namespace {

void report(const char* label, const bro::kernels::SimResult& r) {
  using bro::Table;
  const auto& s = r.stats;
  const double tex_total = double(s.tex_hits + s.tex_misses);
  const double l2_total = double(s.l2_hits + s.l2_misses);
  std::cout << "  " << label << ": " << Table::fmt(r.time.gflops, 2)
            << " GFlop/s, " << s.dram_bytes() / 1024 << " KiB DRAM ("
            << (r.time.memory_bound ? "memory" : "compute") << "-bound; mem "
            << Table::fmt(r.time.mem_seconds * 1e6, 1) << " us vs compute "
            << Table::fmt(r.time.compute_seconds * 1e6, 1) << " us)\n"
            << "      tex hit "
            << Table::pct(tex_total > 0 ? s.tex_hits / tex_total : 0)
            << ", L2 hit "
            << Table::pct(l2_total > 0 ? s.l2_hits / l2_total : 0)
            << ", " << s.mem_transactions << " transactions over "
            << s.warp_loads << " warp loads ("
            << Table::fmt(s.warp_loads > 0
                              ? double(s.mem_transactions) / double(s.warp_loads)
                              : 0, 2)
            << " per load)\n";
}

} // namespace

int main() {
  using namespace bro;
  bench::print_header("Model breakdown on Tesla K20",
                      "diagnostic (EXPERIMENTS.md analysis view)");

  const auto dev = sim::tesla_k20();
  for (const char* name : {"cant", "mc2depi", "webbase-1M"}) {
    const auto entry = sparse::find_suite_entry(name);
    const sparse::Csr m = sparse::generate_suite_matrix(*entry, bench_scale());
    const auto x = bench::random_x(m.cols);
    std::cout << name << " (" << m.nnz() << " nnz):\n";

    const bool ell_ok = static_cast<double>(m.rows) * m.max_row_length() <=
                        3.0 * static_cast<double>(m.nnz());
    if (ell_ok) {
      const sparse::Ell ell = sparse::csr_to_ell(m);
      report("ELLPACK ", kernels::sim_spmv_ell(dev, ell, x));
      report("BRO-ELL ", kernels::sim_spmv_bro_ell(
                             dev, core::BroEll::compress(ell), x));
    }
    const sparse::Coo coo = sparse::csr_to_coo(m);
    report("COO     ", kernels::sim_spmv_coo(dev, coo, x));
    report("BRO-HYB ", kernels::sim_spmv_bro_hyb(
                           dev, core::BroHyb::compress(m), x));
    std::cout << '\n';
  }
  std::cout << "Reading guide: BRO variants shrink DRAM KiB (index traffic) "
               "while adding compute microseconds (decode); the format wins "
               "where the first effect dominates.\n";
  return 0;
}
