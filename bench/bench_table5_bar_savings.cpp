// Table 5: BRO-ELL space savings after BAR reordering, vs Table 3's
// unreordered savings (the paper reports ~4% additional savings on average).
#include "bench_common.h"

#include "core/bar.h"
#include "reorder/permutation.h"

int main() {
  using namespace bro;
  bench::print_header("Table 5: space savings after BAR reordering",
                      "Table 5 (Test Set 1)");

  Table t({"Matrix", "eta before", "eta after BAR", "eta paper (Table 5)"});
  double gain = 0;
  int n = 0;
  for (const auto& e : sparse::suite_test_set(1)) {
    const sparse::Csr m = sparse::generate_suite_matrix(e, bench_scale());
    const auto eta_of = [](const sparse::Csr& mat) {
      const core::BroEll bro =
          core::BroEll::compress(sparse::csr_to_ell(mat));
      return core::make_savings(bro.original_index_bytes(),
                                bro.compressed_index_bytes())
          .eta();
    };

    const double before = eta_of(m);
    core::BarOptions bopts;
    bopts.max_candidates = 0;
    const auto bar = core::bar_reorder(m, bopts);
    const double after = eta_of(reorder::permute_rows(m, bar.permutation));
    gain += after - before;
    ++n;
    t.add_row({e.name, Table::pct(before), Table::pct(after),
               Table::pct(e.paper_eta_bar)});
  }
  t.print(std::cout);
  std::cout << "\nMean additional savings from BAR: " << Table::pct(gain / n)
            << " (paper: ~4%)\n";
  return 0;
}
