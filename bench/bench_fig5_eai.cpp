// Figure 5: effective arithmetic intensity (EAI = useful flops per byte of
// DRAM traffic) of BRO-ELL vs ELLPACK on the Tesla K20. The paper shows
// BRO-ELL achieving consistently higher EAI because compression removes
// index traffic.
#include "bench_common.h"

int main() {
  using namespace bro;
  bench::print_header("Figure 5: effective arithmetic intensity on Tesla K20",
                      "Fig. 5 (Test Set 1, EAI = F/B)");

  const auto dev = sim::tesla_k20();
  Table t({"Matrix", "EAI ELLPACK", "EAI BRO-ELL", "ratio"});
  double worst = 1e9;
  for (const auto& e : sparse::suite_test_set(1)) {
    const sparse::Csr m = sparse::generate_suite_matrix(e, bench_scale());
    const auto x = bench::random_x(m.cols);
    const sparse::Ell ell = sparse::csr_to_ell(m);
    const auto r_ell = kernels::sim_spmv_ell(dev, ell, x);
    const auto r_bro =
        kernels::sim_spmv_bro_ell(dev, core::BroEll::compress(ell), x);
    const double ratio = r_bro.time.eai / r_ell.time.eai;
    worst = std::min(worst, ratio);
    t.add_row({e.name, Table::fmt(r_ell.time.eai, 3),
               Table::fmt(r_bro.time.eai, 3), Table::fmt(ratio, 2) + "x"});
  }
  t.print(std::cout);
  std::cout << "\nShape check (paper): BRO-ELL EAI > ELLPACK EAI on every "
               "matrix. Worst ratio here: "
            << Table::fmt(worst, 2) << "x\n";
  return 0;
}
