// Native (host CPU, OpenMP) wall-clock microbenchmarks of every SpMV kernel,
// via google-benchmark. These complement the simulator benches: they measure
// the library's real host performance, including the cost of on-the-fly
// BRO decompression.
//
// The benchmark set is registry-driven: each format registered in
// engine::format_registry() gets one benchmark per matrix it is applicable
// to, executed through a prebuilt SpmvPlan so the hot loop is allocation-free
// (what a solver inner loop sees).
#include <benchmark/benchmark.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/matrix.h"
#include "engine/format_registry.h"
#include "engine/plan.h"
#include "sparse/matgen/suite.h"
#include "util/env.h"
#include "util/rng.h"

namespace {

using namespace bro;

struct Fixture {
  std::shared_ptr<core::Matrix> matrix;
  std::vector<value_t> x;
  std::vector<value_t> y;
  std::map<core::Format, std::shared_ptr<engine::SpmvPlan>> plans;
};

Fixture& fixture(const std::string& name) {
  static std::map<std::string, Fixture> cache;
  auto it = cache.find(name);
  if (it == cache.end()) {
    Fixture f;
    const auto entry = sparse::find_suite_entry(name);
    f.matrix = std::make_shared<core::Matrix>(core::Matrix::from_csr(
        sparse::generate_suite_matrix(*entry, bench_scale())));
    Rng rng(7);
    f.x.resize(static_cast<std::size_t>(f.matrix->cols()));
    for (auto& v : f.x) v = rng.uniform();
    f.y.resize(static_cast<std::size_t>(f.matrix->rows()));
    it = cache.emplace(name, std::move(f)).first;
  }
  return it->second;
}

engine::SpmvPlan& plan_for(Fixture& f, core::Format format) {
  auto it = f.plans.find(format);
  if (it == f.plans.end())
    it = f.plans
             .emplace(format,
                      std::make_shared<engine::SpmvPlan>(f.matrix, format))
             .first;
  return *it->second;
}

void BM_PlanExecute(benchmark::State& state, std::string matrix,
                    core::Format format) {
  Fixture& f = fixture(matrix);
  engine::SpmvPlan& plan = plan_for(f, format);
  for (auto _ : state) {
    plan.execute(f.x, f.y);
    benchmark::DoNotOptimize(f.y.data());
    benchmark::ClobberMemory();
  }
  state.counters["GFlops"] = benchmark::Counter(
      2.0 * static_cast<double>(f.matrix->nnz()) *
          static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate, benchmark::Counter::OneK::kIs1000);
}

} // namespace

int main(int argc, char** argv) {
  // Two representative Test Set 1 FEM matrices (the whole format family is
  // applicable) and two Test Set 2 power-law matrices (the ELLPACK family
  // drops out via the registry's applicability predicate).
  for (const std::string m : {"cant", "epb3", "scircuit", "twotone"}) {
    const auto& csr = fixture(m).matrix->csr();
    for (const auto& t : engine::format_registry()) {
      if (!t.applicable(csr, 3.0)) continue;
      benchmark::RegisterBenchmark((std::string(t.name) + "/" + m).c_str(),
                                   BM_PlanExecute, m, t.format);
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
