// Native (host CPU, OpenMP) wall-clock microbenchmarks of every SpMV kernel,
// via google-benchmark. These complement the simulator benches: they measure
// the library's real host performance, including the cost of on-the-fly
// BRO decompression.
#include <benchmark/benchmark.h>

#include <map>
#include <string>
#include <vector>

#include "core/bro_coo.h"
#include "core/bro_ell.h"
#include "core/bro_hyb.h"
#include "kernels/native_spmv.h"
#include "sparse/convert.h"
#include "sparse/matgen/suite.h"
#include "util/env.h"
#include "util/rng.h"

namespace {

using namespace bro;

struct Fixture {
  sparse::Csr csr;
  sparse::Coo coo;
  sparse::Ell ell;
  sparse::EllR ellr;
  sparse::Hyb hyb;
  core::BroEll bro_ell;
  core::BroCoo bro_coo;
  core::BroHyb bro_hyb;
  std::vector<value_t> x;
  std::vector<value_t> y;
};

const Fixture& fixture(const char* name) {
  static std::map<std::string, Fixture> cache;
  auto it = cache.find(name);
  if (it == cache.end()) {
    Fixture f;
    const auto entry = sparse::find_suite_entry(name);
    f.csr = sparse::generate_suite_matrix(*entry, bench_scale());
    f.coo = sparse::csr_to_coo(f.csr);
    if (entry->test_set == 1) {
      f.ell = sparse::csr_to_ell(f.csr);
      f.ellr = sparse::csr_to_ellr(f.csr);
      f.bro_ell = core::BroEll::compress(f.ell);
    }
    f.hyb = sparse::csr_to_hyb(f.csr);
    f.bro_coo = core::BroCoo::compress(f.coo);
    f.bro_hyb = core::BroHyb::compress(f.csr);
    Rng rng(7);
    f.x.resize(static_cast<std::size_t>(f.csr.cols));
    for (auto& v : f.x) v = rng.uniform();
    f.y.resize(static_cast<std::size_t>(f.csr.rows));
    it = cache.emplace(name, std::move(f)).first;
  }
  return it->second;
}

void set_counters(benchmark::State& state, std::size_t nnz) {
  state.counters["GFlops"] = benchmark::Counter(
      2.0 * static_cast<double>(nnz) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate, benchmark::Counter::OneK::kIs1000);
}

#define BRO_BENCH_FORMAT(Name, call)                                 \
  void Name(benchmark::State& state, const char* matrix) {           \
    const Fixture& f = fixture(matrix);                              \
    std::vector<value_t> y(f.y.size());                              \
    for (auto _ : state) {                                           \
      call;                                                          \
      benchmark::DoNotOptimize(y.data());                            \
      benchmark::ClobberMemory();                                    \
    }                                                                \
    set_counters(state, f.csr.nnz());                                \
  }

BRO_BENCH_FORMAT(BM_Csr, kernels::native_spmv_csr(f.csr, f.x, y))
BRO_BENCH_FORMAT(BM_Coo, kernels::native_spmv_coo(f.coo, f.x, y))
BRO_BENCH_FORMAT(BM_Ell, kernels::native_spmv_ell(f.ell, f.x, y))
BRO_BENCH_FORMAT(BM_EllR, kernels::native_spmv_ellr(f.ellr, f.x, y))
BRO_BENCH_FORMAT(BM_Hyb, kernels::native_spmv_hyb(f.hyb, f.x, y))
BRO_BENCH_FORMAT(BM_BroEll, kernels::native_spmv_bro_ell(f.bro_ell, f.x, y))
BRO_BENCH_FORMAT(BM_BroCoo, kernels::native_spmv_bro_coo(f.bro_coo, f.x, y))
BRO_BENCH_FORMAT(BM_BroHyb, kernels::native_spmv_bro_hyb(f.bro_hyb, f.x, y))

} // namespace

int main(int argc, char** argv) {
  // Two representative matrices: a Test Set 1 FEM matrix (all formats) and
  // a Test Set 2 power-law matrix (HYB family only).
  for (const char* m : {"cant", "epb3"}) {
    benchmark::RegisterBenchmark((std::string("CSR/") + m).c_str(), BM_Csr, m);
    benchmark::RegisterBenchmark((std::string("COO/") + m).c_str(), BM_Coo, m);
    benchmark::RegisterBenchmark((std::string("ELL/") + m).c_str(), BM_Ell, m);
    benchmark::RegisterBenchmark((std::string("ELLR/") + m).c_str(), BM_EllR, m);
    benchmark::RegisterBenchmark((std::string("HYB/") + m).c_str(), BM_Hyb, m);
    benchmark::RegisterBenchmark((std::string("BRO-ELL/") + m).c_str(),
                                 BM_BroEll, m);
    benchmark::RegisterBenchmark((std::string("BRO-COO/") + m).c_str(),
                                 BM_BroCoo, m);
    benchmark::RegisterBenchmark((std::string("BRO-HYB/") + m).c_str(),
                                 BM_BroHyb, m);
  }
  for (const char* m : {"scircuit", "twotone"}) {
    benchmark::RegisterBenchmark((std::string("CSR/") + m).c_str(), BM_Csr, m);
    benchmark::RegisterBenchmark((std::string("COO/") + m).c_str(), BM_Coo, m);
    benchmark::RegisterBenchmark((std::string("HYB/") + m).c_str(), BM_Hyb, m);
    benchmark::RegisterBenchmark((std::string("BRO-COO/") + m).c_str(),
                                 BM_BroCoo, m);
    benchmark::RegisterBenchmark((std::string("BRO-HYB/") + m).c_str(),
                                 BM_BroHyb, m);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
