// Format auto-tuning over the full 30-matrix suite (clSpMV-style cocktail
// selection from the paper's related work, §5): which format wins on each
// matrix, and how much performance a fixed-format policy leaves behind.
#include "bench_common.h"

#include "engine/autotune.h"

int main() {
  using namespace bro;
  bench::print_header("Autotune: best format per matrix (Tesla K20)",
                      "related work §5 (clSpMV); extension beyond the paper");

  const auto dev = sim::tesla_k20();
  Table t({"Matrix", "best format", "GFlop/s", "runner-up", "margin"});
  double regret_hyb = 0, regret_brohyb = 0;
  int n = 0;
  for (const auto& e : sparse::suite_entries()) {
    const sparse::Csr m = sparse::generate_suite_matrix(e, bench_scale());
    const auto res = engine::autotune(m, dev);
    const auto& best = res.ranking[0];
    const auto& second = res.ranking[1];

    double g_hyb = 0, g_brohyb = 0;
    for (const auto& entry : res.ranking) {
      if (entry.format == core::Format::kHyb) g_hyb = entry.gflops;
      if (entry.format == core::Format::kBroHyb) g_brohyb = entry.gflops;
    }
    regret_hyb += best.gflops / std::max(1e-9, g_hyb);
    regret_brohyb += best.gflops / std::max(1e-9, g_brohyb);
    ++n;

    t.add_row({e.name, core::format_name(best.format),
               Table::fmt(best.gflops, 2), core::format_name(second.format),
               Table::fmt(best.gflops / std::max(1e-9, second.gflops), 2) +
                   "x"});
  }
  t.print(std::cout);
  std::cout << "\nAlways-HYB loses " << Table::fmt(regret_hyb / n, 2)
            << "x vs per-matrix tuning; always-BRO-HYB loses "
            << Table::fmt(regret_brohyb / n, 2)
            << "x. Compressed formats win across the suite; the *which*"
               " compressed format depends on the row-length profile.\n";
  return 0;
}
