// Figure 7: BRO-COO vs COO over all thirty matrices on the three GPUs.
// The paper finds modest speedups (smaller than BRO-ELL's, because the COO
// kernel pays for segmented scans and a reduction launch), and notes that
// Kepler GPUs benefit less — their faster caches raise the COO baseline
// while BRO-COO still pays the decode cost.
#include "bench_common.h"

#include "sparse/convert.h"

int main() {
  using namespace bro;
  bench::print_header("Figure 7: BRO-COO vs COO",
                      "Fig. 7 (all 30 matrices x three GPUs)");

  std::vector<double> avg(3, 0);
  for (std::size_t d = 0; d < sim::all_devices().size(); ++d) {
    const auto& dev = sim::all_devices()[d];
    std::cout << dev.name << ":\n";
    Table t({"Matrix", "COO GFlop/s", "BRO-COO GFlop/s", "speedup"});
    std::vector<double> speedups;
    for (const auto& e : sparse::suite_entries()) {
      const sparse::Csr m = sparse::generate_suite_matrix(e, bench_scale());
      const auto x = bench::random_x(m.cols);
      const sparse::Coo coo = sparse::csr_to_coo(m);

      const auto r_coo = kernels::sim_spmv_coo(dev, coo, x);
      const auto r_bro = kernels::sim_spmv_bro_coo(
          dev,
          core::BroCoo::compress(coo,
                                 kernels::bro_coo_options_for(coo.nnz(), dev)),
          x);
      const double s = r_bro.time.gflops / r_coo.time.gflops;
      speedups.push_back(s);
      t.add_row({e.name, Table::fmt(r_coo.time.gflops, 2),
                 Table::fmt(r_bro.time.gflops, 2), Table::fmt(s, 2) + "x"});
    }
    t.print(std::cout);
    avg[d] = bench::geomean(speedups);
    std::cout << "Average speedup: " << Table::fmt(avg[d], 2) << "x\n\n";
  }
  std::cout << "Shape check (paper): BRO-COO speedups are modest everywhere "
               "and smaller on the Kepler GPUs (GTX680/K20, here "
            << Table::fmt(avg[1], 2) << "x / " << Table::fmt(avg[2], 2)
            << "x) than on the Fermi C2070 (" << Table::fmt(avg[0], 2)
            << "x).\n";
  return 0;
}
