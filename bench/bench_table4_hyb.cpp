// Table 4: BRO-HYB partitioning of Test Set 2 — the fraction of non-zeros
// that lands in the BRO-ELL part and the space savings over all HYB index
// data (the COO column indices stay uncompressed).
#include "bench_common.h"

int main() {
  using namespace bro;
  bench::print_header("Table 4: BRO-HYB partitioning and space savings",
                      "Table 4 (Test Set 2)");

  Table t({"Matrix", "% BRO-ELL gen/paper", "eta gen/paper"});
  for (const auto& e : sparse::suite_test_set(2)) {
    const sparse::Csr m = sparse::generate_suite_matrix(e, bench_scale());
    const core::BroHyb bro = core::BroHyb::compress(m);
    const auto s = core::make_savings(bro.original_index_bytes(),
                                      bro.compressed_index_bytes());
    t.add_row({e.name,
               Table::pct(bro.ell_fraction()) + " / " +
                   Table::pct(e.paper_ell_frac),
               Table::pct(s.eta()) + " / " + Table::pct(e.paper_eta_brohyb)});
  }
  t.print(std::cout);
  std::cout << "\nShape check (paper): matrices with regular rows (pwtk, "
               "bcsstk32, ohne2) are nearly all BRO-ELL; rail4284 is almost "
               "entirely BRO-COO; webbase-1M compresses worst.\n";
  return 0;
}
