// Table 3: space savings (eta) achieved by BRO-ELL index compression on the
// sixteen Test Set 1 matrices, vs the paper's published savings.
#include "bench_common.h"

int main() {
  using namespace bro;
  bench::print_header("Table 3: BRO-ELL index space savings",
                      "Table 3 (Test Set 1, eta = 1 - C/O)");

  Table t({"Matrix", "eta measured", "eta paper", "kappa (ratio)"});
  double sum_meas = 0, sum_paper = 0;
  int n = 0;
  for (const auto& e : sparse::suite_test_set(1)) {
    const sparse::Csr m = sparse::generate_suite_matrix(e, bench_scale());
    const core::BroEll bro =
        core::BroEll::compress(sparse::csr_to_ell(m));
    const auto s = core::make_savings(bro.original_index_bytes(),
                                      bro.compressed_index_bytes());
    t.add_row({e.name, Table::pct(s.eta()), Table::pct(e.paper_eta_broell),
               Table::fmt(s.kappa(), 2) + "x"});
    sum_meas += s.eta();
    sum_paper += e.paper_eta_broell;
    ++n;
  }
  t.print(std::cout);
  std::cout << "\nMean eta: measured " << Table::pct(sum_meas / n)
            << " vs paper " << Table::pct(sum_paper / n) << '\n';
  return 0;
}
