// Extension/ablation: how much of BRO-ELL's win over ELLPACK comes from
// per-slice width adaptation (= Sliced-ELLPACK, Monakov et al.) versus from
// index compression? ELLPACK -> Sliced-ELLPACK isolates the first effect;
// Sliced-ELLPACK -> BRO-ELL isolates the second.
#include "bench_common.h"

#include "core/sliced_ell.h"
#include "kernels/sim_spmv_ext.h"

int main() {
  using namespace bro;
  bench::print_header(
      "Ablation: ELLPACK vs Sliced-ELLPACK vs BRO-ELL",
      "DESIGN.md §5 (decomposes Fig. 4's win into slicing + compression)");

  const auto dev = sim::tesla_k20();
  Table t({"Matrix", "ELLPACK", "Sliced-ELL", "BRO-ELL", "slicing gain",
           "compression gain"});
  std::vector<double> slicing, compression;
  for (const auto& e : sparse::suite_test_set(1)) {
    const sparse::Csr m = sparse::generate_suite_matrix(e, bench_scale());
    const auto x = bench::random_x(m.cols);
    const sparse::Ell ell = sparse::csr_to_ell(m);

    const double g_ell = kernels::sim_spmv_ell(dev, ell, x).time.gflops;
    const double g_sliced =
        kernels::sim_spmv_sliced_ell(dev, core::SlicedEll::build(ell), x)
            .time.gflops;
    const double g_bro =
        kernels::sim_spmv_bro_ell(dev, core::BroEll::compress(ell), x)
            .time.gflops;

    slicing.push_back(g_sliced / g_ell);
    compression.push_back(g_bro / g_sliced);
    t.add_row({e.name, Table::fmt(g_ell, 2), Table::fmt(g_sliced, 2),
               Table::fmt(g_bro, 2), Table::fmt(g_sliced / g_ell, 2) + "x",
               Table::fmt(g_bro / g_sliced, 2) + "x"});
  }
  t.print(std::cout);
  std::cout << "\nGeometric means: slicing "
            << Table::fmt(bench::geomean(slicing), 2) << "x, compression "
            << Table::fmt(bench::geomean(compression), 2)
            << "x on top of slicing.\nBoth stages matter; compression is the "
               "part no prior GPU format provides (paper §5).\n";
  return 0;
}
