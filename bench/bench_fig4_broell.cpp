// Figure 4: BRO-ELL vs ELLPACK vs ELLPACK-R across Test Set 1 on all three
// GPUs. The paper reports average BRO-ELL speedups over ELLPACK of 1.5x
// (C2070), 1.6x (GTX680) and 1.4x (K20), and 13% over ELLPACK-R on average.
#include "bench_common.h"

int main() {
  using namespace bro;
  bench::print_header("Figure 4: BRO-ELL vs ELLPACK vs ELLPACK-R",
                      "Fig. 4 (Test Set 1, GFlop/s per device)");

  for (const auto& dev : sim::all_devices()) {
    std::cout << dev.name << ":\n";
    Table t({"Matrix", "ELLPACK", "ELLPACK-R", "BRO-ELL", "speedup vs ELL",
             "speedup vs ELL-R"});
    std::vector<double> vs_ell, vs_ellr;
    for (const auto& e : sparse::suite_test_set(1)) {
      const sparse::Csr m = sparse::generate_suite_matrix(e, bench_scale());
      const auto x = bench::random_x(m.cols);
      const sparse::Ell ell = sparse::csr_to_ell(m);

      const auto r_ell = kernels::sim_spmv_ell(dev, ell, x);
      const auto r_ellr =
          kernels::sim_spmv_ellr(dev, sparse::csr_to_ellr(m), x);
      const auto r_bro =
          kernels::sim_spmv_bro_ell(dev, core::BroEll::compress(ell), x);

      const double s1 = r_bro.time.gflops / r_ell.time.gflops;
      const double s2 = r_bro.time.gflops / r_ellr.time.gflops;
      vs_ell.push_back(s1);
      vs_ellr.push_back(s2);
      t.add_row({e.name, Table::fmt(r_ell.time.gflops, 2),
                 Table::fmt(r_ellr.time.gflops, 2),
                 Table::fmt(r_bro.time.gflops, 2), Table::fmt(s1, 2) + "x",
                 Table::fmt(s2, 2) + "x"});
    }
    t.print(std::cout);
    std::cout << "Average speedup vs ELLPACK: "
              << Table::fmt(bench::geomean(vs_ell), 2) << "x   vs ELLPACK-R: "
              << Table::fmt(bench::geomean(vs_ellr), 2) << "x\n";
    std::cout << "Paper: 1.5x / 1.6x / 1.4x vs ELLPACK on C2070 / GTX680 / "
                 "K20; +13% vs ELLPACK-R on average.\n\n";
  }
  return 0;
}
