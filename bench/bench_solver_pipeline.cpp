// End-to-end iterative-solver impact (paper §1: SpMV is the bottleneck of
// CG/GMRES). CG runs once on the host to get the iteration count and the
// SpMV share; the per-iteration GPU time is then estimated per format from
// the simulator, giving projected time-to-solution — the number a practitioner
// actually cares about.
#include "bench_common.h"

#include "engine/plan.h"
#include "solver/cg.h"
#include "sparse/convert.h"
#include "sparse/matgen/generators.h"

int main() {
  using namespace bro;
  bench::print_header("Solver pipeline: projected CG time-to-solution",
                      "paper §1 (SpMV inside CG); projection = iterations x "
                      "simulated per-iteration time");

  const index_t side = std::max<index_t>(
      128, static_cast<index_t>(std::lround(700 * bench_scale())));
  const sparse::Csr a = sparse::generate_poisson2d(side, side);
  std::cout << "2-D Poisson, " << side << " x " << side << " grid ("
            << a.nnz() << " non-zeros)\n\n";

  // Host CG for the iteration count (identical for every exact SpMV).
  const std::size_t n = static_cast<std::size_t>(a.rows);
  std::vector<value_t> x_true(n, 1.0), b(n), x(n, 0.0);
  sparse::spmv_csr_reference(a, x_true, b);
  const solver::Operator op = engine::plan_operator(engine::make_shared_plan(
      core::Matrix::from_csr(a), core::Format::kCsr));
  solver::SolveOptions sopts;
  sopts.max_iterations = 6000;
  const auto sres = solver::cg(op, b, x, sopts);
  std::cout << "CG iterations to 1e-10: " << sres.iterations
            << (sres.converged ? "" : " (NOT converged)") << "\n\n";

  // CG moves ~10 vector streams per iteration besides the SpMV; estimate
  // the vector-op time from pure bandwidth.
  const double vec_bytes = 10.0 * static_cast<double>(n) * sizeof(value_t);

  const auto xvec = bench::random_x(a.cols);
  Table t({"Device", "format", "SpMV us/iter", "projected solve (ms)",
           "speedup vs ELLPACK"});
  for (const auto& dev : sim::all_devices()) {
    const double vec_s = vec_bytes / (dev.measured_bw_gbps * 1e9);
    const auto project = [&](double spmv_s) {
      return (spmv_s + vec_s) * sres.iterations * 1e3;
    };
    const sparse::Ell ell = sparse::csr_to_ell(a);
    const double t_ell =
        kernels::sim_spmv_ell(dev, ell, xvec).time.seconds;
    const double t_bro =
        kernels::sim_spmv_bro_ell(dev, core::BroEll::compress(ell), xvec)
            .time.seconds;
    t.add_row({dev.name, "ELLPACK", Table::fmt(t_ell * 1e6, 1),
               Table::fmt(project(t_ell), 1), "1.00x"});
    t.add_row({dev.name, "BRO-ELL", Table::fmt(t_bro * 1e6, 1),
               Table::fmt(project(t_bro), 1),
               Table::fmt(project(t_ell) / project(t_bro), 2) + "x"});
  }
  t.print(std::cout);
  std::cout << "\nThe end-to-end gain is the SpMV gain diluted by the CG "
               "vector operations — compression helps exactly as much as "
               "SpMV dominates (Amdahl).\n";
  return 0;
}
