// Table 1: specifications of the GPUs used in the evaluation study.
#include "bench_common.h"

int main() {
  using namespace bro;
  bench::print_header("Table 1: GPU specifications",
                      "Table 1 (paper page 5) — device models used by the "
                      "analytic simulator");

  Table t({"Specification", "Tesla C2070", "GTX680", "Tesla K20"});
  const auto& d = sim::all_devices();
  t.add_row({"Compute capability", Table::fmt(d[0].compute_capability, 1),
             Table::fmt(d[1].compute_capability, 1),
             Table::fmt(d[2].compute_capability, 1)});
  t.add_row({"Cores", std::to_string(d[0].sm_count * d[0].cores_per_sm),
             std::to_string(d[1].sm_count * d[1].cores_per_sm),
             std::to_string(d[2].sm_count * d[2].cores_per_sm)});
  t.add_row({"Mem. BW (GB/s)", Table::fmt(d[0].peak_bw_gbps, 1),
             Table::fmt(d[1].peak_bw_gbps, 1), Table::fmt(d[2].peak_bw_gbps, 1)});
  t.add_row({"DP perf. (GFlop/s)", Table::fmt(d[0].dp_gflops, 0),
             Table::fmt(d[1].dp_gflops, 0), Table::fmt(d[2].dp_gflops, 0)});
  t.add_row({"Measured BW (GB/s, paper 4.1)", Table::fmt(d[0].measured_bw_gbps, 0),
             Table::fmt(d[1].measured_bw_gbps, 0),
             Table::fmt(d[2].measured_bw_gbps, 0)});
  t.add_row({"SMs x cores/SM",
             std::to_string(d[0].sm_count) + " x " + std::to_string(d[0].cores_per_sm),
             std::to_string(d[1].sm_count) + " x " + std::to_string(d[1].cores_per_sm),
             std::to_string(d[2].sm_count) + " x " + std::to_string(d[2].cores_per_sm)});
  t.print(std::cout);

  std::cout << "\nPaper values: 448 / 1536 / 2496 cores; 144 / 192.3 / 208 "
               "GB/s; 515 / 129 / 1170 DP GFlop/s.\n";
  return 0;
}
