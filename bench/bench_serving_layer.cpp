// Serving-layer benchmark (new subsystem; no paper table — the SC'13 paper
// measures one SpMV at a time, this measures the layer that amortizes its
// decode cost across requests).
//
// Part 1: kernel-level SpMM amortization. For each format with a native
// multi-vector kernel, rows/s for k = 8 independent execute() calls vs one
// execute_multi(X, Y, 8). The BRO formats gain the most: the bit-unpacking
// of each column index is paid once and feeds k FMAs instead of one.
//
// Part 2: server-level batching. The same request stream served with
// max_batch = 1 (coalescing off) vs max_batch = 8: requests/s plus the
// cache and batch metrics the serve layer exports.
//
// Part 3: row-sharded multi-pool execution. A >= 1M-nnz suite matrix
// served at saturation by one single-threaded pool vs P pools x S shards
// (engine/shard.h), with queue-wait and execute-time percentiles reported
// separately. Shard fan-out buys throughput only when the host has cores
// to fan out to — the pool count follows hardware_concurrency, and on a
// 1-core host the sharded row shows the overhead floor, not a speedup.
#include <algorithm>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "engine/plan.h"
#include "serve/server.h"
#include "util/timer.h"

namespace {

using namespace bro;

constexpr int kBatch = 8;

struct KernelResult {
  double single_rows_per_s = 0;
  double batched_rows_per_s = 0;
};

KernelResult bench_plan(const std::shared_ptr<const core::Matrix>& m,
                        core::Format f, int reps) {
  engine::SpmvPlan plan(m, f);
  const auto rows = static_cast<std::size_t>(m->rows());
  const auto cols = static_cast<std::size_t>(m->cols());

  const std::vector<value_t> x = bench::random_x(m->cols());
  std::vector<value_t> y(rows);
  std::vector<value_t> x_batch(cols * kBatch), y_batch(rows * kBatch);
  for (int j = 0; j < kBatch; ++j)
    for (std::size_t c = 0; c < cols; ++c)
      x_batch[c * kBatch + j] = x[(c + static_cast<std::size_t>(j)) % cols];

  plan.execute(x, y); // warm the workspace before timing
  plan.execute_multi(x_batch, y_batch, kBatch);

  KernelResult r;
  Timer single;
  for (int rep = 0; rep < reps; ++rep)
    for (int j = 0; j < kBatch; ++j) plan.execute(x, y);
  r.single_rows_per_s =
      double(rows) * kBatch * reps / single.seconds();
  Timer batched;
  for (int rep = 0; rep < reps; ++rep)
    plan.execute_multi(x_batch, y_batch, kBatch);
  r.batched_rows_per_s =
      double(rows) * kBatch * reps / batched.seconds();
  return r;
}

void bench_kernels() {
  bench::print_header("SpMM amortization: k = 8 batched vs 8 single SpMVs",
                      "serving-layer extension (no paper table)");

  const core::Format formats[] = {core::Format::kCsr, core::Format::kEll,
                                  core::Format::kBroEll,
                                  core::Format::kBroCoo};
  const char* names[] = {"cant", "consph", "qcd5_4", "shipsec1"};

  Table t({"Matrix", "Format", "single Mrows/s", "batched Mrows/s",
           "speedup"});
  std::vector<double> bro_ell_speedups;
  for (const char* name : names) {
    const auto entry = sparse::find_suite_entry(name);
    auto m = std::make_shared<core::Matrix>(core::Matrix::from_csr(
        sparse::generate_suite_matrix(*entry, bench_scale())));
    for (const core::Format f : formats) {
      const auto r = bench_plan(m, f, 5);
      const double speedup = r.batched_rows_per_s / r.single_rows_per_s;
      if (f == core::Format::kBroEll) bro_ell_speedups.push_back(speedup);
      t.add_row({name, core::format_name(f),
                 Table::fmt(r.single_rows_per_s / 1e6, 2),
                 Table::fmt(r.batched_rows_per_s / 1e6, 2),
                 Table::fmt(speedup, 2)});
    }
  }
  t.print(std::cout);
  std::cout << "BRO-ELL geomean batched speedup at k = " << kBatch << ": "
            << Table::fmt(bench::geomean(bro_ell_speedups), 2) << "x\n";
}

double run_server(int max_batch, std::uint64_t* batches_out,
                  double* mean_batch_out) {
  serve::ServerOptions opts;
  opts.threads = 0; // synchronous: measures batching, not scheduling noise
  opts.max_batch = max_batch;
  opts.max_queue = 1024;
  opts.format = core::Format::kBroEll;
  serve::SpmvServer server(opts);

  const auto entry = sparse::find_suite_entry("cant");
  auto m = std::make_shared<core::Matrix>(core::Matrix::from_csr(
      sparse::generate_suite_matrix(*entry, bench_scale())));
  const index_t cols = m->cols();
  server.add_matrix("cant", std::move(m));

  constexpr int kRequests = 256;
  const std::vector<value_t> x = bench::random_x(cols);
  std::vector<std::future<std::vector<value_t>>> pending;
  pending.reserve(kRequests);

  // Warm the plan cache so both runs measure serving, not compression
  // (threads == 0: drain() drives the batch on this thread).
  auto warm = server.submit("cant", x);
  server.drain();
  warm.get();

  Timer wall;
  for (int r = 0; r < kRequests; ++r) pending.push_back(server.submit("cant", x));
  server.drain();
  const double secs = wall.seconds();
  for (auto& f : pending) f.get();

  const auto metrics = server.metrics();
  *batches_out = metrics.batches - 1; // minus the warm-up batch
  *mean_batch_out = metrics.batch_sizes.mean();
  return double(kRequests) / secs;
}

void bench_server() {
  bench::print_header(
      "Server-level request coalescing: max_batch 1 vs 8 (BRO-ELL)",
      "serving-layer extension (no paper table)");

  Table t({"max_batch", "req/s", "batches", "mean batch"});
  for (const int b : {1, kBatch}) {
    std::uint64_t batches = 0;
    double mean_batch = 0;
    const double rps = run_server(b, &batches, &mean_batch);
    t.add_row({std::to_string(b), Table::fmt(rps, 1),
               std::to_string(batches), Table::fmt(mean_batch, 2)});
  }
  t.print(std::cout);
}

struct ShardedRunResult {
  double rps = 0;
  std::uint64_t batches = 0;
  std::uint64_t sharded_batches = 0;
  double wait_p50 = 0, wait_p99 = 0;
  double exec_p50 = 0, exec_p99 = 0;
};

ShardedRunResult run_sharded_server(
    const std::shared_ptr<const core::Matrix>& m, int pools, int shards,
    int pool_omp) {
  serve::ServerOptions opts;
  opts.threads = 1; // one dispatcher; parallelism lives in the pools
  opts.max_batch = kBatch;
  opts.max_queue = 4096;
  opts.format = core::Format::kBroEll;
  opts.pools = pools;
  opts.pool_threads = 1;
  opts.pool_omp = pool_omp;
  opts.shards = shards;
  opts.shard_min_nnz = 1; // the bench matrix always shards when shards > 1
  serve::SpmvServer server(opts);
  server.add_matrix("big", m);

  const std::vector<value_t> x = bench::random_x(m->cols());
  // Warm the plan (and the per-shard plans) before timing.
  server.submit("big", x).get();

  constexpr int kRequests = 192;
  std::vector<std::future<std::vector<value_t>>> pending;
  pending.reserve(kRequests);
  Timer wall;
  // Saturation: the queue is long enough that the dispatcher never idles.
  for (int r = 0; r < kRequests; ++r)
    pending.push_back(server.submit("big", x));
  for (auto& f : pending) f.get();
  const double secs = wall.seconds();

  const auto metrics = server.metrics();
  ShardedRunResult res;
  res.rps = double(kRequests) / secs;
  res.batches = metrics.batches - 1; // minus the warm-up batch
  res.sharded_batches = metrics.sharded_batches;
  res.wait_p50 = metrics.queue_wait.percentile(50);
  res.wait_p99 = metrics.queue_wait.percentile(99);
  res.exec_p50 = metrics.execute.percentile(50);
  res.exec_p99 = metrics.execute.percentile(99);
  return res;
}

void bench_sharded_pools() {
  bench::print_header(
      "Row-sharded multi-pool serving at saturation (BRO-ELL)",
      "serving-layer extension (no paper table)");

  // Scale a heavy suite matrix up to >= 1M nnz so the shards carry real
  // work; respect BRO_SCALE as the floor.
  const auto entry = sparse::find_suite_entry("pwtk");
  double scale = bench_scale();
  std::shared_ptr<const core::Matrix> m;
  for (int tries = 0; tries < 8; ++tries) {
    m = std::make_shared<const core::Matrix>(core::Matrix::from_csr(
        sparse::generate_suite_matrix(*entry, scale)));
    if (m->nnz() >= 1000000) break;
    scale *= 2;
  }
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  const int pools = static_cast<int>(std::clamp(hw, 2u, 8u));
  std::cout << "matrix pwtk @ scale " << Table::fmt(scale, 3) << ": "
            << m->rows() << " x " << m->cols() << ", nnz " << m->nnz()
            << "; host cores " << hw << ", pools " << pools << "\n\n";

  Table t({"config", "req/s", "speedup", "batches", "wait p50/p99",
           "exec p50/p99"});
  // Baseline: one pool, one thread, kernel-internal OpenMP left as-is.
  const auto single = run_sharded_server(m, 1, 0, 0);
  // Sharded: parallelism moves from inside the kernel to across shards,
  // so each pool worker runs its kernels single-threaded (pool_omp = 1).
  const auto sharded = run_sharded_server(m, pools, pools, 1);
  const auto row = [&](const char* name, const ShardedRunResult& r) {
    t.add_row({name, Table::fmt(r.rps, 1), Table::fmt(r.rps / single.rps, 2),
               std::to_string(r.batches),
               Table::fmt(r.wait_p50 * 1e3, 2) + "/" +
                   Table::fmt(r.wait_p99 * 1e3, 2) + " ms",
               Table::fmt(r.exec_p50 * 1e3, 2) + "/" +
                   Table::fmt(r.exec_p99 * 1e3, 2) + " ms"});
  };
  row("1 pool, unsharded", single);
  row((std::to_string(pools) + " pools x " + std::to_string(pools) +
       " shards").c_str(),
      sharded);
  t.print(std::cout);
  std::cout << "sharded batches: " << sharded.sharded_batches
            << " (bitwise-identical to the unsharded plan; see "
               "`brospmv fuzz` shard sweep)\n";
}

} // namespace

int main() {
  bench_kernels();
  bench_server();
  bench_sharded_pools();
  return 0;
}
