// Ablation study of the BRO-ELL design choices (DESIGN.md §5):
//   * slice height h (the paper fixes h = 256 = thread-block size)
//   * symbol length (32 vs 64 bits per load)
//   * delta coding (vs packing raw column indices)
//   * per-column bit allocation (vs one width per slice)
// Reported as index space savings and simulated K20 GFlop/s on a
// representative Test Set 1 matrix.
#include "bench_common.h"

#include "bits/bitwidth.h"

namespace {

using namespace bro;

// Variant compressors expressed through the public options where possible;
// the "no delta" and "per-slice width" variants are emulated by measuring
// what their bit allocation would be.
std::size_t bytes_without_delta(const sparse::Ell& ell, int h) {
  // Packing raw column indices: each slice column needs Γ(max col index + 1).
  std::size_t total_bits = 0;
  for (index_t r0 = 0; r0 < ell.rows; r0 += h) {
    const index_t height = std::min<index_t>(h, ell.rows - r0);
    index_t num_col = 0;
    for (index_t t = 0; t < height; ++t) {
      index_t len = 0;
      while (len < ell.width && ell.col_at(r0 + t, len) != sparse::kPad) ++len;
      num_col = std::max(num_col, len);
    }
    std::size_t row_bits = 0;
    for (index_t c = 0; c < num_col; ++c) {
      index_t max_col = 0;
      for (index_t t = 0; t < height; ++t)
        if (c < ell.width && ell.col_at(r0 + t, c) != sparse::kPad)
          max_col = std::max(max_col, ell.col_at(r0 + t, c));
      row_bits += static_cast<std::size_t>(
          std::max(1, bits::bit_width_of(static_cast<std::uint64_t>(max_col) + 1)));
    }
    row_bits = (row_bits + 31) / 32 * 32;
    total_bits += row_bits * static_cast<std::size_t>(height);
    total_bits += static_cast<std::size_t>(num_col) * 8 + 32;
  }
  return total_bits / 8;
}

std::size_t bytes_single_width_per_slice(const core::BroEll& bro) {
  // One bit width per slice = max over the slice's per-column widths.
  std::size_t total_bits = 0;
  for (const auto& s : bro.slices()) {
    int b = 1;
    for (const auto w : s.bit_alloc) b = std::max<int>(b, w);
    std::size_t row_bits = static_cast<std::size_t>(b) *
                           static_cast<std::size_t>(s.num_col);
    row_bits = (row_bits + 31) / 32 * 32;
    total_bits += row_bits * static_cast<std::size_t>(s.height);
    total_bits += 8 + 32; // one width byte + num_col
  }
  return total_bits / 8;
}

} // namespace

int main() {
  using namespace bro;
  bench::print_header("Ablation: BRO-ELL design choices",
                      "DESIGN.md §5 (not a paper figure; justifies Fig. 1's "
                      "pipeline stages)");

  const auto entry = sparse::find_suite_entry("cant");
  const sparse::Csr m = sparse::generate_suite_matrix(*entry, bench_scale());
  const sparse::Ell ell = sparse::csr_to_ell(m);
  const auto x = bench::random_x(m.cols);
  const auto dev = sim::tesla_k20();
  const std::size_t original = ell.index_bytes();

  std::cout << "Matrix: cant stand-in, " << m.nnz() << " non-zeros\n\n";

  // --- slice height sweep ---
  std::cout << "Slice height h (paper default 256):\n";
  Table t1({"h", "eta", "K20 GFlop/s"});
  for (const int h : {32, 64, 128, 256, 512, 1024}) {
    core::BroEllOptions opts;
    opts.slice_height = h;
    const auto bro = core::BroEll::compress(ell, opts);
    const double eta =
        1.0 - static_cast<double>(bro.compressed_index_bytes()) / original;
    const auto r = kernels::sim_spmv_bro_ell(dev, bro, x);
    t1.add_row({std::to_string(h), Table::pct(eta),
                Table::fmt(r.time.gflops, 2)});
  }
  t1.print(std::cout);
  std::cout << "Smaller slices adapt the bit allocation better (higher eta) "
               "but add per-slice overhead; 256 matches the thread block.\n\n";

  // --- symbol length ---
  std::cout << "Symbol length (bits per decompression load):\n";
  Table t2({"sym_len", "eta", "K20 GFlop/s"});
  for (const int sl : {32, 64}) {
    core::BroEllOptions opts;
    opts.sym_len = sl;
    const auto bro = core::BroEll::compress(ell, opts);
    const double eta =
        1.0 - static_cast<double>(bro.compressed_index_bytes()) / original;
    const auto r = kernels::sim_spmv_bro_ell(dev, bro, x);
    t2.add_row({std::to_string(sl), Table::pct(eta),
                Table::fmt(r.time.gflops, 2)});
  }
  t2.print(std::cout);
  std::cout << '\n';

  // --- pipeline-stage ablations (storage only) ---
  const auto bro = core::BroEll::compress(ell);
  Table t3({"Variant", "index bytes", "eta"});
  t3.add_row({"full BRO-ELL (delta + per-column widths)",
              std::to_string(bro.compressed_index_bytes()),
              Table::pct(1.0 - double(bro.compressed_index_bytes()) / original)});
  const std::size_t nodelta = bytes_without_delta(ell, 256);
  t3.add_row({"no delta coding (pack raw indices)", std::to_string(nodelta),
              Table::pct(1.0 - double(nodelta) / original)});
  const std::size_t onewidth = bytes_single_width_per_slice(bro);
  t3.add_row({"single width per slice (BRO-COO style)",
              std::to_string(onewidth),
              Table::pct(1.0 - double(onewidth) / original)});
  t3.add_row({"uncompressed ELLPACK", std::to_string(original), "0.0%"});
  t3.print(std::cout);
  std::cout << "\nDelta coding and per-column allocation each contribute "
               "materially to the compression ratio.\n";
  return 0;
}
