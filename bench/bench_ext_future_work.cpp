// Extensions from the paper's future-work list (§6):
//   (a) multiple threads per row (BRO-ELL-T) — helps long-row matrices by
//       shortening the per-thread decode loop and adding parallelism;
//   (b) value compression (BRO-ELL-VC) — dictionary-codes the value array
//       when values repeat (stencils, constant-coefficient FEM).
#include "bench_common.h"

#include "kernels/sim_spmv_ext.h"
#include "sparse/matgen/generators.h"

int main() {
  using namespace bro;
  bench::print_header("Extensions: BRO-ELL-T and BRO-ELL-VC",
                      "paper §6 future work (DESIGN.md §5)");

  const auto dev = sim::tesla_k20();

  // --- (a) multiple threads per row ---
  std::cout << "(a) Multiple threads per row, Tesla K20:\n";
  Table ta({"Matrix", "rows", "mu", "T=1", "T=2", "T=4", "T=8"});
  // pdb1HYS: long rows (mu 119); epb3: short rows (mu 5.5) as the control.
  for (const char* name : {"pdb1HYS", "cant", "epb3"}) {
    const auto entry = sparse::find_suite_entry(name);
    const sparse::Csr m = sparse::generate_suite_matrix(*entry, bench_scale());
    const auto x = bench::random_x(m.cols);
    const sparse::Ell ell = sparse::csr_to_ell(m);
    std::vector<std::string> row = {
        name, std::to_string(m.rows),
        Table::fmt(entry->paper_mu, 1)};
    for (const int t : {1, 2, 4, 8}) {
      const auto vec = core::BroEllVector::compress(ell, t);
      row.push_back(Table::fmt(
          kernels::sim_spmv_bro_ell_vector(dev, vec, x).time.gflops, 2));
    }
    ta.add_row(std::move(row));
  }
  ta.print(std::cout);
  std::cout << "Long-row matrices benefit from T > 1 when the device is "
               "under-filled; short-row matrices lose (stride-T deltas pack "
               "worse, reduction costs shuffle cycles).\n\n";

  // --- (b) value compression ---
  std::cout << "(b) Value compression, Tesla K20:\n";
  Table tb({"Matrix", "distinct vals", "value bytes", "VC value bytes",
            "BRO-ELL GFlop/s", "BRO-ELL-VC GFlop/s"});
  struct Case {
    const char* label;
    sparse::Csr csr;
  };
  std::vector<Case> cases;
  {
    const index_t side = std::max<index_t>(
        128, static_cast<index_t>(std::lround(500 * bench_scale())));
    cases.push_back({"poisson (2 values)",
                     sparse::generate_poisson2d(side, side)});
    const auto entry = sparse::find_suite_entry("cant");
    cases.push_back(
        {"cant (random values)",
         sparse::generate_suite_matrix(*entry, bench_scale())});
  }
  for (auto& c : cases) {
    const auto x = bench::random_x(c.csr.cols);
    const sparse::Ell ell = sparse::csr_to_ell(c.csr);
    const auto bro = core::BroEll::compress(ell);
    const auto vc = core::BroEllValues::compress(ell);
    std::size_t distinct = 0;
    for (const auto& vs : vc.value_slices())
      distinct = std::max(distinct, vs.dict.size());
    tb.add_row(
        {c.label, vc.dict_slice_fraction() > 0 ? std::to_string(distinct) : ">4096",
         std::to_string(vc.original_value_bytes()),
         std::to_string(vc.compressed_value_bytes()),
         Table::fmt(kernels::sim_spmv_bro_ell(dev, bro, x).time.gflops, 2),
         Table::fmt(kernels::sim_spmv_bro_ell_values(dev, vc, x).time.gflops,
                    2)});
  }
  tb.print(std::cout);
  std::cout << "Stencil-like matrices nearly eliminate value traffic; "
               "random-valued matrices fall back to raw storage and lose "
               "nothing.\n";
  return 0;
}
