// autotune_demo: pick the best SpMV format for a matrix on each GPU, then
// show the compress -> serialize -> load -> solve pipeline end to end.
//
// Run:  ./build/examples/autotune_demo [suite-matrix|file.mtx] [scale]
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/serialize.h"
#include "engine/autotune.h"
#include "solver/bicgstab.h"
#include "sparse/convert.h"
#include "sparse/matgen/generators.h"
#include "sparse/matgen/suite.h"
#include "sparse/mmio.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace bro;

  const std::string name = argc > 1 ? argv[1] : "twotone";
  const double scale = argc > 2 ? std::atof(argv[2]) : 0.125;
  sparse::Csr m;
  if (const auto entry = sparse::find_suite_entry(name)) {
    m = sparse::generate_suite_matrix(*entry, scale);
  } else {
    m = sparse::coo_to_csr(sparse::read_matrix_market_file(name));
  }
  std::cout << "Matrix " << name << ": " << m.rows << " x " << m.cols << ", "
            << m.nnz() << " non-zeros\n\n";

  // 1. Tune per device.
  std::cout << "Best format per GPU (simulated):\n";
  Table t({"Device", "winner", "GFlop/s", "index savings"});
  for (const auto& dev : sim::all_devices()) {
    const auto res = engine::autotune(m, dev);
    const auto& best = res.ranking.front();
    t.add_row({dev.name, core::format_name(best.format),
               Table::fmt(best.gflops, 2), Table::pct(best.eta)});
  }
  t.print(std::cout);

  // 2. The deployment pipeline: compress once, persist, reload, solve.
  if (m.rows != m.cols) {
    std::cout << "\n(rectangular matrix: skipping the solver stage)\n";
    return 0;
  }
  sparse::make_diag_dominant(m, 2.0);
  const auto bro = core::BroHyb::compress(m);
  std::stringstream storage; // stands in for a .bro file on disk
  core::write_bro_hyb(storage, bro);
  std::cout << "\nSerialized BRO-HYB: " << storage.str().size()
            << " bytes (index data " << bro.compressed_index_bytes()
            << " B compressed from " << bro.original_index_bytes() << " B)\n";

  const auto loaded = core::read_bro_hyb(storage);
  const solver::Operator op = [&](std::span<const value_t> in,
                                  std::span<value_t> out) {
    loaded.spmv(in, out);
  };
  const std::vector<value_t> x_true(static_cast<std::size_t>(m.rows), 1.0);
  std::vector<value_t> b(x_true.size());
  op(x_true, b);
  std::vector<value_t> x(x_true.size(), 0.0);
  solver::SolveOptions sopts;
  sopts.max_iterations = 3000;
  const auto res = solver::bicgstab(op, b, x, sopts);
  std::cout << "BiCGSTAB through the loaded compressed operator: "
            << (res.converged ? "converged" : "FAILED") << " in "
            << res.iterations << " iterations (relative residual "
            << res.residual_norm << ")\n";
  return res.converged ? 0 : 1;
}
