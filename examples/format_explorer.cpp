// format_explorer: given a matrix (a .mtx file or a named suite matrix),
// print its statistics, the space savings every BRO format achieves, and the
// simulated SpMV performance of every format on the three paper GPUs —
// a practical "which format should I use?" tool.
//
// Run:  ./build/examples/format_explorer cant
//       ./build/examples/format_explorer path/to/matrix.mtx [scale]
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "core/matrix.h"
#include "engine/format_registry.h"
#include "sparse/convert.h"
#include "sparse/matgen/suite.h"
#include "sparse/mmio.h"
#include "util/rng.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace bro;

  const std::string name = argc > 1 ? argv[1] : "cant";
  const double scale = argc > 2 ? std::atof(argv[2]) : 0.125;

  sparse::Csr csr;
  if (const auto entry = sparse::find_suite_entry(name)) {
    std::cout << "Suite matrix '" << name << "' at scale " << scale << "\n";
    csr = sparse::generate_suite_matrix(*entry, scale);
  } else {
    std::cout << "Matrix Market file " << name << "\n";
    csr = sparse::coo_to_csr(sparse::read_matrix_market_file(name));
  }
  const core::Matrix m = core::Matrix::from_csr(std::move(csr));

  const auto stats = m.stats();
  std::cout << "  " << m.rows() << " x " << m.cols() << ", " << m.nnz()
            << " non-zeros; row length mean " << stats.mean_row_length
            << ", sigma " << stats.stddev_row_length << ", max "
            << stats.max_row_length << "\n\n";

  const bool ell_viable = m.auto_format() == core::Format::kBroEll;
  std::cout << "Recommended format: " << core::format_name(m.auto_format())
            << (ell_viable ? " (regular rows)\n"
                           : " (row-length variance too high for ELLPACK)\n");

  const auto savings = m.savings();
  std::cout << "Index compression: " << savings.eta() * 100 << "% saved ("
            << savings.kappa() << "x)\n\n";

  Rng rng(1);
  std::vector<value_t> x(static_cast<std::size_t>(m.cols()));
  for (auto& v : x) v = rng.uniform();

  // One row per registered tunable format, one column per paper GPU; the
  // registry's tune hook runs the analytic simulator.
  Table t({"Format", "C2070 GFlop/s", "GTX680 GFlop/s", "K20 GFlop/s"});
  for (const auto& tr : engine::format_registry()) {
    if (!tr.tunable) continue;
    std::vector<std::string> row = {tr.name};
    if (tr.applicable(m.csr(), 3.0)) {
      for (const auto& dev : sim::all_devices())
        row.push_back(Table::fmt(tr.tune(dev, m, x).gflops, 2));
    } else {
      row.insert(row.end(), {"-", "-", "-"});
    }
    t.add_row(std::move(row));
  }
  t.print(std::cout);

  std::cout << "\n(Performance numbers are from the analytic GPU simulator "
               "described in DESIGN.md.)\n";
  return 0;
}
