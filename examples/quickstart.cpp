// Quickstart: the 60-second tour of the library.
//
//   1. Build (or load) a sparse matrix.
//   2. Wrap it in bro::core::Matrix — the facade picks a BRO format.
//   3. Build an engine::SpmvPlan once, then execute it repeatedly —
//      the plan owns every workspace, so the hot loop never allocates.
//
// Run:  ./build/examples/quickstart [matrix.mtx]
#include <iostream>
#include <memory>
#include <vector>

#include "core/matrix.h"
#include "engine/format_registry.h"
#include "engine/plan.h"
#include "sparse/matgen/generators.h"

int main(int argc, char** argv) {
  using namespace bro;

  // 1. A matrix: from a Matrix Market file if given, else a 2-D Poisson
  //    operator on a 512 x 512 grid (262k rows, ~1.3M non-zeros).
  auto a = std::make_shared<core::Matrix>(
      argc > 1
          ? core::Matrix::from_file(argv[1])
          : core::Matrix::from_csr(sparse::generate_poisson2d(512, 512)));

  const auto stats = a->stats();
  std::cout << "Matrix: " << a->rows() << " x " << a->cols() << ", "
            << a->nnz() << " non-zeros (mean row length "
            << stats.mean_row_length << ", max " << stats.max_row_length
            << ")\n";

  // 2. Every registered format is a candidate; the facade auto-selects
  //    BRO-ELL for regular matrices and BRO-HYB for matrices with wild
  //    row-length variance.
  std::cout << "Registered formats:";
  for (const auto& t : engine::format_registry())
    std::cout << ' ' << t.name;
  std::cout << "\nAuto-selected format: " << core::format_name(a->auto_format())
            << '\n';

  // 3. Build the plan once (format conversion + workspace sizing), then
  //    y = A * x as often as needed with no per-call allocation.
  engine::SpmvPlan plan(a); // default: the auto-selected format
  std::vector<value_t> x(static_cast<std::size_t>(a->cols()), 1.0);
  std::vector<value_t> y(static_cast<std::size_t>(a->rows()));
  plan.execute(x, y);

  double checksum = 0;
  for (const value_t v : y) checksum += v;
  std::cout << "sum(A * 1) = " << checksum << '\n';

  // Verify against a CSR-reference plan.
  engine::SpmvPlan reference(a, core::Format::kCsr);
  std::vector<value_t> y_ref(y.size());
  reference.execute(x, y_ref);
  double max_err = 0;
  for (std::size_t i = 0; i < y.size(); ++i)
    max_err = std::max(max_err, std::abs(y[i] - y_ref[i]));
  std::cout << "max |" << core::format_name(plan.format())
            << " - CSR| = " << max_err << '\n';

  // 4. What did compression buy?
  const auto savings = a->savings();
  std::cout << "Index data: " << savings.original_bytes << " B -> "
            << savings.compressed_bytes << " B  (space savings "
            << savings.eta() * 100 << "%, ratio " << savings.kappa()
            << "x)\n";
  return 0;
}
