// heat_equation: a transient PDE solve — the workload class where offline
// compression amortizes perfectly. Backward-Euler time stepping for the 2-D
// heat equation u_t = laplace(u): every step solves (I + dt*L) u_next = u
// with CG, and every CG iteration is one SpMV on the *same* matrix. The
// matrix is compressed once; thousands of SpMVs reuse the streams.
//
// Run:  ./build/examples/heat_equation [grid_side] [steps]
#include <cmath>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <vector>

#include "core/matrix.h"
#include "engine/plan.h"
#include "solver/cg.h"
#include "sparse/convert.h"
#include "sparse/matgen/generators.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace bro;

  const index_t side = argc > 1 ? std::atoi(argv[1]) : 128;
  const int steps = argc > 2 ? std::atoi(argv[2]) : 20;
  const double dt = 2.0; // in units of h^2 (backward Euler is stable for any dt)

  // System matrix A = I + dt * L, with L the 5-point Laplacian.
  sparse::Csr lap = sparse::generate_poisson2d(side, side);
  for (index_t r = 0; r < lap.rows; ++r)
    for (index_t p = lap.row_ptr[r]; p < lap.row_ptr[r + 1]; ++p)
      lap.vals[p] = dt * lap.vals[p] + (lap.col_idx[p] == r ? 1.0 : 0.0);

  // Plan construction does the one-time work: compression plus workspace
  // sizing. Every subsequent execute() is allocation-free.
  Timer compress_timer;
  const auto a =
      std::make_shared<core::Matrix>(core::Matrix::from_csr(std::move(lap)));
  const auto plan = std::make_shared<engine::SpmvPlan>(a);
  const double compress_s = compress_timer.seconds();

  const std::size_t n = static_cast<std::size_t>(a->rows());
  std::cout << "Heat equation on a " << side << " x " << side
            << " grid, backward Euler, " << steps << " steps\n"
            << "Matrix compressed once (as "
            << core::format_name(plan->format()) << ") in " << compress_s
            << " s (" << a->space_savings() * 100 << "% index savings)\n\n";

  // Initial condition: a hot square in the centre.
  std::vector<value_t> u(n, 0.0);
  for (index_t yy = side / 3; yy < 2 * side / 3; ++yy)
    for (index_t xx = side / 3; xx < 2 * side / 3; ++xx)
      u[static_cast<std::size_t>(yy) * side + xx] = 1.0;

  const solver::Operator op = engine::plan_operator(plan);

  Timer solve_timer;
  int total_iters = 0;
  double heat0 = 0;
  for (const auto v : u) heat0 += v;
  for (int s = 0; s < steps; ++s) {
    std::vector<value_t> rhs = u;
    solver::SolveOptions opts;
    opts.tolerance = 1e-10;
    opts.max_iterations = 2000;
    const auto res = solver::cg(op, rhs, u, opts);
    if (!res.converged) {
      std::cerr << "step " << s << ": CG failed to converge\n";
      return 1;
    }
    total_iters += res.iterations;
  }
  const double solve_s = solve_timer.seconds();

  double heat1 = 0, peak = 0;
  for (const auto v : u) {
    heat1 += v;
    peak = std::max(peak, v);
  }
  std::cout << "Ran " << steps << " implicit steps, " << total_iters
            << " CG iterations (= SpMVs) in " << solve_s << " s\n"
            << "Total heat " << heat0 << " -> " << heat1
            << " (conserved up to boundary loss), peak " << peak << "\n"
            << "Compression cost amortized over " << total_iters
            << " SpMVs: " << compress_s / total_iters * 1e6
            << " us per SpMV — negligible against the per-SpMV runtime.\n";
  return 0;
}
