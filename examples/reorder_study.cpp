// reorder_study: the §3.4 story on one matrix — how BRO-aware reordering
// (BAR) compares with RCM and AMD for the BRO-ELL format. Prints the
// Eqn. (1) objective, the achieved index compression and the simulated K20
// performance under each ordering.
//
// Run:  ./build/examples/reorder_study [suite-matrix] [scale]
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "core/bar.h"
#include "core/bro_ell.h"
#include "kernels/sim_spmv.h"
#include "reorder/amd.h"
#include "reorder/permutation.h"
#include "reorder/rcm.h"
#include "sparse/convert.h"
#include "sparse/matgen/suite.h"
#include "util/rng.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace bro;

  const std::string name = argc > 1 ? argv[1] : "lhr71";
  const double scale = argc > 2 ? std::atof(argv[2]) : 0.125;
  const auto entry = sparse::find_suite_entry(name);
  if (!entry) {
    std::cerr << "unknown suite matrix '" << name << "'\n";
    return 1;
  }
  const sparse::Csr m = sparse::generate_suite_matrix(*entry, scale);
  std::cout << "Matrix " << name << " at scale " << scale << ": " << m.rows
            << " rows, " << m.nnz() << " non-zeros\n\n";

  Rng rng(3);
  std::vector<value_t> x(static_cast<std::size_t>(m.cols));
  for (auto& v : x) v = rng.uniform();
  const auto dev = sim::tesla_k20();

  core::BarOptions bopts;
  bopts.max_candidates = 32;

  const auto evaluate = [&](const sparse::Csr& mat) {
    const core::BroEll bro = core::BroEll::compress(sparse::csr_to_ell(mat));
    const double eta =
        1.0 - static_cast<double>(bro.compressed_index_bytes()) /
                  static_cast<double>(bro.original_index_bytes());
    const double gflops = kernels::sim_spmv_bro_ell(dev, bro, x).time.gflops;
    std::vector<index_t> identity(static_cast<std::size_t>(mat.rows));
    for (index_t i = 0; i < mat.rows; ++i) identity[static_cast<std::size_t>(i)] = i;
    const double obj = core::bar_objective(mat, identity, bopts);
    return std::tuple{eta, gflops, obj};
  };

  Table t({"Ordering", "eta", "K20 GFlop/s", "Eqn.(1) objective"});
  const auto add = [&](const char* label, const sparse::Csr& mat) {
    const auto [eta, gflops, obj] = evaluate(mat);
    t.add_row({label, Table::pct(eta), Table::fmt(gflops, 2),
               Table::fmt(obj, 0)});
  };

  add("original", m);

  const auto bar = core::bar_reorder(m, bopts);
  add("BAR (Algorithm 2)", reorder::permute_rows(m, bar.permutation));

  if (m.rows == m.cols) {
    add("RCM", reorder::permute_rows(m, reorder::rcm_order(m)));
    add("AMD", reorder::permute_rows(m, reorder::amd_order(m)));
  }
  t.print(std::cout);

  std::cout << "\nBAR minimizes Eqn. (1) — bit-packed index transactions plus "
               "x-vector cache lines — so it is the only ordering here that "
               "targets the compressed format directly.\n";
  return 0;
}
