// cg_poisson: the paper's motivating use case (§1) — an iterative solver
// whose inner kernel is SpMV. Solves a 2-D Poisson problem with Conjugate
// Gradient, once through the CSR reference operator and once through the
// BRO-ELL compressed operator, and reports that both converge identically
// while BRO-ELL moves far fewer index bytes per iteration.
//
// Run:  ./build/examples/cg_poisson [grid_side]
#include <cstdlib>
#include <iostream>
#include <memory>
#include <vector>

#include "core/matrix.h"
#include "engine/plan.h"
#include "solver/cg.h"
#include "sparse/matgen/generators.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace bro;

  const index_t side = argc > 1 ? std::atoi(argv[1]) : 256;
  const sparse::Csr a_csr = sparse::generate_poisson2d(side, side);
  const auto a = std::make_shared<core::Matrix>(core::Matrix::from_csr(a_csr));
  const std::size_t n = static_cast<std::size_t>(a->rows());

  std::cout << "2-D Poisson, " << side << " x " << side << " grid ("
            << a->nnz() << " non-zeros)\n";

  // Right-hand side for the known solution x* = 1.
  const std::vector<value_t> x_true(n, 1.0);
  std::vector<value_t> b(n);
  a->spmv(x_true, b, core::Format::kCsr);

  solver::SolveOptions opts;
  opts.max_iterations = 4000;
  opts.tolerance = 1e-10;

  const auto solve_with = [&](core::Format fmt, const char* label) {
    std::vector<value_t> x(n, 0.0);
    // One plan per format: conversion and workspace sizing happen here,
    // so every CG iteration's apply is allocation-free.
    const solver::Operator op =
        engine::plan_operator(std::make_shared<engine::SpmvPlan>(a, fmt));
    Timer t;
    const auto res = solver::cg(op, b, x, opts);
    const double secs = t.seconds();
    double err = 0;
    for (std::size_t i = 0; i < n; ++i) err = std::max(err, std::abs(x[i] - 1.0));
    std::cout << "  " << label << ": "
              << (res.converged ? "converged" : "NOT converged") << " in "
              << res.iterations << " iterations, " << secs << " s, ||x-x*||_inf = "
              << err << '\n';
    return res.iterations;
  };

  std::cout << "Solving A x = b with CG through two SpMV backends:\n";
  const int it_csr = solve_with(core::Format::kCsr, "CSR reference");
  const int it_bro = solve_with(core::Format::kBroEll, "BRO-ELL      ");

  const auto savings = a->savings();
  std::cout << "\nSame Krylov trajectory (" << it_csr << " vs " << it_bro
            << " iterations); BRO-ELL reads "
            << savings.compressed_bytes << " B of index data per SpMV instead "
            << "of " << savings.original_bytes << " B ("
            << savings.eta() * 100 << "% saved) — the memory-traffic saving "
            << "the paper converts into GPU speedup.\n";
  return 0;
}
