// Declarations for the optional CUDA backend (see cuda/README.md).
#pragma once

#include <cstdint>

namespace bro::cuda {

__global__ void bro_ell_spmv_kernel(
    const std::uint32_t* comp_str, const std::uint64_t* slice_sym_off,
    const std::uint8_t* bit_alloc, const std::uint64_t* bit_alloc_off,
    const int* num_col, const double* vals, const double* x, double* y,
    int rows);

__global__ void ell_spmv_kernel(const int* col_idx, const double* vals,
                                const double* x, double* y, int rows,
                                int width);

__global__ void bro_coo_spmv_kernel(
    const std::uint32_t* comp_str, const std::uint64_t* interval_sym_off,
    const int* interval_bits, const int* interval_start_row,
    const int* col_idx, const double* vals, const double* x, double* y,
    long long padded_nnz, int interval_cols);

} // namespace bro::cuda
